// Copyright 2026 the pdblb authors. MIT license.
//
// Ablation — query/update concurrency control (paper footnote 1): join
// queries on A/B run concurrently with update statements on A under three
// schemes: the paper's base partitioned-workload assumption (no read
// locks), strict 2PL for everyone (queries take long page-level read
// locks), and multiversion CC (snapshot reads, version maintenance on
// updates).
//
// Expected shape: join response times under 2PL climb with the update rate
// (lock waits on the scanned ranges); multiversion keeps joins near the
// baseline at a modest, rate-independent surcharge on the updaters — the
// trade the paper's footnote anticipates.

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

std::string SchemeName(CcScheme s) {
  switch (s) {
    case CcScheme::kNoReadLocks:
      return "no read locks";
    case CcScheme::kTwoPhaseLocking:
      return "strict 2PL";
    case CcScheme::kMultiversion:
      return "multiversion";
  }
  return "?";
}

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Ablation — concurrency control for read-only queries "
      "(20 PE, joins 0.1 QPS/PE + updates on A)",
      "updates QPS/PE");

  const std::vector<double> update_rates = {0.0, 0.1, 0.2, 0.4};
  for (double rate : update_rates) {
    for (auto scheme : {CcScheme::kNoReadLocks, CcScheme::kTwoPhaseLocking,
                        CcScheme::kMultiversion}) {
      SystemConfig cfg;
      cfg.num_pes = 20;
      cfg.cc_scheme = scheme;
      cfg.strategy = strategies::PmuCpuLUM();
      cfg.join_query.arrival_rate_per_pe_qps = 0.10;
      if (rate > 0.0) {
        cfg.update_query.enabled = true;
        cfg.update_query.relation = TargetRelation::kA;
        cfg.update_query.selectivity = 0.02;
        cfg.update_query.arrival_rate_per_pe_qps = rate;
      }
      ApplyHorizon(cfg);
      char label[16];
      std::snprintf(label, sizeof(label), "%.1f", rate);
      fig.AddPoint("cc/" + SchemeName(scheme) + "/" + label, cfg,
                    SchemeName(scheme), rate, label);
    }
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
