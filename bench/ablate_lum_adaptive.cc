// Copyright 2026 the pdblb authors. MIT license.
//
// Ablation: the "adaptive variation" of LUC/LUM (paper Section 3.2).  When
// a join is scheduled, the control node artificially bumps the selected
// PEs' recorded CPU utilization and decrements their recorded free memory,
// so that back-to-back joins do not herd onto the same processors while
// reports are stale.  This bench runs the LUM-based strategies with the
// feedback on and off.
//
// Expectation: without the feedback, consecutive joins pile onto the same
// "most free" nodes between control reports, raising response times — the
// effect grows with the arrival rate and the report interval.

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Ablation — LUC/LUM adaptive feedback on/off (n = 80, 0.25 QPS/PE)",
      "feedback");

  for (auto strategy : {strategies::PmuCpuLUM(), strategies::PsuNoIOLUM(),
                        strategies::OptIOCpu()}) {
    for (bool feedback : {true, false}) {
      SystemConfig cfg;
      cfg.num_pes = 80;
      cfg.strategy = strategy;
      cfg.adaptive_selection_feedback = feedback;
      ApplyHorizon(cfg);
      std::string series =
          strategy.Name() + (feedback ? " +feedback" : " -feedback");
      fig.AddPoint("ablate_lum/" + series, cfg, series, feedback ? 1 : 0,
                    feedback ? "on" : "off");
    }
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
