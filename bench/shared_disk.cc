// Copyright 2026 the pdblb authors. MIT license.
//
// Extension — Shared Disk vs. Shared Nothing (paper Section 7 / [27]): the
// paper's conclusions argue the proposed strategies carry over to Shared
// Disk systems, which offer *more* load-balancing freedom because even scan
// operators are freely placeable (every PE reaches every spindle).
//
// Workload: the Fig. 9a mixed scenario (OLTP pinned on the 20% A nodes,
// joins everywhere).  Under Shared Nothing the A scans are forced onto the
// OLTP-loaded nodes; under Shared Disk the dynamic strategies move them to
// idle PEs.
//
// Expected shape: SD matches SN for the homogeneous workload (nothing to
// move) and wins increasingly for the mixed workload at higher OLTP rates.

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

std::string ArchName(Architecture a) {
  return a == Architecture::kSharedNothing ? "SN" : "SD";
}

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Extension — Shared Disk vs. Shared Nothing "
      "(20 PE, joins 0.075 QPS/PE, OLTP on A nodes, 5 disks/PE)",
      "OLTP TPS/node");

  const std::vector<double> oltp_rates = {0.0, 50.0, 100.0, 150.0};
  for (double tps : oltp_rates) {
    for (auto arch :
         {Architecture::kSharedNothing, Architecture::kSharedDisk}) {
      SystemConfig cfg;
      cfg.num_pes = 20;
      cfg.architecture = arch;
      cfg.strategy = strategies::OptIOCpu();
      cfg.join_query.arrival_rate_per_pe_qps = 0.075;
      cfg.disk.disks_per_pe = 5;
      if (tps > 0.0) {
        cfg.oltp.enabled = true;
        cfg.oltp.placement = OltpPlacement::kANodes;
        cfg.oltp.tps_per_node = tps;
      }
      ApplyHorizon(cfg);
      fig.AddPoint(
          "shared_disk/" + ArchName(arch) + "/" + std::to_string((int)tps),
          cfg, ArchName(arch) + " OPT-IO-CPU", tps,
          std::to_string(static_cast<int>(tps)));
    }
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
