// Copyright 2026 the pdblb authors. MIT license.
//
// Chaos harness: all three gray-failure domains composed from one seed,
// sweeping a single fault-intensity knob against the strategy.  Each
// intensity level i layers, on top of the same base workload:
//
//   * transient disk errors  (iorate = 1% * i, driver retries absorb them)
//   * a slow-disk window     (pe1 serves at x(1+i) from t=2.0s to t=4.5s)
//   * a degraded link        (pe4<->pe5 wire delay x(1+i) from t=2.0s)
//   * a network partition    (pe0<->pe3 cut t=2.5s..3.8s; spanning attempts
//                             cancel and retry, i >= 2 only)
//   * a PE crash/repair      (pe2 down t=3.0s..4.2s, i >= 3 only)
//   * overload shedding      (arrival rate scales with i while the degrade/
//                             shed thresholds tighten, so high intensity
//                             visibly sheds and degrades instead of piling
//                             up unbounded admission queues)
//
// Intensity 0 is the fault-free baseline: it takes the exact pre-fault code
// paths and anchors the "no faults => no new costs" contract.  Every event
// lands inside the measurement window of both the fast (6.5 s) and the
// normal (24 s) horizon, so --fast changes only the statistics, never which
// domains fire.
//
// What to look for: completed throughput decays gracefully with intensity
// while queries_shed/queries_degraded grow — the overload controller trades
// admission for bounded response times — and io_errors/io_retries scale
// linearly with iorate while the retry chains keep every query's result
// exact (errors are latency, not data loss).  The whole sweep is a pure
// function of --seed: the CSV is bit-identical across --jobs/--shards and
// reruns (CI-enforced), which is what makes the chaos results debuggable.
//
// Run with --report-json=BENCH_chaos.json for the CI artifact (the
// robustness block maps completed/shed/degraded to each intensity).

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Chaos — composed disk/network/overload fault domains vs. strategy "
      "(8 PE)",
      "intensity");

  const std::vector<int> intensities = bench::FastMode()
                                           ? std::vector<int>{0, 2, 3}
                                           : std::vector<int>{0, 1, 2, 3};
  const std::vector<std::pair<std::string, StrategyConfig>> strategy_set = {
      {"p_su-opt+LUM", strategies::PsuOptLUM()},
      {"OPT-IO-CPU", strategies::OptIOCpu()},
  };

  for (int i : intensities) {
    for (const auto& [name, strategy] : strategy_set) {
      SystemConfig cfg;
      cfg.num_pes = 8;
      cfg.strategy = strategy;
      // Tight admission (2 slots per PE) so overload shows up as queue
      // depth — the signal the overload controller watches — instead of
      // being absorbed by a deep multiprogramming limit.
      cfg.multiprogramming_level = 2;
      ApplyHorizon(cfg);
      // Load grows with intensity so the overload controller has pressure
      // to react to (the fault domains alone only add latency).
      cfg.join_query.arrival_rate_per_pe_qps = 0.25 * (1.0 + i);

      if (i > 0) {
        // Disk domain: background error rate plus a scripted slow window.
        cfg.faults.io_error_rate = 0.01 * i;
        cfg.faults.io_retry_limit = 3;
        cfg.faults.io_retry_penalty_ms = 5.0;
        cfg.faults.events.push_back(
            {2000.0, FaultKind::kSlowDisk, 1, -1, 1.0 + i});
        cfg.faults.events.push_back({4500.0, FaultKind::kSlowDisk, 1, -1, 1.0});
        // Network domain: one degraded link for the rest of the run.
        cfg.faults.events.push_back(
            {2000.0, FaultKind::kSlowLink, 4, 5, 1.0 + i});
        if (i >= 2) {
          cfg.faults.events.push_back({2500.0, FaultKind::kPartition, 0, 3});
          cfg.faults.events.push_back({3800.0, FaultKind::kHeal, 0, 3});
        }
        if (i >= 3) {
          cfg.faults.events.push_back({3000.0, FaultKind::kCrash, 2});
          cfg.faults.events.push_back({4200.0, FaultKind::kRecover, 2});
        }
        // Partition/crash victims retry; the deadline bounds retry chains.
        cfg.faults.query_timeout_ms = 8000.0;
        cfg.faults.retry.max_attempts = 6;
        cfg.faults.retry.initial_backoff_ms = 100.0;
        // Overload domain: thresholds tighten with intensity so level 3
        // sheds where level 1 merely degrades.
        cfg.overload.enabled = true;
        cfg.overload.degrade_queue_threshold = 2.0;
        cfg.overload.shed_queue_threshold = 10.0 - 3.0 * i;
        cfg.overload.exit_queue_threshold = 0.5;
        cfg.control_report_interval_ms = 500.0;
      }

      fig.AddPoint("chaos/" + name + "/i" + std::to_string(i), cfg, name,
                   static_cast<double>(i), std::to_string(i));
    }
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
