// Copyright 2026 the pdblb authors. MIT license.
//
// Reproduces paper Fig. 5: "Static degree of parallelism" — multi-user join
// response times for the static degrees p_su-noIO = 3 and p_su-opt = 30
// combined with RANDOM / LUC / LUM join-processor selection, plus the
// single-user baseline, over system sizes 10..80 PE.
// Workload: homogeneous joins, 0.25 QPS/PE, 1% scan selectivity.
//
// Shape to match (paper): p_su-opt curves are best up to ~40 PE, then
// degrade steeply (CPU contention from 30-way parallelism); the best static
// scheme beyond 60 PE is p_su-noIO + LUM; RANDOM selection is always worst
// within a degree; single-user mode is the flat lower bound.

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Fig. 5 — static degree of parallelism (0.25 QPS/PE, 1% selectivity)",
      "#PE");

  const std::vector<int> sizes = {10, 20, 40, 60, 80};
  const std::vector<StrategyConfig> strategy_set = {
      strategies::PsuNoIORandom(), strategies::PsuNoIOLUC(),
      strategies::PsuNoIOLUM(),    strategies::PsuOptRandom(),
      strategies::PsuOptLUC(),     strategies::PsuOptLUM(),
  };

  for (int n : sizes) {
    for (const StrategyConfig& strategy : strategy_set) {
      SystemConfig cfg;
      cfg.num_pes = n;
      cfg.strategy = strategy;
      ApplyHorizon(cfg);
      fig.AddPoint("fig5/" + strategy.Name() + "/" + std::to_string(n), cfg,
                    strategy.Name(), n, std::to_string(n));
    }
    // Single-user baseline with p_su-opt join processors.
    SystemConfig su;
    su.num_pes = n;
    su.single_user_mode = true;
    su.single_user_queries = bench::FastMode() ? 10 : 30;
    su.strategy = strategies::PsuOptLUM();
    fig.AddPoint("fig5/single-user(p_su-opt)/" + std::to_string(n), su,
                  "single-user (p_su-opt)", n, std::to_string(n));
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
