// Copyright 2026 the pdblb authors. MIT license.
//
// Reproduces paper Fig. 1: "Parallel join processing in single- and
// multi-user mode — basic response time development and optimal number of
// join processors".  Three series over a forced degree of join parallelism:
//
//   (a) single-user mode        — U-shaped R(p), minimum at p_su-opt
//   (b) CPU-bottleneck          — multi-user, 0.25 QPS/PE: the optimum
//                                 moves BELOW p_su-opt
//   (c) memory/disk-bottleneck  — tiny buffers + one disk per PE: the
//                                 optimum moves ABOVE p_su-opt
//
// The analytic cost model's R(p) is printed alongside as a sanity series.

#include "bench/bench_common.h"
#include "core/cost_model.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Fig. 1 — response time vs degree of join parallelism (n = 80)",
      "degree p");

  const std::vector<int> degrees = {1, 2, 3, 5, 8, 12, 16, 20,
                                    30, 40, 50, 60, 80};

  for (int p : degrees) {
    StrategyConfig forced;  // isolated policy with forced degree, LUM
    forced.fixed_degree = p;
    forced.selection = SelectionPolicyKind::kLUM;

    // (a) single-user mode.
    SystemConfig su;
    su.num_pes = 80;
    su.single_user_mode = true;
    su.single_user_queries = bench::FastMode() ? 8 : 20;
    su.strategy = forced;
    fig.AddPoint("fig1a/single-user/p=" + std::to_string(p), su,
                  "(a) single-user", p, std::to_string(p));

    // (b) CPU bottleneck: the paper's homogeneous multi-user load.
    SystemConfig cpu_bound;
    cpu_bound.num_pes = 80;
    cpu_bound.strategy = forced;
    ApplyHorizon(cpu_bound);
    fig.AddPoint("fig1b/cpu-bound/p=" + std::to_string(p), cpu_bound,
                  "(b) multi-user CPU-bound", p, std::to_string(p));

    // (c) memory/disk bottleneck: buffers/10, one disk per PE, low rate.
    SystemConfig mem_bound;
    mem_bound.num_pes = 80;
    mem_bound.buffer.buffer_pages = 5;
    mem_bound.disk.disks_per_pe = 1;
    mem_bound.join_query.arrival_rate_per_pe_qps = 0.05;
    mem_bound.strategy = forced;
    ApplyHorizon(mem_bound);
    fig.AddPoint("fig1c/memory-bound/p=" + std::to_string(p), mem_bound,
                  "(c) multi-user memory-bound", p, std::to_string(p));
  }
}

}  // namespace

int main(int argc, char** argv) {
  ::pdblb::bench::BenchOptions opts;
  if (int rc = ::pdblb::bench::ParseBenchArgs(argc, argv, opts); rc >= 0) {
    return rc;
  }
  ::pdblb::bench::Figure fig;
  Setup(fig);
  int rc = ::pdblb::bench::FigureMain(fig, opts);
  // Keep --list output machine-readable and skip the extras on failure.
  if (rc != 0 || opts.list_only) return rc;

  // Analytic single-user R(p) from the cost model, for comparison with (a).
  SystemConfig cfg;
  cfg.num_pes = 80;
  CostModel cm(cfg);
  std::printf("\nAnalytic single-user R(p) [ms] (cost model, p_su-opt = %d):\n",
              cm.PsuOpt());
  TextTable t({"p", "R(p) [ms]"});
  for (int p : {1, 2, 3, 5, 8, 12, 16, 20, 30, 40, 50, 60, 80}) {
    t.AddRow({std::to_string(p), TextTable::Num(cm.ResponseTimeMs(p), 1)});
  }
  std::fputs(t.ToString().c_str(), stdout);
  return rc;
}
