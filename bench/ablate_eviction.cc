// Copyright 2026 the pdblb authors. MIT license.
//
// Eviction-policy ablation on the paper's memory-bound environment (Fig. 7
// shape: tiny per-PE buffer, one disk per PE) with a debit-credit OLTP
// stream on every node.  Sweeps replacement policy x buffer size x hot-set
// skew: the OLTP class concentrates `hot_access_fraction` of its tuple
// accesses on 22 hot pages, so what the pool keeps resident under pressure
// — and therefore the hit ratio, the eviction rate and the "available
// memory" the control node sees — is decided by the policy.
//
// Point names are "bufmgr/<policy>/h<skew>/<pages>" so --filter=/lru/ (note
// the trailing slash — "/lru-k/" is a different policy) selects one policy's
// sub-grid; CI compares the CSV bytes across --jobs and --shards per policy.
// Run with --report-json=BENCH_bufmgr.json for the artifact.

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

SystemConfig MemoryBoundSkewed(int pages, double hot_frac,
                               EvictionPolicyKind policy) {
  SystemConfig cfg;
  cfg.num_pes = 20;
  cfg.buffer.buffer_pages = pages;
  cfg.buffer.eviction = policy;
  cfg.disk.disks_per_pe = 1;  // 1 disk per PE, as in fig7
  cfg.join_query.arrival_rate_per_pe_qps = 0.025;
  cfg.strategy = strategies::PmuCpuLUM();
  // Debit-credit OLTP on every node: the hot 22 pages are the working set
  // the policy should learn to keep.
  cfg.oltp.enabled = true;
  cfg.oltp.placement = OltpPlacement::kAllNodes;
  cfg.oltp.tps_per_node = 10.0;
  cfg.oltp.hot_access_fraction = hot_frac;
  ApplyHorizon(cfg);
  return cfg;
}

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Eviction ablation — fig7 memory-bound shape + skewed OLTP (20 PE)",
      "buf pages");

  const EvictionPolicyKind policies[] = {
      EvictionPolicyKind::kLru, EvictionPolicyKind::kLruK,
      EvictionPolicyKind::kLfu, EvictionPolicyKind::kClock};
  // Buffer sizes straddle the 22-page hot set; skews range from mild to
  // debit-credit extreme.
  const int sizes[] = {5, 10, 25};
  const double skews[] = {0.5, 0.85, 0.95};

  for (EvictionPolicyKind policy : policies) {
    const std::string pname = EvictionPolicyName(policy);
    for (double skew : skews) {
      const std::string series = pname + " h=" + TextTable::Num(skew, 2);
      for (int pages : sizes) {
        fig.AddPoint(
            "bufmgr/" + pname + "/h" + TextTable::Num(skew, 2) + "/" +
                std::to_string(pages),
            MemoryBoundSkewed(pages, skew, policy), series, pages,
            std::to_string(pages));
      }
    }
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
