// Copyright 2026 the pdblb authors. MIT license.
//
// Reproduces paper Fig. 6: "Dynamic degree of join parallelism" — the two
// isolated dynamic strategies (p_mu-cpu + RANDOM / LUM) against the three
// integrated strategies (MIN-IO, MIN-IO-SUOPT, OPT-IO-CPU) plus the
// single-user baseline.  Workload as in Fig. 5.
//
// Shape to match (paper): MIN-IO and MIN-IO-SUOPT are worst at large system
// sizes (they ignore CPU utilization and drive the degree up to avoid temp
// I/O); p_mu-cpu + LUM and OPT-IO-CPU are best and nearly identical, keeping
// CPU utilization moderate; p_mu-cpu + RANDOM sits in between.

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Fig. 6 — dynamic degree of join parallelism (0.25 QPS/PE, 1% sel.)",
      "#PE");

  const std::vector<int> sizes = {10, 20, 40, 60, 80};
  const std::vector<StrategyConfig> strategy_set = {
      strategies::MinIO(),        strategies::MinIOSuOpt(),
      strategies::PmuCpuRandom(), strategies::PmuCpuLUM(),
      strategies::OptIOCpu(),
  };

  for (int n : sizes) {
    for (const StrategyConfig& strategy : strategy_set) {
      SystemConfig cfg;
      cfg.num_pes = n;
      cfg.strategy = strategy;
      ApplyHorizon(cfg);
      fig.AddPoint("fig6/" + strategy.Name() + "/" + std::to_string(n), cfg,
                    strategy.Name(), n, std::to_string(n));
    }
    SystemConfig su;
    su.num_pes = n;
    su.single_user_mode = true;
    su.single_user_queries = bench::FastMode() ? 10 : 30;
    su.strategy = strategies::PsuOptLUM();
    fig.AddPoint("fig6/single-user(p_su-opt)/" + std::to_string(n), su,
                  "single-user (p_su-opt)", n, std::to_string(n));
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
