// Copyright 2026 the pdblb authors. MIT license.
//
// Baseline comparison against RateMatch (Mehta & DeWitt [20]), the closest
// related work the paper discusses in Section 6.  RateMatch picks the degree
// of join parallelism so that the aggregate consumption rate of the join
// processors matches the production rate of the scans; per-processor rates
// are derated by *average* CPU/disk utilization, so the degree rises with
// system load, and memory availability is ignored.
//
// Shape to match (paper's critique): at light load RateMatch is competitive;
// as CPU utilization passes ~50% its rising degree feeds the CPU contention
// it tries to compensate, and the utilization-reducing strategies
// (p_mu-cpu + LUM, OPT-IO-CPU) win clearly.

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Baseline — RateMatch [20] vs. the paper's strategies "
      "(1% sel., load sweep at 60 PE)",
      "QPS/PE");

  const std::vector<double> rates = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  const std::vector<StrategyConfig> strategy_set = {
      strategies::RateMatchLUC(),  // their best selection rule (our LUC)
      strategies::RateMatchRandom(),
      strategies::PmuCpuLUM(),
      strategies::OptIOCpu(),
  };

  for (double qps : rates) {
    for (const StrategyConfig& strategy : strategy_set) {
      SystemConfig cfg;
      cfg.num_pes = 60;
      cfg.strategy = strategy;
      cfg.join_query.arrival_rate_per_pe_qps = qps;
      ApplyHorizon(cfg);
      char label[32];
      std::snprintf(label, sizeof(label), "%.2f", qps);
      fig.AddPoint("ratematch/" + strategy.Name() + "/" + label, cfg,
                    strategy.Name(), qps, label);
    }
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
