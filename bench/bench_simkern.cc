// Copyright 2026 the pdblb authors. MIT license.
//
// Raw discrete-event kernel throughput: how many scheduler events per second
// can the simkern dispatch?  Every figure bench runs millions of these, so
// this is the repo-wide hot path.  Scenarios:
//
//   TimerChurn          N coroutines looping on staggered Delay()s
//   CallbackChurn       self-rescheduling ScheduleCallback() chains
//   ZeroDelayPingPong   Delay(0) chains (same-timestamp FIFO fast path)
//   ResourceContention  M clients hammering a k-server FCFS resource
//   ChannelPingPong     two processes bouncing a token over two channels
//   ChannelStream       producer streaming value bursts to a consumer
//   WhenAllFanout       repeated fork/join over F child tasks
//   ShardedClusterLight 80-PE sharded cluster, shard-local messaging
//   ShardedClusterHeavy 80-PE sharded cluster, every message cross-shard
//   ConfinedClusterHeavy 80-PE shard-confined *engine* run (engine/confined.h):
//                       real CPU/disk resources, control-entity round trips
//

// The Sharded* shapes run one simulation split across Arg(0) shard worker
// threads (conservative windows, wire-time lookahead — see
// src/simkern/sharded.h) and report aggregate dispatched events/s; the
// `windows` / `cross_shard_frac` counters expose the synchronization
// cadence.  Light vs heavy brackets the mailbox + barrier overhead:
// identical event volume, zero vs. 100% cross-shard messages.  On a
// multi-core host S=2/4 measures the parallel speedup; on a single-core
// host it measures pure synchronization overhead (both trajectories
// matter — CI emits BENCH_shard.json from these shapes).
//
// The pure dispatch shapes (TimerChurn, CallbackChurn, ZeroDelayPingPong)
// report items/sec where one item is one dispatched scheduler event.  The
// blocking-primitive shapes (ResourceContention, ChannelPingPong,
// ChannelStream, WhenAllFanout) report items/sec where one item is one
// completed *operation* (acquisition / message / join) — the unit that is
// invariant across kernel rewrites.  The frameless-awaiter kernel
// deliberately dispatches fewer calendar events per operation than the
// PR 1 kernel did, so an event-based rate would hide exactly the
// improvement these shapes exist to measure; the `events_per_op` counter
// reports the accounting change explicitly.
//
//   PDBLB_BENCH_FAST=1   shrink the event counts (CI smoke runs)
//
// Writing the JSON trajectory file:
//   bench_simkern --benchmark_out=BENCH_simkern.json --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "engine/confined.h"
#include "netsim/shard_mailbox.h"
#include "simkern/channel.h"
#include "simkern/resource.h"
#include "simkern/rng.h"
#include "simkern/scheduler.h"
#include "simkern/sharded.h"
#include "simkern/task.h"

namespace pdblb::sim {
namespace {

bool FastMode() {
  const char* env = std::getenv("PDBLB_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

int64_t EventTarget() { return FastMode() ? 200'000 : 2'000'000; }

// --- TimerChurn -----------------------------------------------------------
// N concurrent processes, each sleeping a distinct prime-ish delay so the
// calendar stays well mixed (no degenerate same-timestamp batches).

Task<> TimerLoop(Scheduler& sched, SimTime period, int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) {
    co_await sched.Delay(period);
  }
}

void BM_TimerChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int64_t rounds = EventTarget() / n;
  uint64_t events = 0;
  for (auto _ : state) {
    Scheduler sched;
    for (int i = 0; i < n; ++i) {
      sched.Spawn(TimerLoop(sched, 1.0 + 0.013 * i, rounds));
    }
    uint64_t before = sched.events_processed();
    sched.Run();
    events += sched.events_processed() - before;
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_TimerChurn)->Arg(16)->Arg(1024)->Unit(benchmark::kMillisecond);

// --- CallbackChurn --------------------------------------------------------
// Self-rescheduling callbacks: each dispatch schedules the next link of the
// chain.  Exercises the callback storage path (the old kernel paid one heap
// allocation plus several std::function copies per link).

struct CallbackChain {
  Scheduler* sched;
  int64_t remaining;
  SimTime period;
  void Arm() {
    sched->ScheduleCallback(sched->Now() + period, [this] {
      if (--remaining > 0) Arm();
    });
  }
};

void BM_CallbackChurn(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  const int64_t rounds = EventTarget() / chains;
  uint64_t events = 0;
  for (auto _ : state) {
    Scheduler sched;
    std::vector<CallbackChain> chain(static_cast<size_t>(chains));
    for (int i = 0; i < chains; ++i) {
      chain[i] = CallbackChain{&sched, rounds, 1.0 + 0.007 * i};
      chain[i].Arm();
    }
    uint64_t before = sched.events_processed();
    sched.Run();
    events += sched.events_processed() - before;
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_CallbackChurn)->Arg(64)->Unit(benchmark::kMillisecond);

// --- CallbackChurnCtx -----------------------------------------------------
// Same chain shape, but each callback carries 40 bytes of captured context
// (several pointers/ids, the size of a realistic completion callback).
// This exceeds libstdc++'s 16-byte std::function small-buffer, so a
// type-erasing kernel pays one heap allocation per link; the slab's inline
// cells do not.

struct ContextLink {
  Scheduler* sched;
  int64_t remaining;
  SimTime period;
  uint64_t context[2];  // stand-in for txn id / page id / operator state

  void operator()() {
    benchmark::DoNotOptimize(context[0] += context[1]);
    if (--remaining > 0) {
      sched->ScheduleCallback(sched->Now() + period, *this);
    }
  }
};
static_assert(sizeof(ContextLink) == 40);

void BM_CallbackChurnCtx(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  const int64_t rounds = EventTarget() / chains;
  uint64_t events = 0;
  for (auto _ : state) {
    Scheduler sched;
    for (int i = 0; i < chains; ++i) {
      sched.ScheduleCallback(
          1.0 + 0.007 * i,
          ContextLink{&sched, rounds, 1.0 + 0.007 * i, {uint64_t(i), 1}});
    }
    uint64_t before = sched.events_processed();
    sched.Run();
    events += sched.events_processed() - before;
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_CallbackChurnCtx)->Arg(64)->Unit(benchmark::kMillisecond);

// --- ZeroDelayPingPong ----------------------------------------------------
// Delay(0) re-queues through the calendar at the current timestamp (FIFO
// fairness), the pattern of latch wake-ups and channel hand-offs.

Task<> ZeroDelayLoop(Scheduler& sched, int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) {
    co_await sched.Delay(0.0);
  }
}

void BM_ZeroDelayPingPong(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int64_t rounds = EventTarget() / n;
  uint64_t events = 0;
  for (auto _ : state) {
    Scheduler sched;
    for (int i = 0; i < n; ++i) sched.Spawn(ZeroDelayLoop(sched, rounds));
    uint64_t before = sched.events_processed();
    sched.Run();
    events += sched.events_processed() - before;
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_ZeroDelayPingPong)->Arg(8)->Unit(benchmark::kMillisecond);

// --- ResourceContention ---------------------------------------------------
// M clients against a k-server FCFS station: acquire, hold, release, repeat.
// Dominated by suspend/resume through the calendar plus waiter hand-off.

Task<> ResourceClient(Scheduler& sched, Resource& res, SimTime hold,
                      int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) {
    co_await res.Use(hold);
  }
  (void)sched;
}

void BM_ResourceContention(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int64_t rounds = EventTarget() / (4 * clients);
  uint64_t events = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    Scheduler sched;
    Resource res(sched, /*servers=*/4, "cpu");
    for (int i = 0; i < clients; ++i) {
      sched.Spawn(ResourceClient(sched, res, 0.5 + 0.01 * i, rounds));
    }
    uint64_t before = sched.events_processed();
    sched.Run();
    events += sched.events_processed() - before;
    ops += static_cast<uint64_t>(clients) * static_cast<uint64_t>(rounds);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
  state.counters["events_per_op"] =
      static_cast<double>(events) / static_cast<double>(ops);
}
BENCHMARK(BM_ResourceContention)->Arg(64)->Unit(benchmark::kMillisecond);

// --- ChannelPingPong ------------------------------------------------------
// Two processes bouncing a token across a pair of channels: every message
// is a blocked-receiver hand-off, the pattern of operator pipelines with a
// faster producer than consumer.  One item = one delivered message.

Task<> Pinger(Channel<int>& out, Channel<int>& in, int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) {
    out.Send(static_cast<int>(i));
    co_await in.Receive();
  }
  out.Close();
}

Task<> Ponger(Channel<int>& in, Channel<int>& out) {
  while (auto v = co_await in.Receive()) {
    out.Send(*v);
  }
}

void BM_ChannelPingPong(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  const int64_t rounds = EventTarget() / (4 * pairs);
  uint64_t events = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    Scheduler sched;
    std::vector<std::unique_ptr<Channel<int>>> forward, backward;
    for (int i = 0; i < pairs; ++i) {
      forward.push_back(std::make_unique<Channel<int>>(sched));
      backward.push_back(std::make_unique<Channel<int>>(sched));
      sched.Spawn(Pinger(*forward[i], *backward[i], rounds));
      sched.Spawn(Ponger(*forward[i], *backward[i]));
    }
    uint64_t before = sched.events_processed();
    sched.Run();
    events += sched.events_processed() - before;
    ops += 2 * static_cast<uint64_t>(pairs) * static_cast<uint64_t>(rounds);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
  state.counters["events_per_op"] =
      static_cast<double>(events) / static_cast<double>(ops);
}
BENCHMARK(BM_ChannelPingPong)->Arg(8)->Unit(benchmark::kMillisecond);

// --- ChannelStream --------------------------------------------------------
// A producer emits bursts of values separated by a unit delay; the consumer
// drains them.  Mixes buffered values (ring-buffer path) with blocked-
// receiver wake-ups.  One item = one delivered message.

Task<> BurstProducer(Scheduler& sched, Channel<int>& ch, int64_t bursts,
                     int burst_size) {
  for (int64_t i = 0; i < bursts; ++i) {
    co_await sched.Delay(1.0);
    for (int k = 0; k < burst_size; ++k) ch.Send(k);
  }
  ch.Close();
}

Task<> Drain(Channel<int>& ch, uint64_t* received) {
  while (auto v = co_await ch.Receive()) {
    ++*received;
  }
}

void BM_ChannelStream(benchmark::State& state) {
  const int burst = static_cast<int>(state.range(0));
  const int64_t bursts = EventTarget() / (2 * burst);
  uint64_t events = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    Scheduler sched;
    Channel<int> ch(sched);
    uint64_t received = 0;
    sched.Spawn(Drain(ch, &received));
    sched.Spawn(BurstProducer(sched, ch, bursts, burst));
    uint64_t before = sched.events_processed();
    sched.Run();
    events += sched.events_processed() - before;
    ops += received;
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
  state.counters["events_per_op"] =
      static_cast<double>(events) / static_cast<double>(ops);
}
BENCHMARK(BM_ChannelStream)->Arg(8)->Unit(benchmark::kMillisecond);

// --- WhenAllFanout --------------------------------------------------------
// Fork/join: a parent repeatedly WhenAll()s over F one-delay children (the
// shape of parallel scan/join subquery execution).

Task<> FanoutParent(Scheduler& sched, int fanout, int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) {
    std::vector<Task<>> children;
    children.reserve(static_cast<size_t>(fanout));
    for (int f = 0; f < fanout; ++f) {
      children.push_back(TimerLoop(sched, 1.0 + 0.01 * f, 1));
    }
    co_await WhenAll(sched, std::move(children));
  }
}

void BM_WhenAllFanout(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  const int64_t rounds = EventTarget() / (3 * fanout);
  uint64_t events = 0;
  uint64_t ops = 0;
  for (auto _ : state) {
    Scheduler sched;
    sched.Spawn(FanoutParent(sched, fanout, rounds));
    uint64_t before = sched.events_processed();
    sched.Run();
    events += sched.events_processed() - before;
    ops += static_cast<uint64_t>(fanout) * static_cast<uint64_t>(rounds);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
  state.counters["events_per_op"] =
      static_cast<double>(events) / static_cast<double>(ops);
}
BENCHMARK(BM_WhenAllFanout)->Arg(32)->Unit(benchmark::kMillisecond);

// --- ShardedCluster -------------------------------------------------------
// One 80-PE simulation split across Arg(0) shards (worker threads): each PE
// loops over a private CPU service and ships a 2.5-page message every
// `msg_every`-th round; deliveries spawn a handler charging the receiver's
// CPU.  The light variant wires block-local neighbours (co-located for
// S in {1,2,4}: zero mailbox traffic), the heavy variant the opposite half
// of the cluster (every message crosses shards for S > 1).  Results are
// bit-identical for every S (pinned by tests/sharded_test.cc); these
// shapes measure what that invariance costs and what parallelism buys.

struct ShardedPe {
  std::unique_ptr<Resource> cpu;
  uint64_t delivered = 0;
};

struct ShardedBench {
  ShardedScheduler* ss;
  pdblb::ShardWire* wire;
  std::vector<ShardedPe> pes;
  int rounds;
  int msg_every;
  int stride;  // 0: block-local neighbour; else (pe + stride) % n
  int64_t bytes;
};

Task<> ShardedDelivery(ShardedBench& b, int dst) {
  co_await b.pes[dst].cpu->Use(0.21 + 0.003 * dst);
  ++b.pes[dst].delivered;
}

// One multiprogramming slot of one PE: like the cluster's transactions,
// `kShardedMpl` of these run concurrently per PE, which is what gives a
// conservative window enough events per shard to amortize the barrier.
Task<> ShardedPeDriver(ShardedBench& b, int pe, int slot) {
  const int n = static_cast<int>(b.pes.size());
  Resource& cpu = *b.pes[pe].cpu;
  for (int r = 0; r < b.rounds; ++r) {
    co_await cpu.Use(0.37 + 0.013 * pe + 0.029 * slot);
    if ((r + slot) % b.msg_every == 0) {
      int dst = b.stride == 0
                    ? pe / 20 * 20 + (pe % 20 + 1) % 20
                    : (pe + b.stride) % n;
      b.wire->Send(pe, dst, b.bytes, [&b, dst] {
        b.ss->home(dst).Spawn(ShardedDelivery(b, dst));
      });
    }
  }
}

constexpr int kShardedMpl = 16;  // concurrent driver slots per PE

void RunShardedCluster(benchmark::State& state, int stride, int msg_every,
                       SimTime lookahead_ms) {
  const int shards = static_cast<int>(state.range(0));
  const int pes = 80;
  const int rounds =
      static_cast<int>(EventTarget() / (2 * pes * kShardedMpl) /
                       (FastMode() ? 1 : 4));
  uint64_t events = 0;
  uint64_t windows = 0;
  uint64_t messages = 0;
  uint64_t cross = 0;
  for (auto _ : state) {
    pdblb::NetworkConfig net;  // 0.1 ms/packet wire (the paper's EDS)
    ShardedScheduler::Options opts;
    opts.num_shards = shards;
    opts.num_entities = pes;
    opts.lookahead_ms = lookahead_ms;
    ShardedScheduler ss(opts);
    pdblb::ShardWire wire(ss, net);
    ShardedBench b{&ss,       &wire, {}, rounds, msg_every, stride,
                   /*bytes=*/20000};
    b.pes.resize(pes);
    for (int pe = 0; pe < pes; ++pe) {
      b.pes[pe].cpu = std::make_unique<Resource>(
          ss.home(pe), 1, "cpu" + std::to_string(pe),
          TraceTag(TraceSubsystem::kCpu, static_cast<uint16_t>(pe)));
    }
    if (stride == 0) {
      // The light shape's coarse declared lookahead (see below) is only
      // legal because block-local sends never cross shards; enforce that in
      // Release too, so drifting the block size or the Arg list cannot
      // silently violate the conservative-window contract.
      for (int pe = 0; pe < pes; ++pe) {
        int peer = pe / 20 * 20 + (pe % 20 + 1) % 20;
        if (ss.shard_of(pe) != ss.shard_of(peer)) {
          state.SkipWithError("block-local wiring crosses shards at this S: "
                              "the declared lookahead would be unsound");
          return;
        }
      }
    }
    for (int pe = 0; pe < pes; ++pe) {
      for (int slot = 0; slot < kShardedMpl; ++slot) {
        ss.home(pe).Spawn(ShardedPeDriver(b, pe, slot));
      }
    }
    ss.Run();
    events += ss.events_processed();
    windows += ss.windows();
    messages += ss.messages_posted();
    cross += ss.cross_shard_messages();
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["windows"] =
      benchmark::Counter(static_cast<double>(windows), benchmark::Counter::kAvgIterations);
  state.counters["events_per_window"] =
      windows > 0 ? static_cast<double>(events) / static_cast<double>(windows)
                  : 0.0;
  state.counters["cross_shard_frac"] =
      messages > 0 ? static_cast<double>(cross) / static_cast<double>(messages)
                   : 0.0;
}

void BM_ShardedClusterLight(benchmark::State& state) {
  // Block-local traffic never crosses shards for S in {1,2,4}, so the
  // workload may declare a coarse 5 ms lookahead (the Post contract): the
  // windows carry ~50x more events than the wire-bounded heavy shape —
  // this is the favorable case sharding exists for.
  RunShardedCluster(state, /*stride=*/0, /*msg_every=*/16,
                    /*lookahead_ms=*/5.0);
}
BENCHMARK(BM_ShardedClusterLight)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ShardedClusterHeavy(benchmark::State& state) {
  // Every message crosses to the opposite half of the cluster, so the
  // lookahead is pinned to the paper's 0.1 ms wire time: maximal mailbox
  // traffic on minimal windows — the adversarial synchronization-overhead
  // case.
  RunShardedCluster(state, /*stride=*/40, /*msg_every=*/2,
                    /*lookahead_ms=*/0.1);
}
BENCHMARK(BM_ShardedClusterHeavy)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ConfinedClusterHeavy(benchmark::State& state) {
  // The shard-confined *engine* at the paper's figure scale: 80 PEs plus
  // the control entity, full per-PE CPU/disk resource models, placement
  // round trips to the control node, scan fan-out with shipped results,
  // and the wire-pinned 0.1 ms lookahead.  Unlike the synthetic Sharded*
  // shapes this exercises engine/confined.cc — the executor protocol the
  // --shards fix introduces — so its S=1/2/4 trajectory is the honest
  // answer to "does --shards parallelize a cluster run now?".  Per-entity
  // results stay bit-identical across S (tests/sharded_test.cc pins it);
  // only the wall clock may move.
  const int shards = static_cast<int>(state.range(0));
  pdblb::ConfinedClusterOptions opt;
  opt.num_pes = 80;
  opt.shards = shards;
  opt.mpl = 4;
  opt.queries_per_slot = FastMode() ? 2 : 8;
  opt.report_rounds = FastMode() ? 4 : 8;
  uint64_t events = 0;
  uint64_t windows = 0;
  uint64_t cross = 0;
  int64_t queries = 0;
  for (auto _ : state) {
    pdblb::ConfinedClusterReport report = pdblb::RunConfinedCluster(opt);
    events += report.events;
    windows += report.windows;
    cross += report.cross_shard_messages;
    for (const pdblb::ConfinedPeResult& pe : report.per_pe) {
      queries += pe.queries;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["windows"] = benchmark::Counter(
      static_cast<double>(windows), benchmark::Counter::kAvgIterations);
  state.counters["events_per_window"] =
      windows > 0 ? static_cast<double>(events) / static_cast<double>(windows)
                  : 0.0;
  state.counters["queries"] = benchmark::Counter(
      static_cast<double>(queries), benchmark::Counter::kAvgIterations);
  state.counters["cross_shard_msgs"] = benchmark::Counter(
      static_cast<double>(cross), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ConfinedClusterHeavy)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace pdblb::sim

BENCHMARK_MAIN();
