// Copyright 2026 the pdblb authors. MIT license.
//
// Reproduces paper Fig. 8: "Influence of join complexity" — a fixed system
// of 60 PE; scan selectivity varied over {0.1, 1, 2, 5}% with per-complexity
// arrival rates chosen so at least one resource is highly loaded; reports
// the relative response-time improvement of each dynamic strategy over the
// static baseline p_su-opt + RANDOM.
//
// Shape to match (paper): dynamic strategies beat the static baseline for
// every complexity, but the improvement shrinks as the join grows (the
// optimal degree approaches the system size).  For small joins the low-
// degree strategies (p_su-noIO + LUM, MIN-IO) are best; for large joins the
// high-degree strategies (p_mu-cpu + LUM, OPT-IO-CPU, MIN-IO-SUOPT) win.

#include "bench/bench_common.h"

#include <map>

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

struct Complexity {
  double selectivity;
  double rate_per_pe;  // chosen to load the system (>75% on some resource)
};

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Fig. 8 — influence of join complexity (60 PE; RT improvement is "
      "computed vs p_su-opt + RANDOM, see summary below)",
      "selectivity %");

  const std::vector<Complexity> complexities = {
      {0.001, 1.5}, {0.01, 0.25}, {0.02, 0.12}, {0.05, 0.04}};
  const std::vector<StrategyConfig> strategy_set = {
      strategies::PsuOptRandom(),  // baseline
      strategies::PsuNoIOLUM(), strategies::MinIO(),
      strategies::MinIOSuOpt(), strategies::PmuCpuLUM(),
      strategies::OptIOCpu(),
  };

  for (const Complexity& c : complexities) {
    for (const StrategyConfig& strategy : strategy_set) {
      SystemConfig cfg;
      cfg.num_pes = 60;
      cfg.join_query.scan_selectivity = c.selectivity;
      cfg.join_query.arrival_rate_per_pe_qps = c.rate_per_pe;
      cfg.strategy = strategy;
      ApplyHorizon(cfg);
      std::string x = TextTable::Num(c.selectivity * 100, 1);
      fig.AddPoint("fig8/" + strategy.Name() + "/sel=" + x + "%", cfg,
                    strategy.Name(), c.selectivity, x);
    }
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
