// Copyright 2026 the pdblb authors. MIT license.
//
// Shared harness for the per-figure benchmark binaries.  Each driver
// declares a grid of sweep points (one per (series, x) coordinate); the
// harness executes the grid on the shared experiment runner
// (src/runner/sweep.h) and prints a paper-style table with one row per
// point.  All drivers share one CLI:
//
//   --jobs=N            run N sweep points concurrently (default 1).  The
//                       table and CSV are bit-identical for every N; jobs
//                       only changes wall-clock time.
//   --shards=S          scheduler shards per simulation (default: the
//                       per-point config, i.e. 1).  Like --jobs, the CSV is
//                       bit-identical for every S (CI-enforced); see
//                       SystemConfig::shards for the current semantics.
//   --csv=PATH          dump the deterministic result columns as CSV
//   --filter=SUBSTR     keep only points whose name contains SUBSTR
//                       (names are path-style: figure/series/x)
//   --seed=S            root seed; point i runs with a seed derived from
//                       (S, grid index i)
//   --faults=SPEC       apply a fault spec to every point (grammar in
//                       common/config.h ParseFaultSpec, e.g.
//                       "crash@8000:pe3;recover@12000:pe3" or
//                       "rate=0.5;mttr=3000;retries=3").  The CSV stays
//                       bit-identical across --jobs/--shards with faults on
//   --query-timeout-ms=T  give every query a T-ms deadline (0 disables);
//                       overrides the per-point and --faults timeout
//   --migration-bw=MB   cap elastic fragment migration at MB MB/s per
//                       active move (only observable when --faults schedules
//                       addpe/drainpe clauses; see docs/robustness.md)
//   --eviction=POLICY   override every point's buffer replacement policy
//                       (lru | lru-k | lfu | clock; see docs/bufmgr.md)
//   --fast              shrink warm-up/measurement (quick smoke runs)
//   --list              print the point names of the (filtered) grid, don't run
//   --quiet             suppress the per-point progress lines on stderr
//   --report-json=PATH  write {points, jobs, wall_seconds, points_per_min}
//                       (sweep-throughput trajectory for CI); with --trace
//                       also the per-subsystem attribution totals
//   --trace=PATH        enable kernel event tracing for every point and dump
//                       each point's trace to PATH.<grid_index>.csv (files
//                       and bytes are identical for every --jobs value);
//                       also prints the per-subsystem attribution table
//
// Environment (kept for compatibility with existing scripts):
//   PDBLB_BENCH_FAST=1        same as --fast
//   PDBLB_BENCH_CSV=<path>    same as --csv=<path>

#ifndef PDBLB_BENCH_BENCH_COMMON_H_
#define PDBLB_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "engine/cluster.h"
#include "runner/sweep.h"

namespace pdblb::bench {

namespace internal {
inline bool& FastFlag() {
  static bool fast = [] {
    const char* env = std::getenv("PDBLB_BENCH_FAST");
    return env != nullptr && env[0] == '1';
  }();
  return fast;
}
}  // namespace internal

inline bool FastMode() { return internal::FastFlag(); }

/// Applies the bench-wide measurement horizon (shortened in fast mode).
inline void ApplyHorizon(SystemConfig& cfg) {
  if (FastMode()) {
    cfg.warmup_ms = 1500.0;
    cfg.measurement_ms = 5000.0;
  } else {
    cfg.warmup_ms = 4000.0;
    cfg.measurement_ms = 20000.0;
  }
}

/// Parsed command line of a figure binary.
struct BenchOptions {
  int jobs = 1;
  int shards = 0;  // 0: keep each point's configured value
  uint64_t seed = 42;
  std::string csv_path;     // empty: no CSV
  std::string fault_spec;   // empty: no fault override (--faults=SPEC)
  double query_timeout_ms = -1.0;  // < 0: keep per-point configuration
  double migration_bw_mbps = -1.0;  // <= 0: keep per-point configuration
  std::string eviction;     // empty: keep per-point policy (--eviction=P)
  std::string filter;       // empty: whole grid
  std::string report_json;  // empty: no sweep-throughput report
  std::string trace_path;   // empty: tracing off
  bool list_only = false;
  bool quiet = false;
};

/// A figure under construction: title, axis name and the point grid.
class Figure {
 public:
  void SetTitle(std::string title, std::string x_name) {
    title_ = std::move(title);
    x_name_ = std::move(x_name);
  }

  /// Declares one grid point.  `name` must be unique within the figure and
  /// follows the path-style convention figure/series/x (what --filter and
  /// --list operate on).
  void AddPoint(std::string name, SystemConfig cfg, std::string series,
                double x, std::string x_label) {
    sweep_.Add(runner::SweepPoint{std::move(name), std::move(series), x,
                                  std::move(x_label), std::move(cfg)});
  }

  const std::string& title() const { return title_; }
  const std::string& x_name() const { return x_name_; }
  runner::Sweep& sweep() { return sweep_; }

 private:
  std::string title_ = "figure";
  std::string x_name_ = "x";
  runner::Sweep sweep_;
};

/// Parses the shared CLI.  Returns -1 to continue; otherwise an exit code
/// (e.g. after --help or on a malformed flag).
inline int ParseBenchArgs(int argc, char** argv, BenchOptions& opts) {
  auto value_of = [](const char* arg, const char* flag) -> const char* {
    size_t len = std::strlen(flag);
    if (std::strncmp(arg, flag, len) == 0 && arg[len] == '=') {
      return arg + len + 1;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = value_of(arg, "--jobs")) {
      char* end = nullptr;
      long jobs = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || jobs < 1 || jobs > 1 << 20) {
        std::fprintf(stderr, "invalid --jobs value: %s\n", v);
        return 2;
      }
      opts.jobs = static_cast<int>(jobs);
    } else if (const char* v = value_of(arg, "--shards")) {
      char* end = nullptr;
      long shards = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || shards < 1 || shards > 4096) {
        std::fprintf(stderr, "invalid --shards value: %s\n", v);
        return 2;
      }
      opts.shards = static_cast<int>(shards);
    } else if (const char* v = value_of(arg, "--seed")) {
      char* end = nullptr;
      opts.seed = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "invalid --seed value: %s\n", v);
        return 2;
      }
    } else if (const char* v = value_of(arg, "--csv")) {
      opts.csv_path = v;
    } else if (const char* v = value_of(arg, "--faults")) {
      // Validate eagerly so a typo fails before the sweep starts.
      FaultConfig probe;
      Status st = ParseFaultSpec(v, &probe);
      if (!st.ok()) {
        std::fprintf(stderr, "invalid --faults value: %s\n",
                     st.ToString().c_str());
        return 2;
      }
      opts.fault_spec = v;
    } else if (const char* v = value_of(arg, "--eviction")) {
      // Validate eagerly so a typo fails before the sweep starts.
      EvictionPolicyKind probe;
      Status st = ParseEvictionPolicy(v, &probe);
      if (!st.ok()) {
        std::fprintf(stderr, "invalid --eviction value: %s\n",
                     st.ToString().c_str());
        return 2;
      }
      opts.eviction = v;
    } else if (const char* v = value_of(arg, "--query-timeout-ms")) {
      char* end = nullptr;
      double timeout = std::strtod(v, &end);
      if (end == v || *end != '\0' || timeout < 0.0) {
        std::fprintf(stderr, "invalid --query-timeout-ms value: %s\n", v);
        return 2;
      }
      opts.query_timeout_ms = timeout;
    } else if (const char* v = value_of(arg, "--migration-bw")) {
      char* end = nullptr;
      double bw = std::strtod(v, &end);
      if (end == v || *end != '\0' || bw <= 0.0) {
        std::fprintf(stderr, "invalid --migration-bw value: %s\n", v);
        return 2;
      }
      opts.migration_bw_mbps = bw;
    } else if (const char* v = value_of(arg, "--filter")) {
      opts.filter = v;
    } else if (const char* v = value_of(arg, "--report-json")) {
      opts.report_json = v;
    } else if (const char* v = value_of(arg, "--trace")) {
      opts.trace_path = v;
    } else if (std::strcmp(arg, "--fast") == 0) {
      internal::FastFlag() = true;
    } else if (std::strcmp(arg, "--list") == 0) {
      opts.list_only = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      opts.quiet = true;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      std::fprintf(stderr,
                   "usage: %s [--jobs=N] [--shards=S] [--csv=PATH] "
                   "[--faults=SPEC] [--query-timeout-ms=T] "
                   "[--migration-bw=MB] "
                   "[--eviction=lru|lru-k|lfu|clock] "
                   "[--filter=SUBSTR] [--seed=S] [--fast] [--list] [--quiet] "
                   "[--report-json=PATH] [--trace=PATH]\n"
                   "\n"
                   "  --jobs=N    run sweep points on N processes (real "
                   "parallelism for every driver)\n"
                   "  --shards=S  scheduler shards inside one simulation.  "
                   "Honest scope: the figure\n"
                   "              drivers are not shard-confined, so S>1 "
                   "runs them on ONE thread via the\n"
                   "              windowed path, bit-identical to S=1 (a "
                   "one-time stderr note says so).\n"
                   "              Only confinement-disciplined workloads "
                   "parallelize: the confined\n"
                   "              engine (bench_simkern ConfinedCluster*) "
                   "and the Sharded* kernel\n"
                   "              shapes.  See docs/sharding.md.\n"
                   "\n"
                   "--faults=SPEC clause grammar (clauses joined by ';', "
                   "parse errors quote the\n"
                   "offending clause and its byte offset; docs/robustness.md "
                   "has the semantics):\n"
                   "\n"
                   "  clause                          effect\n"
                   "  ------------------------------  ------------------------"
                   "--------------------\n"
                   "  crash@<ms>:pe<N>                crash PE N at <ms>\n"
                   "  recover@<ms>:pe<N>              recover PE N at <ms>\n"
                   "  slowdisk@<ms>:pe<N>:x<M>        multiply PE N's disk "
                   "service by M (>=1)\n"
                   "  partition@<ms>:pe<A>-pe<B>      cut the A<->B link\n"
                   "  heal@<ms>:pe<A>-pe<B>           restore the A<->B link\n"
                   "  slowlink@<ms>:pe<A>-pe<B>:x<M>  multiply the A<->B wire "
                   "delay by M (>=1)\n"
                   "  addpe@<ms>:pe<N>                elastic resize: spare "
                   "PE N joins at <ms>\n"
                   "  drainpe@<ms>:pe<N>              elastic resize: migrate "
                   "PE N out, then leave\n"
                   "  rate=<r>                        random crashes per PE "
                   "per minute\n"
                   "  mttr=<ms>                       mean time to repair for "
                   "random crashes\n"
                   "  timeout=<ms>                    per-query deadline (0 "
                   "disables)\n"
                   "  timeout_frac=<f>                fraction of queries "
                   "carrying the deadline\n"
                   "  retries=<n>                     retry budget per query "
                   "(RetryPolicy)\n"
                   "  iorate=<r>                      transient disk error "
                   "probability per access\n",
                   argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
      return 2;
    }
  }
  if (opts.csv_path.empty()) {
    if (const char* csv = std::getenv("PDBLB_BENCH_CSV")) opts.csv_path = csv;
  }
  return -1;
}

/// Prints the paper-style figure table (stdout).  The kern Mev/s column is
/// wall-clock derived and intentionally lives only here, never in the CSV.
inline void PrintFigureTable(const Figure& fig,
                             const std::vector<runner::SweepResult>& results) {
  if (results.empty()) return;
  std::printf("\n=== %s ===\n", fig.title().c_str());
  TextTable t({fig.x_name(), "strategy", "join RT [ms]", "deg", "CPU util",
               "disk util", "mem util", "buf hit", "temp pg/join", "join QPS",
               "OLTP RT [ms]", "OLTP TPS", "kern Mev/s"});
  for (const runner::SweepResult& res : results) {
    const MetricsReport& r = res.report;
    t.AddRow({res.point.x_label, res.point.series,
              TextTable::Num(r.join_rt_ms, 1), TextTable::Num(r.avg_degree, 1),
              TextTable::Num(r.cpu_utilization, 2),
              TextTable::Num(r.disk_utilization, 2),
              TextTable::Num(r.memory_utilization, 2),
              r.buffer_hits + r.buffer_misses > 0
                  ? TextTable::Num(r.buffer_hit_ratio, 2)
                  : "-",
              TextTable::Num(r.temp_pages_written_per_join, 1),
              TextTable::Num(r.join_throughput_qps, 2),
              r.oltp_completed > 0 ? TextTable::Num(r.oltp_rt_ms, 1) : "-",
              r.oltp_completed > 0 ? TextTable::Num(r.oltp_throughput_tps, 0)
                                   : "-",
              TextTable::Num(r.kernel_events_per_sec / 1e6, 1)});
  }
  std::fputs(t.ToString().c_str(), stdout);
}

/// True when any point recorded fault activity (crashes, shed queries,
/// disk errors, partitions, ...).  Gates the robustness table and JSON
/// block so fault-free output stays byte-identical.
inline bool AnyFaultActivity(const std::vector<runner::SweepResult>& results) {
  for (const runner::SweepResult& res : results) {
    const MetricsReport& r = res.report;
    if (r.pe_crashes > 0 || r.queries_retried > 0 || r.queries_timed_out > 0 ||
        r.queries_failed > 0 || r.queries_degraded > 0 || r.queries_shed > 0 ||
        r.io_errors > 0 || r.link_partitions > 0 || r.slow_disk_ms > 0.0) {
      return true;
    }
  }
  return false;
}

/// Prints the robustness table (stdout): per-point fault-domain activity and
/// query outcomes.  Printed only when some point saw fault activity, so
/// fault-free runs produce exactly the historical output.
inline void PrintRobustnessTable(
    const Figure& fig, const std::vector<runner::SweepResult>& results) {
  if (!AnyFaultActivity(results)) return;
  std::printf("\n=== robustness (%s) ===\n", fig.title().c_str());
  TextTable t({fig.x_name(), "strategy", "done", "shed", "degr", "retry",
               "t/o", "fail", "io err", "io rtry", "parts", "slow ms",
               "crash"});
  for (const runner::SweepResult& res : results) {
    const MetricsReport& r = res.report;
    t.AddRow({res.point.x_label, res.point.series,
              std::to_string(r.joins_completed),
              std::to_string(r.queries_shed),
              std::to_string(r.queries_degraded),
              std::to_string(r.queries_retried),
              std::to_string(r.queries_timed_out),
              std::to_string(r.queries_failed), std::to_string(r.io_errors),
              std::to_string(r.io_retries), std::to_string(r.link_partitions),
              TextTable::Num(r.slow_disk_ms, 0),
              std::to_string(r.pe_crashes)});
  }
  std::fputs(t.ToString().c_str(), stdout);
}

/// True when any point performed an elastic resize (membership change or
/// fragment migration).  Gates the elasticity table and JSON block so
/// resize-free output stays byte-identical.
inline bool AnyElasticActivity(
    const std::vector<runner::SweepResult>& results) {
  for (const runner::SweepResult& res : results) {
    const MetricsReport& r = res.report;
    if (r.pes_added > 0 || r.pes_drained > 0 || r.fragments_migrated > 0 ||
        r.migration_pages_discarded > 0) {
      return true;
    }
  }
  return false;
}

/// Prints the elasticity table (stdout): per-point membership changes and
/// migration volume.  Printed only when some point resized.
inline void PrintElasticityTable(
    const Figure& fig, const std::vector<runner::SweepResult>& results) {
  if (!AnyElasticActivity(results)) return;
  std::printf("\n=== elasticity (%s) ===\n", fig.title().c_str());
  TextTable t({fig.x_name(), "strategy", "added", "drained", "frags",
               "pages", "discarded", "replans"});
  for (const runner::SweepResult& res : results) {
    const MetricsReport& r = res.report;
    t.AddRow({res.point.x_label, res.point.series,
              std::to_string(r.pes_added), std::to_string(r.pes_drained),
              std::to_string(r.fragments_migrated),
              std::to_string(r.migration_pages_moved),
              std::to_string(r.migration_pages_discarded),
              std::to_string(r.migrations_replanned)});
  }
  std::fputs(t.ToString().c_str(), stdout);
}

/// Per-subsystem attribution summed over all points of a sweep (zeros when
/// tracing was off or compiled out).
struct TraceTotals {
  bool any = false;
  uint64_t events[sim::kNumTraceSubsystems] = {};
  double sim_time_ms[sim::kNumTraceSubsystems] = {};
};

inline TraceTotals SumTraceTotals(
    const std::vector<runner::SweepResult>& results) {
  TraceTotals t;
  for (const runner::SweepResult& res : results) {
    if (!res.report.trace_enabled) continue;
    t.any = true;
    for (size_t s = 0; s < sim::kNumTraceSubsystems; ++s) {
      t.events[s] += res.report.trace_subsystem_events[s];
      t.sim_time_ms[s] += res.report.trace_subsystem_time_ms[s];
    }
  }
  return t;
}

/// Prints the per-subsystem attribution table (stdout): where the runs'
/// simulated time went, and how many kernel events each subsystem caused.
inline void PrintTraceAttribution(const TraceTotals& totals) {
  if (!totals.any) return;
  double total_ms = 0.0;
  uint64_t total_events = 0;
  for (size_t s = 0; s < sim::kNumTraceSubsystems; ++s) {
    total_ms += totals.sim_time_ms[s];
    total_events += totals.events[s];
  }
  std::printf("\n=== trace attribution (all points) ===\n");
  TextTable t({"subsystem", "events", "sim time [ms]", "share"});
  for (size_t s = 0; s < sim::kNumTraceSubsystems; ++s) {
    if (totals.events[s] == 0) continue;
    t.AddRow({sim::TraceSubsystemName(s),
              std::to_string(totals.events[s]),
              TextTable::Num(totals.sim_time_ms[s], 1),
              TextTable::Num(total_ms > 0.0
                                 ? 100.0 * totals.sim_time_ms[s] / total_ms
                                 : 0.0,
                             1) + "%"});
  }
  t.AddRow({"total", std::to_string(total_events),
            TextTable::Num(total_ms, 1), "100.0%"});
  std::fputs(t.ToString().c_str(), stdout);
}

/// Runs the (filtered) grid, prints the table, writes CSV/JSON artifacts.
inline int FigureMain(Figure& fig, const BenchOptions& opts) {
  if (!opts.filter.empty()) {
    fig.sweep().Filter(opts.filter);
  }
  if (opts.list_only) {
    for (const runner::SweepPoint& p : fig.sweep().points()) {
      std::printf("%s\n", p.name.c_str());
    }
    return 0;
  }
  if (fig.sweep().empty()) {
    std::fprintf(stderr, "no points match filter '%s'\n", opts.filter.c_str());
    return 2;
  }

  runner::SweepOptions run_opts;
  run_opts.jobs = opts.jobs;
  run_opts.shards = opts.shards;
  run_opts.root_seed = opts.seed;
  run_opts.fault_spec = opts.fault_spec;
  run_opts.query_timeout_ms = opts.query_timeout_ms;
  run_opts.migration_bw_mbps = opts.migration_bw_mbps;
  run_opts.eviction = opts.eviction;
  run_opts.trace_path = opts.trace_path;
  if (!opts.quiet) {
    run_opts.on_point_done = [](const runner::SweepPoint& point,
                                const MetricsReport& report, size_t finished,
                                size_t total) {
      std::fprintf(stderr, "[%zu/%zu] %s  join_rt=%.1f ms\n", finished, total,
                   point.name.c_str(), report.join_rt_ms);
    };
  }

  auto wall_start = std::chrono::steady_clock::now();
  std::vector<runner::SweepResult> results = fig.sweep().Run(run_opts);
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  PrintFigureTable(fig, results);
  PrintRobustnessTable(fig, results);
  PrintElasticityTable(fig, results);
  TraceTotals trace_totals = SumTraceTotals(results);
  PrintTraceAttribution(trace_totals);
  std::printf("\n%zu points in %.1f s with --jobs=%d (%.1f points/min)\n",
              results.size(), wall_seconds, opts.jobs,
              wall_seconds > 0.0 ? 60.0 * static_cast<double>(results.size()) /
                                       wall_seconds
                                 : 0.0);

  if (!opts.csv_path.empty()) {
    Status st = runner::WriteResultsCsv(opts.csv_path, results);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (!opts.report_json.empty()) {
    std::FILE* f = std::fopen(opts.report_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opts.report_json.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\"title\": \"%s\", \"points\": %zu, \"jobs\": %d, "
                 "\"wall_seconds\": %.3f, \"points_per_min\": %.2f",
                 fig.title().c_str(), results.size(), opts.jobs, wall_seconds,
                 wall_seconds > 0.0
                     ? 60.0 * static_cast<double>(results.size()) /
                           wall_seconds
                     : 0.0);
    if (trace_totals.any) {
      // Per-subsystem attribution over the whole sweep (seed-deterministic,
      // unlike the wall-clock fields above).
      std::fprintf(f, ", \"trace_attribution\": {");
      bool first = true;
      for (size_t s = 0; s < sim::kNumTraceSubsystems; ++s) {
        if (trace_totals.events[s] == 0) continue;
        std::fprintf(f, "%s\"%s\": {\"events\": %llu, \"sim_time_ms\": %.3f}",
                     first ? "" : ", ", sim::TraceSubsystemName(s),
                     static_cast<unsigned long long>(trace_totals.events[s]),
                     trace_totals.sim_time_ms[s]);
        first = false;
      }
      std::fprintf(f, "}");
    }
    if (AnyFaultActivity(results)) {
      // Per-point query outcomes vs fault activity (seed-deterministic);
      // omitted for fault-free sweeps so historical artifacts don't change.
      std::fprintf(f, ", \"robustness\": [");
      for (size_t i = 0; i < results.size(); ++i) {
        const MetricsReport& r = results[i].report;
        std::fprintf(
            f,
            "%s{\"point\": \"%s\", \"completed\": %lld, \"shed\": %lld, "
            "\"degraded\": %lld, \"retried\": %lld, \"timed_out\": %lld, "
            "\"failed\": %lld, \"io_errors\": %lld, \"io_retries\": %lld, "
            "\"link_partitions\": %lld, \"slow_disk_ms\": %.3f, "
            "\"pe_crashes\": %lld}",
            i == 0 ? "" : ", ", results[i].point.name.c_str(),
            static_cast<long long>(r.joins_completed),
            static_cast<long long>(r.queries_shed),
            static_cast<long long>(r.queries_degraded),
            static_cast<long long>(r.queries_retried),
            static_cast<long long>(r.queries_timed_out),
            static_cast<long long>(r.queries_failed),
            static_cast<long long>(r.io_errors),
            static_cast<long long>(r.io_retries),
            static_cast<long long>(r.link_partitions), r.slow_disk_ms,
            static_cast<long long>(r.pe_crashes));
      }
      std::fprintf(f, "]");
    }
    if (AnyElasticActivity(results)) {
      // Per-point membership changes and migration volume
      // (seed-deterministic); omitted for resize-free sweeps so historical
      // artifacts don't change.
      std::fprintf(f, ", \"elasticity\": [");
      for (size_t i = 0; i < results.size(); ++i) {
        const MetricsReport& r = results[i].report;
        std::fprintf(
            f,
            "%s{\"point\": \"%s\", \"pes_added\": %lld, "
            "\"pes_drained\": %lld, \"fragments_migrated\": %lld, "
            "\"migration_pages_moved\": %lld, "
            "\"migration_pages_discarded\": %lld, "
            "\"migrations_replanned\": %lld}",
            i == 0 ? "" : ", ", results[i].point.name.c_str(),
            static_cast<long long>(r.pes_added),
            static_cast<long long>(r.pes_drained),
            static_cast<long long>(r.fragments_migrated),
            static_cast<long long>(r.migration_pages_moved),
            static_cast<long long>(r.migration_pages_discarded),
            static_cast<long long>(r.migrations_replanned));
      }
      std::fprintf(f, "]");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
  }
  return 0;
}

}  // namespace pdblb::bench

/// Standard main for a figure driver: parse the shared CLI, let the driver
/// declare its grid (setup_fn(Figure&)), execute it.
#define PDBLB_BENCH_MAIN(setup_fn)                                     \
  int main(int argc, char** argv) {                                    \
    ::pdblb::bench::BenchOptions opts;                                 \
    if (int rc = ::pdblb::bench::ParseBenchArgs(argc, argv, opts);     \
        rc >= 0) {                                                     \
      return rc;                                                       \
    }                                                                  \
    ::pdblb::bench::Figure fig;                                        \
    setup_fn(fig);                                                     \
    return ::pdblb::bench::FigureMain(fig, opts);                      \
  }

#endif  // PDBLB_BENCH_BENCH_COMMON_H_
