// Copyright 2026 the pdblb authors. MIT license.
//
// Shared infrastructure for the per-figure benchmark binaries.  Every bench
// registers one google-benchmark entry per (series, x) point; each entry
// runs a full cluster simulation once and exports the measurements as
// benchmark counters.  After all benchmarks ran, a paper-style table with
// one row per point is printed so the figure's series can be compared at a
// glance.
//
// Environment:
//   PDBLB_BENCH_FAST=1        shrink warm-up/measurement (quick smoke runs)
//   PDBLB_BENCH_CSV=<path>    additionally dump the figure rows as CSV

#ifndef PDBLB_BENCH_BENCH_COMMON_H_
#define PDBLB_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/table.h"
#include "engine/cluster.h"

namespace pdblb::bench {

inline bool FastMode() {
  const char* env = std::getenv("PDBLB_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

/// Applies the bench-wide measurement horizon (shortened in fast mode).
inline void ApplyHorizon(SystemConfig& cfg) {
  if (FastMode()) {
    cfg.warmup_ms = 1500.0;
    cfg.measurement_ms = 5000.0;
  } else {
    cfg.warmup_ms = 4000.0;
    cfg.measurement_ms = 20000.0;
  }
}

/// One collected figure point.
struct FigureRow {
  std::string series;
  double x = 0.0;
  std::string x_label;
  MetricsReport report;
};

/// Global collector; prints the figure table at the end of main().
class FigureTable {
 public:
  static FigureTable& Get() {
    static FigureTable table;
    return table;
  }

  void SetTitle(std::string title, std::string x_name) {
    title_ = std::move(title);
    x_name_ = std::move(x_name);
  }

  void Add(FigureRow row) { rows_.push_back(std::move(row)); }

  void Print() const {
    if (rows_.empty()) return;
    std::printf("\n=== %s ===\n", title_.c_str());
    TextTable t({x_name_, "strategy", "join RT [ms]", "deg", "CPU util",
                 "disk util", "mem util", "temp pg/join", "join QPS",
                 "OLTP RT [ms]", "OLTP TPS", "kern Mev/s"});
    for (const auto& row : rows_) {
      const MetricsReport& r = row.report;
      t.AddRow({row.x_label, row.series, TextTable::Num(r.join_rt_ms, 1),
                TextTable::Num(r.avg_degree, 1),
                TextTable::Num(r.cpu_utilization, 2),
                TextTable::Num(r.disk_utilization, 2),
                TextTable::Num(r.memory_utilization, 2),
                TextTable::Num(r.temp_pages_written_per_join, 1),
                TextTable::Num(r.join_throughput_qps, 2),
                r.oltp_completed > 0 ? TextTable::Num(r.oltp_rt_ms, 1) : "-",
                r.oltp_completed > 0
                    ? TextTable::Num(r.oltp_throughput_tps, 0)
                    : "-",
                TextTable::Num(r.kernel_events_per_sec / 1e6, 1)});
    }
    std::fputs(t.ToString().c_str(), stdout);
    if (const char* csv = std::getenv("PDBLB_BENCH_CSV"); csv != nullptr) {
      WriteCsv(csv);
    }
  }

  /// Dumps the rows as CSV (for external plotting tools).
  void WriteCsv(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write CSV to %s\n", path.c_str());
      return;
    }
    // kernel_events dropped with the frameless-awaiter kernel (one event
    // per contended acquisition instead of two) and kernel_handoffs counts
    // the calendar-bypassing wake-ups that replaced the rest.
    std::fprintf(f,
                 "x,series,join_rt_ms,avg_degree,cpu_util,disk_util,"
                 "mem_util,temp_pages_per_join,join_qps,oltp_rt_ms,"
                 "oltp_tps,scan_rt_ms,update_rt_ms,multiway_rt_ms,"
                 "lock_waits,kernel_events,kernel_handoffs,"
                 "kernel_events_per_sec\n");
    for (const auto& row : rows_) {
      const MetricsReport& r = row.report;
      std::fprintf(f,
                   "%s,\"%s\",%.3f,%.3f,%.4f,%.4f,%.4f,%.2f,%.3f,%.3f,%.3f,"
                   "%.3f,%.3f,%.3f,%lld,%llu,%llu,%.0f\n",
                   row.x_label.c_str(), row.series.c_str(), r.join_rt_ms,
                   r.avg_degree, r.cpu_utilization, r.disk_utilization,
                   r.memory_utilization, r.temp_pages_written_per_join,
                   r.join_throughput_qps, r.oltp_rt_ms, r.oltp_throughput_tps,
                   r.scan_rt_ms, r.update_rt_ms, r.multiway_rt_ms,
                   static_cast<long long>(r.lock_waits),
                   static_cast<unsigned long long>(r.kernel_events),
                   static_cast<unsigned long long>(r.kernel_handoffs),
                   r.kernel_events_per_sec);
    }
    std::fclose(f);
  }

 private:
  std::string title_ = "figure";
  std::string x_name_ = "x";
  std::vector<FigureRow> rows_;
};

/// Runs one simulation point and exports counters + a figure row.
inline void RunPoint(benchmark::State& state, SystemConfig cfg,
                     const std::string& series, double x,
                     const std::string& x_label) {
  MetricsReport report;
  for (auto _ : state) {
    Cluster cluster(cfg);
    report = cluster.Run();
  }
  state.counters["join_rt_ms"] = report.join_rt_ms;
  state.counters["avg_degree"] = report.avg_degree;
  state.counters["cpu_util"] = report.cpu_utilization;
  state.counters["disk_util"] = report.disk_utilization;
  state.counters["mem_util"] = report.memory_utilization;
  state.counters["temp_pages_per_join"] = report.temp_pages_written_per_join;
  state.counters["join_qps"] = report.join_throughput_qps;
  if (report.oltp_completed > 0) {
    state.counters["oltp_rt_ms"] = report.oltp_rt_ms;
    state.counters["oltp_tps"] = report.oltp_throughput_tps;
  }
  state.counters["kernel_meps"] = report.kernel_events_per_sec / 1e6;
  FigureTable::Get().Add(FigureRow{series, x, x_label, report});
}

/// Registers one point as a google-benchmark entry.
inline void RegisterPoint(const std::string& name, SystemConfig cfg,
                          const std::string& series, double x,
                          const std::string& x_label) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [cfg, series, x, x_label](benchmark::State& state) {
        RunPoint(state, cfg, series, x, x_label);
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

/// Standard main: run all registered benchmarks, then print the table.
inline int BenchMain(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  FigureTable::Get().Print();
  return 0;
}

}  // namespace pdblb::bench

#define PDBLB_BENCH_MAIN(setup_fn)                       \
  int main(int argc, char** argv) {                      \
    setup_fn();                                          \
    return ::pdblb::bench::BenchMain(argc, argv);        \
  }

#endif  // PDBLB_BENCH_BENCH_COMMON_H_
