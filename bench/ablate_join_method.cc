// Copyright 2026 the pdblb authors. MIT license.
//
// Ablation — local join method: the paper uses the memory-adaptive PPHJ
// ([23]) at the join processors; its predecessor study [26] used sort-merge.
// This bench compares the two under (a) a pure join workload with shrinking
// buffers and (b) a mixed query/OLTP workload where OLTP has memory
// priority.
//
// Expected shape: with ample memory the methods are close (both avoid temp
// I/O); under memory pressure PPHJ degrades gracefully (partition-wise
// spilling) while sort-merge pays full run-sort/merge I/O; with OLTP in the
// mix, PPHJ yields memory to transactions (better OLTP response times) while
// sort-merge's rigid reservations starve them.

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

std::string MethodName(LocalJoinMethod m) {
  return m == LocalJoinMethod::kPPHJ ? "PPHJ" : "sort-merge";
}

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Ablation — local join method (PPHJ vs. sort-merge), 40 PE, 1% sel.",
      "buffer pages");

  const std::vector<int> buffers = {50, 25, 12, 6};
  for (int pages : buffers) {
    for (auto method :
         {LocalJoinMethod::kPPHJ, LocalJoinMethod::kSortMerge}) {
      SystemConfig cfg;
      cfg.num_pes = 40;
      cfg.strategy = strategies::OptIOCpu();
      cfg.local_join_method = method;
      cfg.buffer.buffer_pages = pages;
      cfg.join_query.arrival_rate_per_pe_qps = 0.10;
      ApplyHorizon(cfg);
      fig.AddPoint(
          "join_method/" + MethodName(method) + "/" + std::to_string(pages),
          cfg, MethodName(method), pages, std::to_string(pages));
    }
  }

  // Mixed workload: joins + OLTP with memory priority on all nodes.
  for (auto method : {LocalJoinMethod::kPPHJ, LocalJoinMethod::kSortMerge}) {
    SystemConfig cfg;
    cfg.num_pes = 40;
    cfg.strategy = strategies::OptIOCpu();
    cfg.local_join_method = method;
    cfg.join_query.arrival_rate_per_pe_qps = 0.075;
    cfg.oltp.enabled = true;
    cfg.oltp.placement = OltpPlacement::kAllNodes;
    cfg.oltp.tps_per_node = 50.0;
    ApplyHorizon(cfg);
    fig.AddPoint("join_method/" + MethodName(method) + "/oltp-mix", cfg,
                  MethodName(method) + " + OLTP", 0, "OLTP mix");
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
