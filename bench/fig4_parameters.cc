// Copyright 2026 the pdblb authors. MIT license.
//
// Reproduces paper Fig. 4: "System configuration, database and query
// profile" — dumps every default parameter of the simulation so runs are
// self-documenting, and verifies the derived quantities the paper states
// (relation sizes in MB, p_su-noIO, p_su-opt).

#include <cstdio>

#include "common/table.h"
#include "core/cost_model.h"
#include "engine/cluster.h"

namespace {

using namespace pdblb;

void PrintParameters() {
  SystemConfig cfg;
  std::printf("=== Fig. 4 — system configuration, database and query "
              "profile (defaults) ===\n\n");

  TextTable conf({"configuration setting", "value"});
  conf.AddRow({"number of PE (#PE, n)", "10, 20, 40, 60, 80 (default 40)"});
  conf.AddRow({"CPU speed per PE", TextTable::Num(cfg.mips_per_pe, 0) +
                                       " MIPS"});
  conf.AddRow({"avg. instructions: initiate a query/transaction",
               std::to_string(cfg.costs.initiate_txn)});
  conf.AddRow({"avg. instructions: terminate a query/transaction",
               std::to_string(cfg.costs.terminate_txn)});
  conf.AddRow({"avg. instructions: I/O", std::to_string(cfg.costs.io_overhead)});
  conf.AddRow({"avg. instructions: send message",
               std::to_string(cfg.costs.send_message)});
  conf.AddRow({"avg. instructions: receive message",
               std::to_string(cfg.costs.receive_message)});
  conf.AddRow({"avg. instructions: copy 8 KB message",
               std::to_string(cfg.costs.copy_message)});
  conf.AddRow({"avg. instructions: read a tuple from memory page",
               std::to_string(cfg.costs.read_tuple)});
  conf.AddRow({"avg. instructions: hash a tuple",
               std::to_string(cfg.costs.hash_tuple)});
  conf.AddRow({"avg. instructions: insert a tuple into hash table",
               std::to_string(cfg.costs.insert_hash_table)});
  conf.AddRow({"avg. instructions: write a tuple into output buffer",
               std::to_string(cfg.costs.write_output_tuple)});
  conf.AddRow({"avg. instructions: probe hash table",
               std::to_string(cfg.costs.probe_hash_table)});
  conf.AddRow({"buffer manager: page size",
               std::to_string(cfg.buffer.page_size_bytes) + " B"});
  conf.AddRow({"buffer manager: buffer size",
               std::to_string(cfg.buffer.buffer_pages) + " pages (0.4 MB)"});
  conf.AddRow({"disk devices: number of disk servers per PE",
               std::to_string(cfg.disk.disks_per_pe) + " (varied)"});
  conf.AddRow({"disk devices: controller service time",
               TextTable::Num(cfg.disk.controller_time_per_page_ms, 1) +
                   " ms (per page)"});
  conf.AddRow({"disk devices: transmission time per page",
               TextTable::Num(cfg.disk.transmission_time_per_page_ms, 1) +
                   " ms"});
  conf.AddRow({"disk devices: avg. disk access time",
               TextTable::Num(cfg.disk.avg_access_time_ms, 0) + " ms"});
  conf.AddRow({"disk devices: prefetching delay per page",
               TextTable::Num(cfg.disk.prefetch_delay_per_page_ms, 0) +
                   " ms"});
  conf.AddRow({"disk devices: disk cache",
               std::to_string(cfg.disk.disk_cache_pages) + " pages"});
  conf.AddRow({"disk devices: prefetching size",
               std::to_string(cfg.disk.prefetch_pages) + " pages"});
  std::fputs(conf.ToString().c_str(), stdout);

  TextTable db({"database / query setting", "value"});
  db.AddRow({"relation A: #tuples", std::to_string(cfg.relation_a.num_tuples) +
                                        " (100 MB)"});
  db.AddRow({"relation A: tuple size",
             std::to_string(cfg.relation_a.tuple_size_bytes) + " B"});
  db.AddRow({"relation A: blocking factor",
             std::to_string(cfg.relation_a.blocking_factor)});
  db.AddRow({"relation A: index type", "clustered B+-tree"});
  db.AddRow({"relation A: allocation to PE", "partial declustering (20% of #PE)"});
  db.AddRow({"relation B: #tuples", std::to_string(cfg.relation_b.num_tuples) +
                                        " (400 MB)"});
  db.AddRow({"relation B: tuple size",
             std::to_string(cfg.relation_b.tuple_size_bytes) + " B"});
  db.AddRow({"relation B: blocking factor",
             std::to_string(cfg.relation_b.blocking_factor)});
  db.AddRow({"relation B: index type", "clustered B+-tree"});
  db.AddRow({"relation B: allocation to PE", "partial declustering (80% of #PE)"});
  db.AddRow({"join queries: access method", "via clustered index"});
  db.AddRow({"join queries: scan selectivity",
             TextTable::Num(cfg.join_query.scan_selectivity * 100, 1) +
                 " % (varied)"});
  db.AddRow({"join queries: no. of result tuples",
             "100 % of the inner relation"});
  db.AddRow({"join queries: fudge factor hash table",
             TextTable::Num(cfg.join_query.fudge_factor, 2)});
  db.AddRow({"join queries: arrival rate",
             TextTable::Num(cfg.join_query.arrival_rate_per_pe_qps, 2) +
                 " QPS/PE (varied)"});
  db.AddRow({"join queries: query placement", "random (uniform over all PE)"});
  std::fputs(db.ToString().c_str(), stdout);

  // Derived values the paper states in the text.
  std::printf("\nDerived (1%% selectivity, n = 80):\n");
  SystemConfig derived;
  derived.num_pes = 80;
  CostModel cm(derived);
  TextTable d({"quantity", "paper", "this implementation"});
  d.AddRow({"relation A pages", "12500 (100 MB)",
            std::to_string(SystemConfig::RelationPages(derived.relation_a))});
  d.AddRow({"relation B pages", "50000 (400 MB)",
            std::to_string(SystemConfig::RelationPages(derived.relation_b))});
  d.AddRow({"p_su-noIO", "3", std::to_string(cm.PsuNoIO())});
  d.AddRow({"p_su-opt", "30", std::to_string(cm.PsuOpt())});
  std::fputs(d.ToString().c_str(), stdout);
}

}  // namespace

int main() {
  // Fig. 4 is a parameter table, not a sweep: no simulation runs, so the
  // shared runner CLI (--jobs etc.) does not apply here.
  SystemConfig defaults;
  Status st = defaults.Validate();
  if (!st.ok()) {
    std::fprintf(stderr, "default SystemConfig invalid: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  PrintParameters();
  return 0;
}
