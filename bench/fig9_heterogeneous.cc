// Copyright 2026 the pdblb authors. MIT license.
//
// Reproduces paper Fig. 9: "Static vs. dynamic load balancing for mixed
// workloads" — join queries (0.075 QPS/PE) concurrent with a debit-credit
// OLTP load of 100 TPS per OLTP node; 5 disks per PE.
//   Fig. 9a: OLTP on the A nodes (20% of the PEs)
//   Fig. 9b: OLTP on the B nodes (80% of the PEs, 4x the OLTP throughput)
//
// Shape to match (paper): dynamic load balancing is even more important
// than for homogeneous loads; static RANDOM schemes are particularly bad
// because they put join work on the OLTP nodes; OPT-IO-CPU avoids the OLTP
// nodes via the memory availability view and performs best, while
// p_mu-cpu + LUM suffers at small sizes (its CPU-only degree rule still
// schedules joins on all PEs).

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Fig. 9 — mixed join/OLTP workloads (0.075 QPS/PE joins, 100 TPS per "
      "OLTP node, 5 disks/PE)",
      "#PE");

  const std::vector<int> sizes = {10, 20, 40, 60, 80};
  const std::vector<StrategyConfig> strategy_set = {
      strategies::PsuOptRandom(), strategies::PsuNoIORandom(),
      strategies::PsuNoIOLUM(),   strategies::PmuCpuLUM(),
      strategies::OptIOCpu(),
  };

  for (auto placement : {OltpPlacement::kANodes, OltpPlacement::kBNodes}) {
    std::string tag =
        placement == OltpPlacement::kANodes ? "9a/OLTP-on-A" : "9b/OLTP-on-B";
    for (int n : sizes) {
      for (const StrategyConfig& strategy : strategy_set) {
        SystemConfig cfg;
        cfg.num_pes = n;
        cfg.join_query.arrival_rate_per_pe_qps = 0.075;
        cfg.oltp.enabled = true;
        cfg.oltp.placement = placement;
        cfg.disk.disks_per_pe = 5;
        cfg.strategy = strategy;
        ApplyHorizon(cfg);
        fig.AddPoint(
            "fig" + tag + "/" + strategy.Name() + "/" + std::to_string(n),
            cfg, tag + " " + strategy.Name(), n, std::to_string(n));
      }
    }
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
