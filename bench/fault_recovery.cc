// Copyright 2026 the pdblb authors. MIT license.
//
// Fault injection and recovery: multi-user join workload under random PE
// crash/repair cycles, sweeping the failure rate (crashes per PE per
// minute) against the load-balancing strategy and the multiprogramming
// level.  Queries that touch a failed PE are cancelled and retried with
// capped exponential backoff; every query also carries a deadline, so
// overlong retry chains surface as timeouts instead of hanging.
//
// What to look for: dynamic strategies (OPT-IO-CPU and LUM placement)
// degrade gracefully — the control node drops crashed PEs from the
// planning views, so new joins route around them and throughput tracks the
// alive capacity; RANDOM placement pays an extra retry tax because it
// keeps a uniform draw over the alive set but cannot avoid in-flight
// losses.  Higher MPL softens the per-crash throughput dip (more admitted
// work survives on the remaining PEs) at the price of longer retry
// backlogs.  The queries_* CSV columns quantify all of this.
//
// Everything is deterministic per seed: fault timing comes from a
// dedicated RNG stream, so the CSV is bit-identical across --jobs and
// --shards (CI-enforced with faults enabled).

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Fault injection — PE crash/repair cycles vs. strategy and MPL "
      "(20 PE, 0.25 QPS/PE)",
      "crashes/PE/min");

  // Crashes per PE per minute.  At 20 PEs even the low rate yields several
  // crash/repair cycles per measurement window; the high rate keeps a
  // couple of PEs down on average.
  const std::vector<double> rates = bench::FastMode()
                                        ? std::vector<double>{0.0, 1.0}
                                        : std::vector<double>{0.0, 0.5, 1.0,
                                                              2.0};
  const std::vector<std::pair<std::string, StrategyConfig>> strategy_set = {
      {"p_su-opt+RANDOM", strategies::PsuOptRandom()},
      {"p_su-opt+LUM", strategies::PsuOptLUM()},
      {"OPT-IO-CPU", strategies::OptIOCpu()},
  };
  const std::vector<int> mpls = bench::FastMode() ? std::vector<int>{8}
                                                  : std::vector<int>{4, 8, 16};

  for (double rate : rates) {
    for (const auto& [name, strategy] : strategy_set) {
      for (int mpl : mpls) {
        SystemConfig cfg;
        cfg.num_pes = 20;
        cfg.strategy = strategy;
        cfg.multiprogramming_level = mpl;
        ApplyHorizon(cfg);
        cfg.faults.crash_rate_per_pe_per_min = rate;
        cfg.faults.mttr_ms = 2000.0;
        cfg.faults.query_timeout_ms = 8000.0;
        // Retry budget sized to outlive one repair (~2 s): backoffs
        // 100+200+400+800+1000 ms, so a query hit by a crash usually
        // completes degraded after recovery instead of failing.
        cfg.faults.retry.max_attempts = 6;
        cfg.faults.retry.initial_backoff_ms = 100.0;
        char rate_label[16];
        std::snprintf(rate_label, sizeof(rate_label), "%.1f", rate);
        fig.AddPoint("fault_recovery/" + name + "/mpl" +
                         std::to_string(mpl) + "/" + rate_label,
                     cfg, name + " mpl=" + std::to_string(mpl), rate,
                     rate_label);
      }
    }
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
