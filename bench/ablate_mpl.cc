// Copyright 2026 the pdblb authors. MIT license.
//
// Ablation — multiprogramming level (paper Section 4: "The maximal number
// of concurrent transactions (inter-transaction parallelism) per PE is
// controlled by a multiprogramming level.  Newly arriving transactions must
// wait in an input queue when this maximal degree ... is already reached").
//
// At high query arrival rates, admission control trades queueing delay in
// the input queue against resource thrashing inside the system: a very low
// MPL serializes the coordinators, a very high MPL lets too many joins
// fight over buffers and CPUs.
//
// Expected shape: response times are U-shaped in the MPL; the knee moves
// left for the memory-hungry configuration.

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Ablation — multiprogramming level (40 PE, OPT-IO-CPU)", "MPL");

  const std::vector<int> mpls = {1, 2, 4, 16, 64};
  for (int mpl : mpls) {
    {
      SystemConfig cfg;
      cfg.num_pes = 40;
      cfg.strategy = strategies::OptIOCpu();
      cfg.multiprogramming_level = mpl;
      cfg.join_query.arrival_rate_per_pe_qps = 0.25;  // heavy join load
      ApplyHorizon(cfg);
      fig.AddPoint("mpl/joins/" + std::to_string(mpl), cfg, "join load",
                    mpl, std::to_string(mpl));
    }
    {
      SystemConfig cfg;
      cfg.num_pes = 40;
      cfg.strategy = strategies::OptIOCpu();
      cfg.multiprogramming_level = mpl;
      cfg.buffer.buffer_pages = 12;  // memory-hungry variant
      cfg.join_query.arrival_rate_per_pe_qps = 0.15;
      ApplyHorizon(cfg);
      fig.AddPoint("mpl/mem-tight/" + std::to_string(mpl), cfg,
                    "memory-tight", mpl, std::to_string(mpl));
    }
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
