// Copyright 2026 the pdblb authors. MIT license.
//
// Reproduces paper Fig. 7: "Memory-bound environment" — buffer size reduced
// by a factor of 10 (5 pages per PE), a single disk per PE for temporary
// files, and low arrival rates (0.05 and 0.025 QPS/PE).  Compares one of the
// paper's worst strategies from Fig. 6 (MIN-IO-SUOPT) with one of the best
// (p_mu-cpu + LUM), plus the single-user baselines.
//
// Shape to match (paper): with no CPU bottleneck, p_mu-cpu stays at
// p_su-opt = 30, which is too few processors to avoid overflow I/O;
// MIN-IO-SUOPT raises the degree with the system size (42 at 80 PE in the
// paper) and wins decisively.  In this reproduction the effect is clearest
// at the largest configurations (see EXPERIMENTS.md).

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

SystemConfig MemoryBound(int n, double rate, StrategyConfig strategy) {
  SystemConfig cfg;
  cfg.num_pes = n;
  cfg.buffer.buffer_pages = 5;   // memory / 10
  cfg.disk.disks_per_pe = 1;     // 1 disk per PE for temp files
  cfg.join_query.arrival_rate_per_pe_qps = rate;
  cfg.strategy = strategy;
  ApplyHorizon(cfg);
  return cfg;
}

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Fig. 7 — memory-bound environment (5 buffer pages, 1 disk/PE)",
      "#PE");

  const std::vector<int> sizes = {20, 30, 40, 60, 80};
  for (int n : sizes) {
    for (double rate : {0.05, 0.025}) {
      for (auto strategy :
           {strategies::PmuCpuLUM(), strategies::MinIOSuOpt()}) {
        std::string series = strategy.Name() + " @" +
                             TextTable::Num(rate, 3) + " QPS/PE";
        fig.AddPoint("fig7/" + series + "/" + std::to_string(n),
                      MemoryBound(n, rate, strategy), series, n,
                      std::to_string(n));
      }
    }
    // Single-user baseline in the same memory-starved environment.
    SystemConfig su = MemoryBound(n, 0.05, strategies::PsuOptLUM());
    su.single_user_mode = true;
    su.single_user_queries = bench::FastMode() ? 8 : 20;
    fig.AddPoint("fig7/single-user/" + std::to_string(n), su, "single-user",
                  n, std::to_string(n));
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
