// Copyright 2026 the pdblb authors. MIT license.
//
// Elastic resize harness: online PE add/drain with deterministic fragment
// migration (engine/elastic.h), sweeping migration bandwidth against the
// resize scenario and the multiprogramming level.  Scenarios:
//
//   * grow+1   a spare PE joins at t=2.0s and fills from the established
//              members (addpe@2000:pe8)
//   * grow+2   two spares join back to back (t=2.0s / t=2.5s)
//   * drain-1  a member drains at t=2.0s: its fragments migrate out, then
//              it leaves the membership
//   * swap     a spare joins at t=2.0s and a member drains at t=2.5s — the
//              steady-state member count is unchanged but every fragment of
//              the drained PE crosses the wire
//
// Every membership event lands inside the measurement window of both the
// fast (6.5 s) and the normal (24 s) horizon, so --fast changes only the
// statistics, never which scenarios resize.  Migration traffic competes
// with query traffic for the interconnect (netsim bulk transfers), and the
// per-move bandwidth cap is the x axis: low bandwidth stretches the
// migration window (fragments_migrated lands late, queries keep routing to
// the old owner longer), high bandwidth concentrates the disturbance.
// Relations are scaled down ~12x from the paper defaults and the migration
// batch sized to keep the 10-disk donor array busy: on the paper's 20 MIPS
// PEs a migration batch pays real controller, wire and endpoint-CPU time,
// and at full scale a fragment copy outlives the horizon.  At this scale
// the migrations complete inside the measurement window and the bandwidth
// cap — not donor-side latency — binds at the low end of the sweep.
//
// What to look for: migration_pages_moved is invariant across bandwidth
// (the same fragments move, just slower), pes_added/pes_drained match the
// scenario, and join RT degrades only transiently around the resize.  The
// sweep is a pure function of --seed: the CSV is bit-identical across
// --jobs/--shards and reruns (CI-enforced), like the chaos harness.
//
// Run with --report-json=BENCH_elastic.json for the CI artifact.

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

struct Scenario {
  const char* name;
  int num_pes;  // members + held-out spares (addpe targets)
  std::vector<FaultEvent> events;
};

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Elastic — online PE add/drain vs. migration bandwidth (8 member PE)",
      "mig BW [MB/s]");

  // 8 established members everywhere; pe8/pe9 are spares where present.
  // drain targets pe7 (a B-node for every num_pes used here), keeping both
  // home groups covered.
  const std::vector<Scenario> scenarios = {
      {"grow+1", 9, {{2000.0, FaultKind::kAddPe, 8}}},
      {"grow+2",
       10,
       {{2000.0, FaultKind::kAddPe, 8}, {2500.0, FaultKind::kAddPe, 9}}},
      {"drain-1", 8, {{2000.0, FaultKind::kDrainPe, 7}}},
      {"swap",
       9,
       {{2000.0, FaultKind::kAddPe, 8}, {2500.0, FaultKind::kDrainPe, 7}}},
  };
  const std::vector<double> bandwidths =
      bench::FastMode() ? std::vector<double>{8.0, 64.0}
                        : std::vector<double>{4.0, 16.0, 64.0};
  // ~0.5 ms/page disk floor at batch 64; the 4 MB/s cap sits at 2 ms/page,
  // so the low-bandwidth points are genuinely throttle-bound.
  const int batch_pages = 64;
  const std::vector<int> mpls =
      bench::FastMode() ? std::vector<int>{2} : std::vector<int>{2, 4};

  for (const Scenario& sc : scenarios) {
    if (bench::FastMode() && std::string(sc.name) == "grow+2") continue;
    for (int mpl : mpls) {
      for (double bw : bandwidths) {
        SystemConfig cfg;
        cfg.num_pes = sc.num_pes;
        cfg.strategy = strategies::PsuOptLUM();
        cfg.multiprogramming_level = mpl;
        ApplyHorizon(cfg);
        cfg.relation_a.num_tuples = 20000;
        cfg.relation_b.num_tuples = 60000;
        cfg.relation_c.num_tuples = 40000;
        cfg.faults.events = sc.events;
        cfg.elastic.migration_bw_mbps = bw;
        cfg.elastic.migration_batch_pages = batch_pages;

        std::string series =
            std::string(sc.name) + "/mpl" + std::to_string(mpl);
        fig.AddPoint("elastic/" + series + "/bw" +
                         std::to_string(static_cast<int>(bw)),
                     cfg, series, bw, std::to_string(static_cast<int>(bw)));
      }
    }
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
