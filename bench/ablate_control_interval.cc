// Copyright 2026 the pdblb authors. MIT license.
//
// Ablation: sensitivity to the control node's reporting period.  Dynamic
// strategies plan against a view that is up to one report interval stale
// (plus adaptive extrapolation); this bench sweeps the interval for the two
// best strategies of Fig. 6.
//
// Expectation: very long intervals degrade placement quality (stale memory
// and CPU views), very short intervals remove the benefit of the adaptive
// feedback; moderate staleness is tolerated well.

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Ablation — control-report interval (n = 80, 0.25 QPS/PE)",
      "interval ms");

  for (auto strategy : {strategies::PmuCpuLUM(), strategies::OptIOCpu()}) {
    for (double interval : {200.0, 500.0, 1000.0, 2000.0, 4000.0}) {
      SystemConfig cfg;
      cfg.num_pes = 80;
      cfg.strategy = strategy;
      cfg.control_report_interval_ms = interval;
      ApplyHorizon(cfg);
      fig.AddPoint("ablate_interval/" + strategy.Name() + "/" +
                        std::to_string(static_cast<int>(interval)) + "ms",
                    cfg, strategy.Name(), interval,
                    TextTable::Num(interval, 0));
    }
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
