// Copyright 2026 the pdblb authors. MIT license.
//
// Ablation: PPHJ memory adaptivity.  The Partially Preemptible Hash Join
// keeps as much of the inner relation resident as possible, growing its
// working space opportunistically when frames free up; a GRACE-style join
// would stick with its initial allocation.  This bench disables the
// opportunistic growth under (a) the memory-bound homogeneous load and
// (b) the mixed OLTP workload where OLTP steals join frames.
//
// Expectation: without growth, joins that started during a memory squeeze
// never recover their working space, so overflow I/O and response times
// rise.

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Ablation — PPHJ opportunistic growth on/off", "scenario");

  for (bool growth : {true, false}) {
    std::string suffix = growth ? " +growth" : " -growth";

    // (a) memory-bound homogeneous joins (fig-7 environment, 80 PE).
    SystemConfig mem;
    mem.num_pes = 80;
    mem.buffer.buffer_pages = 5;
    mem.disk.disks_per_pe = 1;
    mem.join_query.arrival_rate_per_pe_qps = 0.05;
    mem.strategy = strategies::MinIOSuOpt();
    mem.pphj_opportunistic_growth = growth;
    ApplyHorizon(mem);
    fig.AddPoint("ablate_pphj/memory-bound" + suffix, mem,
                  "memory-bound MIN-IO-SUOPT" + suffix, growth ? 1 : 0,
                  "mem-bound");

    // (b) mixed workload: OLTP steals frames from running joins.
    SystemConfig mixed;
    mixed.num_pes = 40;
    mixed.join_query.arrival_rate_per_pe_qps = 0.075;
    mixed.oltp.enabled = true;
    mixed.oltp.placement = OltpPlacement::kBNodes;
    mixed.disk.disks_per_pe = 5;
    mixed.strategy = strategies::OptIOCpu();
    mixed.pphj_opportunistic_growth = growth;
    ApplyHorizon(mixed);
    fig.AddPoint("ablate_pphj/mixed" + suffix, mixed,
                  "mixed OPT-IO-CPU" + suffix, growth ? 1 : 0, "mixed");
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
