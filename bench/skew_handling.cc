// Copyright 2026 the pdblb authors. MIT license.
//
// Skew-handling extension (paper Section 7, conclusions): the paper's base
// experiments assume equally-sized subjoins; its future-work sketch proposes
// strategies that assign larger subjoins to less loaded nodes instead of
// trying to equalize them.  This bench sweeps the redistribution skew
// (Zipf theta of the partition-size distribution) and compares
// size-oblivious vs. skew-aware assignment for the two best dynamic
// strategies plus the static baseline.
//
// Expected shape: response times grow with theta for all strategies (the
// largest subjoin dominates); skew-aware assignment recovers a significant
// part of the loss; the static RANDOM baseline suffers most.

#include "bench/bench_common.h"

namespace {

using namespace pdblb;
using bench::ApplyHorizon;

void Setup(bench::Figure& fig) {
  fig.SetTitle(
      "Extension — redistribution skew and skew-aware subjoin assignment "
      "(60 PE, 1% sel., 0.15 QPS/PE)",
      "zipf theta");

  const std::vector<double> thetas = {0.0, 0.5, 1.0, 1.5};

  struct Entry {
    StrategyConfig strategy;
    bool aware;
  };
  std::vector<Entry> entries;
  entries.push_back({strategies::PsuOptRandom(), false});
  entries.push_back({strategies::PmuCpuLUM(), false});
  entries.push_back({strategies::PmuCpuLUM(), true});
  entries.push_back({strategies::OptIOCpu(), false});
  entries.push_back({strategies::OptIOCpu(), true});

  for (double theta : thetas) {
    for (Entry e : entries) {
      e.strategy.skew_aware_assignment = e.aware;
      SystemConfig cfg;
      cfg.num_pes = 60;
      cfg.strategy = e.strategy;
      cfg.join_query.redistribution_skew = theta;
      cfg.join_query.arrival_rate_per_pe_qps = 0.15;
      ApplyHorizon(cfg);
      char label[16];
      std::snprintf(label, sizeof(label), "%.1f", theta);
      fig.AddPoint("skew/" + e.strategy.Name() + "/" + label, cfg,
                    e.strategy.Name(), theta, label);
    }
  }
}

}  // namespace

PDBLB_BENCH_MAIN(Setup)
