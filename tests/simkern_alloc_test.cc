// Copyright 2026 the pdblb authors. MIT license.
//
// Verifies the kernel's zero-allocation dispatch guarantee: once a
// simulation reaches steady state (calendar reserved, callback cells and
// coroutine frames recycled), dispatching events performs no heap
// allocations at all.  This lives in its own test binary because it
// replaces the global operator new/delete to count heap traffic.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "simkern/resource.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace {
uint64_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace pdblb::sim {
namespace {

Task<> TimerLoop(Scheduler& sched, SimTime period, int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) {
    co_await sched.Delay(period);
  }
}

Task<> ZeroDelayLoop(Scheduler& sched, int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) {
    co_await sched.Delay(0.0);
  }
}

Task<> ShortLived(Scheduler& sched) { co_await sched.Delay(0.5); }

// Spawning a child per iteration churns coroutine frames; the frame arena
// must recycle them without touching the heap.
Task<> FrameChurnLoop(Scheduler& sched, int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) {
    co_await ShortLived(sched);
  }
}

struct RearmingCallback {
  Scheduler* sched;
  int64_t remaining;
  SimTime period;
  uint64_t context[2];  // sized like a realistic completion callback

  void operator()() {
    if (--remaining > 0) {
      sched->ScheduleCallback(sched->Now() + period, *this);
    }
  }
};

TEST(SchedulerAllocTest, SteadyStateDispatchAllocatesNothing) {
  Scheduler sched;
  sched.Reserve(/*events=*/1024, /*callbacks=*/256);

  constexpr int64_t kRounds = 200000;
  for (int i = 0; i < 16; ++i) {
    sched.Spawn(TimerLoop(sched, 1.0 + 0.013 * i, kRounds));
  }
  for (int i = 0; i < 4; ++i) {
    sched.Spawn(ZeroDelayLoop(sched, kRounds));
  }
  sched.Spawn(FrameChurnLoop(sched, kRounds));
  sched.ScheduleCallback(1.0,
                         RearmingCallback{&sched, kRounds, 0.7, {1, 2}});

  // Warm-up: grow the calendar/slab/arena to their steady-state sizes.
  sched.RunUntil(500.0);
  uint64_t events_before = sched.events_processed();
  ASSERT_GT(events_before, 10000u);

  uint64_t allocations_before = g_allocations;
  sched.RunUntil(5000.0);
  uint64_t allocations_after = g_allocations;
  uint64_t dispatched = sched.events_processed() - events_before;

  EXPECT_GT(dispatched, 50000u);
  EXPECT_EQ(allocations_after - allocations_before, 0u)
      << "dispatching " << dispatched << " events allocated "
      << (allocations_after - allocations_before) << " times";
}

TEST(SchedulerAllocTest, AllocationCounterIsLive) {
  // Sanity-check the instrumentation itself.
  uint64_t before = g_allocations;
  int* p = new int(1);
  EXPECT_GT(g_allocations, before);
  delete p;
}

}  // namespace
}  // namespace pdblb::sim
