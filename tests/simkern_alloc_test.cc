// Copyright 2026 the pdblb authors. MIT license.
//
// Verifies the kernel's zero-allocation dispatch guarantee: once a
// simulation reaches steady state (calendar reserved, callback cells and
// coroutine frames recycled), dispatching events performs no heap
// allocations at all.  This lives in its own test binary because it
// replaces the global operator new/delete to count heap traffic.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "bufmgr/buffer_manager.h"
#include "common/config.h"
#include "iosim/disk.h"
#include "simkern/channel.h"
#include "simkern/latch.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"
#include "simkern/tracer.h"

namespace {
uint64_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace pdblb::sim {
namespace {

Task<> TimerLoop(Scheduler& sched, SimTime period, int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) {
    co_await sched.Delay(period);
  }
}

Task<> ZeroDelayLoop(Scheduler& sched, int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) {
    co_await sched.Delay(0.0);
  }
}

Task<> ShortLived(Scheduler& sched) { co_await sched.Delay(0.5); }

// Spawning a child per iteration churns coroutine frames; the frame arena
// must recycle them without touching the heap.
Task<> FrameChurnLoop(Scheduler& sched, int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) {
    co_await ShortLived(sched);
  }
}

struct RearmingCallback {
  Scheduler* sched;
  int64_t remaining;
  SimTime period;
  uint64_t context[2];  // sized like a realistic completion callback

  void operator()() {
    if (--remaining > 0) {
      sched->ScheduleCallback(sched->Now() + period, *this);
    }
  }
};

TEST(SchedulerAllocTest, SteadyStateDispatchAllocatesNothing) {
  Scheduler sched;
  sched.Reserve(/*events=*/1024, /*callbacks=*/256);

  constexpr int64_t kRounds = 200000;
  for (int i = 0; i < 16; ++i) {
    sched.Spawn(TimerLoop(sched, 1.0 + 0.013 * i, kRounds));
  }
  for (int i = 0; i < 4; ++i) {
    sched.Spawn(ZeroDelayLoop(sched, kRounds));
  }
  sched.Spawn(FrameChurnLoop(sched, kRounds));
  sched.ScheduleCallback(1.0,
                         RearmingCallback{&sched, kRounds, 0.7, {1, 2}});

  // Warm-up: grow the calendar/slab/arena to their steady-state sizes.
  sched.RunUntil(500.0);
  uint64_t events_before = sched.events_processed();
  ASSERT_GT(events_before, 10000u);

  uint64_t allocations_before = g_allocations;
  sched.RunUntil(5000.0);
  uint64_t allocations_after = g_allocations;
  uint64_t dispatched = sched.events_processed() - events_before;

  EXPECT_GT(dispatched, 50000u);
  EXPECT_EQ(allocations_after - allocations_before, 0u)
      << "dispatching " << dispatched << " events allocated "
      << (allocations_after - allocations_before) << " times";
}

// --- blocking primitives ---------------------------------------------------
// The frameless Resource::Use awaiter and the ring-buffer waiter/value
// queues extend the zero-allocation guarantee from dispatch to *blocking*:
// once the rings have grown to the high-water mark of each queue, contended
// acquisitions, channel traffic and latch fork/joins touch the heap exactly
// never.  (The old kernel allocated a coroutine frame per Use and paid
// std::deque chunk churn on every queue at chunk boundaries, forever.)

Task<> ContendedClient(Scheduler& sched, Resource& res, SimTime hold,
                       int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) {
    co_await res.Use(hold);
  }
  (void)sched;
}

TEST(SchedulerAllocTest, ContendedResourceUseAllocatesNothing) {
  Scheduler sched;
  sched.Reserve(/*events=*/1024);
  Resource res(sched, /*servers=*/3, "cpu");
  // 48 clients against 3 servers: essentially every acquisition queues.
  for (int i = 0; i < 48; ++i) {
    sched.Spawn(ContendedClient(sched, res, 0.4 + 0.01 * i, 50000));
  }
  sched.RunUntil(500.0);  // warm-up: rings and frame arena reach steady state
  ASSERT_GT(res.max_queue_length(), 16u) << "shape is not actually contended";

  uint64_t allocations_before = g_allocations;
  uint64_t completed_before = res.completed();
  sched.RunUntil(5000.0);
  EXPECT_GT(res.completed() - completed_before, 20000u);
  EXPECT_EQ(g_allocations - allocations_before, 0u)
      << "contended Resource::Use must not allocate in steady state";
}

Task<> PingPongProducer(Scheduler& sched, Channel<int64_t>& ch, int burst,
                        int64_t rounds) {
  for (int64_t i = 0; i < rounds; ++i) {
    co_await sched.Delay(1.0);
    // Bursts larger than the ring's inline capacity keep the value queue
    // at its grown (heap) capacity — the "at capacity" steady state.
    for (int k = 0; k < burst; ++k) ch.Send(i * burst + k);
  }
  ch.Close();
}

Task<> PingPongConsumer(Channel<int64_t>& ch, uint64_t* received) {
  while (auto v = co_await ch.Receive()) {
    ++*received;
  }
}

TEST(SchedulerAllocTest, ChannelSendRecvAtCapacityAllocatesNothing) {
  Scheduler sched;
  sched.Reserve(/*events=*/256);
  Channel<int64_t> ch(sched);
  uint64_t received = 0;
  sched.Spawn(PingPongConsumer(ch, &received));
  sched.Spawn(PingPongProducer(sched, ch, /*burst=*/16, /*rounds=*/100000));
  sched.RunUntil(200.0);  // warm-up grows the value ring past inline capacity
  ASSERT_GT(received, 1000u);

  uint64_t allocations_before = g_allocations;
  uint64_t received_before = received;
  sched.RunUntil(20000.0);
  EXPECT_GT(received - received_before, 100000u);
  EXPECT_EQ(g_allocations - allocations_before, 0u)
      << "channel send/recv at capacity must not allocate in steady state";
}

Task<> LatchChild(Scheduler& sched, Latch* latch, SimTime delay) {
  co_await sched.Delay(delay);
  latch->CountDown();
}

// Repeated fork/join: a brand-new Latch per round, children spawned from
// the recycled frame arena, the single waiter held in the latch's inline
// ring slots.  No round may touch the heap after warm-up.
Task<> ForkJoinLoop(Scheduler& sched, int fanout, int64_t rounds,
                    uint64_t* joins) {
  for (int64_t i = 0; i < rounds; ++i) {
    Latch latch(sched, fanout);
    for (int f = 0; f < fanout; ++f) {
      sched.Spawn(LatchChild(sched, &latch, 0.5 + 0.1 * f));
    }
    co_await latch.Wait();
    ++*joins;
  }
}

TEST(SchedulerAllocTest, LatchFanOutAllocatesNothing) {
  Scheduler sched;
  sched.Reserve(/*events=*/256);
  uint64_t joins = 0;
  sched.Spawn(ForkJoinLoop(sched, /*fanout=*/8, /*rounds=*/100000, &joins));
  sched.RunUntil(100.0);  // warm-up
  ASSERT_GT(joins, 10u);

  uint64_t allocations_before = g_allocations;
  uint64_t joins_before = joins;
  sched.RunUntil(30000.0);
  EXPECT_GT(joins - joins_before, 10000u);
  EXPECT_EQ(g_allocations - allocations_before, 0u)
      << "latch fork/join fan-out must not allocate in steady state";
}

// Tracing must preserve the zero-allocation guarantee: the record ring is
// pre-allocated at Tracer construction and the per-dispatch Record() only
// writes into it (wrapping in place once full — the 4096-record ring here
// wraps thousands of times below).  In a PDBLB_TRACE=OFF build AttachTracer
// is a no-op and this test degenerates to the plain dispatch test, so the
// compiled-out path is covered by the same assertion in the OFF CI build.
TEST(SchedulerAllocTest, DispatchWithTracingEnabledAllocatesNothing) {
  Scheduler sched;
  Tracer tracer(/*capacity=*/4096);
  sched.AttachTracer(&tracer);
  sched.Reserve(/*events=*/1024, /*callbacks=*/256);

  constexpr int64_t kRounds = 200000;
  for (int i = 0; i < 8; ++i) {
    sched.Spawn(TimerLoop(sched, 1.0 + 0.013 * i, kRounds));
  }
  for (int i = 0; i < 2; ++i) {
    sched.Spawn(ZeroDelayLoop(sched, kRounds));
  }
  Resource res(sched, /*servers=*/2, "cpu",
               TraceTag(TraceSubsystem::kCpu, 1));
  for (int i = 0; i < 8; ++i) {
    sched.Spawn(ContendedClient(sched, res, 0.4 + 0.01 * i, kRounds));
  }
  Channel<int64_t> ch(sched);
  uint64_t received = 0;
  sched.Spawn(PingPongConsumer(ch, &received));
  sched.Spawn(PingPongProducer(sched, ch, /*burst=*/16, /*rounds=*/kRounds));

  sched.RunUntil(500.0);  // warm-up
  uint64_t events_before = sched.events_processed();
  ASSERT_GT(events_before, 10000u);

  uint64_t allocations_before = g_allocations;
  sched.RunUntil(5000.0);
  uint64_t dispatched = sched.events_processed() - events_before;
  EXPECT_GT(dispatched, 50000u);
  EXPECT_EQ(g_allocations - allocations_before, 0u)
      << "dispatching " << dispatched
      << " events with tracing enabled must not allocate";

  if (kTraceCompiledIn) {
    EXPECT_GT(tracer.ring().total(), tracer.ring().capacity())
        << "shape did not exercise ring wrap-around";
    uint64_t recorded = 0;
    for (const TraceBreakdown& b : tracer.breakdown()) recorded += b.events;
    EXPECT_EQ(recorded,
              sched.events_processed() + sched.inline_resumes());
  } else {
    EXPECT_EQ(tracer.ring().total(), 0u);
  }
}

// Cancellation must be allocation-free in steady state: SpawnWithId feeds
// the recycled frame arena and the detached-frame registry's ring slots,
// Cancel scrubs calendar/ring entries in place (tombstones, no compaction)
// and destroying the victim unhooks it from the resource's waiter ring.
// After warm-up, a spawn/park/cancel cycle touches the heap exactly never.
Task<> CancelChurnLoop(Scheduler& sched, Resource& res, int64_t rounds,
                       uint64_t* cancelled) {
  for (int64_t i = 0; i < rounds; ++i) {
    // One victim parked in the calendar, one parked in the resource queue
    // (the resource's single server is held by a permanent holder).  The
    // timer victim's horizon is finite: a cancelled calendar entry is a
    // tombstone dropped when its timestamp drains, so victims parked at
    // "never" would pile tombstones up and grow the heap forever — bounded
    // pending-time keeps the tombstone population at a steady state.
    uint64_t timer_victim = sched.SpawnWithId(TimerLoop(sched, 50.0, 1));
    uint64_t queue_victim = sched.SpawnWithId(ContendedClient(
        sched, res, /*hold=*/1.0, /*rounds=*/1));
    co_await sched.Delay(0.5);
    if (sched.Cancel(timer_victim)) ++*cancelled;
    if (sched.Cancel(queue_victim)) ++*cancelled;
  }
}

TEST(SchedulerAllocTest, CancellationAllocatesNothing) {
  Scheduler sched;
  sched.Reserve(/*events=*/256);
  Resource res(sched, /*servers=*/1, "cpu");
  sched.Spawn(ContendedClient(sched, res, /*hold=*/1e9, /*rounds=*/1));
  uint64_t cancelled = 0;
  constexpr int64_t kRounds = 100000;
  sched.Spawn(CancelChurnLoop(sched, res, kRounds, &cancelled));
  sched.RunUntil(100.0);  // warm-up: arena/registry/rings reach steady state
  ASSERT_GT(cancelled, 100u);

  uint64_t allocations_before = g_allocations;
  uint64_t cancelled_before = cancelled;
  sched.RunUntil(20000.0);
  EXPECT_GT(cancelled - cancelled_before, 10000u);
  EXPECT_EQ(g_allocations - allocations_before, 0u)
      << "cancelling " << (cancelled - cancelled_before)
      << " parked frames allocated "
      << (g_allocations - allocations_before) << " times";
}

// --- buffer pool -----------------------------------------------------------
// The slot-indexed frame table extends the guarantee to the buffer manager:
// hits touch only the open-addressing index and the policy's intrusive
// links; misses, evictions and dirty writebacks recycle frames through the
// fixed slot array and the coroutine arena; FetchRange leases its run
// scratch from a recycled pool.  After warm-up, steady-state churn under
// every eviction policy allocates exactly never.  (The old manager paid
// std::list/unordered_map node churn on every miss, forever.)
//
// The disk controller cache is disabled: its own LRU cache is a std
// container and allocates on insert, which would mask the property under
// test (that cache has its own budget and is not steady-state-critical).

Task<> BufferChurnLoop(Scheduler& sched, BufferManager& buf, int64_t rounds,
                       uint64_t* fetches) {
  uint64_t rng = 0x2545f4914f6cdd1dULL;
  for (int64_t i = 0; i < rounds; ++i) {
    // Four hot fetches (32-page working set, half the 64-page pool): hits
    // in steady state.
    for (int k = 0; k < 4; ++k) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      co_await buf.Fetch(PageKey{1, static_cast<int64_t>(rng % 32)},
                         AccessPattern::kRandom);
      ++*fetches;
    }
    // One cold fetch from a universe far larger than the pool: a miss that
    // forces an eviction, every round.
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    PageKey cold{1, 100 + static_cast<int64_t>(rng % 4096)};
    co_await buf.Fetch(cold, AccessPattern::kRandom);
    ++*fetches;
    // Dirty it so its eviction takes the async writeback path.
    buf.MarkDirty(cold);
    // A sequential scan with missing runs exercises the leased run scratch
    // and striped prefetch.  28 pages = 7 prefetch batches: below the
    // TaskGroup's inline member capacity, so the per-call group never grows.
    if (i % 16 == 0) {
      co_await buf.FetchRange(PageKey{2, (i % 8) * 28}, 28);
      ++*fetches;
    }
  }
}

TEST(SchedulerAllocTest, BufferPoolChurnAllocatesNothing) {
  const EvictionPolicyKind kinds[] = {
      EvictionPolicyKind::kLru, EvictionPolicyKind::kLruK,
      EvictionPolicyKind::kLfu, EvictionPolicyKind::kClock};
  for (EvictionPolicyKind kind : kinds) {
    SCOPED_TRACE(EvictionPolicyName(kind));
    Scheduler sched;
    sched.Reserve(/*events=*/256);
    Resource cpu(sched, /*servers=*/1, "cpu");
    CpuCosts costs;
    DiskConfig disk_config;
    disk_config.disk_cache_pages = 0;  // see section comment
    BufferConfig buf_config;
    buf_config.buffer_pages = 64;
    buf_config.eviction = kind;
    DiskArray disks(sched, disk_config, costs, 20.0, cpu, "t");
    BufferManager buf(sched, buf_config, disks, "buf");

    uint64_t fetches = 0;
    sched.Spawn(BufferChurnLoop(sched, buf, /*rounds=*/1000000, &fetches));
    // Warm-up: fill the pool, reach eviction steady state, grow the frame
    // arena and the run-scratch pool to their high-water marks.
    sched.RunUntil(20000.0);
    ASSERT_GT(buf.evictions(), 100) << "shape does not actually evict";
    ASSERT_GT(buf.buffer_hits(), 100u);

    uint64_t allocations_before = g_allocations;
    uint64_t fetches_before = fetches;
    int64_t writebacks_before = buf.dirty_writebacks();
    sched.RunUntil(200000.0);
    EXPECT_GT(fetches - fetches_before, 5000u);
    EXPECT_GT(buf.dirty_writebacks() - writebacks_before, 100);
    EXPECT_EQ(g_allocations - allocations_before, 0u)
        << "fetch hit/miss/evict/writeback churn allocated under "
        << EvictionPolicyName(kind);
  }
}

TEST(SchedulerAllocTest, AllocationCounterIsLive) {
  // Sanity-check the instrumentation itself.
  uint64_t before = g_allocations;
  int* p = new int(1);
  EXPECT_GT(g_allocations, before);
  delete p;
}

}  // namespace
}  // namespace pdblb::sim
