// Copyright 2026 the pdblb authors. MIT license.
//
// Sharded-scheduler suite:
//  * message-band ordering: at equal timestamps, local events precede
//    message arrivals and messages order by (origin, ordinal) — regardless
//    of co-location, shard count, or post order;
//  * seeded stress: an 80-entity message-passing workload produces
//    bit-identical per-entity results for --shards=1/2/4, parallel and
//    serial, across reruns (the shard-count-invariance contract);
//  * RunUntilWindowed == RunUntil, down to identical event traces (the
//    equivalence Cluster relies on for config.shards > 1);
//  * structured cancellation: ~Scheduler destroys suspended detached
//    frames (locals' destructors run; nothing leaks — the ASan CI job
//    keeps that honest without suppressions).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/config.h"
#include "engine/confined.h"
#include "netsim/shard_mailbox.h"
#include "runner/sweep.h"
#include "simkern/channel.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"
#include "simkern/sharded.h"
#include "simkern/task.h"
#include "simkern/tracer.h"

namespace pdblb::sim {
namespace {

// --- message-band ordering ------------------------------------------------

TEST(MessageBandTest, LocalEventsPrecedeSameTimeMessages) {
  // Entity 1 posts a message to entity 0 arriving at exactly t=1.0, where
  // entity 0 also has a local callback.  The band contract: local first,
  // message second — for S=1 (co-located fast path) and S=2 (mailbox
  // route) alike.
  for (int shards : {1, 2}) {
    ShardedScheduler::Options opts;
    opts.num_shards = shards;
    opts.num_entities = 2;
    opts.lookahead_ms = 0.5;
    opts.parallel = false;
    ShardedScheduler ss(opts);
    std::vector<std::string> order;
    ss.home(0).ScheduleCallback(1.0, [&] { order.push_back("local"); });
    ss.Post(1, 0, 1.0, [&] { order.push_back("message"); });
    ss.Run();
    EXPECT_EQ(order, (std::vector<std::string>{"local", "message"}))
        << "shards=" << shards;
  }
}

TEST(MessageBandTest, SameTimeMessagesOrderByOriginNotPostOrder) {
  // Entities 3, 2, 1 (posted in that order) all hit entity 0 at t=2.0; the
  // dispatch order must be origin order 1, 2, 3 for every shard count —
  // that key is what makes results shard-count-invariant.
  for (int shards : {1, 2, 4}) {
    ShardedScheduler::Options opts;
    opts.num_shards = shards;
    opts.num_entities = 4;
    opts.lookahead_ms = 0.5;
    opts.parallel = false;
    ShardedScheduler ss(opts);
    std::vector<int> order;
    for (int origin : {3, 2, 1}) {
      ss.Post(origin, 0, 2.0, [&order, origin] { order.push_back(origin); });
    }
    ss.Run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3})) << "shards=" << shards;
  }
}

TEST(MessageBandTest, OrdinalOrdersSameOriginSameTimeMessages) {
  ShardedScheduler::Options opts;
  opts.num_shards = 2;
  opts.num_entities = 2;
  opts.lookahead_ms = 0.5;
  opts.parallel = false;
  ShardedScheduler ss(opts);
  std::vector<int> order;
  for (int k = 0; k < 4; ++k) {
    ss.Post(1, 0, 3.0, [&order, k] { order.push_back(k); });
  }
  ss.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// --- the sharded cluster workload ----------------------------------------
// E entities; entity e loops `rounds` times over a private CPU service and
// every `msg_every`-th round ships `bytes` to a peer; deliveries spawn a
// handler charging the receiver's CPU.  Entities touch only their own
// state outside ShardWire::Send, so per-entity results must not depend on
// the shard count, the execution mode, or the run.

struct Entity {
  std::unique_ptr<Resource> cpu;
  uint64_t delivered = 0;
  SimTime done_time = 0.0;
  SimTime last_delivery_time = 0.0;
};

struct Workload {
  ShardedScheduler* ss;
  ShardWire* wire;
  std::vector<Entity> entities;
  int rounds;
  int msg_every;
  int stride;  // peer = block-local (+1) for stride 0, else (e+stride)%E
  int64_t bytes;
};

int PeerOf(const Workload& w, int e) {
  int n = static_cast<int>(w.entities.size());
  if (w.stride == 0) {
    // Block-local neighbour: stays inside a 20-entity block, which keeps
    // the peer co-located for every shard count that divides E/20 blocks.
    int block = e / 20 * 20;
    return block + (e - block + 1) % 20;
  }
  return (e + w.stride) % n;
}

Task<> HandleDelivery(Workload& w, int dst) {
  co_await w.entities[dst].cpu->Use(0.21 + 0.003 * dst);
  Entity& ent = w.entities[dst];
  ++ent.delivered;
  ent.last_delivery_time = w.ss->home(dst).Now();
}

Task<> EntityDriver(Workload& w, int e) {
  Entity& ent = w.entities[e];
  for (int r = 0; r < w.rounds; ++r) {
    co_await ent.cpu->Use(0.37 + 0.013 * e);
    if (w.msg_every > 0 && r % w.msg_every == 0) {
      int dst = PeerOf(w, e);
      w.wire->Send(e, dst, w.bytes,
                   [&w, dst] { w.ss->home(dst).Spawn(HandleDelivery(w, dst)); });
    }
  }
  ent.done_time = w.ss->home(e).Now();
}

// One per-entity result row; every field must be bit-identical across
// shard counts, execution modes and reruns.
using EntityResult =
    std::tuple<uint64_t, uint64_t, double, double, double, int64_t>;

// Per-entity projection of the event traces: for every (subsystem, origin)
// pair with a meaningful origin (cpu/<pe>, network/<src>), the timestamp
// sequence of its records across all shard tracers.  A shard's trace is
// time-ordered and a pair's records all live in one shard (an entity's cpu
// in its home shard, its sends in its peer's), so the projection is a
// well-defined sequence — and it must be bit-identical for every shard
// count, even though the raw per-shard traces obviously differ.
using TraceProjection = std::map<std::pair<uint8_t, uint16_t>,
                                 std::vector<SimTime>>;

TraceProjection ProjectTraces(const std::vector<std::unique_ptr<Tracer>>& ts) {
  TraceProjection proj;
  for (const auto& t : ts) {
    for (size_t i = 0; i < t->ring().size(); ++i) {
      const TraceRecord& r = t->ring().At(i);
      auto subsystem = static_cast<TraceSubsystem>(r.tag >> TraceTag::kOriginBits);
      if (subsystem != TraceSubsystem::kCpu &&
          subsystem != TraceSubsystem::kNetwork) {
        continue;  // kernel/0 spawn records carry no entity identity
      }
      proj[{static_cast<uint8_t>(subsystem),
            static_cast<uint16_t>(r.tag & TraceTag::kOriginMask)}]
          .push_back(r.at);
    }
  }
  return proj;
}

std::vector<EntityResult> RunWorkload(int num_entities, int shards,
                                      bool parallel, int stride,
                                      uint64_t* windows_out = nullptr,
                                      uint64_t* cross_out = nullptr,
                                      TraceProjection* traces_out = nullptr) {
  NetworkConfig net;  // defaults: 8 KB packets, 0.1 ms wire time
  ShardedScheduler::Options opts;
  opts.num_shards = shards;
  opts.num_entities = num_entities;
  opts.lookahead_ms = ShardLookaheadMs(net);
  opts.parallel = parallel;
  ShardedScheduler ss(opts);
  std::vector<std::unique_ptr<Tracer>> tracers;
  if (traces_out != nullptr) {
    for (int s = 0; s < shards; ++s) {
      tracers.push_back(std::make_unique<Tracer>(1 << 18));
      ss.shard(s).AttachTracer(tracers.back().get());
    }
  }
  ShardWire wire(ss, net);
  Workload w{&ss, &wire, {}, /*rounds=*/40, /*msg_every=*/4, stride,
             /*bytes=*/20000};
  w.entities.resize(static_cast<size_t>(num_entities));
  for (int e = 0; e < num_entities; ++e) {
    w.entities[static_cast<size_t>(e)].cpu = std::make_unique<Resource>(
        ss.home(e), 1, "cpu" + std::to_string(e),
        TraceTag(TraceSubsystem::kCpu, static_cast<uint16_t>(e)));
  }
  for (int e = 0; e < num_entities; ++e) {
    ss.home(e).Spawn(EntityDriver(w, e));
  }
  ss.Run();
  if (windows_out != nullptr) *windows_out = ss.windows();
  if (cross_out != nullptr) *cross_out = ss.cross_shard_messages();
  if (traces_out != nullptr) *traces_out = ProjectTraces(tracers);

  std::vector<EntityResult> results;
  results.reserve(w.entities.size());
  for (int e = 0; e < num_entities; ++e) {
    const Entity& ent = w.entities[static_cast<size_t>(e)];
    results.emplace_back(ent.delivered, ent.cpu->completed(),
                         ent.cpu->BusyIntegral(), ent.done_time,
                         ent.last_delivery_time, wire.messages_sent_by(e));
  }
  return results;
}

TEST(ShardedStressTest, PerEntityResultsInvariantAcrossShardCounts) {
  // Cross-shard-heavy wiring (peer on the opposite half of the cluster).
  std::vector<EntityResult> base = RunWorkload(80, 1, false, /*stride=*/40);
  uint64_t sum_delivered = 0;
  for (const EntityResult& r : base) sum_delivered += std::get<0>(r);
  ASSERT_GT(sum_delivered, 0u) << "workload delivered nothing";

  // 3 exercises uneven partitions (80/3: blocks of 27/27/26); 80 is the
  // shards == num_entities boundary (every entity its own calendar).
  for (int shards : {2, 3, 4, 80}) {
    for (bool parallel : {false, true}) {
      uint64_t cross = 0;
      std::vector<EntityResult> got =
          RunWorkload(80, shards, parallel, 40, nullptr, &cross);
      EXPECT_EQ(got, base) << "shards=" << shards << " parallel=" << parallel;
      EXPECT_GT(cross, 0u) << "heavy wiring must cross shards";
    }
  }
}

TEST(ShardedStressTest, PerEntityResultsInvariantWhenTrafficIsShardLocal) {
  std::vector<EntityResult> base = RunWorkload(80, 1, false, /*stride=*/0);
  for (int shards : {2, 4}) {
    uint64_t cross = 1;
    std::vector<EntityResult> got =
        RunWorkload(80, shards, true, 0, nullptr, &cross);
    EXPECT_EQ(got, base) << "shards=" << shards;
    EXPECT_EQ(cross, 0u) << "block-local wiring must stay co-located";
  }
}

TEST(ShardedStressTest, RerunsAreBitIdentical) {
  std::vector<EntityResult> a = RunWorkload(40, 4, true, 20);
  std::vector<EntityResult> b = RunWorkload(40, 4, true, 20);
  EXPECT_EQ(a, b);
}

TEST(ShardedStressTest, PerEntityTraceProjectionInvariantAcrossShardCounts) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "PDBLB_TRACE=OFF build";
  // The raw per-shard traces differ with S by construction (different
  // calendars); the per-entity projection may not.
  TraceProjection base;
  RunWorkload(40, 1, false, /*stride=*/20, nullptr, nullptr, &base);
  ASSERT_FALSE(base.empty());
  for (int shards : {2, 3, 4}) {
    TraceProjection got;
    RunWorkload(40, shards, true, 20, nullptr, nullptr, &got);
    EXPECT_EQ(got, base) << "shards=" << shards;
  }
}

TEST(ShardedStressTest, ClusterReportsAndCsvInvariantAcrossShardCounts) {
  // Engine-level shard-count invariance, the same property CI smokes on
  // fig5/fig6: identical runner CSV bytes (derived from the full
  // MetricsReports) for --shards=1 vs --shards=4.
  runner::Sweep sweep;
  for (int pes : {4, 8}) {
    SystemConfig cfg;
    cfg.num_pes = pes;
    cfg.single_user_mode = true;
    cfg.single_user_queries = 2;
    cfg.seed = 99;
    sweep.Add({"sharded_smoke/" + std::to_string(pes), "smoke",
               static_cast<double>(pes), std::to_string(pes), cfg});
  }
  runner::SweepOptions opts;
  opts.shards = 1;
  std::string csv1 = runner::ResultsCsv(sweep.Run(opts));
  opts.shards = 3;  // uneven partitions, the CI smoke's third point
  std::string csv3 = runner::ResultsCsv(sweep.Run(opts));
  opts.shards = 4;
  std::string csv4 = runner::ResultsCsv(sweep.Run(opts));
  ASSERT_GT(csv1.size(), 100u);
  EXPECT_EQ(csv1, csv3);
  EXPECT_EQ(csv1, csv4);
}

TEST(ShardedStressTest, CountersAreConsistent) {
  uint64_t windows = 0;
  uint64_t cross = 0;
  RunWorkload(40, 4, false, 20, &windows, &cross);
  EXPECT_GT(windows, 0u);
  EXPECT_GT(cross, 0u);
}

#ifndef NDEBUG
TEST(ShardedDeathTest, CrossShardPostInsideLookaheadAsserts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ShardedScheduler::Options opts;
  opts.num_shards = 2;
  opts.num_entities = 2;
  opts.lookahead_ms = 1.0;
  opts.parallel = false;  // no worker threads: fork-safe
  ShardedScheduler ss(opts);
  // 0.5 < lookahead: the sender-side contract check must refuse it (and
  // anything that slipped past it would hit the DrainMailboxes window
  // assertion at the next barrier).
  EXPECT_DEATH(ss.Post(0, 1, 0.5, [] {}), "lookahead");
}
#endif

// --- RemoteUse: the request/handback awaiter ------------------------------

struct RemoteUseProbe {
  SimTime resumed_at = -1.0;
  SimTime local_resumed_at = -1.0;
};

Task<> RemoteCaller(ShardedScheduler& ss, Resource& remote, int from,
                    int owner, RemoteUseProbe& probe) {
  co_await RemoteUse(ss, from, owner, remote, /*service_ms=*/2.0);
  probe.resumed_at = ss.home(from).Now();
}

Task<> LocalUser(ShardedScheduler& ss, Resource& res, int owner,
                 RemoteUseProbe& probe) {
  co_await ss.home(owner).Delay(0.5);
  co_await res.Use(1.5);
  probe.local_resumed_at = ss.home(owner).Now();
}

TEST(RemoteUseTest, RoundTripCostsTwoLookaheadsPlusService) {
  // Entity 0 on shard 0, entity 1 on shard 1 (and co-located at S=1):
  // request leg 0.5, service 2.0 on an idle resource, handback leg 0.5 —
  // the caller must resume at exactly 3.0 for every shard count and mode.
  for (int shards : {1, 2}) {
    for (bool parallel : {false, true}) {
      ShardedScheduler::Options opts;
      opts.num_shards = shards;
      opts.num_entities = 2;
      opts.lookahead_ms = 0.5;
      opts.parallel = parallel;
      ShardedScheduler ss(opts);
      Resource remote(ss.home(1), 1, "remote");
      RemoteUseProbe probe;
      ss.home(0).Spawn(RemoteCaller(ss, remote, 0, 1, probe));
      ss.Run();
      EXPECT_EQ(probe.resumed_at, 3.0)
          << "shards=" << shards << " parallel=" << parallel;
    }
  }
}

TEST(RemoteUseTest, QueuesFcfsWithTheOwnersLocalUsers) {
  // The serve coroutine competes for the owner's resource like any local
  // user: the local user grabs it at t=0.5 (before the remote request
  // lands at 1.0 = lookahead) and holds to 2.0, so the remote service runs
  // [2.0, 4.0] and the handback lands at 5.0.  All values are exactly
  // representable, so EXPECT_EQ is legitimate; bit-identical across shard
  // counts and modes.
  for (int shards : {1, 2}) {
    for (bool parallel : {false, true}) {
      ShardedScheduler::Options opts;
      opts.num_shards = shards;
      opts.num_entities = 2;
      opts.lookahead_ms = 1.0;
      opts.parallel = parallel;
      ShardedScheduler ss(opts);
      Resource remote(ss.home(1), 1, "remote");
      RemoteUseProbe probe;
      ss.home(0).Spawn(RemoteCaller(ss, remote, 0, 1, probe));
      ss.home(1).Spawn(LocalUser(ss, remote, 1, probe));
      ss.Run();
      EXPECT_EQ(probe.local_resumed_at, 2.0)
          << "shards=" << shards << " parallel=" << parallel;
      EXPECT_EQ(probe.resumed_at, 5.0)
          << "shards=" << shards << " parallel=" << parallel;
    }
  }
}

// --- the shard-confined engine (engine/confined.h) ------------------------

TEST(ConfinedClusterTest, ReportInvariantAcrossShardCountsAndModes) {
  // The full confined protocol — plan round trips to the control entity,
  // RemoteUse catalog probes, scan fan-out over per-PE disks, release
  // rounds, load reports — must produce bit-identical per-entity results
  // for every shard count (including uneven 9/3 partitions and the
  // one-entity-per-shard boundary), serial and parallel.
  ConfinedClusterOptions opt;
  opt.num_pes = 8;
  opt.mpl = 2;
  opt.queries_per_slot = 2;
  opt.scan_processors = 3;
  opt.pages_per_fragment = 4;
  opt.result_tuples = 64;
  opt.report_rounds = 3;
  opt.shards = 1;
  opt.parallel = false;
  ConfinedClusterReport base = RunConfinedCluster(opt);

  int64_t total_queries = 0;
  int64_t total_reads = 0;
  for (const ConfinedPeResult& pe : base.per_pe) {
    total_queries += pe.queries;
    total_reads += pe.physical_reads;
    EXPECT_EQ(pe.queries, opt.mpl * opt.queries_per_slot);
    EXPECT_EQ(pe.reports_sent, opt.report_rounds);
    EXPECT_GT(pe.messages_sent, 0);
  }
  ASSERT_EQ(total_queries, 8 * opt.mpl * opt.queries_per_slot);
  EXPECT_EQ(base.control_plans_served, total_queries);
  EXPECT_EQ(base.control_reports_received,
            static_cast<int64_t>(8) * opt.report_rounds);
  EXPECT_GT(total_reads, 0) << "per-PE disks must serve the fragments";
  EXPECT_GT(base.sim_time_ms, 0.0);

  for (int shards : {2, 3, 4, 9}) {  // 9 = num_pes + control entity
    for (bool parallel : {false, true}) {
      opt.shards = shards;
      opt.parallel = parallel;
      ConfinedClusterReport got = RunConfinedCluster(opt);
      EXPECT_TRUE(got.SameSimulationAs(base))
          << "shards=" << shards << " parallel=" << parallel
          << " sim_time " << got.sim_time_ms << " vs " << base.sim_time_ms;
      EXPECT_GT(got.cross_shard_messages, 0u)
          << "shards=" << shards << " parallel=" << parallel;
      EXPECT_GT(got.windows, 0u);
    }
  }
}

TEST(ConfinedClusterTest, RerunsAreBitIdentical) {
  ConfinedClusterOptions opt;
  opt.num_pes = 6;
  opt.mpl = 2;
  opt.queries_per_slot = 2;
  opt.scan_processors = 2;
  opt.pages_per_fragment = 2;
  opt.result_tuples = 32;
  opt.report_rounds = 2;
  opt.shards = 3;
  opt.parallel = true;
  ConfinedClusterReport a = RunConfinedCluster(opt);
  ConfinedClusterReport b = RunConfinedCluster(opt);
  EXPECT_TRUE(a.SameSimulationAs(b));
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.cross_shard_messages, b.cross_shard_messages);
}

TEST(ConfinedClusterTest, PlacementFollowsReportedLoad) {
  // Sanity that the control entity actually consumes the Post-ed reports:
  // with disks off and a CPU-light workload, queries spread across
  // participants rather than all landing on the same k PEs (the view
  // updates as utilization reports arrive).  This is a liveness check,
  // not a golden: exact placement is pinned by the invariance tests.
  ConfinedClusterOptions opt;
  opt.num_pes = 6;
  opt.mpl = 1;
  opt.queries_per_slot = 6;
  opt.scan_processors = 2;
  opt.use_disks = false;
  opt.pages_per_fragment = 0;
  opt.result_tuples = 256;
  opt.report_rounds = 5;
  ConfinedClusterReport r = RunConfinedCluster(opt);
  int64_t total = 0;
  for (const ConfinedPeResult& pe : r.per_pe) total += pe.queries;
  EXPECT_EQ(total, 6 * opt.queries_per_slot);
  EXPECT_EQ(r.control_reports_received, 6 * opt.report_rounds);
}

// --- RunUntilWindowed equivalence ----------------------------------------

Task<> TimerLoop(Scheduler& sched, SimTime period, int rounds) {
  for (int i = 0; i < rounds; ++i) co_await sched.Delay(period);
}

Task<> UseLoop(Scheduler& sched, Resource& res, SimTime hold, int rounds) {
  for (int i = 0; i < rounds; ++i) co_await res.Use(hold);
  (void)sched;
}

void SpawnMixedWorkload(Scheduler& sched, Resource& res) {
  for (int i = 0; i < 8; ++i) {
    sched.Spawn(TimerLoop(sched, 0.9 + 0.07 * i, 50));
    sched.Spawn(UseLoop(sched, res, 0.4 + 0.05 * i, 50));
  }
}

TEST(RunUntilWindowedTest, MatchesRunUntilExactly) {
  Scheduler plain;
  Tracer plain_trace(1 << 14);
  plain.AttachTracer(&plain_trace);
  Resource plain_res(plain, 2, "cpu", TraceTag(TraceSubsystem::kCpu, 1));
  SpawnMixedWorkload(plain, plain_res);
  plain.RunUntil(10.0);
  plain.RunUntil(31.7);

  Scheduler windowed;
  Tracer windowed_trace(1 << 14);
  windowed.AttachTracer(&windowed_trace);
  Resource windowed_res(windowed, 2, "cpu", TraceTag(TraceSubsystem::kCpu, 1));
  SpawnMixedWorkload(windowed, windowed_res);
  RunUntilWindowed(windowed, 10.0, /*lookahead_ms=*/0.1);
  RunUntilWindowed(windowed, 31.7, /*lookahead_ms=*/0.1);

  EXPECT_EQ(plain.events_processed(), windowed.events_processed());
  EXPECT_EQ(plain.Now(), windowed.Now());
  EXPECT_EQ(plain.pending_events(), windowed.pending_events());
  if (kTraceCompiledIn) {
    EXPECT_EQ(plain_trace.ToCsv(), windowed_trace.ToCsv())
        << "windowed pacing must not change the dispatch sequence";
  }
}

// --- structured cancellation ----------------------------------------------

struct DtorProbe {
  int* counter;
  explicit DtorProbe(int* c) : counter(c) {}
  DtorProbe(const DtorProbe&) = delete;
  DtorProbe& operator=(const DtorProbe&) = delete;
  ~DtorProbe() { ++*counter; }
};

Task<> BlockOnChannel(Channel<int>& ch, int* destroyed) {
  DtorProbe probe(destroyed);
  auto v = co_await ch.Receive();  // never satisfied in these tests
  (void)v;
}

Task<> BlockOnResource(Resource& res, int* destroyed) {
  DtorProbe probe(destroyed);
  co_await res.Acquire();
  res.Release();
}

Task<> ParentOfBlockedChild(Channel<int>& ch, int* destroyed) {
  DtorProbe probe(destroyed);
  co_await BlockOnChannel(ch, destroyed);  // owned child, not registered
}

TEST(StructuredCancellationTest, TeardownDestroysSuspendedFrames) {
  int destroyed = 0;
  {
    Scheduler sched;
    Channel<int> ch(sched);
    Resource res(sched, 1, "cpu");
    sched.Spawn(BlockOnChannel(ch, &destroyed));
    sched.Spawn(UseLoop(sched, res, 1e9, 1));  // holds the only server
    sched.Spawn(BlockOnResource(res, &destroyed));
    sched.RunUntil(1.0);
    EXPECT_EQ(sched.detached_in_flight(), 3u);
    EXPECT_EQ(destroyed, 0);
  }  // ch/res die first (reverse declaration), then ~Scheduler the frames
  EXPECT_EQ(destroyed, 2);
}

TEST(StructuredCancellationTest, DestroyingAParentDestroysItsOwnedChild) {
  int destroyed = 0;
  {
    Scheduler sched;
    Channel<int> ch(sched);
    sched.Spawn(ParentOfBlockedChild(ch, &destroyed));
    sched.RunUntil(1.0);
    // Only the detached root registers; the blocked child is owned by (and
    // destroyed through) the parent's frame.
    EXPECT_EQ(sched.detached_in_flight(), 1u);
  }
  EXPECT_EQ(destroyed, 2) << "parent and child frame locals must be destroyed";
}

TEST(StructuredCancellationTest, CompletedFramesUnregisterThemselves) {
  Scheduler sched;
  Resource res(sched, 4, "cpu");
  for (int i = 0; i < 16; ++i) sched.Spawn(UseLoop(sched, res, 0.5, 10));
  EXPECT_EQ(sched.detached_in_flight(), 16u);
  sched.Run();
  EXPECT_EQ(sched.detached_in_flight(), 0u);
}

TEST(StructuredCancellationTest, ShardedTeardownDestroysAllShardsFrames) {
  // Mid-flight teardown of a sharded run: RunUntil a prefix of the windows
  // by bounding rounds low, then drop everything while messages and
  // blocked handlers are still pending.  Nothing may leak (ASan CI).
  int destroyed = 0;
  {
    ShardedScheduler::Options opts;
    opts.num_shards = 4;
    opts.num_entities = 8;
    opts.lookahead_ms = 0.1;
    opts.parallel = false;
    ShardedScheduler ss(opts);
    std::vector<std::unique_ptr<Channel<int>>> chans;
    for (int e = 0; e < 8; ++e) {
      chans.push_back(std::make_unique<Channel<int>>(ss.home(e)));
      ss.home(e).Spawn(BlockOnChannel(*chans[static_cast<size_t>(e)],
                                      &destroyed));
    }
    // Undelivered cross-shard mail parked in a mailbox must also be
    // destroyed cleanly with the ShardedScheduler.
    ss.Post(0, 7, 5.0, [] {});
    for (int s = 0; s < 4; ++s) ss.shard(s).RunUntil(0.5);
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 8);
}

}  // namespace
}  // namespace pdblb::sim
