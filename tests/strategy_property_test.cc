// Copyright 2026 the pdblb authors. MIT license.
//
// Property tests over the whole strategy family: for every policy and a
// fuzzed population of control-node states, the produced plan must satisfy
// the planner invariants.  Parameterized (TEST_P) over all strategies.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/control_node.h"
#include "core/strategies.h"
#include "simkern/rng.h"

namespace pdblb {
namespace {

std::vector<StrategyConfig> AllStrategies() {
  std::vector<StrategyConfig> all = {
      strategies::PsuOptRandom(),   strategies::PsuOptLUC(),
      strategies::PsuOptLUM(),      strategies::PsuNoIORandom(),
      strategies::PsuNoIOLUC(),     strategies::PsuNoIOLUM(),
      strategies::PmuCpuRandom(),   strategies::PmuCpuLUM(),
      strategies::RateMatchRandom(), strategies::RateMatchLUC(),
      strategies::RateMatchLUM(),   strategies::MinIO(),
      strategies::MinIOSuOpt(),     strategies::OptIOCpu(),
  };
  // The skew-aware flag must not alter any planning invariant.
  StrategyConfig skew_aware = strategies::OptIOCpu();
  skew_aware.skew_aware_assignment = true;
  all.push_back(skew_aware);
  return all;
}

class StrategyPropertyTest : public testing::TestWithParam<StrategyConfig> {};

TEST_P(StrategyPropertyTest, PlanInvariantsUnderFuzzedStates) {
  const StrategyConfig& config = GetParam();
  auto policy = LoadBalancingPolicy::Create(config);
  ASSERT_NE(policy, nullptr);

  sim::Rng fuzz(12345);
  sim::Rng plan_rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    int n = static_cast<int>(fuzz.UniformInt(2, 80));
    ControlNode control(n, /*adaptive_feedback=*/trial % 2 == 0);
    for (PeId pe = 0; pe < n; ++pe) {
      control.Report(pe, fuzz.Uniform(),
                     static_cast<int>(fuzz.UniformInt(0, 60)),
                     fuzz.Uniform());
    }
    JoinPlanRequest req;
    req.num_pes = n;
    req.psu_opt = static_cast<int>(fuzz.UniformInt(1, n));
    req.psu_noio = static_cast<int>(fuzz.UniformInt(1, n));
    req.hash_table_pages = fuzz.UniformInt(1, 2000);
    req.scan_rate_tps = fuzz.Uniform(100.0, 50000.0);
    req.join_rate_tps = fuzz.Uniform(100.0, 50000.0);

    JoinPlan plan = policy->Plan(req, control, plan_rng);

    // Degree within bounds and consistent with the PE list.
    EXPECT_GE(plan.degree, 1) << config.Name() << " trial " << trial;
    EXPECT_LE(plan.degree, n) << config.Name() << " trial " << trial;
    ASSERT_EQ(static_cast<int>(plan.pes.size()), plan.degree);

    // All PEs distinct and valid.
    std::set<PeId> distinct(plan.pes.begin(), plan.pes.end());
    EXPECT_EQ(static_cast<int>(distinct.size()), plan.degree);
    for (PeId pe : plan.pes) {
      EXPECT_GE(pe, 0);
      EXPECT_LT(pe, n);
    }

    // The working-space target covers the hash table.
    EXPECT_GE(static_cast<int64_t>(plan.pages_per_pe) * plan.degree,
              req.hash_table_pages);
  }
}

TEST_P(StrategyPropertyTest, NameIsStableAndNonEmpty) {
  auto policy = LoadBalancingPolicy::Create(GetParam());
  EXPECT_FALSE(policy->Name().empty());
  EXPECT_EQ(policy->Name(), policy->Name());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyPropertyTest, testing::ValuesIn(AllStrategies()),
    [](const testing::TestParamInfo<StrategyConfig>& info) {
      std::string name = info.param.Name();
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name + "_" + std::to_string(info.index);
    });

/// Integrated no-I/O strategies: whenever *some* selection avoids temporary
/// file I/O, the plan must actually avoid it (min-free * degree >= need).
class NoIoGuaranteeTest : public testing::TestWithParam<StrategyConfig> {};

TEST_P(NoIoGuaranteeTest, AvoidsTempIoWheneverFeasible) {
  auto policy = LoadBalancingPolicy::Create(GetParam());
  sim::Rng fuzz(999);
  sim::Rng plan_rng(55);
  int feasible_cases = 0;
  for (int trial = 0; trial < 300; ++trial) {
    int n = static_cast<int>(fuzz.UniformInt(2, 40));
    ControlNode control(n, false);
    for (PeId pe = 0; pe < n; ++pe) {
      // Low CPU so OPT-IO-CPU's p_mu-cpu cap stays at p_su-opt = n.
      control.Report(pe, 0.0, static_cast<int>(fuzz.UniformInt(0, 50)), 0.0);
    }
    JoinPlanRequest req;
    req.num_pes = n;
    req.psu_opt = n;
    req.psu_noio = 1;
    req.hash_table_pages = fuzz.UniformInt(1, 600);

    auto avail = control.AvailMemorySorted();
    bool feasible =
        internal::MinNoIoDegree(avail, req.hash_table_pages, n) > 0;
    if (!feasible) continue;
    ++feasible_cases;

    JoinPlan plan = policy->Plan(req, control, plan_rng);
    int64_t min_free = avail[static_cast<size_t>(plan.degree) - 1]
                           .free_memory_pages;  // LUM = top-k of this order
    EXPECT_GE(min_free * plan.degree, req.hash_table_pages)
        << GetParam().Name() << " trial " << trial;
  }
  EXPECT_GT(feasible_cases, 50);  // the fuzz actually exercised the property
}

INSTANTIATE_TEST_SUITE_P(
    Integrated, NoIoGuaranteeTest,
    testing::Values(strategies::MinIO(), strategies::MinIOSuOpt(),
                    strategies::OptIOCpu()),
    [](const testing::TestParamInfo<StrategyConfig>& info) {
      std::string name = info.param.Name();
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pdblb
