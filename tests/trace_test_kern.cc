// Copyright 2026 the pdblb authors. MIT license.
//
// Golden-trace regression tests for the kernel event-tracing subsystem:
//  * hand-checked expected traces for two known scenarios (a contended
//    Resource, a channel ping-pong) pin the dispatch behaviour of the
//    kernel — any reordering of the calendar/ring/hand-off merge shows up
//    here as a changed trace, not just as a changed end-state statistic;
//  * a fixed-seed cluster run must produce a bit-identical trace across
//    reruns and across --jobs=1 vs --jobs=2 sweep executions;
//  * TraceRing wraparound and the Tracer's attribution fold.
//
// (tests/trace_test.cc covers the *workload* trace replay — unrelated.)

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "engine/cluster.h"
#include "netsim/shard_mailbox.h"
#include "runner/sweep.h"
#include "simkern/channel.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"
#include "simkern/sharded.h"
#include "simkern/task.h"
#include "simkern/trace_ring.h"
#include "simkern/tracer.h"

namespace pdblb::sim {
namespace {

// Compact readable form of one record, for golden comparisons:
// "<at>/<kind>/<subsystem>/<origin>".
std::string Fmt(const TraceRecord& r) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f/%s/%s/%u", r.at,
                TraceEventKindName(r.kind),
                TraceSubsystemName(r.tag >> TraceTag::kOriginBits),
                static_cast<unsigned>(r.tag & TraceTag::kOriginMask));
  return buf;
}

std::vector<std::string> Records(const Tracer& tracer) {
  std::vector<std::string> out;
  for (size_t i = 0; i < tracer.ring().size(); ++i) {
    out.push_back(Fmt(tracer.ring().At(i)));
  }
  return out;
}

Task<> UseOnce(Resource& res, SimTime service) { co_await res.Use(service); }

TEST(TraceGoldenTest, ContendedResourceMatchesHandCheckedTrace) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "PDBLB_TRACE=OFF build";
  Scheduler sched;
  Tracer tracer(64);
  sched.AttachTracer(&tracer);
  Resource res(sched, /*servers=*/1, "cpu",
               TraceTag(TraceSubsystem::kCpu, /*origin=*/7));
  sched.Spawn(UseOnce(res, 5.0));
  sched.Spawn(UseOnce(res, 5.0));
  sched.Run();

  // Hand-checked: both spawns start through the same-time ring at t=0
  // (kernel); the first Use grants immediately and schedules its
  // end-of-service resume at t=5, the second queues.  The t=5 dispatch
  // (calendar, cpu) releases and grants the waiter inline, scheduling its
  // end-of-service at t=10 — one calendar event per contended acquisition.
  EXPECT_EQ(Records(tracer),
            (std::vector<std::string>{
                "0.000/ring/kernel/0",
                "0.000/ring/kernel/0",
                "5.000/calendar/cpu/7",
                "10.000/calendar/cpu/7",
            }));

  const auto& b = tracer.breakdown();
  EXPECT_EQ(b[static_cast<size_t>(TraceSubsystem::kKernel)].events, 2u);
  EXPECT_DOUBLE_EQ(
      b[static_cast<size_t>(TraceSubsystem::kKernel)].sim_time_ms, 0.0);
  EXPECT_EQ(b[static_cast<size_t>(TraceSubsystem::kCpu)].events, 2u);
  // t=0 -> 5 and t=5 -> 10: all 10 ms of this run are cpu time.
  EXPECT_DOUBLE_EQ(b[static_cast<size_t>(TraceSubsystem::kCpu)].sim_time_ms,
                   10.0);
}

Task<> PingPongProducer(Scheduler& sched, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sched.Delay(1.0);
    ch.Send(i);
  }
  ch.Close();
}

Task<> PingPongConsumer(Channel<int>& ch, int* received) {
  // NB: `while (co_await ch.Receive())` (bare co_await in the condition)
  // is silently miscompiled by the CI g++ — the coroutine never starts.
  // Bind the optional, as every other consumer in the test suite does.
  while (auto v = co_await ch.Receive()) ++*received;
}

TEST(TraceGoldenTest, ChannelPingPongMatchesHandCheckedTrace) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "PDBLB_TRACE=OFF build";
  Scheduler sched;
  Tracer tracer(64);
  sched.AttachTracer(&tracer);
  Channel<int> ch(sched, TraceTag(TraceSubsystem::kChannel, /*origin=*/3));
  int received = 0;
  sched.Spawn(PingPongConsumer(ch, &received));
  sched.Spawn(PingPongProducer(sched, ch, 2));
  sched.Run();
  EXPECT_EQ(received, 2);

  // Hand-checked: consumer and producer start at t=0 (ring).  At t=1 and
  // t=2 the producer's delay fires (calendar, kernel), each Send wakes the
  // blocked consumer through the hand-off lane as soon as the producer
  // suspends — no calendar event for the wake-up.  Lane resumes record
  // statically as channel/0 (channels are the lane's only client; see
  // Scheduler::HandOff); the per-channel origin appears on calendar wakes
  // such as Close broadcasts.
  EXPECT_EQ(Records(tracer),
            (std::vector<std::string>{
                "0.000/ring/kernel/0",
                "0.000/ring/kernel/0",
                "1.000/calendar/kernel/0",
                "1.000/handoff/channel/0",
                "2.000/calendar/kernel/0",
                "2.000/handoff/channel/0",
            }));

  const auto& b = tracer.breakdown();
  EXPECT_EQ(b[static_cast<size_t>(TraceSubsystem::kChannel)].events, 2u);
  EXPECT_DOUBLE_EQ(
      b[static_cast<size_t>(TraceSubsystem::kChannel)].sim_time_ms, 0.0);
  EXPECT_EQ(b[static_cast<size_t>(TraceSubsystem::kKernel)].events, 4u);
  EXPECT_DOUBLE_EQ(
      b[static_cast<size_t>(TraceSubsystem::kKernel)].sim_time_ms, 2.0);
}

Task<> HandleExchange(Resource& cpu) { co_await cpu.Use(0.5); }

Task<> ExchangeDriver(ShardedScheduler& ss, ShardWire& wire, Resource& cpu,
                      int self, int peer, SimTime service,
                      Resource& peer_cpu) {
  co_await cpu.Use(service);
  wire.Send(self, peer, /*bytes=*/100, [&ss, &peer_cpu, peer] {
    ss.home(peer).Spawn(HandleExchange(peer_cpu));
  });
}

TEST(TraceGoldenTest, TwoShardMessageExchangeMatchesHandCheckedTrace) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "PDBLB_TRACE=OFF build";
  // Two entities on two shards, one 100-byte message each way (one packet,
  // 0.1 ms wire = the lookahead).  Serial mode so the golden trace also
  // documents the window sequencing deterministically.
  NetworkConfig net;
  ShardedScheduler::Options opts;
  opts.num_shards = 2;
  opts.num_entities = 2;
  opts.lookahead_ms = ShardLookaheadMs(net);
  opts.parallel = false;
  ShardedScheduler ss(opts);
  ShardWire wire(ss, net);
  Tracer trace0(64);
  Tracer trace1(64);
  ss.shard(0).AttachTracer(&trace0);
  ss.shard(1).AttachTracer(&trace1);
  Resource cpu0(ss.home(0), 1, "cpu0", TraceTag(TraceSubsystem::kCpu, 0));
  Resource cpu1(ss.home(1), 1, "cpu1", TraceTag(TraceSubsystem::kCpu, 1));
  ss.home(0).Spawn(ExchangeDriver(ss, wire, cpu0, 0, 1, 1.0, cpu1));
  ss.home(1).Spawn(ExchangeDriver(ss, wire, cpu1, 1, 0, 2.0, cpu0));
  ss.Run();

  // Hand-checked, shard 0 (entity 0): spawn at t=0 (ring), end-of-service
  // of the 1.0 ms Use (calendar, cpu/0) — the driver then ships its
  // message, arriving on shard 1 at 1.1.  Entity 1's message (sent at its
  // t=2 end-of-service) lands at 2.1 as a message-band calendar event
  // tagged network/<origin>, whose handler spawns through the same-time
  // ring and holds cpu0 until 2.6.
  EXPECT_EQ(Records(trace0),
            (std::vector<std::string>{
                "0.000/ring/kernel/0",
                "1.000/calendar/cpu/0",
                "2.100/calendar/network/1",
                "2.100/ring/kernel/0",
                "2.600/calendar/cpu/0",
            }));
  // Shard 1 (entity 1): the 1.1 arrival interleaves *before* entity 1's
  // own t=2 end-of-service, but its handler blocks behind the busy cpu1
  // until the driver releases at 2.0 — the frameless Use grants inline and
  // schedules the handler's end-of-service at 2.5.
  EXPECT_EQ(Records(trace1),
            (std::vector<std::string>{
                "0.000/ring/kernel/0",
                "1.100/calendar/network/0",
                "1.100/ring/kernel/0",
                "2.000/calendar/cpu/1",
                "2.500/calendar/cpu/1",
            }));

  EXPECT_EQ(ss.cross_shard_messages(), 2u);
  EXPECT_EQ(wire.messages_sent(), 2);
  EXPECT_EQ(wire.packets_sent(), 2);
}

Task<> ConfinedProtocolDriver(ShardedScheduler& ss, ShardWire& wire,
                              Resource& remote_cpu, bool* delivered) {
  // Stage 1: the RemoteUse request/handback pair (the confined executor's
  // replacement for a direct Use on another entity's resource).
  co_await RemoteUse(ss, /*from=*/0, /*owner=*/1, remote_cpu,
                     /*service_ms=*/1.0);
  // Stage 2: ship a result message whose receiver-side endpoint CPU leg is
  // charged on the receiving shard (ShardWire::Deliver).
  wire.Deliver(/*src=*/0, /*dst=*/1, /*bytes=*/100, remote_cpu,
               /*cpu_ms=*/0.5, [delivered] { *delivered = true; });
}

TEST(TraceGoldenTest, ConfinedExecutorProtocolMatchesHandCheckedTrace) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "PDBLB_TRACE=OFF build";
  // The two message shapes every confined executor interaction reduces to
  // (engine/confined.cc, docs/sharding.md), pinned at the trace level:
  // a RemoteUse round trip and a Deliver with a receiver CPU leg.  Two
  // entities on two shards, serial mode, one-packet messages, 0.1 ms wire
  // = the lookahead.
  NetworkConfig net;
  ShardedScheduler::Options opts;
  opts.num_shards = 2;
  opts.num_entities = 2;
  opts.lookahead_ms = ShardLookaheadMs(net);
  opts.parallel = false;
  ShardedScheduler ss(opts);
  ShardWire wire(ss, net);
  Tracer trace0(64);
  Tracer trace1(64);
  ss.shard(0).AttachTracer(&trace0);
  ss.shard(1).AttachTracer(&trace1);
  Resource cpu1(ss.home(1), 1, "cpu1", TraceTag(TraceSubsystem::kCpu, 1));
  bool delivered = false;
  ss.home(0).Spawn(ConfinedProtocolDriver(ss, wire, cpu1, &delivered));
  ss.Run();
  EXPECT_TRUE(delivered);

  // Hand-checked, shard 0 (entity 0): spawn at t=0 (ring); the caller
  // suspends immediately — its only further record is the handback landing
  // at 0.1 (request leg) + 1.0 (service) + 0.1 (handback leg) = 1.2 as a
  // message-band calendar event tagged network/<owner>.
  EXPECT_EQ(Records(trace0),
            (std::vector<std::string>{
                "0.000/ring/kernel/0",
                "1.200/calendar/network/1",
            }));
  // Shard 1 (entity 1): the request lands at 0.1 (network/0) and its
  // handler spawns the serve coroutine through the same-time ring; the
  // idle cpu grants inline and records its end-of-service at 1.1
  // (calendar, cpu/1).  The Deliver message sent at 1.2 lands at 1.3, its
  // receive-leg coroutine spawns through the ring and holds the cpu to
  // 1.8, after which the delivery callback runs.
  EXPECT_EQ(Records(trace1),
            (std::vector<std::string>{
                "0.100/calendar/network/0",
                "0.100/ring/kernel/0",
                "1.100/calendar/cpu/1",
                "1.300/calendar/network/0",
                "1.300/ring/kernel/0",
                "1.800/calendar/cpu/1",
            }));

  // Request, handback, and result delivery all crossed the shard boundary.
  EXPECT_EQ(ss.cross_shard_messages(), 3u);
  EXPECT_EQ(wire.messages_sent(), 1);  // RemoteUse legs are raw Posts
}

TEST(TraceRingTest, WrapAroundKeepsMostRecentRecords) {
  TraceRing ring(64);  // minimum capacity
  EXPECT_EQ(ring.capacity(), 64u);
  for (int i = 0; i < 200; ++i) {
    ring.Push(TraceRecord{static_cast<SimTime>(i),
                          static_cast<uint32_t>(i), 0, 0});
  }
  EXPECT_EQ(ring.total(), 200u);
  EXPECT_EQ(ring.size(), 64u);
  EXPECT_EQ(ring.dropped(), 136u);
  // Retained tail: records 136..199, oldest first.
  EXPECT_DOUBLE_EQ(ring.At(0).at, 136.0);
  EXPECT_DOUBLE_EQ(ring.At(63).at, 199.0);
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(100);
  EXPECT_EQ(ring.capacity(), 128u);
}

TEST(TracerTest, AttributionIsExactAcrossWrapAround) {
  // The fold accumulates online, so the breakdown covers all pushed
  // records even though the ring only retains the last 64.
  Tracer tracer(64);
  for (int i = 0; i < 500; ++i) {
    tracer.Record(static_cast<SimTime>(i), TraceEventKind::kCalendar,
                  TraceTag(TraceSubsystem::kDisk, 1).bits,
                  static_cast<uint64_t>(i));
  }
  EXPECT_EQ(tracer.ring().size(), 64u);
  const auto& b = tracer.breakdown();
  EXPECT_EQ(b[static_cast<size_t>(TraceSubsystem::kDisk)].events, 500u);
  EXPECT_DOUBLE_EQ(b[static_cast<size_t>(TraceSubsystem::kDisk)].sim_time_ms,
                   499.0);
}

SystemConfig SmallClusterConfig() {
  SystemConfig cfg;
  cfg.num_pes = 4;
  cfg.single_user_mode = true;
  cfg.single_user_queries = 3;
  cfg.trace.enabled = true;
  cfg.trace.capacity = 1 << 16;
  cfg.seed = 12345;
  return cfg;
}

TEST(TraceGoldenTest, FixedSeedClusterTraceIsBitIdenticalAcrossReruns) {
  if (!kTraceCompiledIn) GTEST_SKIP() << "PDBLB_TRACE=OFF build";
  auto run_once = [](std::string* csv, MetricsReport* report) {
    Cluster cluster(SmallClusterConfig());
    *report = cluster.Run();
    ASSERT_NE(cluster.tracer(), nullptr);
    *csv = cluster.tracer()->ToCsv();
  };
  std::string csv_a, csv_b;
  MetricsReport rep_a, rep_b;
  run_once(&csv_a, &rep_a);
  run_once(&csv_b, &rep_b);
  ASSERT_GT(csv_a.size(), 1000u) << "trace suspiciously small";
  EXPECT_EQ(csv_a, csv_b) << "event trace must be bit-identical per seed";

  // The MetricsReport attribution is the fold of that trace and must be
  // populated, deterministic, and consistent with the kernel counters.
  EXPECT_TRUE(rep_a.trace_enabled);
  uint64_t events = 0;
  for (size_t s = 0; s < kNumTraceSubsystems; ++s) {
    EXPECT_EQ(rep_a.trace_subsystem_events[s], rep_b.trace_subsystem_events[s]);
    EXPECT_DOUBLE_EQ(rep_a.trace_subsystem_time_ms[s],
                     rep_b.trace_subsystem_time_ms[s]);
    events += rep_a.trace_subsystem_events[s];
  }
  EXPECT_EQ(events, rep_a.kernel_events + rep_a.kernel_handoffs);
  EXPECT_GT(rep_a.trace_subsystem_events[
                static_cast<size_t>(TraceSubsystem::kCpu)], 0u);
  EXPECT_GT(rep_a.trace_subsystem_events[
                static_cast<size_t>(TraceSubsystem::kDisk)], 0u);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Runs in every build mode: with tracing compiled in, the per-point files
// must be byte-identical across --jobs values; with PDBLB_TRACE=OFF the
// runner must still emit the same file set, each holding exactly the CSV
// header (the documented cross-build-mode contract).
TEST(TraceGoldenTest, SweepTraceFilesAreIdenticalAcrossJobCounts) {
  runner::Sweep sweep;
  for (int pes : {2, 4}) {
    SystemConfig cfg = SmallClusterConfig();
    cfg.trace.enabled = false;  // the runner's trace_path turns it on
    cfg.num_pes = pes;
    sweep.Add({"trace_smoke/" + std::to_string(pes), "smoke",
               static_cast<double>(pes), std::to_string(pes), cfg});
  }
  std::string base = ::testing::TempDir() + "trace_jobs";

  runner::SweepOptions opts;
  opts.trace_path = base + "_j1";
  opts.jobs = 1;
  sweep.Run(opts);
  opts.trace_path = base + "_j2";
  opts.jobs = 2;
  sweep.Run(opts);

  for (int i = 0; i < 2; ++i) {
    std::string suffix = "." + std::to_string(i) + ".csv";
    std::string a = ReadFile(base + "_j1" + suffix);
    std::string b = ReadFile(base + "_j2" + suffix);
    if (kTraceCompiledIn) {
      ASSERT_GT(a.size(), 1000u) << "missing or empty trace file " << i;
    } else {
      EXPECT_EQ(a, Tracer::kCsvHeader)
          << "OFF builds must emit header-only trace files";
    }
    EXPECT_EQ(a, b) << "per-point trace must not depend on --jobs";
  }
}

}  // namespace
}  // namespace pdblb::sim
