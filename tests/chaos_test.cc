// Copyright 2026 the pdblb authors. MIT license.
//
// Chaos invariant suite: the three gray-failure domains (transient disk
// errors + slow-disk windows, link degradation + partitions, overload
// shedding/degradation) unit-tested in isolation and composed at cluster
// level.  The composed runs check the conservation invariants — no admission
// slot, buffer reservation or memory-queue entry survives the run — and the
// determinism contract (identical reports across reruns and shard counts,
// identical sweep CSV across worker counts).  The whole binary runs under
// leak detection, so every chaotic run doubles as a no-leaked-frames check.

#include <gtest/gtest.h>

#include <memory>

#include "common/config.h"
#include "core/control_node.h"
#include "engine/cluster.h"
#include "iosim/disk.h"
#include "netsim/network.h"
#include "runner/sweep.h"
#include "simkern/resource.h"
#include "simkern/rng.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb {
namespace {

// ------------------------------------------------------------ disk domain

struct DiskFixture {
  sim::Scheduler sched;
  sim::Resource cpu{sched, 1, "cpu"};
  CpuCosts costs;
  DiskConfig config;
  std::unique_ptr<DiskArray> disks;

  DiskFixture() {
    disks = std::make_unique<DiskArray>(sched, config, costs, 20.0, cpu, "d");
  }

  sim::Task<> ReadPages(int count) {
    for (int i = 0; i < count; ++i) {
      co_await disks->Read(PageKey{1, static_cast<int64_t>(i)},
                           AccessPattern::kRandom);
    }
  }
};

TEST(DiskChaosTest, InjectedErrorsAreCountedAndDeterministic) {
  auto run = [](uint64_t seed) {
    DiskFixture f;
    f.disks->ConfigureFaults(/*error_rate=*/0.2, /*retry_limit=*/3,
                             /*retry_penalty_ms=*/5.0, sim::Rng(seed));
    f.sched.Spawn(f.ReadPages(200));
    f.sched.Run();
    return std::pair<int64_t, int64_t>(f.disks->io_errors(),
                                       f.disks->io_retries());
  };
  auto [errors, retries] = run(7);
  EXPECT_GT(errors, 0) << "20% error rate over 200 reads drew no errors";
  EXPECT_GE(errors, retries) << "a retry without a preceding error";
  auto [errors2, retries2] = run(7);
  EXPECT_EQ(errors, errors2) << "same seed, different error count";
  EXPECT_EQ(retries, retries2);
}

TEST(DiskChaosTest, RetryChainIsCappedByTheLimit) {
  DiskFixture f;
  // Error rate 1.0: every draw fails, so a single physical access burns the
  // whole retry budget and surfaces the final error without reissue —
  // exactly retry_limit retries and retry_limit + 1 errors.
  f.disks->ConfigureFaults(1.0, /*retry_limit=*/3, 5.0, sim::Rng(1));
  f.sched.Spawn(f.ReadPages(1));
  f.sched.Run();
  EXPECT_EQ(f.disks->io_retries(), 3);
  EXPECT_EQ(f.disks->io_errors(), 4);
}

TEST(DiskChaosTest, ServiceMultiplierStretchesAndAccountsTime) {
  auto elapsed_with = [](double multiplier) {
    DiskFixture f;
    f.disks->SetServiceMultiplier(multiplier);
    f.sched.Spawn(f.ReadPages(20));
    f.sched.Run();
    return std::pair<double, double>(f.sched.Now(),
                                     f.disks->slow_disk_extra_ms());
  };
  auto [normal_ms, normal_extra] = elapsed_with(1.0);
  auto [slow_ms, slow_extra] = elapsed_with(3.0);
  EXPECT_GT(slow_ms, normal_ms) << "x3 disk did not slow the reads";
  EXPECT_GT(slow_extra, 0.0);
  EXPECT_EQ(normal_extra, 0.0) << "x1 must be an exact identity";
  // The injected extra accounts the whole stretch of the physical service.
  EXPECT_NEAR(slow_ms - normal_ms, slow_extra, 1e-9);
}

TEST(DiskChaosTest, UnarmedDiskKeepsZeroFaultCounters) {
  DiskFixture f;
  f.sched.Spawn(f.ReadPages(50));
  f.sched.Run();
  EXPECT_EQ(f.disks->io_errors(), 0);
  EXPECT_EQ(f.disks->io_retries(), 0);
  EXPECT_EQ(f.disks->slow_disk_extra_ms(), 0.0);
}

// --------------------------------------------------------- network domain

struct NetFixture {
  sim::Scheduler sched;
  std::vector<std::unique_ptr<sim::Resource>> cpus;
  std::unique_ptr<Network> net;

  explicit NetFixture(int n) {
    CpuCosts costs;
    NetworkConfig config;
    std::vector<sim::Resource*> ptrs;
    for (int i = 0; i < n; ++i) {
      cpus.push_back(std::make_unique<sim::Resource>(sched, 1, "cpu"));
      ptrs.push_back(cpus.back().get());
    }
    net = std::make_unique<Network>(sched, config, costs, 20.0, ptrs);
  }
};

TEST(NetworkChaosTest, PartitionFlagsAreSymmetric) {
  NetFixture f(4);
  EXPECT_FALSE(f.net->AnyPartitions());
  EXPECT_FALSE(f.net->Partitioned(1, 2));
  f.net->SetPartitioned(1, 2, true);
  EXPECT_TRUE(f.net->Partitioned(1, 2));
  EXPECT_TRUE(f.net->Partitioned(2, 1)) << "partition must be symmetric";
  EXPECT_FALSE(f.net->Partitioned(0, 3));
  EXPECT_TRUE(f.net->AnyPartitions());
  f.net->SetPartitioned(1, 2, true);  // redundant cut must not double-count
  f.net->SetPartitioned(2, 1, false);
  EXPECT_FALSE(f.net->AnyPartitions()) << "heal left a phantom partition";
}

TEST(NetworkChaosTest, LinkDelayMultiplierStretchesTransfer) {
  auto elapsed_with = [](bool slow) {
    NetFixture f(2);
    if (slow) f.net->SetLinkDelayMultiplier(0, 1, 4.0);
    f.sched.Spawn(f.net->Transfer(0, 1, 1 << 20));
    f.sched.Run();
    return f.sched.Now();
  };
  double normal = elapsed_with(false);
  double slow = elapsed_with(true);
  EXPECT_GT(slow, normal) << "x4 wire delay did not slow the transfer";
}

// -------------------------------------------------------- overload domain

OverloadConfig TightOverload() {
  OverloadConfig oc;
  oc.enabled = true;
  oc.degrade_queue_threshold = 4.0;
  oc.shed_queue_threshold = 8.0;
  oc.exit_queue_threshold = 1.0;
  oc.enter_rounds = 2;
  oc.exit_rounds = 2;
  oc.parallelism_factor = 0.5;
  return oc;
}

TEST(OverloadStateMachineTest, EscalatesAndRecoversWithHysteresis) {
  ControlNode cn(4, /*adaptive_feedback=*/false);
  cn.ConfigureOverload(TightOverload());
  EXPECT_EQ(cn.overload_state(), OverloadState::kNormal);
  EXPECT_EQ(cn.DegreeCap(4), 4) << "normal state must not cap";

  cn.NoteLoadRound(5.0);  // first hot round: hysteresis holds
  EXPECT_EQ(cn.overload_state(), OverloadState::kNormal);
  cn.NoteLoadRound(5.0);  // second consecutive hot round: degrade
  EXPECT_EQ(cn.overload_state(), OverloadState::kDegraded);
  EXPECT_EQ(cn.DegreeCap(4), 2) << "ceil(4 alive * 0.5)";
  EXPECT_EQ(cn.DegreeCap(1), 1) << "cap never below 1";
  EXPECT_FALSE(cn.ShouldShed());

  cn.NoteLoadRound(10.0);
  EXPECT_EQ(cn.overload_state(), OverloadState::kDegraded);
  cn.NoteLoadRound(10.0);  // second round past the shed threshold
  EXPECT_EQ(cn.overload_state(), OverloadState::kShedding);
  EXPECT_TRUE(cn.ShouldShed());

  cn.NoteLoadRound(0.0);  // queues drain...
  EXPECT_TRUE(cn.ShouldShed()) << "one cool round must not exit shedding";
  cn.NoteLoadRound(0.0);
  EXPECT_EQ(cn.overload_state(), OverloadState::kDegraded);
  cn.NoteLoadRound(0.0);
  cn.NoteLoadRound(0.0);
  EXPECT_EQ(cn.overload_state(), OverloadState::kNormal);
  EXPECT_EQ(cn.DegreeCap(4), 4);
}

TEST(OverloadStateMachineTest, BorderlineRoundsResetTheStreak) {
  ControlNode cn(4, false);
  cn.ConfigureOverload(TightOverload());
  // Alternating hot/cool rounds never accumulate enter_rounds = 2 in a row.
  for (int i = 0; i < 10; ++i) {
    cn.NoteLoadRound(i % 2 == 0 ? 5.0 : 0.0);
    EXPECT_EQ(cn.overload_state(), OverloadState::kNormal) << "round " << i;
  }
}

TEST(OverloadStateMachineTest, DisabledConfigIsInert) {
  ControlNode cn(4, false);  // overload never configured
  for (int i = 0; i < 10; ++i) cn.NoteLoadRound(1000.0);
  EXPECT_EQ(cn.overload_state(), OverloadState::kNormal);
  EXPECT_EQ(cn.DegreeCap(4), 4);
  EXPECT_FALSE(cn.ShouldShed());
}

// ------------------------------------------------------- composed cluster

/// All three domains at once, mirroring bench/chaos.cc intensity 3 on a
/// shorter horizon: background disk errors, a slow-disk window, a degraded
/// link, a partition, a crash/repair cycle, and tight overload thresholds
/// under elevated load.
SystemConfig ComposedChaosConfig() {
  SystemConfig cfg;
  cfg.num_pes = 8;
  cfg.multiprogramming_level = 2;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 6000.0;
  cfg.join_query.arrival_rate_per_pe_qps = 1.0;
  cfg.faults.io_error_rate = 0.03;
  cfg.faults.events = {{2000.0, FaultKind::kSlowDisk, 1, -1, 4.0},
                       {4500.0, FaultKind::kSlowDisk, 1, -1, 1.0},
                       {2000.0, FaultKind::kSlowLink, 4, 5, 4.0},
                       {2500.0, FaultKind::kPartition, 0, 3},
                       {3800.0, FaultKind::kHeal, 0, 3},
                       {3000.0, FaultKind::kCrash, 2},
                       {4200.0, FaultKind::kRecover, 2}};
  cfg.faults.query_timeout_ms = 8000.0;
  cfg.faults.retry.max_attempts = 6;
  cfg.faults.retry.initial_backoff_ms = 100.0;
  cfg.overload.enabled = true;
  cfg.overload.degrade_queue_threshold = 1.0;
  cfg.overload.shed_queue_threshold = 2.0;
  cfg.overload.exit_queue_threshold = 0.5;
  cfg.overload.enter_rounds = 2;
  cfg.overload.exit_rounds = 3;
  cfg.control_report_interval_ms = 500.0;
  return cfg;
}

TEST(ChaosClusterTest, ComposedChaosHoldsConservationInvariants) {
  SystemConfig cfg = ComposedChaosConfig();
  Cluster cluster(cfg);
  MetricsReport r = cluster.Run();

  // Every domain fired.
  EXPECT_GT(r.joins_completed, 0) << "chaos starved the workload completely";
  EXPECT_GT(r.io_errors, 0);
  EXPECT_GE(r.io_errors, r.io_retries);
  EXPECT_GT(r.slow_disk_ms, 0.0);
  EXPECT_EQ(r.link_partitions, 1);
  EXPECT_EQ(r.pe_crashes, 1);
  EXPECT_EQ(r.pe_recoveries, 1);
  EXPECT_GT(r.queries_retried, 0) << "partition/crash victims never retried";

  // Conservation: after the drain no admission slot, buffer reservation or
  // memory-queue entry survives, at any PE — every cancellation path
  // released what it held.
  for (PeId pe = 0; pe < cfg.num_pes; ++pe) {
    EXPECT_EQ(cluster.pe(pe).admission().busy(), 0) << "pe " << pe;
    EXPECT_EQ(cluster.pe(pe).admission().queue_length(), 0u) << "pe " << pe;
    EXPECT_EQ(cluster.pe(pe).buffer().reserved(), 0) << "pe " << pe;
    EXPECT_EQ(cluster.pe(pe).buffer().memory_queue_length(), 0u)
        << "pe " << pe;
    EXPECT_FALSE(cluster.pe(pe).failed()) << "pe " << pe;
  }
}

TEST(ChaosClusterTest, ComposedChaosIsDeterministicAcrossReruns) {
  SystemConfig cfg = ComposedChaosConfig();
  MetricsReport r1 = Cluster(cfg).Run();
  MetricsReport r2 = Cluster(cfg).Run();
  EXPECT_EQ(r1.joins_completed, r2.joins_completed);
  EXPECT_DOUBLE_EQ(r1.join_rt_ms, r2.join_rt_ms);
  EXPECT_EQ(r1.queries_shed, r2.queries_shed);
  EXPECT_EQ(r1.queries_degraded, r2.queries_degraded);
  EXPECT_EQ(r1.queries_retried, r2.queries_retried);
  EXPECT_EQ(r1.queries_failed, r2.queries_failed);
  EXPECT_EQ(r1.io_errors, r2.io_errors);
  EXPECT_EQ(r1.io_retries, r2.io_retries);
  EXPECT_EQ(r1.link_partitions, r2.link_partitions);
  EXPECT_DOUBLE_EQ(r1.slow_disk_ms, r2.slow_disk_ms);
  EXPECT_EQ(r1.kernel_events, r2.kernel_events);
}

TEST(ChaosClusterTest, ComposedChaosIsIdenticalAcrossShardCounts) {
  SystemConfig base = ComposedChaosConfig();
  MetricsReport r1 = Cluster(base).Run();
  for (int shards : {2, 4}) {
    SystemConfig cfg = base;
    cfg.shards = shards;
    MetricsReport r = Cluster(cfg).Run();
    EXPECT_EQ(r.joins_completed, r1.joins_completed) << "shards=" << shards;
    EXPECT_EQ(r.queries_shed, r1.queries_shed) << "shards=" << shards;
    EXPECT_EQ(r.queries_degraded, r1.queries_degraded) << "shards=" << shards;
    EXPECT_EQ(r.io_errors, r1.io_errors) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(r.slow_disk_ms, r1.slow_disk_ms) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(r.join_rt_ms, r1.join_rt_ms) << "shards=" << shards;
  }
}

TEST(ChaosClusterTest, OverloadShedsAndDegradesUnderSustainedPressure) {
  // Overload alone (no fault injection): queries run unsupervised, so this
  // exercises the direct shed/degrade accounting path in the executor.
  SystemConfig cfg;
  cfg.num_pes = 8;
  cfg.multiprogramming_level = 1;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 8000.0;
  cfg.join_query.arrival_rate_per_pe_qps = 2.0;
  cfg.overload.enabled = true;
  cfg.overload.degrade_queue_threshold = 0.5;
  cfg.overload.shed_queue_threshold = 1.0;
  cfg.overload.exit_queue_threshold = 0.25;
  cfg.overload.enter_rounds = 1;
  cfg.control_report_interval_ms = 500.0;
  MetricsReport r = Cluster(cfg).Run();
  EXPECT_GT(r.queries_shed, 0) << "4x overload never triggered shedding";
  EXPECT_GT(r.queries_degraded, 0) << "no plan was overload-capped";
  EXPECT_GT(r.joins_completed, 0) << "shedding must not starve admission";
  EXPECT_EQ(r.queries_failed, 0) << "shed queries must not count as failed";
}

TEST(ChaosClusterTest, SlackOverloadThresholdsMatchDisabledRunExactly) {
  // An enabled-but-never-triggered overload controller is pure bookkeeping:
  // the event stream must be identical to the disabled configuration.
  SystemConfig cfg;
  cfg.num_pes = 8;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 5000.0;
  cfg.join_query.arrival_rate_per_pe_qps = 0.4;
  MetricsReport off = Cluster(cfg).Run();
  cfg.overload.enabled = true;
  cfg.overload.degrade_queue_threshold = 1e9;
  cfg.overload.shed_queue_threshold = 1e9;
  MetricsReport on = Cluster(cfg).Run();
  EXPECT_EQ(on.kernel_events, off.kernel_events)
      << "idle overload bookkeeping perturbed the event stream";
  EXPECT_EQ(on.joins_completed, off.joins_completed);
  EXPECT_DOUBLE_EQ(on.join_rt_ms, off.join_rt_ms);
  EXPECT_EQ(on.queries_shed, 0);
  EXPECT_EQ(on.queries_degraded, 0);
}

TEST(ChaosClusterTest, SweepCsvIsIdenticalAcrossWorkerCounts) {
  runner::Sweep sweep;
  SystemConfig chaotic = ComposedChaosConfig();
  chaotic.measurement_ms = 3000.0;
  sweep.Add({"chaos_test/a", "a", 0, "0", chaotic});
  sweep.Add({"chaos_test/b", "b", 1, "1", chaotic});
  sweep.Add({"chaos_test/c", "c", 2, "2", chaotic});
  runner::SweepOptions opts;
  opts.jobs = 1;
  std::string csv1 = runner::ResultsCsv(sweep.Run(opts));
  opts.jobs = 3;
  std::string csv3 = runner::ResultsCsv(sweep.Run(opts));
  EXPECT_EQ(csv1, csv3) << "worker count leaked into the chaos CSV";
  EXPECT_NE(csv1.find("queries_shed,io_errors,io_retries,link_partitions,"
                      "slow_disk_ms"),
            std::string::npos)
      << "robustness columns missing from the CSV header";
}

}  // namespace
}  // namespace pdblb
