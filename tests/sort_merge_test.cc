// Copyright 2026 the pdblb authors. MIT license.
//
// Unit tests for the sort-merge baseline (join/sort_merge): run generation,
// in-memory operation, spilling, multi-pass merging, the non-preemptible
// reservation, the CreateLocalJoin factory, and integration comparisons
// against PPHJ under memory pressure.

#include <gtest/gtest.h>

#include <memory>

#include "bufmgr/buffer_manager.h"
#include "engine/cluster.h"
#include "iosim/disk.h"
#include "join/pphj.h"
#include "join/sort_merge.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"

namespace pdblb {
namespace {

struct Fixture {
  sim::Scheduler sched;
  sim::Resource cpu{sched, 1, "cpu"};
  CpuCosts costs;
  DiskConfig disk_config;
  BufferConfig buf_config;
  std::unique_ptr<DiskArray> disks;
  std::unique_ptr<BufferManager> buffer;

  explicit Fixture(int buffer_pages = 50) {
    buf_config.buffer_pages = buffer_pages;
    disks = std::make_unique<DiskArray>(sched, disk_config, costs, 20.0, cpu,
                                        "t");
    buffer =
        std::make_unique<BufferManager>(sched, buf_config, *disks, "buf");
  }

  LocalJoinParams Params(int64_t inner_tuples, int64_t outer_tuples,
                         int want_pages) {
    LocalJoinParams p;
    p.temp_relation_id = -1;
    p.expected_inner_tuples = inner_tuples;
    p.expected_outer_tuples = outer_tuples;
    p.blocking_factor = 20;
    p.want_pages = want_pages;
    return p;
  }
};

sim::Task<> DriveJoin(LocalJoin& join, int64_t inner, int64_t outer,
                      int batches) {
  co_await join.AcquireMemory();
  for (int i = 0; i < batches; ++i) {
    co_await join.InsertInnerBatch(inner / batches);
  }
  for (int i = 0; i < batches; ++i) {
    co_await join.ProbeBatch(outer / batches);
  }
  co_await join.CompleteProbe();
  join.Release();
}

TEST(SortMergeTest, InMemoryJoinDoesNoTempIo) {
  Fixture f(50);
  // 200 + 400 tuples = 10 + 20 pages; both fit into a 40-page reservation.
  SortMergeJoin join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
                     f.Params(200, 400, 40));
  f.sched.Spawn(DriveJoin(join, 200, 400, 4));
  f.sched.Run();
  EXPECT_EQ(join.temp_pages_written(), 0);
  EXPECT_EQ(join.temp_pages_read(), 0);
  EXPECT_EQ(join.spilled_runs(), 0);
  EXPECT_EQ(f.buffer->reserved(), 0);  // released
}

TEST(SortMergeTest, LargeInputSpillsRuns) {
  Fixture f(50);
  // 2000 + 8000 tuples = 100 + 400 pages against a 20-page working space.
  SortMergeJoin join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
                     f.Params(2000, 8000, 20));
  f.sched.Spawn(DriveJoin(join, 2000, 8000, 10));
  f.sched.Run();
  EXPECT_GT(join.spilled_runs(), 0);
  EXPECT_GT(join.temp_pages_written(), 0);
  EXPECT_GT(join.temp_pages_read(), 0);
  // Everything spilled is read back at least once for the final merge.
  EXPECT_GE(join.temp_pages_read(), join.temp_pages_written() -
                                        join.extra_merge_passes() * 500);
}

TEST(SortMergeTest, TinyWorkingSpaceNeedsExtraMergePasses) {
  Fixture f(4);
  // Fan-in of 3 pages cannot merge the ~dozens of runs in one pass.
  SortMergeJoin join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
                     f.Params(2000, 8000, 4));
  f.sched.Spawn(DriveJoin(join, 2000, 8000, 10));
  f.sched.Run();
  EXPECT_GT(join.extra_merge_passes(), 0);
}

TEST(SortMergeTest, AmpleMemorySingleMergePass) {
  Fixture f(50);
  SortMergeJoin join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
                     f.Params(2000, 8000, 50));
  f.sched.Spawn(DriveJoin(join, 2000, 8000, 10));
  f.sched.Run();
  EXPECT_EQ(join.extra_merge_passes(), 0);
}

TEST(SortMergeTest, ReservationIsNotStealable) {
  Fixture f(50);
  SortMergeJoin join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
                     f.Params(2000, 8000, 40));
  bool done = false;
  f.sched.Spawn([](SortMergeJoin& j, Fixture& fx, bool* flag) -> sim::Task<> {
    co_await j.AcquireMemory();
    co_await j.InsertInnerBatch(1000);
    // An OLTP page fetch that would steal from a PPHJ victim cannot reclaim
    // sort-merge working space: no victim is registered.
    EXPECT_EQ(fx.buffer->reserved(), j.reserved_pages());
    int before = j.reserved_pages();
    co_await fx.buffer->Fetch(PageKey{7, 1}, AccessPattern::kRandom,
                              /*priority_oltp=*/true);
    EXPECT_EQ(j.reserved_pages(), before);
    j.Release();
    *flag = true;
  }(join, f, &done));
  f.sched.Run();
  EXPECT_TRUE(done);
}

TEST(SortMergeTest, ReleaseIsIdempotent) {
  Fixture f(50);
  SortMergeJoin join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
                     f.Params(100, 100, 10));
  f.sched.Spawn(DriveJoin(join, 100, 100, 1));
  f.sched.Run();
  join.Release();
  join.Release();
  EXPECT_EQ(f.buffer->reserved(), 0);
}

TEST(SortMergeTest, MinPagesRespectsTinyBuffers) {
  Fixture f(2);
  SortMergeJoin join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
                     f.Params(100, 100, 10));
  EXPECT_LE(join.min_pages(), 2);
}

// ----------------------------------------------------------------- factory

TEST(LocalJoinFactoryTest, CreatesRequestedMethod) {
  Fixture f(50);
  auto params = f.Params(500, 2000, 30);
  auto hash = CreateLocalJoin(LocalJoinMethod::kPPHJ, f.sched, *f.buffer,
                              *f.disks, f.cpu, f.costs, 20.0, params);
  auto sm = CreateLocalJoin(LocalJoinMethod::kSortMerge, f.sched, *f.buffer,
                            *f.disks, f.cpu, f.costs, 20.0, params);
  EXPECT_NE(dynamic_cast<Pphj*>(hash.get()), nullptr);
  EXPECT_NE(dynamic_cast<SortMergeJoin*>(sm.get()), nullptr);
}

TEST(LocalJoinFactoryTest, BothMethodsCompleteTheSameJoin) {
  for (auto method : {LocalJoinMethod::kPPHJ, LocalJoinMethod::kSortMerge}) {
    Fixture f(50);
    auto join = CreateLocalJoin(method, f.sched, *f.buffer, *f.disks, f.cpu,
                                f.costs, 20.0, f.Params(1000, 4000, 25));
    f.sched.Spawn(DriveJoin(*join, 1000, 4000, 8));
    f.sched.Run();
    EXPECT_EQ(f.buffer->reserved(), 0);
  }
}

// -------------------------------------------------------------- integration

SystemConfig MethodConfig(LocalJoinMethod method) {
  SystemConfig cfg;
  cfg.num_pes = 20;
  cfg.strategy = strategies::OptIOCpu();
  cfg.local_join_method = method;
  cfg.join_query.arrival_rate_per_pe_qps = 0.10;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 8000.0;
  return cfg;
}

TEST(SortMergeIntegrationTest, ClusterRunsWithSortMerge) {
  Cluster cluster(MethodConfig(LocalJoinMethod::kSortMerge));
  MetricsReport r = cluster.Run();
  EXPECT_GT(r.joins_completed, 0);
}

TEST(SortMergeIntegrationTest, PphjBeatsSortMergeWithOltpMemoryPressure) {
  // The PPHJ design point [23]: with concurrent higher-priority OLTP
  // stealing memory, the adaptive hash join sustains lower OLTP response
  // times than rigid sort-merge (whose reservations cannot be reclaimed).
  auto run = [](LocalJoinMethod method) {
    SystemConfig cfg = MethodConfig(method);
    cfg.oltp.enabled = true;
    cfg.oltp.placement = OltpPlacement::kAllNodes;
    cfg.oltp.tps_per_node = 50.0;
    Cluster cluster(cfg);
    return cluster.Run();
  };
  MetricsReport pphj = run(LocalJoinMethod::kPPHJ);
  MetricsReport sm = run(LocalJoinMethod::kSortMerge);
  ASSERT_GT(pphj.oltp_completed, 0);
  ASSERT_GT(sm.oltp_completed, 0);
  EXPECT_LT(pphj.oltp_rt_ms, sm.oltp_rt_ms);
}

}  // namespace
}  // namespace pdblb
