// Copyright 2026 the pdblb authors. MIT license.
//
// Determinism: every experiment is exactly reproducible from its seed, for
// every workload class, architecture, CC scheme and join method — and
// different seeds genuinely change the outcome.  This is what makes the
// figure reproductions trustworthy.

#include <gtest/gtest.h>

#include "engine/cluster.h"

namespace pdblb {
namespace {

MetricsReport RunOnce(const SystemConfig& cfg) {
  Cluster cluster(cfg);
  return cluster.Run();
}

void ExpectIdentical(const MetricsReport& a, const MetricsReport& b) {
  EXPECT_DOUBLE_EQ(a.join_rt_ms, b.join_rt_ms);
  EXPECT_EQ(a.joins_completed, b.joins_completed);
  EXPECT_DOUBLE_EQ(a.avg_degree, b.avg_degree);
  EXPECT_DOUBLE_EQ(a.cpu_utilization, b.cpu_utilization);
  EXPECT_DOUBLE_EQ(a.oltp_rt_ms, b.oltp_rt_ms);
  EXPECT_EQ(a.oltp_completed, b.oltp_completed);
  EXPECT_DOUBLE_EQ(a.scan_rt_ms, b.scan_rt_ms);
  EXPECT_DOUBLE_EQ(a.update_rt_ms, b.update_rt_ms);
  EXPECT_DOUBLE_EQ(a.multiway_rt_ms, b.multiway_rt_ms);
  EXPECT_EQ(a.lock_waits, b.lock_waits);
  // The kernel event count is part of the deterministic surface: two runs
  // of the same seed must dispatch exactly the same events.  Note the
  // accounting change with the frameless-awaiter kernel: a contended
  // Resource::Use now costs one calendar event (the end-of-service resume)
  // instead of two (grant wake-up + service delay), and channel value
  // hand-offs bypass the calendar entirely — so absolute kernel_events
  // values are much lower than under the PR 1 kernel and calendar-
  // bypassing resumes are pinned separately via kernel_handoffs.
  // (Wall-clock derived fields like kernel_events_per_sec are
  // intentionally excluded.)
  EXPECT_EQ(a.kernel_events, b.kernel_events);
  EXPECT_EQ(a.kernel_handoffs, b.kernel_handoffs);
}

SystemConfig SmallConfig() {
  SystemConfig cfg;
  cfg.num_pes = 10;
  cfg.warmup_ms = 500.0;
  cfg.measurement_ms = 4000.0;
  return cfg;
}

TEST(DeterminismTest, BaseJoinWorkload) {
  SystemConfig cfg = SmallConfig();
  ExpectIdentical(RunOnce(cfg), RunOnce(cfg));
}

TEST(DeterminismTest, DifferentSeedsDiffer) {
  SystemConfig a = SmallConfig();
  SystemConfig b = SmallConfig();
  b.seed = 4711;
  MetricsReport ra = RunOnce(a);
  MetricsReport rb = RunOnce(b);
  EXPECT_NE(ra.join_rt_ms, rb.join_rt_ms);
}

TEST(DeterminismTest, AllClassesMixed) {
  SystemConfig cfg = SmallConfig();
  cfg.join_query.arrival_rate_per_pe_qps = 0.05;
  cfg.scan_query.enabled = true;
  cfg.scan_query.arrival_rate_per_pe_qps = 0.05;
  cfg.update_query.enabled = true;
  cfg.update_query.arrival_rate_per_pe_qps = 0.05;
  cfg.multiway_join.enabled = true;
  cfg.multiway_join.arrival_rate_per_pe_qps = 0.02;
  cfg.oltp.enabled = true;
  cfg.oltp.tps_per_node = 20.0;
  ExpectIdentical(RunOnce(cfg), RunOnce(cfg));
}

TEST(DeterminismTest, SharedDiskArchitecture) {
  SystemConfig cfg = SmallConfig();
  cfg.architecture = Architecture::kSharedDisk;
  cfg.oltp.enabled = true;
  cfg.oltp.placement = OltpPlacement::kANodes;
  cfg.oltp.tps_per_node = 50.0;
  ExpectIdentical(RunOnce(cfg), RunOnce(cfg));
}

TEST(DeterminismTest, TwoPhaseLockingScheme) {
  SystemConfig cfg = SmallConfig();
  cfg.cc_scheme = CcScheme::kTwoPhaseLocking;
  cfg.update_query.enabled = true;
  cfg.update_query.arrival_rate_per_pe_qps = 0.2;
  ExpectIdentical(RunOnce(cfg), RunOnce(cfg));
}

TEST(DeterminismTest, SortMergeJoinMethod) {
  SystemConfig cfg = SmallConfig();
  cfg.local_join_method = LocalJoinMethod::kSortMerge;
  ExpectIdentical(RunOnce(cfg), RunOnce(cfg));
}

TEST(DeterminismTest, SkewedRedistribution) {
  SystemConfig cfg = SmallConfig();
  cfg.join_query.redistribution_skew = 1.0;
  cfg.strategy.skew_aware_assignment = true;
  ExpectIdentical(RunOnce(cfg), RunOnce(cfg));
}

TEST(DeterminismTest, SingleUserMode) {
  SystemConfig cfg = SmallConfig();
  cfg.single_user_mode = true;
  cfg.single_user_queries = 10;
  ExpectIdentical(RunOnce(cfg), RunOnce(cfg));
}

TEST(DeterminismTest, RateMatchStrategy) {
  SystemConfig cfg = SmallConfig();
  cfg.strategy = strategies::RateMatchLUC();
  ExpectIdentical(RunOnce(cfg), RunOnce(cfg));
}

}  // namespace
}  // namespace pdblb
