// Copyright 2026 the pdblb authors. MIT license.
//
// Regression tests for Scheduler::Cancel: destroying a suspended frame must
// remove its pending calendar/ring entries (no ghost dispatch) and unhook it
// from whatever primitive it is parked in — Delay, Resource (both queued and
// granted-but-pending), Channel, Latch, TaskGroup, LockManager and the
// buffer manager's memory queue.  Each test parks a victim, cancels it
// mid-wait, and checks that (a) the victim never runs, (b) waiters behind it
// are served normally, and (c) no server/lock/reservation is leaked.
// Finally, a composite scenario with cancellations must replay bit-identical
// (same event trace bytes, same event count) across reruns.

#include <gtest/gtest.h>

#include <string>

#include "bufmgr/buffer_manager.h"
#include "common/config.h"
#include "engine/cluster.h"
#include "iosim/disk.h"
#include "lockmgr/lock_manager.h"
#include "simkern/channel.h"
#include "simkern/latch.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"
#include "simkern/task_group.h"
#include "simkern/tracer.h"

namespace pdblb {
namespace {

using sim::Channel;
using sim::Latch;
using sim::Resource;
using sim::Scheduler;
using sim::Task;
using sim::TaskGroup;
using sim::Tracer;

Task<> FlagAfterDelay(Scheduler& sched, SimTime delay, bool* ran) {
  co_await sched.Delay(delay);
  *ran = true;
}

TEST(CancelTest, CancelRemovesPendingDelay) {
  Scheduler sched;
  bool ran = false;
  uint64_t id = sched.SpawnWithId(FlagAfterDelay(sched, 10.0, &ran));
  EXPECT_TRUE(sched.Alive(id));
  sched.ScheduleCallback(5.0, [&] {
    EXPECT_TRUE(sched.Cancel(id));
    EXPECT_FALSE(sched.Alive(id));
    EXPECT_FALSE(sched.Cancel(id)) << "stale ids must no-op";
  });
  sched.Run();
  EXPECT_FALSE(ran) << "cancelled frame was ghost-dispatched";
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(CancelTest, CancelIdOfCompletedFrameIsStale) {
  Scheduler sched;
  bool ran = false;
  uint64_t id = sched.SpawnWithId(FlagAfterDelay(sched, 1.0, &ran));
  sched.Run();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(sched.Alive(id));
  EXPECT_FALSE(sched.Cancel(id));
}

Task<> UseAndFlag(Resource& res, SimTime hold, bool* ran) {
  co_await res.Use(hold);
  *ran = true;
}

Task<> AcquireAndFlag(Scheduler& sched, Resource& res, SimTime hold,
                      bool* ran) {
  co_await res.Acquire();
  co_await sched.Delay(hold);
  res.Release();
  *ran = true;
}

// Victim parked in the resource's waiter queue: the cancel must erase its
// queue entry so the grant chain skips straight to the waiter behind it.
TEST(CancelTest, CancelWaiterQueuedInResourceAcquire) {
  Scheduler sched;
  Resource res(sched, /*servers=*/1, "cpu");
  bool holder = false, victim = false, behind = false;
  sched.Spawn(AcquireAndFlag(sched, res, 10.0, &holder));
  uint64_t victim_id =
      sched.SpawnWithId(AcquireAndFlag(sched, res, 1.0, &victim));
  sched.Spawn(AcquireAndFlag(sched, res, 1.0, &behind));
  sched.ScheduleCallback(5.0, [&] { EXPECT_TRUE(sched.Cancel(victim_id)); });
  sched.Run();
  EXPECT_TRUE(holder);
  EXPECT_FALSE(victim);
  EXPECT_TRUE(behind) << "waiter behind the cancelled one was never granted";
  EXPECT_EQ(res.completed(), 2u);
}

// Victim cancelled in the window between Release() granting it a server and
// the grant event dispatching: CancelWaiter must hand the server back.  The
// cancel callback is scheduled at the exact release timestamp, after the
// holder's resume in same-time FIFO order, so it runs once the victim is
// granted-but-pending.
TEST(CancelTest, CancelGrantedButPendingResourceWaiter) {
  Scheduler sched;
  Resource res(sched, /*servers=*/1, "cpu");
  bool holder = false, victim = false, behind = false;
  sched.Spawn(UseAndFlag(res, 10.0, &holder));  // resume@10 inserted first
  uint64_t victim_id = sched.SpawnWithId(UseAndFlag(res, 1.0, &victim));
  sched.Spawn(UseAndFlag(res, 1.0, &behind));
  sched.ScheduleCallback(10.0, [&] { sched.Cancel(victim_id); });
  sched.Run();
  EXPECT_TRUE(holder);
  EXPECT_FALSE(victim);
  EXPECT_TRUE(behind) << "server leaked by cancelling a granted waiter";
  EXPECT_EQ(res.completed(), 2u);
}

Task<> ReceiveAndFlag(Channel<int>& ch, int* got, bool* closed) {
  while (auto v = co_await ch.Receive()) {
    *got = *v;
  }
  *closed = true;
}

TEST(CancelTest, CancelConsumerParkedInChannelReceive) {
  Scheduler sched;
  Channel<int> ch(sched);
  int victim_got = 0, other_got = 0;
  bool victim_closed = false, other_closed = false;
  uint64_t victim_id =
      sched.SpawnWithId(ReceiveAndFlag(ch, &victim_got, &victim_closed));
  sched.Spawn(ReceiveAndFlag(ch, &other_got, &other_closed));
  sched.ScheduleCallback(5.0, [&] { sched.Cancel(victim_id); });
  sched.ScheduleCallback(8.0, [&] {
    ch.Send(42);
    ch.Close();
  });
  sched.Run();
  EXPECT_EQ(victim_got, 0);
  EXPECT_FALSE(victim_closed);
  EXPECT_EQ(other_got, 42) << "value lost to a cancelled consumer";
  EXPECT_TRUE(other_closed);
}

Task<> WaitLatchAndFlag(Latch& latch, bool* ran) {
  co_await latch.Wait();
  *ran = true;
}

TEST(CancelTest, CancelWaiterParkedInLatchWait) {
  Scheduler sched;
  Latch latch(sched, 1);
  bool victim = false, other = false;
  uint64_t victim_id = sched.SpawnWithId(WaitLatchAndFlag(latch, &victim));
  sched.Spawn(WaitLatchAndFlag(latch, &other));
  sched.ScheduleCallback(5.0, [&] { sched.Cancel(victim_id); });
  sched.ScheduleCallback(8.0, [&] { latch.CountDown(); });
  sched.Run();
  EXPECT_FALSE(victim);
  EXPECT_TRUE(other);
}

Task<> WaitGroupAndFlag(TaskGroup& group, bool* ran) {
  co_await group.Wait();
  *ran = true;
}

TEST(CancelTest, CancelWaiterParkedInTaskGroupWait) {
  Scheduler sched;
  TaskGroup group(sched);
  bool member_done = false, victim = false, other = false;
  group.Spawn(FlagAfterDelay(sched, 10.0, &member_done));
  uint64_t victim_id = sched.SpawnWithId(WaitGroupAndFlag(group, &victim));
  sched.Spawn(WaitGroupAndFlag(group, &other));
  sched.ScheduleCallback(5.0, [&] { sched.Cancel(victim_id); });
  sched.Run();
  EXPECT_TRUE(member_done);
  EXPECT_FALSE(victim);
  EXPECT_TRUE(other);
  EXPECT_EQ(group.active(), 0);
}

Task<> LockDelayRelease(Scheduler& sched, LockManager& lm, TxnId txn,
                        SimTime start, SimTime hold, bool* granted) {
  co_await sched.Delay(start);
  bool ok = co_await lm.Lock(txn, LockKey{1, 7}, LockMode::kExclusive);
  if (granted != nullptr) *granted = ok;
  if (ok) {
    co_await sched.Delay(hold);
    lm.ReleaseAll(txn);
  }
}

TEST(CancelTest, CancelWaiterParkedInLockManagerWait) {
  Scheduler sched;
  LockManager lm(sched);
  bool victim_granted = false, behind_granted = false;
  sched.Spawn(LockDelayRelease(sched, lm, 1, 0.0, 10.0, nullptr));
  uint64_t victim_id = sched.SpawnWithId(
      LockDelayRelease(sched, lm, 2, 1.0, 1.0, &victim_granted));
  sched.Spawn(LockDelayRelease(sched, lm, 3, 2.0, 1.0, &behind_granted));
  sched.ScheduleCallback(5.0, [&] { sched.Cancel(victim_id); });
  sched.Run();
  EXPECT_FALSE(victim_granted) << "cancelled lock waiter was granted";
  EXPECT_TRUE(behind_granted)
      << "lock never reached the waiter behind the cancelled one";
  EXPECT_FALSE(lm.HoldsAnyLock(2));
  EXPECT_FALSE(lm.HoldsAnyLock(3));
}

struct BufFixture {
  sim::Scheduler sched;
  sim::Resource cpu{sched, 1, "cpu"};
  CpuCosts costs;
  DiskConfig disk_config;
  BufferConfig buf_config;
  std::unique_ptr<DiskArray> disks;
  std::unique_ptr<BufferManager> buffer;

  explicit BufFixture(int pages) {
    buf_config.buffer_pages = pages;
    disks = std::make_unique<DiskArray>(sched, disk_config, costs, 20.0, cpu,
                                        "t");
    buffer =
        std::make_unique<BufferManager>(sched, buf_config, *disks, "buf");
  }
};

Task<> ReserveDelayRelease(Scheduler& sched, BufferManager& buf, int pages,
                           SimTime start, SimTime hold, bool* granted) {
  co_await sched.Delay(start);
  int got = co_await buf.ReserveWait(pages, pages);
  if (granted != nullptr) *granted = true;
  co_await sched.Delay(hold);
  buf.ReleaseReservation(got);
}

TEST(CancelTest, CancelWaiterParkedInBufferMemoryQueue) {
  BufFixture f(10);
  bool victim = false, behind = false;
  f.sched.Spawn(
      ReserveDelayRelease(f.sched, *f.buffer, 8, 0.0, 10.0, nullptr));
  uint64_t victim_id = f.sched.SpawnWithId(
      ReserveDelayRelease(f.sched, *f.buffer, 5, 1.0, 1.0, &victim));
  f.sched.Spawn(
      ReserveDelayRelease(f.sched, *f.buffer, 4, 2.0, 1.0, &behind));
  f.sched.ScheduleCallback(5.0, [&] { f.sched.Cancel(victim_id); });
  f.sched.Run();
  EXPECT_FALSE(victim);
  EXPECT_TRUE(behind)
      << "memory queue never served the waiter behind the cancelled one";
  EXPECT_EQ(f.buffer->reserved(), 0) << "reservation leaked";
}

// Composite scenario exercising every cancellation path above.  Replaying
// it must produce the identical event stream: same trace bytes, same event
// count.  This is the kernel-level half of the determinism contract that
// lets fault injection stay bit-identical across --jobs/--shards.
struct ScenarioResult {
  uint64_t events = 0;
  std::string trace;
};

ScenarioResult RunCancellationScenario() {
  Scheduler sched;
  Tracer tracer(/*capacity=*/1 << 14);
  sched.AttachTracer(&tracer);

  Resource res(sched, 1, "cpu");
  Channel<int> ch(sched);
  Latch latch(sched, 1);
  bool sink_bool = false;
  int sink_int = 0;

  sched.Spawn(UseAndFlag(res, 10.0, &sink_bool));
  uint64_t res_victim = sched.SpawnWithId(UseAndFlag(res, 1.0, &sink_bool));
  sched.Spawn(UseAndFlag(res, 1.0, &sink_bool));
  uint64_t delay_victim =
      sched.SpawnWithId(FlagAfterDelay(sched, 50.0, &sink_bool));
  uint64_t ch_victim =
      sched.SpawnWithId(ReceiveAndFlag(ch, &sink_int, &sink_bool));
  sched.Spawn(ReceiveAndFlag(ch, &sink_int, &sink_bool));
  uint64_t latch_victim =
      sched.SpawnWithId(WaitLatchAndFlag(latch, &sink_bool));
  sched.Spawn(WaitLatchAndFlag(latch, &sink_bool));

  sched.ScheduleCallback(5.0, [&] {
    sched.Cancel(res_victim);
    sched.Cancel(delay_victim);
    sched.Cancel(ch_victim);
    sched.Cancel(latch_victim);
  });
  sched.ScheduleCallback(8.0, [&] {
    ch.Send(7);
    ch.Close();
    latch.CountDown();
  });
  sched.Run();
  return ScenarioResult{sched.events_processed(), tracer.ToCsv()};
}

TEST(CancelTest, CancellationScenarioReplaysBitIdentical) {
  ScenarioResult a = RunCancellationScenario();
  ScenarioResult b = RunCancellationScenario();
  EXPECT_GT(a.events, 0u);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.trace, b.trace) << "cancellation perturbed the event trace";
  if (sim::kTraceCompiledIn) {
    EXPECT_NE(a.trace, Tracer::kCsvHeader) << "scenario recorded no events";
  }
}

// Composed-fault unwind regression: disk retry chains, a partition and a PE
// crash all land inside the same few hundred milliseconds, so attempts that
// are stalled in injected disk retries get cancelled by the partition while
// the crash tears down whatever retried onto the failed PE.  Each RAII guard
// (admission, locks, buffer reservation) must release exactly once — a
// double release would corrupt the admission slot count below, a leak would
// trip the post-run conservation checks and leak detection.
TEST(CancelTest, ComposedFaultsUnwindGuardsExactlyOnce) {
  SystemConfig cfg;
  cfg.num_pes = 8;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 6000.0;
  cfg.join_query.arrival_rate_per_pe_qps = 0.5;
  cfg.cc_scheme = CcScheme::kTwoPhaseLocking;  // TxnLocksGuard in play too
  cfg.faults.io_error_rate = 0.2;              // long injected retry chains
  cfg.faults.io_retry_penalty_ms = 20.0;
  cfg.faults.events = {{3000.0, FaultKind::kPartition, 0, 3},
                       {3050.0, FaultKind::kCrash, 3},
                       {3500.0, FaultKind::kRecover, 3},
                       {3600.0, FaultKind::kHeal, 0, 3}};
  cfg.faults.retry.max_attempts = 5;
  cfg.faults.retry.initial_backoff_ms = 100.0;

  auto run = [&] {
    Cluster cluster(cfg);
    MetricsReport r = cluster.Run();
    for (PeId pe = 0; pe < cfg.num_pes; ++pe) {
      EXPECT_EQ(cluster.pe(pe).admission().busy(), 0)
          << "admission slot leaked or double-released at pe " << pe;
      EXPECT_EQ(cluster.pe(pe).buffer().reserved(), 0) << "pe " << pe;
      EXPECT_EQ(cluster.pe(pe).buffer().memory_queue_length(), 0u)
          << "pe " << pe;
    }
    return r;
  };
  MetricsReport r1 = run();
  EXPECT_GT(r1.queries_retried, 0) << "the composed faults cancelled nothing";
  EXPECT_GT(r1.io_errors, 0);
  EXPECT_EQ(r1.link_partitions, 1);
  EXPECT_EQ(r1.pe_crashes, 1);
  MetricsReport r2 = run();
  EXPECT_EQ(r1.kernel_events, r2.kernel_events)
      << "composed-fault unwind is not deterministic";
  EXPECT_EQ(r1.queries_retried, r2.queries_retried);
}

}  // namespace
}  // namespace pdblb
