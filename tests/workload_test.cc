// Copyright 2026 the pdblb authors. MIT license.
//
// Unit tests for workload generation: Poisson arrival rates, shutdown
// behavior and the single-user closed loop.

#include <gtest/gtest.h>

#include "workload/arrivals.h"

namespace pdblb {
namespace {

TEST(ArrivalsTest, PoissonRateIsApproximatelyCorrect) {
  sim::Scheduler sched;
  int64_t count = 0;
  sched.Spawn(PoissonArrivals(sched, sim::Rng(3), /*rate_per_second=*/50.0,
                              [&](int64_t) { ++count; }));
  sched.RunUntil(100000.0);  // 100 s -> expect ~5000 arrivals
  sched.RequestShutdown();
  sched.Run();
  EXPECT_GT(count, 4500);
  EXPECT_LT(count, 5500);
}

TEST(ArrivalsTest, SequenceNumbersAreConsecutive) {
  sim::Scheduler sched;
  std::vector<int64_t> seqs;
  sched.Spawn(PoissonArrivals(sched, sim::Rng(3), 100.0,
                              [&](int64_t s) { seqs.push_back(s); }));
  sched.RunUntil(1000.0);
  sched.RequestShutdown();
  sched.Run();
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], static_cast<int64_t>(i));
  }
}

TEST(ArrivalsTest, StopsOnShutdown) {
  sim::Scheduler sched;
  int64_t count = 0;
  sched.Spawn(PoissonArrivals(sched, sim::Rng(3), 100.0,
                              [&](int64_t) { ++count; }));
  sched.RunUntil(1000.0);
  int64_t at_shutdown = count;
  sched.RequestShutdown();
  sched.Run();  // drains: at most one more event fires
  EXPECT_LE(count, at_shutdown + 1);
}

TEST(ArrivalsTest, DeterministicUnderSameSeed) {
  auto run = [](uint64_t seed) {
    sim::Scheduler sched;
    std::vector<SimTime> times;
    sched.Spawn(PoissonArrivals(sched, sim::Rng(seed), 20.0,
                                [&](int64_t) { times.push_back(sched.Now()); }));
    sched.RunUntil(5000.0);
    sched.RequestShutdown();
    sched.Run();
    return times;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(ClosedLoopTest, RunsBodySequentially) {
  sim::Scheduler sched;
  std::vector<std::pair<int64_t, SimTime>> log;
  bool done = false;
  auto body = [&](int64_t i) -> sim::Task<> {
    co_await sched.Delay(10.0);
    log.push_back({i, sched.Now()});
  };
  sched.Spawn(ClosedLoop(5, body, &done));
  sched.Run();
  EXPECT_TRUE(done);
  ASSERT_EQ(log.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(log[i].first, i);
    EXPECT_DOUBLE_EQ(log[i].second, (i + 1) * 10.0);  // back to back
  }
}

TEST(ClosedLoopTest, ZeroIterations) {
  sim::Scheduler sched;
  bool done = false;
  sched.Spawn(ClosedLoop(0, [](int64_t) -> sim::Task<> { co_return; }, &done));
  sched.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace pdblb
