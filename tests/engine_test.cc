// Copyright 2026 the pdblb authors. MIT license.
//
// Integration tests: full cluster simulations at small scale, cross-checked
// against closed-form expectations, plus determinism and workload-mix
// behavior.  These tests run complete discrete-event simulations (a few
// hundred milliseconds of wall time each).

#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/join_executor.h"
#include "engine/oltp_executor.h"

namespace pdblb {
namespace {

SystemConfig SmallConfig() {
  SystemConfig cfg;
  cfg.num_pes = 10;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 5000.0;
  cfg.join_query.arrival_rate_per_pe_qps = 0.1;  // light load
  return cfg;
}

TEST(ClusterTest, ConstructionWiresComponents) {
  SystemConfig cfg = SmallConfig();
  Cluster cluster(cfg);
  EXPECT_EQ(cluster.num_pes(), 10);
  EXPECT_EQ(cluster.db().a_nodes().size(), 2u);
  EXPECT_EQ(cluster.plan_request().num_pes, 10);
  EXPECT_EQ(cluster.plan_request().psu_noio, 3);
  EXPECT_GT(cluster.plan_request().hash_table_pages, 0);
  // Temp relation ids are unique and negative.
  int32_t t1 = cluster.NextTempRelationId();
  int32_t t2 = cluster.NextTempRelationId();
  EXPECT_LT(t1, 0);
  EXPECT_NE(t1, t2);
}

TEST(ClusterTest, SingleUserJoinMatchesCostModelBallpark) {
  SystemConfig cfg;
  cfg.num_pes = 40;
  cfg.single_user_mode = true;
  cfg.single_user_queries = 10;
  cfg.strategy = strategies::PsuOptLUM();
  Cluster cluster(cfg);
  MetricsReport r = cluster.Run();
  EXPECT_EQ(r.joins_completed, 10);
  EXPECT_EQ(r.avg_degree, 30.0);  // p_su-opt with ample memory
  // The analytic model and the simulator share cost constants; the
  // simulated single-user response time must land within 2x of R(p_su-opt).
  CostModel cm(cfg);
  double predicted = cm.ResponseTimeMs(30);
  EXPECT_GT(r.join_rt_ms, 0.4 * predicted);
  EXPECT_LT(r.join_rt_ms, 2.5 * predicted);
  // Single-user with enough aggregate memory: no temp I/O at all.
  EXPECT_DOUBLE_EQ(r.temp_pages_written_per_join, 0.0);
}

TEST(ClusterTest, DeterministicAcrossRuns) {
  SystemConfig cfg = SmallConfig();
  cfg.strategy = strategies::OptIOCpu();
  MetricsReport r1 = Cluster(cfg).Run();
  MetricsReport r2 = Cluster(cfg).Run();
  EXPECT_DOUBLE_EQ(r1.join_rt_ms, r2.join_rt_ms);
  EXPECT_EQ(r1.joins_completed, r2.joins_completed);
  EXPECT_DOUBLE_EQ(r1.cpu_utilization, r2.cpu_utilization);
}

TEST(ClusterTest, DifferentSeedsDiffer) {
  SystemConfig cfg = SmallConfig();
  MetricsReport r1 = Cluster(cfg).Run();
  cfg.seed = 777;
  MetricsReport r2 = Cluster(cfg).Run();
  EXPECT_NE(r1.join_rt_ms, r2.join_rt_ms);
}

TEST(ClusterTest, OpenWorkloadKeepsUpUnderLightLoad) {
  SystemConfig cfg = SmallConfig();
  cfg.strategy = strategies::PmuCpuLUM();
  MetricsReport r = Cluster(cfg).Run();
  // Offered: 0.1 QPS/PE * 10 PE = 1 QPS over 5 s of measurement.
  EXPECT_GT(r.joins_completed, 1);
  EXPECT_GT(r.join_throughput_qps, 0.5);
  EXPECT_LT(r.cpu_utilization, 0.5);
  EXPECT_GT(r.cpu_utilization, 0.0);
}

TEST(ClusterTest, UtilizationsAreWithinBounds) {
  SystemConfig cfg = SmallConfig();
  MetricsReport r = Cluster(cfg).Run();
  EXPECT_GE(r.cpu_utilization, 0.0);
  EXPECT_LE(r.cpu_utilization, 1.0);
  EXPECT_GE(r.disk_utilization, 0.0);
  EXPECT_LE(r.disk_utilization, 1.0);
  EXPECT_GE(r.memory_utilization, 0.0);
  EXPECT_LE(r.memory_utilization, 1.0 + 1e-9);
}

TEST(ClusterTest, OltpOnlyWorkloadSustainsThroughput) {
  SystemConfig cfg;
  cfg.num_pes = 10;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 5000.0;
  cfg.join_query.arrival_rate_per_pe_qps = 0.0;  // OLTP only
  cfg.oltp.enabled = true;
  cfg.oltp.placement = OltpPlacement::kANodes;  // 2 nodes * 100 TPS
  cfg.disk.disks_per_pe = 5;
  MetricsReport r = Cluster(cfg).Run();
  EXPECT_EQ(r.joins_completed, 0);
  EXPECT_GT(r.oltp_completed, 800);  // ~1000 expected in 5 s
  EXPECT_LT(r.oltp_rt_ms, 500.0);
  EXPECT_GT(r.oltp_throughput_tps, 160.0);
}

TEST(ClusterTest, MixedWorkloadRunsBothClasses) {
  SystemConfig cfg;
  cfg.num_pes = 10;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 4000.0;
  cfg.join_query.arrival_rate_per_pe_qps = 0.075;
  cfg.oltp.enabled = true;
  cfg.oltp.placement = OltpPlacement::kBNodes;
  cfg.disk.disks_per_pe = 5;
  cfg.strategy = strategies::OptIOCpu();
  MetricsReport r = Cluster(cfg).Run();
  EXPECT_GT(r.joins_completed, 0);
  EXPECT_GT(r.oltp_completed, 0);
  EXPECT_GT(r.oltp_throughput_tps, 100.0);
}

TEST(ClusterTest, MemoryPressureProducesTempIo) {
  SystemConfig cfg = SmallConfig();
  cfg.buffer.buffer_pages = 5;  // fig-7 style tiny buffers
  cfg.join_query.arrival_rate_per_pe_qps = 0.05;
  cfg.strategy = strategies::PmuCpuLUM();
  MetricsReport r = Cluster(cfg).Run();
  EXPECT_GT(r.joins_completed, 0);
  EXPECT_GT(r.temp_pages_written_per_join, 0.0);
}

TEST(ClusterTest, HigherLoadRaisesResponseTime) {
  SystemConfig light = SmallConfig();
  light.join_query.arrival_rate_per_pe_qps = 0.05;
  SystemConfig heavy = SmallConfig();
  heavy.join_query.arrival_rate_per_pe_qps = 0.3;
  heavy.measurement_ms = 8000.0;
  MetricsReport rl = Cluster(light).Run();
  MetricsReport rh = Cluster(heavy).Run();
  EXPECT_GT(rh.join_rt_ms, rl.join_rt_ms);
  EXPECT_GT(rh.cpu_utilization, rl.cpu_utilization);
}

TEST(ClusterTest, AdaptiveFeedbackSpreadsLoad) {
  // With feedback disabled and slow reports, back-to-back LUM joins herd
  // onto the same nodes; the adaptive bump avoids that.  Both must finish,
  // and feedback must not be slower.
  SystemConfig off = SmallConfig();
  off.adaptive_selection_feedback = false;
  off.strategy = strategies::PmuCpuLUM();
  SystemConfig on = off;
  on.adaptive_selection_feedback = true;
  MetricsReport r_off = Cluster(off).Run();
  MetricsReport r_on = Cluster(on).Run();
  EXPECT_GT(r_off.joins_completed, 0);
  EXPECT_GT(r_on.joins_completed, 0);
}

TEST(ClusterTest, SelectivityScalesJoinCost) {
  SystemConfig small = SmallConfig();
  small.join_query.scan_selectivity = 0.001;
  SystemConfig big = SmallConfig();
  big.join_query.scan_selectivity = 0.02;
  big.join_query.arrival_rate_per_pe_qps = 0.05;
  MetricsReport rs = Cluster(small).Run();
  MetricsReport rb = Cluster(big).Run();
  EXPECT_GT(rb.join_rt_ms, rs.join_rt_ms);
}

TEST(ClusterTest, SingleUserModeIgnoresArrivalRate) {
  SystemConfig cfg;
  cfg.num_pes = 10;
  cfg.single_user_mode = true;
  cfg.single_user_queries = 5;
  cfg.join_query.arrival_rate_per_pe_qps = 100.0;  // must be ignored
  MetricsReport r = Cluster(cfg).Run();
  EXPECT_EQ(r.joins_completed, 5);
}

// Every strategy must run a mixed workload to completion without stalling.
class StrategySmokeTest : public ::testing::TestWithParam<StrategyConfig> {};

TEST_P(StrategySmokeTest, CompletesMixedWorkload) {
  SystemConfig cfg;
  cfg.num_pes = 10;
  cfg.warmup_ms = 500.0;
  cfg.measurement_ms = 3000.0;
  cfg.join_query.arrival_rate_per_pe_qps = 0.1;
  cfg.oltp.enabled = true;
  cfg.oltp.placement = OltpPlacement::kANodes;
  cfg.disk.disks_per_pe = 5;
  cfg.strategy = GetParam();
  MetricsReport r = Cluster(cfg).Run();
  EXPECT_GT(r.joins_completed, 0) << cfg.strategy.Name();
  EXPECT_GT(r.oltp_completed, 0) << cfg.strategy.Name();
  EXPECT_GE(r.avg_degree, 1.0);
  EXPECT_LE(r.avg_degree, 10.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategySmokeTest,
    ::testing::Values(strategies::PsuOptRandom(), strategies::PsuOptLUC(),
                      strategies::PsuOptLUM(), strategies::PsuNoIORandom(),
                      strategies::PsuNoIOLUC(), strategies::PsuNoIOLUM(),
                      strategies::PmuCpuRandom(), strategies::PmuCpuLUM(),
                      strategies::MinIO(), strategies::MinIOSuOpt(),
                      strategies::OptIOCpu()),
    [](const ::testing::TestParamInfo<StrategyConfig>& info) {
      std::string name = info.param.Name();
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pdblb
