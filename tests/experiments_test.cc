// Copyright 2026 the pdblb authors. MIT license.
//
// Figure-shape regression tests: compact versions of the paper's key
// qualitative claims.  Each test runs two or more full simulations and
// asserts the *ordering* the paper reports (not absolute numbers).  These
// are the most expensive tests in the suite (seconds each).

#include <gtest/gtest.h>

#include "engine/cluster.h"

namespace pdblb {
namespace {

MetricsReport RunSim(SystemConfig cfg) { return Cluster(cfg).Run(); }

SystemConfig Homogeneous(int n, StrategyConfig strategy) {
  SystemConfig cfg;
  cfg.num_pes = n;
  cfg.warmup_ms = 3000.0;
  cfg.measurement_ms = 10000.0;
  cfg.strategy = strategy;
  return cfg;
}

// Fig. 5, left side of the x-axis: at moderate sizes the full single-user
// degree (p_su-opt = 30) beats the minimal p_su-noIO = 3.
TEST(FigureShapeTest, Fig5PsuOptWinsAtModerateSize) {
  MetricsReport opt = RunSim(Homogeneous(40, strategies::PsuOptLUM()));
  MetricsReport noio = RunSim(Homogeneous(40, strategies::PsuNoIOLUM()));
  EXPECT_LT(opt.join_rt_ms, noio.join_rt_ms);
}

// Fig. 5, right side: at 80 PE the CPU overhead of 30-way parallelism
// dominates and p_su-noIO + LUM wins; RANDOM placement is always worse.
TEST(FigureShapeTest, Fig5PsuNoIoLumWinsAtLargeSize) {
  MetricsReport opt = RunSim(Homogeneous(80, strategies::PsuOptLUM()));
  MetricsReport noio = RunSim(Homogeneous(80, strategies::PsuNoIOLUM()));
  EXPECT_LT(noio.join_rt_ms, opt.join_rt_ms);
}

TEST(FigureShapeTest, Fig5RandomPlacementLosesToLum) {
  MetricsReport rnd = RunSim(Homogeneous(80, strategies::PsuNoIORandom()));
  MetricsReport lum = RunSim(Homogeneous(80, strategies::PsuNoIOLUM()));
  EXPECT_LT(lum.join_rt_ms, rnd.join_rt_ms);
}

// Fig. 6: the CPU-aware dynamic strategies beat the I/O-only integrated
// strategies at large system sizes, and OPT-IO-CPU ~ p_mu-cpu + LUM.
TEST(FigureShapeTest, Fig6CpuAwareStrategiesWinAtScale) {
  MetricsReport pmu = RunSim(Homogeneous(80, strategies::PmuCpuLUM()));
  MetricsReport opt_io = RunSim(Homogeneous(80, strategies::OptIOCpu()));
  MetricsReport minio_suopt = RunSim(Homogeneous(80, strategies::MinIOSuOpt()));
  EXPECT_LT(pmu.join_rt_ms, minio_suopt.join_rt_ms);
  EXPECT_LT(opt_io.join_rt_ms, minio_suopt.join_rt_ms);
  // "Very similar performance characteristics" — within a factor of two.
  double ratio = pmu.join_rt_ms / opt_io.join_rt_ms;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

// Fig. 6's side observation: the winners keep CPU utilization moderate.
TEST(FigureShapeTest, Fig6WinnersKeepCpuModerate) {
  MetricsReport pmu = RunSim(Homogeneous(80, strategies::PmuCpuLUM()));
  EXPECT_LT(pmu.cpu_utilization, 0.80);
}

// Fig. 7: in a memory-bound environment (buffers / 10, one disk per PE,
// low arrival rate), MIN-IO-SUOPT increases the degree of parallelism and
// clearly beats the CPU-only p_mu-cpu + LUM.
TEST(FigureShapeTest, Fig7MemoryBoundFavorsMinIoSuOpt) {
  auto memory_bound = [](StrategyConfig s) {
    SystemConfig cfg = Homogeneous(80, s);
    cfg.buffer.buffer_pages = 5;
    cfg.disk.disks_per_pe = 1;
    cfg.join_query.arrival_rate_per_pe_qps = 0.05;
    cfg.measurement_ms = 12000.0;
    return cfg;
  };
  MetricsReport pmu = RunSim(memory_bound(strategies::PmuCpuLUM()));
  MetricsReport suopt = RunSim(memory_bound(strategies::MinIOSuOpt()));
  EXPECT_LT(suopt.join_rt_ms, pmu.join_rt_ms);
  // The integrated strategy raises the degree beyond p_su-opt = 30.
  EXPECT_GT(suopt.avg_degree, pmu.avg_degree);
}

// Fig. 9a: mixed workload, OLTP on the A nodes.  OPT-IO-CPU avoids the
// OLTP nodes and beats the isolated p_mu-cpu + LUM at small sizes.
TEST(FigureShapeTest, Fig9aOptIoCpuAvoidsOltpNodes) {
  auto mixed = [](StrategyConfig s) {
    SystemConfig cfg = Homogeneous(20, s);
    cfg.join_query.arrival_rate_per_pe_qps = 0.075;
    cfg.oltp.enabled = true;
    cfg.oltp.placement = OltpPlacement::kANodes;
    cfg.disk.disks_per_pe = 5;
    return cfg;
  };
  MetricsReport pmu = RunSim(mixed(strategies::PmuCpuLUM()));
  MetricsReport opt_io = RunSim(mixed(strategies::OptIOCpu()));
  EXPECT_LT(opt_io.join_rt_ms, pmu.join_rt_ms);
  // The OLTP class also benefits (joins keep off its nodes).
  EXPECT_LT(opt_io.oltp_rt_ms, pmu.oltp_rt_ms);
  // OPT-IO-CPU restricts itself to (at most) the 16 non-OLTP nodes.
  EXPECT_LE(opt_io.avg_degree, 16.5);
}

// Fig. 9b: OLTP on the B nodes (4x the OLTP throughput).  Dynamic beats
// static RANDOM placement.
TEST(FigureShapeTest, Fig9bDynamicBeatsStaticRandom) {
  auto mixed = [](StrategyConfig s) {
    SystemConfig cfg = Homogeneous(80, s);
    cfg.join_query.arrival_rate_per_pe_qps = 0.075;
    cfg.oltp.enabled = true;
    cfg.oltp.placement = OltpPlacement::kBNodes;
    cfg.disk.disks_per_pe = 5;
    return cfg;
  };
  MetricsReport random_static = RunSim(mixed(strategies::PsuOptRandom()));
  MetricsReport noio_lum = RunSim(mixed(strategies::PsuNoIOLUM()));
  EXPECT_LT(noio_lum.join_rt_ms, random_static.join_rt_ms);
}

// Fig. 8 directionality: with small joins (0.1% selectivity) low degrees
// win; the integrated MIN-IO picks a small degree on its own.
TEST(FigureShapeTest, Fig8SmallJoinsFavorFewProcessors) {
  auto small_join = [](StrategyConfig s) {
    SystemConfig cfg = Homogeneous(60, s);
    cfg.join_query.scan_selectivity = 0.001;
    cfg.join_query.arrival_rate_per_pe_qps = 1.0;  // keep the system busy
    return cfg;
  };
  MetricsReport minio = RunSim(small_join(strategies::MinIO()));
  MetricsReport suopt_rand = RunSim(small_join(strategies::PsuOptRandom()));
  EXPECT_LT(minio.avg_degree, 10.0);
  EXPECT_LT(minio.join_rt_ms, suopt_rand.join_rt_ms);
}

}  // namespace
}  // namespace pdblb
