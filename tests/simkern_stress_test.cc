// Copyright 2026 the pdblb authors. MIT license.
//
// Seeded randomized kernel stress: N worker processes hammer M resources
// and C channels with randomized service times, per-worker priorities,
// early cancellations and a cooperative mid-run shutdown.  Every run
// records a full trace of (timestamp, worker, action) steps; the same seed
// must reproduce the trace, the kernel counters and the resource
// statistics bit-identically, and a different seed must diverge.  This
// catches the FIFO/ordering regressions the unit tests are too small to
// see — in particular around the frameless Resource::Use hand-off, the
// scheduler's hand-off lane and the ring-buffer waiter queues.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "simkern/channel.h"
#include "simkern/latch.h"
#include "simkern/resource.h"
#include "simkern/rng.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"
#include "simkern/task_group.h"

namespace pdblb::sim {
namespace {

struct TraceEntry {
  SimTime at;
  int worker;
  int action;
  int64_t detail;

  bool operator==(const TraceEntry& o) const {
    // Bit-identical, not approximately equal: the determinism contract is
    // exact reproduction of the event sequence.
    return at == o.at && worker == o.worker && action == o.action &&
           detail == o.detail;
  }
};

enum Action {
  kUse = 0,
  kAcquireRelease = 1,
  kSend = 2,
  kReceived = 3,
  kYield = 4,
  kForkJoin = 5,
  kCancelled = 6,
  kShutdown = 7,
  kDone = 8,
};

struct StressResult {
  std::vector<TraceEntry> trace;
  uint64_t events = 0;
  uint64_t handoffs = 0;
  std::vector<uint64_t> completed;      // per resource
  std::vector<double> busy_integral;    // per resource
  std::vector<size_t> max_queue;        // per resource
  uint64_t received_total = 0;
};

struct World {
  Scheduler sched;
  std::vector<std::unique_ptr<Resource>> resources;
  std::vector<std::unique_ptr<Channel<int64_t>>> channels;
  std::vector<TraceEntry>* trace;
  uint64_t received_total = 0;
};

Task<> ForkChild(World& w, SimTime delay, Latch* latch) {
  co_await w.sched.Delay(delay);
  latch->CountDown();
}

// One worker: `rounds` random operations drawn from the worker's own RNG
// stream.  `priority` (1..4) scales service demand, so high-priority
// workers hold servers longer and reshape every queue they touch.
Task<> Worker(World& w, int id, Rng rng, int rounds, int priority) {
  for (int r = 0; r < rounds; ++r) {
    if (w.sched.ShuttingDown()) {
      w.trace->push_back({w.sched.Now(), id, kShutdown, r});
      co_return;
    }
    // Random cancellation: the worker gives up mid-sequence (between
    // operations — the kernel intentionally has no way to abandon a
    // suspended waiter, so cancellation happens at operation granularity).
    if (rng.Uniform() < 0.02) {
      w.trace->push_back({w.sched.Now(), id, kCancelled, r});
      co_return;
    }
    const double pick = rng.Uniform();
    if (pick < 0.35) {
      const size_t res = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(w.resources.size()) - 1));
      co_await w.resources[res]->Use(0.25 * priority + 2.0 * rng.Uniform());
      w.trace->push_back(
          {w.sched.Now(), id, kUse, static_cast<int64_t>(res)});
    } else if (pick < 0.5) {
      const size_t res = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(w.resources.size()) - 1));
      co_await w.resources[res]->Acquire();
      co_await w.sched.Delay(0.1 * priority + rng.Uniform());
      w.resources[res]->Release();
      w.trace->push_back(
          {w.sched.Now(), id, kAcquireRelease, static_cast<int64_t>(res)});
    } else if (pick < 0.7) {
      const size_t ch = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(w.channels.size()) - 1));
      w.channels[ch]->Send(static_cast<int64_t>(id) * 1000 + r);
      w.trace->push_back(
          {w.sched.Now(), id, kSend, static_cast<int64_t>(ch)});
      co_await w.sched.Delay(rng.Exponential(1.5));
    } else if (pick < 0.85) {
      co_await w.sched.Delay(0.0);
      w.trace->push_back({w.sched.Now(), id, kYield, r});
    } else {
      // Fork/join through a latch: children with randomized delays.
      const int fanout = 1 + static_cast<int>(rng.UniformInt(0, 3));
      Latch latch(w.sched, fanout);
      for (int f = 0; f < fanout; ++f) {
        w.sched.Spawn(ForkChild(w, rng.Uniform() * 2.0, &latch));
      }
      co_await latch.Wait();
      w.trace->push_back({w.sched.Now(), id, kForkJoin, fanout});
    }
  }
  w.trace->push_back({w.sched.Now(), id, kDone, rounds});
}

// Drains one channel until it closes; traces every delivery.
Task<> ChannelDrainer(World& w, int id, size_t ch) {
  while (auto v = co_await w.channels[ch]->Receive()) {
    ++w.received_total;
    w.trace->push_back({w.sched.Now(), id, kReceived, *v});
  }
}

Task<> Supervise(World& w, uint64_t seed, int workers, int rounds) {
  Rng root(seed);
  TaskGroup drainers(w.sched);
  for (size_t c = 0; c < w.channels.size(); ++c) {
    drainers.Spawn(
        ChannelDrainer(w, -1 - static_cast<int>(c), c));
  }
  {
    std::vector<Task<>> tasks;
    for (int i = 0; i < workers; ++i) {
      const int priority = 1 + static_cast<int>(root.UniformInt(0, 3));
      tasks.push_back(
          Worker(w, i, root.Fork(static_cast<uint64_t>(i) + 1), rounds,
                 priority));
    }
    co_await WhenAll(w.sched, std::move(tasks));
  }
  // All producers are done: close the channels so the drainers finish and
  // no coroutine is left suspended at scheduler teardown.
  for (auto& ch : w.channels) ch->Close();
  co_await drainers.Wait();
}

StressResult RunStress(uint64_t seed, int workers, int resources,
                       int channels, int rounds, SimTime shutdown_at) {
  StressResult result;
  World w;
  w.trace = &result.trace;
  Rng shape_rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (int i = 0; i < resources; ++i) {
    w.resources.push_back(std::make_unique<Resource>(
        w.sched, 1 + static_cast<int>(shape_rng.UniformInt(0, 3))));
  }
  for (int i = 0; i < channels; ++i) {
    w.channels.push_back(std::make_unique<Channel<int64_t>>(w.sched));
  }
  w.sched.Spawn(Supervise(w, seed, workers, rounds));
  if (shutdown_at > 0.0) {
    w.sched.RunUntil(shutdown_at);
    w.sched.RequestShutdown();
  }
  w.sched.Run();

  result.events = w.sched.events_processed();
  result.handoffs = w.sched.inline_resumes();
  for (auto& r : w.resources) {
    result.completed.push_back(r->completed());
    result.busy_integral.push_back(r->BusyIntegral());
    result.max_queue.push_back(r->max_queue_length());
  }
  result.received_total = w.received_total;
  return result;
}

void ExpectIdentical(const StressResult& a, const StressResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_TRUE(a.trace[i] == b.trace[i])
        << "trace diverges at step " << i << ": (" << a.trace[i].at << ", w"
        << a.trace[i].worker << ", a" << a.trace[i].action << ", "
        << a.trace[i].detail << ") vs (" << b.trace[i].at << ", w"
        << b.trace[i].worker << ", a" << b.trace[i].action << ", "
        << b.trace[i].detail << ")";
  }
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.handoffs, b.handoffs);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.max_queue, b.max_queue);
  ASSERT_EQ(a.busy_integral.size(), b.busy_integral.size());
  for (size_t i = 0; i < a.busy_integral.size(); ++i) {
    // Bit-identical, not EXPECT_NEAR: same event order => same fp op order.
    EXPECT_EQ(a.busy_integral[i], b.busy_integral[i]) << "resource " << i;
  }
  EXPECT_EQ(a.received_total, b.received_total);
}

TEST(SimkernStressTest, SameSeedIsBitIdentical) {
  StressResult a = RunStress(/*seed=*/1234, /*workers=*/32, /*resources=*/6,
                             /*channels=*/3, /*rounds=*/120,
                             /*shutdown_at=*/0.0);
  StressResult b = RunStress(1234, 32, 6, 3, 120, 0.0);
  ASSERT_GT(a.trace.size(), 1000u);
  ASSERT_GT(a.handoffs, 0u);
  ExpectIdentical(a, b);
}

TEST(SimkernStressTest, SameSeedIsBitIdenticalUnderMidRunShutdown) {
  // RunUntil + cooperative shutdown exercises the boundary paths: workers
  // observe ShuttingDown() between operations and bail out early.
  StressResult a = RunStress(/*seed=*/99, /*workers=*/24, /*resources=*/4,
                             /*channels=*/2, /*rounds=*/200,
                             /*shutdown_at=*/60.0);
  StressResult b = RunStress(99, 24, 4, 2, 200, 60.0);
  ASSERT_GT(a.trace.size(), 500u);
  bool saw_shutdown = false;
  for (const TraceEntry& e : a.trace) {
    saw_shutdown |= e.action == kShutdown;
  }
  EXPECT_TRUE(saw_shutdown);
  ExpectIdentical(a, b);
}

TEST(SimkernStressTest, DifferentSeedsDiverge) {
  StressResult a = RunStress(7, 16, 4, 2, 60, 0.0);
  StressResult b = RunStress(8, 16, 4, 2, 60, 0.0);
  EXPECT_NE(a.trace, b.trace);
}

// FCFS regression guards: the frameless Use path and the Acquire path
// share one waiter queue; grants must stay strictly first-come-first-
// served regardless of which flavor each waiter used.
Task<> TraceUse(World& w, int id, Resource& res, SimTime service) {
  co_await res.Use(service);
  w.trace->push_back({w.sched.Now(), id, kUse, 0});
}

Task<> TraceAcquire(World& w, int id, Resource& res, SimTime service) {
  co_await res.Acquire();
  co_await w.sched.Delay(service);
  res.Release();
  w.trace->push_back({w.sched.Now(), id, kAcquireRelease, 0});
}

TEST(SimkernStressTest, MixedUseAndAcquireWaitersStayFcfs) {
  World w;
  std::vector<TraceEntry> trace;
  w.trace = &trace;
  Resource res(w.sched, 1);
  // Alternate the two acquisition flavors; distinct service times make any
  // reordering visible in the completion sequence.
  for (int i = 0; i < 10; ++i) {
    if (i % 2 == 0) {
      w.sched.Spawn(TraceUse(w, i, res, 1.0 + 0.1 * i));
    } else {
      w.sched.Spawn(TraceAcquire(w, i, res, 1.0 + 0.1 * i));
    }
  }
  w.sched.Run();
  ASSERT_EQ(trace.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(trace[static_cast<size_t>(i)].worker, i)
        << "completion order must equal arrival order (FCFS)";
  }
  EXPECT_EQ(res.completed(), 10u);
  EXPECT_EQ(res.max_queue_length(), 9u);
}

}  // namespace
}  // namespace pdblb::sim
