// Copyright 2026 the pdblb authors. MIT license.
//
// Tests for the RateMatch baseline (Mehta & DeWitt [20], paper Section 6):
// the degree formula, its load-dependence (the behaviour the paper
// criticizes), the policy wiring, and small integration runs showing that
// RateMatch drives utilization up under load where OPT-IO-CPU backs off.

#include <gtest/gtest.h>

#include <set>

#include "core/control_node.h"
#include "core/cost_model.h"
#include "core/strategies.h"
#include "engine/cluster.h"
#include "simkern/rng.h"

namespace pdblb {
namespace {

JoinPlanRequest RateRequest(double scan_tps, double join_tps, int n) {
  JoinPlanRequest req;
  req.scan_rate_tps = scan_tps;
  req.join_rate_tps = join_tps;
  req.num_pes = n;
  req.psu_opt = n / 2;
  req.psu_noio = 2;
  req.hash_table_pages = 100;
  return req;
}

// ------------------------------------------------------------ degree math

TEST(RateMatchDegreeTest, UnloadedSystemMatchesRateRatio) {
  // 10k tuples/s arriving, 2.5k consumed per processor: 4 processors.
  auto req = RateRequest(10000.0, 2500.0, 80);
  EXPECT_EQ(internal::RateMatchDegree(req, 0.0, 0.0, 80), 4);
}

TEST(RateMatchDegreeTest, RoundsUpPartialProcessors) {
  auto req = RateRequest(10000.0, 3000.0, 80);
  EXPECT_EQ(internal::RateMatchDegree(req, 0.0, 0.0, 80), 4);  // ceil(3.33)
}

TEST(RateMatchDegreeTest, DegreeGrowsWithCpuUtilization) {
  auto req = RateRequest(10000.0, 2500.0, 80);
  int last = 0;
  for (double u = 0.0; u <= 0.95; u += 0.05) {
    int p = internal::RateMatchDegree(req, u, 0.0, 80);
    EXPECT_GE(p, last) << "not monotone at u=" << u;
    last = p;
  }
  // At 50% utilization the degree has doubled relative to the unloaded case.
  EXPECT_EQ(internal::RateMatchDegree(req, 0.5, 0.0, 80), 8);
}

TEST(RateMatchDegreeTest, DegreeGrowsWithDiskUtilization) {
  auto req = RateRequest(10000.0, 2500.0, 80);
  EXPECT_GT(internal::RateMatchDegree(req, 0.0, 0.6, 80),
            internal::RateMatchDegree(req, 0.0, 0.0, 80));
}

TEST(RateMatchDegreeTest, ClampsToSystemSize) {
  auto req = RateRequest(10000.0, 2500.0, 6);
  EXPECT_EQ(internal::RateMatchDegree(req, 0.9, 0.9, 6), 6);
}

TEST(RateMatchDegreeTest, SaturatedSystemDoesNotDivideByZero) {
  auto req = RateRequest(10000.0, 2500.0, 80);
  int p = internal::RateMatchDegree(req, 1.0, 1.0, 80);
  EXPECT_GE(p, 1);
  EXPECT_LE(p, 80);
}

TEST(RateMatchDegreeTest, MissingRatesFallBackToOne) {
  auto req = RateRequest(0.0, 0.0, 80);
  EXPECT_EQ(internal::RateMatchDegree(req, 0.3, 0.0, 80), 1);
}

TEST(RateMatchDegreeTest, AtLeastOneProcessor) {
  // Scans slower than one join processor: still one processor.
  auto req = RateRequest(100.0, 2500.0, 80);
  EXPECT_EQ(internal::RateMatchDegree(req, 0.0, 0.0, 80), 1);
}

// ---------------------------------------------------------- cost model rates

TEST(RateMatchRatesTest, CostModelRatesArePositive) {
  SystemConfig cfg;
  cfg.num_pes = 40;
  CostModel model(cfg);
  EXPECT_GT(model.ScanProductionRateTps(), 0.0);
  EXPECT_GT(model.JoinConsumptionRateTps(), 0.0);
}

TEST(RateMatchRatesTest, ScanRateScalesWithSystemSize) {
  // More data processors produce the join input faster (per-node share
  // shrinks), so the aggregate production rate rises with n.
  SystemConfig small;
  small.num_pes = 20;
  SystemConfig large;
  large.num_pes = 80;
  EXPECT_GT(CostModel(large).ScanProductionRateTps(),
            CostModel(small).ScanProductionRateTps());
}

TEST(RateMatchRatesTest, JoinRateIndependentOfSystemSize) {
  // One join processor's consumption rate is a property of the query class,
  // not of the cluster size.
  SystemConfig small;
  small.num_pes = 20;
  SystemConfig large;
  large.num_pes = 80;
  EXPECT_DOUBLE_EQ(CostModel(large).JoinConsumptionRateTps(),
                   CostModel(small).JoinConsumptionRateTps());
}

// -------------------------------------------------------------- policy wiring

TEST(RateMatchPolicyTest, NameAndFactory) {
  EXPECT_EQ(strategies::RateMatchLUC().Name(), "RateMatch + LUC");
  EXPECT_EQ(strategies::RateMatchRandom().Name(), "RateMatch + RANDOM");
  EXPECT_EQ(strategies::RateMatchLUM().Name(), "RateMatch + LUM");
  auto policy = LoadBalancingPolicy::Create(strategies::RateMatchLUC());
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->Name(), "RateMatch + LUC");
}

TEST(RateMatchPolicyTest, PlanUsesControlNodeAverages) {
  ControlNode cn(8, /*adaptive_feedback=*/false);
  for (PeId pe = 0; pe < 8; ++pe) cn.Report(pe, 0.0, 50, 0.0);
  auto req = RateRequest(10000.0, 2500.0, 8);
  sim::Rng rng(7);

  auto policy = LoadBalancingPolicy::Create(strategies::RateMatchLUC());
  JoinPlan idle = policy->Plan(req, cn, rng);
  EXPECT_EQ(idle.degree, 4);

  for (PeId pe = 0; pe < 8; ++pe) cn.Report(pe, 0.5, 50, 0.0);
  JoinPlan busy = policy->Plan(req, cn, rng);
  EXPECT_GT(busy.degree, idle.degree);
}

TEST(RateMatchPolicyTest, SelectsLeastUtilizedCpusWithLuc) {
  ControlNode cn(6, false);
  cn.Report(0, 0.9, 10, 0.0);
  cn.Report(1, 0.1, 10, 0.0);
  cn.Report(2, 0.8, 10, 0.0);
  cn.Report(3, 0.2, 10, 0.0);
  cn.Report(4, 0.7, 10, 0.0);
  cn.Report(5, 0.3, 10, 0.0);
  // Average utilization 0.5 → degree doubles from 2 to 4.
  auto req = RateRequest(1000.0, 500.0, 6);
  sim::Rng rng(7);
  auto policy = LoadBalancingPolicy::Create(strategies::RateMatchLUC());
  JoinPlan plan = policy->Plan(req, cn, rng);
  ASSERT_EQ(plan.degree, 4);
  std::set<PeId> chosen(plan.pes.begin(), plan.pes.end());
  EXPECT_EQ(chosen, (std::set<PeId>{1, 3, 5, 4}));
}

TEST(RateMatchPolicyTest, DistinctPesAlways) {
  ControlNode cn(12, false);
  for (PeId pe = 0; pe < 12; ++pe) cn.Report(pe, 0.4, 20, 0.1);
  auto req = RateRequest(9000.0, 1000.0, 12);
  sim::Rng rng(3);
  for (auto sel : {strategies::RateMatchRandom(), strategies::RateMatchLUC(),
                   strategies::RateMatchLUM()}) {
    auto policy = LoadBalancingPolicy::Create(sel);
    JoinPlan plan = policy->Plan(req, cn, rng);
    std::set<PeId> distinct(plan.pes.begin(), plan.pes.end());
    EXPECT_EQ(static_cast<int>(distinct.size()), plan.degree) << sel.Name();
  }
}

// ------------------------------------------------------------- integration

TEST(RateMatchIntegrationTest, RunsEndToEnd) {
  SystemConfig cfg;
  cfg.num_pes = 10;
  cfg.strategy = strategies::RateMatchLUC();
  cfg.warmup_ms = 500.0;
  cfg.measurement_ms = 4000.0;
  Cluster cluster(cfg);
  MetricsReport r = cluster.Run();
  EXPECT_GT(r.joins_completed, 0);
  EXPECT_GT(r.avg_degree, 0.0);
}

TEST(RateMatchIntegrationTest, DegreeRisesWithLoadUnlikePmuCpu) {
  // The core of the paper's critique: under load RateMatch *raises* the
  // degree of parallelism while p_mu-cpu lowers it.
  auto run = [](StrategyConfig strategy, double qps) {
    SystemConfig cfg;
    cfg.num_pes = 40;
    cfg.strategy = strategy;
    cfg.join_query.arrival_rate_per_pe_qps = qps;
    cfg.warmup_ms = 1000.0;
    cfg.measurement_ms = 8000.0;
    Cluster cluster(cfg);
    return cluster.Run();
  };
  MetricsReport rm_light = run(strategies::RateMatchLUC(), 0.05);
  MetricsReport rm_heavy = run(strategies::RateMatchLUC(), 0.30);
  MetricsReport mu_light = run(strategies::PmuCpuLUM(), 0.05);
  MetricsReport mu_heavy = run(strategies::PmuCpuLUM(), 0.30);
  EXPECT_GT(rm_heavy.avg_degree, rm_light.avg_degree);
  EXPECT_LT(mu_heavy.avg_degree, mu_light.avg_degree + 0.5);
}

}  // namespace
}  // namespace pdblb
