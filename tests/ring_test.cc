// Copyright 2026 the pdblb authors. MIT license.
//
// Property/stress tests for simkern/ring.h, the recycled FIFO backing every
// blocking primitive's waiter/value queue.  The ring was previously only
// exercised indirectly through Resource/Channel/Latch; these tests drive
// wraparound, inline-to-heap growth and element lifetimes directly under
// randomized push/pop sequences against a std::deque reference model.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <random>
#include <string>

#include "simkern/ring.h"

namespace pdblb::sim {
namespace {

// Element that counts live instances: catches double-destroys and leaks in
// the ring's placement-new / manual-destroy lifetime management.
struct Tracked {
  static int64_t live;
  int value;
  explicit Tracked(int v = 0) : value(v) { ++live; }
  Tracked(const Tracked& o) : value(o.value) { ++live; }
  Tracked(Tracked&& o) noexcept : value(o.value) { ++live; }
  Tracked& operator=(const Tracked&) = default;
  Tracked& operator=(Tracked&&) = default;
  ~Tracked() { --live; }
};
int64_t Tracked::live = 0;

int ValueOf(int v) { return v; }
int ValueOf(const Tracked& t) { return t.value; }

template <typename Ring>
void RandomizedAgainstDeque(Ring& ring, uint64_t seed, int ops) {
  std::mt19937_64 rng(seed);
  std::deque<int> model;
  int next = 0;
  for (int op = 0; op < ops; ++op) {
    // Phased push bias: stretches of net growth then net drain, so the
    // head index sweeps the whole capacity range and wraps repeatedly.
    double push_bias = (op / 256) % 2 == 0 ? 0.7 : 0.3;
    bool push = model.empty() ||
                std::uniform_real_distribution<>(0.0, 1.0)(rng) < push_bias;
    if (push) {
      ring.push_back(typename Ring::value_type(next));
      model.push_back(next);
      ++next;
    } else {
      ASSERT_EQ(ValueOf(ring.front()), model.front());
      ring.pop_front();
      model.pop_front();
    }
    ASSERT_EQ(ring.size(), model.size());
    ASSERT_EQ(ring.empty(), model.empty());
  }
  // Drain: FIFO order must match the model exactly.
  while (!model.empty()) {
    ASSERT_EQ(ValueOf(ring.front()), model.front());
    ring.pop_front();
    model.pop_front();
  }
  ASSERT_TRUE(ring.empty());
}

// RingBuffer has no value_type member; adapt via small wrappers.
template <typename T, size_t Inline>
struct RingAdapter : RingBuffer<T, Inline> {
  using value_type = T;
};

TEST(RingBufferTest, RandomizedPushPopMatchesDequeNoInline) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    RingAdapter<int, 0> ring;
    RandomizedAgainstDeque(ring, seed, 4096);
  }
}

TEST(RingBufferTest, RandomizedPushPopMatchesDequeInline4) {
  for (uint64_t seed : {7u, 8u, 9u, 10u, 11u}) {
    RingAdapter<int, 4> ring;
    RandomizedAgainstDeque(ring, seed, 4096);
  }
}

TEST(RingBufferTest, RandomizedLifetimesBalanceExactly) {
  ASSERT_EQ(Tracked::live, 0);
  {
    RingAdapter<Tracked, 4> ring;
    RandomizedAgainstDeque(ring, 42, 4096);
    // Leave elements behind: the destructor must destroy them.
    for (int i = 0; i < 37; ++i) ring.push_back(Tracked(i));
    EXPECT_EQ(Tracked::live, 37);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(RingBufferTest, InlineToHeapGrowthPreservesOrderAcrossWrap) {
  // Park the head mid-way through the inline slots, then grow: the copy-out
  // must linearize the wrapped contents.
  RingBuffer<int, 4> ring;
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) ring.push_back(i);
  ring.pop_front();
  ring.pop_front();
  ring.push_back(4);
  ring.push_back(5);  // head=2, wrapped: slots hold [4,5,2,3]
  EXPECT_EQ(ring.capacity(), 4u);
  ring.push_back(6);  // forces inline -> heap growth
  EXPECT_GE(ring.capacity(), 8u);
  for (int expect = 2; expect <= 6; ++expect) {
    ASSERT_EQ(ring.front(), expect);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingBufferTest, ClearRetainsCapacityAndResetsHead) {
  RingBuffer<Tracked, 0> ring;
  for (int i = 0; i < 100; ++i) ring.push_back(Tracked(i));
  size_t grown = ring.capacity();
  EXPECT_GE(grown, 100u);
  ring.clear();
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_EQ(ring.capacity(), grown);
  for (int i = 0; i < 100; ++i) ring.push_back(Tracked(1000 + i));
  EXPECT_EQ(ring.capacity(), grown);  // no re-growth after clear()
  EXPECT_EQ(ring.front().value, 1000);
}

TEST(RingBufferTest, ReserveRoundsUpAndAvoidsLaterGrowth) {
  RingBuffer<int, 0> ring;
  ring.reserve(100);
  size_t cap = ring.capacity();
  EXPECT_GE(cap, 100u);
  EXPECT_EQ(cap & (cap - 1), 0u) << "capacity must stay a power of two";
  for (int i = 0; i < 100; ++i) ring.push_back(i);
  EXPECT_EQ(ring.capacity(), cap);
  ring.reserve(50);  // shrinking reserve is a no-op
  EXPECT_EQ(ring.capacity(), cap);
}

}  // namespace
}  // namespace pdblb::sim
