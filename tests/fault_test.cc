// Copyright 2026 the pdblb authors. MIT license.
//
// Fault-injection integration tests: scripted PE crash/recovery on a small
// cluster, retry/fail-fast accounting, per-query timeouts under admission
// saturation, and the determinism guarantees (identical reports across
// reruns and scheduler shard counts with faults enabled).  The whole binary
// runs under leak detection, so every test doubles as a zero-leaked-frames
// check for the cancellation paths it exercises.

#include <gtest/gtest.h>

#include "common/config.h"
#include "engine/cluster.h"

namespace pdblb {
namespace {

SystemConfig FaultyConfig() {
  SystemConfig cfg;
  cfg.num_pes = 8;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 8000.0;
  cfg.join_query.arrival_rate_per_pe_qps = 0.4;
  return cfg;
}

TEST(FaultTest, ScriptedCrashAndRecoveryPopulatesCounters) {
  SystemConfig cfg = FaultyConfig();
  cfg.faults.events = {{3000.0, FaultKind::kCrash, 2},
                       {5000.0, FaultKind::kRecover, 2}};
  MetricsReport r = Cluster(cfg).Run();
  EXPECT_EQ(r.pe_crashes, 1);
  EXPECT_EQ(r.pe_recoveries, 1);
  EXPECT_GT(r.joins_completed, 0);
  // Under Shared Nothing every join touches every PE, so arrivals during
  // the 2 s outage retry (and, with the tight default backoff budget of
  // ~70 ms, mostly exhaust their attempts and fail).
  EXPECT_GT(r.queries_retried, 0);
  EXPECT_GT(r.queries_failed + r.queries_degraded, 0);
  EXPECT_EQ(r.queries_timed_out, 0) << "no deadlines were configured";
}

TEST(FaultTest, GenerousRetryBudgetRidesOutTheOutage) {
  SystemConfig cfg = FaultyConfig();
  cfg.faults.events = {{3000.0, FaultKind::kCrash, 2},
                       {4000.0, FaultKind::kRecover, 2}};
  // Backoff span 100+200+400+800+1000+1000 ms > the 1 s outage: queries
  // hit by the crash survive to recovery and complete degraded.
  cfg.faults.retry.max_attempts = 7;
  cfg.faults.retry.initial_backoff_ms = 100.0;
  MetricsReport r = Cluster(cfg).Run();
  EXPECT_EQ(r.pe_crashes, 1);
  EXPECT_EQ(r.pe_recoveries, 1);
  EXPECT_GT(r.queries_degraded, 0)
      << "no query completed after retrying across the outage";
}

TEST(FaultTest, CrashWithoutRecoveryFailsQueriesFast) {
  SystemConfig cfg = FaultyConfig();
  cfg.faults.events = {{3000.0, FaultKind::kCrash, 1}};
  MetricsReport r = Cluster(cfg).Run();
  EXPECT_EQ(r.pe_crashes, 1);
  EXPECT_EQ(r.pe_recoveries, 0);
  // The PE never comes back: every arrival after the crash fails fast at
  // placement, retries its budget and is counted as failed.  The run still
  // terminates cleanly (no hung supervisors, no leaked frames).
  EXPECT_GT(r.queries_failed, 0);
  EXPECT_GT(r.joins_completed, 0) << "pre-crash joins should have finished";
}

TEST(FaultTest, ScriptedFaultRunsAreDeterministic) {
  SystemConfig cfg = FaultyConfig();
  cfg.faults.events = {{3000.0, FaultKind::kCrash, 2},
                       {5000.0, FaultKind::kRecover, 2}};
  MetricsReport r1 = Cluster(cfg).Run();
  MetricsReport r2 = Cluster(cfg).Run();
  EXPECT_DOUBLE_EQ(r1.join_rt_ms, r2.join_rt_ms);
  EXPECT_EQ(r1.joins_completed, r2.joins_completed);
  EXPECT_EQ(r1.queries_retried, r2.queries_retried);
  EXPECT_EQ(r1.queries_failed, r2.queries_failed);
  EXPECT_EQ(r1.queries_degraded, r2.queries_degraded);
  EXPECT_EQ(r1.kernel_events, r2.kernel_events);
}

TEST(FaultTest, RandomCrashModelIsDeterministicAndRecovers) {
  SystemConfig cfg = FaultyConfig();
  cfg.faults.crash_rate_per_pe_per_min = 2.0;
  cfg.faults.mttr_ms = 1000.0;
  MetricsReport r1 = Cluster(cfg).Run();
  MetricsReport r2 = Cluster(cfg).Run();
  // 8 PEs * 2 crashes/PE/min over 9 s ≈ 2.4 expected crashes.
  EXPECT_GT(r1.pe_crashes, 0);
  EXPECT_GE(r1.pe_crashes, r1.pe_recoveries);
  EXPECT_EQ(r1.pe_crashes, r2.pe_crashes);
  EXPECT_EQ(r1.pe_recoveries, r2.pe_recoveries);
  EXPECT_EQ(r1.kernel_events, r2.kernel_events);
}

// Satellite: timeout-under-overload stress.  A fifth of the queries carry a
// deadline well below the queueing delay at a saturated admission gate, so
// a deterministic subset times out; the counts must be identical across
// reruns and across scheduler shard counts.
SystemConfig OverloadedTimeoutConfig() {
  SystemConfig cfg;
  cfg.num_pes = 8;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 6000.0;
  // Offered load far above capacity at MPL 2: the admission queue grows
  // and per-query sojourn times blow past the deadline.
  cfg.join_query.arrival_rate_per_pe_qps = 1.0;
  cfg.multiprogramming_level = 2;
  cfg.faults.query_timeout_ms = 1500.0;
  cfg.faults.timeout_fraction = 0.2;
  return cfg;
}

TEST(FaultTest, TimeoutsUnderOverloadFireAndAreDeterministic) {
  SystemConfig cfg = OverloadedTimeoutConfig();
  MetricsReport r1 = Cluster(cfg).Run();
  EXPECT_GT(r1.queries_timed_out, 0) << "overload produced no timeouts";
  EXPECT_GT(r1.joins_completed, 0) << "deadline-free queries must complete";
  // Timeouts never retry, so the retry counters stay untouched.
  EXPECT_EQ(r1.queries_retried, 0);
  EXPECT_EQ(r1.queries_failed, 0);
  MetricsReport r2 = Cluster(cfg).Run();
  EXPECT_EQ(r1.queries_timed_out, r2.queries_timed_out);
  EXPECT_EQ(r1.joins_completed, r2.joins_completed);
  EXPECT_EQ(r1.kernel_events, r2.kernel_events);
}

TEST(FaultTest, TimeoutCountsAreIdenticalAcrossShardCounts) {
  SystemConfig base = OverloadedTimeoutConfig();
  MetricsReport r1 = Cluster(base).Run();
  for (int shards : {2, 4}) {
    SystemConfig cfg = base;
    cfg.shards = shards;
    MetricsReport r = Cluster(cfg).Run();
    EXPECT_EQ(r.queries_timed_out, r1.queries_timed_out)
        << "shards=" << shards;
    EXPECT_EQ(r.joins_completed, r1.joins_completed) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(r.join_rt_ms, r1.join_rt_ms) << "shards=" << shards;
  }
}

TEST(FaultTest, ScriptedCrashIsIdenticalAcrossShardCounts) {
  SystemConfig base = FaultyConfig();
  base.faults.events = {{3000.0, FaultKind::kCrash, 2},
                        {5000.0, FaultKind::kRecover, 2}};
  MetricsReport r1 = Cluster(base).Run();
  SystemConfig cfg = base;
  cfg.shards = 4;
  MetricsReport r4 = Cluster(cfg).Run();
  EXPECT_EQ(r1.queries_retried, r4.queries_retried);
  EXPECT_EQ(r1.queries_failed, r4.queries_failed);
  EXPECT_EQ(r1.queries_degraded, r4.queries_degraded);
  EXPECT_DOUBLE_EQ(r1.join_rt_ms, r4.join_rt_ms);
}

TEST(FaultTest, FaultSpecParsingRoundTrips) {
  FaultConfig fc;
  Status st = ParseFaultSpec(
      "crash@3000:pe2;recover@5000:pe2;rate=0.5;mttr=1500;timeout=800;"
      "timeout_frac=0.25;retries=5",
      &fc);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(fc.events.size(), 2u);
  EXPECT_EQ(fc.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(fc.events[0].pe, 2);
  EXPECT_DOUBLE_EQ(fc.events[0].at_ms, 3000.0);
  EXPECT_EQ(fc.events[1].kind, FaultKind::kRecover);
  EXPECT_DOUBLE_EQ(fc.crash_rate_per_pe_per_min, 0.5);
  EXPECT_DOUBLE_EQ(fc.mttr_ms, 1500.0);
  EXPECT_DOUBLE_EQ(fc.query_timeout_ms, 800.0);
  EXPECT_DOUBLE_EQ(fc.timeout_fraction, 0.25);
  EXPECT_EQ(fc.retry.max_attempts, 5);
  EXPECT_TRUE(fc.Enabled());

  EXPECT_FALSE(ParseFaultSpec("crash@:pe1", &fc).ok());
  EXPECT_FALSE(ParseFaultSpec("bogus=1", &fc).ok());
  EXPECT_FALSE(ParseFaultSpec("crash@100:3", &fc).ok());
}

// Satellite: the gray-failure grammar terms round-trip into FaultConfig and
// malformed clauses fail eagerly with a rejection (not a silent skip).
TEST(FaultTest, GrayFailureSpecParsingRoundTrips) {
  FaultConfig fc;
  Status st = ParseFaultSpec(
      "slowdisk@2000:pe1:x3;slowdisk@4000:pe1:x1;partition@2500:pe0-pe3;"
      "heal@3800:pe0-pe3;slowlink@2000:pe4-pe5:x2.5;iorate=0.05",
      &fc);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(fc.events.size(), 5u);
  EXPECT_EQ(fc.events[0].kind, FaultKind::kSlowDisk);
  EXPECT_EQ(fc.events[0].pe, 1);
  EXPECT_DOUBLE_EQ(fc.events[0].at_ms, 2000.0);
  EXPECT_DOUBLE_EQ(fc.events[0].factor, 3.0);
  EXPECT_DOUBLE_EQ(fc.events[1].factor, 1.0) << "x1 restores normal speed";
  EXPECT_EQ(fc.events[2].kind, FaultKind::kPartition);
  EXPECT_EQ(fc.events[2].pe, 0);
  EXPECT_EQ(fc.events[2].pe2, 3);
  EXPECT_EQ(fc.events[3].kind, FaultKind::kHeal);
  EXPECT_EQ(fc.events[4].kind, FaultKind::kSlowLink);
  EXPECT_EQ(fc.events[4].pe, 4);
  EXPECT_EQ(fc.events[4].pe2, 5);
  EXPECT_DOUBLE_EQ(fc.events[4].factor, 2.5);
  EXPECT_DOUBLE_EQ(fc.io_error_rate, 0.05);
  EXPECT_TRUE(fc.DiskFaultsEnabled());

  FaultConfig sink;
  EXPECT_FALSE(ParseFaultSpec("slowdisk@2000:pe1", &sink).ok())
      << "slowdisk without a factor must be rejected";
  EXPECT_FALSE(ParseFaultSpec("slowdisk@2000:pe1:x0.5", &sink).ok())
      << "factors < 1 would break the sharded-window lookahead";
  EXPECT_FALSE(ParseFaultSpec("partition@2500:pe0", &sink).ok())
      << "partition needs two endpoints";
  EXPECT_FALSE(ParseFaultSpec("partition@2500:pe3-pe3", &sink).ok())
      << "endpoints must differ";
  EXPECT_FALSE(ParseFaultSpec("slowlink@2000:pe4-pe5", &sink).ok())
      << "slowlink without a factor must be rejected";
  EXPECT_FALSE(ParseFaultSpec("iorate=1.5", &sink).ok());
  EXPECT_FALSE(ParseFaultSpec("iorate=-0.1", &sink).ok());
  EXPECT_FALSE(ParseFaultSpec("meltdown@100:pe1", &sink).ok())
      << "unknown kinds must be rejected, not skipped";
}

// Satellite: duplicate scripted clauses — same kind, instant and target —
// used to be accepted with silent last-wins ordering; they must now fail
// eagerly like every other malformed spec.  Distinct kinds at the same
// (time, PE) stay legal: that is the spec-order bounce
// SameTimestampEventsApplyInSpecOrder pins.
TEST(FaultTest, DuplicateScriptedClausesAreRejected) {
  FaultConfig sink;
  EXPECT_FALSE(
      ParseFaultSpec("crash@3000:pe2;crash@3000:pe2", &sink).ok())
      << "verbatim repeat must be rejected";
  EXPECT_FALSE(
      ParseFaultSpec("slowdisk@2000:pe1:x3;slowdisk@2000:pe1:x5", &sink).ok())
      << "same event with a different factor is the silent last-wins case";
  EXPECT_FALSE(
      ParseFaultSpec("slowlink@2000:pe4-pe5:x2;slowlink@2000:pe4-pe5:x3",
                     &sink)
          .ok())
      << "link clauses dedupe on both endpoints";

  FaultConfig ok;
  EXPECT_TRUE(
      ParseFaultSpec("crash@3000:pe2;recover@3000:pe2", &ok).ok())
      << "distinct kinds at one (time, PE) are a legitimate bounce";
  FaultConfig ok2;
  EXPECT_TRUE(ParseFaultSpec("crash@3000:pe2;crash@3000:pe3", &ok2).ok())
      << "same instant, different PE";
  FaultConfig ok3;
  EXPECT_TRUE(ParseFaultSpec("crash@3000:pe2;crash@4000:pe2", &ok3).ok())
      << "same PE, different instant";
  FaultConfig ok4;
  EXPECT_TRUE(
      ParseFaultSpec("slowlink@2000:pe4-pe5:x2;slowlink@2000:pe4-pe6:x2",
                     &ok4)
          .ok())
      << "different far endpoint is a different link";
}

// Satellite: fault-event edge timing.  A crash scheduled at t=0 takes the PE
// down before the first arrival and the run still terminates cleanly.
TEST(FaultTest, CrashAtTimeZeroIsAppliedBeforeArrivals) {
  SystemConfig cfg = FaultyConfig();
  cfg.faults.events = {{0.0, FaultKind::kCrash, 2},
                       {4000.0, FaultKind::kRecover, 2}};
  MetricsReport r = Cluster(cfg).Run();
  EXPECT_EQ(r.pe_crashes, 1);
  EXPECT_EQ(r.pe_recoveries, 1);
  EXPECT_GT(r.joins_completed, 0) << "post-recovery joins should complete";
}

// A recovery scheduled beyond the measurement horizon never lands in the
// report (Collect runs first), but the pending fault process must drain
// cleanly during the post-measurement shutdown instead of hanging the run.
TEST(FaultTest, RecoveryPastTheHorizonDrainsCleanly) {
  SystemConfig cfg = FaultyConfig();
  cfg.faults.events = {{3000.0, FaultKind::kCrash, 2},
                       {100000.0, FaultKind::kRecover, 2}};
  MetricsReport r = Cluster(cfg).Run();
  EXPECT_EQ(r.pe_crashes, 1);
  EXPECT_EQ(r.pe_recoveries, 0) << "recovery lies past the collected window";
  EXPECT_GT(r.queries_failed, 0) << "the PE stays down all measurement long";
}

// Back-to-back events at the same timestamp apply in spec order (spawned in
// spec order, calendar FIFO at equal timestamps): crash-then-recover leaves
// the PE up, recover-then-crash (recover of an alive PE no-ops) leaves it
// down.  This pins the documented tie-break in FaultInjector::ApplyAt.
TEST(FaultTest, SameTimestampEventsApplyInSpecOrder) {
  SystemConfig up = FaultyConfig();
  up.faults.events = {{3000.0, FaultKind::kCrash, 2},
                      {3000.0, FaultKind::kRecover, 2}};
  MetricsReport r_up = Cluster(up).Run();
  EXPECT_EQ(r_up.pe_crashes, 1);
  EXPECT_EQ(r_up.pe_recoveries, 1) << "recover must apply after the crash";
  EXPECT_EQ(r_up.queries_failed, 0) << "the outage had zero duration";

  SystemConfig down = FaultyConfig();
  down.faults.events = {{3000.0, FaultKind::kRecover, 2},
                        {3000.0, FaultKind::kCrash, 2}};
  MetricsReport r_down = Cluster(down).Run();
  EXPECT_EQ(r_down.pe_crashes, 1);
  EXPECT_EQ(r_down.pe_recoveries, 0)
      << "recover of an alive PE must no-op, then the crash applies";
  EXPECT_GT(r_down.queries_failed, 0) << "the PE stays down";
}

}  // namespace
}  // namespace pdblb
