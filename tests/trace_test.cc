// Copyright 2026 the pdblb authors. MIT license.
//
// Tests for trace-driven workloads (paper Section 4, "use of real-life
// database traces [18]"): text round-trip, parsing errors, synthetic trace
// generation, and replay into a cluster — including the key property that
// two strategies can be compared under an identical arrival sequence.

#include <gtest/gtest.h>

#include <cstdio>

#include "engine/cluster.h"
#include "workload/trace.h"

namespace pdblb {
namespace {

// ------------------------------------------------------------ text format

TEST(TraceFormatTest, RoundTripsAllClasses) {
  Trace trace;
  trace.Add({10.0, TraceClass::kJoin, 0});
  trace.Add({20.5, TraceClass::kScan, 0});
  trace.Add({30.25, TraceClass::kUpdate, 0});
  trace.Add({40.125, TraceClass::kMultiwayJoin, 0});
  trace.Add({50.0, TraceClass::kOltp, 7});

  Trace parsed;
  ASSERT_TRUE(Trace::FromText(trace.ToText(), &parsed).ok());
  ASSERT_EQ(parsed.size(), trace.size());
  EXPECT_EQ(parsed.events(), trace.events());
}

TEST(TraceFormatTest, ParserSortsByArrival) {
  Trace parsed;
  ASSERT_TRUE(
      Trace::FromText("30 join\n10 scan\n20 oltp:3\n", &parsed).ok());
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.events()[0].arrival_ms, 10.0);
  EXPECT_EQ(parsed.events()[0].cls, TraceClass::kScan);
  EXPECT_DOUBLE_EQ(parsed.events()[2].arrival_ms, 30.0);
}

TEST(TraceFormatTest, CommentsAndBlankLinesIgnored) {
  Trace parsed;
  ASSERT_TRUE(
      Trace::FromText("# header\n\n5 join\n# tail\n", &parsed).ok());
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(TraceFormatTest, RejectsMalformedLines) {
  Trace parsed;
  EXPECT_FALSE(Trace::FromText("abc join\n", &parsed).ok());
  EXPECT_FALSE(Trace::FromText("10 zorp\n", &parsed).ok());
  EXPECT_FALSE(Trace::FromText("10 oltp:x\n", &parsed).ok());
  EXPECT_FALSE(Trace::FromText("-5 join\n", &parsed).ok());
}

TEST(TraceFormatTest, FileRoundTrip) {
  Trace trace;
  trace.Add({1.0, TraceClass::kJoin, 0});
  trace.Add({2.0, TraceClass::kOltp, 2});
  std::string path = testing::TempDir() + "/pdblb_trace_test.txt";
  ASSERT_TRUE(trace.WriteFile(path).ok());
  Trace loaded;
  ASSERT_TRUE(Trace::ReadFile(path, &loaded).ok());
  EXPECT_EQ(loaded.events(), trace.events());
  std::remove(path.c_str());
}

TEST(TraceFormatTest, ReadMissingFileFails) {
  Trace loaded;
  EXPECT_FALSE(Trace::ReadFile("/nonexistent/trace.txt", &loaded).ok());
}

// --------------------------------------------------------------- synthesis

TEST(TraceSynthesisTest, DeterministicPerSeed) {
  Trace a = SynthesizeTrace(7, 10000.0, 1.0, 0.5, 0.0, 0.0, {0, 1}, 10.0);
  Trace b = SynthesizeTrace(7, 10000.0, 1.0, 0.5, 0.0, 0.0, {0, 1}, 10.0);
  EXPECT_EQ(a.events(), b.events());
  Trace c = SynthesizeTrace(8, 10000.0, 1.0, 0.5, 0.0, 0.0, {0, 1}, 10.0);
  EXPECT_NE(a.events(), c.events());
}

TEST(TraceSynthesisTest, RatesRoughlyHonored) {
  // 2 joins/s over 100 s -> about 200 events (Poisson, generous margins).
  Trace t = SynthesizeTrace(3, 100000.0, 2.0, 0.0, 0.0, 0.0, {}, 0.0);
  EXPECT_GT(t.size(), 120u);
  EXPECT_LT(t.size(), 300u);
  for (const TraceEvent& e : t.events()) {
    EXPECT_EQ(e.cls, TraceClass::kJoin);
    EXPECT_LT(e.arrival_ms, 100000.0);
  }
}

TEST(TraceSynthesisTest, SortedByArrival) {
  Trace t = SynthesizeTrace(5, 20000.0, 1.0, 1.0, 1.0, 0.5, {0, 1, 2}, 5.0);
  const auto& ev = t.events();
  for (size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LE(ev[i - 1].arrival_ms, ev[i].arrival_ms);
  }
}

// ------------------------------------------------------------------ replay

SystemConfig ReplayConfig() {
  SystemConfig cfg;
  cfg.num_pes = 10;
  cfg.join_query.arrival_rate_per_pe_qps = 0.0;  // trace replaces sources
  cfg.warmup_ms = 500.0;
  cfg.measurement_ms = 8000.0;
  return cfg;
}

TEST(TraceReplayTest, DrivesClusterFromTrace) {
  Trace trace = SynthesizeTrace(11, 8000.0, 1.0, 0.5, 0.0, 0.0, {0}, 20.0);
  SystemConfig cfg = ReplayConfig();
  // OLTP trace events need the per-node OLTP relations in the schema.
  cfg.oltp.enabled = true;
  cfg.oltp.placement = OltpPlacement::kAllNodes;
  Cluster cluster(cfg);
  cluster.SetTrace(trace);
  MetricsReport r = cluster.Run();
  EXPECT_GT(r.joins_completed, 0);
  EXPECT_GT(r.scans_completed, 0);
  EXPECT_GT(r.oltp_completed, 0);
}

TEST(TraceReplayTest, IdenticalTraceIdenticalResults) {
  Trace trace = SynthesizeTrace(13, 8000.0, 1.5, 0.0, 0.0, 0.0, {}, 0.0);
  auto run = [&] {
    Cluster cluster(ReplayConfig());
    cluster.SetTrace(trace);
    return cluster.Run();
  };
  MetricsReport r1 = run();
  MetricsReport r2 = run();
  EXPECT_DOUBLE_EQ(r1.join_rt_ms, r2.join_rt_ms);
  EXPECT_EQ(r1.joins_completed, r2.joins_completed);
}

TEST(TraceReplayTest, ComparesStrategiesUnderIdenticalArrivals) {
  // The point of trace-driven evaluation: both strategies see the *same*
  // arrival sequence, so the comparison has no arrival-process noise.
  Trace trace = SynthesizeTrace(17, 8000.0, 2.5, 0.0, 0.0, 0.0, {}, 0.0);
  auto run = [&](StrategyConfig strategy) {
    SystemConfig cfg = ReplayConfig();
    cfg.strategy = strategy;
    Cluster cluster(cfg);
    cluster.SetTrace(trace);
    return cluster.Run();
  };
  MetricsReport dynamic = run(strategies::OptIOCpu());
  MetricsReport random_static = run(strategies::PsuOptRandom());
  EXPECT_GT(dynamic.joins_completed, 0);
  EXPECT_GT(random_static.joins_completed, 0);
  // Same arrivals; only queries still in flight at the window edge may
  // differ between the strategies.
  EXPECT_NEAR(static_cast<double>(dynamic.joins_completed),
              static_cast<double>(random_static.joins_completed), 5.0);
}

}  // namespace
}  // namespace pdblb
