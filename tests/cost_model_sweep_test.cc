// Copyright 2026 the pdblb authors. MIT license.
//
// Parameterized sweeps over the analytic cost model: formula monotonicity
// and anchor stability across system sizes, selectivities and memory sizes
// (TEST_P property style).

#include <gtest/gtest.h>

#include <tuple>

#include "core/cost_model.h"

namespace pdblb {
namespace {

// ------------------- sweep over (num_pes, selectivity) ---------------------

using SizeSel = std::tuple<int, double>;

class CostModelSweepTest : public testing::TestWithParam<SizeSel> {
 protected:
  SystemConfig Config() const {
    SystemConfig cfg;
    cfg.num_pes = std::get<0>(GetParam());
    cfg.join_query.scan_selectivity = std::get<1>(GetParam());
    return cfg;
  }
};

TEST_P(CostModelSweepTest, PsuOptIsTheArgmin) {
  SystemConfig cfg = Config();
  CostModel model(cfg);
  int p_opt = model.PsuOpt();
  ASSERT_GE(p_opt, 1);
  ASSERT_LE(p_opt, cfg.num_pes);
  double best = model.ResponseTimeMs(p_opt);
  for (int p = 1; p <= cfg.num_pes; ++p) {
    EXPECT_LE(best, model.ResponseTimeMs(p) + 1e-9) << "p=" << p;
  }
}

TEST_P(CostModelSweepTest, PmuCpuMonotoneDecreasingInUtilization) {
  CostModel model(Config());
  int last = model.PmuCpu(0.0);
  EXPECT_EQ(last, model.PsuOpt());  // no reduction when idle
  for (double u = 0.05; u <= 1.0; u += 0.05) {
    int p = model.PmuCpu(u);
    EXPECT_LE(p, last) << "u=" << u;
    EXPECT_GE(p, 1);
    last = p;
  }
  EXPECT_EQ(model.PmuCpu(1.0), 1);
}

TEST_P(CostModelSweepTest, PsuNoIOMatchesFormula31) {
  SystemConfig cfg = Config();
  CostModel model(cfg);
  int64_t need = model.HashTablePages();
  int p = model.PsuNoIO();
  // p processors suffice, p-1 do not (unless clamped at n).
  EXPECT_GE(static_cast<int64_t>(p) * cfg.buffer.buffer_pages,
            p == cfg.num_pes ? 0 : need);
  if (p > 1) {
    EXPECT_LT(static_cast<int64_t>(p - 1) * cfg.buffer.buffer_pages, need);
  }
}

TEST_P(CostModelSweepTest, MinWorkingSpaceShrinksWithDegree) {
  CostModel model(Config());
  int last = model.MinWorkingSpacePages(1);
  for (int p = 2; p <= 64; p *= 2) {
    int w = model.MinWorkingSpacePages(p);
    EXPECT_LE(w, last) << "p=" << p;
    EXPECT_GE(w, 1);
    last = w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSelectivities, CostModelSweepTest,
    testing::Combine(testing::Values(10, 20, 40, 60, 80),
                     testing::Values(0.001, 0.01, 0.02, 0.05)),
    [](const testing::TestParamInfo<SizeSel>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_sel" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 1000));
    });

// ----------------------------- directional checks --------------------------

TEST(CostModelDirectionTest, LargerJoinsWantMoreProcessors) {
  SystemConfig small;
  small.num_pes = 80;
  small.join_query.scan_selectivity = 0.001;
  SystemConfig large = small;
  large.join_query.scan_selectivity = 0.05;
  EXPECT_LT(CostModel(small).PsuOpt(), CostModel(large).PsuOpt());
  EXPECT_LE(CostModel(small).PsuNoIO(), CostModel(large).PsuNoIO());
}

TEST(CostModelDirectionTest, MoreMemoryFewerNoIoProcessors) {
  SystemConfig tight;
  tight.num_pes = 80;
  tight.buffer.buffer_pages = 25;
  SystemConfig roomy = tight;
  roomy.buffer.buffer_pages = 200;
  EXPECT_GT(CostModel(tight).PsuNoIO(), CostModel(roomy).PsuNoIO());
}

TEST(CostModelDirectionTest, FasterCpusLowerResponseTimes) {
  SystemConfig slow;
  slow.num_pes = 40;
  SystemConfig fast = slow;
  fast.mips_per_pe = 40.0;
  CostModel sm(slow);
  CostModel fm(fast);
  for (int p : {1, 5, 10, 30}) {
    EXPECT_LT(fm.ResponseTimeMs(p), sm.ResponseTimeMs(p)) << "p=" << p;
  }
}

TEST(CostModelDirectionTest, RatesScaleWithMips) {
  SystemConfig slow;
  slow.num_pes = 40;
  SystemConfig fast = slow;
  fast.mips_per_pe = 40.0;
  EXPECT_GT(CostModel(fast).JoinConsumptionRateTps(),
            CostModel(slow).JoinConsumptionRateTps());
}

}  // namespace
}  // namespace pdblb
