// Copyright 2026 the pdblb authors. MIT license.
//
// Unit tests for the Partially Preemptible Hash Join: partition sizing,
// in-memory operation, overflow spilling, deferred probing, memory stealing
// and suspension/resumption through the memory queue.

#include <gtest/gtest.h>

#include <memory>

#include "bufmgr/buffer_manager.h"
#include "iosim/disk.h"
#include "join/pphj.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"

namespace pdblb {
namespace {

struct Fixture {
  sim::Scheduler sched;
  sim::Resource cpu{sched, 1, "cpu"};
  CpuCosts costs;
  DiskConfig disk_config;
  BufferConfig buf_config;
  std::unique_ptr<DiskArray> disks;
  std::unique_ptr<BufferManager> buffer;

  explicit Fixture(int buffer_pages = 50) {
    buf_config.buffer_pages = buffer_pages;
    disks = std::make_unique<DiskArray>(sched, disk_config, costs, 20.0, cpu,
                                        "t");
    buffer =
        std::make_unique<BufferManager>(sched, buf_config, *disks, "buf");
  }

  Pphj::Params Params(int64_t inner_tuples, int want_pages) {
    Pphj::Params p;
    p.temp_relation_id = -1;
    p.expected_inner_tuples = inner_tuples;
    p.blocking_factor = 20;
    p.fudge_factor = 1.05;
    p.want_pages = want_pages;
    return p;
  }
};

/// Drives a full join at one PE: build with `inner` tuples in `batches`,
/// probe with `outer` tuples, complete, release.
sim::Task<> DriveJoin(Pphj& join, int64_t inner, int64_t outer,
                      int batches) {
  co_await join.AcquireMemory();
  for (int i = 0; i < batches; ++i) {
    co_await join.InsertInnerBatch(inner / batches);
  }
  for (int i = 0; i < batches; ++i) {
    co_await join.ProbeBatch(outer / batches);
  }
  co_await join.CompleteProbe();
  join.Release();
}

TEST(PphjTest, PartitionCountIsCeilSqrtFb) {
  Fixture f;
  // 2500 tuples -> 132 pages with fudge: ceil(sqrt(1.05 * 132)) = 12.
  Pphj join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
            f.Params(2500, 40));
  EXPECT_EQ(join.num_partitions(), 12);
  EXPECT_EQ(join.min_pages(), 12);
}

TEST(PphjTest, MinPagesCappedByBufferCapacity) {
  Fixture f(5);
  Pphj join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
            f.Params(2500, 40));
  EXPECT_EQ(join.min_pages(), 5);
}

TEST(PphjTest, FullyResidentJoinDoesNoTempIo) {
  Fixture f(50);
  Pphj join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
            f.Params(500, 30));  // 27 pages with fudge, fits in 30
  f.sched.Spawn(DriveJoin(join, 500, 2000, 5));
  f.sched.Run();
  EXPECT_EQ(join.temp_pages_written(), 0);
  EXPECT_EQ(join.temp_pages_read(), 0);
  EXPECT_EQ(join.direct_probes(), 2000);
  EXPECT_EQ(join.deferred_probes(), 0);
  EXPECT_EQ(join.resident_partitions(), join.num_partitions());
  EXPECT_EQ(f.buffer->reserved(), 0);  // released
}

TEST(PphjTest, OverflowSpillsAndDefersProportionally) {
  Fixture f(50);
  // Inner needs ~53 pages but only ~20 are reserved: must spill.
  Pphj join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
            f.Params(1000, 20));
  f.sched.Spawn(DriveJoin(join, 1000, 4000, 10));
  f.sched.Run();
  EXPECT_GT(join.temp_pages_written(), 0);
  EXPECT_GT(join.temp_pages_read(), 0);
  EXPECT_GT(join.deferred_probes(), 0);
  EXPECT_GT(join.direct_probes(), 0);
  // Everything must be accounted: direct + deferred = outer input.
  EXPECT_EQ(join.direct_probes() + join.deferred_probes(), 4000);
}

TEST(PphjTest, ResidentFractionTracksMemory) {
  Fixture f(50);
  Pphj join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
            f.Params(1000, 10));
  f.sched.Spawn([](Pphj& j) -> sim::Task<> {
    co_await j.AcquireMemory();
    co_await j.InsertInnerBatch(1000);
  }(join));
  f.sched.Run();
  EXPECT_LT(join.ResidentFraction(), 1.0);
  EXPECT_GT(join.ResidentFraction(), 0.0);
}

TEST(PphjTest, StealSpillsPartitionsAndReportsPages) {
  Fixture f(50);
  Pphj join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
            f.Params(500, 30));
  f.sched.Spawn([](Pphj& j) -> sim::Task<> {
    co_await j.AcquireMemory();
    co_await j.InsertInnerBatch(500);
  }(join));
  f.sched.Run();
  int before = join.ReservedPages();
  ASSERT_GT(before, 10);
  int got = join.StealPages(10);
  EXPECT_GE(got, 10);
  EXPECT_EQ(join.ReservedPages(), before - got);
  EXPECT_GT(join.temp_pages_written(), 0);
  EXPECT_LT(join.resident_partitions(), join.num_partitions());
  join.Release();
}

TEST(PphjTest, StealBelowMinimumSuspendsUntilMemoryReturns) {
  Fixture f(50);
  Pphj join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
            f.Params(500, 30));
  bool insert_done = false;
  f.sched.Spawn([](Pphj& j, BufferManager& buf, bool* done) -> sim::Task<> {
    co_await j.AcquireMemory();
    co_await j.InsertInnerBatch(250);
    // Exhaust the rest of the pool, then steal the join's entire working
    // space (StealPages is called directly to emulate the OLTP steal path;
    // the pool keeps believing those frames are reserved).
    (void)buf.TryReserve(buf.capacity());
    int got = j.StealPages(1000);
    EXPECT_GT(got, 0);
    EXPECT_LT(j.ReservedPages(), j.min_pages());
    co_await j.InsertInnerBatch(250);  // suspends until memory is granted
    *done = true;
  }(join, *f.buffer, &insert_done));
  f.sched.RunUntil(100.0);
  EXPECT_FALSE(insert_done);
  // Memory comes back (another join finished): the suspended join resumes.
  f.buffer->ReleaseReservation(20);
  f.sched.Run();
  EXPECT_TRUE(insert_done);
  join.Release();
}

TEST(PphjTest, CompleteProbeJoinsSpilledPartitions) {
  Fixture f(50);
  Pphj join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
            f.Params(1000, 15));
  f.sched.Spawn(DriveJoin(join, 1000, 1000, 4));
  f.sched.Run();
  // Spilled inner pages and deferred outer pages were re-read.  Writes may
  // exceed reads because per-batch appends round up to whole pages.
  EXPECT_GT(join.temp_pages_read(), 0);
  EXPECT_LE(join.temp_pages_read(), join.temp_pages_written());
}

TEST(PphjTest, ReleaseIsIdempotent) {
  Fixture f(50);
  auto join = std::make_unique<Pphj>(f.sched, *f.buffer, *f.disks, f.cpu,
                                     f.costs, 20.0, f.Params(100, 10));
  f.sched.Spawn([](Pphj& j) -> sim::Task<> {
    co_await j.AcquireMemory();
  }(*join));
  f.sched.Run();
  EXPECT_GT(f.buffer->reserved(), 0);
  join->Release();
  EXPECT_EQ(f.buffer->reserved(), 0);
  join->Release();  // second release must be a no-op
  EXPECT_EQ(f.buffer->reserved(), 0);
  join.reset();     // destructor also calls Release
  EXPECT_EQ(f.buffer->reserved(), 0);
}

TEST(PphjTest, TryGrowClaimsFreedMemory) {
  Fixture f(50);
  // First join grabs most of the buffer.
  EXPECT_EQ(f.buffer->TryReserve(40), 40);
  Pphj join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
            f.Params(1000, 30));
  f.sched.Spawn([](Pphj& j) -> sim::Task<> {
    co_await j.AcquireMemory();
    co_await j.InsertInnerBatch(500);
  }(join));
  f.sched.Run();
  int before = join.ReservedPages();
  EXPECT_LE(before, 10);
  // The other reservation goes away; growth picks up the slack.
  f.buffer->ReleaseReservation(40);
  join.TryGrow();
  EXPECT_GT(join.ReservedPages(), before);
  join.Release();
}

TEST(PphjTest, AcquireWaitsInMemoryQueue) {
  Fixture f(20);
  EXPECT_EQ(f.buffer->TryReserve(20), 20);  // buffer exhausted
  Pphj join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
            f.Params(200, 10));
  bool acquired = false;
  f.sched.Spawn([](Pphj& j, bool* out) -> sim::Task<> {
    co_await j.AcquireMemory();
    *out = true;
  }(join, &acquired));
  f.sched.RunUntil(10.0);
  EXPECT_FALSE(acquired);
  f.buffer->ReleaseReservation(20);
  f.sched.Run();
  EXPECT_TRUE(acquired);
  join.Release();
}

// Property sweep: tuple conservation and release cleanliness across memory
// pressures.
class PphjPressureTest : public ::testing::TestWithParam<int> {};

TEST_P(PphjPressureTest, ConservesTuplesAndMemory) {
  int want = GetParam();
  Fixture f(50);
  Pphj join(f.sched, *f.buffer, *f.disks, f.cpu, f.costs, 20.0,
            f.Params(2000, want));
  f.sched.Spawn(DriveJoin(join, 2000, 8000, 8));
  f.sched.Run();
  EXPECT_EQ(join.inner_tuples_received(), 2000);
  EXPECT_EQ(join.direct_probes() + join.deferred_probes(), 8000);
  EXPECT_EQ(f.buffer->reserved(), 0);
  EXPECT_EQ(join.ReservedPages(), 0);
}

INSTANTIATE_TEST_SUITE_P(MemoryPressure, PphjPressureTest,
                         ::testing::Values(2, 5, 10, 20, 40, 50, 80, 110));

}  // namespace
}  // namespace pdblb
