// Copyright 2026 the pdblb authors. MIT license.
//
// Unit tests for the discrete-event kernel: scheduling order, delays,
// resources, channels, latches, RNG determinism and statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "simkern/channel.h"
#include "simkern/latch.h"
#include "simkern/resource.h"
#include "simkern/rng.h"
#include "simkern/scheduler.h"
#include "simkern/stats.h"
#include "simkern/task.h"

namespace pdblb::sim {
namespace {

Task<> AppendAfter(Scheduler& sched, SimTime delay, int id,
                   std::vector<int>* order) {
  co_await sched.Delay(delay);
  order->push_back(id);
}

Task<> IdleUntil(Scheduler& sched, SimTime delay) { co_await sched.Delay(delay); }

TEST(SchedulerTest, EventsRunInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.Spawn(AppendAfter(sched, 5.0, 1, &order));
  sched.Spawn(AppendAfter(sched, 1.0, 2, &order));
  sched.Spawn(AppendAfter(sched, 3.0, 3, &order));
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
  EXPECT_DOUBLE_EQ(sched.Now(), 5.0);
}

TEST(SchedulerTest, EqualTimestampsAreFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.Spawn(AppendAfter(sched, 2.0, i, &order));
  }
  sched.Run();
  std::vector<int> expected;
  for (int i = 0; i < 10; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  Scheduler sched;
  std::vector<int> order;
  sched.Spawn(AppendAfter(sched, 1.0, 1, &order));
  sched.Spawn(AppendAfter(sched, 10.0, 2, &order));
  sched.RunUntil(5.0);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sched.Now(), 5.0);
  EXPECT_EQ(sched.pending_events(), 1u);
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerTest, CallbacksRun) {
  Scheduler sched;
  int hits = 0;
  sched.ScheduleCallback(2.0, [&] { ++hits; });
  sched.ScheduleCallback(4.0, [&] { ++hits; });
  sched.Run();
  EXPECT_EQ(hits, 2);
}

TEST(SchedulerTest, EqualTimestampFifoAcrossCallbacksAndCoroutines) {
  // Callbacks scheduled directly at t=5 come first (they draw sequence
  // numbers at schedule time); the spawned coroutines re-queue themselves
  // at t=5 only when they start running at t=0, so their sequence numbers
  // are strictly larger.  The dispatch order must reflect exactly that,
  // regardless of which internal structure (ring or heap) held each event.
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    if (i % 2 == 0) {
      sched.ScheduleCallback(5.0, [&order, i] { order.push_back(i); });
    } else {
      sched.Spawn(AppendAfter(sched, 5.0, i, &order));
    }
  }
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8, 1, 3, 5, 7, 9}));
}

TEST(SchedulerTest, RunUntilIncludesEventsExactlyAtBoundary) {
  Scheduler sched;
  std::vector<int> order;
  sched.Spawn(AppendAfter(sched, 5.0, 1, &order));
  sched.Spawn(AppendAfter(sched, 5.0 + 1e-9, 2, &order));
  sched.RunUntil(5.0);
  EXPECT_EQ(order, (std::vector<int>{1}));  // <= until runs, later stays
  EXPECT_DOUBLE_EQ(sched.Now(), 5.0);
  EXPECT_EQ(sched.pending_events(), 1u);
  sched.RunUntil(5.0);  // idempotent at the same boundary
  EXPECT_EQ(order, (std::vector<int>{1}));
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerTest, PendingEventsCountsRingAndHeap) {
  Scheduler sched;
  sched.ScheduleCallback(0.0, [] {});  // at Now(): ring
  sched.ScheduleCallback(3.0, [] {});  // future: heap
  sched.ScheduleCallback(7.0, [] {});
  EXPECT_EQ(sched.pending_events(), 3u);
  sched.Run();
  EXPECT_EQ(sched.pending_events(), 0u);
  EXPECT_EQ(sched.events_processed(), 3u);
}

// Dispatching a callback must not copy the callable: it is moved into its
// storage cell once at schedule time and invoked in place.  (The previous
// kernel copied the std::function out of priority_queue::top() on every
// dispatch.)
struct CopyCountingCallback {
  static int copies;
  static int invocations;
  int payload = 0;

  CopyCountingCallback() = default;
  CopyCountingCallback(const CopyCountingCallback& other)
      : payload(other.payload) {
    ++copies;
  }
  CopyCountingCallback(CopyCountingCallback&& other) noexcept
      : payload(other.payload) {}
  void operator()() const { ++invocations; }
};
int CopyCountingCallback::copies = 0;
int CopyCountingCallback::invocations = 0;

TEST(SchedulerTest, DispatchDoesNotCopyCallbacks) {
  CopyCountingCallback::copies = 0;
  CopyCountingCallback::invocations = 0;
  Scheduler sched;
  for (int i = 0; i < 100; ++i) {
    sched.ScheduleCallback(1.0 + i, CopyCountingCallback{});
  }
  sched.Run();
  EXPECT_EQ(CopyCountingCallback::invocations, 100);
  EXPECT_EQ(CopyCountingCallback::copies, 0);
}

TEST(SchedulerTest, LargeCallbacksSurviveTheInlineCellLimit) {
  // Callables above the inline cell size take a boxed fallback path; they
  // must still run correctly and destroy cleanly when left pending.
  Scheduler sched;
  std::array<uint64_t, 32> big_payload;
  big_payload.fill(7);
  uint64_t sum = 0;
  sched.ScheduleCallback(1.0, [big_payload, &sum] {
    for (uint64_t v : big_payload) sum += v;
  });
  // A second large callable is intentionally left pending at destruction.
  sched.ScheduleCallback(2.0, [big_payload, &sum] { sum += big_payload[0]; });
  sched.RunUntil(1.5);
  EXPECT_EQ(sum, 7u * 32u);
}

TEST(SchedulerTest, DeterministicEventCountAcrossIdenticalRuns) {
  auto run_once = [] {
    Scheduler sched;
    std::vector<int> order;
    Rng rng(42);
    for (int i = 0; i < 50; ++i) {
      sched.Spawn(AppendAfter(sched, rng.Exponential(3.0), i, &order));
      if (i % 3 == 0) {
        sched.ScheduleCallback(rng.Exponential(5.0), [] {});
      }
    }
    sched.Run();
    return std::pair<uint64_t, std::vector<int>>(sched.events_processed(),
                                                 order);
  };
  auto [events_a, order_a] = run_once();
  auto [events_b, order_b] = run_once();
  EXPECT_EQ(events_a, events_b);
  EXPECT_EQ(order_a, order_b);
}

Task<> NestedChild(Scheduler& sched, int* state) {
  *state = 1;
  co_await sched.Delay(1.0);
  *state = 2;
}

Task<> NestedParent(Scheduler& sched, int* state, SimTime* end_time) {
  co_await NestedChild(sched, state);
  *end_time = sched.Now();
}

TEST(TaskTest, NestedAwaitRunsChildToCompletion) {
  Scheduler sched;
  int state = 0;
  SimTime end_time = -1.0;
  sched.Spawn(NestedParent(sched, &state, &end_time));
  sched.Run();
  EXPECT_EQ(state, 2);
  EXPECT_DOUBLE_EQ(end_time, 1.0);
}

Task<int> Compute(Scheduler& sched, int x) {
  co_await sched.Delay(1.0);
  co_return x * 2;
}

Task<> UseValue(Scheduler& sched, int* out) {
  *out = co_await Compute(sched, 21);
}

TEST(TaskTest, ValueReturningTask) {
  Scheduler sched;
  int out = 0;
  sched.Spawn(UseValue(sched, &out));
  sched.Run();
  EXPECT_EQ(out, 42);
}

TEST(WhenAllTest, CompletesAtSlowestTask) {
  Scheduler sched;
  std::vector<int> order;
  SimTime end = -1.0;
  auto parent = [](Scheduler& s, std::vector<int>* ord,
                   SimTime* end_time) -> Task<> {
    std::vector<Task<>> tasks;
    tasks.push_back(AppendAfter(s, 3.0, 1, ord));
    tasks.push_back(AppendAfter(s, 7.0, 2, ord));
    tasks.push_back(AppendAfter(s, 5.0, 3, ord));
    co_await WhenAll(s, std::move(tasks));
    *end_time = s.Now();
  };
  sched.Spawn(parent(sched, &order, &end));
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_DOUBLE_EQ(end, 7.0);
}

TEST(WhenAllTest, EmptyTaskListCompletesImmediately) {
  Scheduler sched;
  bool done = false;
  auto parent = [](Scheduler& s, bool* flag) -> Task<> {
    co_await WhenAll(s, {});
    *flag = true;
  };
  sched.Spawn(parent(sched, &done));
  sched.Run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sched.Now(), 0.0);
}

Task<> UseResource(Scheduler& sched, Resource& res, SimTime service,
                   std::vector<SimTime>* completions) {
  co_await res.Use(service);
  completions->push_back(sched.Now());
}

TEST(ResourceTest, SingleServerSerializesFcfs) {
  Scheduler sched;
  Resource res(sched, 1, "cpu");
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    sched.Spawn(UseResource(sched, res, 10.0, &completions));
  }
  sched.Run();
  EXPECT_EQ(completions, (std::vector<SimTime>{10.0, 20.0, 30.0}));
}

TEST(ResourceTest, MultiServerRunsInParallel) {
  Scheduler sched;
  Resource res(sched, 3, "cpus");
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    sched.Spawn(UseResource(sched, res, 10.0, &completions));
  }
  sched.Run();
  EXPECT_EQ(completions, (std::vector<SimTime>{10.0, 10.0, 10.0}));
}

TEST(ResourceTest, UtilizationOfSaturatedServerIsOne) {
  Scheduler sched;
  Resource res(sched, 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 5; ++i) {
    sched.Spawn(UseResource(sched, res, 4.0, &completions));
  }
  sched.Run();
  EXPECT_DOUBLE_EQ(sched.Now(), 20.0);
  EXPECT_NEAR(res.Utilization(), 1.0, 1e-9);
  EXPECT_EQ(res.completed(), 5u);
}

TEST(ResourceTest, UtilizationReflectsIdleTime) {
  Scheduler sched;
  Resource res(sched, 2);
  std::vector<SimTime> completions;
  sched.Spawn(UseResource(sched, res, 10.0, &completions));
  sched.Spawn(IdleUntil(sched, 40.0));  // stretch the horizon to 40 ms
  // One server busy 10 ms out of a 40 ms horizon on 2 servers: 12.5%.
  sched.Run();
  EXPECT_NEAR(res.Utilization(), 10.0 / (2 * 40.0), 1e-9);
}

TEST(ResourceTest, ResetStatsStartsFreshWindow) {
  Scheduler sched;
  Resource res(sched, 1);
  std::vector<SimTime> completions;
  sched.Spawn(UseResource(sched, res, 10.0, &completions));
  sched.Run();
  res.ResetStats();
  sched.Spawn(IdleUntil(sched, 10.0));
  sched.Run();
  EXPECT_NEAR(res.Utilization(), 0.0, 1e-9);
}

Task<> Producer(Scheduler& sched, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sched.Delay(1.0);
    ch.Send(i);
  }
  ch.Close();
}

Task<> Consumer(Channel<int>& ch, std::vector<int>* got) {
  while (true) {
    auto v = co_await ch.Receive();
    if (!v.has_value()) break;
    got->push_back(*v);
  }
}

TEST(ChannelTest, DeliversAllValuesInOrder) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::vector<int> got;
  sched.Spawn(Consumer(ch, &got));
  sched.Spawn(Producer(sched, ch, 5));
  sched.Run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChannelTest, MultipleConsumersShareValues) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::vector<int> got1, got2;
  sched.Spawn(Consumer(ch, &got1));
  sched.Spawn(Consumer(ch, &got2));
  sched.Spawn(Producer(sched, ch, 10));
  sched.Run();
  EXPECT_EQ(got1.size() + got2.size(), 10u);
}

TEST(ChannelTest, CloseWithoutValuesUnblocksConsumer) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::vector<int> got;
  sched.Spawn(Consumer(ch, &got));
  sched.ScheduleCallback(5.0, [&] { ch.Close(); });
  sched.Run();
  EXPECT_TRUE(got.empty());
}

Task<> FlaggedConsumer(Channel<int>& ch, std::vector<int>* got, bool* done) {
  while (true) {
    auto v = co_await ch.Receive();
    if (!v.has_value()) break;
    got->push_back(*v);
  }
  *done = true;
}

// Regression: Receive() on a closed-but-not-drained channel used to suspend
// forever when every remaining value was already promised to a pending
// wakeup — nobody was left to wake the new waiter.  Here both values are
// promised (hand-off wakeups for c1 and c2); c1 drains its value and loops
// into another Receive while c2's value is still in the queue.  That second
// Receive must observe the close immediately instead of parking c1 forever.
TEST(ChannelTest, CloseWithPromisedValuesDoesNotStrandLoopingConsumer) {
  Scheduler sched;
  Channel<int> ch(sched);
  std::vector<int> got1, got2;
  bool done1 = false, done2 = false;
  sched.Spawn(FlaggedConsumer(ch, &got1, &done1));
  sched.Spawn(FlaggedConsumer(ch, &got2, &done2));
  sched.ScheduleCallback(1.0, [&] {
    ch.Send(1);  // promised to c1 (hand-off wakeup)
    ch.Send(2);  // promised to c2 (hand-off wakeup)
    ch.Close();
  });
  sched.Run();
  EXPECT_TRUE(done1) << "consumer 1 stranded on the closed channel";
  EXPECT_TRUE(done2) << "consumer 2 stranded on the closed channel";
  EXPECT_EQ(got1, (std::vector<int>{1}));
  EXPECT_EQ(got2, (std::vector<int>{2}));
  EXPECT_EQ(sched.pending_events(), 0u);
}

// Multi-consumer close/drain: wakeups arrive through both paths (hand-off
// lane for Send, calendar broadcast for Close).  Every consumer must
// terminate, every value must be delivered exactly once, and the late
// receivers must observe the close.
TEST(ChannelTest, MultiConsumerCloseDrainsAllValuesAndUnblocksEveryone) {
  Scheduler sched;
  Channel<int> ch(sched);
  constexpr int kConsumers = 4;
  std::vector<int> got[kConsumers];
  bool done[kConsumers] = {};
  for (int i = 0; i < kConsumers; ++i) {
    sched.Spawn(FlaggedConsumer(ch, &got[i], &done[i]));
  }
  sched.ScheduleCallback(2.0, [&] {
    ch.Send(10);  // hand-off wakeup
    ch.Send(20);  // hand-off wakeup
    ch.Close();   // calendar broadcast to the two remaining waiters
  });
  sched.Run();
  std::vector<int> all;
  for (int i = 0; i < kConsumers; ++i) {
    EXPECT_TRUE(done[i]) << "consumer " << i << " stranded";
    for (int v : got[i]) all.push_back(v);
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<int>{10, 20}));
  EXPECT_EQ(sched.pending_events(), 0u);
}

// A receiver arriving after the close while unpromised values remain must
// still drain them (close semantics: drain, then nullopt).
TEST(ChannelTest, ReceiveAfterCloseDrainsUnpromisedValues) {
  Scheduler sched;
  Channel<int> ch(sched);
  ch.Send(1);
  ch.Send(2);
  ch.Close();
  std::vector<int> got;
  bool done = false;
  sched.Spawn(FlaggedConsumer(ch, &got, &done));
  sched.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(LatchTest, WaitersReleasedOnFinalCountDown) {
  Scheduler sched;
  bool done = false;
  auto waiter = [](Scheduler& s, Latch& l, bool* flag) -> Task<> {
    co_await l.Wait();
    *flag = true;
    (void)s;
  };
  Latch latch(sched, 3);
  sched.Spawn(waiter(sched, latch, &done));
  sched.ScheduleCallback(1.0, [&] { latch.CountDown(); });
  sched.ScheduleCallback(2.0, [&] { latch.CountDown(); });
  sched.ScheduleCallback(3.0, [&] { latch.CountDown(); });
  sched.Run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sched.Now(), 3.0);
}

TEST(LatchTest, ZeroCountIsImmediatelyDone) {
  Scheduler sched;
  Latch latch(sched, 0);
  EXPECT_TRUE(latch.Done());
  bool done = false;
  auto waiter = [](Latch& l, bool* flag) -> Task<> {
    co_await l.Wait();
    *flag = true;
  };
  sched.Spawn(waiter(latch, &done));
  sched.Run();
  EXPECT_TRUE(done);
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng root(7);
  Rng a = root.Fork(1);
  Rng b = root.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng r1(99), r2(99);
  Rng a = r1.Fork(3);
  Rng b = r2.Fork(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng r(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.Exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng r(11);
  auto sample = r.SampleWithoutReplacement(20, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::vector<bool> seen(20, false);
  for (int x : sample) {
    ASSERT_GE(x, 0);
    ASSERT_LT(x, 20);
    EXPECT_FALSE(seen[x]);
    seen[x] = true;
  }
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng r(13);
  auto sample = r.SampleWithoutReplacement(8, 8);
  std::vector<bool> seen(8, false);
  for (int x : sample) seen[x] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(SampleStatTest, MeanAndVariance) {
  SampleStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8);
}

TEST(SampleStatTest, EmptyStatIsZero) {
  SampleStat s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.count(), 0);
}

TEST(TimeWeightedStatTest, PiecewiseConstantAverage) {
  TimeWeightedStat s(0.0);
  s.Set(10.0, 0.0);
  s.Set(20.0, 5.0);   // 10 for [0,5)
  s.Set(0.0, 10.0);   // 20 for [5,10)
  // average over [0, 20]: (10*5 + 20*5 + 0*10) / 20 = 7.5
  EXPECT_DOUBLE_EQ(s.TimeAverage(20.0), 7.5);
}

TEST(TimeWeightedStatTest, ResetWindowDropsHistory) {
  TimeWeightedStat s(5.0);
  s.Set(5.0, 0.0);
  s.ResetWindow(10.0);
  EXPECT_DOUBLE_EQ(s.TimeAverage(20.0), 5.0);
}

TEST(WindowedCounterTest, WindowDelta) {
  WindowedCounter c;
  c.Add(5);
  c.ResetWindow();
  c.Add(3);
  EXPECT_EQ(c.total(), 8);
  EXPECT_EQ(c.InWindow(), 3);
}

// Property-style sweep: with k servers and m jobs of equal service time s,
// the makespan is ceil(m/k)*s and utilization is m*s/(k*makespan).
struct ResourceLawParam {
  int servers;
  int jobs;
  double service;
};

class ResourceLawTest : public ::testing::TestWithParam<ResourceLawParam> {};

TEST_P(ResourceLawTest, MakespanAndUtilizationLaws) {
  const auto p = GetParam();
  Scheduler sched;
  Resource res(sched, p.servers);
  std::vector<SimTime> completions;
  for (int i = 0; i < p.jobs; ++i) {
    sched.Spawn(UseResource(sched, res, p.service, &completions));
  }
  sched.Run();
  double batches = std::ceil(static_cast<double>(p.jobs) / p.servers);
  EXPECT_DOUBLE_EQ(sched.Now(), batches * p.service);
  EXPECT_NEAR(res.Utilization(),
              p.jobs * p.service / (p.servers * sched.Now()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, ResourceLawTest,
    ::testing::Values(ResourceLawParam{1, 1, 3.0}, ResourceLawParam{1, 7, 2.0},
                      ResourceLawParam{2, 8, 5.0}, ResourceLawParam{3, 7, 1.0},
                      ResourceLawParam{4, 16, 2.5},
                      ResourceLawParam{8, 3, 4.0}));

}  // namespace
}  // namespace pdblb::sim
