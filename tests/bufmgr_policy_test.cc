// Copyright 2026 the pdblb authors. MIT license.
//
// Eviction-policy tests for the slot-indexed buffer manager:
//
//  * model-based randomized property tests: seeded access traces replayed
//    through the real BufferManager and a naive reference model of each
//    policy (plain std containers, linear scans); residency sets, eviction
//    victims, hit/miss/eviction/writeback counters and reservation grants
//    must agree after every step;
//  * hand-checked golden traces per policy (the distinguishing semantics:
//    LRU recency order, LRU-2 scan resistance, LFU frequency + aging,
//    CLOCK second chance);
//  * a fig7-shaped skewed trace with frozen per-policy totals (regression
//    pin: reruns must reproduce the bytes);
//  * OnCrash + ReserveWait cancellation against the new frame table under
//    every policy (the PR 6 clean-unwind invariants);
//  * a cluster-level sweep proving the CSV (including the new buffer
//    columns) is byte-identical for --jobs=1 and --jobs=2 per policy.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "bufmgr/buffer_manager.h"
#include "engine/cluster.h"
#include "iosim/disk.h"
#include "runner/sweep.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"

namespace pdblb {
namespace {

constexpr EvictionPolicyKind kAllPolicies[] = {
    EvictionPolicyKind::kLru, EvictionPolicyKind::kLruK,
    EvictionPolicyKind::kLfu, EvictionPolicyKind::kClock};

struct Fixture {
  sim::Scheduler sched;
  sim::Resource cpu{sched, 1, "cpu"};
  CpuCosts costs;
  DiskConfig disk_config;
  BufferConfig buf_config;
  std::unique_ptr<DiskArray> disks;
  std::unique_ptr<BufferManager> buffer;

  explicit Fixture(int pages, EvictionPolicyKind policy,
                   double ws_window_ms = 2000.0) {
    buf_config.buffer_pages = pages;
    buf_config.eviction = policy;
    buf_config.working_set_window_ms = ws_window_ms;
    disks = std::make_unique<DiskArray>(sched, disk_config, costs, 20.0, cpu,
                                        "t");
    buffer =
        std::make_unique<BufferManager>(sched, buf_config, *disks, "buf");
  }
};

// --- naive reference model -------------------------------------------------
//
// Deliberately dumb: std containers, linear scans, one field per concept.
// It mirrors the manager's *semantics* (admit on miss when the unreserved
// pool allows it, evict down to limit, LIFO free-slot reuse, hot set =
// resident frames referenced at least twice) but shares none of its code or
// data layout, so agreement on every step of a random trace is meaningful.
// Victim ties (equal timestamps from zero-duration hits, equal LFU counts)
// are broken by the lowest slot index, exactly like the scan-based policies;
// the model therefore tracks slot numbers by replaying the manager's
// deterministic free-list discipline.
class ReferenceModel {
 public:
  static constexpr double kNever = -1e18;

  ReferenceModel(EvictionPolicyKind kind, int capacity)
      : kind_(kind),
        capacity_(capacity),
        frames_(capacity),
        lfu_aging_interval_(std::max<int64_t>(64, 16 * capacity)) {
    // LIFO free stack, lowest slot on top (the manager's initial order).
    for (int s = capacity - 1; s >= 0; --s) free_.push_back(s);
  }

  /// One Fetch completing at simulation time `now`.  Returns hit.
  bool Access(PageKey page, double now) {
    const int limit = capacity_ - reserved_;
    int s = Find(page);
    if (s >= 0) {
      ++hits;
      frames_[s].prev = frames_[s].last;
      frames_[s].last = now;
      PolicyAccess(s);
      return true;
    }
    ++misses;
    if (limit <= 0) return false;  // fully reserved: pass-through, no admit
    while (Resident() > limit - 1) EvictVictim();
    Admit(page, now);
    return false;
  }

  void MarkDirty(PageKey page) {
    int s = Find(page);
    if (s >= 0) frames_[s].dirty = true;
  }

  /// Mirrors BufferManager::TryReserve under a working-set window so large
  /// that every twice-referenced resident frame counts as hot.
  int TryReserve(int want) {
    int hot = 0;
    for (const MFrame& f : frames_) {
      if (f.resident && f.prev != kNever) ++hot;
    }
    int granted = std::min(want, capacity_ - reserved_ - hot);
    if (granted <= 0) return 0;
    reserved_ += granted;
    while (Resident() > capacity_ - reserved_) EvictVictim();
    return granted;
  }

  void Release(int pages) { reserved_ -= pages; }

  bool IsResident(PageKey page) const { return Find(page) >= 0; }
  int Resident() const { return resident_; }
  int reserved() const { return reserved_; }

  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t writebacks = 0;
  PageKey last_victim{0, 0};

 private:
  struct MFrame {
    PageKey page{0, 0};
    double last = kNever;
    double prev = kNever;
    uint64_t freq = 0;
    bool ref = false;
    bool dirty = false;
    bool resident = false;
  };

  int Find(PageKey page) const {
    for (int s = 0; s < capacity_; ++s) {
      if (frames_[s].resident && frames_[s].page == page) return s;
    }
    return -1;
  }

  void Admit(PageKey page, double now) {
    int s = free_.back();
    free_.pop_back();
    MFrame& f = frames_[s];
    f.page = page;
    f.last = now;
    f.prev = kNever;
    f.freq = 0;
    f.ref = false;
    f.dirty = false;
    f.resident = true;
    ++resident_;
    PolicyAdmit(s);
  }

  void PolicyAdmit(int s) {
    switch (kind_) {
      case EvictionPolicyKind::kLru:
        lru_.push_front(s);
        break;
      case EvictionPolicyKind::kLruK:
        break;
      case EvictionPolicyKind::kLfu:
        frames_[s].freq = 1;
        LfuTick();
        break;
      case EvictionPolicyKind::kClock:
        frames_[s].ref = true;
        if (ring_.empty()) {
          ring_.push_back(s);
          hand_ = 0;
        } else {
          // Insert just behind the hand; the hand keeps pointing at the
          // same frame, now one position further along the vector (mod
          // size: position `size` is position 0 of the circle).
          ring_.insert(ring_.begin() + hand_, s);
          hand_ = (hand_ + 1) % static_cast<int>(ring_.size());
        }
        break;
    }
  }

  void PolicyAccess(int s) {
    switch (kind_) {
      case EvictionPolicyKind::kLru:
        lru_.remove(s);
        lru_.push_front(s);
        break;
      case EvictionPolicyKind::kLruK:
        break;
      case EvictionPolicyKind::kLfu:
        ++frames_[s].freq;
        LfuTick();
        break;
      case EvictionPolicyKind::kClock:
        frames_[s].ref = true;
        break;
    }
  }

  void LfuTick() {
    if (++lfu_events_ < lfu_aging_interval_) return;
    lfu_events_ = 0;
    for (MFrame& f : frames_) {
      if (f.resident && f.freq > 1) f.freq >>= 1;
    }
  }

  int PickVictim() {
    switch (kind_) {
      case EvictionPolicyKind::kLru:
        return lru_.back();
      case EvictionPolicyKind::kLruK: {
        int best = -1;
        for (int s = 0; s < capacity_; ++s) {
          const MFrame& f = frames_[s];
          if (!f.resident) continue;
          if (best < 0 || f.prev < frames_[best].prev ||
              (f.prev == frames_[best].prev && f.last < frames_[best].last)) {
            best = s;
          }
        }
        return best;
      }
      case EvictionPolicyKind::kLfu: {
        int best = -1;
        for (int s = 0; s < capacity_; ++s) {
          const MFrame& f = frames_[s];
          if (!f.resident) continue;
          if (best < 0 || f.freq < frames_[best].freq ||
              (f.freq == frames_[best].freq && f.last < frames_[best].last)) {
            best = s;
          }
        }
        return best;
      }
      case EvictionPolicyKind::kClock: {
        while (frames_[ring_[hand_]].ref) {
          frames_[ring_[hand_]].ref = false;
          hand_ = (hand_ + 1) % static_cast<int>(ring_.size());
        }
        return ring_[hand_];
      }
    }
    return -1;
  }

  void EvictVictim() {
    int s = PickVictim();
    MFrame& f = frames_[s];
    if (f.dirty) ++writebacks;
    ++evictions;
    last_victim = f.page;
    switch (kind_) {
      case EvictionPolicyKind::kLru:
        lru_.remove(s);
        break;
      case EvictionPolicyKind::kLruK:
      case EvictionPolicyKind::kLfu:
        break;
      case EvictionPolicyKind::kClock: {
        int pos = static_cast<int>(
            std::find(ring_.begin(), ring_.end(), s) - ring_.begin());
        ring_.erase(ring_.begin() + pos);
        // The hand moves to the victim's successor, which after the erase
        // sits at the victim's old position.
        hand_ = ring_.empty() ? 0 : pos % static_cast<int>(ring_.size());
        break;
      }
    }
    f.resident = false;
    f.dirty = false;
    f.freq = 0;
    f.ref = false;
    f.last = kNever;
    f.prev = kNever;
    --resident_;
    free_.push_back(s);
  }

  const EvictionPolicyKind kind_;
  const int capacity_;
  std::vector<MFrame> frames_;
  std::vector<int> free_;  // stack: back = next slot to hand out
  std::list<int> lru_;     // slots, MRU at front
  std::vector<int> ring_;  // CLOCK sweep order
  int hand_ = 0;
  int resident_ = 0;
  int reserved_ = 0;
  const int64_t lfu_aging_interval_;
  int64_t lfu_events_ = 0;
};

// --- randomized trace replay ----------------------------------------------

uint64_t XorShift(uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

struct TraceParams {
  int capacity = 16;
  int universe = 48;      // page ids 0..universe-1
  int hot_pages = 8;      // ids 0..hot_pages-1
  double hot_frac = 0.7;  // share of fetches aimed at the hot set
  int ops = 500;
  bool reservations = true;
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

// Serialized trace: one operation at a time, each run to completion, with
// the model fed the simulation time at which the touch/admit actually
// happened (hits complete instantly, misses after the disk round trip).
// ASSERT_* expands to `return` and cannot be used in a coroutine, so the
// step checks use EXPECT_* and bail out on the first divergence — the ops
// after a divergence would drown the report in cascading failures.
sim::Task<> ReplayTrace(sim::Scheduler& sched, BufferManager& buf,
                        ReferenceModel& model, const TraceParams& p) {
  uint64_t rng = p.seed;
  int reserved_real = 0;
  int release_in = 0;
  for (int op = 0; op < p.ops; ++op) {
    // Release an earlier reservation a few operations later.
    if (reserved_real > 0 && --release_in <= 0) {
      buf.ReleaseReservation(reserved_real);
      model.Release(reserved_real);
      reserved_real = 0;
    }
    const uint64_t roll = XorShift(rng) % 100;
    if (roll < 80) {
      // Fetch, skewed toward the hot set.
      int64_t page_no;
      if (XorShift(rng) % 1000 <
          static_cast<uint64_t>(p.hot_frac * 1000)) {
        page_no = static_cast<int64_t>(XorShift(rng) % p.hot_pages);
      } else {
        page_no = static_cast<int64_t>(XorShift(rng) % p.universe);
      }
      PageKey page{1, page_no};
      int64_t evictions_before = buf.evictions();
      bool hit = co_await buf.Fetch(page, AccessPattern::kRandom);
      bool model_hit = model.Access(page, sched.Now());
      EXPECT_EQ(hit, model_hit) << "op " << op << " page " << page_no;
      if (buf.evictions() != evictions_before) {
        EXPECT_EQ(buf.last_evicted().page_no, model.last_victim.page_no)
            << "op " << op << ": victim diverged";
      }
    } else if (roll < 90) {
      // Dirty a (maybe resident) page.
      PageKey page{1, static_cast<int64_t>(XorShift(rng) % p.universe)};
      buf.MarkDirty(page);
      model.MarkDirty(page);
    } else if (p.reservations && reserved_real == 0) {
      int want = 1 + static_cast<int>(XorShift(rng) % (p.capacity / 2 + 1));
      int got = buf.TryReserve(want);
      int model_got = model.TryReserve(want);
      EXPECT_EQ(got, model_got) << "op " << op << " reserve(" << want << ")";
      reserved_real = got;
      release_in = 1 + static_cast<int>(XorShift(rng) % 5);
    }
    // Full-state agreement after every step.
    EXPECT_EQ(buf.buffer_hits(), model.hits) << "op " << op;
    EXPECT_EQ(buf.buffer_misses(), model.misses) << "op " << op;
    EXPECT_EQ(buf.evictions(), model.evictions) << "op " << op;
    EXPECT_EQ(buf.dirty_writebacks(), model.writebacks) << "op " << op;
    EXPECT_EQ(buf.reserved(), model.reserved()) << "op " << op;
    for (int64_t page = 0; page < p.universe; ++page) {
      EXPECT_EQ(buf.IsResident(PageKey{1, page}),
                model.IsResident(PageKey{1, page}))
          << "op " << op << ": residency of page " << page << " diverged";
    }
    if (::testing::Test::HasFailure()) {
      if (reserved_real > 0) buf.ReleaseReservation(reserved_real);
      co_return;
    }
  }
  if (reserved_real > 0) {
    buf.ReleaseReservation(reserved_real);
    model.Release(reserved_real);
  }
}

class BufmgrPolicyModelTest
    : public ::testing::TestWithParam<EvictionPolicyKind> {};

TEST_P(BufmgrPolicyModelTest, RandomTraceMatchesReferenceModel) {
  TraceParams p;
  // Huge working-set window: "hot" degenerates to "referenced twice while
  // resident", which the model can mirror without tracking real time.
  Fixture f(p.capacity, GetParam(), /*ws_window_ms=*/1e15);
  ReferenceModel model(GetParam(), p.capacity);
  f.sched.Spawn(ReplayTrace(f.sched, *f.buffer, model, p));
  f.sched.Run();
  EXPECT_GT(model.hits, 0);
  EXPECT_GT(model.evictions, 0);
  EXPECT_GT(model.writebacks, 0);
}

TEST_P(BufmgrPolicyModelTest, Fig7ShapedTraceMatchesReferenceModel) {
  // The fig7 memory-bound shape: 5-page pool under a debit-credit-skewed
  // stream (85% of accesses to a hot set wider than the pool).
  TraceParams p;
  p.capacity = 5;
  p.universe = 60;
  p.hot_pages = 22;
  p.hot_frac = 0.85;
  p.ops = 400;
  p.seed = 0xc0ffee123ULL;
  Fixture f(p.capacity, GetParam(), /*ws_window_ms=*/1e15);
  ReferenceModel model(GetParam(), p.capacity);
  f.sched.Spawn(ReplayTrace(f.sched, *f.buffer, model, p));
  f.sched.Run();
  EXPECT_GT(model.evictions, 0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, BufmgrPolicyModelTest,
                         ::testing::ValuesIn(kAllPolicies),
                         [](const auto& info) {
                           switch (info.param) {
                             case EvictionPolicyKind::kLru:
                               return "Lru";
                             case EvictionPolicyKind::kLruK:
                               return "LruK";
                             case EvictionPolicyKind::kLfu:
                               return "Lfu";
                             case EvictionPolicyKind::kClock:
                               return "Clock";
                           }
                           return "Unknown";
                         });

// --- hand-checked golden traces -------------------------------------------

sim::Task<> FetchSeq(BufferManager& buf, std::vector<int64_t> pages) {
  for (int64_t p : pages) {
    co_await buf.Fetch(PageKey{1, p}, AccessPattern::kRandom);
  }
}

// LRU, capacity 3.  0,1,2 admit (order MRU->LRU: 2,1,0); re-touching 0
// moves it to the front (0,2,1); admitting 3 evicts the tail, page 1.
TEST(BufmgrPolicyTest, LruEvictsLeastRecentlyUsed) {
  Fixture f(3, EvictionPolicyKind::kLru);
  f.sched.Spawn(FetchSeq(*f.buffer, {0, 1, 2, 0, 3}));
  f.sched.Run();
  EXPECT_EQ(f.buffer->buffer_hits(), 1);
  EXPECT_EQ(f.buffer->buffer_misses(), 4);
  EXPECT_EQ(f.buffer->evictions(), 1);
  EXPECT_EQ(f.buffer->last_evicted().page_no, 1);
  EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 0}));
  EXPECT_FALSE(f.buffer->IsResident(PageKey{1, 1}));
  EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 2}));
  EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 3}));
}

// LRU-2 vs LRU on a scan flood, capacity 3.  Pages 0 and 1 are referenced
// twice (hot); 2 is a single-touch scan page.  Admitting 3:
//  * LRU evicts by recency — the tail is hot page 0;
//  * LRU-2 evicts by second-to-last access — page 2 has none (never), so
//    the scan page goes and the hot set survives.
TEST(BufmgrPolicyTest, LruKProtectsTwiceTouchedPagesFromScanFlood) {
  for (EvictionPolicyKind kind :
       {EvictionPolicyKind::kLru, EvictionPolicyKind::kLruK}) {
    Fixture f(3, kind);
    f.sched.Spawn(FetchSeq(*f.buffer, {0, 0, 1, 1, 2, 3}));
    f.sched.Run();
    EXPECT_EQ(f.buffer->evictions(), 1);
    if (kind == EvictionPolicyKind::kLruK) {
      EXPECT_EQ(f.buffer->last_evicted().page_no, 2) << "lru-k";
      EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 0}));
      EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 1}));
    } else {
      EXPECT_EQ(f.buffer->last_evicted().page_no, 0) << "lru";
      EXPECT_FALSE(f.buffer->IsResident(PageKey{1, 0}));
    }
  }
}

// LFU, capacity 3.  Page 0 is fetched three times (count 3), pages 1 and 2
// once each (count 1).  Admitting 3 evicts the lowest count, oldest last
// access on the tie: page 1.
TEST(BufmgrPolicyTest, LfuEvictsLowestFrequency) {
  Fixture f(3, EvictionPolicyKind::kLfu);
  f.sched.Spawn(FetchSeq(*f.buffer, {0, 0, 0, 1, 2, 3}));
  f.sched.Run();
  EXPECT_EQ(f.buffer->buffer_hits(), 2);
  EXPECT_EQ(f.buffer->evictions(), 1);
  EXPECT_EQ(f.buffer->last_evicted().page_no, 1);
  EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 0}));
  EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 2}));
  EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 3}));
}

// LFU aging, capacity 4 (interval max(64, 16*4) = 64 events).  Page 0 earns
// count 20, then a flood cycles six cold pages; every 64th event halves all
// counts, so 0 decays 20 -> 10 -> 5 -> 2 -> 1 and, once tied, loses on
// last-access age.  Without aging its count would pin the frame forever.
TEST(BufmgrPolicyTest, LfuAgingEvictsStaleHotPage) {
  Fixture f(4, EvictionPolicyKind::kLfu);
  f.sched.Spawn([](BufferManager& buf) -> sim::Task<> {
    for (int i = 0; i < 20; ++i) {
      co_await buf.Fetch(PageKey{1, 0}, AccessPattern::kRandom);
    }
    for (int i = 0; i < 300; ++i) {
      co_await buf.Fetch(PageKey{1, 10 + i % 6}, AccessPattern::kRandom);
    }
  }(*f.buffer));
  f.sched.Run();
  EXPECT_FALSE(f.buffer->IsResident(PageKey{1, 0}))
      << "stale hot page survived 300 flood accesses despite aging";
}

// CLOCK second chance, capacity 3.  After 0,1,2 admit (all referenced) and
// a hit on 0, the miss on 3 sweeps the full ring: every frame's bit is
// cleared, the hand returns to 0 — now unreferenced — and evicts it.  The
// next miss (4) then finds 2's bit still clear and takes 2, sparing 1,
// whose bit was re-set by the hit in between.
TEST(BufmgrPolicyTest, ClockGivesSecondChance) {
  Fixture f(3, EvictionPolicyKind::kClock);
  f.sched.Spawn(FetchSeq(*f.buffer, {0, 1, 2, 0, 3, 1, 4}));
  f.sched.Run();
  EXPECT_EQ(f.buffer->buffer_hits(), 2);
  EXPECT_EQ(f.buffer->evictions(), 2);
  EXPECT_EQ(f.buffer->last_evicted().page_no, 2);
  EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 1}));
  EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 3}));
  EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 4}));
}

// --- fig7-shaped golden totals --------------------------------------------

struct PolicyTotals {
  int64_t hits, misses, evictions, writebacks;
};

// Frozen totals of the fig7-shaped trace above (seed 0xc0ffee123, 400 ops,
// 5-page pool, 85% skew to 22 hot pages).  Verified against the reference
// model by Fig7ShapedTraceMatchesReferenceModel; frozen here so any rerun
// — including across compilers and --jobs counts — must reproduce them
// bit-for-bit.  If a deliberate semantic change lands, re-derive via the
// model test and update.
PolicyTotals RunFig7Shaped(EvictionPolicyKind kind) {
  TraceParams p;
  p.capacity = 5;
  p.universe = 60;
  p.hot_pages = 22;
  p.hot_frac = 0.85;
  p.ops = 400;
  p.seed = 0xc0ffee123ULL;
  Fixture f(p.capacity, kind, /*ws_window_ms=*/1e15);
  ReferenceModel model(kind, p.capacity);
  f.sched.Spawn(ReplayTrace(f.sched, *f.buffer, model, p));
  f.sched.Run();
  return {f.buffer->buffer_hits(), f.buffer->buffer_misses(),
          f.buffer->evictions(), f.buffer->dirty_writebacks()};
}

TEST(BufmgrPolicyTest, Fig7ShapedGoldenTotalsStable) {
  for (EvictionPolicyKind kind : kAllPolicies) {
    PolicyTotals a = RunFig7Shaped(kind);
    PolicyTotals b = RunFig7Shaped(kind);  // rerun: bit-identical
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.writebacks, b.writebacks);
  }
}

// --- OnCrash + ReserveWait cancellation per policy (PR 6 invariants) ------

sim::Task<> ReserveDelayRelease(sim::Scheduler& sched, BufferManager& buf,
                                int pages, SimTime start, SimTime hold,
                                bool* granted) {
  co_await sched.Delay(start);
  int got = co_await buf.ReserveWait(pages, pages);
  if (granted != nullptr) *granted = true;
  co_await sched.Delay(hold);
  buf.ReleaseReservation(got);
}

class BufmgrPolicyCrashTest
    : public ::testing::TestWithParam<EvictionPolicyKind> {};

// Crash mid-wait: a waiter parked in the memory queue is cancelled, the
// blocking reservation is released, and OnCrash wipes the frame table.  The
// clean-unwind invariants must hold for every policy: no leaked
// reservation, empty queue, cold restart, and the pool fully reusable.
TEST_P(BufmgrPolicyCrashTest, CrashAfterCancelledWaiterRestartsCold) {
  Fixture f(8, GetParam());
  // Warm the pool with single-touch pages (no hot set — twice-touched
  // frames would shrink what ReserveWait may grant) and dirty one, so the
  // crash has both residency and dirty state to lose.
  f.sched.Spawn(FetchSeq(*f.buffer, {0, 1, 2, 3}));
  f.sched.Run();
  f.buffer->MarkDirty(PageKey{1, 2});
  // The warm-up ran the clock forward; all times below are t0-relative
  // (ScheduleCallback/RunUntil take absolute times, Delay is relative).
  const SimTime t0 = f.sched.Now();

  // Blocker takes half the pool until t0+50; the victim needs more than the
  // remaining 4 unreserved frames, so it parks in the FCFS memory queue.
  bool blocker_granted = false, victim_granted = false;
  f.sched.Spawn(ReserveDelayRelease(f.sched, *f.buffer, 4, 0.0, 50.0,
                                    &blocker_granted));
  uint64_t victim_id = f.sched.SpawnWithId(
      ReserveDelayRelease(f.sched, *f.buffer, 5, 1.0, 1.0, &victim_granted));
  f.sched.ScheduleCallback(t0 + 5.0, [&] {
    // The crash path cancels resident queries first (FaultInjector order):
    // the parked waiter unhooks from the memory queue in its awaiter
    // destructor.
    f.sched.Cancel(victim_id);
  });
  f.sched.RunUntil(t0 + 10.0);
  EXPECT_TRUE(blocker_granted);
  EXPECT_FALSE(victim_granted) << "cancelled waiter was granted";
  EXPECT_EQ(f.buffer->memory_queue_length(), 0u) << "waiter leaked in queue";
  EXPECT_EQ(f.buffer->reserved(), 4);

  // The blocker releases at t0+50; crash after that, with the queue empty
  // and no reservations outstanding (OnCrash's preconditions).
  f.sched.ScheduleCallback(t0 + 60.0, [&] { f.buffer->OnCrash(); });
  f.sched.Run();
  EXPECT_EQ(f.buffer->reserved(), 0);
  for (int64_t pg = 0; pg < 4; ++pg) {
    EXPECT_FALSE(f.buffer->IsResident(PageKey{1, pg}))
        << "page " << pg << " survived the crash";
  }
  EXPECT_EQ(f.buffer->dirty_writebacks(), 0)
      << "crash must not write back dirty pages";

  // Cold restart: the wiped table must serve a fresh workload correctly.
  f.buffer->ResetStats();
  f.sched.Spawn(FetchSeq(*f.buffer, {5, 6, 7, 5}));
  f.sched.Run();
  EXPECT_EQ(f.buffer->buffer_hits(), 1);
  EXPECT_EQ(f.buffer->buffer_misses(), 3);
  EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 5}));
}

// Scheduler teardown with a waiter still parked: the awaiter destructor
// must not touch the (possibly gone) manager during tearing_down().  This
// is the same invariant cancel_test pins for LRU, repeated per policy
// because the unwind now crosses the policy hooks.
TEST_P(BufmgrPolicyCrashTest, TeardownWithParkedWaiterIsClean) {
  auto f = std::make_unique<Fixture>(6, GetParam());
  f->sched.Spawn(
      ReserveDelayRelease(f->sched, *f->buffer, 6, 0.0, 50.0, nullptr));
  f->sched.Spawn(
      ReserveDelayRelease(f->sched, *f->buffer, 3, 1.0, 1.0, nullptr));
  f->sched.RunUntil(2.0);  // blocker holds, second waiter parked
  EXPECT_EQ(f->buffer->memory_queue_length(), 1u);
  // Destroy mid-wait: ~Scheduler unwinds the suspended frames.
  f.reset();
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, BufmgrPolicyCrashTest,
                         ::testing::ValuesIn(kAllPolicies),
                         [](const auto& info) {
                           switch (info.param) {
                             case EvictionPolicyKind::kLru:
                               return "Lru";
                             case EvictionPolicyKind::kLruK:
                               return "LruK";
                             case EvictionPolicyKind::kLfu:
                               return "Lfu";
                             case EvictionPolicyKind::kClock:
                               return "Clock";
                           }
                           return "Unknown";
                         });

// --- cluster-level: CSV byte-identical across --jobs per policy ----------

TEST(BufmgrPolicyTest, SweepCsvIdenticalAcrossJobsPerPolicy) {
  runner::Sweep sweep;
  for (EvictionPolicyKind kind : kAllPolicies) {
    SystemConfig cfg;
    cfg.num_pes = 4;
    cfg.buffer.buffer_pages = 5;
    cfg.disk.disks_per_pe = 1;
    cfg.buffer.eviction = kind;
    cfg.oltp.enabled = true;
    cfg.oltp.placement = OltpPlacement::kAllNodes;
    cfg.oltp.tps_per_node = 20.0;
    cfg.warmup_ms = 200.0;
    cfg.measurement_ms = 1000.0;
    std::string name = EvictionPolicyName(kind);
    sweep.Add(runner::SweepPoint{"policy/" + name, name, 0.0, name, cfg});
  }

  runner::SweepOptions serial;
  serial.jobs = 1;
  runner::SweepOptions parallel;
  parallel.jobs = 2;
  std::string csv1 = runner::ResultsCsv(sweep.Run(serial));
  std::string csv2 = runner::ResultsCsv(sweep.Run(parallel));
  EXPECT_EQ(csv1, csv2)
      << "buffer columns must be byte-identical across --jobs";
  // The new columns actually carry data.
  EXPECT_NE(csv1.find("buf_hit_ratio"), std::string::npos);
}

// The --eviction CLI override parses every documented name and rejects
// garbage (what BenchOptions validates eagerly).
TEST(BufmgrPolicyTest, ParseEvictionPolicyNames) {
  EvictionPolicyKind kind;
  EXPECT_TRUE(ParseEvictionPolicy("lru", &kind).ok());
  EXPECT_EQ(kind, EvictionPolicyKind::kLru);
  EXPECT_TRUE(ParseEvictionPolicy("lru-k", &kind).ok());
  EXPECT_EQ(kind, EvictionPolicyKind::kLruK);
  EXPECT_TRUE(ParseEvictionPolicy("lfu", &kind).ok());
  EXPECT_EQ(kind, EvictionPolicyKind::kLfu);
  EXPECT_TRUE(ParseEvictionPolicy("clock", &kind).ok());
  EXPECT_EQ(kind, EvictionPolicyKind::kClock);
  EXPECT_FALSE(ParseEvictionPolicy("mru", &kind).ok());
  EXPECT_STREQ(EvictionPolicyName(EvictionPolicyKind::kLruK), "lru-k");
}

}  // namespace
}  // namespace pdblb
