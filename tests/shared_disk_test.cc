// Copyright 2026 the pdblb authors. MIT license.
//
// Tests for the Shared Disk extension (paper Section 7 / [27]): the shared
// spindle pool, the per-PE storage-adapter facades, and the free placement
// of scan operators that lets the dynamic strategies move scan work off
// loaded nodes.

#include <gtest/gtest.h>

#include <memory>

#include "engine/cluster.h"
#include "iosim/disk.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"

namespace pdblb {
namespace {

// ------------------------------------------------------------- disk facade

TEST(SharedDiskFacadeTest, FacadesShareSpindleContention) {
  sim::Scheduler sched;
  sim::Resource cpu0(sched, 1, "cpu0");
  sim::Resource cpu1(sched, 1, "cpu1");
  CpuCosts costs;
  DiskConfig pool_cfg;
  pool_cfg.disks_per_pe = 1;  // one shared spindle: contention is visible
  pool_cfg.disk_cache_pages = 0;
  DiskArray master(sched, pool_cfg, costs, 20.0, cpu0, "pool");
  DiskArray facade_a(sched, pool_cfg, costs, 20.0, cpu0, "a", master);
  DiskArray facade_b(sched, pool_cfg, costs, 20.0, cpu1, "b", master);

  // Two random reads of the same page through different facades must
  // serialize on the single shared spindle: total time ~2 * (15 + 1) ms
  // plus controller/transmission, clearly above one access.
  SimTime done_a = 0, done_b = 0;
  sched.Spawn([](DiskArray& d, sim::Scheduler& s, SimTime* out) -> sim::Task<> {
    co_await d.Read(PageKey{1, 0}, AccessPattern::kRandom);
    *out = s.Now();
  }(facade_a, sched, &done_a));
  sched.Spawn([](DiskArray& d, sim::Scheduler& s, SimTime* out) -> sim::Task<> {
    co_await d.Read(PageKey{1, 0}, AccessPattern::kRandom);
    *out = s.Now();
  }(facade_b, sched, &done_b));
  sched.Run();
  SimTime last = std::max(done_a, done_b);
  EXPECT_GT(last, 30.0);  // serialized, not parallel
}

TEST(SharedDiskFacadeTest, FacadeCachesAreLocal) {
  sim::Scheduler sched;
  sim::Resource cpu(sched, 1, "cpu");
  CpuCosts costs;
  DiskConfig cfg;
  cfg.disks_per_pe = 2;
  DiskArray master(sched, cfg, costs, 20.0, cpu, "pool");
  DiskArray facade_a(sched, cfg, costs, 20.0, cpu, "a", master);
  DiskArray facade_b(sched, cfg, costs, 20.0, cpu, "b", master);

  sched.Spawn([](DiskArray& a, DiskArray& b) -> sim::Task<> {
    co_await a.Read(PageKey{1, 5}, AccessPattern::kRandom);
    co_await a.Read(PageKey{1, 5}, AccessPattern::kRandom);  // a-cache hit
    co_await b.Read(PageKey{1, 5}, AccessPattern::kRandom);  // b-cache miss
  }(facade_a, facade_b));
  sched.Run();
  EXPECT_EQ(facade_a.cache_hits(), 1);
  EXPECT_EQ(facade_a.physical_reads(), 1);
  EXPECT_EQ(facade_b.cache_hits(), 0);
  EXPECT_EQ(facade_b.physical_reads(), 1);
}

TEST(SharedDiskFacadeTest, PoolHasAllSpindles) {
  sim::Scheduler sched;
  sim::Resource cpu(sched, 1, "cpu");
  CpuCosts costs;
  DiskConfig cfg;
  cfg.disks_per_pe = 40;  // 4 PEs x 10 disks
  DiskArray master(sched, cfg, costs, 20.0, cpu, "pool");
  DiskArray facade(sched, cfg, costs, 20.0, cpu, "f", master);
  EXPECT_EQ(master.num_disks(), 40);
  EXPECT_EQ(facade.num_disks(), 40);
}

// -------------------------------------------------------------- integration

TEST(SharedDiskIntegrationTest, ClusterRunsInSharedDiskMode) {
  SystemConfig cfg;
  cfg.num_pes = 10;
  cfg.architecture = Architecture::kSharedDisk;
  cfg.strategy = strategies::OptIOCpu();
  cfg.warmup_ms = 500.0;
  cfg.measurement_ms = 5000.0;
  Cluster cluster(cfg);
  MetricsReport r = cluster.Run();
  EXPECT_GT(r.joins_completed, 0);
}

TEST(SharedDiskIntegrationTest, SharedNothingUnchangedByArchitectureField) {
  // Shared Nothing runs must be bit-identical to the pre-extension results:
  // same seed, same RNG stream, same decisions.
  auto run = [] {
    SystemConfig cfg;
    cfg.num_pes = 10;
    cfg.architecture = Architecture::kSharedNothing;
    cfg.warmup_ms = 500.0;
    cfg.measurement_ms = 4000.0;
    Cluster cluster(cfg);
    return cluster.Run();
  };
  MetricsReport r1 = run();
  MetricsReport r2 = run();
  EXPECT_DOUBLE_EQ(r1.join_rt_ms, r2.join_rt_ms);
  EXPECT_EQ(r1.joins_completed, r2.joins_completed);
}

/// The [27] motivation: with OLTP pinned on the A nodes, Shared Nothing has
/// to scan A on exactly those loaded nodes; Shared Disk moves the A scans
/// to idle PEs.
TEST(SharedDiskIntegrationTest, SharedDiskAvoidsOltpNodesForScans) {
  auto run = [](Architecture arch) {
    SystemConfig cfg;
    cfg.num_pes = 20;
    cfg.architecture = arch;
    cfg.strategy = strategies::OptIOCpu();
    cfg.join_query.arrival_rate_per_pe_qps = 0.075;
    cfg.oltp.enabled = true;
    cfg.oltp.placement = OltpPlacement::kANodes;
    cfg.oltp.tps_per_node = 150.0;
    cfg.disk.disks_per_pe = 5;
    cfg.warmup_ms = 1000.0;
    cfg.measurement_ms = 10000.0;
    Cluster cluster(cfg);
    return cluster.Run();
  };
  MetricsReport sn = run(Architecture::kSharedNothing);
  MetricsReport sd = run(Architecture::kSharedDisk);
  ASSERT_GT(sn.joins_completed, 0);
  ASSERT_GT(sd.joins_completed, 0);
  EXPECT_LT(sd.join_rt_ms, sn.join_rt_ms);
}

TEST(SharedDiskIntegrationTest, AllStrategiesRunUnderSharedDisk) {
  for (const StrategyConfig& s :
       {strategies::PsuOptRandom(), strategies::PmuCpuLUM(),
        strategies::MinIOSuOpt(), strategies::OptIOCpu(),
        strategies::RateMatchLUC()}) {
    SystemConfig cfg;
    cfg.num_pes = 8;
    cfg.architecture = Architecture::kSharedDisk;
    cfg.strategy = s;
    cfg.warmup_ms = 500.0;
    cfg.measurement_ms = 3000.0;
    Cluster cluster(cfg);
    MetricsReport r = cluster.Run();
    EXPECT_GT(r.joins_completed, 0) << s.Name();
  }
}

}  // namespace
}  // namespace pdblb
