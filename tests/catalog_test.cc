// Copyright 2026 the pdblb authors. MIT license.
//
// Unit tests for the database model: page geometry, declustering,
// index descriptors, and the paper's schema construction.

#include <gtest/gtest.h>

#include "catalog/database.h"
#include "catalog/relation.h"

namespace pdblb {
namespace {

RelationConfig PaperA() {
  RelationConfig cfg;
  cfg.name = "A";
  cfg.num_tuples = 250000;
  cfg.tuple_size_bytes = 400;
  cfg.blocking_factor = 20;
  cfg.index = IndexType::kClusteredBTree;
  return cfg;
}

TEST(RelationTest, TotalPagesMatchesPaper) {
  Relation a(kRelationA, PaperA(), {0, 1});
  EXPECT_EQ(a.TotalPages(), 12500);  // 100 MB at 8 KB pages
}

TEST(RelationTest, UniformDeclusteringSplitsTuples) {
  Relation a(kRelationA, PaperA(), {0, 1, 2, 3});
  EXPECT_EQ(a.TuplesAt(0), 62500);
  EXPECT_EQ(a.TuplesAt(3), 62500);
  EXPECT_EQ(a.PagesAt(0), 3125);
  EXPECT_EQ(a.TuplesAt(7), 0);  // not a home PE
  EXPECT_TRUE(a.IsHome(2));
  EXPECT_FALSE(a.IsHome(9));
}

TEST(RelationTest, LastFragmentAbsorbsRemainder) {
  RelationConfig cfg = PaperA();
  cfg.num_tuples = 100;
  Relation r(5, cfg, {0, 1, 2});
  EXPECT_EQ(r.TuplesAt(0), 33);
  EXPECT_EQ(r.TuplesAt(1), 33);
  EXPECT_EQ(r.TuplesAt(2), 34);
  EXPECT_EQ(r.TuplesAt(0) + r.TuplesAt(1) + r.TuplesAt(2), 100);
}

TEST(RelationTest, DataPagesAreDistinctAcrossFragments) {
  Relation a(kRelationA, PaperA(), {0, 1});
  PageKey p0 = a.DataPage(0, 0);
  PageKey p1 = a.DataPage(1, 0);
  EXPECT_NE(p0.page_no, p1.page_no);
  EXPECT_EQ(p0.relation_id, p1.relation_id);
  // Pages within a fragment are contiguous (required for striped reads).
  EXPECT_EQ(a.DataPage(0, 5).page_no, a.DataPage(0, 0).page_no + 5);
}

TEST(RelationTest, IndexLeafPagesDisjointFromDataPages) {
  RelationConfig cfg = PaperA();
  cfg.index = IndexType::kUnclusteredBTree;
  Relation r(7, cfg, {0, 1});
  PageKey leaf = r.IndexLeafPage(0, 0);
  int64_t max_data = r.DataPage(1, r.PagesAt(1) - 1).page_no;
  EXPECT_GT(leaf.page_no, max_data);
}

TEST(RelationTest, IndexLevels) {
  // Clustered: levels above the data pages.
  Relation a(kRelationA, PaperA(), {0});  // 12500 data pages, fanout 200
  EXPECT_EQ(a.IndexLevels(0), 2);  // 200^2 = 40000 >= 12500

  RelationConfig small = PaperA();
  small.num_tuples = 1000;  // 50 pages -> one level
  Relation s(8, small, {0});
  EXPECT_EQ(s.IndexLevels(0), 1);

  RelationConfig none = PaperA();
  none.index = IndexType::kNone;
  Relation n(9, none, {0});
  EXPECT_EQ(n.IndexLevels(0), 0);
}

TEST(RelationTest, UnclusteredLeafCount) {
  RelationConfig cfg = PaperA();
  cfg.index = IndexType::kUnclusteredBTree;
  cfg.num_tuples = 100000;
  Relation r(6, cfg, {0});
  EXPECT_EQ(r.IndexLeafPages(0), 500);  // 100000 / 200 entries per leaf
  EXPECT_EQ(r.IndexLevels(0), 2);       // 200^2 >= 500 leaves... root+1
}

TEST(DatabaseTest, PaperSchemaSplit) {
  SystemConfig cfg;
  cfg.num_pes = 40;
  Database db(cfg);
  EXPECT_EQ(db.a_nodes().size(), 8u);   // 20%
  EXPECT_EQ(db.b_nodes().size(), 32u);  // 80%
  EXPECT_TRUE(db.a().IsHome(0));
  EXPECT_FALSE(db.a().IsHome(8));
  EXPECT_TRUE(db.b().IsHome(8));
  EXPECT_TRUE(db.oltp_nodes().empty());
  EXPECT_EQ(db.oltp_relation(0), nullptr);
}

TEST(DatabaseTest, OltpOnANodes) {
  SystemConfig cfg;
  cfg.num_pes = 20;
  cfg.oltp.enabled = true;
  cfg.oltp.placement = OltpPlacement::kANodes;
  Database db(cfg);
  EXPECT_EQ(db.oltp_nodes().size(), 4u);
  EXPECT_NE(db.oltp_relation(0), nullptr);
  EXPECT_EQ(db.oltp_relation(5), nullptr);  // B node
  EXPECT_EQ(db.oltp_relation(0)->index_type(), IndexType::kUnclusteredBTree);
}

TEST(DatabaseTest, OltpOnBNodes) {
  SystemConfig cfg;
  cfg.num_pes = 20;
  cfg.oltp.enabled = true;
  cfg.oltp.placement = OltpPlacement::kBNodes;
  Database db(cfg);
  EXPECT_EQ(db.oltp_nodes().size(), 16u);
  EXPECT_EQ(db.oltp_relation(0), nullptr);  // A node
  EXPECT_NE(db.oltp_relation(5), nullptr);
}

TEST(DatabaseTest, OltpRelationIdsAreUniquePerNode) {
  SystemConfig cfg;
  cfg.num_pes = 10;
  cfg.oltp.enabled = true;
  cfg.oltp.placement = OltpPlacement::kAllNodes;
  Database db(cfg);
  for (PeId pe = 0; pe < 10; ++pe) {
    ASSERT_NE(db.oltp_relation(pe), nullptr);
    EXPECT_EQ(db.oltp_relation(pe)->id(), kOltpRelationBase + pe);
  }
}

TEST(PageKeyTest, HashSpreadsAcrossBuckets) {
  PageKeyHash h;
  std::vector<int> buckets(16, 0);
  for (int64_t i = 0; i < 1600; ++i) {
    ++buckets[h(PageKey{1, i}) % 16];
  }
  for (int b : buckets) {
    EXPECT_GT(b, 50);  // roughly uniform (100 expected)
    EXPECT_LT(b, 150);
  }
}

}  // namespace
}  // namespace pdblb
