// Copyright 2026 the pdblb authors. MIT license.
//
// Elastic cluster resize suite: the pure rebalance planner, the
// addpe/drainpe fault-grammar clauses (including the quoted-clause +
// byte-offset parse errors), the membership-timeline validation, end-to-end
// fragment migration with conservation checks, mid-migration crash unwind,
// resize-free identity, and the determinism of resized runs across reruns
// and scheduler shard counts.  The binary runs under leak detection, so
// every aborted migration doubles as a zero-leaked-frames check.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/database.h"
#include "common/config.h"
#include "engine/cluster.h"
#include "engine/elastic.h"

namespace pdblb {
namespace {

// Relations scaled so a fragment copy (donor controller time, endpoint CPU
// on the paper's 20 MIPS PEs, wire and disk latency) completes well inside
// the measurement window — same rationale as bench/elastic.cc.
SystemConfig ElasticBase(int num_pes) {
  SystemConfig cfg;
  cfg.num_pes = num_pes;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 8000.0;
  cfg.relation_a.num_tuples = 20000;
  cfg.relation_b.num_tuples = 60000;
  cfg.relation_c.num_tuples = 40000;
  cfg.elastic.migration_bw_mbps = 32.0;
  cfg.elastic.migration_batch_pages = 64;
  return cfg;
}

// ------------------------------------------------------------ planner unit

TEST(ElasticPlannerTest, VacatesDrainingPeLargestFirstToLeastLoaded) {
  // pe0 drains and owns two fragments; pe1/pe2 receive, pe2 lighter.
  std::vector<planner::Fragment> frags = {
      {1, 0, 0, 100}, {2, 0, 0, 40}, {1, 1, 1, 80}, {1, 2, 2, 30}};
  std::vector<planner::PeState> pes(3);
  pes[0] = {.receive = false, .alive = true, .vacate = true, .fill = false};
  pes[1] = {.receive = true, .alive = true, .vacate = false, .fill = false};
  pes[2] = {.receive = true, .alive = true, .vacate = false, .fill = false};
  std::vector<FragmentMove> moves = planner::Plan(frags, pes);
  ASSERT_EQ(moves.size(), 2u);
  // Largest fragment (100 pages) first, to the least-loaded receiver pe2.
  EXPECT_EQ(moves[0].relation_id, 1);
  EXPECT_EQ(moves[0].home, 0);
  EXPECT_EQ(moves[0].from, 0);
  EXPECT_EQ(moves[0].to, 2);
  EXPECT_EQ(moves[0].pages, 100);
  // Then the 40-page fragment; pe1 (80) is now lighter than pe2 (130).
  EXPECT_EQ(moves[1].relation_id, 2);
  EXPECT_EQ(moves[1].to, 1);
}

TEST(ElasticPlannerTest, FillsNewcomerWithoutShufflingMembers) {
  // Established members pe0 (150 pages) and pe1 (90); pe2 joins empty.
  std::vector<planner::Fragment> frags = {
      {1, 0, 0, 100}, {2, 0, 0, 50}, {1, 1, 1, 60}, {2, 1, 1, 30}};
  std::vector<planner::PeState> pes(3);
  pes[0] = {.receive = true, .alive = true, .vacate = false, .fill = false};
  pes[1] = {.receive = true, .alive = true, .vacate = false, .fill = false};
  pes[2] = {.receive = true, .alive = true, .vacate = false, .fill = true};
  std::vector<FragmentMove> moves = planner::Plan(frags, pes);
  // pe0 (most loaded, 150) donates its 100-page fragment (100 < gap 150).
  // Afterwards the most-loaded donor is pe1 (90) with gap 90 - 100 < 0, so
  // no further move narrows the gap: exactly one move, and established
  // members are never shuffled among themselves.
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, 0);
  EXPECT_EQ(moves[0].to, 2);
  EXPECT_EQ(moves[0].pages, 100);
}

TEST(ElasticPlannerTest, SkipsFragmentsOwnedByFailedPes) {
  // The draining pe0 is also dead: its fragments cannot be read, so the
  // plan must leave them alone (re-planned after recovery).
  std::vector<planner::Fragment> frags = {{1, 0, 0, 100}, {1, 1, 1, 80}};
  std::vector<planner::PeState> pes(2);
  pes[0] = {.receive = false, .alive = false, .vacate = true, .fill = false};
  pes[1] = {.receive = true, .alive = true, .vacate = false, .fill = false};
  EXPECT_TRUE(planner::Plan(frags, pes).empty());
}

TEST(ElasticPlannerTest, SettledStateProducesNoMoves) {
  std::vector<planner::Fragment> frags = {{1, 0, 0, 100}, {1, 1, 1, 100}};
  std::vector<planner::PeState> pes(2);
  pes[0] = {.receive = true, .alive = true, .vacate = false, .fill = false};
  pes[1] = {.receive = true, .alive = true, .vacate = false, .fill = false};
  EXPECT_TRUE(planner::Plan(frags, pes).empty());
}

// --------------------------------------------------- grammar + validation

TEST(ElasticParseTest, AddAndDrainClausesRoundTrip) {
  FaultConfig fc;
  Status st = ParseFaultSpec("addpe@2000:pe8;drainpe@3500:pe7", &fc);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(fc.events.size(), 2u);
  EXPECT_EQ(fc.events[0].kind, FaultKind::kAddPe);
  EXPECT_EQ(fc.events[0].pe, 8);
  EXPECT_DOUBLE_EQ(fc.events[0].at_ms, 2000.0);
  EXPECT_EQ(fc.events[1].kind, FaultKind::kDrainPe);
  EXPECT_EQ(fc.events[1].pe, 7);
  EXPECT_TRUE(fc.ElasticEnabled());

  FaultConfig off;
  ASSERT_TRUE(ParseFaultSpec("crash@2000:pe1", &off).ok());
  EXPECT_FALSE(off.ElasticEnabled());
}

// Satellite: parse errors quote the offending clause verbatim and name its
// starting byte, so a typo in a long composed spec is found without
// counting semicolons.
TEST(ElasticParseTest, ErrorsQuoteOffendingClauseAndByteOffset) {
  FaultConfig sink;
  // "addpe@2000:pe8;" is 15 bytes, so the bad clause starts at byte 15.
  Status st = ParseFaultSpec("addpe@2000:pe8;meltpe@3000:pe7", &sink);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("in clause \"meltpe@3000:pe7\""),
            std::string::npos)
      << st.ToString();
  EXPECT_NE(st.ToString().find("(byte 15)"), std::string::npos)
      << st.ToString();

  // Key-value clause errors carry the same quoting.
  Status st2 = ParseFaultSpec("rate=0.5;bogus=1", &sink);
  ASSERT_FALSE(st2.ok());
  EXPECT_NE(st2.ToString().find("in clause \"bogus=1\""), std::string::npos)
      << st2.ToString();
  EXPECT_NE(st2.ToString().find("(byte 9)"), std::string::npos)
      << st2.ToString();

  // A malformed endpoint in the first clause points at byte 0.
  Status st3 = ParseFaultSpec("drainpe@2000:7", &sink);
  ASSERT_FALSE(st3.ok());
  EXPECT_NE(st3.ToString().find("in clause \"drainpe@2000:7\""),
            std::string::npos)
      << st3.ToString();
  EXPECT_NE(st3.ToString().find("(byte 0)"), std::string::npos)
      << st3.ToString();
}

TEST(ElasticValidateTest, MembershipTimelineIsChecked) {
  // Draining a spare before its addpe fires is rejected.
  SystemConfig early = ElasticBase(9);
  early.faults.events = {{1000.0, FaultKind::kDrainPe, 8},
                         {5000.0, FaultKind::kAddPe, 8}};
  EXPECT_FALSE(early.Validate().ok());

  // Draining below two members is rejected.
  SystemConfig two = ElasticBase(2);
  two.faults.events = {{1000.0, FaultKind::kDrainPe, 1}};
  EXPECT_FALSE(two.Validate().ok());

  // A PE may be the target of at most one addpe.
  SystemConfig dup = ElasticBase(9);
  dup.faults.events = {{1000.0, FaultKind::kAddPe, 8},
                       {2000.0, FaultKind::kAddPe, 8}};
  EXPECT_FALSE(dup.Validate().ok());

  // The well-ordered version of the same membership events passes.
  SystemConfig ok = ElasticBase(9);
  ok.faults.events = {{1000.0, FaultKind::kAddPe, 8},
                      {2000.0, FaultKind::kDrainPe, 8}};
  EXPECT_TRUE(ok.Validate().ok()) << ok.Validate().ToString();
}

// ------------------------------------------------------------- end to end

// Draining a PE migrates every fragment it owns, exactly once, with no page
// lost or duplicated: the final ownership map routes each of the drained
// PE's fragments to exactly one live member, and the pages-moved counter
// equals the catalog size of the moved fragments.
TEST(ElasticTest, DrainMigratesEveryFragmentWithConservation) {
  SystemConfig cfg = ElasticBase(8);
  cfg.faults.events = {{2000.0, FaultKind::kDrainPe, 7}};
  Cluster c(cfg);
  const int64_t expected_pages =
      c.db().b().PagesAt(7) + c.db().c().PagesAt(7);
  ASSERT_GT(expected_pages, 0);
  MetricsReport r = c.Run();
  EXPECT_EQ(r.pes_drained, 1);
  EXPECT_EQ(r.fragments_migrated, 2) << "pe7 owns a B and a C fragment";
  EXPECT_EQ(r.migration_pages_moved, expected_pages);
  EXPECT_EQ(r.migration_pages_discarded, 0);
  EXPECT_EQ(r.migrations_replanned, 0);
  EXPECT_GT(r.joins_completed, 0) << "queries must survive the resize";

  // Conservation over the final ownership map: the map is keyed by
  // (relation, home) so each fragment has exactly one owner; nothing still
  // routes to the drained PE, and the moved entries cover exactly the
  // drained fragments.
  EXPECT_EQ(c.ownership().MovedCount(), 2u);
  int64_t moved_catalog_pages = 0;
  for (const auto& [key, owner] : c.ownership().moves()) {
    const auto& [relation_id, home] = key;
    EXPECT_EQ(home, 7) << "only pe7's fragments may have moved";
    EXPECT_NE(owner, 7);
    EXPECT_FALSE(c.pe(owner).failed());
    EXPECT_TRUE(c.pe(owner).member());
    const Relation& rel = relation_id == kRelationB ? c.db().b() : c.db().c();
    EXPECT_EQ(rel.id(), relation_id);
    moved_catalog_pages += rel.PagesAt(home);
  }
  EXPECT_EQ(moved_catalog_pages, expected_pages);
  for (PeId home : c.db().b().home_pes()) {
    EXPECT_NE(c.OwnerOf(c.db().b().id(), home), 7);
  }
}

TEST(ElasticTest, AddedSpareIsFilledAndServesQueries) {
  SystemConfig cfg = ElasticBase(9);
  cfg.faults.events = {{2000.0, FaultKind::kAddPe, 8}};
  Cluster c(cfg);
  MetricsReport r = c.Run();
  EXPECT_EQ(r.pes_added, 1);
  EXPECT_GE(r.fragments_migrated, 1) << "the newcomer never got a fragment";
  EXPECT_GT(r.migration_pages_moved, 0);
  EXPECT_EQ(r.migration_pages_discarded, 0);
  EXPECT_GT(r.joins_completed, 0);
  // Every moved fragment landed on the newcomer: a fill plan never shuffles
  // the established members among themselves.
  EXPECT_GT(c.ownership().MovedCount(), 0u);
  for (const auto& [key, owner] : c.ownership().moves()) {
    EXPECT_EQ(owner, 8);
  }
}

// Mid-migration crash unwind: the draining donor dies while its fragment is
// in flight.  The aborted migrator must release the migration latch and the
// destination staging reservation (leak detection and the destination
// buffer's crash-wipe asserts catch both), batches already landed are
// discarded rather than committed, and after the PE recovers the drain is
// re-planned and runs to completion.
TEST(ElasticTest, MidMigrationCrashUnwindsDiscardsAndReplans) {
  SystemConfig cfg = ElasticBase(8);
  cfg.faults.events = {{2000.0, FaultKind::kDrainPe, 7},
                       {2500.0, FaultKind::kCrash, 7},
                       {3200.0, FaultKind::kRecover, 7}};
  Cluster c(cfg);
  MetricsReport r = c.Run();
  EXPECT_EQ(r.pe_crashes, 1);
  EXPECT_EQ(r.pe_recoveries, 1);
  EXPECT_GE(r.migrations_replanned, 1) << "the crash must abort the move";
  EXPECT_GT(r.migration_pages_discarded, 0)
      << "batches landed before the crash must be discarded, not committed";
  EXPECT_EQ(r.pes_drained, 1) << "the drain must finish after recovery";
  EXPECT_EQ(c.ownership().MovedCount(), 2u);
  for (const auto& [key, owner] : c.ownership().moves()) {
    EXPECT_NE(owner, 7);
  }
  // Conservation still holds: discarded pages never enter the moved total —
  // each fragment is counted exactly once, at its catalog size.
  EXPECT_EQ(r.migration_pages_moved,
            c.db().b().PagesAt(7) + c.db().c().PagesAt(7));
}

// A spare that bounces (crash + recover) before its addpe must stay out of
// the planning views until the addpe fires: recovery of a non-member does
// not MarkUp, and the later join still fills it.
TEST(ElasticTest, CrashedSpareStaysOutUntilAdded) {
  SystemConfig cfg = ElasticBase(9);
  cfg.faults.events = {{1200.0, FaultKind::kCrash, 8},
                       {1600.0, FaultKind::kRecover, 8},
                       {2500.0, FaultKind::kAddPe, 8}};
  Cluster c(cfg);
  MetricsReport r = c.Run();
  EXPECT_EQ(r.pes_added, 1);
  EXPECT_GE(r.fragments_migrated, 1);
  EXPECT_GT(r.joins_completed, 0);
}

// ----------------------------------------------------------- determinism

// Elastic knobs are dead config on resize-free runs: no elastic machinery
// is constructed, so the full event stream is identical whatever the
// migration bandwidth/batch settings say — even with other faults active.
TEST(ElasticTest, ResizeFreeRunsAreUntouchedByElasticConfig) {
  SystemConfig base = ElasticBase(8);
  base.faults.events = {{2500.0, FaultKind::kCrash, 2},
                        {4000.0, FaultKind::kRecover, 2}};
  MetricsReport r1 = Cluster(base).Run();
  SystemConfig tweaked = base;
  tweaked.elastic.migration_bw_mbps = 1.0;
  tweaked.elastic.migration_batch_pages = 3;
  MetricsReport r2 = Cluster(tweaked).Run();
  EXPECT_EQ(r1.kernel_events, r2.kernel_events);
  EXPECT_EQ(r1.kernel_handoffs, r2.kernel_handoffs);
  EXPECT_EQ(r1.joins_completed, r2.joins_completed);
  EXPECT_DOUBLE_EQ(r1.join_rt_ms, r2.join_rt_ms);
  EXPECT_EQ(r1.fragments_migrated, 0);
  EXPECT_EQ(r2.fragments_migrated, 0);
}

TEST(ElasticTest, ResizedRunsAreIdenticalAcrossRerunsAndShards) {
  SystemConfig base = ElasticBase(9);
  base.faults.events = {{2000.0, FaultKind::kAddPe, 8},
                        {3000.0, FaultKind::kDrainPe, 7}};
  MetricsReport r1 = Cluster(base).Run();
  MetricsReport r2 = Cluster(base).Run();
  EXPECT_EQ(r1.kernel_events, r2.kernel_events);
  EXPECT_EQ(r1.fragments_migrated, r2.fragments_migrated);
  EXPECT_EQ(r1.migration_pages_moved, r2.migration_pages_moved);
  EXPECT_EQ(r1.joins_completed, r2.joins_completed);
  EXPECT_DOUBLE_EQ(r1.join_rt_ms, r2.join_rt_ms);
  for (int shards : {2, 4}) {
    SystemConfig cfg = base;
    cfg.shards = shards;
    MetricsReport r = Cluster(cfg).Run();
    EXPECT_EQ(r.fragments_migrated, r1.fragments_migrated)
        << "shards=" << shards;
    EXPECT_EQ(r.migration_pages_moved, r1.migration_pages_moved)
        << "shards=" << shards;
    EXPECT_EQ(r.joins_completed, r1.joins_completed) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(r.join_rt_ms, r1.join_rt_ms) << "shards=" << shards;
  }
}

// Satellite: a crashed PE recovers and rejoins the planning views while the
// overload state machine is pinned in `shedding` by sustained 4x overload.
// The rejoin (MarkUp + immediate Report) must compose with active shedding
// without starving admission, and the composition stays deterministic.
TEST(ElasticTest, RecoveryWhileSheddingRejoinsCleanly) {
  SystemConfig cfg;
  cfg.num_pes = 8;
  cfg.multiprogramming_level = 1;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 8000.0;
  cfg.join_query.arrival_rate_per_pe_qps = 2.0;
  cfg.overload.enabled = true;
  cfg.overload.degrade_queue_threshold = 0.5;
  cfg.overload.shed_queue_threshold = 1.0;
  cfg.overload.exit_queue_threshold = 0.25;
  cfg.overload.enter_rounds = 1;
  cfg.control_report_interval_ms = 500.0;
  cfg.faults.events = {{3000.0, FaultKind::kCrash, 2},
                       {5000.0, FaultKind::kRecover, 2}};
  MetricsReport r1 = Cluster(cfg).Run();
  EXPECT_GT(r1.queries_shed, 0) << "4x overload never reached shedding";
  EXPECT_EQ(r1.pe_crashes, 1);
  EXPECT_EQ(r1.pe_recoveries, 1);
  EXPECT_GT(r1.joins_completed, 0)
      << "the recovered PE must serve work again";
  MetricsReport r2 = Cluster(cfg).Run();
  EXPECT_EQ(r1.queries_shed, r2.queries_shed);
  EXPECT_EQ(r1.joins_completed, r2.joins_completed);
  EXPECT_EQ(r1.kernel_events, r2.kernel_events);
}

}  // namespace
}  // namespace pdblb
