// Copyright 2026 the pdblb authors. MIT license.
//
// Unit and property tests for the paper's contribution: the control node,
// the analytic cost model (formulas 3.1/3.2 and the p_su-opt anchors) and
// all nine load-balancing strategies, including the MIN-IO footnote-5
// scenario from the paper.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>

#include "core/control_node.h"
#include "core/cost_model.h"
#include "core/strategies.h"
#include "simkern/rng.h"

namespace pdblb {
namespace {

// ---------------------------------------------------------------- control

TEST(ControlNodeTest, ReportsAndAverage) {
  ControlNode cn(4, /*adaptive_feedback=*/false);
  cn.Report(0, 0.2, 40, 0.1);
  cn.Report(1, 0.4, 30, 0.1);
  cn.Report(2, 0.6, 20, 0.1);
  cn.Report(3, 0.8, 10, 0.1);
  EXPECT_DOUBLE_EQ(cn.AvgCpuUtilization(), 0.5);
  EXPECT_EQ(cn.info(2).free_memory_pages, 20);
}

TEST(ControlNodeTest, AvailMemorySortedDescending) {
  ControlNode cn(3, false);
  cn.Report(0, 0.0, 10, 0.0);
  cn.Report(1, 0.0, 30, 0.0);
  cn.Report(2, 0.0, 20, 0.0);
  auto sorted = cn.AvailMemorySorted();
  EXPECT_EQ(sorted[0].pe, 1);
  EXPECT_EQ(sorted[1].pe, 2);
  EXPECT_EQ(sorted[2].pe, 0);
}

TEST(ControlNodeTest, CpuSortedAscending) {
  ControlNode cn(3, false);
  cn.Report(0, 0.9, 0, 0.0);
  cn.Report(1, 0.1, 0, 0.0);
  cn.Report(2, 0.5, 0, 0.0);
  auto sorted = cn.CpuSorted();
  EXPECT_EQ(sorted[0].pe, 1);
  EXPECT_EQ(sorted[1].pe, 2);
  EXPECT_EQ(sorted[2].pe, 0);
}

TEST(ControlNodeTest, AdaptiveFeedbackBumpsSelectedPes) {
  ControlNode cn(2, /*adaptive_feedback=*/true, /*cpu_bump_factor=*/0.5);
  cn.Report(0, 0.4, 40, 0.0);
  cn.Report(1, 0.4, 40, 0.0);
  cn.NoteJoinScheduled({0}, 10);
  EXPECT_DOUBLE_EQ(cn.info(0).cpu_util, 0.7);  // 0.4 + 0.6*0.5
  EXPECT_EQ(cn.info(0).free_memory_pages, 30);
  EXPECT_DOUBLE_EQ(cn.info(1).cpu_util, 0.4);  // untouched
  // A fresh report overwrites the bump.
  cn.Report(0, 0.4, 40, 0.0);
  EXPECT_DOUBLE_EQ(cn.info(0).cpu_util, 0.4);
}

TEST(ControlNodeTest, FeedbackDisabled) {
  ControlNode cn(2, /*adaptive_feedback=*/false);
  cn.Report(0, 0.4, 40, 0.0);
  cn.NoteJoinScheduled({0}, 10);
  EXPECT_DOUBLE_EQ(cn.info(0).cpu_util, 0.4);
  EXPECT_EQ(cn.info(0).free_memory_pages, 40);
}

TEST(ControlNodeTest, FreeMemoryNeverNegative) {
  ControlNode cn(1, true);
  cn.Report(0, 0.0, 5, 0.0);
  cn.NoteJoinScheduled({0}, 100);
  EXPECT_EQ(cn.info(0).free_memory_pages, 0);
}

// -------------------------------------------------------------- cost model

SystemConfig PaperConfig(int n = 80, double selectivity = 0.01) {
  SystemConfig cfg;
  cfg.num_pes = n;
  cfg.join_query.scan_selectivity = selectivity;
  return cfg;
}

TEST(CostModelTest, Formula31PaperAnchors) {
  // p_su-noIO = 1 / 3 / 14 at selectivities 0.1% / 1% / 5% (paper text).
  EXPECT_EQ(CostModel(PaperConfig(80, 0.001)).PsuNoIO(), 1);
  EXPECT_EQ(CostModel(PaperConfig(80, 0.01)).PsuNoIO(), 3);
  EXPECT_EQ(CostModel(PaperConfig(80, 0.05)).PsuNoIO(), 14);
}

TEST(CostModelTest, PsuOptPaperAnchors) {
  // p_su-opt = 10 / 30 / ~70 at selectivities 0.1% / 1% / 5%.
  EXPECT_EQ(CostModel(PaperConfig(80, 0.001)).PsuOpt(), 10);
  EXPECT_EQ(CostModel(PaperConfig(80, 0.01)).PsuOpt(), 30);
  int p5 = CostModel(PaperConfig(80, 0.05)).PsuOpt();
  EXPECT_GE(p5, 60);
  EXPECT_LE(p5, 75);
}

TEST(CostModelTest, PsuOptCappedBySystemSize) {
  EXPECT_LE(CostModel(PaperConfig(10, 0.05)).PsuOpt(), 10);
}

TEST(CostModelTest, Formula32Reduction) {
  CostModel cm(PaperConfig(80, 0.01));  // psu_opt = 30
  EXPECT_EQ(cm.PmuCpu(0.0), 30);
  // Reduction is mild below 50% utilization...
  EXPECT_GE(cm.PmuCpu(0.5), 26);
  // ...and strong at high utilization: 30 * (1 - 0.9^3) = 8.1.
  EXPECT_EQ(cm.PmuCpu(0.9), 8);
  EXPECT_EQ(cm.PmuCpu(1.0), 1);
}

TEST(CostModelTest, PmuCpuMonotoneInUtilization) {
  CostModel cm(PaperConfig(80, 0.01));
  int prev = cm.PmuCpu(0.0);
  for (double u = 0.05; u <= 1.0; u += 0.05) {
    int p = cm.PmuCpu(u);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(CostModelTest, ResponseTimeIsUShaped) {
  CostModel cm(PaperConfig(80, 0.01));
  int opt = cm.PsuOpt();
  // Strictly worse both far below and far above the optimum.
  EXPECT_GT(cm.ResponseTimeMs(1), cm.ResponseTimeMs(opt));
  EXPECT_GT(cm.ResponseTimeMs(80), cm.ResponseTimeMs(opt));
}

TEST(CostModelTest, TempIoPenalizesSmallDegrees) {
  // Below p_su-noIO the model must charge temp-file I/O.
  CostModel cm(PaperConfig(80, 0.05));  // psu_noIO = 14
  double with_io = cm.ResponseTimeMs(5);
  double without_io = cm.ResponseTimeMs(20);
  EXPECT_GT(with_io, without_io);
}

TEST(CostModelTest, HashTablePages) {
  CostModel cm(PaperConfig(80, 0.01));
  // ceil(1.05 * 125) = 132.
  EXPECT_EQ(cm.HashTablePages(), 132);
}

TEST(CostModelTest, MinWorkingSpaceShrinksWithDegree) {
  CostModel cm(PaperConfig(80, 0.01));
  EXPECT_GE(cm.MinWorkingSpacePages(1), cm.MinWorkingSpacePages(10));
  EXPECT_GE(cm.MinWorkingSpacePages(10), cm.MinWorkingSpacePages(80));
  EXPECT_GE(cm.MinWorkingSpacePages(80), 1);
}

// Property sweep: formula 3.1 exactly equals MIN(n, ceil(b_i*F/m)).
struct NoIoParam {
  double selectivity;
  int buffer_pages;
  int num_pes;
};
class PsuNoIoLawTest : public ::testing::TestWithParam<NoIoParam> {};

TEST_P(PsuNoIoLawTest, MatchesClosedForm) {
  auto p = GetParam();
  SystemConfig cfg = PaperConfig(p.num_pes, p.selectivity);
  cfg.buffer.buffer_pages = p.buffer_pages;
  CostModel cm(cfg);
  int64_t bi_f = cm.HashTablePages();
  int expected = static_cast<int>(
      std::min<int64_t>(p.num_pes, (bi_f + p.buffer_pages - 1) /
                                       p.buffer_pages));
  expected = std::max(expected, 1);
  EXPECT_EQ(cm.PsuNoIO(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, PsuNoIoLawTest,
    ::testing::Values(NoIoParam{0.001, 50, 80}, NoIoParam{0.01, 50, 80},
                      NoIoParam{0.02, 50, 80}, NoIoParam{0.05, 50, 80},
                      NoIoParam{0.01, 5, 80}, NoIoParam{0.01, 5, 20},
                      NoIoParam{0.05, 5, 80}, NoIoParam{0.2, 50, 40}));

// -------------------------------------------------------------- strategies

ControlNode UniformControl(int n, double cpu, int free) {
  ControlNode cn(n, /*adaptive_feedback=*/false);
  for (int i = 0; i < n; ++i) cn.Report(i, cpu, free, 0.0);
  return cn;
}

JoinPlanRequest PaperRequest(int n = 80) {
  JoinPlanRequest req;
  req.hash_table_pages = 132;
  req.psu_opt = 30;
  req.psu_noio = 3;
  req.num_pes = n;
  return req;
}

TEST(StrategyTest, StaticSuOptUsesPsuOpt) {
  auto policy = LoadBalancingPolicy::Create(strategies::PsuOptRandom());
  auto cn = UniformControl(80, 0.0, 50);
  sim::Rng rng(1);
  JoinPlan plan = policy->Plan(PaperRequest(), cn, rng);
  EXPECT_EQ(plan.degree, 30);
  EXPECT_EQ(plan.pes.size(), 30u);
  std::set<PeId> unique(plan.pes.begin(), plan.pes.end());
  EXPECT_EQ(unique.size(), 30u);  // distinct PEs
}

TEST(StrategyTest, StaticSuNoIoUsesPsuNoIo) {
  auto policy = LoadBalancingPolicy::Create(strategies::PsuNoIOLUM());
  auto cn = UniformControl(80, 0.0, 50);
  sim::Rng rng(1);
  EXPECT_EQ(policy->Plan(PaperRequest(), cn, rng).degree, 3);
}

TEST(StrategyTest, DegreeCappedBySystemSize) {
  auto policy = LoadBalancingPolicy::Create(strategies::PsuOptRandom());
  auto cn = UniformControl(10, 0.0, 50);
  sim::Rng rng(1);
  EXPECT_EQ(policy->Plan(PaperRequest(10), cn, rng).degree, 10);
}

TEST(StrategyTest, DynamicCpuReducesDegreeUnderLoad) {
  auto policy = LoadBalancingPolicy::Create(strategies::PmuCpuLUM());
  sim::Rng rng(1);
  auto idle = UniformControl(80, 0.05, 50);
  auto busy = UniformControl(80, 0.9, 50);
  int p_idle = policy->Plan(PaperRequest(), idle, rng).degree;
  int p_busy = policy->Plan(PaperRequest(), busy, rng).degree;
  EXPECT_EQ(p_idle, 30);
  EXPECT_LE(p_busy, 9);  // 30 * (1 - 0.9^3) ~ 8
}

TEST(StrategyTest, LucPicksLeastUtilizedCpus) {
  StrategyConfig cfg = strategies::PsuNoIOLUC();
  auto policy = LoadBalancingPolicy::Create(cfg);
  ControlNode cn(5, false);
  cn.Report(0, 0.9, 50, 0);
  cn.Report(1, 0.1, 50, 0);
  cn.Report(2, 0.5, 50, 0);
  cn.Report(3, 0.2, 50, 0);
  cn.Report(4, 0.8, 50, 0);
  sim::Rng rng(1);
  JoinPlan plan = policy->Plan(PaperRequest(5), cn, rng);
  ASSERT_EQ(plan.degree, 3);
  std::set<PeId> chosen(plan.pes.begin(), plan.pes.end());
  EXPECT_TRUE(chosen.count(1));
  EXPECT_TRUE(chosen.count(3));
  EXPECT_TRUE(chosen.count(2));
}

TEST(StrategyTest, LumPicksMostFreeMemory) {
  auto policy = LoadBalancingPolicy::Create(strategies::PsuNoIOLUM());
  ControlNode cn(5, false);
  cn.Report(0, 0, 5, 0);
  cn.Report(1, 0, 45, 0);
  cn.Report(2, 0, 25, 0);
  cn.Report(3, 0, 40, 0);
  cn.Report(4, 0, 10, 0);
  sim::Rng rng(1);
  JoinPlan plan = policy->Plan(PaperRequest(5), cn, rng);
  ASSERT_EQ(plan.degree, 3);
  EXPECT_EQ(plan.pes[0], 1);
  EXPECT_EQ(plan.pes[1], 3);
  EXPECT_EQ(plan.pes[2], 2);
}

TEST(StrategyTest, MinIoFindsMinimalNoIoDegree) {
  auto policy = LoadBalancingPolicy::Create(strategies::MinIO());
  auto cn = UniformControl(80, 0.0, 50);  // 50 free everywhere
  sim::Rng rng(1);
  // need 132 pages -> k = 3 (50*3 = 150 >= 132).
  EXPECT_EQ(policy->Plan(PaperRequest(), cn, rng).degree, 3);
}

TEST(StrategyTest, MinIoPaperFootnote5Scenario) {
  // Paper footnote 5: storage requirement 10 MB, n = 4, availability
  // 8/1/0/0 MB: MIN-IO selects pmu = 1 (the 8 MB node), because overflow is
  // 2 MB there vs. at least 8 with any other choice.
  auto policy = LoadBalancingPolicy::Create(strategies::MinIO());
  ControlNode cn(4, false);
  cn.Report(0, 0, 8, 0);
  cn.Report(1, 0, 1, 0);
  cn.Report(2, 0, 0, 0);
  cn.Report(3, 0, 0, 0);
  JoinPlanRequest req;
  req.hash_table_pages = 10;
  req.psu_opt = 4;
  req.psu_noio = 2;
  req.num_pes = 4;
  sim::Rng rng(1);
  JoinPlan plan = policy->Plan(req, cn, rng);
  EXPECT_EQ(plan.degree, 1);
  ASSERT_EQ(plan.pes.size(), 1u);
  EXPECT_EQ(plan.pes[0], 0);
}

TEST(StrategyTest, MinIoSuOptPrefersDegreeNearPsuOpt) {
  auto policy = LoadBalancingPolicy::Create(strategies::MinIOSuOpt());
  auto cn = UniformControl(80, 0.0, 50);
  sim::Rng rng(1);
  // Any k >= 3 avoids I/O; the choice closest to psu_opt = 30 is 30.
  EXPECT_EQ(policy->Plan(PaperRequest(), cn, rng).degree, 30);
}

TEST(StrategyTest, MinIoSuOptFallsBackToLargerDegrees) {
  auto policy = LoadBalancingPolicy::Create(strategies::MinIOSuOpt());
  auto cn = UniformControl(80, 0.0, 1);  // 1 free page everywhere: no no-IO
  sim::Rng rng(1);
  JoinPlan plan = policy->Plan(PaperRequest(), cn, rng);
  EXPECT_EQ(plan.degree, 80);  // overflow minimized at the largest k
}

TEST(StrategyTest, OptIoCpuCapsDegreeByCpu) {
  auto policy = LoadBalancingPolicy::Create(strategies::OptIOCpu());
  sim::Rng rng(1);
  auto busy = UniformControl(80, 0.9, 50);
  JoinPlan plan = policy->Plan(PaperRequest(), busy, rng);
  EXPECT_LE(plan.degree, 9);  // pmu-cpu cap at u=0.9
}

TEST(StrategyTest, OptIoCpuPicksMaxNoIoDegreeUnderLightLoad) {
  auto policy = LoadBalancingPolicy::Create(strategies::OptIOCpu());
  sim::Rng rng(1);
  auto idle = UniformControl(80, 0.0, 50);
  // cap = 30; all k in [3,30] avoid I/O; the maximal one is chosen.
  EXPECT_EQ(policy->Plan(PaperRequest(), idle, rng).degree, 30);
}

TEST(StrategyTest, OptIoCpuAvoidsLowMemoryNodes) {
  // The paper's Fig. 9a story: OLTP nodes report little free memory, so
  // OPT-IO-CPU selects a smaller degree avoiding them.
  auto policy = LoadBalancingPolicy::Create(strategies::OptIOCpu());
  ControlNode cn(20, false);
  for (int i = 0; i < 4; ++i) cn.Report(i, 0.5, 4, 0.0);    // OLTP nodes
  for (int i = 4; i < 20; ++i) cn.Report(i, 0.1, 45, 0.0);  // B nodes
  JoinPlanRequest req = PaperRequest(20);
  sim::Rng rng(1);
  JoinPlan plan = policy->Plan(req, cn, rng);
  EXPECT_EQ(plan.degree, 16);  // exactly the 16 high-memory nodes
  for (PeId pe : plan.pes) EXPECT_GE(pe, 4);
}

TEST(StrategyTest, FactoryProducesAllNames) {
  for (auto cfg :
       {strategies::PsuOptRandom(), strategies::PsuOptLUC(),
        strategies::PsuOptLUM(), strategies::PsuNoIORandom(),
        strategies::PsuNoIOLUC(), strategies::PsuNoIOLUM(),
        strategies::PmuCpuRandom(), strategies::PmuCpuLUM(),
        strategies::MinIO(), strategies::MinIOSuOpt(),
        strategies::OptIOCpu()}) {
    auto policy = LoadBalancingPolicy::Create(cfg);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->Name(), cfg.Name());
  }
}

// Property sweep: every strategy returns a valid plan (degree in [1, n],
// distinct PEs, pages_per_pe covers the hash table).
class StrategyInvariantTest
    : public ::testing::TestWithParam<StrategyConfig> {};

TEST_P(StrategyInvariantTest, PlansAreWellFormed) {
  auto policy = LoadBalancingPolicy::Create(GetParam());
  sim::Rng rng(7);
  sim::Rng load_rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    int n = static_cast<int>(load_rng.UniformInt(2, 80));
    ControlNode cn(n, trial % 2 == 0);
    for (int i = 0; i < n; ++i) {
      cn.Report(i, load_rng.Uniform(), (int)load_rng.UniformInt(0, 50),
                load_rng.Uniform());
    }
    JoinPlanRequest req;
    req.hash_table_pages = load_rng.UniformInt(1, 500);
    req.psu_opt = static_cast<int>(load_rng.UniformInt(1, 80));
    req.psu_noio = static_cast<int>(load_rng.UniformInt(1, 80));
    req.num_pes = n;
    JoinPlan plan = policy->Plan(req, cn, rng);

    ASSERT_GE(plan.degree, 1);
    ASSERT_LE(plan.degree, n);
    ASSERT_EQ(plan.pes.size(), static_cast<size_t>(plan.degree));
    std::set<PeId> unique(plan.pes.begin(), plan.pes.end());
    ASSERT_EQ(unique.size(), plan.pes.size());
    for (PeId pe : plan.pes) {
      ASSERT_GE(pe, 0);
      ASSERT_LT(pe, n);
    }
    ASSERT_GE(static_cast<int64_t>(plan.pages_per_pe) * plan.degree,
              req.hash_table_pages);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyInvariantTest,
    ::testing::Values(strategies::PsuOptRandom(), strategies::PsuOptLUC(),
                      strategies::PsuOptLUM(), strategies::PsuNoIORandom(),
                      strategies::PsuNoIOLUC(), strategies::PsuNoIOLUM(),
                      strategies::PmuCpuRandom(), strategies::PmuCpuLUM(),
                      strategies::MinIO(), strategies::MinIOSuOpt(),
                      strategies::OptIOCpu()),
    [](const ::testing::TestParamInfo<StrategyConfig>& info) {
      std::string name = info.param.Name();
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

// MIN-IO internal helpers.
TEST(StrategyInternalTest, OverflowPages) {
  std::vector<PeLoadInfo> avail(3);
  avail[0] = {0, 0, 50, 0};
  avail[1] = {1, 0, 30, 0};
  avail[2] = {2, 0, 10, 0};
  EXPECT_EQ(internal::OverflowPages(avail, 100, 1), 50);
  EXPECT_EQ(internal::OverflowPages(avail, 100, 2), 40);
  EXPECT_EQ(internal::OverflowPages(avail, 100, 3), 70);
  EXPECT_EQ(internal::OverflowPages(avail, 40, 1), 0);
}

TEST(StrategyInternalTest, MinNoIoDegree) {
  std::vector<PeLoadInfo> avail(3);
  avail[0] = {0, 0, 50, 0};
  avail[1] = {1, 0, 45, 0};
  avail[2] = {2, 0, 10, 0};
  EXPECT_EQ(internal::MinNoIoDegree(avail, 90, 3), 2);
  EXPECT_EQ(internal::MinNoIoDegree(avail, 40, 3), 1);
  EXPECT_EQ(internal::MinNoIoDegree(avail, 200, 3), 0);  // impossible
}

TEST(StrategyInternalTest, MinOverflowTieBreaking) {
  std::vector<PeLoadInfo> avail(4);
  for (int i = 0; i < 4; ++i) avail[i] = {i, 0, 0, 0};  // nothing free
  // All overflows equal: smaller-preferring picks 1, larger-preferring 4.
  EXPECT_EQ(internal::MinOverflowDegree(avail, 100, 4, false), 1);
  EXPECT_EQ(internal::MinOverflowDegree(avail, 100, 4, true), 4);
}

}  // namespace
}  // namespace pdblb
