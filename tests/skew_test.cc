// Copyright 2026 the pdblb authors. MIT license.
//
// Tests for redistribution-skew modeling (core/skew) and the skew-aware
// subjoin assignment the paper sketches in its conclusions.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/skew.h"
#include "engine/cluster.h"
#include "simkern/rng.h"

namespace pdblb {
namespace {

// ------------------------------------------------------------- ZipfWeights

TEST(ZipfWeightsTest, ThetaZeroIsUniform) {
  auto w = ZipfWeights(8, 0.0);
  ASSERT_EQ(w.size(), 8u);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 1.0 / 8.0);
}

TEST(ZipfWeightsTest, NormalizedForAnyTheta) {
  for (double theta : {0.0, 0.3, 0.5, 1.0, 2.0}) {
    auto w = ZipfWeights(13, theta);
    double sum = std::accumulate(w.begin(), w.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "theta=" << theta;
  }
}

TEST(ZipfWeightsTest, DescendingForPositiveTheta) {
  auto w = ZipfWeights(10, 0.8);
  EXPECT_TRUE(std::is_sorted(w.rbegin(), w.rend()));
  EXPECT_GT(w.front(), w.back());
}

TEST(ZipfWeightsTest, HigherThetaMoreSkew) {
  auto mild = ZipfWeights(10, 0.3);
  auto heavy = ZipfWeights(10, 1.5);
  EXPECT_GT(heavy[0], mild[0]);
  EXPECT_LT(heavy[9], mild[9]);
}

TEST(ZipfWeightsTest, SinglePartition) {
  auto w = ZipfWeights(1, 1.0);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

// ------------------------------------------------------------ SplitWeighted

TEST(SplitWeightedTest, PreservesTotalExactly) {
  sim::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    int parts = static_cast<int>(rng.UniformInt(1, 40));
    double theta = 0.1 * static_cast<double>(rng.UniformInt(0, 20));
    int64_t total = rng.UniformInt(0, 1000000);
    auto shares = SplitWeighted(total, ZipfWeights(parts, theta));
    EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), int64_t{0}),
              total);
  }
}

TEST(SplitWeightedTest, UniformWeightsMatchEvenSplit) {
  auto shares = SplitWeighted(1003, ZipfWeights(4, 0.0));
  std::sort(shares.begin(), shares.end());
  EXPECT_EQ(shares.front(), 250);
  EXPECT_EQ(shares.back(), 251);
}

TEST(SplitWeightedTest, SharesProportionalToWeights) {
  auto w = ZipfWeights(5, 1.0);
  auto shares = SplitWeighted(100000, w);
  for (size_t j = 0; j < w.size(); ++j) {
    EXPECT_NEAR(static_cast<double>(shares[j]), 100000.0 * w[j], 1.0);
  }
}

TEST(SplitWeightedTest, ZeroTotal) {
  auto shares = SplitWeighted(0, ZipfWeights(7, 1.0));
  for (int64_t s : shares) EXPECT_EQ(s, 0);
}

TEST(SplitWeightedTest, FewerItemsThanParts) {
  auto shares = SplitWeighted(3, ZipfWeights(8, 0.5));
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), int64_t{0}), 3);
  for (int64_t s : shares) EXPECT_GE(s, 0);
}

// ------------------------------------------------------------ AssignWeights

TEST(AssignWeightsTest, SkewAwareKeepsDescendingOrder) {
  sim::Rng rng(9);
  auto assigned = AssignWeights(ZipfWeights(6, 1.0), /*skew_aware=*/true, rng);
  EXPECT_TRUE(std::is_sorted(assigned.rbegin(), assigned.rend()));
}

TEST(AssignWeightsTest, ObliviousIsAPermutation) {
  sim::Rng rng(9);
  auto original = ZipfWeights(6, 1.0);
  auto assigned = AssignWeights(original, /*skew_aware=*/false, rng);
  auto sorted_original = original;
  auto sorted_assigned = assigned;
  std::sort(sorted_original.begin(), sorted_original.end());
  std::sort(sorted_assigned.begin(), sorted_assigned.end());
  EXPECT_EQ(sorted_original, sorted_assigned);
}

TEST(AssignWeightsTest, ObliviousShufflesEventually) {
  // Over several draws the permutation must differ from identity at least
  // once (probabilistic but deterministic under the fixed seed).
  sim::Rng rng(11);
  auto original = ZipfWeights(8, 1.2);
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i) {
    differs = AssignWeights(original, false, rng) != original;
  }
  EXPECT_TRUE(differs);
}

// -------------------------------------------------------------- integration

SystemConfig SkewConfig(double theta, bool aware) {
  SystemConfig cfg;
  cfg.num_pes = 20;
  cfg.strategy = strategies::PmuCpuLUM();
  cfg.strategy.skew_aware_assignment = aware;
  cfg.join_query.redistribution_skew = theta;
  cfg.join_query.arrival_rate_per_pe_qps = 0.15;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 8000.0;
  return cfg;
}

TEST(SkewIntegrationTest, SkewIncreasesResponseTime) {
  Cluster uniform(SkewConfig(0.0, false));
  MetricsReport base = uniform.Run();
  Cluster skewed(SkewConfig(1.0, false));
  MetricsReport skew = skewed.Run();
  ASSERT_GT(base.joins_completed, 0);
  ASSERT_GT(skew.joins_completed, 0);
  // The largest subjoin dominates the response time.
  EXPECT_GT(skew.join_rt_ms, base.join_rt_ms);
}

TEST(SkewIntegrationTest, SkewAwareAssignmentHelpsUnderSkew) {
  Cluster oblivious(SkewConfig(1.0, false));
  MetricsReport without = oblivious.Run();
  Cluster aware(SkewConfig(1.0, true));
  MetricsReport with = aware.Run();
  ASSERT_GT(without.joins_completed, 0);
  ASSERT_GT(with.joins_completed, 0);
  EXPECT_LT(with.join_rt_ms, without.join_rt_ms);
}

TEST(SkewIntegrationTest, NoSkewRunsUnchangedByAwarenessFlag) {
  // With theta = 0 the flag must not alter the simulation at all (same RNG
  // stream, same deterministic results).
  Cluster a(SkewConfig(0.0, false));
  MetricsReport ra = a.Run();
  Cluster b(SkewConfig(0.0, true));
  MetricsReport rb = b.Run();
  EXPECT_DOUBLE_EQ(ra.join_rt_ms, rb.join_rt_ms);
  EXPECT_EQ(ra.joins_completed, rb.joins_completed);
}

TEST(SkewIntegrationTest, StrategyNameCarriesSuffix) {
  StrategyConfig s = strategies::OptIOCpu();
  s.skew_aware_assignment = true;
  EXPECT_EQ(s.Name(), "OPT-IO-CPU (skew-aware)");
  StrategyConfig iso = strategies::PmuCpuLUM();
  iso.skew_aware_assignment = true;
  EXPECT_EQ(iso.Name(), "p_mu-cpu + LUM (skew-aware)");
}

TEST(SkewIntegrationTest, ValidateRejectsNegativeTheta) {
  SystemConfig cfg;
  cfg.join_query.redistribution_skew = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.join_query.redistribution_skew = 5.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

}  // namespace
}  // namespace pdblb
