// Copyright 2026 the pdblb authors. MIT license.
//
// Tests for the additional workload classes of the paper's Section 4 model:
// standalone scan queries (relation scan, clustered index scan,
// non-clustered index scan), update statements (with and without index
// support, strict 2PL + full 2PC), and multi-way join queries.

#include <gtest/gtest.h>

#include "catalog/database.h"
#include "engine/cluster.h"

namespace pdblb {
namespace {

SystemConfig Base(int num_pes = 10) {
  SystemConfig cfg;
  cfg.num_pes = num_pes;
  // Quiet the two-way join class by default; each test enables one class.
  cfg.join_query.arrival_rate_per_pe_qps = 0.0;
  cfg.warmup_ms = 500.0;
  cfg.measurement_ms = 6000.0;
  return cfg;
}

// ------------------------------------------------------------ scan queries

TEST(ScanQueryTest, ClusteredIndexScanCompletes) {
  SystemConfig cfg = Base();
  cfg.scan_query.enabled = true;
  cfg.scan_query.access = ScanAccess::kClusteredIndex;
  cfg.scan_query.arrival_rate_per_pe_qps = 0.2;
  Cluster cluster(cfg);
  MetricsReport r = cluster.Run();
  EXPECT_GT(r.scans_completed, 0);
  EXPECT_GT(r.scan_rt_ms, 0.0);
  EXPECT_EQ(r.joins_completed, 0);
}

TEST(ScanQueryTest, RelationScanSlowerThanIndexScan) {
  auto run = [](ScanAccess access) {
    SystemConfig cfg = Base();
    // Scaled-down relations: a full scan of the paper-sized B (50k pages)
    // takes several simulated seconds per query.
    cfg.relation_b.num_tuples = 100000;
    cfg.scan_query.enabled = true;
    cfg.scan_query.access = access;
    cfg.scan_query.selectivity = 0.01;
    cfg.scan_query.arrival_rate_per_pe_qps = 0.02;
    cfg.measurement_ms = 20000.0;
    Cluster cluster(cfg);
    return cluster.Run();
  };
  MetricsReport full = run(ScanAccess::kRelationScan);
  MetricsReport indexed = run(ScanAccess::kClusteredIndex);
  ASSERT_GT(full.scans_completed, 0);
  ASSERT_GT(indexed.scans_completed, 0);
  // A relation scan reads the whole fragment; the clustered index scan only
  // the selected 1%.
  EXPECT_GT(full.scan_rt_ms, 2.0 * indexed.scan_rt_ms);
}

TEST(ScanQueryTest, UnclusteredIndexPaysPerTupleIo) {
  auto run = [](ScanAccess access, double sel) {
    SystemConfig cfg = Base();
    cfg.relation_b.num_tuples = 100000;
    cfg.scan_query.enabled = true;
    cfg.scan_query.access = access;
    cfg.scan_query.selectivity = sel;
    cfg.scan_query.arrival_rate_per_pe_qps = 0.02;
    cfg.measurement_ms = 20000.0;
    Cluster cluster(cfg);
    return cluster.Run();
  };
  // The unclustered path does one random leaf + data I/O per tuple and must
  // lose against the clustered range read at this selectivity.
  MetricsReport unclustered = run(ScanAccess::kUnclusteredIndex, 0.005);
  MetricsReport clustered = run(ScanAccess::kClusteredIndex, 0.005);
  ASSERT_GT(unclustered.scans_completed, 0);
  EXPECT_GT(unclustered.scan_rt_ms, clustered.scan_rt_ms);
}

TEST(ScanQueryTest, ScanOnRelationATouchesOnlyANodes) {
  SystemConfig cfg = Base();
  cfg.scan_query.enabled = true;
  cfg.scan_query.relation = TargetRelation::kA;
  cfg.scan_query.arrival_rate_per_pe_qps = 0.2;
  Cluster cluster(cfg);
  MetricsReport r = cluster.Run();
  EXPECT_GT(r.scans_completed, 0);
}

TEST(ScanQueryTest, HigherSelectivityLongerScans) {
  auto run = [](double sel) {
    SystemConfig cfg = Base();
    cfg.scan_query.enabled = true;
    cfg.scan_query.selectivity = sel;
    cfg.scan_query.arrival_rate_per_pe_qps = 0.05;
    Cluster cluster(cfg);
    return cluster.Run();
  };
  MetricsReport small = run(0.005);
  MetricsReport large = run(0.05);
  ASSERT_GT(small.scans_completed, 0);
  ASSERT_GT(large.scans_completed, 0);
  EXPECT_GT(large.scan_rt_ms, small.scan_rt_ms);
}

// --------------------------------------------------------- update queries

TEST(UpdateQueryTest, IndexedUpdateCompletes) {
  SystemConfig cfg = Base();
  cfg.update_query.enabled = true;
  cfg.update_query.arrival_rate_per_pe_qps = 0.1;
  Cluster cluster(cfg);
  MetricsReport r = cluster.Run();
  EXPECT_GT(r.updates_completed, 0);
  EXPECT_GT(r.update_rt_ms, 0.0);
  EXPECT_GE(r.update_aborts, 0);
}

TEST(UpdateQueryTest, NoIndexSupportRequiresFullScan) {
  auto run = [](bool indexed) {
    SystemConfig cfg = Base();
    cfg.relation_a.num_tuples = 50000;
    cfg.update_query.enabled = true;
    cfg.update_query.index_supported = indexed;
    cfg.update_query.arrival_rate_per_pe_qps = 0.02;
    cfg.measurement_ms = 20000.0;
    Cluster cluster(cfg);
    return cluster.Run();
  };
  MetricsReport with_index = run(true);
  MetricsReport without = run(false);
  ASSERT_GT(with_index.updates_completed, 0);
  ASSERT_GT(without.updates_completed, 0);
  EXPECT_GT(without.update_rt_ms, 2.0 * with_index.update_rt_ms);
}

TEST(UpdateQueryTest, ConcurrentUpdatesSerializeOnLocks) {
  // Raise the update rate so statements overlap; strict 2PL serializes the
  // conflicting tuple ranges and every statement still completes.
  SystemConfig cfg = Base(4);
  cfg.update_query.enabled = true;
  cfg.update_query.selectivity = 0.02;
  cfg.update_query.arrival_rate_per_pe_qps = 0.5;
  Cluster cluster(cfg);
  MetricsReport r = cluster.Run();
  EXPECT_GT(r.updates_completed, 0);
}

// --------------------------------------------------------- multi-way joins

TEST(MultiwayJoinTest, ThreeWayJoinCompletes) {
  SystemConfig cfg = Base();
  cfg.multiway_join.enabled = true;
  cfg.multiway_join.ways = 3;
  cfg.multiway_join.arrival_rate_per_pe_qps = 0.05;
  Cluster cluster(cfg);
  MetricsReport r = cluster.Run();
  EXPECT_GT(r.multiway_completed, 0);
  EXPECT_GT(r.multiway_rt_ms, 0.0);
}

TEST(MultiwayJoinTest, MoreWaysTakeLonger) {
  auto run = [](int ways) {
    SystemConfig cfg = Base();
    cfg.multiway_join.enabled = true;
    cfg.multiway_join.ways = ways;
    cfg.multiway_join.arrival_rate_per_pe_qps = 0.02;
    Cluster cluster(cfg);
    return cluster.Run();
  };
  MetricsReport three = run(3);
  MetricsReport four = run(4);
  ASSERT_GT(three.multiway_completed, 0);
  ASSERT_GT(four.multiway_completed, 0);
  EXPECT_GT(four.multiway_rt_ms, three.multiway_rt_ms);
}

TEST(MultiwayJoinTest, ThreeWaySlowerThanTwoWay) {
  SystemConfig two = Base();
  two.join_query.arrival_rate_per_pe_qps = 0.02;
  Cluster c2(two);
  MetricsReport r2 = c2.Run();

  SystemConfig three = Base();
  three.multiway_join.enabled = true;
  three.multiway_join.arrival_rate_per_pe_qps = 0.02;
  Cluster c3(three);
  MetricsReport r3 = c3.Run();

  ASSERT_GT(r2.joins_completed, 0);
  ASSERT_GT(r3.multiway_completed, 0);
  EXPECT_GT(r3.multiway_rt_ms, r2.join_rt_ms);
}

TEST(MultiwayJoinTest, ValidateRejectsTwoWays) {
  SystemConfig cfg;
  cfg.multiway_join.enabled = true;
  cfg.multiway_join.ways = 2;
  EXPECT_FALSE(cfg.Validate().ok());
}

// ------------------------------------------------------------ mixed classes

TEST(MixedClassesTest, AllClassesRunTogether) {
  SystemConfig cfg = Base(10);
  cfg.join_query.arrival_rate_per_pe_qps = 0.05;
  cfg.scan_query.enabled = true;
  cfg.scan_query.arrival_rate_per_pe_qps = 0.05;
  cfg.update_query.enabled = true;
  cfg.update_query.arrival_rate_per_pe_qps = 0.05;
  cfg.multiway_join.enabled = true;
  cfg.multiway_join.arrival_rate_per_pe_qps = 0.02;
  cfg.oltp.enabled = true;
  cfg.oltp.placement = OltpPlacement::kANodes;
  cfg.oltp.tps_per_node = 20.0;
  Cluster cluster(cfg);
  MetricsReport r = cluster.Run();
  EXPECT_GT(r.joins_completed, 0);
  EXPECT_GT(r.scans_completed, 0);
  EXPECT_GT(r.updates_completed, 0);
  EXPECT_GT(r.multiway_completed, 0);
  EXPECT_GT(r.oltp_completed, 0);
}

// -------------------------------------------------------------- catalog C

TEST(RelationCTest, DeclusteredOverAllPes) {
  SystemConfig cfg;
  cfg.num_pes = 10;
  Database db(cfg);
  EXPECT_EQ(db.c().home_pes().size(), 10u);
  EXPECT_EQ(db.target(TargetRelation::kC).id(), kRelationC);
  EXPECT_EQ(db.target_nodes(TargetRelation::kA).size(),
            static_cast<size_t>(cfg.NumANodes()));
  EXPECT_EQ(db.target(TargetRelation::kB).id(), kRelationB);
}

}  // namespace
}  // namespace pdblb
