// Copyright 2026 the pdblb authors. MIT license.
//
// Unit tests for common: Status/StatusOr, units, TextTable and SystemConfig
// (including the paper's derived page counts).

#include <gtest/gtest.h>

#include "common/config.h"
#include "common/status.h"
#include "common/table.h"
#include "common/units.h"

namespace pdblb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(UnitsTest, InstructionToMsConversion) {
  // 25000 instructions at 20 MIPS = 1.25 ms (the paper's BOT cost).
  EXPECT_DOUBLE_EQ(InstructionsToMs(25000, 20.0), 1.25);
  EXPECT_DOUBLE_EQ(InstructionsToMs(20000, 20.0), 1.0);
}

TEST(UnitsTest, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(SecondsToMs(2.5), 2500.0);
  EXPECT_DOUBLE_EQ(MsToSeconds(2500.0), 2.5);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.AddRow({"xxxx", "1"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("a     long-header"), std::string::npos);
  EXPECT_NE(s.find("xxxx  1"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TextTableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(10.0, 0), "10");
}

TEST(SystemConfigTest, PaperDefaultsAreValid) {
  SystemConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok()) << cfg.Validate();
}

TEST(SystemConfigTest, PaperPageCounts) {
  SystemConfig cfg;
  // A: 250,000 tuples / 20 per page = 12,500 pages (100 MB at 8 KB).
  EXPECT_EQ(SystemConfig::RelationPages(cfg.relation_a), 12500);
  // B: 1,000,000 / 20 = 50,000 pages (400 MB).
  EXPECT_EQ(SystemConfig::RelationPages(cfg.relation_b), 50000);
}

TEST(SystemConfigTest, InnerInputAtOnePercentSelectivity) {
  SystemConfig cfg;
  cfg.join_query.scan_selectivity = 0.01;
  EXPECT_EQ(cfg.InnerInputTuples(), 2500);
  EXPECT_EQ(cfg.InnerInputPages(), 125);
  EXPECT_EQ(cfg.OuterInputTuples(), 10000);
  EXPECT_EQ(cfg.OuterInputPages(), 500);
}

TEST(SystemConfigTest, ANodeSplitMatchesPaper) {
  SystemConfig cfg;
  cfg.num_pes = 80;
  EXPECT_EQ(cfg.NumANodes(), 16);  // 20% of 80
  EXPECT_EQ(cfg.NumBNodes(), 64);  // 80%
}

TEST(SystemConfigTest, ANodeSplitAlwaysLeavesBNodes) {
  for (int n : {2, 3, 5, 10, 80}) {
    SystemConfig cfg;
    cfg.num_pes = n;
    EXPECT_GE(cfg.NumANodes(), 1);
    EXPECT_GE(cfg.NumBNodes(), 1);
    EXPECT_EQ(cfg.NumANodes() + cfg.NumBNodes(), n);
  }
}

TEST(SystemConfigTest, RejectsBadParameters) {
  SystemConfig cfg;
  cfg.num_pes = 1;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SystemConfig();
  cfg.join_query.scan_selectivity = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SystemConfig();
  cfg.join_query.fudge_factor = 0.9;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SystemConfig();
  cfg.buffer.buffer_pages = 0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SystemConfig();
  cfg.disk.disks_per_pe = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(StrategyConfigTest, NamesMatchPaperLabels) {
  EXPECT_EQ(strategies::PsuOptRandom().Name(), "p_su-opt + RANDOM");
  EXPECT_EQ(strategies::PsuNoIOLUM().Name(), "p_su-noIO + LUM");
  EXPECT_EQ(strategies::PmuCpuLUM().Name(), "p_mu-cpu + LUM");
  EXPECT_EQ(strategies::MinIO().Name(), "MIN-IO");
  EXPECT_EQ(strategies::MinIOSuOpt().Name(), "MIN-IO-SUOPT");
  EXPECT_EQ(strategies::OptIOCpu().Name(), "OPT-IO-CPU");
}

}  // namespace
}  // namespace pdblb
