// Copyright 2026 the pdblb authors. MIT license.
//
// The experiment runner's determinism contract: a sweep grid produces the
// same results — field-identical reports and byte-identical CSV — no matter
// how many worker threads execute it, because per-point seeds derive from
// (root seed, grid index) and each point runs a private Cluster.  Also
// covers the single-shot Cluster diagnostic and the frame-arena trim hook
// the runner calls between points.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/strategies.h"
#include "engine/cluster.h"
#include "runner/sweep.h"
#include "simkern/task.h"

namespace pdblb {
namespace {

// Wall-clock derived fields (wall_seconds, kernel_events_per_sec) are
// intentionally absent: they vary run to run and are excluded from the
// deterministic surface (and from the CSV).
void ExpectIdenticalReports(const MetricsReport& a, const MetricsReport& b) {
  EXPECT_DOUBLE_EQ(a.join_rt_ms, b.join_rt_ms);
  EXPECT_EQ(a.joins_completed, b.joins_completed);
  EXPECT_DOUBLE_EQ(a.avg_degree, b.avg_degree);
  EXPECT_DOUBLE_EQ(a.cpu_utilization, b.cpu_utilization);
  EXPECT_DOUBLE_EQ(a.disk_utilization, b.disk_utilization);
  EXPECT_DOUBLE_EQ(a.memory_utilization, b.memory_utilization);
  EXPECT_DOUBLE_EQ(a.temp_pages_written_per_join, b.temp_pages_written_per_join);
  EXPECT_DOUBLE_EQ(a.oltp_rt_ms, b.oltp_rt_ms);
  EXPECT_EQ(a.oltp_completed, b.oltp_completed);
  EXPECT_DOUBLE_EQ(a.scan_rt_ms, b.scan_rt_ms);
  EXPECT_DOUBLE_EQ(a.update_rt_ms, b.update_rt_ms);
  EXPECT_DOUBLE_EQ(a.multiway_rt_ms, b.multiway_rt_ms);
  EXPECT_EQ(a.lock_waits, b.lock_waits);
  EXPECT_EQ(a.kernel_events, b.kernel_events);
  EXPECT_EQ(a.kernel_handoffs, b.kernel_handoffs);
}

/// A small heterogeneous grid: two system sizes x two strategies plus one
/// single-user point, cheap enough to run several times per test binary.
runner::Sweep SmallGrid() {
  runner::Sweep sweep;
  for (int n : {8, 10}) {
    for (const StrategyConfig& strategy :
         {strategies::PmuCpuLUM(), strategies::PsuOptRandom()}) {
      SystemConfig cfg;
      cfg.num_pes = n;
      cfg.strategy = strategy;
      cfg.warmup_ms = 300.0;
      cfg.measurement_ms = 1000.0;
      sweep.Add({"grid/" + strategy.Name() + "/" + std::to_string(n),
                 strategy.Name(), static_cast<double>(n), std::to_string(n),
                 cfg});
    }
  }
  SystemConfig su;
  su.num_pes = 8;
  su.single_user_mode = true;
  su.single_user_queries = 5;
  su.strategy = strategies::PsuOptLUM();
  sweep.Add({"grid/single-user/8", "single-user", 8.0, "8", su});
  return sweep;
}

TEST(RunnerTest, ParallelMatchesSerialBitIdentical) {
  runner::Sweep sweep = SmallGrid();

  std::vector<std::vector<runner::SweepResult>> all;
  for (int jobs : {1, 2, 4}) {
    runner::SweepOptions opts;
    opts.jobs = jobs;
    all.push_back(sweep.Run(opts));
  }

  const std::string serial_csv = runner::ResultsCsv(all[0]);
  for (size_t v = 1; v < all.size(); ++v) {
    ASSERT_EQ(all[0].size(), all[v].size());
    for (size_t i = 0; i < all[0].size(); ++i) {
      EXPECT_EQ(all[v][i].grid_index, i);
      EXPECT_EQ(all[0][i].point.name, all[v][i].point.name);
      ExpectIdenticalReports(all[0][i].report, all[v][i].report);
    }
    // The acceptance bar: --jobs=N emits byte-identical CSV to --jobs=1.
    EXPECT_EQ(serial_csv, runner::ResultsCsv(all[v]));
  }
}

TEST(RunnerTest, PointSeedsDeriveFromRootSeedAndGridIndex) {
  EXPECT_EQ(runner::PointSeed(42, 0), runner::PointSeed(42, 0));
  EXPECT_NE(runner::PointSeed(42, 0), runner::PointSeed(42, 1));
  EXPECT_NE(runner::PointSeed(42, 0), runner::PointSeed(43, 0));

  runner::Sweep sweep = SmallGrid();
  runner::SweepOptions opts;
  opts.jobs = 2;
  opts.root_seed = 7;
  std::vector<runner::SweepResult> results = sweep.Run(opts);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].point.config.seed, runner::PointSeed(7, i));
  }

  // A different root seed must actually change the simulations (the short
  // window may complete zero joins, so compare the kernel event count,
  // which registers every shifted arrival).
  runner::SweepOptions other = opts;
  other.root_seed = 8;
  std::vector<runner::SweepResult> shifted = sweep.Run(other);
  EXPECT_NE(results[0].report.kernel_events, shifted[0].report.kernel_events);
}

TEST(RunnerTest, VerbatimSeedsWhenDerivationDisabled) {
  runner::Sweep sweep;
  SystemConfig cfg;
  cfg.num_pes = 8;
  cfg.seed = 4711;
  cfg.warmup_ms = 200.0;
  cfg.measurement_ms = 600.0;
  sweep.Add({"p/verbatim/0", "s", 0.0, "0", cfg});
  runner::SweepOptions opts;
  opts.derive_point_seeds = false;
  std::vector<runner::SweepResult> results = sweep.Run(opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].point.config.seed, 4711u);
}

TEST(RunnerTest, FilterKeepsMatchingPointsInGridOrder) {
  runner::Sweep sweep = SmallGrid();
  const size_t before = sweep.size();
  size_t kept = sweep.Filter("/10");
  EXPECT_LT(kept, before);
  EXPECT_EQ(kept, sweep.size());
  ASSERT_EQ(kept, 2u);
  for (const runner::SweepPoint& p : sweep.points()) {
    EXPECT_NE(p.name.find("/10"), std::string::npos);
  }
  // Seeds follow the declared grid index, not the post-filter position:
  // the first survivor was declared at index 2, so a filtered run is a
  // true subset of the full sweep.
  std::vector<runner::SweepResult> results = sweep.Run({});
  EXPECT_EQ(results[0].point.config.seed, runner::PointSeed(42, 2));

  std::vector<runner::SweepResult> full = SmallGrid().Run({});
  ASSERT_EQ(full[2].point.name, results[0].point.name);
  ExpectIdenticalReports(full[2].report, results[0].report);
}

TEST(RunnerTest, CallbackSeesEveryPointExactlyOnce) {
  runner::Sweep sweep = SmallGrid();
  std::atomic<size_t> calls{0};
  size_t max_finished = 0;
  runner::SweepOptions opts;
  opts.jobs = 2;
  opts.on_point_done = [&](const runner::SweepPoint&, const MetricsReport&,
                           size_t finished, size_t total) {
    calls.fetch_add(1);
    EXPECT_EQ(total, sweep.size());
    if (finished > max_finished) max_finished = finished;  // serialized
  };
  sweep.Run(opts);
  EXPECT_EQ(calls.load(), sweep.size());
  EXPECT_EQ(max_finished, sweep.size());
}

TEST(RunnerTest, ClusterRunIsSingleShot) {
  SystemConfig cfg;
  cfg.num_pes = 8;
  cfg.warmup_ms = 200.0;
  cfg.measurement_ms = 600.0;
  Cluster cluster(cfg);
  cluster.Run();
  EXPECT_THROW(cluster.Run(), std::logic_error);
}

TEST(RunnerTest, TrimThreadCachePreservesDeterminism) {
  SystemConfig cfg;
  cfg.num_pes = 8;
  cfg.warmup_ms = 300.0;
  cfg.measurement_ms = 1000.0;

  Cluster first(cfg);
  MetricsReport a = first.Run();
  // Empty this thread's recycled frame lists (what a sweep worker does
  // after every point), then run again: the arena refills lazily and the
  // simulation must be unaffected.
  sim::TrimFrameArenaThreadCache();
  Cluster second(cfg);
  MetricsReport b = second.Run();
  ExpectIdenticalReports(a, b);
  // Trimming twice in a row (empty free lists) must be a no-op.
  sim::TrimFrameArenaThreadCache();
  sim::TrimFrameArenaThreadCache();
}

}  // namespace
}  // namespace pdblb
