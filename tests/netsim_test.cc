// Copyright 2026 the pdblb authors. MIT license.
//
// Unit tests for the network model: packet disassembly, CPU cost charging
// at both endpoints, wire latency and local-transfer shortcuts.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "netsim/network.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"

namespace pdblb {
namespace {

struct Fixture {
  sim::Scheduler sched;
  std::vector<std::unique_ptr<sim::Resource>> cpus;
  NetworkConfig config;
  CpuCosts costs;
  std::unique_ptr<Network> net;

  explicit Fixture(int pes = 4) {
    for (int i = 0; i < pes; ++i) {
      cpus.push_back(std::make_unique<sim::Resource>(sched, 1, "cpu"));
    }
    std::vector<sim::Resource*> cpu_table;
    for (auto& cpu : cpus) cpu_table.push_back(cpu.get());
    net = std::make_unique<Network>(sched, config, costs, 20.0,
                                    std::move(cpu_table));
  }
};

TEST(NetworkTest, PacketsForBytes) {
  Fixture f;
  EXPECT_EQ(f.net->PacketsFor(0), 1);
  EXPECT_EQ(f.net->PacketsFor(1), 1);
  EXPECT_EQ(f.net->PacketsFor(8192), 1);
  EXPECT_EQ(f.net->PacketsFor(8193), 2);
  EXPECT_EQ(f.net->PacketsFor(5 * 8192), 5);
}

TEST(NetworkTest, SinglePacketTransferTiming) {
  Fixture f;
  SimTime end = -1;
  f.sched.Spawn([](Fixture& fx, SimTime* out) -> sim::Task<> {
    co_await fx.net->Transfer(0, 1, 100);
    *out = fx.sched.Now();
  }(f, &end));
  f.sched.Run();
  // Sender (5000+5000)/20k = 0.5 ms, wire 0.1 ms, receiver
  // (10000+5000)/20k = 0.75 ms.
  EXPECT_NEAR(end, 0.5 + 0.1 + 0.75, 1e-9);
  EXPECT_EQ(f.net->messages_sent(), 1);
  EXPECT_EQ(f.net->packets_sent(), 1);
}

TEST(NetworkTest, MultiPacketMessageChargesPerPacket) {
  Fixture f;
  SimTime end = -1;
  f.sched.Spawn([](Fixture& fx, SimTime* out) -> sim::Task<> {
    co_await fx.net->Transfer(0, 1, 3 * 8192);
    *out = fx.sched.Now();
  }(f, &end));
  f.sched.Run();
  // Sender (5000+3*5000)/20k = 1.0; wire 0.3; receiver (10000+3*5000)/20k
  // = 1.25.
  EXPECT_NEAR(end, 1.0 + 0.3 + 1.25, 1e-9);
  EXPECT_EQ(f.net->packets_sent(), 3);
  EXPECT_EQ(f.net->bytes_sent(), 3 * 8192);
}

TEST(NetworkTest, LocalTransferIsFree) {
  Fixture f;
  SimTime end = -1;
  f.sched.Spawn([](Fixture& fx, SimTime* out) -> sim::Task<> {
    co_await fx.net->Transfer(2, 2, 1 << 20);
    *out = fx.sched.Now();
  }(f, &end));
  f.sched.Run();
  EXPECT_DOUBLE_EQ(end, 0.0);
  EXPECT_EQ(f.net->messages_sent(), 0);
}

TEST(NetworkTest, SenderCpuContentionDelaysTransfer) {
  Fixture f;
  SimTime end = -1;
  // Occupy the sender CPU for 10 ms; the transfer must queue behind it.
  f.sched.Spawn([](Fixture& fx) -> sim::Task<> {
    co_await fx.cpus[0]->Use(10.0);
  }(f));
  f.sched.Spawn([](Fixture& fx, SimTime* out) -> sim::Task<> {
    co_await fx.net->Transfer(0, 1, 100);
    *out = fx.sched.Now();
  }(f, &end));
  f.sched.Run();
  EXPECT_NEAR(end, 10.0 + 1.35, 1e-9);
}

TEST(NetworkTest, ControlMessageIsOnePacket) {
  Fixture f;
  f.sched.Spawn([](Fixture& fx) -> sim::Task<> {
    co_await fx.net->ControlMessage(0, 3);
  }(f));
  f.sched.Run();
  EXPECT_EQ(f.net->packets_sent(), 1);
}

TEST(NetworkTest, StatsReset) {
  Fixture f;
  f.sched.Spawn([](Fixture& fx) -> sim::Task<> {
    co_await fx.net->Transfer(0, 1, 8192 * 2);
  }(f));
  f.sched.Run();
  EXPECT_GT(f.net->messages_sent(), 0);
  f.net->ResetStats();
  EXPECT_EQ(f.net->messages_sent(), 0);
  EXPECT_EQ(f.net->packets_sent(), 0);
  EXPECT_EQ(f.net->bytes_sent(), 0);
}

}  // namespace
}  // namespace pdblb
