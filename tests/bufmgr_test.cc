// Copyright 2026 the pdblb authors. MIT license.
//
// Unit tests for the buffer manager: LRU behavior, reservations, the FCFS
// memory queue, OLTP frame stealing and the memory-availability estimates.

#include <gtest/gtest.h>

#include "bufmgr/buffer_manager.h"
#include "iosim/disk.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"

namespace pdblb {
namespace {

struct Fixture {
  sim::Scheduler sched;
  sim::Resource cpu{sched, 1, "cpu"};
  CpuCosts costs;
  DiskConfig disk_config;
  BufferConfig buf_config;
  std::unique_ptr<DiskArray> disks;
  std::unique_ptr<BufferManager> buffer;

  explicit Fixture(int pages = 10) {
    buf_config.buffer_pages = pages;
    disks = std::make_unique<DiskArray>(sched, disk_config, costs, 20.0, cpu,
                                        "t");
    buffer =
        std::make_unique<BufferManager>(sched, buf_config, *disks, "buf");
  }
};

sim::Task<> FetchOne(BufferManager& buf, PageKey page, bool* hit = nullptr,
                     bool oltp = false) {
  bool h = co_await buf.Fetch(page, AccessPattern::kRandom, oltp);
  if (hit != nullptr) *hit = h;
}

TEST(BufferTest, MissThenHit) {
  Fixture f;
  bool hit1 = true, hit2 = false;
  f.sched.Spawn([](BufferManager& b, bool* h1, bool* h2) -> sim::Task<> {
    *h1 = co_await b.Fetch(PageKey{1, 0}, AccessPattern::kRandom);
    *h2 = co_await b.Fetch(PageKey{1, 0}, AccessPattern::kRandom);
  }(*f.buffer, &hit1, &hit2));
  f.sched.Run();
  EXPECT_FALSE(hit1);
  EXPECT_TRUE(hit2);
  EXPECT_EQ(f.buffer->buffer_hits(), 1);
  EXPECT_EQ(f.buffer->buffer_misses(), 1);
}

TEST(BufferTest, LruEvictionAtCapacity) {
  Fixture f(4);
  f.sched.Spawn([](BufferManager& b) -> sim::Task<> {
    for (int i = 0; i < 5; ++i) {
      co_await b.Fetch(PageKey{1, i}, AccessPattern::kRandom);
    }
  }(*f.buffer));
  f.sched.Run();
  EXPECT_FALSE(f.buffer->IsResident(PageKey{1, 0}));  // LRU victim
  EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 4}));
}

TEST(BufferTest, TouchRefreshesLruPosition) {
  Fixture f(4);
  f.sched.Spawn([](BufferManager& b) -> sim::Task<> {
    for (int i = 0; i < 4; ++i) {
      co_await b.Fetch(PageKey{1, i}, AccessPattern::kRandom);
    }
    co_await b.Fetch(PageKey{1, 0}, AccessPattern::kRandom);  // refresh 0
    co_await b.Fetch(PageKey{1, 9}, AccessPattern::kRandom);  // evicts 1
  }(*f.buffer));
  f.sched.Run();
  EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 0}));
  EXPECT_FALSE(f.buffer->IsResident(PageKey{1, 1}));
}

TEST(BufferTest, DirtyPageWrittenBackOnEviction) {
  Fixture f(2);
  f.sched.Spawn([](BufferManager& b) -> sim::Task<> {
    co_await b.Fetch(PageKey{1, 0}, AccessPattern::kRandom);
    b.MarkDirty(PageKey{1, 0});
    co_await b.Fetch(PageKey{1, 1}, AccessPattern::kRandom);
    co_await b.Fetch(PageKey{1, 2}, AccessPattern::kRandom);  // evicts 0
  }(*f.buffer));
  f.sched.Run();
  EXPECT_EQ(f.buffer->dirty_writebacks(), 1);
  EXPECT_GE(f.disks->physical_writes(), 1);
}

TEST(BufferTest, TryReserveRespectsCapacity) {
  Fixture f(10);
  EXPECT_EQ(f.buffer->TryReserve(6), 6);
  EXPECT_EQ(f.buffer->reserved(), 6);
  EXPECT_EQ(f.buffer->TryReserve(6), 4);  // only 4 left
  EXPECT_EQ(f.buffer->TryReserve(1), 0);
  f.buffer->ReleaseReservation(10);
  EXPECT_EQ(f.buffer->reserved(), 0);
}

TEST(BufferTest, ReservationEvictsResidentPages) {
  Fixture f(4);
  f.sched.Spawn([](BufferManager& b) -> sim::Task<> {
    for (int i = 0; i < 4; ++i) {
      co_await b.Fetch(PageKey{1, i}, AccessPattern::kRandom);
    }
  }(*f.buffer));
  f.sched.Run();
  EXPECT_EQ(f.buffer->TryReserve(3), 3);
  // Only one frame may stay resident.
  int resident = 0;
  for (int i = 0; i < 4; ++i) {
    if (f.buffer->IsResident(PageKey{1, i})) ++resident;
  }
  EXPECT_EQ(resident, 1);
}

TEST(BufferTest, ReserveWaitQueuesFcfs) {
  Fixture f(10);
  std::vector<int> grants;
  auto waiter = [](BufferManager& b, int min, int want,
                   std::vector<int>* out) -> sim::Task<> {
    int got = co_await b.ReserveWait(min, want);
    out->push_back(got);
  };
  f.sched.Spawn(waiter(*f.buffer, 6, 8, &grants));   // gets 8 immediately
  f.sched.Spawn(waiter(*f.buffer, 5, 5, &grants));   // waits (only 2 free)
  f.sched.Spawn(waiter(*f.buffer, 1, 1, &grants));   // waits behind (FCFS)
  f.sched.RunUntil(1.0);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0], 8);

  f.sched.ScheduleCallback(2.0, [&] { f.buffer->ReleaseReservation(8); });
  f.sched.Run();
  ASSERT_EQ(grants.size(), 3u);
  EXPECT_EQ(grants[1], 5);
  EXPECT_EQ(grants[2], 1);
}

TEST(BufferTest, MemoryQueueHeadBlocksLaterSmallRequests) {
  Fixture f(10);
  std::vector<int> order;
  auto waiter = [](BufferManager& b, int min, int id,
                   std::vector<int>* out) -> sim::Task<> {
    (void)co_await b.ReserveWait(min, min);
    out->push_back(id);
  };
  EXPECT_EQ(f.buffer->TryReserve(9), 9);  // 1 page free
  f.sched.Spawn(waiter(*f.buffer, 5, 1, &order));  // blocked
  f.sched.Spawn(waiter(*f.buffer, 1, 2, &order));  // would fit, but FCFS
  f.sched.RunUntil(1.0);
  EXPECT_TRUE(order.empty());
  f.sched.ScheduleCallback(2.0, [&] { f.buffer->ReleaseReservation(9); });
  f.sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

/// Test double implementing MemoryVictim.
class FakeVictim : public MemoryVictim {
 public:
  explicit FakeVictim(int pages) : pages_(pages) {}
  int StealPages(int wanted) override {
    int got = std::min(wanted, pages_);
    pages_ -= got;
    stolen_ += got;
    return got;
  }
  int ReservedPages() const override { return pages_; }
  int stolen() const { return stolen_; }

 private:
  int pages_;
  int stolen_ = 0;
};

TEST(BufferTest, OltpStealsFromFattestVictim) {
  Fixture f(10);
  FakeVictim small(2), big(8);
  EXPECT_EQ(f.buffer->TryReserve(10), 10);  // all reserved (2 + 8)
  f.buffer->RegisterVictim(&small);
  f.buffer->RegisterVictim(&big);

  f.sched.Spawn([](BufferManager& b) -> sim::Task<> {
    co_await b.Fetch(PageKey{1, 0}, AccessPattern::kRandom,
                     /*priority_oltp=*/true);
  }(*f.buffer));
  f.sched.Run();
  EXPECT_GE(big.stolen(), 1);
  EXPECT_EQ(small.stolen(), 0);
  EXPECT_GE(f.buffer->pages_stolen(), 1);
  EXPECT_TRUE(f.buffer->IsResident(PageKey{1, 0}));
}

TEST(BufferTest, NonPriorityFetchDoesNotSteal) {
  Fixture f(10);
  FakeVictim victim(10);
  EXPECT_EQ(f.buffer->TryReserve(10), 10);
  f.buffer->RegisterVictim(&victim);
  f.sched.Spawn([](BufferManager& b) -> sim::Task<> {
    co_await b.Fetch(PageKey{1, 0}, AccessPattern::kRandom,
                     /*priority_oltp=*/false);
  }(*f.buffer));
  f.sched.Run();
  EXPECT_EQ(victim.stolen(), 0);
  // Page read but not cached: every frame is reserved.
  EXPECT_FALSE(f.buffer->IsResident(PageKey{1, 0}));
}

TEST(BufferTest, HotPagesRequireTwoTouches) {
  Fixture f(10);
  f.buf_config.working_set_window_ms = 1000.0;
  f.sched.Spawn([](BufferManager& b) -> sim::Task<> {
    co_await b.Fetch(PageKey{1, 0}, AccessPattern::kRandom);  // one touch
    co_await b.Fetch(PageKey{1, 1}, AccessPattern::kRandom);
    co_await b.Fetch(PageKey{1, 1}, AccessPattern::kRandom);  // two touches
  }(*f.buffer));
  f.sched.Run();
  EXPECT_EQ(f.buffer->HotPages(), 1);
  EXPECT_EQ(f.buffer->TouchedPages(), 2);
}

TEST(BufferTest, AvailabilityEstimates) {
  Fixture f(10);
  f.sched.Spawn([](BufferManager& b) -> sim::Task<> {
    co_await b.Fetch(PageKey{1, 0}, AccessPattern::kRandom);
    co_await b.Fetch(PageKey{1, 0}, AccessPattern::kRandom);  // hot
    co_await b.Fetch(PageKey{1, 1}, AccessPattern::kRandom);  // touched only
  }(*f.buffer));
  f.sched.Run();
  EXPECT_EQ(f.buffer->TryReserve(2), 2);
  // Reported: 10 - 2 reserved - 2 touched = 6.
  EXPECT_EQ(f.buffer->AvailablePages(), 6);
  // Grantable: 10 - 2 reserved - 1 hot = 7.
  EXPECT_EQ(f.buffer->GrantablePages(), 7);
  EXPECT_NEAR(f.buffer->MemoryUtilization(), 0.3, 1e-9);  // (2+1)/10
}

TEST(BufferTest, FetchRangeReadsMissingRunsOnly) {
  Fixture f(20);
  int64_t hits = -1;
  f.sched.Spawn([](BufferManager& b, int64_t* out) -> sim::Task<> {
    co_await b.Fetch(PageKey{1, 2}, AccessPattern::kRandom);  // pre-load
    *out = co_await b.FetchRange(PageKey{1, 0}, 8);
  }(*f.buffer, &hits));
  f.sched.Run();
  EXPECT_EQ(hits, 1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(f.buffer->IsResident(PageKey{1, i})) << i;
  }
}

TEST(BufferTest, WorkingSetDecaysOverTime) {
  Fixture f(10);
  f.sched.Spawn([](BufferManager& b) -> sim::Task<> {
    co_await b.Fetch(PageKey{1, 5}, AccessPattern::kRandom);
    co_await b.Fetch(PageKey{1, 5}, AccessPattern::kRandom);
  }(*f.buffer));
  f.sched.Run();
  EXPECT_EQ(f.buffer->HotPages(), 1);
  // Advance time past the window: the page is no longer hot or touched.
  f.sched.ScheduleCallback(10000.0, [] {});
  f.sched.Run();
  EXPECT_EQ(f.buffer->HotPages(), 0);
  EXPECT_EQ(f.buffer->TouchedPages(), 0);
}

}  // namespace
}  // namespace pdblb
