// Copyright 2026 the pdblb authors. MIT license.
//
// Unit tests for the disk subsystem: the paper's timing parameters,
// prefetching, the controller LRU cache, striping and the log disk.

#include <gtest/gtest.h>

#include "iosim/disk.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"

namespace pdblb {
namespace {

struct Fixture {
  sim::Scheduler sched;
  sim::Resource cpu{sched, 1, "cpu"};
  CpuCosts costs;
  DiskConfig config;

  std::unique_ptr<DiskArray> MakeDisks() {
    return std::make_unique<DiskArray>(sched, config, costs, 20.0, cpu, "t");
  }
};

TEST(DiskTest, RandomReadTiming) {
  Fixture f;
  auto disks = f.MakeDisks();
  SimTime end = -1;
  f.sched.Spawn([](Fixture& fx, DiskArray& d, SimTime* out) -> sim::Task<> {
    co_await d.Read(PageKey{1, 0}, AccessPattern::kRandom);
    *out = fx.sched.Now();
  }(f, *disks, &end));
  f.sched.Run();
  // io_overhead CPU (3000/20MIPS = 0.15) + disk (15 + 1*1) + controller (1)
  // + transmission (0.4) = 17.55 ms.
  EXPECT_NEAR(end, 17.55, 1e-9);
  EXPECT_EQ(disks->physical_reads(), 1);
  EXPECT_EQ(disks->cache_hits(), 0);
}

TEST(DiskTest, SequentialReadPrefetchesFourPages) {
  Fixture f;
  auto disks = f.MakeDisks();
  SimTime end = -1;
  f.sched.Spawn([](DiskArray& d, sim::Scheduler& s, SimTime* out) -> sim::Task<> {
    for (int i = 0; i < 4; ++i) {
      co_await d.Read(PageKey{1, i}, AccessPattern::kSequential);
    }
    *out = s.Now();
  }(*disks, f.sched, &end));
  f.sched.Run();
  // First read: 0.15 + (15+4) + 4*1 + 0.4 = 23.55; next three are cache
  // hits: 0.15 + 1 + 0.4 = 1.55 each.  Total 28.2 ms.
  EXPECT_NEAR(end, 23.55 + 3 * 1.55, 1e-9);
  EXPECT_EQ(disks->physical_reads(), 1);  // one physical I/O for 4 pages
  EXPECT_EQ(disks->cache_hits(), 3);
  EXPECT_EQ(disks->logical_reads(), 4);
}

TEST(DiskTest, PaperPrefetchAnchor19ms) {
  // "For a prefetching of 4 pages, the average disk access time is 19 ms."
  Fixture f;
  auto disks = f.MakeDisks();
  (void)disks;
  EXPECT_DOUBLE_EQ(
      f.config.avg_access_time_ms + 4 * f.config.prefetch_delay_per_page_ms,
      19.0);
}

TEST(DiskTest, CacheEvictsLru) {
  Fixture f;
  f.config.disk_cache_pages = 4;
  f.config.prefetch_pages = 1;
  auto disks = f.MakeDisks();
  f.sched.Spawn([](DiskArray& d) -> sim::Task<> {
    // Fill cache with pages 0..3, then read 4 (evicts 0), then 0 again.
    for (int i = 0; i < 5; ++i) {
      co_await d.Read(PageKey{1, i}, AccessPattern::kRandom);
    }
    co_await d.Read(PageKey{1, 0}, AccessPattern::kRandom);
  }(*disks));
  f.sched.Run();
  EXPECT_EQ(disks->physical_reads(), 6);  // page 0 had to be re-read
  EXPECT_EQ(disks->cache_hits(), 0);
}

TEST(DiskTest, CacheHitAvoidsDiskAccess) {
  Fixture f;
  f.config.prefetch_pages = 1;
  auto disks = f.MakeDisks();
  f.sched.Spawn([](DiskArray& d) -> sim::Task<> {
    co_await d.Read(PageKey{1, 7}, AccessPattern::kRandom);
    co_await d.Read(PageKey{1, 7}, AccessPattern::kRandom);
  }(*disks));
  f.sched.Run();
  EXPECT_EQ(disks->physical_reads(), 1);
  EXPECT_EQ(disks->cache_hits(), 1);
}

TEST(DiskTest, StripedReadUsesMultipleDisks) {
  Fixture f;
  f.config.disk_cache_pages = 0;  // force physical I/O
  auto disks = f.MakeDisks();
  SimTime end = -1;
  f.sched.Spawn([](DiskArray& d, sim::Scheduler& s, SimTime* out) -> sim::Task<> {
    co_await d.ReadStriped(PageKey{1, 0}, 40);  // 10 batches of 4
    *out = s.Now();
  }(*disks, f.sched, &end));
  f.sched.Run();
  // 10 batches in parallel across 10 disks: wall time far below the serial
  // 10 * 19 ms; bounded below by one batch (19) + controller serialization
  // (40 pages * 1 ms).
  EXPECT_EQ(disks->physical_reads(), 10);
  EXPECT_LT(end, 80.0);
  EXPECT_GE(end, 19.0);
}

TEST(DiskTest, StripedReadServesCachedPagesCheaply) {
  Fixture f;
  auto disks = f.MakeDisks();
  SimTime first = -1, second = -1;
  f.sched.Spawn([](DiskArray& d, sim::Scheduler& s, SimTime* t1,
                   SimTime* t2) -> sim::Task<> {
    co_await d.ReadStriped(PageKey{1, 0}, 16);
    *t1 = s.Now();
    co_await d.ReadStriped(PageKey{1, 0}, 16);  // all cached now
    *t2 = s.Now() - *t1;
  }(*disks, f.sched, &first, &second));
  f.sched.Run();
  EXPECT_LT(second, first);
  EXPECT_EQ(disks->physical_reads(), 4);
}

TEST(DiskTest, WriteBatchTimingAndCaching) {
  Fixture f;
  auto disks = f.MakeDisks();
  f.sched.Spawn([](DiskArray& d) -> sim::Task<> {
    co_await d.WriteBatch(PageKey{-1, 0}, 4);
    // Reading back the just-written pages hits the controller cache.
    co_await d.Read(PageKey{-1, 2}, AccessPattern::kSequential);
  }(*disks));
  f.sched.Run();
  EXPECT_EQ(disks->physical_writes(), 1);
  EXPECT_EQ(disks->cache_hits(), 1);
}

TEST(DiskTest, LogWriteUsesDedicatedDisk) {
  Fixture f;
  auto disks = f.MakeDisks();
  SimTime end = -1;
  f.sched.Spawn([](DiskArray& d, sim::Scheduler& s, SimTime* out) -> sim::Task<> {
    co_await d.LogWrite();
    *out = s.Now();
  }(*disks, f.sched, &end));
  f.sched.Run();
  EXPECT_NEAR(end, 0.15 + 5.0, 1e-9);  // CPU overhead + log append
  EXPECT_EQ(disks->physical_reads(), 0);
  EXPECT_DOUBLE_EQ(disks->DataDiskUtilization(), 0.0);  // log disk separate
}

TEST(DiskTest, UtilizationAccounting) {
  Fixture f;
  f.config.disks_per_pe = 2;
  f.config.disk_cache_pages = 0;
  f.config.prefetch_pages = 1;
  auto disks = f.MakeDisks();
  f.sched.Spawn([](DiskArray& d) -> sim::Task<> {
    co_await d.Read(PageKey{1, 0}, AccessPattern::kRandom);
  }(*disks));
  f.sched.Run();
  // One disk busy 16 ms out of ~17.55 total on a 2-disk array.
  EXPECT_GT(disks->DataDiskUtilization(), 0.3);
  EXPECT_LT(disks->DataDiskUtilization(), 0.5);
  disks->ResetStats();
  EXPECT_EQ(disks->physical_reads(), 0);
}

// Parameterized: striped read completes all pages for various counts.
class StripedReadTest : public ::testing::TestWithParam<int> {};

TEST_P(StripedReadTest, ReadsAllPages) {
  Fixture f;
  f.config.disk_cache_pages = 0;
  auto disks = f.MakeDisks();
  int n = GetParam();
  f.sched.Spawn([](DiskArray& d, int count) -> sim::Task<> {
    co_await d.ReadStriped(PageKey{1, 0}, count);
  }(*disks, n));
  f.sched.Run();
  EXPECT_EQ(disks->logical_reads(), n);
  int expected_batches = (n + f.config.prefetch_pages - 1) /
                         f.config.prefetch_pages;
  EXPECT_EQ(disks->physical_reads(), expected_batches);
}

INSTANTIATE_TEST_SUITE_P(Counts, StripedReadTest,
                         ::testing::Values(1, 3, 4, 5, 16, 17, 63, 200));

}  // namespace
}  // namespace pdblb
