// Copyright 2026 the pdblb authors. MIT license.
//
// Unit tests for concurrency control: strict 2PL grant/wait rules, FCFS
// fairness, lock upgrades, and central global deadlock detection.

#include <gtest/gtest.h>

#include "lockmgr/deadlock_detector.h"
#include "lockmgr/lock_manager.h"
#include "simkern/scheduler.h"

namespace pdblb {
namespace {

sim::Task<> LockOne(LockManager& lm, TxnId txn, LockKey key, LockMode mode,
                    std::vector<std::pair<TxnId, bool>>* log) {
  bool ok = co_await lm.Lock(txn, key, mode);
  log->push_back({txn, ok});
}

TEST(LockManagerTest, SharedLocksAreCompatible) {
  sim::Scheduler sched;
  LockManager lm(sched);
  std::vector<std::pair<TxnId, bool>> log;
  sched.Spawn(LockOne(lm, 1, {1, 7}, LockMode::kShared, &log));
  sched.Spawn(LockOne(lm, 2, {1, 7}, LockMode::kShared, &log));
  sched.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].second);
  EXPECT_TRUE(log[1].second);
  EXPECT_EQ(lm.lock_waits(), 0);
}

TEST(LockManagerTest, ExclusiveConflictsWait) {
  sim::Scheduler sched;
  LockManager lm(sched);
  std::vector<std::pair<TxnId, bool>> log;
  sched.Spawn(LockOne(lm, 1, {1, 7}, LockMode::kExclusive, &log));
  sched.Spawn(LockOne(lm, 2, {1, 7}, LockMode::kExclusive, &log));
  sched.RunUntil(1.0);
  ASSERT_EQ(log.size(), 1u);  // txn 2 waits
  EXPECT_EQ(lm.lock_waits(), 1);

  lm.ReleaseAll(1);
  sched.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].first, 2);
  EXPECT_TRUE(log[1].second);
}

TEST(LockManagerTest, ReleaseGrantsAllCompatibleWaiters) {
  sim::Scheduler sched;
  LockManager lm(sched);
  std::vector<std::pair<TxnId, bool>> log;
  sched.Spawn(LockOne(lm, 1, {1, 7}, LockMode::kExclusive, &log));
  sched.Spawn(LockOne(lm, 2, {1, 7}, LockMode::kShared, &log));
  sched.Spawn(LockOne(lm, 3, {1, 7}, LockMode::kShared, &log));
  sched.RunUntil(1.0);
  lm.ReleaseAll(1);
  sched.Run();
  ASSERT_EQ(log.size(), 3u);  // both shared waiters granted together
}

TEST(LockManagerTest, FcfsPreventsStarvation) {
  sim::Scheduler sched;
  LockManager lm(sched);
  std::vector<std::pair<TxnId, bool>> log;
  sched.Spawn(LockOne(lm, 1, {1, 7}, LockMode::kShared, &log));
  sched.Spawn(LockOne(lm, 2, {1, 7}, LockMode::kExclusive, &log));  // waits
  sched.Spawn(LockOne(lm, 3, {1, 7}, LockMode::kShared, &log));  // behind X
  sched.RunUntil(1.0);
  EXPECT_EQ(log.size(), 1u);  // the late S request must not jump the queue
  lm.ReleaseAll(1);
  sched.Run();
  ASSERT_EQ(log.size(), 2u);  // X granted; S still behind the X holder
  EXPECT_EQ(log[1].first, 2);
  lm.ReleaseAll(2);
  sched.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[2].first, 3);
}

TEST(LockManagerTest, ReRequestIsGranted) {
  sim::Scheduler sched;
  LockManager lm(sched);
  std::vector<std::pair<TxnId, bool>> log;
  sched.Spawn(LockOne(lm, 1, {1, 7}, LockMode::kShared, &log));
  sched.Spawn(LockOne(lm, 1, {1, 7}, LockMode::kShared, &log));
  sched.Run();
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(lm.lock_waits(), 0);
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  sim::Scheduler sched;
  LockManager lm(sched);
  std::vector<std::pair<TxnId, bool>> log;
  sched.Spawn(LockOne(lm, 1, {1, 7}, LockMode::kShared, &log));
  sched.Spawn(LockOne(lm, 1, {1, 7}, LockMode::kExclusive, &log));
  sched.Spawn(LockOne(lm, 2, {1, 7}, LockMode::kShared, &log));  // must wait
  sched.RunUntil(1.0);
  EXPECT_EQ(log.size(), 2u);
  lm.ReleaseAll(1);
  sched.Run();
  EXPECT_EQ(log.size(), 3u);
}

TEST(LockManagerTest, ReleaseAllClearsState) {
  sim::Scheduler sched;
  LockManager lm(sched);
  std::vector<std::pair<TxnId, bool>> log;
  sched.Spawn(LockOne(lm, 1, {1, 1}, LockMode::kExclusive, &log));
  sched.Spawn(LockOne(lm, 1, {1, 2}, LockMode::kExclusive, &log));
  sched.Run();
  EXPECT_TRUE(lm.HoldsAnyLock(1));
  lm.ReleaseAll(1);
  EXPECT_FALSE(lm.HoldsAnyLock(1));
}

TEST(LockManagerTest, WaitForEdgesReported) {
  sim::Scheduler sched;
  LockManager lm(sched);
  std::vector<std::pair<TxnId, bool>> log;
  sched.Spawn(LockOne(lm, 1, {1, 7}, LockMode::kExclusive, &log));
  sched.Spawn(LockOne(lm, 2, {1, 7}, LockMode::kExclusive, &log));
  sched.RunUntil(1.0);
  std::vector<WaitForEdge> edges;
  lm.CollectWaitForEdges(&edges);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].waiter, 2);
  EXPECT_EQ(edges[0].holder, 1);
}

TEST(LockManagerTest, AbortWaiterResumesWithFailure) {
  sim::Scheduler sched;
  LockManager lm(sched);
  std::vector<std::pair<TxnId, bool>> log;
  sched.Spawn(LockOne(lm, 1, {1, 7}, LockMode::kExclusive, &log));
  sched.Spawn(LockOne(lm, 2, {1, 7}, LockMode::kExclusive, &log));
  sched.RunUntil(1.0);
  EXPECT_TRUE(lm.AbortWaiter(2));
  sched.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].first, 2);
  EXPECT_FALSE(log[1].second);  // aborted
  EXPECT_EQ(lm.deadlock_aborts(), 1);
}

TEST(DeadlockDetectorTest, FindsSimpleCycle) {
  std::vector<WaitForEdge> edges{{1, 2}, {2, 1}};
  auto victims = DeadlockDetector::FindCycleVictims(edges);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2);  // youngest (largest id) on the cycle
}

TEST(DeadlockDetectorTest, NoCycleNoVictims) {
  std::vector<WaitForEdge> edges{{1, 2}, {2, 3}, {1, 3}};
  EXPECT_TRUE(DeadlockDetector::FindCycleVictims(edges).empty());
}

TEST(DeadlockDetectorTest, FindsLongerCycle) {
  std::vector<WaitForEdge> edges{{1, 2}, {2, 3}, {3, 4}, {4, 1}};
  auto victims = DeadlockDetector::FindCycleVictims(edges);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 4);
}

TEST(DeadlockDetectorTest, MultipleIndependentCycles) {
  std::vector<WaitForEdge> edges{{1, 2}, {2, 1}, {5, 6}, {6, 5}};
  auto victims = DeadlockDetector::FindCycleVictims(edges);
  ASSERT_EQ(victims.size(), 2u);
}

TEST(DeadlockDetectorTest, ResolvesCrossPeDeadlock) {
  sim::Scheduler sched;
  LockManager lm0(sched), lm1(sched);
  DeadlockDetector detector(sched, {&lm0, &lm1}, 10.0);

  std::vector<std::pair<TxnId, bool>> log;
  // txn 1 holds k0@PE0, txn 2 holds k1@PE1; after a delay (so that both
  // first acquisitions interleave) each requests the other's lock.
  auto txn1 = [](sim::Scheduler& s, LockManager& a, LockManager& b,
                 std::vector<std::pair<TxnId, bool>>* out) -> sim::Task<> {
    (void)co_await a.Lock(1, {1, 0}, LockMode::kExclusive);
    co_await s.Delay(1.0);
    bool ok = co_await b.Lock(1, {1, 1}, LockMode::kExclusive);
    out->push_back({1, ok});
  };
  auto txn2 = [](sim::Scheduler& s, LockManager& a, LockManager& b,
                 std::vector<std::pair<TxnId, bool>>* out) -> sim::Task<> {
    (void)co_await b.Lock(2, {1, 1}, LockMode::kExclusive);
    co_await s.Delay(1.0);
    bool ok = co_await a.Lock(2, {1, 0}, LockMode::kExclusive);
    out->push_back({2, ok});
  };
  sched.Spawn(txn1(sched, lm0, lm1, &log));
  sched.Spawn(txn2(sched, lm0, lm1, &log));
  sched.RunUntil(5.0);
  EXPECT_TRUE(log.empty());  // genuinely deadlocked

  auto victims = detector.DetectAndResolve();
  sched.Run();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, 2);
  EXPECT_FALSE(log[0].second);
  // Releasing the victim's locks lets txn 1 finish.
  lm1.ReleaseAll(2);
  lm0.ReleaseAll(2);
  sched.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[1].second);
}

}  // namespace
}  // namespace pdblb
