// Copyright 2026 the pdblb authors. MIT license.
//
// Tests for the query/update concurrency-control schemes (paper footnote 1):
// kNoReadLocks (the paper's base partitioned-workload assumption),
// kTwoPhaseLocking (queries take long page-level read locks) and
// kMultiversion (snapshot reads, version maintenance on updates).

#include <gtest/gtest.h>

#include "engine/cluster.h"

namespace pdblb {
namespace {

/// Joins on A/B concurrent with update statements on A: the data-contention
/// scenario the paper's footnote 1 points at.
SystemConfig ContentionConfig(CcScheme scheme) {
  SystemConfig cfg;
  cfg.num_pes = 10;
  cfg.cc_scheme = scheme;
  cfg.strategy = strategies::PmuCpuLUM();
  cfg.join_query.arrival_rate_per_pe_qps = 0.10;
  cfg.update_query.enabled = true;
  cfg.update_query.relation = TargetRelation::kA;
  cfg.update_query.selectivity = 0.02;  // ~25 pages locked per statement
  cfg.update_query.arrival_rate_per_pe_qps = 0.3;
  cfg.warmup_ms = 1000.0;
  cfg.measurement_ms = 10000.0;
  return cfg;
}

TEST(ConcurrencyTest, TwoPhaseLockingProducesLockWaits) {
  Cluster cluster(ContentionConfig(CcScheme::kTwoPhaseLocking));
  MetricsReport r = cluster.Run();
  ASSERT_GT(r.joins_completed, 0);
  ASSERT_GT(r.updates_completed, 0);
  EXPECT_GT(r.lock_waits, 0);
}

TEST(ConcurrencyTest, NoReadLocksHasNoQueryUpdateWaits) {
  // Without read locks, queries and updaters never conflict on A/B pages;
  // the only lock traffic is update-vs-update (page-disjoint ranges mostly).
  Cluster base(ContentionConfig(CcScheme::kNoReadLocks));
  MetricsReport r_base = base.Run();
  Cluster locked(ContentionConfig(CcScheme::kTwoPhaseLocking));
  MetricsReport r_locked = locked.Run();
  EXPECT_LT(r_base.lock_waits, r_locked.lock_waits);
}

TEST(ConcurrencyTest, ReadLocksSlowJoinsUnderUpdateLoad) {
  Cluster base(ContentionConfig(CcScheme::kNoReadLocks));
  MetricsReport r_base = base.Run();
  Cluster locked(ContentionConfig(CcScheme::kTwoPhaseLocking));
  MetricsReport r_locked = locked.Run();
  ASSERT_GT(r_base.joins_completed, 0);
  ASSERT_GT(r_locked.joins_completed, 0);
  EXPECT_GT(r_locked.join_rt_ms, r_base.join_rt_ms);
}

TEST(ConcurrencyTest, MultiversionKeepsJoinsNearBaseline) {
  // MVCC reads don't block: join response times stay close to the
  // no-contention baseline even under update load (well below the 2PL
  // penalty).
  Cluster base(ContentionConfig(CcScheme::kNoReadLocks));
  MetricsReport r_base = base.Run();
  Cluster mvcc(ContentionConfig(CcScheme::kMultiversion));
  MetricsReport r_mvcc = mvcc.Run();
  Cluster locked(ContentionConfig(CcScheme::kTwoPhaseLocking));
  MetricsReport r_locked = locked.Run();
  ASSERT_GT(r_mvcc.joins_completed, 0);
  double mvcc_penalty = r_mvcc.join_rt_ms - r_base.join_rt_ms;
  double lock_penalty = r_locked.join_rt_ms - r_base.join_rt_ms;
  EXPECT_LT(mvcc_penalty, lock_penalty);
}

TEST(ConcurrencyTest, MultiversionChargesUpdatersForVersions) {
  // Version maintenance makes updates dearer than the no-contention base
  // (extra CPU + version-pool writes) when nothing else interferes.
  auto run = [](CcScheme scheme) {
    SystemConfig cfg;
    cfg.num_pes = 10;
    cfg.cc_scheme = scheme;
    cfg.join_query.arrival_rate_per_pe_qps = 0.0;  // updates only
    cfg.update_query.enabled = true;
    cfg.update_query.selectivity = 0.01;
    cfg.update_query.arrival_rate_per_pe_qps = 0.1;
    cfg.warmup_ms = 1000.0;
    cfg.measurement_ms = 10000.0;
    Cluster cluster(cfg);
    return cluster.Run();
  };
  MetricsReport base = run(CcScheme::kNoReadLocks);
  MetricsReport mvcc = run(CcScheme::kMultiversion);
  ASSERT_GT(base.updates_completed, 0);
  ASSERT_GT(mvcc.updates_completed, 0);
  EXPECT_GT(mvcc.update_rt_ms, base.update_rt_ms);
}

TEST(ConcurrencyTest, OltpPaysVersionOverheadUnderMvcc) {
  auto run = [](CcScheme scheme) {
    SystemConfig cfg;
    cfg.num_pes = 10;
    cfg.cc_scheme = scheme;
    cfg.join_query.arrival_rate_per_pe_qps = 0.0;
    cfg.oltp.enabled = true;
    cfg.oltp.placement = OltpPlacement::kAllNodes;
    cfg.oltp.tps_per_node = 50.0;
    cfg.warmup_ms = 1000.0;
    cfg.measurement_ms = 8000.0;
    Cluster cluster(cfg);
    return cluster.Run();
  };
  MetricsReport base = run(CcScheme::kNoReadLocks);
  MetricsReport mvcc = run(CcScheme::kMultiversion);
  ASSERT_GT(base.oltp_completed, 0);
  ASSERT_GT(mvcc.oltp_completed, 0);
  EXPECT_GT(mvcc.oltp_rt_ms, base.oltp_rt_ms);
}

TEST(ConcurrencyTest, ScanQueriesHonorReadLocks) {
  auto run = [](CcScheme scheme) {
    SystemConfig cfg;
    cfg.num_pes = 10;
    cfg.cc_scheme = scheme;
    cfg.join_query.arrival_rate_per_pe_qps = 0.0;
    cfg.scan_query.enabled = true;
    cfg.scan_query.relation = TargetRelation::kA;
    cfg.scan_query.selectivity = 0.05;
    cfg.scan_query.arrival_rate_per_pe_qps = 0.2;
    cfg.update_query.enabled = true;
    cfg.update_query.relation = TargetRelation::kA;
    cfg.update_query.selectivity = 0.02;
    cfg.update_query.arrival_rate_per_pe_qps = 0.3;
    cfg.warmup_ms = 1000.0;
    cfg.measurement_ms = 10000.0;
    Cluster cluster(cfg);
    return cluster.Run();
  };
  MetricsReport base = run(CcScheme::kNoReadLocks);
  MetricsReport locked = run(CcScheme::kTwoPhaseLocking);
  ASSERT_GT(base.scans_completed, 0);
  ASSERT_GT(locked.scans_completed, 0);
  // The reliable signal is lock traffic: scans now wait behind updaters
  // (and make updaters wait).  Raw response times shift both ways because
  // blocked updaters also unload the disks the scans use.
  EXPECT_GT(locked.lock_waits, base.lock_waits);
}

}  // namespace
}  // namespace pdblb
