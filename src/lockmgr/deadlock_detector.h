// Copyright 2026 the pdblb authors. MIT license.
//
// Central global deadlock detection (paper Section 4: "Global deadlocks are
// resolved by a central deadlock detection scheme").  A designated node
// periodically collects the wait-for edges of every PE's lock table, builds
// the global wait-for graph, and aborts the youngest transaction on each
// cycle.

#ifndef PDBLB_LOCKMGR_DEADLOCK_DETECTOR_H_
#define PDBLB_LOCKMGR_DEADLOCK_DETECTOR_H_

#include <vector>

#include "common/units.h"
#include "lockmgr/lock_manager.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb {

class DeadlockDetector {
 public:
  /// `lock_managers` must outlive the detector.
  DeadlockDetector(sim::Scheduler& sched,
                   std::vector<LockManager*> lock_managers,
                   SimTime check_interval_ms = 1000.0);

  /// Runs one detection pass: returns the victims aborted (may be empty).
  std::vector<TxnId> DetectAndResolve();

  /// Background process: runs DetectAndResolve every check interval until
  /// the scheduler shuts down.  Spawn with Scheduler::Spawn.
  sim::Task<> Run();

  /// Finds all transactions on cycles in `edges`; exposed for testing.
  static std::vector<TxnId> FindCycleVictims(
      const std::vector<WaitForEdge>& edges);

  int64_t total_victims() const { return total_victims_; }

 private:
  sim::Scheduler& sched_;
  std::vector<LockManager*> lock_managers_;
  SimTime check_interval_ms_;
  int64_t total_victims_ = 0;
};

}  // namespace pdblb

#endif  // PDBLB_LOCKMGR_DEADLOCK_DETECTOR_H_
