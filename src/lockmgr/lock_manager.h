// Copyright 2026 the pdblb authors. MIT license.
//
// Concurrency control (paper Section 4): distributed strict two-phase
// locking with long read/write locks.  Each PE owns a lock table for the
// data it stores; a central deadlock detector (deadlock_detector.h)
// periodically collects wait-for edges from all PEs and resolves global
// deadlocks by aborting a victim.
//
// Join queries in the evaluated workloads run read-only against relations
// the OLTP load does not touch (the paper points to multiversion CC for
// read-only queries), so the lock manager is exercised by the OLTP classes
// and by dedicated tests.

#ifndef PDBLB_LOCKMGR_LOCK_MANAGER_H_
#define PDBLB_LOCKMGR_LOCK_MANAGER_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb {

enum class LockMode { kShared, kExclusive };

/// Lockable object: a tuple of a relation.
struct LockKey {
  int32_t relation_id = 0;
  int64_t tuple_id = 0;
  bool operator==(const LockKey&) const = default;
};

struct LockKeyHash {
  size_t operator()(const LockKey& k) const {
    uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(k.relation_id))
                  << 44) ^
                 static_cast<uint64_t>(k.tuple_id);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

/// A wait-for edge: `waiter` waits for `holder`.
struct WaitForEdge {
  TxnId waiter;
  TxnId holder;
};

/// Per-PE lock table implementing strict 2PL.
class LockManager {
 public:
  /// `tag` attributes grant/abort wake-ups in event traces.
  explicit LockManager(
      sim::Scheduler& sched,
      sim::TraceTag tag = sim::TraceTag(sim::TraceSubsystem::kLock))
      : sched_(sched), tag_(tag) {}
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires `key` in `mode` for `txn`, waiting FCFS behind incompatible
  /// holders.  Re-requests by a holding transaction are granted (including
  /// S->X upgrade when it is the sole holder).  Returns false if the
  /// transaction was chosen as a deadlock victim while waiting.
  sim::Task<bool> Lock(TxnId txn, LockKey key, LockMode mode);

  /// Releases all locks of `txn` (end of transaction under strict 2PL) and
  /// grants any now-compatible waiters.
  void ReleaseAll(TxnId txn);

  /// Appends this PE's wait-for edges (waiter -> each incompatible holder).
  void CollectWaitForEdges(std::vector<WaitForEdge>* edges) const;

  /// Aborts a waiting transaction: removes its pending requests and resumes
  /// it with failure.  Returns true if the txn was found waiting here.
  bool AbortWaiter(TxnId victim);

  /// True if `txn` currently holds any lock here (for tests).
  bool HoldsAnyLock(TxnId txn) const;

  int64_t locks_granted() const { return locks_granted_; }
  int64_t lock_waits() const { return lock_waits_; }
  int64_t deadlock_aborts() const { return deadlock_aborts_; }
  void ResetStats();

 private:
  struct Holder {
    TxnId txn;
    LockMode mode;
  };
  struct Waiter {
    TxnId txn;
    LockMode mode;
    std::coroutine_handle<> handle;
    bool granted = false;
    bool aborted = false;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::deque<Waiter*> waiters;
  };

  static bool Compatible(LockMode a, LockMode b) {
    return a == LockMode::kShared && b == LockMode::kShared;
  }

  /// True if `txn` could be granted `mode` on `entry` right now.
  static bool CanGrant(const Entry& entry, TxnId txn, LockMode mode);

  /// Grants queue heads while possible.
  void GrantWaiters(LockKey key, Entry& entry);

  sim::Scheduler& sched_;
  sim::TraceTag tag_;
  std::unordered_map<LockKey, Entry, LockKeyHash> table_;
  std::unordered_map<TxnId, std::vector<LockKey>> held_;

  int64_t locks_granted_ = 0;
  int64_t lock_waits_ = 0;
  int64_t deadlock_aborts_ = 0;
};

}  // namespace pdblb

#endif  // PDBLB_LOCKMGR_LOCK_MANAGER_H_
