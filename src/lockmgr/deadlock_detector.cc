// Copyright 2026 the pdblb authors. MIT license.

#include "lockmgr/deadlock_detector.h"

#include <algorithm>
#include <map>
#include <set>

namespace pdblb {

DeadlockDetector::DeadlockDetector(sim::Scheduler& sched,
                                   std::vector<LockManager*> lock_managers,
                                   SimTime check_interval_ms)
    : sched_(sched), lock_managers_(std::move(lock_managers)),
      check_interval_ms_(check_interval_ms) {}

std::vector<TxnId> DeadlockDetector::FindCycleVictims(
    const std::vector<WaitForEdge>& edges) {
  // Adjacency over the (small) set of waiting transactions.
  std::map<TxnId, std::vector<TxnId>> adj;
  for (const auto& e : edges) adj[e.waiter].push_back(e.holder);

  std::vector<TxnId> victims;
  std::set<TxnId> removed;  // victims already chosen: break their cycles

  // Iterative color DFS with an explicit frame stack (no recursion, no
  // heap-allocated std::function); on finding a back edge, pick the
  // youngest (largest id) transaction on the cycle as victim, remove it,
  // restart.
  struct Frame {
    TxnId u;
    const std::vector<TxnId>* children;  // nullptr: u has no outgoing edges
    size_t next = 0;
  };
  std::vector<Frame> frames;
  std::vector<TxnId> stack_path;  // gray nodes in visitation order

  auto push_node = [&](TxnId u, std::map<TxnId, int>& color) {
    color[u] = 1;  // gray
    stack_path.push_back(u);
    auto it = adj.find(u);
    frames.push_back(Frame{u, it != adj.end() ? &it->second : nullptr});
  };

  bool changed = true;
  while (changed) {
    changed = false;
    std::map<TxnId, int> color;  // 0 white, 1 gray, 2 black

    for (const auto& [txn, _] : adj) {
      if (removed.count(txn) || color[txn] != 0) continue;
      frames.clear();
      stack_path.clear();
      push_node(txn, color);

      while (!frames.empty() && !changed) {
        Frame& f = frames.back();
        if (f.children == nullptr || f.next >= f.children->size()) {
          color[f.u] = 2;  // black
          stack_path.pop_back();
          frames.pop_back();
          continue;
        }
        TxnId v = (*f.children)[f.next++];
        if (removed.count(v) || removed.count(f.u)) continue;
        if (color[v] == 1) {
          // Cycle: everything from v to the top of stack_path.
          auto pos = std::find(stack_path.begin(), stack_path.end(), v);
          TxnId victim = *std::max_element(pos, stack_path.end());
          victims.push_back(victim);
          removed.insert(victim);
          changed = true;  // restart detection without the victim
        } else if (color[v] == 0) {
          push_node(v, color);
        }
      }
      if (changed) break;
    }
  }
  return victims;
}

std::vector<TxnId> DeadlockDetector::DetectAndResolve() {
  // Collect the wait-for edges site by site, recording which lock manager
  // contributed each waiter.  A victim is then aborted at its recorded site
  // directly, rather than probing every PE's lock table in turn — the
  // collected edges are the only cross-PE state the detector reads.
  std::vector<WaitForEdge> edges;
  std::map<TxnId, size_t> waiter_site;
  for (size_t i = 0; i < lock_managers_.size(); ++i) {
    const size_t before = edges.size();
    lock_managers_[i]->CollectWaitForEdges(&edges);
    for (size_t j = before; j < edges.size(); ++j) {
      waiter_site[edges[j].waiter] = i;  // a txn waits at one PE at a time
    }
  }

  std::vector<TxnId> victims = FindCycleVictims(edges);
  for (TxnId victim : victims) {
    auto site = waiter_site.find(victim);
    if (site != waiter_site.end()) {
      lock_managers_[site->second]->AbortWaiter(victim);
    }
  }
  total_victims_ += static_cast<int64_t>(victims.size());
  return victims;
}

sim::Task<> DeadlockDetector::Run() {
  while (!sched_.ShuttingDown()) {
    co_await sched_.Delay(check_interval_ms_);
    DetectAndResolve();
  }
}

}  // namespace pdblb
