// Copyright 2026 the pdblb authors. MIT license.

#include "lockmgr/deadlock_detector.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace pdblb {

DeadlockDetector::DeadlockDetector(sim::Scheduler& sched,
                                   std::vector<LockManager*> lock_managers,
                                   SimTime check_interval_ms)
    : sched_(sched), lock_managers_(std::move(lock_managers)),
      check_interval_ms_(check_interval_ms) {}

std::vector<TxnId> DeadlockDetector::FindCycleVictims(
    const std::vector<WaitForEdge>& edges) {
  // Adjacency over the (small) set of waiting transactions.
  std::map<TxnId, std::vector<TxnId>> adj;
  for (const auto& e : edges) adj[e.waiter].push_back(e.holder);

  std::vector<TxnId> victims;
  std::set<TxnId> removed;  // victims already chosen: break their cycles

  // Iterative DFS with colors; on finding a back edge, pick the youngest
  // (largest id) transaction on the cycle as victim, remove it, restart.
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<TxnId, int> color;  // 0 white, 1 gray, 2 black
    std::vector<TxnId> stack_path;

    std::function<bool(TxnId)> dfs = [&](TxnId u) -> bool {
      color[u] = 1;
      stack_path.push_back(u);
      auto it = adj.find(u);
      if (it != adj.end()) {
        for (TxnId v : it->second) {
          if (removed.count(v) || removed.count(u)) continue;
          if (color[v] == 1) {
            // Cycle: everything from v to the top of stack_path.
            auto pos = std::find(stack_path.begin(), stack_path.end(), v);
            TxnId victim = *std::max_element(pos, stack_path.end());
            victims.push_back(victim);
            removed.insert(victim);
            return true;  // restart detection without the victim
          }
          if (color[v] == 0 && dfs(v)) return true;
        }
      }
      color[u] = 2;
      stack_path.pop_back();
      return false;
    };

    for (const auto& [txn, _] : adj) {
      if (removed.count(txn) || color[txn] != 0) continue;
      if (dfs(txn)) {
        changed = true;
        break;
      }
    }
  }
  return victims;
}

std::vector<TxnId> DeadlockDetector::DetectAndResolve() {
  std::vector<WaitForEdge> edges;
  for (LockManager* lm : lock_managers_) lm->CollectWaitForEdges(&edges);

  std::vector<TxnId> victims = FindCycleVictims(edges);
  for (TxnId victim : victims) {
    for (LockManager* lm : lock_managers_) {
      if (lm->AbortWaiter(victim)) break;  // a txn waits at one PE at a time
    }
  }
  total_victims_ += static_cast<int64_t>(victims.size());
  return victims;
}

sim::Task<> DeadlockDetector::Run() {
  while (!sched_.ShuttingDown()) {
    co_await sched_.Delay(check_interval_ms_);
    DetectAndResolve();
  }
}

}  // namespace pdblb
