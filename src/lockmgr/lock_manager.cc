// Copyright 2026 the pdblb authors. MIT license.

#include "lockmgr/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace pdblb {

bool LockManager::CanGrant(const Entry& entry, TxnId txn, LockMode mode) {
  bool already_holds_shared = false;
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) {
      if (h.mode == LockMode::kExclusive || mode == LockMode::kShared) {
        return true;  // already strong enough (or re-requesting S)
      }
      already_holds_shared = true;
      continue;
    }
    if (!Compatible(h.mode, mode)) return false;
  }
  // Upgrade S->X: only if sole holder (other holders handled above).
  if (already_holds_shared) return true;
  (void)already_holds_shared;
  return true;
}

sim::Task<bool> LockManager::Lock(TxnId txn, LockKey key, LockMode mode) {
  Entry& entry = table_[key];

  // FCFS fairness: a new request must also wait behind queued waiters,
  // unless the transaction already holds the lock (avoid self-deadlock).
  bool holds_here = std::any_of(
      entry.holders.begin(), entry.holders.end(),
      [&](const Holder& h) { return h.txn == txn; });

  if ((entry.waiters.empty() || holds_here) && CanGrant(entry, txn, mode)) {
    // Grant immediately (fresh grant or upgrade).
    bool found = false;
    for (Holder& h : entry.holders) {
      if (h.txn == txn) {
        found = true;
        if (mode == LockMode::kExclusive) h.mode = LockMode::kExclusive;
        break;
      }
    }
    if (!found) {
      entry.holders.push_back(Holder{txn, mode});
      held_[txn].push_back(key);
    }
    ++locks_granted_;
    co_return true;
  }

  // Wait FCFS.
  ++lock_waits_;
  Waiter waiter{txn, mode, nullptr, false, false};
  entry.waiters.push_back(&waiter);

  // `waiter` lives on this coroutine frame; the queue holds a raw pointer
  // into it.  The awaiter's destructor undoes that registration when the
  // frame is destroyed mid-suspension (Scheduler::Cancel cascade): either
  // the waiter is still queued (erase it) or it was already granted/aborted
  // and a wake event is in flight (scrub it).  A granted lock stays held —
  // the cancelling supervisor runs ReleaseAll(txn) afterwards.  The
  // scheduler pointer is stored directly because at full teardown the
  // manager itself may already be gone.
  struct Awaiter {
    sim::Scheduler* sched;
    LockManager* mgr;
    LockKey key;
    Waiter* w;
    std::coroutine_handle<> pending = nullptr;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      pending = h;
      w->handle = h;
    }
    void await_resume() noexcept { pending = nullptr; }
    ~Awaiter() {
      if (!pending || sched->tearing_down()) return;
      auto it = mgr->table_.find(key);
      if (it != mgr->table_.end()) {
        auto& ws = it->second.waiters;
        auto pos = std::find(ws.begin(), ws.end(), w);
        if (pos != ws.end()) {
          ws.erase(pos);
          // Removing a blocked waiter may unblock the queue behind it.
          mgr->GrantWaiters(key, it->second);
          return;
        }
      }
      sched->CancelHandle(pending);
    }
  };
  co_await Awaiter{&sched_, this, key, &waiter};

  if (waiter.aborted) {
    ++deadlock_aborts_;
    co_return false;
  }
  assert(waiter.granted);
  co_return true;
}

void LockManager::GrantWaiters(LockKey key, Entry& entry) {
  while (!entry.waiters.empty()) {
    Waiter* w = entry.waiters.front();
    if (!CanGrant(entry, w->txn, w->mode)) break;
    entry.waiters.pop_front();
    bool found = false;
    for (Holder& h : entry.holders) {
      if (h.txn == w->txn) {
        found = true;
        if (w->mode == LockMode::kExclusive) h.mode = LockMode::kExclusive;
        break;
      }
    }
    if (!found) {
      entry.holders.push_back(Holder{w->txn, w->mode});
      held_[w->txn].push_back(key);
    }
    ++locks_granted_;
    w->granted = true;
    assert(w->handle);
    sched_.ScheduleHandle(sched_.Now(), w->handle, tag_);
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  std::vector<LockKey> keys = std::move(it->second);
  held_.erase(it);
  for (const LockKey& key : keys) {
    auto entry_it = table_.find(key);
    if (entry_it == table_.end()) continue;
    Entry& entry = entry_it->second;
    entry.holders.erase(
        std::remove_if(entry.holders.begin(), entry.holders.end(),
                       [&](const Holder& h) { return h.txn == txn; }),
        entry.holders.end());
    GrantWaiters(key, entry);
    if (entry.holders.empty() && entry.waiters.empty()) {
      table_.erase(entry_it);
    }
  }
}

void LockManager::CollectWaitForEdges(std::vector<WaitForEdge>* edges) const {
  for (const auto& [key, entry] : table_) {
    for (const Waiter* w : entry.waiters) {
      for (const Holder& h : entry.holders) {
        if (h.txn != w->txn && !Compatible(h.mode, w->mode)) {
          edges->push_back(WaitForEdge{w->txn, h.txn});
        }
      }
      // Waiters also wait for earlier incompatible waiters (FCFS queue),
      // which matters for X behind S chains; keep it simple and conservative
      // by only reporting holder edges — sufficient for cycle detection in
      // the workloads modeled here.
    }
  }
}

bool LockManager::AbortWaiter(TxnId victim) {
  bool found = false;
  for (auto& [key, entry] : table_) {
    for (auto it = entry.waiters.begin(); it != entry.waiters.end();) {
      if ((*it)->txn == victim) {
        Waiter* w = *it;
        it = entry.waiters.erase(it);
        w->aborted = true;
        assert(w->handle);
        sched_.ScheduleHandle(sched_.Now(), w->handle, tag_);
        found = true;
      } else {
        ++it;
      }
    }
    // Removing a blocked waiter may unblock the queue behind it.
    GrantWaiters(key, entry);
  }
  return found;
}

bool LockManager::HoldsAnyLock(TxnId txn) const {
  auto it = held_.find(txn);
  return it != held_.end() && !it->second.empty();
}

void LockManager::ResetStats() {
  locks_granted_ = 0;
  lock_waits_ = 0;
  deadlock_aborts_ = 0;
}

}  // namespace pdblb
