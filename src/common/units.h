// Copyright 2026 the pdblb authors. MIT license.
//
// Basic unit definitions shared across all pdblb modules.
//
// Simulated time is measured in milliseconds throughout the code base
// (`SimTime`).  CPU work is expressed in instructions and converted to time
// through a processing element's MIPS rating.

#ifndef PDBLB_COMMON_UNITS_H_
#define PDBLB_COMMON_UNITS_H_

#include <cstdint>

namespace pdblb {

/// Simulated time in milliseconds.
using SimTime = double;

/// Identifier of a processing element (PE).  PEs are numbered 0..n-1.
using PeId = int;

/// Identifier of a transaction or query instance.
using TxnId = int64_t;

inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;

/// Converts an instruction count into milliseconds of CPU service time for a
/// processor rated at `mips` million instructions per second.
inline constexpr SimTime InstructionsToMs(int64_t instructions, double mips) {
  // mips MIPS == mips * 1e6 instructions/second == mips * 1e3 instructions/ms.
  return static_cast<SimTime>(instructions) / (mips * 1e3);
}

/// Converts seconds to the internal millisecond representation.
inline constexpr SimTime SecondsToMs(double seconds) { return seconds * 1e3; }

/// Converts the internal millisecond representation to seconds.
inline constexpr double MsToSeconds(SimTime ms) { return ms / 1e3; }

}  // namespace pdblb

#endif  // PDBLB_COMMON_UNITS_H_
