// Copyright 2026 the pdblb authors. MIT license.

#include "common/config.h"

#include <algorithm>
#include <cmath>

namespace pdblb {

std::string StrategyConfig::Name() const {
  std::string name;
  switch (integrated) {
    case IntegratedPolicyKind::kMinIO:
      name = "MIN-IO";
      break;
    case IntegratedPolicyKind::kMinIOSuOpt:
      name = "MIN-IO-SUOPT";
      break;
    case IntegratedPolicyKind::kOptIOCpu:
      name = "OPT-IO-CPU";
      break;
    case IntegratedPolicyKind::kNone:
      break;
  }
  if (!name.empty()) {
    if (skew_aware_assignment) name += " (skew-aware)";
    return name;
  }
  switch (degree) {
    case DegreePolicyKind::kStaticSuOpt:
      name = "p_su-opt";
      break;
    case DegreePolicyKind::kStaticSuNoIO:
      name = "p_su-noIO";
      break;
    case DegreePolicyKind::kDynamicCpu:
      name = "p_mu-cpu";
      break;
    case DegreePolicyKind::kRateMatch:
      name = "RateMatch";
      break;
  }
  name += " + ";
  switch (selection) {
    case SelectionPolicyKind::kRandom:
      name += "RANDOM";
      break;
    case SelectionPolicyKind::kLUC:
      name += "LUC";
      break;
    case SelectionPolicyKind::kLUM:
      name += "LUM";
      break;
  }
  if (skew_aware_assignment) name += " (skew-aware)";
  return name;
}

int SystemConfig::NumANodes() const {
  int a = static_cast<int>(std::lround(a_node_fraction * num_pes));
  return std::clamp(a, 1, num_pes - 1);
}

int64_t SystemConfig::RelationPages(const RelationConfig& rel) {
  if (rel.blocking_factor <= 0) return 0;
  return (rel.num_tuples + rel.blocking_factor - 1) / rel.blocking_factor;
}

int64_t SystemConfig::InnerInputTuples() const {
  return static_cast<int64_t>(
      std::llround(join_query.scan_selectivity * relation_a.num_tuples));
}

int64_t SystemConfig::OuterInputTuples() const {
  return static_cast<int64_t>(
      std::llround(join_query.scan_selectivity * relation_b.num_tuples));
}

int64_t SystemConfig::InnerInputPages() const {
  int64_t tuples = InnerInputTuples();
  int bf = relation_a.blocking_factor;
  return (tuples + bf - 1) / bf;
}

int64_t SystemConfig::OuterInputPages() const {
  int64_t tuples = OuterInputTuples();
  int bf = relation_b.blocking_factor;
  return (tuples + bf - 1) / bf;
}

Status SystemConfig::Validate() const {
  if (num_pes < 2) {
    return Status::InvalidArgument("num_pes must be >= 2");
  }
  if (cpus_per_pe < 1) {
    return Status::InvalidArgument("cpus_per_pe must be >= 1");
  }
  if (mips_per_pe <= 0) {
    return Status::InvalidArgument("mips_per_pe must be positive");
  }
  if (buffer.buffer_pages < 1) {
    return Status::InvalidArgument("buffer_pages must be >= 1");
  }
  if (buffer.page_size_bytes < 512) {
    return Status::InvalidArgument("page_size_bytes must be >= 512");
  }
  if (disk.disks_per_pe < 1) {
    return Status::InvalidArgument("disks_per_pe must be >= 1");
  }
  if (disk.prefetch_pages < 1) {
    return Status::InvalidArgument("prefetch_pages must be >= 1");
  }
  if (shards < 1 || shards > num_pes) {
    return Status::InvalidArgument("shards must be in [1, num_pes]");
  }
  if (shards > 1 && network.wire_time_per_packet_ms <= 0.0) {
    return Status::InvalidArgument(
        "sharded execution needs a positive wire time (the lookahead)");
  }
  if (a_node_fraction <= 0.0 || a_node_fraction >= 1.0) {
    return Status::InvalidArgument("a_node_fraction must be in (0,1)");
  }
  if (join_query.scan_selectivity <= 0.0 || join_query.scan_selectivity > 1.0) {
    return Status::InvalidArgument("scan_selectivity must be in (0,1]");
  }
  if (join_query.fudge_factor < 1.0) {
    return Status::InvalidArgument("fudge_factor must be >= 1.0");
  }
  if (join_query.redistribution_skew < 0.0 ||
      join_query.redistribution_skew > 4.0) {
    return Status::InvalidArgument("redistribution_skew must be in [0,4]");
  }
  if (relation_a.num_tuples <= 0 || relation_b.num_tuples <= 0) {
    return Status::InvalidArgument("relations must be non-empty");
  }
  if (relation_a.blocking_factor <= 0 || relation_b.blocking_factor <= 0) {
    return Status::InvalidArgument("blocking_factor must be positive");
  }
  if (multiprogramming_level < 1) {
    return Status::InvalidArgument("multiprogramming_level must be >= 1");
  }
  if (measurement_ms <= 0) {
    return Status::InvalidArgument("measurement_ms must be positive");
  }
  if (oltp.enabled && oltp.tps_per_node <= 0) {
    return Status::InvalidArgument("oltp.tps_per_node must be positive");
  }
  if (scan_query.enabled &&
      (scan_query.selectivity <= 0.0 || scan_query.selectivity > 1.0)) {
    return Status::InvalidArgument("scan_query.selectivity must be in (0,1]");
  }
  if (update_query.enabled &&
      (update_query.selectivity <= 0.0 || update_query.selectivity > 1.0)) {
    return Status::InvalidArgument(
        "update_query.selectivity must be in (0,1]");
  }
  if (multiway_join.enabled && multiway_join.ways < 3) {
    return Status::InvalidArgument("multiway_join.ways must be >= 3");
  }
  if (relation_c.num_tuples <= 0 || relation_c.blocking_factor <= 0) {
    return Status::InvalidArgument("relation_c must be non-empty");
  }
  if (trace.enabled && trace.capacity < 1) {
    return Status::InvalidArgument("trace.capacity must be >= 1");
  }
  return Status::OK();
}

namespace strategies {

namespace {
StrategyConfig Isolated(DegreePolicyKind degree, SelectionPolicyKind sel) {
  StrategyConfig s;
  s.integrated = IntegratedPolicyKind::kNone;
  s.degree = degree;
  s.selection = sel;
  return s;
}
StrategyConfig Integrated(IntegratedPolicyKind kind) {
  StrategyConfig s;
  s.integrated = kind;
  return s;
}
}  // namespace

StrategyConfig PsuOptRandom() {
  return Isolated(DegreePolicyKind::kStaticSuOpt, SelectionPolicyKind::kRandom);
}
StrategyConfig PsuOptLUC() {
  return Isolated(DegreePolicyKind::kStaticSuOpt, SelectionPolicyKind::kLUC);
}
StrategyConfig PsuOptLUM() {
  return Isolated(DegreePolicyKind::kStaticSuOpt, SelectionPolicyKind::kLUM);
}
StrategyConfig PsuNoIORandom() {
  return Isolated(DegreePolicyKind::kStaticSuNoIO,
                  SelectionPolicyKind::kRandom);
}
StrategyConfig PsuNoIOLUC() {
  return Isolated(DegreePolicyKind::kStaticSuNoIO, SelectionPolicyKind::kLUC);
}
StrategyConfig PsuNoIOLUM() {
  return Isolated(DegreePolicyKind::kStaticSuNoIO, SelectionPolicyKind::kLUM);
}
StrategyConfig PmuCpuRandom() {
  return Isolated(DegreePolicyKind::kDynamicCpu, SelectionPolicyKind::kRandom);
}
StrategyConfig PmuCpuLUM() {
  return Isolated(DegreePolicyKind::kDynamicCpu, SelectionPolicyKind::kLUM);
}
StrategyConfig RateMatchRandom() {
  return Isolated(DegreePolicyKind::kRateMatch, SelectionPolicyKind::kRandom);
}
StrategyConfig RateMatchLUC() {
  return Isolated(DegreePolicyKind::kRateMatch, SelectionPolicyKind::kLUC);
}
StrategyConfig RateMatchLUM() {
  return Isolated(DegreePolicyKind::kRateMatch, SelectionPolicyKind::kLUM);
}
StrategyConfig MinIO() { return Integrated(IntegratedPolicyKind::kMinIO); }
StrategyConfig MinIOSuOpt() {
  return Integrated(IntegratedPolicyKind::kMinIOSuOpt);
}
StrategyConfig OptIOCpu() {
  return Integrated(IntegratedPolicyKind::kOptIOCpu);
}

}  // namespace strategies
}  // namespace pdblb
