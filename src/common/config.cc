// Copyright 2026 the pdblb authors. MIT license.

#include "common/config.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

namespace pdblb {

std::string StrategyConfig::Name() const {
  std::string name;
  switch (integrated) {
    case IntegratedPolicyKind::kMinIO:
      name = "MIN-IO";
      break;
    case IntegratedPolicyKind::kMinIOSuOpt:
      name = "MIN-IO-SUOPT";
      break;
    case IntegratedPolicyKind::kOptIOCpu:
      name = "OPT-IO-CPU";
      break;
    case IntegratedPolicyKind::kNone:
      break;
  }
  if (!name.empty()) {
    if (skew_aware_assignment) name += " (skew-aware)";
    return name;
  }
  switch (degree) {
    case DegreePolicyKind::kStaticSuOpt:
      name = "p_su-opt";
      break;
    case DegreePolicyKind::kStaticSuNoIO:
      name = "p_su-noIO";
      break;
    case DegreePolicyKind::kDynamicCpu:
      name = "p_mu-cpu";
      break;
    case DegreePolicyKind::kRateMatch:
      name = "RateMatch";
      break;
  }
  name += " + ";
  switch (selection) {
    case SelectionPolicyKind::kRandom:
      name += "RANDOM";
      break;
    case SelectionPolicyKind::kLUC:
      name += "LUC";
      break;
    case SelectionPolicyKind::kLUM:
      name += "LUM";
      break;
  }
  if (skew_aware_assignment) name += " (skew-aware)";
  return name;
}

int SystemConfig::NumANodes() const {
  int a = static_cast<int>(std::lround(a_node_fraction * num_pes));
  return std::clamp(a, 1, num_pes - 1);
}

int64_t SystemConfig::RelationPages(const RelationConfig& rel) {
  if (rel.blocking_factor <= 0) return 0;
  return (rel.num_tuples + rel.blocking_factor - 1) / rel.blocking_factor;
}

int64_t SystemConfig::InnerInputTuples() const {
  return static_cast<int64_t>(
      std::llround(join_query.scan_selectivity * relation_a.num_tuples));
}

int64_t SystemConfig::OuterInputTuples() const {
  return static_cast<int64_t>(
      std::llround(join_query.scan_selectivity * relation_b.num_tuples));
}

int64_t SystemConfig::InnerInputPages() const {
  int64_t tuples = InnerInputTuples();
  int bf = relation_a.blocking_factor;
  return (tuples + bf - 1) / bf;
}

int64_t SystemConfig::OuterInputPages() const {
  int64_t tuples = OuterInputTuples();
  int bf = relation_b.blocking_factor;
  return (tuples + bf - 1) / bf;
}

Status SystemConfig::Validate() const {
  if (num_pes < 2) {
    return Status::InvalidArgument("num_pes must be >= 2");
  }
  if (cpus_per_pe < 1) {
    return Status::InvalidArgument("cpus_per_pe must be >= 1");
  }
  if (mips_per_pe <= 0) {
    return Status::InvalidArgument("mips_per_pe must be positive");
  }
  if (buffer.buffer_pages < 1) {
    return Status::InvalidArgument("buffer_pages must be >= 1");
  }
  if (buffer.page_size_bytes < 512) {
    return Status::InvalidArgument("page_size_bytes must be >= 512");
  }
  if (disk.disks_per_pe < 1) {
    return Status::InvalidArgument("disks_per_pe must be >= 1");
  }
  if (disk.prefetch_pages < 1) {
    return Status::InvalidArgument("prefetch_pages must be >= 1");
  }
  if (shards < 1 || shards > num_pes) {
    return Status::InvalidArgument("shards must be in [1, num_pes]");
  }
  if (shards > 1 && network.wire_time_per_packet_ms <= 0.0) {
    return Status::InvalidArgument(
        "sharded execution needs a positive wire time (the lookahead)");
  }
  if (a_node_fraction <= 0.0 || a_node_fraction >= 1.0) {
    return Status::InvalidArgument("a_node_fraction must be in (0,1)");
  }
  if (join_query.scan_selectivity <= 0.0 || join_query.scan_selectivity > 1.0) {
    return Status::InvalidArgument("scan_selectivity must be in (0,1]");
  }
  if (join_query.fudge_factor < 1.0) {
    return Status::InvalidArgument("fudge_factor must be >= 1.0");
  }
  if (join_query.redistribution_skew < 0.0 ||
      join_query.redistribution_skew > 4.0) {
    return Status::InvalidArgument("redistribution_skew must be in [0,4]");
  }
  if (relation_a.num_tuples <= 0 || relation_b.num_tuples <= 0) {
    return Status::InvalidArgument("relations must be non-empty");
  }
  if (relation_a.blocking_factor <= 0 || relation_b.blocking_factor <= 0) {
    return Status::InvalidArgument("blocking_factor must be positive");
  }
  if (multiprogramming_level < 1) {
    return Status::InvalidArgument("multiprogramming_level must be >= 1");
  }
  if (measurement_ms <= 0) {
    return Status::InvalidArgument("measurement_ms must be positive");
  }
  if (oltp.enabled && oltp.tps_per_node <= 0) {
    return Status::InvalidArgument("oltp.tps_per_node must be positive");
  }
  if (scan_query.enabled &&
      (scan_query.selectivity <= 0.0 || scan_query.selectivity > 1.0)) {
    return Status::InvalidArgument("scan_query.selectivity must be in (0,1]");
  }
  if (update_query.enabled &&
      (update_query.selectivity <= 0.0 || update_query.selectivity > 1.0)) {
    return Status::InvalidArgument(
        "update_query.selectivity must be in (0,1]");
  }
  if (multiway_join.enabled && multiway_join.ways < 3) {
    return Status::InvalidArgument("multiway_join.ways must be >= 3");
  }
  if (relation_c.num_tuples <= 0 || relation_c.blocking_factor <= 0) {
    return Status::InvalidArgument("relation_c must be non-empty");
  }
  if (trace.enabled && trace.capacity < 1) {
    return Status::InvalidArgument("trace.capacity must be >= 1");
  }
  for (const FaultEvent& ev : faults.events) {
    if (ev.pe < 0 || ev.pe >= num_pes) {
      return Status::OutOfRange("faults.events: pe out of range");
    }
    if (ev.at_ms < 0.0) {
      return Status::InvalidArgument("faults.events: at_ms must be >= 0");
    }
    const bool link_kind = ev.kind == FaultKind::kPartition ||
                           ev.kind == FaultKind::kHeal ||
                           ev.kind == FaultKind::kSlowLink;
    if (link_kind) {
      if (ev.pe2 < 0 || ev.pe2 >= num_pes) {
        return Status::OutOfRange("faults.events: pe2 out of range");
      }
      if (ev.pe2 == ev.pe) {
        return Status::InvalidArgument(
            "faults.events: link endpoints must differ");
      }
    }
    if ((ev.kind == FaultKind::kSlowDisk || ev.kind == FaultKind::kSlowLink) &&
        ev.factor < 1.0) {
      // >= 1 keeps slowed wire delays above the sharded-window lookahead.
      return Status::InvalidArgument("faults.events: factor must be >= 1");
    }
  }
  if (faults.ElasticEnabled()) {
    if (architecture != Architecture::kSharedNothing) {
      return Status::InvalidArgument(
          "addpe/drainpe events require Shared Nothing (fragment ownership "
          "is meaningless when every PE reaches every spindle)");
    }
    if (elastic.migration_bw_mbps <= 0.0) {
      return Status::InvalidArgument("elastic.migration_bw_mbps must be > 0");
    }
    if (elastic.migration_batch_pages < 1) {
      return Status::InvalidArgument(
          "elastic.migration_batch_pages must be >= 1");
    }
    // Spares = addpe targets; they are held out of the initial declustering
    // (catalog/database.cc), so the remaining members must still cover both
    // relation home groups and every PE joins at most once.
    std::set<int> spares;
    for (const FaultEvent& ev : faults.events) {
      if (ev.kind != FaultKind::kAddPe) continue;
      if (!spares.insert(ev.pe).second) {
        return Status::InvalidArgument(
            "faults.events: a PE may be the target of at most one addpe");
      }
    }
    int a_members = 0;
    int b_members = 0;
    for (int pe = 0; pe < num_pes; ++pe) {
      if (spares.count(pe) != 0) continue;
      if (pe < NumANodes()) {
        ++a_members;
      } else {
        ++b_members;
      }
    }
    if (a_members < 1 || b_members < 1) {
      return Status::InvalidArgument(
          "faults.events: addpe spares must leave at least one member "
          "A-node and one member B-node in the initial declustering");
    }
    // Membership timeline: drains of a spare need the add to come first,
    // and the member count must never fall below 2 (queries need a
    // coordinator and at least one distinct processor).
    std::vector<const FaultEvent*> membership;
    for (const FaultEvent& ev : faults.events) {
      if (ev.kind == FaultKind::kAddPe || ev.kind == FaultKind::kDrainPe) {
        membership.push_back(&ev);
      }
    }
    std::stable_sort(membership.begin(), membership.end(),
                     [](const FaultEvent* a, const FaultEvent* b) {
                       return a->at_ms < b->at_ms;
                     });
    std::set<int> members;
    for (int pe = 0; pe < num_pes; ++pe) {
      if (spares.count(pe) == 0) members.insert(pe);
    }
    for (const FaultEvent* ev : membership) {
      if (ev->kind == FaultKind::kAddPe) {
        members.insert(ev->pe);
        continue;
      }
      if (members.erase(ev->pe) == 0) {
        return Status::InvalidArgument(
            "faults.events: drainpe target is not a member at that time "
            "(a spare must be added before it can drain)");
      }
      if (members.size() < 2) {
        return Status::InvalidArgument(
            "faults.events: drainpe would leave fewer than 2 members");
      }
    }
    if (oltp.enabled) {
      // OLTP relations are node-private and never migrate, so draining an
      // OLTP node would strand its fragment.  OLTP placement is computed
      // over the initial (non-spare) membership.
      for (const FaultEvent& ev : faults.events) {
        if (ev.kind != FaultKind::kDrainPe) continue;
        if (spares.count(ev.pe) != 0) continue;  // spares never host OLTP
        const bool is_a_node = ev.pe < NumANodes();
        const bool hosts_oltp =
            oltp.placement == OltpPlacement::kAllNodes ||
            (oltp.placement == OltpPlacement::kANodes && is_a_node) ||
            (oltp.placement == OltpPlacement::kBNodes && !is_a_node);
        if (hosts_oltp) {
          return Status::InvalidArgument(
              "faults.events: cannot drain an OLTP node (its node-private "
              "OLTP relation does not migrate)");
        }
      }
    }
  }
  if (faults.crash_rate_per_pe_per_min < 0.0) {
    return Status::InvalidArgument(
        "faults.crash_rate_per_pe_per_min must be >= 0");
  }
  if (faults.crash_rate_per_pe_per_min > 0.0 && faults.mttr_ms <= 0.0) {
    return Status::InvalidArgument(
        "faults.mttr_ms must be positive when a crash rate is set");
  }
  if (faults.query_timeout_ms < 0.0) {
    return Status::InvalidArgument("faults.query_timeout_ms must be >= 0");
  }
  if (faults.timeout_fraction < 0.0 || faults.timeout_fraction > 1.0) {
    return Status::InvalidArgument("faults.timeout_fraction must be in [0,1]");
  }
  if (faults.retry.max_attempts < 1) {
    return Status::InvalidArgument("faults.retry.max_attempts must be >= 1");
  }
  if (faults.retry.initial_backoff_ms < 0.0 ||
      faults.retry.max_backoff_ms < faults.retry.initial_backoff_ms) {
    return Status::InvalidArgument(
        "faults.retry backoff bounds must satisfy 0 <= initial <= max");
  }
  if (faults.retry.backoff_multiplier < 1.0) {
    return Status::InvalidArgument(
        "faults.retry.backoff_multiplier must be >= 1");
  }
  if (faults.retry.jitter_frac < 0.0 || faults.retry.jitter_frac > 1.0) {
    return Status::InvalidArgument("faults.retry.jitter_frac must be in [0,1]");
  }
  if (faults.io_error_rate < 0.0 || faults.io_error_rate >= 1.0) {
    return Status::InvalidArgument("faults.io_error_rate must be in [0, 1)");
  }
  if (faults.io_retry_limit < 0) {
    return Status::InvalidArgument("faults.io_retry_limit must be >= 0");
  }
  if (faults.io_retry_penalty_ms < 0.0) {
    return Status::InvalidArgument("faults.io_retry_penalty_ms must be >= 0");
  }
  if (overload.enabled) {
    if (overload.degrade_cpu_threshold <= 0.0 ||
        overload.exit_cpu_threshold > overload.degrade_cpu_threshold) {
      return Status::InvalidArgument(
          "overload cpu thresholds must satisfy 0 < exit <= degrade");
    }
    if (overload.degrade_queue_threshold < 0.0 ||
        overload.exit_queue_threshold > overload.degrade_queue_threshold ||
        overload.shed_queue_threshold < overload.degrade_queue_threshold) {
      return Status::InvalidArgument(
          "overload queue thresholds must satisfy "
          "0 <= exit <= degrade <= shed");
    }
    if (overload.enter_rounds < 1 || overload.exit_rounds < 1) {
      return Status::InvalidArgument(
          "overload enter/exit rounds must be >= 1");
    }
    if (overload.parallelism_factor <= 0.0 ||
        overload.parallelism_factor > 1.0) {
      return Status::InvalidArgument(
          "overload.parallelism_factor must be in (0, 1]");
    }
  }
  return Status::OK();
}

// --- fault-spec parsing ----------------------------------------------------

namespace {

// Parses "pe<N>" into *pe; returns false on malformed input.
bool ParsePeToken(const std::string& token, int* pe) {
  if (token.rfind("pe", 0) != 0) return false;
  try {
    size_t used = 0;
    *pe = std::stoi(token.substr(2), &used);
    return used == token.size() - 2 && *pe >= 0;
  } catch (...) {
    return false;
  }
}

// Formats a fault-spec error so the offending clause can be found without
// counting semicolons: the clause is quoted verbatim and `offset` names its
// starting byte within the full spec string.
Status ClauseError(const std::string& what, const std::string& clause,
                   size_t offset) {
  return Status::InvalidArgument("fault spec: " + what + " in clause \"" +
                                 clause + "\" (byte " +
                                 std::to_string(offset) + ")");
}

// Splits a scheduled clause — "crash@8000:pe3", "slowdisk@8000:pe3:x4",
// "partition@8000:pe1-pe2", "slowlink@8000:pe1-pe2:x3", "addpe@9000:pe6" —
// into `ev`.  The shape after '@' is <ms>:<endpoint>[:x<M>]; link kinds take
// a pe<A>-pe<B> endpoint pair, multiplier kinds require the trailing :x<M>
// factor.  `offset` is the clause's starting byte in the enclosing spec,
// threaded through so every error can point at it.
Status ParseScheduledClause(const std::string& clause, size_t offset,
                            FaultEvent* ev) {
  size_t at = clause.find('@');
  if (at == std::string::npos) {
    return ClauseError("missing '@'", clause, offset);
  }
  std::string kind = clause.substr(0, at);
  bool wants_pair = false;
  bool wants_factor = false;
  if (kind == "crash") {
    ev->kind = FaultKind::kCrash;
  } else if (kind == "recover") {
    ev->kind = FaultKind::kRecover;
  } else if (kind == "slowdisk") {
    ev->kind = FaultKind::kSlowDisk;
    wants_factor = true;
  } else if (kind == "partition") {
    ev->kind = FaultKind::kPartition;
    wants_pair = true;
  } else if (kind == "heal") {
    ev->kind = FaultKind::kHeal;
    wants_pair = true;
  } else if (kind == "slowlink") {
    ev->kind = FaultKind::kSlowLink;
    wants_pair = true;
    wants_factor = true;
  } else if (kind == "addpe") {
    ev->kind = FaultKind::kAddPe;
  } else if (kind == "drainpe") {
    ev->kind = FaultKind::kDrainPe;
  } else {
    return ClauseError(
        "unknown fault kind (want crash|recover|slowdisk|partition|heal|"
        "slowlink|addpe|drainpe)",
        clause, offset);
  }

  std::vector<std::string> parts;  // <ms>, <endpoint>[, x<M>]
  for (size_t pos = at + 1; pos <= clause.size();) {
    size_t end = clause.find(':', pos);
    if (end == std::string::npos) end = clause.size();
    parts.push_back(clause.substr(pos, end - pos));
    pos = end + 1;
  }
  size_t expected = wants_factor ? 3 : 2;
  if (parts.size() != expected) {
    return ClauseError("want " + kind + "@<ms>:" +
                           (wants_pair ? "pe<A>-pe<B>" : "pe<N>") +
                           (wants_factor ? ":x<M>" : ""),
                       clause, offset);
  }
  try {
    ev->at_ms = std::stod(parts[0]);
  } catch (...) {
    return ClauseError("bad time \"" + parts[0] + "\"", clause, offset);
  }

  const std::string& endpoint = parts[1];
  if (wants_pair) {
    size_t dash = endpoint.find('-');
    if (dash == std::string::npos ||
        !ParsePeToken(endpoint.substr(0, dash), &ev->pe) ||
        !ParsePeToken(endpoint.substr(dash + 1), &ev->pe2)) {
      return ClauseError("bad endpoints (want pe<A>-pe<B>)", clause, offset);
    }
    if (ev->pe == ev->pe2) {
      return ClauseError("endpoints must differ", clause, offset);
    }
  } else if (!ParsePeToken(endpoint, &ev->pe)) {
    return ClauseError("bad PE \"" + endpoint + "\" (want pe<N>)", clause,
                       offset);
  }

  if (wants_factor) {
    const std::string& f = parts[2];
    bool bad = f.empty() || f[0] != 'x';
    if (!bad) {
      try {
        ev->factor = std::stod(f.substr(1));
      } catch (...) {
        bad = true;
      }
    }
    if (bad) {
      return ClauseError("bad multiplier \"" + f + "\" (want x<M>)", clause,
                         offset);
    }
    if (ev->factor < 1.0) {
      return ClauseError("multiplier must be >= 1 (x1 restores)", clause,
                         offset);
    }
  }
  return Status::OK();
}

}  // namespace

const char* EvictionPolicyName(EvictionPolicyKind kind) {
  switch (kind) {
    case EvictionPolicyKind::kLru:
      return "lru";
    case EvictionPolicyKind::kLruK:
      return "lru-k";
    case EvictionPolicyKind::kLfu:
      return "lfu";
    case EvictionPolicyKind::kClock:
      return "clock";
  }
  return "lru";
}

Status ParseEvictionPolicy(const std::string& name, EvictionPolicyKind* out) {
  if (name == "lru") {
    *out = EvictionPolicyKind::kLru;
  } else if (name == "lru-k" || name == "lru2" || name == "lru-2") {
    *out = EvictionPolicyKind::kLruK;
  } else if (name == "lfu") {
    *out = EvictionPolicyKind::kLfu;
  } else if (name == "clock") {
    *out = EvictionPolicyKind::kClock;
  } else {
    return Status::InvalidArgument(
        "unknown eviction policy (want lru|lru-k|lfu|clock): " + name);
  }
  return Status::OK();
}

Status ParseFaultSpec(const std::string& spec, FaultConfig* out) {
  // Scripted clauses that restate an identical event — same kind, instant
  // and target(s) — used to be accepted with silent last-wins ordering;
  // reject them eagerly like every other spec error.  The key includes the
  // kind on purpose: distinct kinds at the same (time, PE) are legitimate
  // and apply in spec order (e.g. "crash@3000:pe=2;recover@3000:pe=2" is a
  // bounce; FaultTest pins that tie-break).
  std::set<std::tuple<int, double, int, int>> seen;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t clause_start = pos;
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;
    size_t eq = clause.find('=');
    if (eq != std::string::npos && clause.find('@') == std::string::npos) {
      std::string key = clause.substr(0, eq);
      std::string val = clause.substr(eq + 1);
      try {
        if (key == "rate") {
          out->crash_rate_per_pe_per_min = std::stod(val);
        } else if (key == "mttr") {
          out->mttr_ms = std::stod(val);
        } else if (key == "timeout") {
          out->query_timeout_ms = std::stod(val);
        } else if (key == "timeout_frac") {
          out->timeout_fraction = std::stod(val);
        } else if (key == "retries") {
          out->retry.max_attempts = std::stoi(val);
        } else if (key == "iorate") {
          out->io_error_rate = std::stod(val);
          if (out->io_error_rate < 0.0 || out->io_error_rate >= 1.0) {
            return ClauseError("iorate must be in [0, 1)", clause,
                               clause_start);
          }
        } else {
          return ClauseError("unknown key \"" + key +
                                 "\" (want rate|mttr|timeout|timeout_frac|"
                                 "retries|iorate)",
                             clause, clause_start);
        }
      } catch (...) {
        return ClauseError("bad value \"" + val + "\"", clause, clause_start);
      }
      continue;
    }
    FaultEvent ev;
    PDBLB_RETURN_IF_ERROR(ParseScheduledClause(clause, clause_start, &ev));
    if (!seen.insert({static_cast<int>(ev.kind), ev.at_ms, ev.pe, ev.pe2})
             .second) {
      return ClauseError(
          "duplicate clause (same kind, time and target appear twice; the "
          "repeat would silently win)",
          clause, clause_start);
    }
    out->events.push_back(ev);
  }
  return Status::OK();
}

namespace strategies {

namespace {
StrategyConfig Isolated(DegreePolicyKind degree, SelectionPolicyKind sel) {
  StrategyConfig s;
  s.integrated = IntegratedPolicyKind::kNone;
  s.degree = degree;
  s.selection = sel;
  return s;
}
StrategyConfig Integrated(IntegratedPolicyKind kind) {
  StrategyConfig s;
  s.integrated = kind;
  return s;
}
}  // namespace

StrategyConfig PsuOptRandom() {
  return Isolated(DegreePolicyKind::kStaticSuOpt, SelectionPolicyKind::kRandom);
}
StrategyConfig PsuOptLUC() {
  return Isolated(DegreePolicyKind::kStaticSuOpt, SelectionPolicyKind::kLUC);
}
StrategyConfig PsuOptLUM() {
  return Isolated(DegreePolicyKind::kStaticSuOpt, SelectionPolicyKind::kLUM);
}
StrategyConfig PsuNoIORandom() {
  return Isolated(DegreePolicyKind::kStaticSuNoIO,
                  SelectionPolicyKind::kRandom);
}
StrategyConfig PsuNoIOLUC() {
  return Isolated(DegreePolicyKind::kStaticSuNoIO, SelectionPolicyKind::kLUC);
}
StrategyConfig PsuNoIOLUM() {
  return Isolated(DegreePolicyKind::kStaticSuNoIO, SelectionPolicyKind::kLUM);
}
StrategyConfig PmuCpuRandom() {
  return Isolated(DegreePolicyKind::kDynamicCpu, SelectionPolicyKind::kRandom);
}
StrategyConfig PmuCpuLUM() {
  return Isolated(DegreePolicyKind::kDynamicCpu, SelectionPolicyKind::kLUM);
}
StrategyConfig RateMatchRandom() {
  return Isolated(DegreePolicyKind::kRateMatch, SelectionPolicyKind::kRandom);
}
StrategyConfig RateMatchLUC() {
  return Isolated(DegreePolicyKind::kRateMatch, SelectionPolicyKind::kLUC);
}
StrategyConfig RateMatchLUM() {
  return Isolated(DegreePolicyKind::kRateMatch, SelectionPolicyKind::kLUM);
}
StrategyConfig MinIO() { return Integrated(IntegratedPolicyKind::kMinIO); }
StrategyConfig MinIOSuOpt() {
  return Integrated(IntegratedPolicyKind::kMinIOSuOpt);
}
StrategyConfig OptIOCpu() {
  return Integrated(IntegratedPolicyKind::kOptIOCpu);
}

}  // namespace strategies
}  // namespace pdblb
