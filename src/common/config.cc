// Copyright 2026 the pdblb authors. MIT license.

#include "common/config.h"

#include <algorithm>
#include <cmath>

namespace pdblb {

std::string StrategyConfig::Name() const {
  std::string name;
  switch (integrated) {
    case IntegratedPolicyKind::kMinIO:
      name = "MIN-IO";
      break;
    case IntegratedPolicyKind::kMinIOSuOpt:
      name = "MIN-IO-SUOPT";
      break;
    case IntegratedPolicyKind::kOptIOCpu:
      name = "OPT-IO-CPU";
      break;
    case IntegratedPolicyKind::kNone:
      break;
  }
  if (!name.empty()) {
    if (skew_aware_assignment) name += " (skew-aware)";
    return name;
  }
  switch (degree) {
    case DegreePolicyKind::kStaticSuOpt:
      name = "p_su-opt";
      break;
    case DegreePolicyKind::kStaticSuNoIO:
      name = "p_su-noIO";
      break;
    case DegreePolicyKind::kDynamicCpu:
      name = "p_mu-cpu";
      break;
    case DegreePolicyKind::kRateMatch:
      name = "RateMatch";
      break;
  }
  name += " + ";
  switch (selection) {
    case SelectionPolicyKind::kRandom:
      name += "RANDOM";
      break;
    case SelectionPolicyKind::kLUC:
      name += "LUC";
      break;
    case SelectionPolicyKind::kLUM:
      name += "LUM";
      break;
  }
  if (skew_aware_assignment) name += " (skew-aware)";
  return name;
}

int SystemConfig::NumANodes() const {
  int a = static_cast<int>(std::lround(a_node_fraction * num_pes));
  return std::clamp(a, 1, num_pes - 1);
}

int64_t SystemConfig::RelationPages(const RelationConfig& rel) {
  if (rel.blocking_factor <= 0) return 0;
  return (rel.num_tuples + rel.blocking_factor - 1) / rel.blocking_factor;
}

int64_t SystemConfig::InnerInputTuples() const {
  return static_cast<int64_t>(
      std::llround(join_query.scan_selectivity * relation_a.num_tuples));
}

int64_t SystemConfig::OuterInputTuples() const {
  return static_cast<int64_t>(
      std::llround(join_query.scan_selectivity * relation_b.num_tuples));
}

int64_t SystemConfig::InnerInputPages() const {
  int64_t tuples = InnerInputTuples();
  int bf = relation_a.blocking_factor;
  return (tuples + bf - 1) / bf;
}

int64_t SystemConfig::OuterInputPages() const {
  int64_t tuples = OuterInputTuples();
  int bf = relation_b.blocking_factor;
  return (tuples + bf - 1) / bf;
}

Status SystemConfig::Validate() const {
  if (num_pes < 2) {
    return Status::InvalidArgument("num_pes must be >= 2");
  }
  if (cpus_per_pe < 1) {
    return Status::InvalidArgument("cpus_per_pe must be >= 1");
  }
  if (mips_per_pe <= 0) {
    return Status::InvalidArgument("mips_per_pe must be positive");
  }
  if (buffer.buffer_pages < 1) {
    return Status::InvalidArgument("buffer_pages must be >= 1");
  }
  if (buffer.page_size_bytes < 512) {
    return Status::InvalidArgument("page_size_bytes must be >= 512");
  }
  if (disk.disks_per_pe < 1) {
    return Status::InvalidArgument("disks_per_pe must be >= 1");
  }
  if (disk.prefetch_pages < 1) {
    return Status::InvalidArgument("prefetch_pages must be >= 1");
  }
  if (shards < 1 || shards > num_pes) {
    return Status::InvalidArgument("shards must be in [1, num_pes]");
  }
  if (shards > 1 && network.wire_time_per_packet_ms <= 0.0) {
    return Status::InvalidArgument(
        "sharded execution needs a positive wire time (the lookahead)");
  }
  if (a_node_fraction <= 0.0 || a_node_fraction >= 1.0) {
    return Status::InvalidArgument("a_node_fraction must be in (0,1)");
  }
  if (join_query.scan_selectivity <= 0.0 || join_query.scan_selectivity > 1.0) {
    return Status::InvalidArgument("scan_selectivity must be in (0,1]");
  }
  if (join_query.fudge_factor < 1.0) {
    return Status::InvalidArgument("fudge_factor must be >= 1.0");
  }
  if (join_query.redistribution_skew < 0.0 ||
      join_query.redistribution_skew > 4.0) {
    return Status::InvalidArgument("redistribution_skew must be in [0,4]");
  }
  if (relation_a.num_tuples <= 0 || relation_b.num_tuples <= 0) {
    return Status::InvalidArgument("relations must be non-empty");
  }
  if (relation_a.blocking_factor <= 0 || relation_b.blocking_factor <= 0) {
    return Status::InvalidArgument("blocking_factor must be positive");
  }
  if (multiprogramming_level < 1) {
    return Status::InvalidArgument("multiprogramming_level must be >= 1");
  }
  if (measurement_ms <= 0) {
    return Status::InvalidArgument("measurement_ms must be positive");
  }
  if (oltp.enabled && oltp.tps_per_node <= 0) {
    return Status::InvalidArgument("oltp.tps_per_node must be positive");
  }
  if (scan_query.enabled &&
      (scan_query.selectivity <= 0.0 || scan_query.selectivity > 1.0)) {
    return Status::InvalidArgument("scan_query.selectivity must be in (0,1]");
  }
  if (update_query.enabled &&
      (update_query.selectivity <= 0.0 || update_query.selectivity > 1.0)) {
    return Status::InvalidArgument(
        "update_query.selectivity must be in (0,1]");
  }
  if (multiway_join.enabled && multiway_join.ways < 3) {
    return Status::InvalidArgument("multiway_join.ways must be >= 3");
  }
  if (relation_c.num_tuples <= 0 || relation_c.blocking_factor <= 0) {
    return Status::InvalidArgument("relation_c must be non-empty");
  }
  if (trace.enabled && trace.capacity < 1) {
    return Status::InvalidArgument("trace.capacity must be >= 1");
  }
  for (const FaultEvent& ev : faults.events) {
    if (ev.pe < 0 || ev.pe >= num_pes) {
      return Status::OutOfRange("faults.events: pe out of range");
    }
    if (ev.at_ms < 0.0) {
      return Status::InvalidArgument("faults.events: at_ms must be >= 0");
    }
  }
  if (faults.crash_rate_per_pe_per_min < 0.0) {
    return Status::InvalidArgument(
        "faults.crash_rate_per_pe_per_min must be >= 0");
  }
  if (faults.crash_rate_per_pe_per_min > 0.0 && faults.mttr_ms <= 0.0) {
    return Status::InvalidArgument(
        "faults.mttr_ms must be positive when a crash rate is set");
  }
  if (faults.query_timeout_ms < 0.0) {
    return Status::InvalidArgument("faults.query_timeout_ms must be >= 0");
  }
  if (faults.timeout_fraction < 0.0 || faults.timeout_fraction > 1.0) {
    return Status::InvalidArgument("faults.timeout_fraction must be in [0,1]");
  }
  if (faults.retry.max_attempts < 1) {
    return Status::InvalidArgument("faults.retry.max_attempts must be >= 1");
  }
  if (faults.retry.initial_backoff_ms < 0.0 ||
      faults.retry.max_backoff_ms < faults.retry.initial_backoff_ms) {
    return Status::InvalidArgument(
        "faults.retry backoff bounds must satisfy 0 <= initial <= max");
  }
  if (faults.retry.backoff_multiplier < 1.0) {
    return Status::InvalidArgument(
        "faults.retry.backoff_multiplier must be >= 1");
  }
  if (faults.retry.jitter_frac < 0.0 || faults.retry.jitter_frac > 1.0) {
    return Status::InvalidArgument("faults.retry.jitter_frac must be in [0,1]");
  }
  return Status::OK();
}

// --- fault-spec parsing ----------------------------------------------------

namespace {

// Splits "crash@8000:pe3" into kind/time/pe; returns false on malformed
// input (the caller reports the whole clause).
bool ParseScheduledClause(const std::string& clause, FaultEvent* ev) {
  size_t at = clause.find('@');
  size_t colon = clause.find(':', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || colon == std::string::npos) return false;
  std::string kind = clause.substr(0, at);
  if (kind == "crash") {
    ev->kind = FaultKind::kCrash;
  } else if (kind == "recover") {
    ev->kind = FaultKind::kRecover;
  } else {
    return false;
  }
  try {
    ev->at_ms = std::stod(clause.substr(at + 1, colon - at - 1));
    std::string pe = clause.substr(colon + 1);
    if (pe.rfind("pe", 0) != 0) return false;
    ev->pe = std::stoi(pe.substr(2));
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

const char* EvictionPolicyName(EvictionPolicyKind kind) {
  switch (kind) {
    case EvictionPolicyKind::kLru:
      return "lru";
    case EvictionPolicyKind::kLruK:
      return "lru-k";
    case EvictionPolicyKind::kLfu:
      return "lfu";
    case EvictionPolicyKind::kClock:
      return "clock";
  }
  return "lru";
}

Status ParseEvictionPolicy(const std::string& name, EvictionPolicyKind* out) {
  if (name == "lru") {
    *out = EvictionPolicyKind::kLru;
  } else if (name == "lru-k" || name == "lru2" || name == "lru-2") {
    *out = EvictionPolicyKind::kLruK;
  } else if (name == "lfu") {
    *out = EvictionPolicyKind::kLfu;
  } else if (name == "clock") {
    *out = EvictionPolicyKind::kClock;
  } else {
    return Status::InvalidArgument(
        "unknown eviction policy (want lru|lru-k|lfu|clock): " + name);
  }
  return Status::OK();
}

Status ParseFaultSpec(const std::string& spec, FaultConfig* out) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;
    size_t eq = clause.find('=');
    if (eq != std::string::npos && clause.find('@') == std::string::npos) {
      std::string key = clause.substr(0, eq);
      std::string val = clause.substr(eq + 1);
      try {
        if (key == "rate") {
          out->crash_rate_per_pe_per_min = std::stod(val);
        } else if (key == "mttr") {
          out->mttr_ms = std::stod(val);
        } else if (key == "timeout") {
          out->query_timeout_ms = std::stod(val);
        } else if (key == "timeout_frac") {
          out->timeout_fraction = std::stod(val);
        } else if (key == "retries") {
          out->retry.max_attempts = std::stoi(val);
        } else {
          return Status::InvalidArgument("unknown fault-spec key: " + key);
        }
      } catch (...) {
        return Status::InvalidArgument("bad fault-spec value: " + clause);
      }
      continue;
    }
    FaultEvent ev;
    if (!ParseScheduledClause(clause, &ev)) {
      return Status::InvalidArgument("bad fault-spec clause: " + clause);
    }
    out->events.push_back(ev);
  }
  return Status::OK();
}

namespace strategies {

namespace {
StrategyConfig Isolated(DegreePolicyKind degree, SelectionPolicyKind sel) {
  StrategyConfig s;
  s.integrated = IntegratedPolicyKind::kNone;
  s.degree = degree;
  s.selection = sel;
  return s;
}
StrategyConfig Integrated(IntegratedPolicyKind kind) {
  StrategyConfig s;
  s.integrated = kind;
  return s;
}
}  // namespace

StrategyConfig PsuOptRandom() {
  return Isolated(DegreePolicyKind::kStaticSuOpt, SelectionPolicyKind::kRandom);
}
StrategyConfig PsuOptLUC() {
  return Isolated(DegreePolicyKind::kStaticSuOpt, SelectionPolicyKind::kLUC);
}
StrategyConfig PsuOptLUM() {
  return Isolated(DegreePolicyKind::kStaticSuOpt, SelectionPolicyKind::kLUM);
}
StrategyConfig PsuNoIORandom() {
  return Isolated(DegreePolicyKind::kStaticSuNoIO,
                  SelectionPolicyKind::kRandom);
}
StrategyConfig PsuNoIOLUC() {
  return Isolated(DegreePolicyKind::kStaticSuNoIO, SelectionPolicyKind::kLUC);
}
StrategyConfig PsuNoIOLUM() {
  return Isolated(DegreePolicyKind::kStaticSuNoIO, SelectionPolicyKind::kLUM);
}
StrategyConfig PmuCpuRandom() {
  return Isolated(DegreePolicyKind::kDynamicCpu, SelectionPolicyKind::kRandom);
}
StrategyConfig PmuCpuLUM() {
  return Isolated(DegreePolicyKind::kDynamicCpu, SelectionPolicyKind::kLUM);
}
StrategyConfig RateMatchRandom() {
  return Isolated(DegreePolicyKind::kRateMatch, SelectionPolicyKind::kRandom);
}
StrategyConfig RateMatchLUC() {
  return Isolated(DegreePolicyKind::kRateMatch, SelectionPolicyKind::kLUC);
}
StrategyConfig RateMatchLUM() {
  return Isolated(DegreePolicyKind::kRateMatch, SelectionPolicyKind::kLUM);
}
StrategyConfig MinIO() { return Integrated(IntegratedPolicyKind::kMinIO); }
StrategyConfig MinIOSuOpt() {
  return Integrated(IntegratedPolicyKind::kMinIOSuOpt);
}
StrategyConfig OptIOCpu() {
  return Integrated(IntegratedPolicyKind::kOptIOCpu);
}

}  // namespace strategies
}  // namespace pdblb
