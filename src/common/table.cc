// Copyright 2026 the pdblb authors. MIT license.

#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pdblb {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

std::string TextTable::ToString() const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());

  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < cols; ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      out << cell << std::string(width[i] - cell.size(), ' ');
      if (i + 1 < cols) out << "  ";
    }
    out << "\n";
  };
  emit(header_);
  size_t total = 0;
  for (size_t i = 0; i < cols; ++i) total += width[i] + (i + 1 < cols ? 2 : 0);
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace pdblb
