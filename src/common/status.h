// Copyright 2026 the pdblb authors. MIT license.
//
// A lightweight Status / StatusOr pair in the style used by large C++
// database code bases (Arrow, RocksDB, Abseil).  pdblb is an in-process
// simulator, so most errors indicate configuration mistakes; Status keeps
// them explicit without exceptions.

#ifndef PDBLB_COMMON_STATUS_H_
#define PDBLB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace pdblb {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kInternal,
  kIoError,
  kDeadlineExceeded,
  kUnavailable,
  kResourceExhausted,
};

/// Result of an operation: either OK or an error code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pdblb

#define PDBLB_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::pdblb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (false)

#endif  // PDBLB_COMMON_STATUS_H_
