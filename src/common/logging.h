// Copyright 2026 the pdblb authors. MIT license.
//
// Minimal leveled logging for the simulator.  Logging is off by default so
// that benchmark binaries produce clean tabular output; tests and debugging
// sessions can raise the level via SetLogLevel() or the PDBLB_LOG_LEVEL
// environment variable (0=off, 1=error, 2=info, 3=debug, 4=trace).

#ifndef PDBLB_COMMON_LOGGING_H_
#define PDBLB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pdblb {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
bool LogEnabled(LogLevel level);
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pdblb

#define PDBLB_LOG(level)                                  \
  if (!::pdblb::LogEnabled(::pdblb::LogLevel::level)) {   \
  } else                                                  \
    ::pdblb::internal::LogLine(::pdblb::LogLevel::level)

#endif  // PDBLB_COMMON_LOGGING_H_
