// Copyright 2026 the pdblb authors. MIT license.

#include "common/status.h"

namespace pdblb {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace pdblb
