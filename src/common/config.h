// Copyright 2026 the pdblb authors. MIT license.
//
// SystemConfig mirrors the parameter table of the paper (Fig. 4: "System
// configuration, database and query profile") plus the per-experiment knobs
// the evaluation section varies.  All defaults are the paper's settings.

#ifndef PDBLB_COMMON_CONFIG_H_
#define PDBLB_COMMON_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace pdblb {

/// CPU cost (instruction count) of every major processing step, as listed in
/// the paper's parameter table.
struct CpuCosts {
  int64_t initiate_txn = 25000;       ///< BOT: initiate a query/transaction.
  int64_t terminate_txn = 25000;      ///< EOT: terminate a query/transaction.
  int64_t io_overhead = 3000;         ///< CPU overhead per I/O operation.
  int64_t send_message = 5000;        ///< Send one message.
  int64_t receive_message = 10000;    ///< Receive one message.
  int64_t copy_message = 5000;        ///< Copy an 8 KB message buffer.
  int64_t read_tuple = 500;           ///< Read a tuple from a memory page.
  int64_t hash_tuple = 500;           ///< Hash a tuple's join attribute.
  int64_t insert_hash_table = 100;    ///< Insert a tuple into a hash table.
  int64_t write_output_tuple = 100;   ///< Write a tuple into an output buffer.
  int64_t probe_hash_table = 200;     ///< Probe the hash table with a tuple.
  int64_t sort_compare = 200;         ///< One comparison during sort/merge
                                      ///< (sort-merge baseline, not in the
                                      ///< paper's table).
};

/// Disk device / controller model parameters.
struct DiskConfig {
  int disks_per_pe = 10;                    ///< Disk servers per PE (varied).
  double controller_time_per_page_ms = 1.0; ///< Controller service per page.
  double transmission_time_per_page_ms = 0.4;
  double avg_access_time_ms = 15.0;         ///< Base (random) access time.
  double prefetch_delay_per_page_ms = 1.0;  ///< Extra delay per prefetched page.
  int disk_cache_pages = 200;               ///< LRU cache in the controller.
  int prefetch_pages = 4;                   ///< Pages read per prefetch I/O.
  double log_write_ms = 5.0;                ///< Sequential log append (OLTP).
};

/// Page-replacement policy of the per-PE buffer (see docs/bufmgr.md).
enum class EvictionPolicyKind {
  kLru,    ///< Least recently used (default; the paper's setting).
  kLruK,   ///< LRU-2: oldest second-to-last access (scan-resistant).
  kLfu,    ///< Least frequently used, with periodic counter aging.
  kClock,  ///< Second-chance ring.
};

/// Stable lowercase name, as accepted by --eviction ("lru", "lru-k", ...).
const char* EvictionPolicyName(EvictionPolicyKind kind);
/// Parses an --eviction value ("lru", "lru-k", "lfu", "clock").
Status ParseEvictionPolicy(const std::string& name, EvictionPolicyKind* out);

/// Main-memory database buffer parameters.
struct BufferConfig {
  int page_size_bytes = 8192;  ///< 8 KB pages.
  int buffer_pages = 50;       ///< 0.4 MB per PE (deliberately small, paper).
  EvictionPolicyKind eviction = EvictionPolicyKind::kLru;
  /// Sliding window used to estimate the protected (hot, twice-referenced)
  /// working set that join reservations must not displace.
  double working_set_window_ms = 2000.0;
  /// Short window for the "touched frames" estimate a PE reports to the
  /// control node as occupied memory (see DESIGN.md Section 4).
  double touched_window_ms = 300.0;
};

/// Kernel event tracing (src/simkern/tracer.h).  When enabled, every
/// dispatched event and hand-off resume is recorded into a pre-allocated
/// per-scheduler ring (most recent `capacity` records retained) and the
/// run's MetricsReport carries the per-subsystem attribution fold.  Has no
/// effect in PDBLB_TRACE=OFF builds (the hooks are compiled out).
struct TraceConfig {
  bool enabled = false;
  /// Records retained by the ring (rounded up to a power of two).  The
  /// attribution breakdown is exact for the whole run regardless of
  /// wrap-around; only the dumped record tail is bounded by this.
  int64_t capacity = 1 << 20;
};

/// Communication network parameters (packetized transmission, EDS-like).
struct NetworkConfig {
  int packet_size_bytes = 8192;      ///< Fixed packet size; larger messages
                                     ///< are disassembled into packets.
  double wire_time_per_packet_ms = 0.1;  ///< Pure transmission latency.
};

enum class IndexType {
  kNone,
  kClusteredBTree,
  kUnclusteredBTree,
};

/// System architecture (paper Section 7 / [27]: "the proposed strategies
/// are not limited to Shared Nothing but can equally be applied in Shared
/// Disk database systems").
enum class Architecture {
  /// Shared Nothing: each PE owns its disks; scans are bound to the data
  /// allocation (the paper's base architecture).
  kSharedNothing,
  /// Shared Disk: all PEs reach all spindles through the storage
  /// interconnect; scan operators are freely placeable, so the dynamic
  /// strategies also balance the scan work ([27]).  Per-PE storage adapters
  /// (controller + disk cache) and private buffers remain local.
  kSharedDisk,
};

/// Concurrency control between read-only queries and update transactions
/// (paper footnote 1: "Data contention problems between read-only queries
/// and update transactions may be solved by a multiversion concurrency
/// control scheme [4]").
enum class CcScheme {
  /// The paper's base assumption: workloads are partitioned so queries and
  /// updates never conflict; queries take no read locks.
  kNoReadLocks,
  /// Strict 2PL for everyone: queries acquire long page-level read locks on
  /// scanned ranges and block behind (and are blocked by) updaters.  The
  /// read-only optimized commit round releases the read locks.
  kTwoPhaseLocking,
  /// Multiversion CC [4]: queries read a snapshot without locks; update
  /// transactions maintain before-images (extra CPU per tuple and one
  /// version-pool page write per dirtied page).
  kMultiversion,
};

/// Local join algorithm run at each join processor.
enum class LocalJoinMethod {
  kPPHJ,       ///< Memory-adaptive Partially Preemptible Hash Join (paper).
  kSortMerge,  ///< Non-adaptive sort-merge baseline (predecessor study [26]).
};

/// One base relation (the paper's A and B relations plus OLTP relations).
struct RelationConfig {
  std::string name;
  int64_t num_tuples = 0;
  int tuple_size_bytes = 400;
  int blocking_factor = 20;  ///< Tuples per page.
  IndexType index = IndexType::kClusteredBTree;
  bool memory_resident = false;  ///< Simulate main-memory DB partitions.
};

/// Degree-of-parallelism policies (Section 3.1 of the paper, plus the
/// RateMatch baseline the paper critiques in Section 6).
enum class DegreePolicyKind {
  kStaticSuOpt,   ///< p_su-opt: single-user optimum from the cost model.
  kStaticSuNoIO,  ///< p_su-noIO: formula (3.1), avoids temp I/O single-user.
  kDynamicCpu,    ///< p_mu-cpu: formula (3.2), CPU-utilization adaptive.
  /// RateMatch (Mehta & DeWitt [20]): choose the degree so that the
  /// aggregate join consumption rate matches the scan production rate.
  /// Per-processor rates are derated by the *average* CPU and disk
  /// utilization, so the degree *rises* with system load — the behaviour
  /// the paper identifies as harmful beyond ~50% CPU utilization.  Memory
  /// availability is ignored entirely (their simplification).
  kRateMatch,
};

/// Join-processor selection policies (Section 3.2).
enum class SelectionPolicyKind {
  kRandom,  ///< Static random selection.
  kLUC,     ///< Least Utilized CPUs.
  kLUM,     ///< Least Utilized Memory (most free memory).
};

/// Integrated strategies (Section 3.3) that determine the degree and the
/// placement in a single step; kNone selects an isolated strategy instead.
enum class IntegratedPolicyKind {
  kNone,
  kMinIO,        ///< Minimal #PE avoiding (or minimizing) temp file I/O.
  kMinIOSuOpt,   ///< No-I/O selection closest to p_su-opt.
  kOptIOCpu,     ///< Best no-I/O selection capped by p_mu-cpu.
};

/// Full specification of one load-balancing strategy.
struct StrategyConfig {
  IntegratedPolicyKind integrated = IntegratedPolicyKind::kNone;
  DegreePolicyKind degree = DegreePolicyKind::kDynamicCpu;
  SelectionPolicyKind selection = SelectionPolicyKind::kLUM;
  /// When positive (and integrated == kNone) the degree of join parallelism
  /// is forced to this value — used to trace R(p) curves (paper Fig. 1).
  int fixed_degree = 0;
  /// Skew-aware subjoin assignment (the paper's conclusion sketch): pair the
  /// largest partition with the least-loaded selected PE instead of an
  /// arbitrary one.  Only observable when redistribution_skew > 0.
  bool skew_aware_assignment = false;

  /// Returns a printable name matching the paper's labels, e.g.
  /// "p_mu-cpu + LUM" or "OPT-IO-CPU".
  std::string Name() const;
};

/// Join query class (two scans + join, paper Section 5.1).
struct JoinQueryConfig {
  double scan_selectivity = 0.01;   ///< Fraction of tuples selected (varied).
  double result_size_factor = 1.0;  ///< Result tuples = factor * inner output.
  double fudge_factor = 1.05;       ///< Hash table overhead F.
  double arrival_rate_per_pe_qps = 0.25;  ///< Open arrivals per PE per second.
  /// Redistribution skew: Zipf exponent of the partition-size distribution
  /// produced by the partitioning function.  0 = the paper's no-skew base
  /// assumption (equal subjoins); ~1 = heavy attribute-value skew.
  double redistribution_skew = 0.0;
};

/// Base relation targeted by a standalone scan/update query class.
enum class TargetRelation {
  kA,  ///< The smaller relation (20% of PEs).
  kB,  ///< The larger relation (80% of PEs).
  kC,  ///< The multi-way join relation (declustered over all PEs).
};

/// Access path of a standalone scan query class (paper Section 4 lists
/// relation scan, clustered index scan and non-clustered index scan).
enum class ScanAccess {
  kRelationScan,      ///< Read every fragment page.
  kClusteredIndex,    ///< Descend, then read only the selected range.
  kUnclusteredIndex,  ///< Descend, then one leaf + one data page per tuple.
};

/// Standalone scan query class with its own open arrival stream.
struct ScanQueryConfig {
  bool enabled = false;
  ScanAccess access = ScanAccess::kClusteredIndex;
  TargetRelation relation = TargetRelation::kB;
  double selectivity = 0.01;  ///< Fraction of tuples satisfying the predicate.
  double arrival_rate_per_pe_qps = 0.0;
};

/// Update statement class (paper Section 4: "update statements (both with
/// and without index support)").  Updates run under strict 2PL with a full
/// two-phase distributed commit.
struct UpdateQueryConfig {
  bool enabled = false;
  bool index_supported = true;  ///< Without index: full scan to find tuples.
  TargetRelation relation = TargetRelation::kA;
  double selectivity = 0.001;   ///< Fraction of tuples updated.
  double arrival_rate_per_pe_qps = 0.0;
};

/// Multi-way join query class: a left-deep pipeline of hash joins
/// (A ⋈ B) ⋈ C [⋈ C ...] with dynamic redistribution between stages.
struct MultiwayJoinConfig {
  bool enabled = false;
  int ways = 3;  ///< Number of input relations (>= 3).
  double arrival_rate_per_pe_qps = 0.0;
};

/// Where the OLTP transaction load is routed (heterogeneous workloads).
enum class OltpPlacement {
  kANodes,  ///< On the 20% of PEs holding relation A fragments.
  kBNodes,  ///< On the 80% of PEs holding relation B fragments.
  kAllNodes,
};

/// Debit-credit-like OLTP class (4 non-clustered index selects + updates).
struct OltpConfig {
  bool enabled = false;
  double tps_per_node = 100.0;  ///< Arrival rate per OLTP node.
  int tuple_accesses = 4;       ///< Tuple reads (each via unclustered index).
  bool updates = true;          ///< Update each accessed tuple.
  OltpPlacement placement = OltpPlacement::kANodes;
  /// Tuples per OLTP node in the OLTP-private relation (controls buffer-hit
  /// behaviour and thus the OLTP node's disk/memory utilization).
  int64_t tuples_per_node = 100000;
  int blocking_factor = 20;
  /// Debit-credit style access skew: a `hot_access_fraction` share of tuple
  /// accesses goes to the first `hot_pages` pages (branch/teller records),
  /// the rest is uniform over the fragment (account records).
  double hot_access_fraction = 0.85;
  int64_t hot_pages = 22;
};

/// One scripted fault event.  Crash/recover pairs drive the PE failure
/// model: a crashed PE aborts its resident work, releases buffer/lock
/// resources and rejects new placements until it recovers.  The gray-failure
/// kinds degrade a PE or a link without killing it: slow disks multiply the
/// disk service time, partitions make a PE pair mutually unreachable (heal
/// reverses), and slow links stretch the wire delay of one directed pair.
enum class FaultKind {
  kCrash,
  kRecover,
  kSlowDisk,   ///< Multiply PE `pe`'s disk service times by `factor`.
  kPartition,  ///< Cut the link between `pe` and `pe2` (symmetric).
  kHeal,       ///< Restore the link between `pe` and `pe2`.
  kSlowLink,   ///< Multiply the pe->pe2 wire delay by `factor` (both ways).
  kAddPe,      ///< Elastic add: PE `pe` (a spare, excluded from the initial
               ///< declustering) joins the cluster; fragments migrate to it.
  kDrainPe,    ///< Elastic drain: PE `pe` stops taking new placements, its
               ///< fragments migrate out, then it leaves the membership.
};

struct FaultEvent {
  double at_ms = 0.0;  ///< Simulation time (measured from run start).
  FaultKind kind = FaultKind::kCrash;
  int pe = 0;
  int pe2 = -1;         ///< Second endpoint (partition/heal/slowlink only).
  double factor = 1.0;  ///< Service/delay multiplier (slowdisk/slowlink);
                        ///< >= 1 so sharded-window lookaheads stay valid.
                        ///< 1.0 restores normal speed.
};

/// Retry policy for queries that fail with kUnavailable (a participant PE
/// crashed mid-query).  Backoff is capped exponential with seeded jitter:
/// attempt k sleeps min(initial * multiplier^(k-1), max) * (1 ± jitter*U),
/// where U is drawn from the workload RNG stream — deterministic per seed.
/// Queries that exceed their deadline (kDeadlineExceeded) never retry.
struct RetryPolicy {
  int max_attempts = 3;             ///< Total attempts including the first.
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  double jitter_frac = 0.2;         ///< Relative jitter, in [0, 1].
};

/// Fault-injection and query-timeout configuration.  Disabled by default;
/// when disabled the engine runs the exact event sequence of previous
/// versions (no supervision wrappers, no extra RNG draws).
struct FaultConfig {
  /// Explicit schedule (applied as given, in addition to the rate model).
  std::vector<FaultEvent> events;
  /// Random crash model: each PE crashes as a Poisson process with this
  /// rate and recovers mttr_ms later.  The schedule is pre-generated from
  /// a dedicated fork of the root seed, so it is identical across
  /// --jobs/--shards and reruns.
  double crash_rate_per_pe_per_min = 0.0;
  double mttr_ms = 3000.0;
  /// Per-query deadline; 0 disables timeouts.  `timeout_fraction` of
  /// queries (chosen by the workload RNG) carry the deadline.
  double query_timeout_ms = 0.0;
  double timeout_fraction = 1.0;
  RetryPolicy retry;
  /// Transient disk errors: each physical disk access fails with this
  /// probability (drawn from a dedicated per-PE RNG fork) and is retried at
  /// the driver with a fixed penalty, up to `io_retry_limit` retries per
  /// access; a chain that exhausts its retries surfaces the last error
  /// without another reissue, so io_errors >= io_retries always holds.
  double io_error_rate = 0.0;
  int io_retry_limit = 3;
  double io_retry_penalty_ms = 5.0;

  /// True when PE failures or gray faults are configured (scripted or by
  /// rate): the fault processes are spawned and queries run supervised.
  bool FailuresEnabled() const {
    return !events.empty() || crash_rate_per_pe_per_min > 0.0;
  }
  /// True when per-query deadlines are configured.
  bool TimeoutsEnabled() const {
    return query_timeout_ms > 0.0 && timeout_fraction > 0.0;
  }
  /// True when transient disk errors are configured.  Pure latency faults:
  /// no supervision needed, the driver absorbs the retries.
  bool DiskFaultsEnabled() const { return io_error_rate > 0.0; }
  /// True when elastic membership events (addpe/drainpe) are scheduled.
  /// Implies FailuresEnabled() (the events vector is non-empty).
  bool ElasticEnabled() const {
    for (const FaultEvent& ev : events) {
      if (ev.kind == FaultKind::kAddPe || ev.kind == FaultKind::kDrainPe) {
        return true;
      }
    }
    return false;
  }
  /// True when queries need supervision (retry/timeout/abort handling).
  bool Enabled() const { return FailuresEnabled() || TimeoutsEnabled(); }
};

/// Parses a fault specification string into `out` (merging with its current
/// values).  Grammar (clauses separated by ';', see docs/robustness.md):
///
///   crash@<ms>:pe<N>      schedule a crash of PE N at time <ms>
///   recover@<ms>:pe<N>    schedule a recovery of PE N at time <ms>
///   slowdisk@<ms>:pe<N>:x<M>        multiply PE N's disk service by M (>= 1;
///                                   x1 restores normal speed)
///   partition@<ms>:pe<A>-pe<B>      cut the A<->B link at time <ms>
///   heal@<ms>:pe<A>-pe<B>           restore the A<->B link
///   slowlink@<ms>:pe<A>-pe<B>:x<M>  multiply the A<->B wire delay by M
///   addpe@<ms>:pe<N>      elastic resize: spare PE N joins at time <ms>
///                         (N is held out of the initial declustering)
///   drainpe@<ms>:pe<N>    elastic resize: PE N drains (fragments migrate
///                         out, then N leaves the membership)
///   rate=<r>              random crashes per PE per minute
///   mttr=<ms>             mean time to repair for random crashes
///   timeout=<ms>          per-query deadline
///   timeout_frac=<f>      fraction of queries carrying the deadline
///   retries=<n>           RetryPolicy::max_attempts
///   iorate=<r>            transient disk error probability per access
///
/// Example: "crash@8000:pe3;recover@12000:pe3;timeout=5000".
/// Unknown terms and out-of-range values are rejected eagerly with a
/// descriptive error (PE indices are range-checked later, in Validate()).
Status ParseFaultSpec(const std::string& spec, FaultConfig* out);

/// Overload-adaptive graceful degradation.  The control node classifies the
/// system per load-report round (control_report_interval_ms) from the avg
/// alive-PE CPU utilization and the avg admission queue depth:
///
///   normal --(pressure >= degrade thresholds for enter_rounds)--> degraded
///   degraded --(queue >= shed threshold for enter_rounds)-------> shedding
///   shedding --(queue < exit threshold for exit_rounds)---------> degraded
///   degraded --(pressure < exit thresholds for exit_rounds)-----> normal
///
/// While degraded, join plans are capped at ceil(alive * parallelism_factor)
/// PEs and counted via queries_degraded; while shedding, new complex queries
/// are additionally rejected at admission with kResourceExhausted and
/// counted via queries_shed.  Exit thresholds sit below the enter thresholds
/// (hysteresis), so the state cannot flap on a single borderline round.
struct OverloadConfig {
  bool enabled = false;
  /// Enter degraded when cpu >= this OR queue >= degrade_queue_threshold.
  double degrade_cpu_threshold = 0.90;
  double degrade_queue_threshold = 4.0;
  /// Escalate degraded -> shedding when queue >= this.
  double shed_queue_threshold = 16.0;
  /// De-escalate when cpu < exit_cpu AND queue < exit_queue.
  double exit_cpu_threshold = 0.75;
  double exit_queue_threshold = 2.0;
  int enter_rounds = 2;  ///< Consecutive hot rounds before escalating.
  int exit_rounds = 3;   ///< Consecutive cool rounds before de-escalating.
  /// Degree cap while degraded/shedding: ceil(alive * this), at least 1.
  double parallelism_factor = 0.5;
};

/// Elastic cluster resize (engine/elastic.h).  Only consulted when the fault
/// schedule contains addpe/drainpe events; otherwise no migration machinery
/// runs and event streams are untouched.
struct ElasticConfig {
  /// Migration bandwidth cap in MB/s per active fragment move.  Each page
  /// batch takes at least batch_bytes / cap simulated time, so foreground
  /// queries keep most of the network/disk capacity (--migration-bw).
  double migration_bw_mbps = 32.0;
  /// Pages copied per migration batch.  The batch is the unit of crash
  /// unwind: a crash mid-batch discards the partial destination pages.
  int migration_batch_pages = 16;
};

/// Top-level configuration; defaults reproduce the paper's base setting.
struct SystemConfig {
  // --- configuration settings -------------------------------------------
  int num_pes = 40;            ///< #PE, varied in {10,20,40,60,80}.
  int cpus_per_pe = 1;
  double mips_per_pe = 20.0;   ///< CPU speed per PE.
  CpuCosts costs;
  DiskConfig disk;
  BufferConfig buffer;
  NetworkConfig network;
  int multiprogramming_level = 64;  ///< Max concurrent txns per PE.

  // --- database ----------------------------------------------------------
  RelationConfig relation_a{.name = "A", .num_tuples = 250000};
  RelationConfig relation_b{.name = "B", .num_tuples = 1000000};
  /// Third relation for multi-way joins; declustered over all PEs.
  RelationConfig relation_c{.name = "C", .num_tuples = 500000};
  /// Fraction of PEs holding relation A (paper: 20%; B gets the rest).
  double a_node_fraction = 0.2;

  // --- workload ----------------------------------------------------------
  JoinQueryConfig join_query;
  ScanQueryConfig scan_query;
  UpdateQueryConfig update_query;
  MultiwayJoinConfig multiway_join;
  OltpConfig oltp;
  StrategyConfig strategy;

  // --- control node ------------------------------------------------------
  /// Period with which PEs report CPU/memory utilization to the control node.
  /// Between reports the control node extrapolates via the adaptive
  /// LUC/LUM feedback (NoteJoinScheduled).
  double control_report_interval_ms = 1000.0;
  /// Artificial utilization bump applied at the control node when a PE is
  /// selected for join processing (the "adaptive variation" of LUC/LUM).
  bool adaptive_selection_feedback = true;
  /// PPHJ memory adaptivity: running joins opportunistically re-expand
  /// their working space when buffer pages free up (ablation knob).
  bool pphj_opportunistic_growth = true;
  /// Local join algorithm (PPHJ per the paper; sort-merge as the [26]
  /// baseline for the ablation bench).
  LocalJoinMethod local_join_method = LocalJoinMethod::kPPHJ;
  /// Read-query/update concurrency control (paper footnote 1).
  CcScheme cc_scheme = CcScheme::kNoReadLocks;
  /// Shared Nothing (paper) or Shared Disk ([27] extension).
  Architecture architecture = Architecture::kSharedNothing;

  // --- simulation --------------------------------------------------------
  uint64_t seed = 42;
  /// Scheduler shards for intra-simulation execution (simkern/sharded.h).
  /// 1 = the single-queue kernel.  >1 drives the run through the
  /// conservative-window pacing with the netsim wire time as lookahead.
  /// Honest scope note: the figure-driver executors share cross-PE state
  /// (workload RNG drawn in global arrival order, synchronous control-node
  /// reads, global metrics folds), so a Cluster cannot be partitioned
  /// without changing results — with >1 it runs as ONE logical shard group
  /// on one thread, prints a one-time stderr note saying so, and stays
  /// bit-identical to shards=1 (CI compares --shards=3 and --shards=4
  /// CSVs against --shards=1).  Workloads written to the confinement
  /// discipline do parallelize: the shard-confined engine
  /// (engine/confined.h, bench ConfinedClusterHeavy) and the bench_simkern
  /// Sharded* shapes run S calendars on S threads.  docs/sharding.md has
  /// the full story.
  int shards = 1;
  TraceConfig trace;
  /// Fault injection and per-query deadlines (engine/faults.h).  Disabled
  /// by default; see FaultConfig.
  FaultConfig faults;
  /// Overload-adaptive degradation thresholds (core/control_node.h).
  /// Disabled by default: ShouldShed() is then constant-false and the
  /// degree cap is a no-op, so plans and event streams are untouched.
  OverloadConfig overload;
  /// Elastic resize knobs (migration bandwidth/batching); inert unless the
  /// fault schedule contains addpe/drainpe events.
  ElasticConfig elastic;
  double warmup_ms = 5000.0;        ///< Statistics reset after warm-up.
  double measurement_ms = 60000.0;  ///< Measured simulation horizon.
  /// Single-user mode: join queries run back to back with nothing else in
  /// the system (the paper's baseline curves).  Open arrivals are disabled.
  bool single_user_mode = false;
  int single_user_queries = 30;     ///< Queries executed in single-user mode.

  // --- derived quantities --------------------------------------------------
  int NumANodes() const;
  int NumBNodes() const { return num_pes - NumANodes(); }
  /// Pages of a relation: ceil(num_tuples / blocking_factor).
  static int64_t RelationPages(const RelationConfig& rel);
  /// Pages of the join's inner input (scan output on A) including nothing:
  /// ceil(selected tuples / blocking factor).
  int64_t InnerInputPages() const;
  int64_t OuterInputPages() const;
  int64_t InnerInputTuples() const;
  int64_t OuterInputTuples() const;

  /// Validates parameter ranges; returns the first violation found.
  Status Validate() const;
};

/// Strategy shorthands used throughout benches/examples/tests.
namespace strategies {
StrategyConfig PsuOptRandom();
StrategyConfig PsuOptLUC();
StrategyConfig PsuOptLUM();
StrategyConfig PsuNoIORandom();
StrategyConfig PsuNoIOLUC();
StrategyConfig PsuNoIOLUM();
StrategyConfig PmuCpuRandom();
StrategyConfig PmuCpuLUM();
StrategyConfig RateMatchRandom();
StrategyConfig RateMatchLUC();
StrategyConfig RateMatchLUM();
StrategyConfig MinIO();
StrategyConfig MinIOSuOpt();
StrategyConfig OptIOCpu();
}  // namespace strategies

}  // namespace pdblb

#endif  // PDBLB_COMMON_CONFIG_H_
