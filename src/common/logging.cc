// Copyright 2026 the pdblb authors. MIT license.

#include "common/logging.h"

#include <cstdlib>
#include <iostream>

namespace pdblb {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("PDBLB_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kOff;
  int value = std::atoi(env);
  if (value < 0) value = 0;
  if (value > 4) value = 4;
  return static_cast<LogLevel>(value);
}

LogLevel& MutableLevel() {
  static LogLevel level = InitialLevel();
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kTrace:
      return "T";
    default:
      return "?";
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { MutableLevel() = level; }

LogLevel GetLogLevel() { return MutableLevel(); }

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(MutableLevel()) &&
         level != LogLevel::kOff;
}

void LogMessage(LogLevel level, const std::string& message) {
  if (!LogEnabled(level)) return;
  std::cerr << "[pdblb " << LevelTag(level) << "] " << message << "\n";
}

}  // namespace pdblb
