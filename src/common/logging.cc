// Copyright 2026 the pdblb authors. MIT license.

#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace pdblb {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("PDBLB_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kOff;
  int value = std::atoi(env);
  if (value < 0) value = 0;
  if (value > 4) value = 4;
  return static_cast<LogLevel>(value);
}

// Atomic so parallel sweep workers can log (and tests can flip the level)
// without a data race; the level is read on every PDBLB_LOG macro hit.
std::atomic<int>& MutableLevel() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kTrace:
      return "T";
    default:
      return "?";
  }
}

}  // namespace

void SetLogLevel(LogLevel level) {
  MutableLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(MutableLevel().load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <=
             MutableLevel().load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}

void LogMessage(LogLevel level, const std::string& message) {
  if (!LogEnabled(level)) return;
  // One fwrite per line so lines from concurrent workers never interleave
  // mid-message.
  std::string line = "[pdblb ";
  line += LevelTag(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace pdblb
