// Copyright 2026 the pdblb authors. MIT license.
//
// A small fixed-width text table printer used by the benchmark harness and
// example programs to emit the rows/series of the paper's figures.

#ifndef PDBLB_COMMON_TABLE_H_
#define PDBLB_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace pdblb {

/// Builds an aligned, plain-text table.
///
/// Usage:
///   TextTable t({"# PE", "strategy", "resp time [ms]"});
///   t.AddRow({"10", "MIN-IO", "213.4"});
///   std::cout << t.ToString();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one data row.  Rows shorter than the header are padded with
  /// empty cells; longer rows extend the column count.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats a double with the given precision.
  static std::string Num(double value, int precision = 1);

  /// Renders the table with a header underline.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdblb

#endif  // PDBLB_COMMON_TABLE_H_
