// Copyright 2026 the pdblb authors. MIT license.
//
// LocalJoin: the interface every local join method implements at one join
// processor.  The parallel join executor drives it through the same protocol
// regardless of the algorithm:
//
//   AcquireMemory();                 // FCFS memory queue
//   InsertInnerBatch(tuples)...      // building phase (inner input arrives)
//   ProbeBatch(tuples)...            // probing phase (outer input arrives)
//   CompleteProbe();                 // deferred work (spilled partitions/runs)
//   Release();                       // return the working space
//
// Implementations: Pphj (the paper's memory-adaptive hash join, join/pphj.h)
// and SortMergeJoin (the non-adaptive baseline used by the predecessor study
// [26], join/sort_merge.h).

#ifndef PDBLB_JOIN_LOCAL_JOIN_H_
#define PDBLB_JOIN_LOCAL_JOIN_H_

#include <cstdint>
#include <memory>

#include "bufmgr/buffer_manager.h"
#include "common/config.h"
#include "iosim/disk.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb {

/// One local join = one join processor's share of one parallel join query.
class LocalJoin {
 public:
  virtual ~LocalJoin() = default;

  /// Waits in the buffer manager's FCFS memory queue until the method's
  /// minimum working space is granted.
  virtual sim::Task<> AcquireMemory() = 0;

  /// Consumes a batch of redistributed inner tuples.
  virtual sim::Task<> InsertInnerBatch(int64_t tuples) = 0;

  /// Consumes a batch of redistributed outer tuples.
  virtual sim::Task<> ProbeBatch(int64_t tuples) = 0;

  /// Finishes deferred work once the outer input is exhausted (disk-resident
  /// partitions for PPHJ, run merging for sort-merge).
  virtual sim::Task<> CompleteProbe() = 0;

  /// Returns the working space.  Idempotent.
  virtual void Release() = 0;

  // --- accounting (figure metrics) -----------------------------------------
  virtual int64_t temp_pages_written() const = 0;
  virtual int64_t temp_pages_read() const = 0;
};

/// Method-independent construction parameters.
struct LocalJoinParams {
  int32_t temp_relation_id = -1;    ///< Namespace for temp-file pages.
  int64_t expected_inner_tuples = 0;  ///< This PE's share of the inner input.
  int64_t expected_outer_tuples = 0;  ///< This PE's share of the outer input.
  int blocking_factor = 20;         ///< Tuples per page.
  double fudge_factor = 1.05;       ///< Hash-table overhead F (PPHJ).
  int want_pages = 0;               ///< Planner's working-space target.
  int write_batch_pages = 4;        ///< Temp-file write batching.
  bool opportunistic_growth = true;  ///< PPHJ TryGrow (ablation knob).
};

/// Factory over SystemConfig::local_join_method.
std::unique_ptr<LocalJoin> CreateLocalJoin(
    LocalJoinMethod method, sim::Scheduler& sched, BufferManager& buffer,
    DiskArray& disks, sim::Resource& cpu, const CpuCosts& costs, double mips,
    const LocalJoinParams& params);

}  // namespace pdblb

#endif  // PDBLB_JOIN_LOCAL_JOIN_H_
