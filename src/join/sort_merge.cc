// Copyright 2026 the pdblb authors. MIT license.

#include "join/sort_merge.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "join/pphj.h"

namespace pdblb {

namespace {

int64_t CeilLog2(int64_t n) {
  int64_t levels = 0;
  while ((int64_t{1} << levels) < n) ++levels;
  return levels;
}

}  // namespace

SortMergeJoin::SortMergeJoin(sim::Scheduler& sched, BufferManager& buffer,
                             DiskArray& disks, sim::Resource& cpu,
                             const CpuCosts& costs, double mips,
                             LocalJoinParams params)
    : sched_(sched), buffer_(buffer), disks_(disks), cpu_(cpu), costs_(costs),
      mips_(mips), params_(params) {
  // Merging needs at least two input runs plus one output page.
  min_pages_ = std::min(3, buffer_.capacity());
}

SortMergeJoin::~SortMergeJoin() { Release(); }

int SortMergeJoin::PagesForTuples(int64_t tuples) const {
  if (tuples <= 0) return 0;
  return static_cast<int>((tuples + params_.blocking_factor - 1) /
                          params_.blocking_factor);
}

int64_t SortMergeJoin::RunGenInstrPerTuple() const {
  int64_t run_tuples = static_cast<int64_t>(reserved_pages_) *
                       static_cast<int64_t>(params_.blocking_factor);
  return costs_.read_tuple +
         costs_.sort_compare * CeilLog2(std::max<int64_t>(2, run_tuples));
}

sim::Task<> SortMergeJoin::AcquireMemory() {
  assert(!acquired_);
  int want = std::min(std::max(params_.want_pages, min_pages_),
                      buffer_.capacity());
  reserved_pages_ = co_await buffer_.ReserveWait(min_pages_, want);
  acquired_ = true;
  // Deliberately *not* registered as a MemoryVictim: classic sort-merge
  // holds its working space until the join finishes.
}

void SortMergeJoin::SpillRun(int pages) {
  if (pages <= 0) return;
  ++spilled_runs_;
  spilled_pages_ += pages;
  temp_pages_written_ += pages;
  PageKey first{params_.temp_relation_id, next_temp_page_};
  next_temp_page_ += pages;
  // Asynchronous sequential write of the sorted run.
  sched_.Spawn(disks_.WriteBatch(first, pages));
}

sim::Task<> SortMergeJoin::ConsumeBatch(int64_t tuples, int64_t* received,
                                        int64_t* buffered_tuples) {
  assert(acquired_);
  *received += tuples;
  co_await cpu_.Use(InstructionsToMs(tuples * RunGenInstrPerTuple(), mips_));
  *buffered_tuples += tuples;
  // Spill full runs; the last (possibly partial) run stays in memory until
  // we know whether everything fits.
  int64_t run_tuples = static_cast<int64_t>(reserved_pages_) *
                       static_cast<int64_t>(params_.blocking_factor);
  while (*buffered_tuples > run_tuples) {
    // The other input's buffered run shares the working space: if both
    // sides hold data, half the space each.
    int64_t other = (buffered_tuples == &inner_buffered_) ? outer_buffered_
                                                          : inner_buffered_;
    int64_t capacity = other > 0 ? run_tuples / 2 : run_tuples;
    capacity = std::max<int64_t>(capacity,
                                 params_.blocking_factor);  // >= 1 page
    if (*buffered_tuples <= capacity) break;
    SpillRun(PagesForTuples(capacity));
    *buffered_tuples -= capacity;
  }
}

sim::Task<> SortMergeJoin::InsertInnerBatch(int64_t tuples) {
  return ConsumeBatch(tuples, &inner_received_, &inner_buffered_);
}

sim::Task<> SortMergeJoin::ProbeBatch(int64_t tuples) {
  return ConsumeBatch(tuples, &outer_received_, &outer_buffered_);
}

sim::Task<> SortMergeJoin::CompleteProbe() {
  assert(acquired_);
  const int64_t total_tuples = inner_received_ + outer_received_;

  if (spilled_runs_ > 0) {
    // The buffered partial runs must be spilled too; the merge needs the
    // working space for its input buffers.
    if (inner_buffered_ > 0) SpillRun(PagesForTuples(inner_buffered_));
    if (outer_buffered_ > 0) SpillRun(PagesForTuples(outer_buffered_));
    inner_buffered_ = outer_buffered_ = 0;

    // Multi-pass merge until the runs fit the merge fan-in (one page per
    // input run plus one output page).
    int fan_in = std::max(2, reserved_pages_ - 1);
    int runs = spilled_runs_;
    while (runs > fan_in) {
      ++extra_merge_passes_;
      // One full pass: read everything, merge, write everything back.
      co_await disks_.ReadStriped(PageKey{params_.temp_relation_id, 0},
                                  spilled_pages_);
      temp_pages_read_ += spilled_pages_;
      temp_pages_written_ += spilled_pages_;
      sched_.Spawn(disks_.WriteBatch(
          PageKey{params_.temp_relation_id, next_temp_page_},
          static_cast<int>(spilled_pages_)));
      next_temp_page_ += spilled_pages_;
      co_await cpu_.Use(InstructionsToMs(
          total_tuples * costs_.sort_compare * CeilLog2(fan_in), mips_));
      runs = (runs + fan_in - 1) / fan_in;
    }

    // Final merge pass feeds the merge-join directly.
    co_await disks_.ReadStriped(PageKey{params_.temp_relation_id, 0},
                                spilled_pages_);
    temp_pages_read_ += spilled_pages_;
    co_await cpu_.Use(InstructionsToMs(
        total_tuples * costs_.sort_compare *
            CeilLog2(std::max(2, std::min(runs, fan_in))),
        mips_));
  }

  // Merge-join of the two sorted streams: one comparison per input tuple.
  co_await cpu_.Use(
      InstructionsToMs(total_tuples * costs_.sort_compare, mips_));
}

void SortMergeJoin::Release() {
  if (!acquired_ || released_) return;
  released_ = true;
  // See Pphj::Release: no reservation accounting at scheduler teardown.
  if (sched_.tearing_down()) return;
  buffer_.ReleaseReservation(reserved_pages_);
  reserved_pages_ = 0;
}

// ----------------------------------------------------------------- factory

std::unique_ptr<LocalJoin> CreateLocalJoin(
    LocalJoinMethod method, sim::Scheduler& sched, BufferManager& buffer,
    DiskArray& disks, sim::Resource& cpu, const CpuCosts& costs, double mips,
    const LocalJoinParams& params) {
  switch (method) {
    case LocalJoinMethod::kSortMerge:
      return std::make_unique<SortMergeJoin>(sched, buffer, disks, cpu, costs,
                                             mips, params);
    case LocalJoinMethod::kPPHJ:
      break;
  }
  Pphj::Params pphj;
  pphj.temp_relation_id = params.temp_relation_id;
  pphj.expected_inner_tuples = params.expected_inner_tuples;
  pphj.blocking_factor = params.blocking_factor;
  pphj.fudge_factor = params.fudge_factor;
  pphj.want_pages = params.want_pages;
  pphj.write_batch_pages = params.write_batch_pages;
  pphj.opportunistic_growth = params.opportunistic_growth;
  return std::make_unique<Pphj>(sched, buffer, disks, cpu, costs, mips, pphj);
}

}  // namespace pdblb
