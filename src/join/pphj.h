// Copyright 2026 the pdblb authors. MIT license.
//
// Partially Preemptible Hash Join (PPHJ, after Pang/Carey/Livny [23]) —
// the memory-adaptive local join algorithm each join processor runs
// (paper Section 4, "Hash join processing"):
//
//  * both inputs are split into p = ceil(sqrt(F * b_A)) partitions, so any
//    single partition fits in p pages of memory;
//  * as many inner (A) partitions as possible are kept memory-resident for
//    direct probing; under memory pressure resident partitions are spilled
//    to temporary files on the local disks;
//  * outer (B) tuples whose partition is not resident are deferred to
//    temporary B partitions and joined at the end (read A partition, build,
//    read B partition, probe);
//  * the join starts only when its minimum working space (p pages) is
//    available — otherwise it waits in the buffer manager's FCFS memory
//    queue — and suspends if stolen below the minimum.
//
// The simulator models partitions as equal slices of the received input
// (uniform hashing, the paper's no-redistribution-skew assumption), which
// makes the spill/restore accounting exact without materializing tuples.

#ifndef PDBLB_JOIN_PPHJ_H_
#define PDBLB_JOIN_PPHJ_H_

#include <cstdint>

#include "bufmgr/buffer_manager.h"
#include "common/config.h"
#include "iosim/disk.h"
#include "join/local_join.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb {

/// One PPHJ instance = one join processor's share of one join query.
class Pphj : public LocalJoin, public MemoryVictim {
 public:
  struct Params {
    int32_t temp_relation_id = -1;   ///< Namespace for temp-file pages.
    int64_t expected_inner_tuples = 0;  ///< This PE's share of the inner input.
    int blocking_factor = 20;        ///< Tuples per page.
    double fudge_factor = 1.05;      ///< Hash-table overhead F.
    int want_pages = 0;              ///< Planner's working-space target.
    int write_batch_pages = 4;       ///< Temp-file write batching.
    bool opportunistic_growth = true;  ///< TryGrow enabled (ablation knob).
  };

  Pphj(sim::Scheduler& sched, BufferManager& buffer, DiskArray& disks,
       sim::Resource& cpu, const CpuCosts& costs, double mips, Params params);
  ~Pphj() override;

  /// Waits in the FCFS memory queue until the minimum working space
  /// (p pages) is granted, then registers as a steal victim.
  sim::Task<> AcquireMemory() override;

  /// Consumes a batch of inner tuples: hash + insert CPU, spills resident
  /// partitions when the working space overflows.
  sim::Task<> InsertInnerBatch(int64_t tuples) override;

  /// Opportunistic growth (PPHJ keeps as much of A memory-resident as it
  /// can): grabs unconsumed buffer pages up to the planner's target.  Called
  /// on every batch; cheap when nothing is free.
  void TryGrow();

  /// Consumes a batch of outer tuples: probes the resident fraction
  /// directly, defers the rest to temporary B partitions.
  sim::Task<> ProbeBatch(int64_t tuples) override;

  /// Joins the disk-resident partitions (read A partition, rebuild, read B
  /// partition, probe).  Call after the outer input is exhausted.
  sim::Task<> CompleteProbe() override;

  /// Returns the working space to the buffer manager.  Idempotent.
  void Release() override;

  // --- MemoryVictim --------------------------------------------------------
  int StealPages(int wanted) override;
  int ReservedPages() const override { return reserved_pages_; }

  // --- introspection -------------------------------------------------------
  int num_partitions() const { return num_partitions_; }
  int resident_partitions() const { return resident_partitions_; }
  int min_pages() const { return min_pages_; }
  int64_t inner_tuples_received() const { return inner_received_; }
  /// Fraction of the inner input currently memory-resident.
  double ResidentFraction() const;
  int64_t temp_pages_written() const override { return temp_pages_written_; }
  int64_t temp_pages_read() const override { return temp_pages_read_; }
  int64_t direct_probes() const { return direct_probes_; }
  int64_t deferred_probes() const { return deferred_probes_; }
  bool suspended() const { return suspended_; }

 private:
  int PagesForTuples(int64_t tuples) const;
  /// Spills resident partitions until the resident pages fit `limit`.
  /// Returns pages freed.  Writes are issued asynchronously.
  int SpillDownTo(int limit);
  /// Flushes accumulated temp-file appends in write batches.
  void FlushAppends(bool final_flush);
  /// Re-acquires the minimum working space after a deep steal.
  sim::Task<> EnsureMinimumMemory();

  sim::Scheduler& sched_;
  BufferManager& buffer_;
  DiskArray& disks_;
  sim::Resource& cpu_;
  CpuCosts costs_;
  double mips_;
  Params params_;

  int num_partitions_ = 1;
  int min_pages_ = 1;
  int reserved_pages_ = 0;
  bool acquired_ = false;
  bool released_ = false;
  bool suspended_ = false;

  int resident_partitions_ = 0;
  int64_t inner_received_ = 0;       // total inner tuples seen
  int64_t mem_inner_tuples_ = 0;     // tuples in resident partitions
  int64_t disk_inner_tuples_ = 0;    // tuples in spilled partitions
  int64_t disk_outer_tuples_ = 0;    // deferred outer tuples

  int64_t pending_append_pages_ = 0;  // buffered temp writes not yet issued
  int64_t next_temp_page_ = 0;

  int64_t temp_pages_written_ = 0;
  int64_t temp_pages_read_ = 0;
  int64_t direct_probes_ = 0;
  int64_t deferred_probes_ = 0;
};

}  // namespace pdblb

#endif  // PDBLB_JOIN_PPHJ_H_
