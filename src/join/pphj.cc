// Copyright 2026 the pdblb authors. MIT license.

#include "join/pphj.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pdblb {

Pphj::Pphj(sim::Scheduler& sched, BufferManager& buffer, DiskArray& disks,
           sim::Resource& cpu, const CpuCosts& costs, double mips,
           Params params)
    : sched_(sched), buffer_(buffer), disks_(disks), cpu_(cpu), costs_(costs),
      mips_(mips), params_(params) {
  int64_t expected_pages = PagesForTuples(params_.expected_inner_tuples);
  num_partitions_ = std::max(
      1, static_cast<int>(std::ceil(std::sqrt(
             params_.fudge_factor * static_cast<double>(expected_pages)))));
  // PPHJ needs at least one page per partition, but never more than the
  // whole buffer (tiny-memory configurations).
  min_pages_ = std::min(num_partitions_, buffer_.capacity());
}

Pphj::~Pphj() { Release(); }

int Pphj::PagesForTuples(int64_t tuples) const {
  if (tuples <= 0) return 0;
  double pages = params_.fudge_factor * static_cast<double>(tuples) /
                 static_cast<double>(params_.blocking_factor);
  return static_cast<int>(std::ceil(pages));
}

sim::Task<> Pphj::AcquireMemory() {
  assert(!acquired_);
  int want = std::min(std::max(params_.want_pages, min_pages_),
                      buffer_.capacity());
  reserved_pages_ = co_await buffer_.ReserveWait(min_pages_, want);
  acquired_ = true;
  resident_partitions_ = num_partitions_;
  buffer_.RegisterVictim(this);
}

int Pphj::SpillDownTo(int limit) {
  int freed = 0;
  while (resident_partitions_ > 0 &&
         PagesForTuples(mem_inner_tuples_) > limit) {
    int64_t slice = mem_inner_tuples_ / resident_partitions_;
    int slice_pages = PagesForTuples(slice);
    mem_inner_tuples_ -= slice;
    disk_inner_tuples_ += slice;
    --resident_partitions_;
    if (slice_pages > 0) {
      temp_pages_written_ += slice_pages;
      freed += slice_pages;
      // Asynchronous sequential write of the spilled partition.
      PageKey first{params_.temp_relation_id, next_temp_page_};
      next_temp_page_ += slice_pages;
      sched_.Spawn(disks_.WriteBatch(first, slice_pages));
    }
  }
  return freed;
}

void Pphj::FlushAppends(bool final_flush) {
  int batch = params_.write_batch_pages;
  while (pending_append_pages_ >= batch) {
    PageKey first{params_.temp_relation_id, next_temp_page_};
    next_temp_page_ += batch;
    temp_pages_written_ += batch;
    pending_append_pages_ -= batch;
    sched_.Spawn(disks_.WriteBatch(first, batch));
  }
  if (final_flush && pending_append_pages_ > 0) {
    int count = static_cast<int>(pending_append_pages_);
    PageKey first{params_.temp_relation_id, next_temp_page_};
    next_temp_page_ += count;
    temp_pages_written_ += count;
    pending_append_pages_ = 0;
    sched_.Spawn(disks_.WriteBatch(first, count));
  }
}

sim::Task<> Pphj::EnsureMinimumMemory() {
  while (reserved_pages_ < min_pages_) {
    suspended_ = true;
    int got = co_await buffer_.ReserveWait(min_pages_ - reserved_pages_,
                                           min_pages_ - reserved_pages_);
    reserved_pages_ += got;
  }
  suspended_ = false;
}

void Pphj::TryGrow() {
  if (!acquired_ || released_ || !params_.opportunistic_growth) return;
  int want = std::min(std::max(params_.want_pages, min_pages_),
                      buffer_.capacity());
  if (reserved_pages_ >= want) return;
  reserved_pages_ += buffer_.TryReserve(want - reserved_pages_);
}

sim::Task<> Pphj::InsertInnerBatch(int64_t tuples) {
  assert(acquired_);
  co_await EnsureMinimumMemory();
  TryGrow();

  inner_received_ += tuples;
  // Uniform hashing: a resident_partitions_/num_partitions_ share of the
  // batch lands in memory, the rest is appended to spilled partitions.
  int64_t to_mem = tuples * resident_partitions_ / num_partitions_;
  int64_t to_disk = tuples - to_mem;
  mem_inner_tuples_ += to_mem;
  disk_inner_tuples_ += to_disk;
  pending_append_pages_ += PagesForTuples(to_disk);

  co_await cpu_.Use(InstructionsToMs(
      tuples * (costs_.hash_tuple + costs_.insert_hash_table), mips_));

  // Overflow: the resident partitions no longer fit the working space.
  if (PagesForTuples(mem_inner_tuples_) > reserved_pages_) {
    SpillDownTo(reserved_pages_);
  }
  FlushAppends(false);
}

sim::Task<> Pphj::ProbeBatch(int64_t tuples) {
  assert(acquired_);
  co_await EnsureMinimumMemory();
  TryGrow();

  // Direct probes hit resident partitions; the rest is deferred.
  int64_t direct = inner_received_ > 0
                       ? tuples * mem_inner_tuples_ / inner_received_
                       : tuples;
  int64_t deferred = tuples - direct;
  direct_probes_ += direct;
  deferred_probes_ += deferred;
  pending_append_pages_ += PagesForTuples(deferred);

  int64_t instr = direct * costs_.probe_hash_table +
                  deferred * costs_.write_output_tuple;  // append to B part.
  co_await cpu_.Use(InstructionsToMs(instr, mips_));
  FlushAppends(false);
}

sim::Task<> Pphj::CompleteProbe() {
  assert(acquired_);
  FlushAppends(true);

  if (disk_inner_tuples_ > 0 || deferred_probes_ > 0) {
    co_await EnsureMinimumMemory();

    // Read back the spilled inner partitions and rebuild their hash tables
    // (striped across the local disk array).
    int inner_pages = PagesForTuples(disk_inner_tuples_);
    co_await disks_.ReadStriped(PageKey{params_.temp_relation_id, 0},
                                inner_pages);
    temp_pages_read_ += inner_pages;
    co_await cpu_.Use(InstructionsToMs(
        disk_inner_tuples_ * (costs_.hash_tuple + costs_.insert_hash_table),
        mips_));

    // Read back the deferred outer tuples and probe.
    int outer_pages = PagesForTuples(deferred_probes_);
    co_await disks_.ReadStriped(
        PageKey{params_.temp_relation_id, inner_pages}, outer_pages);
    temp_pages_read_ += outer_pages;
    co_await cpu_.Use(InstructionsToMs(
        deferred_probes_ * (costs_.hash_tuple + costs_.probe_hash_table),
        mips_));
  }
}

void Pphj::Release() {
  if (!acquired_ || released_) return;
  released_ = true;
  // At scheduler teardown the owning frame is destroyed after the buffer
  // manager (Cluster member order); giving back the reservation would touch
  // a dead object, and nobody is left to account it anyway.
  if (sched_.tearing_down()) return;
  buffer_.UnregisterVictim(this);
  buffer_.ReleaseReservation(reserved_pages_);
  reserved_pages_ = 0;
}

int Pphj::StealPages(int wanted) {
  if (!acquired_ || released_) return 0;
  int freed = SpillDownTo(
      std::max(0, PagesForTuples(mem_inner_tuples_) - wanted));
  // Also give back reservation slack not backed by resident tuples.
  int used = PagesForTuples(mem_inner_tuples_);
  int slack = reserved_pages_ - freed - used;
  if (freed < wanted && slack > 0) {
    freed += std::min(slack, wanted - freed);
  }
  freed = std::min(freed, reserved_pages_);
  reserved_pages_ -= freed;
  return freed;
}

double Pphj::ResidentFraction() const {
  if (inner_received_ <= 0) return 1.0;
  return static_cast<double>(mem_inner_tuples_) /
         static_cast<double>(inner_received_);
}

}  // namespace pdblb
