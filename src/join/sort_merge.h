// Copyright 2026 the pdblb authors. MIT license.
//
// SortMergeJoin: the non-adaptive local sort-merge join used as the baseline
// join method in the predecessor study [26] (Rahm/Marek VLDB'93).  Included
// here to ablate the paper's choice of the memory-adaptive PPHJ:
//
//  * both inputs are sorted on the join attribute by run generation (runs
//    the size of the working space) followed by multiway merging;
//  * the working space is a *fixed* reservation — unlike PPHJ it is not
//    registered as a steal victim, so higher-priority OLTP transactions
//    cannot reclaim it (the memory rigidity PPHJ was designed to fix [23]);
//  * if both inputs fit into the working space together, everything is
//    sorted and joined in memory without temporary I/O.
//
// Cost model: run generation charges read + compare*ceil(log2(run_tuples))
// per tuple (replacement-selection-like); every merge pass charges
// compare*ceil(log2(fan_in)) per tuple and reads + rewrites the spilled
// pages; the final merge-join charges one comparison per tuple of either
// input.

#ifndef PDBLB_JOIN_SORT_MERGE_H_
#define PDBLB_JOIN_SORT_MERGE_H_

#include <cstdint>

#include "join/local_join.h"

namespace pdblb {

class SortMergeJoin : public LocalJoin {
 public:
  SortMergeJoin(sim::Scheduler& sched, BufferManager& buffer, DiskArray& disks,
                sim::Resource& cpu, const CpuCosts& costs, double mips,
                LocalJoinParams params);
  ~SortMergeJoin() override;

  sim::Task<> AcquireMemory() override;
  sim::Task<> InsertInnerBatch(int64_t tuples) override;
  sim::Task<> ProbeBatch(int64_t tuples) override;
  sim::Task<> CompleteProbe() override;
  void Release() override;

  // --- introspection --------------------------------------------------------
  int min_pages() const { return min_pages_; }
  int reserved_pages() const { return reserved_pages_; }
  /// Sorted runs spilled to disk so far (both inputs).
  int spilled_runs() const { return spilled_runs_; }
  /// Merge passes executed in CompleteProbe (0 = single final merge).
  int extra_merge_passes() const { return extra_merge_passes_; }
  int64_t temp_pages_written() const override { return temp_pages_written_; }
  int64_t temp_pages_read() const override { return temp_pages_read_; }

 private:
  int PagesForTuples(int64_t tuples) const;
  /// Per-tuple CPU of run generation with the current working space.
  int64_t RunGenInstrPerTuple() const;
  /// Accumulates one input side; spills full runs.
  sim::Task<> ConsumeBatch(int64_t tuples, int64_t* received,
                           int64_t* buffered_tuples);
  /// Writes a sorted run of `pages` pages to the temp file.
  void SpillRun(int pages);

  sim::Scheduler& sched_;
  BufferManager& buffer_;
  DiskArray& disks_;
  sim::Resource& cpu_;
  CpuCosts costs_;
  double mips_;
  LocalJoinParams params_;

  int min_pages_ = 3;
  int reserved_pages_ = 0;
  bool acquired_ = false;
  bool released_ = false;

  int64_t inner_received_ = 0;
  int64_t outer_received_ = 0;
  int64_t inner_buffered_ = 0;  // tuples of the current in-memory inner run
  int64_t outer_buffered_ = 0;
  int spilled_runs_ = 0;
  int extra_merge_passes_ = 0;
  int64_t spilled_pages_ = 0;   // pages currently in spilled runs
  int64_t next_temp_page_ = 0;

  int64_t temp_pages_written_ = 0;
  int64_t temp_pages_read_ = 0;
};

}  // namespace pdblb

#endif  // PDBLB_JOIN_SORT_MERGE_H_
