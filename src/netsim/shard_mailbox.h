// Copyright 2026 the pdblb authors. MIT license.
//
// The network side of sharded execution (paper Section 4 network model +
// conservative PDES): the wire is the *only* inter-PE coupling with a
// guaranteed minimum latency, so the per-packet wire time is the
// conservative-window lookahead, and every cross-shard interaction is a
// wire message routed through the sharded kernel's per-shard-pair SPSC
// mailboxes (simkern/sharded.h).
//
// ShardWire is the packetized transport for shard-confined workloads: the
// sharded analogue of Network::Transfer's wire leg.  The endpoint CPU
// costs of a transfer stay with the caller (they are entity-local work on
// the sending/receiving entity's own resources); the wire delay — at least
// one packet, hence at least the lookahead — is what crosses shards.

#ifndef PDBLB_NETSIM_SHARD_MAILBOX_H_
#define PDBLB_NETSIM_SHARD_MAILBOX_H_

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/units.h"
#include "simkern/resource.h"
#include "simkern/sharded.h"
#include "simkern/task.h"

namespace pdblb {

/// The conservative lookahead the network model guarantees: every message
/// is at least one packet on the wire, so no cross-PE interaction can take
/// effect sooner than this after its send instant.
inline SimTime ShardLookaheadMs(const NetworkConfig& config) {
  return config.wire_time_per_packet_ms;
}

/// Packetized PE-to-PE message transport over ShardedScheduler::Post.
/// `Send` may only be called from the source PE's shard (the Post
/// contract); `on_delivered` runs on the destination PE's shard at the
/// wire-arrival instant, tagged network/<src> in event traces.
class ShardWire {
 public:
  /// The scheduler's declared lookahead must not exceed the wire time of
  /// one packet *unless* the workload guarantees that faster traffic stays
  /// shard-local (Post asserts the per-message contract in debug builds):
  /// a workload with only block-local messaging may declare an arbitrarily
  /// coarse lookahead and get correspondingly coarse windows.
  ShardWire(sim::ShardedScheduler& sharded, const NetworkConfig& config)
      : sharded_(sharded), config_(config),
        stats_(static_cast<size_t>(sharded.num_entities())) {
    assert(config_.wire_time_per_packet_ms > 0.0);
  }
  ShardWire(const ShardWire&) = delete;
  ShardWire& operator=(const ShardWire&) = delete;

  /// Packets needed for `bytes` (at least 1 for any message).
  int64_t PacketsFor(int64_t bytes) const {
    if (bytes <= 0) return 1;
    return (bytes + config_.packet_size_bytes - 1) / config_.packet_size_bytes;
  }

  /// Ships `bytes` from PE `src` to PE `dst`; `fn` runs on `dst`'s shard
  /// when the last packet lands (store-and-forward, like
  /// Network::Transfer).  Unlike Transfer, src == dst still rides the wire:
  /// a message to yourself is rare and a zero-delay special case would make
  /// delivery semantics depend on co-location.
  template <typename F>
  void Send(int src, int dst, int64_t bytes, F&& fn) {
    int64_t packets = PacketsFor(bytes);
    PerEntityStats& s = stats_[static_cast<size_t>(src)];
    ++s.messages;
    s.packets += packets;
    s.bytes += bytes;
    SimTime at = sharded_.home(src).Now() +
                 config_.wire_time_per_packet_ms * static_cast<double>(packets);
    sharded_.Post(src, dst, at, std::forward<F>(fn),
                  sim::TraceTag(sim::TraceSubsystem::kNetwork,
                                static_cast<uint16_t>(src)));
  }

  /// Ships `bytes` like Send, then models the *receiver's* endpoint leg of
  /// Network::Transfer: on wire arrival, a handler coroutine on `dst`'s
  /// shard queues for `dst_cpu` (which must live on `dst`'s home shard)
  /// for `cpu_ms` — typically receive_message + copy_message x packets —
  /// and only then runs `fn`.  The sender's endpoint leg stays with the
  /// caller (entity-local work on its own CPU, charged before Deliver).
  /// This is the message shape every confined cross-PE interaction uses:
  /// wire crossing through the mailbox band, endpoint CPU charged on the
  /// endpoint's own shard.
  template <typename F>
  void Deliver(int src, int dst, int64_t bytes, sim::Resource& dst_cpu,
               SimTime cpu_ms, F&& fn) {
    sim::Resource* cpu = &dst_cpu;
    Send(src, dst, bytes,
         [this, dst, cpu, cpu_ms, fn = std::forward<F>(fn)]() mutable {
           sharded_.home(dst).Spawn(ReceiveLeg(cpu, cpu_ms, std::move(fn)));
         });
  }

  // --- statistics (sum after Run(); per-entity cells are single-writer) ---
  int64_t messages_sent() const { return Sum(&PerEntityStats::messages); }
  int64_t packets_sent() const { return Sum(&PerEntityStats::packets); }
  int64_t bytes_sent() const { return Sum(&PerEntityStats::bytes); }
  /// Messages sent by one PE (shard-count-invariant; used by the
  /// determinism suite).
  int64_t messages_sent_by(int src) const {
    return stats_[static_cast<size_t>(src)].messages;
  }

 private:
  template <typename F>
  static sim::Task<> ReceiveLeg(sim::Resource* cpu, SimTime cpu_ms, F fn) {
    co_await cpu->Use(cpu_ms);
    fn();
  }

  // One cache line per sending entity: written only by the owning shard's
  // thread, padded so block-boundary neighbours never share a line.
  struct alignas(64) PerEntityStats {
    int64_t messages = 0;
    int64_t packets = 0;
    int64_t bytes = 0;
  };

  int64_t Sum(int64_t PerEntityStats::* field) const {
    int64_t total = 0;
    for (const PerEntityStats& s : stats_) total += s.*field;
    return total;
  }

  sim::ShardedScheduler& sharded_;
  NetworkConfig config_;
  std::vector<PerEntityStats> stats_;
};

}  // namespace pdblb

#endif  // PDBLB_NETSIM_SHARD_MAILBOX_H_
