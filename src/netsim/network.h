// Copyright 2026 the pdblb authors. MIT license.
//
// Communication network model (paper Section 4): messages are disassembled
// into fixed-size packets; per-message and per-packet CPU overhead is charged
// on the sending and receiving PEs, the wire adds a per-packet transmission
// delay.  The interconnect itself is a scalable high-speed network (EDS-like)
// and is modeled contention-free; the *CPU* cost of communication is the
// scarce resource, which is exactly the effect the paper's load-balancing
// trade-off hinges on.

#ifndef PDBLB_NETSIM_NETWORK_H_
#define PDBLB_NETSIM_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/units.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb {

/// Packetized point-to-point message transport.
class Network {
 public:
  /// `cpus[pe]` is PE `pe`'s CPU resource; the network charges the paper's
  /// send/receive/copy instruction counts there.  A flat table instead of a
  /// callback: endpoint lookup on the per-message hot path is one indexed
  /// load, with no type-erased indirection.
  Network(sim::Scheduler& sched, const NetworkConfig& net_config,
          const CpuCosts& costs, double mips,
          std::vector<sim::Resource*> cpus);

  /// Transfers `bytes` from `src` to `dst` as one logical message:
  ///   sender CPU:   send_message + copy_message * packets
  ///   wire:         wire_time_per_packet * packets (pure delay)
  ///   receiver CPU: receive_message + copy_message * packets
  /// Completes when the receiver has processed the message.  Local transfers
  /// (src == dst) are free: co-located operators communicate via memory.
  sim::Task<> Transfer(PeId src, PeId dst, int64_t bytes);

  /// A short control message (startup, commit votes): one packet.
  sim::Task<> ControlMessage(PeId src, PeId dst);

  /// Bulk data transfer (fragment migration): same packetization, CPU
  /// charges and wire delay as Transfer, but accounted separately so the
  /// foreground message counters stay comparable across elastic and
  /// resize-free runs.
  sim::Task<> TransferBulk(PeId src, PeId dst, int64_t bytes);

  /// Packets needed for `bytes` (at least 1 for a non-empty message).
  int64_t PacketsFor(int64_t bytes) const;

  // --- link faults (engine/faults.h) --------------------------------------
  // Per-link partition flags and wire-delay multipliers.  The state tables
  // are lazily allocated on the first Set* call, so the fault-free path
  // touches nothing; Transfer itself only consults the multiplier (>= 1,
  // keeping slowed delays above the sharded-window lookahead).  Partitions
  // are enforced one level up: the FaultInjector fails attempts that would
  // span a cut link (kUnavailable into the Supervise retry path) instead of
  // erroring the byte-stream, which has no failure channel.
  /// Cuts or restores the (symmetric) a<->b link.
  void SetPartitioned(PeId a, PeId b, bool partitioned);
  /// True when the a<->b link is currently cut; false when never armed.
  bool Partitioned(PeId a, PeId b) const;
  /// True when any link is currently cut (cheap fault-free early-out).
  bool AnyPartitions() const { return partitioned_links_ > 0; }
  /// Multiplies the (symmetric) a<->b wire delay by `factor` (>= 1; 1.0
  /// restores).
  void SetLinkDelayMultiplier(PeId a, PeId b, double factor);

  // --- statistics ---------------------------------------------------------
  int64_t messages_sent() const { return messages_sent_; }
  int64_t packets_sent() const { return packets_sent_; }
  int64_t bytes_sent() const { return bytes_sent_; }
  /// Bulk (migration) traffic, kept out of the foreground counters above.
  int64_t bulk_messages_sent() const { return bulk_messages_sent_; }
  int64_t bulk_bytes_sent() const { return bulk_bytes_sent_; }
  void ResetStats();

 private:
  size_t LinkIndex(PeId a, PeId b) const {
    return static_cast<size_t>(a) * cpus_.size() + static_cast<size_t>(b);
  }

  sim::Scheduler& sched_;
  NetworkConfig config_;
  CpuCosts costs_;
  double mips_;
  std::vector<sim::Resource*> cpus_;

  // n x n link state, symmetric, empty until a fault arms it.
  std::vector<uint8_t> partitioned_;
  std::vector<double> link_delay_factor_;
  int partitioned_links_ = 0;

  int64_t messages_sent_ = 0;
  int64_t packets_sent_ = 0;
  int64_t bytes_sent_ = 0;
  int64_t bulk_messages_sent_ = 0;
  int64_t bulk_bytes_sent_ = 0;
};

}  // namespace pdblb

#endif  // PDBLB_NETSIM_NETWORK_H_
