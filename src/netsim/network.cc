// Copyright 2026 the pdblb authors. MIT license.

#include "netsim/network.h"

#include <cassert>

namespace pdblb {

Network::Network(sim::Scheduler& sched, const NetworkConfig& net_config,
                 const CpuCosts& costs, double mips,
                 std::vector<sim::Resource*> cpus)
    : sched_(sched), config_(net_config), costs_(costs), mips_(mips),
      cpus_(std::move(cpus)) {}

void Network::SetPartitioned(PeId a, PeId b, bool partitioned) {
  assert(a != b);
  if (partitioned_.empty()) {
    partitioned_.assign(cpus_.size() * cpus_.size(), 0);
  }
  uint8_t value = partitioned ? 1 : 0;
  if (partitioned_[LinkIndex(a, b)] == value) return;
  partitioned_[LinkIndex(a, b)] = value;
  partitioned_[LinkIndex(b, a)] = value;
  partitioned_links_ += partitioned ? 1 : -1;
}

bool Network::Partitioned(PeId a, PeId b) const {
  if (partitioned_.empty()) return false;
  return partitioned_[LinkIndex(a, b)] != 0;
}

void Network::SetLinkDelayMultiplier(PeId a, PeId b, double factor) {
  assert(a != b);
  assert(factor >= 1.0);
  if (link_delay_factor_.empty()) {
    link_delay_factor_.assign(cpus_.size() * cpus_.size(), 1.0);
  }
  link_delay_factor_[LinkIndex(a, b)] = factor;
  link_delay_factor_[LinkIndex(b, a)] = factor;
}

int64_t Network::PacketsFor(int64_t bytes) const {
  if (bytes <= 0) return 1;
  return (bytes + config_.packet_size_bytes - 1) / config_.packet_size_bytes;
}

sim::Task<> Network::Transfer(PeId src, PeId dst, int64_t bytes) {
  if (src == dst) co_return;  // co-located: shared-memory hand-off

  int64_t packets = PacketsFor(bytes);
  ++messages_sent_;
  packets_sent_ += packets;
  bytes_sent_ += bytes;

  // Sender-side CPU: message setup plus one buffer copy per packet.
  co_await cpus_[src]->Use(InstructionsToMs(
      costs_.send_message + costs_.copy_message * packets, mips_));

  // Wire latency (store-and-forward across packets).  Traced as network
  // time with the sending PE as origin; the CPU shares of the transfer are
  // charged on (and attributed to) the endpoint CPUs above/below.  A slow
  // link stretches the wire share only (the endpoint CPU work is unchanged).
  double wire_ms =
      config_.wire_time_per_packet_ms * static_cast<double>(packets);
  if (!link_delay_factor_.empty()) {
    wire_ms *= link_delay_factor_[LinkIndex(src, dst)];
  }
  co_await sched_.Delay(
      wire_ms,
      sim::TraceTag(sim::TraceSubsystem::kNetwork,
                    static_cast<uint16_t>(src)));

  // Receiver-side CPU.
  co_await cpus_[dst]->Use(InstructionsToMs(
      costs_.receive_message + costs_.copy_message * packets, mips_));
}

sim::Task<> Network::ControlMessage(PeId src, PeId dst) {
  return Transfer(src, dst, 1);
}

sim::Task<> Network::TransferBulk(PeId src, PeId dst, int64_t bytes) {
  if (src == dst) co_return;  // co-located: shared-memory hand-off

  int64_t packets = PacketsFor(bytes);
  ++bulk_messages_sent_;
  bulk_bytes_sent_ += bytes;

  // Same cost structure as Transfer — migration batches are real messages
  // competing for the endpoint CPUs and the wire — but accounted in the
  // bulk counters so foreground message stats stay comparable.
  co_await cpus_[src]->Use(InstructionsToMs(
      costs_.send_message + costs_.copy_message * packets, mips_));

  double wire_ms =
      config_.wire_time_per_packet_ms * static_cast<double>(packets);
  if (!link_delay_factor_.empty()) {
    wire_ms *= link_delay_factor_[LinkIndex(src, dst)];
  }
  co_await sched_.Delay(
      wire_ms,
      sim::TraceTag(sim::TraceSubsystem::kNetwork,
                    static_cast<uint16_t>(src)));

  co_await cpus_[dst]->Use(InstructionsToMs(
      costs_.receive_message + costs_.copy_message * packets, mips_));
}

void Network::ResetStats() {
  messages_sent_ = 0;
  packets_sent_ = 0;
  bytes_sent_ = 0;
  bulk_messages_sent_ = 0;
  bulk_bytes_sent_ = 0;
}

}  // namespace pdblb
