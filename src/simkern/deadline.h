// Copyright 2026 the pdblb authors. MIT license.
//
// Deadline / timeout wrapper over Scheduler::Cancel: run a task with an
// upper bound on simulated time, destroying its frame (and everything it
// owns — cancellation-aware awaiters release queue entries and resources)
// if the bound expires first.
//
//   bool completed = co_await WithTimeout(sched, DoWork(...), 250.0);
//
// Determinism: the timer is an ordinary calendar event, so whether a given
// run times out — and the exact event at which the cancellation happens —
// is a pure function of the seed and configuration, identical across
// --jobs/--shards and reruns.

#ifndef PDBLB_SIMKERN_DEADLINE_H_
#define PDBLB_SIMKERN_DEADLINE_H_

#include <cstdint>
#include <utility>

#include "common/units.h"
#include "simkern/latch.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb::sim {

namespace internal {

struct DeadlineState {
  Latch done;
  bool completed = false;
  uint64_t work_id = 0;
  explicit DeadlineState(Scheduler& sched) : done(sched, 1) {}
};

inline Task<> RunDeadlined(Task<> work, DeadlineState* st) {
  co_await std::move(work);
  st->completed = true;
  st->done.CountDown();
}

inline Task<> DeadlineTimer(Scheduler& sched, SimTime timeout_ms,
                            DeadlineState* st) {
  co_await sched.Delay(timeout_ms);
  // Work finishing and the timer firing at the same timestamp resolve by
  // calendar FIFO: whoever dispatches first wins, deterministically.
  if (st->done.Done()) co_return;
  sched.Cancel(st->work_id);
  st->done.CountDown();
}

}  // namespace internal

/// Runs `work` as a supervised child and completes when it finishes or when
/// `timeout_ms` of simulated time has passed, whichever comes first.  On
/// timeout the work frame is destroyed mid-suspension; returns true if the
/// work completed, false if it was cancelled at the deadline.  Safe to
/// cancel the WithTimeout frame itself: both children are cancelled with it.
inline Task<bool> WithTimeout(Scheduler& sched, Task<> work,
                              SimTime timeout_ms) {
  internal::DeadlineState st(sched);
  // Children are detached frames pointing into this frame; if this frame is
  // destroyed mid-wait they must go first.  Cancel of a finished id no-ops,
  // so the guard is unconditional.
  struct ChildGuard {
    Scheduler* sched;
    uint64_t id = 0;
    ~ChildGuard() {
      if (id != 0) sched->Cancel(id);
    }
  };
  ChildGuard work_guard{&sched};
  ChildGuard timer_guard{&sched};
  st.work_id = sched.SpawnWithId(internal::RunDeadlined(std::move(work), &st));
  work_guard.id = st.work_id;
  timer_guard.id =
      sched.SpawnWithId(internal::DeadlineTimer(sched, timeout_ms, &st));
  co_await st.done.Wait();
  co_return st.completed;
}

/// Convenience alias matching the issue-facing name: a Deadline is the
/// awaitable produced by WithTimeout.
using Deadline = Task<bool>;

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_DEADLINE_H_
