// Copyright 2026 the pdblb authors. MIT license.
//
// Count-down latch for fork/join patterns inside the simulation, e.g.
// "spawn one subquery per join processor, wait for all of them".

#ifndef PDBLB_SIMKERN_LATCH_H_
#define PDBLB_SIMKERN_LATCH_H_

#include <cassert>
#include <coroutine>

#include "simkern/ring.h"
#include "simkern/scheduler.h"

namespace pdblb::sim {

/// A one-shot latch: Wait() completes once CountDown() has been called
/// `count` times.  Waiters are resumed through the event queue at the
/// simulation time of the final count-down.
class Latch {
 public:
  /// `tag` attributes the fan-out wake-ups in event traces.
  Latch(Scheduler& sched, int count,
        TraceTag tag = TraceTag(TraceSubsystem::kLatch))
      : sched_(sched), tag_(tag), count_(count) {
    assert(count >= 0);
  }
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void CountDown() {
    assert(count_ > 0);
    if (--count_ == 0) {
      // Fan-out goes through the calendar (not ResumeInline): waiters keep
      // their FIFO positions relative to other events at this timestamp.
      while (!waiters_.empty()) {
        sched_.ScheduleHandle(sched_.Now(), waiters_.front(), tag_);
        waiters_.pop_front();
      }
    }
  }

  bool Done() const { return count_ == 0; }
  int remaining() const { return count_; }

  auto Wait() {
    struct Awaiter {
      Latch* latch;
      // Stored directly (not reached through `latch`): at scheduler
      // teardown the latch may already be destroyed, and the teardown
      // check must not touch it.
      Scheduler* sched;
      // Set while suspended; the destructor undoes the wait when the frame
      // is destroyed mid-suspension (Scheduler::Cancel cascade).
      std::coroutine_handle<> pending = nullptr;
      bool await_ready() const noexcept { return latch->count_ == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        pending = h;
        latch->waiters_.push_back(h);
      }
      void await_resume() noexcept { pending = nullptr; }
      ~Awaiter() {
        if (!pending || sched->tearing_down()) return;
        // Still queued (latch not yet fired) or already scheduled by the
        // final CountDown — erase or scrub accordingly.
        if (latch->waiters_.EraseFirstIf(
                [&](std::coroutine_handle<> w) { return w == pending; })) {
          return;
        }
        sched->CancelHandle(pending);
      }
    };
    return Awaiter{this, &sched_};
  }

 private:
  Scheduler& sched_;
  TraceTag tag_;
  int count_;
  // Inline capacity 4: latches are constructed per fork/join and almost
  // always have a single waiter (the forking parent), so waiting is
  // allocation-free even though every latch is brand new.
  RingBuffer<std::coroutine_handle<>, 4> waiters_;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_LATCH_H_
