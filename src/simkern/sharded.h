// Copyright 2026 the pdblb authors. MIT license.
//
// ShardedScheduler: conservative-window parallel execution of a partitioned
// discrete-event simulation (the classic conservative PDES recipe, shaped
// to this kernel's determinism contract).
//
// The model: the simulation consists of `num_entities` *entities* (for the
// cluster reproduction: PEs), each owning private state — resources,
// channels, counters — and interacting with other entities only through
// timestamped *messages* with a minimum delivery delay, the **lookahead**
// (for the netsim layer: the wire time of one packet, see
// netsim/shard_mailbox.h).  Entities are partitioned into `num_shards`
// contiguous groups; each shard owns an independent `Scheduler` (calendar +
// ring + hand-off lane) and runs on its own worker thread.
//
// Execution alternates windows and barriers:
//
//   loop:
//     drain mailboxes           (coordinator: inject pending messages)
//     m = min over shards of NextEventTime();  done when all empty
//     window = [m, m + lookahead)
//     all shards RunBefore(m + lookahead)      (parallel, no interaction)
//
// Safety: a message sent while executing an event at time t >= m arrives at
// t + delay >= m + lookahead — never inside the current window — so by the
// time a window opens, every event that can occur inside it is already in
// some shard's calendar.  (Float rounding preserves this: rounding is
// monotone, so fl(t + d) >= fl(m + L) whenever t >= m, d >= L.)
//
// Determinism and shard-count invariance: cross-shard sends append to a
// per-(source, destination) shard-pair SPSC mailbox, drained only at
// barriers, and every message dispatches in the scheduler's *message band*
// — ordered at equal timestamps after all shard-local events and among
// messages by (origin entity, per-origin ordinal) (see
// Scheduler::MessageSeq).  That key depends only on the entity-level
// simulation, not on the partition, the thread schedule, or whether the
// send was co-located (direct calendar push) or remote (mailbox
// injection).  Consequently, as long as entities touch only their own
// state outside of Post(), per-entity results are bit-identical for every
// shard count and across parallel/serial execution — the property the
// seeded stress suite (tests/sharded_test.cc) pins.  (The ordering key
// uses the origin *entity*, not the origin shard: a shard id would change
// with --shards and break the invariance.)
//
// What this layer does NOT give: same-timestamp interleaving between
// entities in different shards is not preserved relative to the
// single-queue kernel — it doesn't need to be, because entities without
// shared state commute at equal timestamps.  Workloads that share mutable
// state across entities (today: the full engine's executors, which touch
// many PEs from one coroutine) must keep all involved entities in one
// shard; `RunUntilWindowed` below is that degenerate single-group mode,
// used by Cluster for --shards>1 until the executors are shard-confined.

#ifndef PDBLB_SIMKERN_SHARDED_H_
#define PDBLB_SIMKERN_SHARDED_H_

#include <cassert>
#include <condition_variable>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/units.h"
#include "simkern/scheduler.h"

namespace pdblb::sim {

class Resource;

/// Phase-separated single-producer/single-consumer mailbox for one
/// (source shard, destination shard) pair.  The producer is the source
/// shard's worker inside a window; the only consumer is the coordinator at
/// the window barrier, after every worker has quiesced — the barrier's
/// mutex is the publication edge, so the hot Push needs no atomics.  (A
/// lock-free queue would only pay off if shards drained mid-window;
/// windows are the determinism mechanism, so they cannot.)  Capacity is
/// retained across Clear(): steady-state cross-shard traffic allocates
/// nothing in the mailbox itself.
template <typename M>
class ShardMailbox {
 public:
  void Push(M m) { items_.push_back(std::move(m)); }
  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  std::vector<M>& items() { return items_; }
  void Clear() { items_.clear(); }

 private:
  std::vector<M> items_;
};

/// S shard schedulers executing one simulation under conservative windows.
class ShardedScheduler {
 public:
  struct Options {
    int num_shards = 1;
    /// Entities are the unit of partitioning and of message attribution;
    /// ids must stay below 2^12 (they ride in the message sequence word).
    int num_entities = 1;
    /// Minimum cross-entity message delay; every Post() must respect it.
    SimTime lookahead_ms = 0.1;
    /// false: execute windows serially on the calling thread (bit-identical
    /// results by construction — debugging / overhead measurement mode).
    bool parallel = true;
  };

  explicit ShardedScheduler(const Options& options);
  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;
  ~ShardedScheduler();

  int num_shards() const { return num_shards_; }
  int num_entities() const { return num_entities_; }
  SimTime lookahead_ms() const { return lookahead_ms_; }

  /// Contiguous balanced partition: entity e lives on shard
  /// floor(e * S / E).  Fixed at construction; entities do not migrate.
  int shard_of(int entity) const {
    assert(entity >= 0 && entity < num_entities_);
    return static_cast<int>(static_cast<int64_t>(entity) * num_shards_ /
                            num_entities_);
  }

  Scheduler& shard(int s) { return *shards_[static_cast<size_t>(s)]; }
  /// The scheduler that owns `entity` — where its resources and processes
  /// must live.
  Scheduler& home(int entity) { return shard(shard_of(entity)); }

  /// Sends a message from entity `from` to entity `to`: `fn` runs on the
  /// destination shard at absolute time `at`.  Must be called from `from`'s
  /// shard (its worker thread during a window, or the setup thread before
  /// Run()).  Co-located sends push straight into the target calendar and
  /// need only a positive delay; sends that cross a shard boundary go
  /// through the shard-pair mailbox, are injected at the next barrier, and
  /// must respect the lookahead (`at >= home(from).Now() + lookahead_ms`) —
  /// the conservative-window safety argument rests on it.  The declared
  /// lookahead is therefore a *workload contract*: the minimum delay of any
  /// message that may cross shards under the shard counts the workload
  /// supports (traffic that stays inside a partition block may undercut
  /// it, and coarsens the windows for free).  Both routes dispatch under
  /// the identical message-band key, so the route itself is unobservable
  /// to the simulation.
  template <typename F>
  void Post(int from, int to, SimTime at, F&& fn, TraceTag tag = {}) {
    assert(to >= 0 && to < num_entities_);
    int src = shard_of(from);
    int dst = shard_of(to);
    assert(src == dst
               ? at > shards_[static_cast<size_t>(src)]->Now()
               : at >= shards_[static_cast<size_t>(src)]->Now() +
                           lookahead_ms_ &&
                     "cross-shard Post must respect the lookahead");
    uint64_t ordinal = next_ordinal_[static_cast<size_t>(from)].value++;
    assert(ordinal < Scheduler::kMaxMessageOrdinal);
    uint64_t seq =
        Scheduler::MessageSeq(static_cast<uint16_t>(from), ordinal, tag);
    if (src == dst) {
      shards_[static_cast<size_t>(dst)]->ScheduleMessageCallback(
          at, seq, std::forward<F>(fn));
    } else {
      MailboxFor(src, dst).Push(
          Mail{at, seq, std::function<void()>(std::forward<F>(fn))});
    }
  }

  /// Runs windows until every shard calendar and every mailbox is empty.
  /// May be called repeatedly (more work can be posted in between).
  void Run();

  // --- statistics ---------------------------------------------------------
  /// Sum of the shard schedulers' dispatched events.
  uint64_t events_processed() const;
  /// Sum of the shard schedulers' hand-off lane resumes.
  uint64_t inline_resumes() const;
  /// Messages sent through Post() (co-located and cross-shard).
  uint64_t messages_posted() const;
  /// Messages that crossed a shard boundary (mailbox route).
  uint64_t cross_shard_messages() const { return cross_shard_messages_; }
  /// Conservative windows executed (barrier count).
  uint64_t windows() const { return windows_; }

 private:
  struct Mail {
    SimTime at;
    uint64_t seq;
    std::function<void()> fn;
  };
  // One cache line per mailbox / per-entity ordinal counter: each is
  // written by exactly one shard's thread, and padding keeps neighbours
  // (the only cross-thread adjacency) off shared lines.
  struct alignas(64) PaddedMailbox {
    ShardMailbox<Mail> box;
  };
  struct alignas(64) PaddedCounter {
    uint64_t value = 0;
  };

  ShardMailbox<Mail>& MailboxFor(int src, int dst) {
    return mailboxes_[static_cast<size_t>(src) *
                          static_cast<size_t>(num_shards_) +
                      static_cast<size_t>(dst)]
        .box;
  }

  // Coordinator-only: injects every pending mailbox message into its
  // destination calendar.  Injection order is irrelevant — the message-band
  // key is total — but the injection itself is single-threaded.  Debug
  // builds assert here that every drained message lands at or after the
  // bound of the window it was sent in: Post() already checks the per-send
  // contract against the *sender's* clock, and this second check catches
  // anything that would erode an in-flight delay below the lookahead after
  // the send (no such path exists today; a future fault-domain interaction
  // — say a slowlink edge rewriting wire times — must not introduce one
  // undetected).
  void DrainMailboxes();
  // Runs every shard's RunBefore(bound), on the worker pool or serially.
  void ExecuteWindow(SimTime bound);
  void StartWorkers();
  void StopWorkers();
  void WorkerLoop(size_t shard_index);

  int num_shards_;
  int num_entities_;
  SimTime lookahead_ms_;
  bool parallel_;

  std::vector<std::unique_ptr<Scheduler>> shards_;
  std::vector<PaddedMailbox> mailboxes_;     // S x S, source-major
  std::vector<PaddedCounter> next_ordinal_;  // per entity
  uint64_t windows_ = 0;
  uint64_t cross_shard_messages_ = 0;
  // Bound of the most recently executed window within the current Run()
  // call; the DrainMailboxes lookahead-contract assertion compares drained
  // arrival times against it.  Reset at the top of Run() because setup
  // work posted between Run() calls is checked against the sender's clock
  // only (shard clocks may trail the last window bound arbitrarily).
  SimTime last_window_bound_ = -std::numeric_limits<SimTime>::infinity();

  // Worker pool: shard 0 runs on the coordinator (calling) thread, shard s
  // on workers_[s - 1].  A shard is always executed by the same thread;
  // the barrier mutex publishes mailbox drains and calendar injections
  // between window epochs.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  SimTime window_bound_ = 0.0;
  int running_ = 0;
  bool stop_ = false;
};

/// Awaitable remote-service request: the message-shaped replacement for a
/// direct `co_await resource.Use(...)` on another entity's resource, which
/// a shard-confined coroutine must never do (the resource may live on a
/// different shard's calendar and thread).
///
/// Protocol (both legs ride the message band, so the result is
/// shard-count-invariant like any other Post):
///
///   caller (entity `from`, suspended)
///     --[request, +lookahead]--> owner's shard spawns a serve coroutine
///                                that queues for and holds `resource` for
///                                `service_ms` (FCFS with the owner's local
///                                users)
///     <--[handback, +lookahead]-- caller resumes on its own shard
///
/// Total latency: 2 x lookahead + remote queueing + service.  The two
/// lookahead legs model the request/reply wire crossings; callers that
/// want the full netsim packet cost should charge their own endpoint CPU
/// around the await (see netsim/shard_mailbox.h).
///
/// Not cancellation-safe: the handback resumes the caller's handle
/// directly, so the caller's frame must stay alive until the handback
/// lands (do not Cancel() a process suspended in RemoteUse).
class RemoteUseAwaiter {
 public:
  RemoteUseAwaiter(ShardedScheduler& sharded, int from, int owner,
                   Resource& resource, SimTime service_ms)
      : sharded_(&sharded),
        from_(from),
        owner_(owner),
        resource_(&resource),
        service_ms_(service_ms) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}

 private:
  ShardedScheduler* sharded_;
  int from_;
  int owner_;
  Resource* resource_;
  SimTime service_ms_;
};

/// `co_await RemoteUse(ss, from, owner, res, ms)` — see RemoteUseAwaiter.
/// `resource` must live on `owner`'s home shard; the caller must be
/// executing on `from`'s home shard.
inline RemoteUseAwaiter RemoteUse(ShardedScheduler& sharded, int from,
                                  int owner, Resource& resource,
                                  SimTime service_ms) {
  return RemoteUseAwaiter(sharded, from, owner, resource, service_ms);
}

/// Drives a single Scheduler to `until` through the sharded window pacing
/// (repeated RunBefore(next event + lookahead) slices): the degenerate
/// one-group case of ShardedScheduler::Run.  Dispatch order — and therefore
/// every simulation result — is identical to RunUntil(until); Cluster runs
/// under this driver for config.shards > 1, and CI keeps the equivalence
/// honest by comparing --shards=4 CSVs against --shards=1.
void RunUntilWindowed(Scheduler& sched, SimTime until, SimTime lookahead_ms);

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_SHARDED_H_
