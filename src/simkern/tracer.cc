// Copyright 2026 the pdblb authors. MIT license.

#include "simkern/tracer.h"

#include <cstdio>

namespace pdblb::sim {

std::string Tracer::ToCsv() const {
  std::string out = kCsvHeader;
  const size_t n = ring_.size();
  out.reserve(out.size() + n * 48);
  // Ordinals are global push positions: the oldest retained record is
  // number total() - size() (earlier ones were overwritten in place).
  uint64_t first = ring_.total() - n;
  char row[96];
  for (size_t i = 0; i < n; ++i) {
    const TraceRecord& r = ring_.At(i);
    int len = std::snprintf(
        row, sizeof(row), "%llu,%.6f,%s,%s,%u,%u\n",
        static_cast<unsigned long long>(first + i), r.at,
        TraceEventKindName(r.kind),
        TraceSubsystemName(r.tag >> TraceTag::kOriginBits),
        static_cast<unsigned>(r.tag & TraceTag::kOriginMask),
        static_cast<unsigned>(r.seq));
    out.append(row, static_cast<size_t>(len));
  }
  return out;
}

Status Tracer::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot write trace to " + path);
  }
  std::string csv = ToCsv();
  size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  if (written != csv.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace pdblb::sim
