// Copyright 2026 the pdblb authors. MIT license.

#include "simkern/resource.h"

namespace pdblb::sim {

Resource::Resource(Scheduler& sched, int servers, std::string name,
                   TraceTag tag)
    : sched_(sched), name_(std::move(name)), tag_(tag), servers_(servers),
      free_(servers) {
  assert(servers >= 1);
  last_change_ = sched_.Now();
  stats_start_ = sched_.Now();
}

void Resource::AccumulateBusy() {
  SimTime now = sched_.Now();
  busy_integral_ += static_cast<double>(busy()) * (now - last_change_);
  last_change_ = now;
}

void Resource::Grant() {
  assert(free_ > 0);
  AccumulateBusy();
  --free_;
}

void Resource::Release() {
  AccumulateBusy();
  ++free_;
  assert(free_ <= servers_);
  ++completed_;
  if (!waiters_.empty()) {
    // Hand the freed server to the next waiter (still FCFS).  The grant is
    // performed inline — no intermediate grant wake-up event.  A Use()
    // waiter's service interval starts at this instant, so its single
    // calendar event is the resume at end of service; an Acquire() waiter
    // brackets its own service and wakes at the grant timestamp (through
    // the same-time ring, preserving calendar FIFO for admission queues).
    Waiter w = waiters_.front();
    waiters_.pop_front();
    Grant();
    sched_.ScheduleHandle(
        w.service < 0.0 ? sched_.Now() : sched_.Now() + w.service, w.handle,
        tag_);
  }
}

void Resource::CancelWaiter(std::coroutine_handle<> h) {
  if (waiters_.EraseFirstIf(
          [&](const Waiter& w) { return w.handle == h; })) {
    return;  // never granted: nothing held, nobody to wake
  }
  // Not in the queue, so Release() already granted this waiter a server and
  // scheduled its wake-up: scrub the pending event and return the server —
  // which may grant the next waiter inline, exactly as a normal release.
  sched_.CancelHandle(h);
  Release();
}

double Resource::BusyIntegral() const {
  // Include the busy time accrued since the last state change.
  return busy_integral_ +
         static_cast<double>(busy()) * (sched_.Now() - last_change_);
}

double Resource::Utilization() const {
  double window = sched_.Now() - stats_start_;
  if (window <= 0.0) return 0.0;
  return (BusyIntegral() - stats_start_integral_) /
         (static_cast<double>(servers_) * window);
}

void Resource::ResetStats() {
  stats_start_ = sched_.Now();
  stats_start_integral_ = BusyIntegral();
  completed_ = 0;
  max_queue_ = waiters_.size();
}

}  // namespace pdblb::sim
