// Copyright 2026 the pdblb authors. MIT license.
//
// Unbounded FIFO channel for message passing between simulation processes
// (e.g. tuples batches streaming from scan operators to join operators).

#ifndef PDBLB_SIMKERN_CHANNEL_H_
#define PDBLB_SIMKERN_CHANNEL_H_

#include <cassert>
#include <coroutine>
#include <optional>

#include "simkern/ring.h"
#include "simkern/scheduler.h"

namespace pdblb::sim {

/// Multi-producer / multi-consumer unbounded channel.
///
/// `Send` never blocks.  `Receive` suspends until a value is available and
/// returns std::nullopt once the channel is closed and drained.
///
/// A consumer blocked in Receive() when a value arrives is woken through
/// the scheduler's hand-off lane (Scheduler::HandOff): no calendar event,
/// no sequence number, no allocation — it resumes at the same timestamp as
/// soon as the producer suspends, so a producer emitting a burst of values
/// still lets the consumer drain the whole burst in one resumption.
/// `pending_wakeups_` counts consumers already woken (by hand-off or by
/// Close): a value may be claimed synchronously in await_ready only when it
/// is not already promised to one of them, which keeps wake-ups exact and
/// starvation-free.  Close() broadcasts through the calendar instead — its
/// waiters keep their FIFO positions relative to other same-time events.
/// Once the channel is closed a receiver never suspends: either an
/// unpromised value is available, or every remaining value belongs to an
/// already-woken consumer and the receiver observes the close (returns
/// nullopt) immediately — nobody is left to wake it later.
///
/// Both the value queue and the waiter queue are recycled ring buffers with
/// a small inline capacity, so a per-query channel whose queues stay short
/// never allocates at all.
template <typename T>
class Channel {
 public:
  /// `tag` attributes this channel's *calendar* wake-ups (the Close
  /// broadcast) in event traces.  Send hand-offs always record as
  /// channel/0: the hand-off lane is statically attributed (see
  /// Scheduler::HandOff), so a per-channel origin is only visible on
  /// close wakes.
  explicit Channel(Scheduler& sched,
                   TraceTag tag = TraceTag(TraceSubsystem::kChannel))
      : sched_(sched), tag_(tag) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues a value; wakes one waiting consumer (if any) through the
  /// hand-off lane.
  void Send(T value) {
    assert(!closed_ && "Send on closed channel");
    values_.push_back(std::move(value));
    if (!waiters_.empty()) {
      sched_.HandOff(waiters_.front(), tag_);
      waiters_.pop_front();
      ++pending_wakeups_;
    }
  }

  /// Marks the channel closed: waiting and future receivers get nullopt once
  /// the queue drains.  Idempotent.
  void Close() {
    if (closed_) return;
    closed_ = true;
    // Wake everyone; those that find no value observe the close.
    while (!waiters_.empty()) {
      sched_.ScheduleHandle(sched_.Now(), waiters_.front(), tag_);
      waiters_.pop_front();
      ++pending_wakeups_;
    }
  }

  bool closed() const { return closed_; }
  size_t size() const { return values_.size(); }

  /// Awaitable returning std::optional<T>.
  auto Receive() {
    struct Awaiter {
      Channel* ch;
      // Stored directly (not reached through `ch`): at scheduler teardown
      // the channel may already be destroyed, and the teardown check must
      // not touch it.
      Scheduler* sched;
      bool suspended = false;
      // Set while suspended; the destructor undoes the wait when the frame
      // is destroyed mid-suspension (Scheduler::Cancel cascade).
      std::coroutine_handle<> pending = nullptr;
      bool await_ready() const noexcept {
        // A value may be claimed synchronously only if no in-flight wakeup
        // is counting on it; otherwise a woken consumer would starve.
        if (ch->values_.size() >
            static_cast<size_t>(ch->pending_wakeups_)) {
          return true;
        }
        // A closed channel never suspends a receiver: with every remaining
        // value promised to an already-woken consumer there is no future
        // Send or Close left to wake it — it would hang forever.  The
        // resume path below turns this case into an immediate nullopt.
        return ch->closed_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        suspended = true;
        pending = h;
        ch->waiters_.push_back(h);
      }
      ~Awaiter() {
        if (!pending || sched->tearing_down()) return;
        // Still queued: just leave.  Already woken (hand-off or Close
        // broadcast): scrub the wake and give the promise back — the value
        // reserved for us becomes claimable by other receivers again.
        if (ch->waiters_.EraseFirstIf(
                [&](std::coroutine_handle<> w) { return w == pending; })) {
          return;
        }
        sched->CancelHandle(pending);
        assert(ch->pending_wakeups_ > 0);
        --ch->pending_wakeups_;
      }
      std::optional<T> await_resume() {
        pending = nullptr;
        if (suspended) {
          assert(ch->pending_wakeups_ > 0);
          --ch->pending_wakeups_;
        } else if (ch->values_.size() <=
                   static_cast<size_t>(ch->pending_wakeups_)) {
          // Synchronous resume on a closed channel whose remaining values
          // are all promised to woken consumers: observe the close.
          assert(ch->closed_);
          return std::nullopt;
        }
        if (ch->values_.empty()) {
          assert(ch->closed_);
          return std::nullopt;
        }
        T v = std::move(ch->values_.front());
        ch->values_.pop_front();
        return v;
      }
    };
    return Awaiter{this, &sched_};
  }

 private:
  Scheduler& sched_;
  TraceTag tag_;
  RingBuffer<T, 4> values_;
  RingBuffer<std::coroutine_handle<>, 4> waiters_;
  int pending_wakeups_ = 0;
  bool closed_ = false;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_CHANNEL_H_
