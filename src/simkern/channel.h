// Copyright 2026 the pdblb authors. MIT license.
//
// Unbounded FIFO channel for message passing between simulation processes
// (e.g. tuples batches streaming from scan operators to join operators).

#ifndef PDBLB_SIMKERN_CHANNEL_H_
#define PDBLB_SIMKERN_CHANNEL_H_

#include <cassert>
#include <coroutine>
#include <deque>
#include <optional>

#include "simkern/scheduler.h"

namespace pdblb::sim {

/// Multi-producer / multi-consumer unbounded channel.
///
/// `Send` never blocks.  `Receive` suspends until a value is available and
/// returns std::nullopt once the channel is closed and drained.  Consumers
/// waiting when a value arrives are woken through the event queue, preserving
/// deterministic FIFO ordering.
template <typename T>
class Channel {
 public:
  explicit Channel(Scheduler& sched) : sched_(sched) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues a value; wakes one waiting consumer if any.
  void Send(T value) {
    assert(!closed_ && "Send on closed channel");
    values_.push_back(std::move(value));
    WakeOne();
  }

  /// Marks the channel closed: waiting and future receivers get nullopt once
  /// the queue drains.  Idempotent.
  void Close() {
    if (closed_) return;
    closed_ = true;
    // Wake everyone; those that find no value observe the close.
    while (!waiters_.empty()) {
      sched_.ScheduleHandle(sched_.Now(), waiters_.front());
      waiters_.pop_front();
      ++scheduled_wakeups_;
    }
  }

  bool closed() const { return closed_; }
  size_t size() const { return values_.size(); }

  /// Awaitable returning std::optional<T>.
  auto Receive() {
    struct Awaiter {
      Channel* ch;
      bool suspended = false;
      bool await_ready() const noexcept {
        // A value may be claimed synchronously only if no scheduled wakeup
        // is counting on it; otherwise a woken consumer would starve.
        if (ch->values_.size() >
            static_cast<size_t>(ch->scheduled_wakeups_)) {
          return true;
        }
        return ch->closed_ && ch->values_.empty();
      }
      void await_suspend(std::coroutine_handle<> h) {
        suspended = true;
        ch->waiters_.push_back(h);
      }
      std::optional<T> await_resume() {
        if (suspended) {
          assert(ch->scheduled_wakeups_ > 0);
          --ch->scheduled_wakeups_;
        }
        if (ch->values_.empty()) {
          assert(ch->closed_);
          return std::nullopt;
        }
        T v = std::move(ch->values_.front());
        ch->values_.pop_front();
        return v;
      }
    };
    return Awaiter{this};
  }

 private:
  void WakeOne() {
    if (!waiters_.empty()) {
      sched_.ScheduleHandle(sched_.Now(), waiters_.front());
      waiters_.pop_front();
      ++scheduled_wakeups_;
    }
  }

  Scheduler& sched_;
  std::deque<T> values_;
  std::deque<std::coroutine_handle<>> waiters_;
  int scheduled_wakeups_ = 0;
  bool closed_ = false;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_CHANNEL_H_
