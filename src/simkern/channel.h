// Copyright 2026 the pdblb authors. MIT license.
//
// Unbounded FIFO channel for message passing between simulation processes
// (e.g. tuples batches streaming from scan operators to join operators).

#ifndef PDBLB_SIMKERN_CHANNEL_H_
#define PDBLB_SIMKERN_CHANNEL_H_

#include <cassert>
#include <coroutine>
#include <optional>

#include "simkern/ring.h"
#include "simkern/scheduler.h"

namespace pdblb::sim {

/// Multi-producer / multi-consumer unbounded channel.
///
/// `Send` never blocks.  `Receive` suspends until a value is available and
/// returns std::nullopt once the channel is closed and drained.
///
/// A consumer blocked in Receive() when a value arrives is woken through
/// the scheduler's hand-off lane (Scheduler::HandOff): no calendar event,
/// no sequence number, no allocation — it resumes at the same timestamp as
/// soon as the producer suspends, so a producer emitting a burst of values
/// still lets the consumer drain the whole burst in one resumption.
/// `pending_wakeups_` counts consumers already woken (by hand-off or by
/// Close): a value may be claimed synchronously in await_ready only when it
/// is not already promised to one of them, which keeps wake-ups exact and
/// starvation-free.  Close() broadcasts through the calendar instead — its
/// waiters keep their FIFO positions relative to other same-time events.
///
/// Both the value queue and the waiter queue are recycled ring buffers with
/// a small inline capacity, so a per-query channel whose queues stay short
/// never allocates at all.
template <typename T>
class Channel {
 public:
  explicit Channel(Scheduler& sched) : sched_(sched) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues a value; wakes one waiting consumer (if any) through the
  /// hand-off lane.
  void Send(T value) {
    assert(!closed_ && "Send on closed channel");
    values_.push_back(std::move(value));
    if (!waiters_.empty()) {
      sched_.HandOff(waiters_.front());
      waiters_.pop_front();
      ++pending_wakeups_;
    }
  }

  /// Marks the channel closed: waiting and future receivers get nullopt once
  /// the queue drains.  Idempotent.
  void Close() {
    if (closed_) return;
    closed_ = true;
    // Wake everyone; those that find no value observe the close.
    while (!waiters_.empty()) {
      sched_.ScheduleHandle(sched_.Now(), waiters_.front());
      waiters_.pop_front();
      ++pending_wakeups_;
    }
  }

  bool closed() const { return closed_; }
  size_t size() const { return values_.size(); }

  /// Awaitable returning std::optional<T>.
  auto Receive() {
    struct Awaiter {
      Channel* ch;
      bool suspended = false;
      bool await_ready() const noexcept {
        // A value may be claimed synchronously only if no in-flight wakeup
        // is counting on it; otherwise a woken consumer would starve.
        if (ch->values_.size() >
            static_cast<size_t>(ch->pending_wakeups_)) {
          return true;
        }
        return ch->closed_ && ch->values_.empty();
      }
      void await_suspend(std::coroutine_handle<> h) {
        suspended = true;
        ch->waiters_.push_back(h);
      }
      std::optional<T> await_resume() {
        if (suspended) {
          assert(ch->pending_wakeups_ > 0);
          --ch->pending_wakeups_;
        }
        if (ch->values_.empty()) {
          assert(ch->closed_);
          return std::nullopt;
        }
        T v = std::move(ch->values_.front());
        ch->values_.pop_front();
        return v;
      }
    };
    return Awaiter{this};
  }

 private:
  Scheduler& sched_;
  RingBuffer<T, 4> values_;
  RingBuffer<std::coroutine_handle<>, 4> waiters_;
  int pending_wakeups_ = 0;
  bool closed_ = false;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_CHANNEL_H_
