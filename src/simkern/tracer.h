// Copyright 2026 the pdblb authors. MIT license.
//
// Tracer: per-scheduler event-trace recorder and attribution accumulator.
//
// A Tracer owns a pre-allocated TraceRing plus one (event count, simulated
// time) accumulator per subsystem.  The scheduler calls Record() once per
// dispatched event / hand-off resume while a tracer is attached; with no
// tracer attached the hot path pays a single well-predicted branch, and
// with PDBLB_TRACE=0 the hook is compiled out entirely.
//
// Attribution semantics: the simulated time that elapses between two
// consecutive dispatches is charged to the subsystem of the event that
// advanced the clock ("the kernel was waiting for this disk completion").
// Same-timestamp events and hand-offs contribute zero elapsed time but
// still count.  The accumulators are folded online, so the breakdown is
// exact even when the ring has wrapped and only the trace tail is retained.

#ifndef PDBLB_SIMKERN_TRACER_H_
#define PDBLB_SIMKERN_TRACER_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/units.h"
#include "simkern/trace_ring.h"

namespace pdblb::sim {

/// Per-subsystem fold of the event trace.
struct TraceBreakdown {
  uint64_t events = 0;      ///< Dispatches attributed to the subsystem.
  double sim_time_ms = 0.0; ///< Simulated time advanced by those dispatches.
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 20;
  /// Header of the ToCsv()/WriteCsv() format.  Shared with the runner's
  /// header-only dump for PDBLB_TRACE=OFF builds, so the --trace file
  /// format cannot drift between build modes.
  static constexpr const char* kCsvHeader =
      "ordinal,at_ms,kind,subsystem,origin,seq\n";

  /// Pre-allocates the record ring; recording never allocates afterwards.
  explicit Tracer(size_t capacity = kDefaultCapacity) : ring_(capacity) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Hot-path hook (called by the scheduler's dispatch loop).
  void Record(SimTime at, TraceEventKind kind, uint16_t tag_bits,
              uint64_t ordinal) {
    size_t subsystem = tag_bits >> TraceTag::kOriginBits;
    assert(subsystem < kNumTraceSubsystems);
    TraceBreakdown& b = breakdown_[subsystem];
    ++b.events;
    b.sim_time_ms += at - last_at_;
    last_at_ = at;
    ring_.Push(TraceRecord{at, static_cast<uint32_t>(ordinal), tag_bits,
                           static_cast<uint8_t>(kind)});
  }

  const TraceRing& ring() const { return ring_; }

  /// The post-run attribution result: one accumulator per subsystem
  /// (indexed by TraceSubsystem), exact for the whole run regardless of
  /// ring wrap-around.
  const std::array<TraceBreakdown, kNumTraceSubsystems>& breakdown() const {
    return breakdown_;
  }

  /// Retained records as CSV (header + one row per record, oldest first).
  /// Fully deterministic: depends only on the simulated event sequence.
  std::string ToCsv() const;

  /// Writes ToCsv() to `path`.
  Status WriteCsv(const std::string& path) const;

 private:
  TraceRing ring_;
  std::array<TraceBreakdown, kNumTraceSubsystems> breakdown_{};
  SimTime last_at_ = 0.0;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_TRACER_H_
