// Copyright 2026 the pdblb authors. MIT license.
//
// Event-trace record format and the fixed-capacity ring that retains the
// most recent records of a run.  This header is included by the scheduler
// hot path, so it holds only POD types and inline one-liners; the recording
// logic lives in tracer.h.
//
// Compile-time gate: building with -DPDBLB_TRACE=0 (CMake option
// PDBLB_TRACE=OFF) removes every tracing hook from the kernel — the
// dispatch loop is bit-identical to a build that never heard of tracing.
// The types below stay defined either way so call sites that pass a
// TraceTag compile unchanged; the tag is simply ignored.

#ifndef PDBLB_SIMKERN_TRACE_RING_H_
#define PDBLB_SIMKERN_TRACE_RING_H_

#ifndef PDBLB_TRACE
#define PDBLB_TRACE 1
#endif

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.h"

namespace pdblb::sim {

/// True when the tracing hooks are compiled into the kernel.  Tests and
/// drivers use this to skip trace-content assertions in PDBLB_TRACE=OFF
/// builds (the API surface still exists; it just records nothing).
inline constexpr bool kTraceCompiledIn = PDBLB_TRACE != 0;

/// Simulation subsystem a dispatched event is attributed to.  The id is
/// threaded from the call site that schedules the wake-up (a disk Resource
/// tags its end-of-service resumes kDisk, a channel tags its hand-offs
/// kChannel, ...) and rides in the low bits of the event's sequence word,
/// so attribution costs the hot path nothing.
enum class TraceSubsystem : uint8_t {
  kKernel = 0,     ///< Delays, spawns, generic callbacks (default tag).
  kCpu = 1,        ///< PE CPU servers (service-interval resumes).
  kDisk = 2,       ///< Disk/controller/log servers and page transmission.
  kNetwork = 3,    ///< Wire latency of packetized transfers.
  kLock = 4,       ///< Lock-manager grant and abort wake-ups.
  kChannel = 5,    ///< Channel value hand-offs and close broadcasts.
  kLatch = 6,      ///< Latch fan-out wake-ups.
  kTaskGroup = 7,  ///< TaskGroup join wake-ups.
  kAdmission = 8,  ///< Transaction-manager admission (MPL) queue.
  kCount = 9,
};

inline constexpr size_t kNumTraceSubsystems =
    static_cast<size_t>(TraceSubsystem::kCount);

/// Printable name of a subsystem id (stable; used in trace CSV and JSON).
inline const char* TraceSubsystemName(size_t subsystem) {
  static const char* kNames[kNumTraceSubsystems] = {
      "kernel", "cpu",   "disk",  "network",  "lock",
      "channel", "latch", "group", "admission"};
  return subsystem < kNumTraceSubsystems ? kNames[subsystem] : "?";
}

/// How a record entered the dispatch loop.
enum class TraceEventKind : uint8_t {
  kCalendar = 0,   ///< Future-time event popped from the binary heap.
  kZeroDelay = 1,  ///< Same-time event from the FIFO bypass ring.
  kHandOff = 2,    ///< Calendar-bypassing hand-off lane resume.
};

inline const char* TraceEventKindName(uint8_t kind) {
  static const char* kNames[3] = {"calendar", "ring", "handoff"};
  return kind < 3 ? kNames[kind] : "?";
}

/// 16-bit attribution tag carried by every scheduled event:
/// (subsystem << 12) | origin.  `origin` is a small call-site-defined id
/// (PE number for CPUs/disks/locks, source PE for network wires); 0 when
/// the site has no natural origin.  Packed into the low bits of the
/// event's sequence word (below a ring/calendar source bit) — the real
/// sequence number lives in the high 47 bits, so FIFO comparisons are
/// unaffected (distinct events always differ in the high bits).
struct TraceTag {
  uint16_t bits = 0;

  constexpr TraceTag() = default;
  constexpr explicit TraceTag(TraceSubsystem subsystem, uint16_t origin = 0)
      : bits(static_cast<uint16_t>(
            (static_cast<uint16_t>(subsystem) << kOriginBits) |
            (origin & kOriginMask))) {}

  constexpr TraceSubsystem subsystem() const {
    return static_cast<TraceSubsystem>(bits >> kOriginBits);
  }
  constexpr uint16_t origin() const { return bits & kOriginMask; }

  static constexpr unsigned kOriginBits = 12;
  static constexpr uint16_t kOriginMask = (1u << kOriginBits) - 1;
};

/// Number of low sequence-word bits occupied by tracing metadata: the
/// 16-bit packed TraceTag plus one bit (bit 16) recording whether the
/// event was pushed to the same-time FIFO ring or the calendar heap — so
/// dispatch can label the record without any side-channel from the pop
/// path.  The remaining 47 high bits count events: ~10^14 per run.
inline constexpr unsigned kTraceTagShift = 17;
inline constexpr uint64_t kTraceRingBit = 1ull << 16;

/// One dispatched event, 16 bytes.  `seq` is the kind-local ordinal: the
/// calendar sequence number for kCalendar/kZeroDelay records, the hand-off
/// resume ordinal for kHandOff records (the two counters are independent,
/// exactly like events_processed() vs inline_resumes()).
struct TraceRecord {
  SimTime at;     ///< Virtual timestamp of the dispatch.
  uint32_t seq;   ///< Low 32 bits of the kind-local ordinal.
  uint16_t tag;   ///< Packed TraceTag (subsystem | origin).
  uint8_t kind;   ///< TraceEventKind.
  uint8_t pad = 0;
};
static_assert(sizeof(TraceRecord) == 16, "keep trace records compact PODs");

/// Fixed-capacity wrapping record store: the most recent `capacity`
/// records are retained, older ones are overwritten in place.  All memory
/// is allocated up front in the constructor, so recording never touches
/// the heap — the zero-allocation-per-event guarantee holds with tracing
/// enabled (pinned by tests/simkern_alloc_test.cc).
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 64).
  explicit TraceRing(size_t capacity) {
    size_t cap = 64;
    while (cap < capacity) cap *= 2;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  void Push(const TraceRecord& r) { buf_[total_++ & mask_] = r; }

  /// Records retained (<= capacity).
  size_t size() const {
    return total_ < buf_.size() ? static_cast<size_t>(total_) : buf_.size();
  }
  size_t capacity() const { return buf_.size(); }
  /// Records ever pushed; total() - size() were overwritten.
  uint64_t total() const { return total_; }
  uint64_t dropped() const { return total_ - size(); }

  /// i-th oldest retained record, i in [0, size()).
  const TraceRecord& At(size_t i) const {
    return buf_[(total_ - size() + i) & mask_];
  }

 private:
  std::vector<TraceRecord> buf_;
  uint64_t mask_ = 0;
  uint64_t total_ = 0;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_TRACE_RING_H_
