// Copyright 2026 the pdblb authors. MIT license.
//
// FCFS multi-server resource, the workhorse of the queueing model: CPUs,
// disks and disk controllers are all Resources.  Tracks busy-time integrals
// for utilization reporting (the control node's periodic load snapshots) and
// queueing statistics.

#ifndef PDBLB_SIMKERN_RESOURCE_H_
#define PDBLB_SIMKERN_RESOURCE_H_

#include <cassert>
#include <coroutine>
#include <deque>
#include <string>

#include "common/units.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb::sim {

/// A k-server FCFS queueing station.
///
/// Processes either bracket their own service interval:
///
///   co_await res.Acquire();
///   co_await sched.Delay(service_time);
///   res.Release();
///
/// or use the convenience form `co_await res.Use(service_time)`.
class Resource {
 public:
  Resource(Scheduler& sched, int servers, std::string name = "");
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// FCFS acquisition of one server.
  auto Acquire() {
    struct Awaiter {
      Resource* res;
      bool await_ready() {
        if (res->free_ > 0) {
          res->Grant();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res->waiters_.push_back(h);
        res->max_queue_ = std::max(res->max_queue_, res->waiters_.size());
      }
      // Woken waiters were granted a server by Release().
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Releases one server and hands it to the longest-waiting process.
  void Release();

  /// Acquire + Delay(duration) + Release.
  Task<> Use(SimTime duration);

  int servers() const { return servers_; }
  int busy() const { return servers_ - free_; }
  size_t queue_length() const { return waiters_.size(); }
  size_t max_queue_length() const { return max_queue_; }
  const std::string& name() const { return name_; }

  /// Busy server-milliseconds accumulated since construction.  Utilization
  /// over a window is (delta busy integral) / (servers * window).
  double BusyIntegral() const;

  /// Utilization since the last ResetStats (or construction).
  double Utilization() const;

  /// Total completed acquisitions since construction.
  uint64_t completed() const { return completed_; }

  /// Restarts the utilization measurement window (e.g. after warm-up).
  void ResetStats();

 private:
  void Grant();        // free_--, update integral
  void AccumulateBusy();  // fold busy time up to Now() into the integral

  Scheduler& sched_;
  std::string name_;
  int servers_;
  int free_;
  std::deque<std::coroutine_handle<>> waiters_;
  size_t max_queue_ = 0;

  double busy_integral_ = 0.0;
  SimTime last_change_ = 0.0;
  SimTime stats_start_ = 0.0;
  double stats_start_integral_ = 0.0;
  uint64_t completed_ = 0;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_RESOURCE_H_
