// Copyright 2026 the pdblb authors. MIT license.
//
// FCFS multi-server resource, the workhorse of the queueing model: CPUs,
// disks and disk controllers are all Resources.  Tracks busy-time integrals
// for utilization reporting (the control node's periodic load snapshots) and
// queueing statistics.

#ifndef PDBLB_SIMKERN_RESOURCE_H_
#define PDBLB_SIMKERN_RESOURCE_H_

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <string>

#include "common/units.h"
#include "simkern/ring.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb::sim {

/// A k-server FCFS queueing station.
///
/// Processes either bracket their own service interval:
///
///   co_await res.Acquire();
///   co_await sched.Delay(service_time);
///   res.Release();
///
/// or use the frameless form `co_await res.Use(service_time)`, which is the
/// hot path: it suspends the caller directly on the resource's wait queue
/// (no coroutine frame), and a release hands the freed server to the next
/// waiter inline — the grant bookkeeping happens synchronously inside
/// Release(), and the only calendar event per acquisition is the waiter's
/// resume at its end-of-service time.  A contended acquisition therefore
/// costs one event instead of the two (grant wake-up + service delay) the
/// coroutine-based Use() used to pay.
class Resource {
 public:
  /// `tag` attributes this station's end-of-service and grant wake-ups in
  /// event traces (default: kKernel — callers that model a real subsystem
  /// pass e.g. TraceTag(TraceSubsystem::kCpu, pe_id)).
  Resource(Scheduler& sched, int servers, std::string name = "",
           TraceTag tag = {});
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// FCFS acquisition of one server.  The caller brackets its own service
  /// interval and must call Release() when done.
  auto Acquire() {
    struct Awaiter {
      Resource* res;
      // Stored directly (not reached through `res`): at scheduler teardown
      // the resource may already be destroyed, and the teardown check must
      // not touch it.
      Scheduler* sched;
      // Set while suspended so the destructor can undo a pending wait when
      // the frame is destroyed mid-suspension (Scheduler::Cancel cascade).
      // A synchronous grant (await_ready) never sets it: the caller then
      // owns the server and its own cleanup must Release().
      std::coroutine_handle<> pending = nullptr;
      bool await_ready() {
        if (res->free_ > 0) {
          res->Grant();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        pending = h;
        res->Enqueue(h, kAcquireSentinel);
      }
      // Woken waiters were granted a server by Release().
      void await_resume() noexcept { pending = nullptr; }
      ~Awaiter() {
        if (pending && !sched->tearing_down()) res->CancelWaiter(pending);
      }
    };
    return Awaiter{this, &sched_};
  }

  /// Releases one server and hands it to the longest-waiting process.
  void Release();

  /// Frameless Acquire + Delay(duration) + Release.  `co_await res.Use(d)`
  /// suspends the caller exactly once — until its service interval ends —
  /// and performs the release on resumption.
  auto Use(SimTime duration) {
    struct Awaiter {
      Resource* res;
      // See Acquire(): teardown check must not reach through `res`.
      Scheduler* sched;
      SimTime service;
      std::coroutine_handle<> pending = nullptr;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        pending = h;
        if (res->free_ > 0) {
          // Server available: the service interval starts now; resume the
          // caller when it ends.
          res->Grant();
          res->sched_.ScheduleHandle(res->sched_.Now() + service, h,
                                     res->tag_);
        } else {
          res->Enqueue(h, service);
        }
      }
      // Resumed at end of service (the releasing side scheduled us at
      // grant time + service).  Free the server and hand off.
      void await_resume() {
        pending = nullptr;
        res->Release();
      }
      ~Awaiter() {
        if (pending && !sched->tearing_down()) res->CancelWaiter(pending);
      }
    };
    assert(duration >= 0.0);
    return Awaiter{this, &sched_, duration};
  }

  int servers() const { return servers_; }
  int busy() const { return servers_ - free_; }
  size_t queue_length() const { return waiters_.size(); }
  size_t max_queue_length() const { return max_queue_; }
  const std::string& name() const { return name_; }

  /// Busy server-milliseconds accumulated since construction.  Utilization
  /// over a window is (delta busy integral) / (servers * window).
  double BusyIntegral() const;

  /// Utilization since the last ResetStats (or construction).
  double Utilization() const;

  /// Total completed acquisitions since construction.
  uint64_t completed() const { return completed_; }

  /// Restarts the utilization measurement window (e.g. after warm-up).
  void ResetStats();

 private:
  // A waiter is either a Use() suspension carrying its service time, or an
  // Acquire() suspension marked by the sentinel (it brackets its own
  // service interval and must wake at the grant timestamp).
  static constexpr SimTime kAcquireSentinel = -1.0;
  struct Waiter {
    std::coroutine_handle<> handle;
    SimTime service;
  };

  void Enqueue(std::coroutine_handle<> h, SimTime service) {
    waiters_.push_back(Waiter{h, service});
    max_queue_ = std::max(max_queue_, waiters_.size());
  }

  void Grant();           // free_--, update integral
  void AccumulateBusy();  // fold busy time up to Now() into the integral
  // Undoes a suspended waiter whose frame is being destroyed mid-wait:
  // still-queued entries are erased; already-granted ones (wake pending in
  // the calendar) are scrubbed and their server released back.
  void CancelWaiter(std::coroutine_handle<> h);

  Scheduler& sched_;
  std::string name_;
  TraceTag tag_;
  int servers_;
  int free_;
  RingBuffer<Waiter> waiters_;
  size_t max_queue_ = 0;

  double busy_integral_ = 0.0;
  SimTime last_change_ = 0.0;
  SimTime stats_start_ = 0.0;
  double stats_start_integral_ = 0.0;
  uint64_t completed_ = 0;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_RESOURCE_H_
