// Copyright 2026 the pdblb authors. MIT license.
//
// TaskGroup: dynamic fork/join.  Unlike WhenAll, tasks can be added while
// others are already running (e.g. packet-send tasks spawned as a scan
// streams), and Wait() completes once the group is empty.

#ifndef PDBLB_SIMKERN_TASK_GROUP_H_
#define PDBLB_SIMKERN_TASK_GROUP_H_

#include <coroutine>

#include "simkern/ring.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb::sim {

/// A set of detached tasks with a joinable completion point.
///
/// The group must outlive all tasks spawned into it (the usual pattern:
/// a coroutine creates a TaskGroup on its frame, spawns into it, and
/// `co_await group.Wait()` before the frame dies).
class TaskGroup {
 public:
  /// `tag` attributes the join wake-ups in event traces.
  explicit TaskGroup(Scheduler& sched,
                     TraceTag tag = TraceTag(TraceSubsystem::kTaskGroup))
      : sched_(sched), tag_(tag) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Starts `task` at the current simulation time as a member of the group.
  void Spawn(Task<> task) {
    ++active_;
    sched_.Spawn(RunAndFinish(std::move(task), this));
  }

  int active() const { return active_; }

  /// Completes when all spawned tasks have finished.  Multiple waiters are
  /// allowed; an empty group completes immediately.
  auto Wait() {
    struct Awaiter {
      TaskGroup* group;
      bool await_ready() const noexcept { return group->active_ == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        group->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  static Task<> RunAndFinish(Task<> task, TaskGroup* group) {
    co_await std::move(task);
    group->Finish();
  }

  void Finish() {
    if (--active_ == 0) {
      while (!waiters_.empty()) {
        sched_.ScheduleHandle(sched_.Now(), waiters_.front(), tag_);
        waiters_.pop_front();
      }
    }
  }

  Scheduler& sched_;
  TraceTag tag_;
  int active_ = 0;
  // Like Latch: groups are constructed per query and typically have one
  // waiter, which the inline capacity absorbs without an allocation.
  RingBuffer<std::coroutine_handle<>, 4> waiters_;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_TASK_GROUP_H_
