// Copyright 2026 the pdblb authors. MIT license.
//
// TaskGroup: dynamic fork/join.  Unlike WhenAll, tasks can be added while
// others are already running (e.g. packet-send tasks spawned as a scan
// streams), and Wait() completes once the group is empty.

#ifndef PDBLB_SIMKERN_TASK_GROUP_H_
#define PDBLB_SIMKERN_TASK_GROUP_H_

#include <coroutine>

#include "simkern/ring.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb::sim {

/// A set of detached tasks with a joinable completion point.
///
/// The group must outlive all tasks spawned into it: members are detached
/// frames holding a pointer back to the group.  The usual pattern — a
/// coroutine creates a TaskGroup on its frame, spawns into it, and
/// `co_await group.Wait()` before the frame dies — guarantees this on the
/// normal path, and the destructor guarantees it on the cancellation path
/// by cancelling every still-active member (Scheduler::Cancel cascade):
/// destroying a frame that owns a TaskGroup with members in flight is safe.
class TaskGroup {
 public:
  /// `tag` attributes the join wake-ups in event traces.
  explicit TaskGroup(Scheduler& sched,
                     TraceTag tag = TraceTag(TraceSubsystem::kTaskGroup))
      : sched_(sched), tag_(tag) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() {
    if (active_ == 0) return;
    // Cancellation path: the owning frame dies with members in flight.
    // Cancel every member still alive (finished ids are stale and no-op) so
    // no member outlives the group — or the state of the owning frame its
    // work referenced.
    while (!member_ids_.empty()) {
      sched_.Cancel(member_ids_.front());
      member_ids_.pop_front();
    }
    active_ = 0;
  }

  /// Starts `task` at the current simulation time as a member of the group.
  void Spawn(Task<> task) {
    ++active_;
    member_ids_.push_back(sched_.SpawnWithId(RunAndFinish(std::move(task),
                                                          this)));
  }

  int active() const { return active_; }

  /// Completes when all spawned tasks have finished.  Multiple waiters are
  /// allowed; an empty group completes immediately.
  auto Wait() {
    struct Awaiter {
      TaskGroup* group;
      // Stored directly (not reached through `group`): at scheduler
      // teardown the group may already be destroyed, and the teardown
      // check must not touch it.
      Scheduler* sched;
      std::coroutine_handle<> pending = nullptr;
      bool await_ready() const noexcept { return group->active_ == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        pending = h;
        group->waiters_.push_back(h);
      }
      void await_resume() noexcept { pending = nullptr; }
      ~Awaiter() {
        if (!pending || sched->tearing_down()) return;
        if (group->waiters_.EraseFirstIf(
                [&](std::coroutine_handle<> w) { return w == pending; })) {
          return;
        }
        sched->CancelHandle(pending);
      }
    };
    return Awaiter{this, &sched_};
  }

 private:
  static Task<> RunAndFinish(Task<> task, TaskGroup* group) {
    co_await std::move(task);
    group->Finish();
  }

  void Finish() {
    if (--active_ == 0) {
      // All members done: drop their (now stale) cancellation ids so the
      // ring stays sized to the concurrent high-water mark, not the total
      // spawn count — a streaming group that repeatedly drains re-uses the
      // same slots.
      member_ids_.clear();
      while (!waiters_.empty()) {
        sched_.ScheduleHandle(sched_.Now(), waiters_.front(), tag_);
        waiters_.pop_front();
      }
    }
  }

  Scheduler& sched_;
  TraceTag tag_;
  int active_ = 0;
  // Like Latch: groups are constructed per query and typically have one
  // waiter, which the inline capacity absorbs without an allocation.
  RingBuffer<std::coroutine_handle<>, 4> waiters_;
  // Spawn ids of members, for destructor cancellation.  Cleared whenever
  // the group drains; inline capacity covers typical fan-out.
  RingBuffer<uint64_t, 8> member_ids_;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_TASK_GROUP_H_
