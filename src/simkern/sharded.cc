// Copyright 2026 the pdblb authors. MIT license.

#include "simkern/sharded.h"

#include <limits>

#include "simkern/resource.h"
#include "simkern/task.h"

namespace pdblb::sim {

ShardedScheduler::ShardedScheduler(const Options& options)
    : num_shards_(options.num_shards),
      num_entities_(options.num_entities),
      lookahead_ms_(options.lookahead_ms),
      parallel_(options.parallel) {
  assert(num_shards_ >= 1);
  assert(num_entities_ >= num_shards_);
  assert(num_entities_ < (1 << Scheduler::kMessageOriginBits));
  assert(lookahead_ms_ > 0.0 && "conservative windows need lookahead");
  shards_.reserve(static_cast<size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    shards_.push_back(std::make_unique<Scheduler>());
  }
  mailboxes_.resize(static_cast<size_t>(num_shards_) *
                    static_cast<size_t>(num_shards_));
  next_ordinal_.resize(static_cast<size_t>(num_entities_));
}

ShardedScheduler::~ShardedScheduler() { StopWorkers(); }

uint64_t ShardedScheduler::events_processed() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->events_processed();
  return total;
}

uint64_t ShardedScheduler::inline_resumes() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->inline_resumes();
  return total;
}

uint64_t ShardedScheduler::messages_posted() const {
  uint64_t total = 0;
  for (const PaddedCounter& c : next_ordinal_) total += c.value;
  return total;
}

void ShardedScheduler::DrainMailboxes() {
  for (size_t src = 0; src < static_cast<size_t>(num_shards_); ++src) {
    for (size_t dst = 0; dst < static_cast<size_t>(num_shards_); ++dst) {
      ShardMailbox<Mail>& box = mailboxes_[src * num_shards_ + dst].box;
      if (box.empty()) continue;
      cross_shard_messages_ += box.size();
      Scheduler& target = *shards_[dst];
      for (Mail& mail : box.items()) {
        // Lookahead contract, checked at the receiving end: a message sent
        // inside window [m, m + L) must land at >= m + L.  See the
        // declaration comment for why this exists alongside Post()'s
        // sender-side assert.
        assert(mail.at >= last_window_bound_ &&
               "cross-shard message arrived inside the declared lookahead");
        target.ScheduleMessageCallback(mail.at, mail.seq, std::move(mail.fn));
      }
      box.Clear();
    }
  }
}

void ShardedScheduler::Run() {
  constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();
  // Setup posts between Run() calls are only bound by the sender's clock,
  // which may trail the previous Run's final window; exempt them from the
  // drain-time window check.
  last_window_bound_ = -kInf;
  for (;;) {
    // Barrier phase (coordinator only): deliver cross-shard messages, then
    // find the global minimum next event.  Any message sent during the
    // *next* window arrives at >= m + lookahead, so after this drain every
    // event the window can contain is already in a calendar.
    DrainMailboxes();
    SimTime m = kInf;
    for (const auto& s : shards_) {
      SimTime t = s->NextEventTime();
      if (t < m) m = t;
    }
    if (m == kInf) break;
    ++windows_;
    last_window_bound_ = m + lookahead_ms_;
    ExecuteWindow(last_window_bound_);
  }
}

void ShardedScheduler::ExecuteWindow(SimTime bound) {
  if (!parallel_ || num_shards_ == 1) {
    // Serial mode: same windows, same injections, same per-shard dispatch —
    // bit-identical to the parallel mode by construction (shards do not
    // interact inside a window).
    for (auto& s : shards_) s->RunBefore(bound);
    return;
  }
  if (workers_.empty()) StartWorkers();
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_bound_ = bound;
    running_ = num_shards_ - 1;
    ++epoch_;
  }
  start_cv_.notify_all();
  shards_[0]->RunBefore(bound);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return running_ == 0; });
}

void ShardedScheduler::StartWorkers() {
  workers_.reserve(static_cast<size_t>(num_shards_ - 1));
  for (int s = 1; s < num_shards_; ++s) {
    workers_.emplace_back(
        [this, s] { WorkerLoop(static_cast<size_t>(s)); });
  }
}

void ShardedScheduler::StopWorkers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

void ShardedScheduler::WorkerLoop(size_t shard_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    SimTime bound;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) break;
      seen_epoch = epoch_;
      bound = window_bound_;
    }
    shards_[shard_index]->RunBefore(bound);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
    done_cv_.notify_one();
  }
  // Completed frames were recycled into this worker's thread-local arena;
  // release them so nested parallelism (sweep --jobs x --shards) does not
  // pin every shard's peak frame footprint until process exit — the same
  // discipline the sweep runner applies per finished point.
  TrimFrameArenaThreadCache();
}

namespace {

// The owner-shard half of RemoteUse: queue for and hold the resource for
// the full service interval (FCFS with the owner entity's local users),
// then post the handback that resumes the caller on its own shard.
Task<> RemoteServe(ShardedScheduler* sharded, int owner, int from,
                   Resource* resource, SimTime service_ms,
                   std::coroutine_handle<> caller) {
  co_await resource->Use(service_ms);
  sharded->Post(
      owner, from, sharded->home(owner).Now() + sharded->lookahead_ms(),
      [caller] { caller.resume(); },
      TraceTag(TraceSubsystem::kNetwork, static_cast<uint16_t>(owner)));
}

}  // namespace

void RemoteUseAwaiter::await_suspend(std::coroutine_handle<> h) {
  // Copy the fields out: the request lambda outlives this awaiter object
  // (it lives in `h`'s frame, which stays suspended, but keeping the
  // lambda self-contained makes that independence explicit).
  ShardedScheduler* sharded = sharded_;
  int from = from_;
  int owner = owner_;
  Resource* resource = resource_;
  SimTime service_ms = service_ms_;
  sharded->Post(
      from, owner, sharded->home(from).Now() + sharded->lookahead_ms(),
      [sharded, owner, from, resource, service_ms, h] {
        sharded->home(owner).Spawn(
            RemoteServe(sharded, owner, from, resource, service_ms, h));
      },
      TraceTag(TraceSubsystem::kNetwork, static_cast<uint16_t>(from)));
}

void RunUntilWindowed(Scheduler& sched, SimTime until, SimTime lookahead_ms) {
  assert(lookahead_ms > 0.0);
  for (;;) {
    SimTime next = sched.NextEventTime();
    if (next > until) break;  // covers the empty (+inf) calendar
    SimTime bound = next + lookahead_ms;
    if (bound > until) break;  // final partial window: finish via RunUntil
    sched.RunBefore(bound);
  }
  sched.RunUntil(until);  // drain [.., until] and advance Now() to until
}

}  // namespace pdblb::sim
