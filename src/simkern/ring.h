// Copyright 2026 the pdblb authors. MIT license.
//
// RingBuffer<T, InlineCapacity>: the recycled FIFO backing every blocking
// primitive's waiter/value queue (Resource, Channel, Latch, TaskGroup).
//
// Why not std::deque: libstdc++'s deque allocates and frees 512-byte chunks
// as the head/tail cross chunk boundaries, so a heavily contended station
// pays a malloc every ~64 waiters *forever*, not just during warm-up.  The
// ring recycles one power-of-two slab: after it has grown to the high-water
// mark of the queue, push/pop are a store, a load and a masked increment —
// zero steady-state allocations (pinned by tests/simkern_alloc_test.cc).
//
// `InlineCapacity` (a power of two, may be 0) embeds the first slots in the
// object itself.  Short-lived primitives constructed per query or per
// fork/join (Latch, TaskGroup, per-join channels) never touch the heap at
// all as long as their queue stays within the inline capacity.

#ifndef PDBLB_SIMKERN_RING_H_
#define PDBLB_SIMKERN_RING_H_

#include <cassert>
#include <cstddef>
#include <new>
#include <utility>

namespace pdblb::sim {

namespace internal {

template <typename T, size_t N>
struct InlineSlots {
  alignas(T) unsigned char bytes[N * sizeof(T)];
  T* data() { return reinterpret_cast<T*>(bytes); }
};

template <typename T>
struct InlineSlots<T, 0> {
  T* data() { return nullptr; }
};

}  // namespace internal

template <typename T, size_t InlineCapacity = 0>
class RingBuffer {
  static_assert((InlineCapacity & (InlineCapacity - 1)) == 0,
                "InlineCapacity must be zero or a power of two");

 public:
  RingBuffer() = default;
  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  ~RingBuffer() {
    clear();
    if (data_ != nullptr && data_ != inline_.data()) FreeSlots(data_);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  void push_back(T value) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    ::new (static_cast<void*>(data_ + Index(size_))) T(std::move(value));
    ++size_;
  }

  T& front() {
    assert(size_ > 0);
    return data_[head_];
  }

  /// FIFO-indexed access: `(*this)[0]` is the front, `[size()-1]` the back.
  T& operator[](size_t i) {
    assert(i < size_);
    return data_[Index(i)];
  }

  /// Removes the first element matching `pred`, preserving FIFO order of
  /// the rest (elements behind the hole shift forward one slot).  Used by
  /// cancellation paths to pull a destroyed frame's waiter entry out of the
  /// queue; O(size) moves, no allocation.  Returns false if nothing matched.
  template <typename Pred>
  bool EraseFirstIf(Pred pred) {
    for (size_t i = 0; i < size_; ++i) {
      if (!pred(data_[Index(i)])) continue;
      for (size_t j = i; j + 1 < size_; ++j) {
        data_[Index(j)] = std::move(data_[Index(j + 1)]);
      }
      data_[Index(size_ - 1)].~T();
      --size_;
      return true;
    }
    return false;
  }

  void pop_front() {
    assert(size_ > 0);
    data_[head_].~T();
    head_ = (head_ + 1) & (capacity_ - 1);
    --size_;
  }

  /// Destroys all elements; capacity (and therefore the zero-allocation
  /// steady state) is retained.
  void clear() {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

  /// Grows capacity to at least `n` slots (rounded up to a power of two).
  void reserve(size_t n) {
    if (n <= capacity_) return;
    size_t cap = capacity_ == 0 ? kMinHeapCapacity : capacity_;
    while (cap < n) cap *= 2;
    Grow(cap);
  }

 private:
  static constexpr size_t kMinHeapCapacity = 16;

  size_t Index(size_t i) const { return (head_ + i) & (capacity_ - 1); }

  static T* AllocateSlots(size_t n) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t(alignof(T))));
    } else {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
  }
  static void FreeSlots(T* p) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      ::operator delete(p, std::align_val_t(alignof(T)));
    } else {
      ::operator delete(p);
    }
  }

  void Grow(size_t cap) {
    if (cap < kMinHeapCapacity) cap = kMinHeapCapacity;
    T* grown = AllocateSlots(cap);
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(grown + i)) T(std::move(data_[Index(i)]));
      data_[Index(i)].~T();
    }
    if (data_ != nullptr && data_ != inline_.data()) FreeSlots(data_);
    data_ = grown;
    capacity_ = cap;
    head_ = 0;
  }

  // With inline capacity the ring starts life pointing at the embedded
  // slots; the first heap growth copies out of them and never goes back.
  internal::InlineSlots<T, InlineCapacity> inline_;
  T* data_ = InlineCapacity > 0 ? inline_.data() : nullptr;
  size_t capacity_ = InlineCapacity;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_RING_H_
