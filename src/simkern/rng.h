// Copyright 2026 the pdblb authors. MIT license.
//
// Deterministic random number generation.  Every stochastic element of the
// simulation (arrival processes, placement decisions, key values) draws from
// an Rng forked off the experiment's root seed, so runs are exactly
// reproducible and independent streams do not interfere.

#ifndef PDBLB_SIMKERN_RNG_H_
#define PDBLB_SIMKERN_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace pdblb::sim {

/// Seedable, forkable random source.
class Rng {
 public:
  explicit Rng(uint64_t seed) : seed_(seed), engine_(Mix(seed)) {}

  /// Derives an independent stream: same (seed, stream) always yields the
  /// same sequence.
  Rng Fork(uint64_t stream) const {
    return Rng(seed_ ^ Mix(stream + 0x9e3779b97f4a7c15ULL));
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Exponentially distributed value with the given mean (inter-arrival
  /// times of the open queueing model's Poisson arrivals).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Samples k distinct integers from [0, n) (join processor selection for
  /// the RANDOM policy).  Returned in random order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  std::mt19937_64& engine() { return engine_; }

 private:
  static uint64_t Mix(uint64_t x) {
    // splitmix64 finalizer.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  uint64_t seed_ = 0;
  std::mt19937_64 engine_;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_RNG_H_
