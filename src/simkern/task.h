// Copyright 2026 the pdblb authors. MIT license.
//
// Coroutine task type for the discrete-event simulation kernel.
//
// A `Task<T>` is a lazily-started coroutine.  Simulation processes are
// written as ordinary C++20 coroutines that `co_await` kernel awaitables
// (delays, resource acquisitions, channel receives) and other tasks:
//
//   Task<> QueryExecution(Scheduler& sched, ...) {
//     co_await sched.Delay(1.25);            // 25k instructions of BOT work
//     co_await disk.Read(page);              // FCFS disk queue
//     co_await SubOperation(...);            // nested task, runs inline
//   }
//
// Ownership rules:
//  * Awaiting a task (`co_await std::move(t)` or awaiting a temporary) keeps
//    the frame alive until completion; the Task destructor destroys it.
//  * `Scheduler::Spawn` detaches a task: the frame self-destroys at
//    completion.  Detached tasks must not be awaited.

#ifndef PDBLB_SIMKERN_TASK_H_
#define PDBLB_SIMKERN_TASK_H_

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

namespace pdblb::sim {

template <typename T>
class Task;

namespace internal {

/// Size-bucketed free list recycling coroutine frames.  Simulations spawn
/// one short-lived coroutine per query/sub-operation, millions per run, in
/// a small set of frame sizes — so after warm-up every frame allocation is
/// a free-list pop instead of a malloc.  Frames above kMaxBytes (or odd
/// sizes) fall through to the global allocator.  Thread-local so parallel
/// sweep workers never contend; long-lived worker threads should call
/// TrimThreadCache() between simulations (the runner does) so a
/// heterogeneous grid doesn't pin every point's peak frame footprint until
/// thread exit.
class FrameArena {
 public:
  static void* Allocate(size_t size) {
    size_t cls = SizeClass(size);
    if (cls >= kNumClasses) return ::operator new(size);
    void*& head = Buckets()[cls];
    if (head != nullptr) {
      void* frame = head;
      head = *static_cast<void**>(frame);
      return frame;
    }
    return ::operator new((cls + 1) * kGranuleBytes);
  }

  static void Deallocate(void* frame, size_t size) {
    size_t cls = SizeClass(size);
    if (cls >= kNumClasses) {
      ::operator delete(frame);
      return;
    }
    void*& head = Buckets()[cls];
    *static_cast<void**>(frame) = head;
    head = frame;
  }

  /// Returns every recycled frame on this thread's free lists to the global
  /// allocator.  Only frames currently on the free lists are touched; live
  /// coroutine frames are unaffected, and the arena refills lazily on the
  /// next simulation.  Call between independent simulations on long-lived
  /// worker threads.
  static void TrimThreadCache() {
    void** buckets = Buckets();
    for (size_t cls = 0; cls < kNumClasses; ++cls) {
      void* head = buckets[cls];
      while (head != nullptr) {
        void* next = *static_cast<void**>(head);
        ::operator delete(head);
        head = next;
      }
      buckets[cls] = nullptr;
    }
  }

 private:
  static constexpr size_t kGranuleBytes = 64;
  static constexpr size_t kMaxBytes = 4096;
  static constexpr size_t kNumClasses = kMaxBytes / kGranuleBytes;

  static size_t SizeClass(size_t size) {
    return (size + kGranuleBytes - 1) / kGranuleBytes - 1;
  }
  static void** Buckets() {
    static thread_local void* buckets[kNumClasses] = {};
    return buckets;
  }
};

struct PromiseBase;

/// Registry of detached (Spawn'ed) coroutine frames still in flight, owned
/// by the Scheduler.  A detached frame self-destroys on completion; before
/// this registry existed, frames still *suspended* when the scheduler was
/// torn down (queries parked in admission/lock queues when a measurement
/// window ends) were unreachable and intentionally leaked.  Now every
/// detached root registers here at Spawn time and unregisters from
/// ~PromiseBase — which fires both on normal self-destruction and on
/// DestroyAll() — so `~Scheduler` can destroy every suspended process
/// instead of stranding it.  Only detached *roots* register: frames a
/// parent awaits are owned (and destroyed) through the parent's Task
/// locals, recursively.
class DetachedRegistry {
 public:
  ~DetachedRegistry() { assert(frames_.empty() && "call DestroyAll() first"); }

  inline void Register(std::coroutine_handle<> handle, PromiseBase* promise,
                       uint64_t id);

  void Unregister(uint32_t index) {
    frames_[index] = frames_.back();
    if (index < frames_.size() - 1) Reindex(frames_[index], index);
    frames_.pop_back();
  }

  /// Looks up a still-in-flight frame by its spawn id (Scheduler::Cancel).
  /// Ids are never reused, so a finished frame's id simply misses.  Linear
  /// scan: cancellation is rare and the registry holds only in-flight
  /// roots, so an index structure would cost the hot Spawn path more than
  /// it could ever save here.
  std::coroutine_handle<> FindById(uint64_t id) const {
    for (const Entry& e : frames_) {
      if (e.id == id) return e.handle;
    }
    return nullptr;
  }

  /// Destroys every registered frame (most recently spawned first).  Each
  /// destruction runs the frame's local destructors — which may destroy
  /// owned (non-detached) child frames, but never another *registered*
  /// frame: detaching releases ownership, so no local can own one — and
  /// unregisters itself via ~PromiseBase, keeping the loop O(n).
  void DestroyAll() {
    while (!frames_.empty()) frames_.back().handle.destroy();
  }

  /// Detached frames currently in flight (diagnostics/tests).
  size_t size() const { return frames_.size(); }

 private:
  struct Entry {
    std::coroutine_handle<> handle;
    PromiseBase* promise;
    uint64_t id;
  };
  inline static void Reindex(const Entry& entry, uint32_t index);

  std::vector<Entry> frames_;
};

/// Promise behaviour shared by Task<T> and Task<void>.
struct PromiseBase {
  void* operator new(size_t size) { return FrameArena::Allocate(size); }
  void operator delete(void* frame, size_t size) {
    FrameArena::Deallocate(frame, size);
  }

  ~PromiseBase() {
    if (registry != nullptr) registry->Unregister(registry_index);
  }

  std::coroutine_handle<> continuation;
  std::exception_ptr exception;
  DetachedRegistry* registry = nullptr;
  uint32_t registry_index = 0;
  bool detached = false;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      std::coroutine_handle<> next =
          p.continuation ? p.continuation : std::noop_coroutine();
      if (p.detached) {
        // Detached frames own themselves; nobody will destroy them later.
        h.destroy();
      }
      return next;
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

inline void DetachedRegistry::Register(std::coroutine_handle<> handle,
                                       PromiseBase* promise, uint64_t id) {
  assert(promise->detached && "only detached frames register");
  promise->registry = this;
  promise->registry_index = static_cast<uint32_t>(frames_.size());
  frames_.push_back(Entry{handle, promise, id});
}

inline void DetachedRegistry::Reindex(const Entry& entry, uint32_t index) {
  entry.promise->registry_index = index;
}

}  // namespace internal

/// Releases the calling thread's recycled coroutine-frame free lists back
/// to the global allocator (see FrameArena::TrimThreadCache).  Sweep
/// workers call this after each completed simulation point.
inline void TrimFrameArenaThreadCache() {
  internal::FrameArena::TrimThreadCache();
}

/// A lazily-started simulation coroutine returning T.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool valid() const { return static_cast<bool>(handle_); }

  /// Releases ownership of the frame and marks it self-destroying.
  /// Used by Scheduler::Spawn.
  Handle Detach() {
    assert(handle_);
    handle_.promise().detached = true;
    return std::exchange(handle_, {});
  }

  // --- awaitable interface ------------------------------------------------
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
    assert(handle_ && !handle_.promise().detached);
    handle_.promise().continuation = awaiting;
    return handle_;  // symmetric transfer: start the child immediately
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    assert(p.value.has_value());
    return std::move(*p.value);
  }

 private:
  Handle handle_;
};

/// Specialization for void-returning simulation processes.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool valid() const { return static_cast<bool>(handle_); }

  Handle Detach() {
    assert(handle_);
    handle_.promise().detached = true;
    return std::exchange(handle_, {});
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
    assert(handle_ && !handle_.promise().detached);
    handle_.promise().continuation = awaiting;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
  }

 private:
  Handle handle_;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_TASK_H_
