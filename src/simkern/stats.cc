// Copyright 2026 the pdblb authors. MIT license.

#include "simkern/stats.h"

#include <algorithm>
#include <cmath>

namespace pdblb::sim {

void SampleStat::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void SampleStat::Reset() { *this = SampleStat(); }

double SampleStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SampleStat::stddev() const { return std::sqrt(variance()); }

void TimeWeightedStat::Set(double value, SimTime now) {
  integral_ += value_ * (now - last_update_);
  value_ = value;
  last_update_ = now;
}

double TimeWeightedStat::TimeAverage(SimTime now) const {
  double window = now - window_start_;
  if (window <= 0.0) return value_;
  double integral = integral_ + value_ * (now - last_update_);
  return integral / window;
}

void TimeWeightedStat::ResetWindow(SimTime now) {
  integral_ = 0.0;
  last_update_ = now;
  window_start_ = now;
}

}  // namespace pdblb::sim
