// Copyright 2026 the pdblb authors. MIT license.

#include "simkern/rng.h"

#include <cassert>

namespace pdblb::sim {

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  assert(k >= 0 && k <= n);
  // Partial Fisher-Yates over an index vector; O(n) setup, O(k) draws.
  std::vector<int> indices(n);
  for (int i = 0; i < n; ++i) indices[i] = i;
  std::vector<int> out;
  out.reserve(k);
  for (int i = 0; i < k; ++i) {
    int j = static_cast<int>(UniformInt(i, n - 1));
    std::swap(indices[i], indices[j]);
    out.push_back(indices[i]);
  }
  return out;
}

}  // namespace pdblb::sim
