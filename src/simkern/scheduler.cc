// Copyright 2026 the pdblb authors. MIT license.

#include "simkern/scheduler.h"

#include <algorithm>
#include <limits>

#include "simkern/latch.h"

namespace pdblb::sim {

Scheduler::~Scheduler() {
  // Destroy every detached process still suspended (parked in a resource /
  // lock / admission queue, or waiting on a calendar event): the registry
  // holds exactly the Spawn'ed roots, and destroying a root destroys its
  // owned children recursively through the frames' Task locals.  This must
  // happen first — frame locals' destructors may own callback-free state
  // but never calendar entries, while calendar callbacks may reference
  // frame state (so they are destroyed, not run, afterwards).  Stale
  // coroutine handles left in the calendar by destroyed frames are never
  // dispatched.  tearing_down_ tells cancellation-aware awaiter/guard
  // destructors to no-op: the resources and queues they would clean up may
  // already be gone (Cluster destroys its members before the scheduler),
  // and nothing here will run again anyway.
  tearing_down_ = true;
  detached_.DestroyAll();
  // Destroy (without running) any callbacks still sitting in the calendar.
  // Tombstones carry payload 0 (low bit 0) and fall through the callback
  // test like any coroutine entry.
  for (const Event& e : heap_) DestroyPendingCallback(e);
  for (size_t i = 0; i < ring_size_; ++i) {
    DestroyPendingCallback(ring_[(ring_head_ + i) & (ring_.size() - 1)]);
  }
}

bool Scheduler::CancelHandle(std::coroutine_handle<> h) {
  assert(h);
  const uint64_t bits = reinterpret_cast<uint64_t>(h.address());
  // A suspended frame has at most one pending entry across the three
  // structures, so stop at the first hit.  Calendar first: timer-style
  // waits (Delay) dominate the cancellation paths.
  for (Event& e : heap_) {
    if (e.h == bits) {
      e.h = kCancelledEvent;
      return true;
    }
  }
  for (size_t i = 0; i < ring_size_; ++i) {
    Event& e = ring_[(ring_head_ + i) & (ring_.size() - 1)];
    if (e.h == bits) {
      e.h = kCancelledEvent;
      return true;
    }
  }
  for (size_t i = 0; i < handoffs_.size(); ++i) {
    if (handoffs_[i] == h) {
      handoffs_[i] = nullptr;
      return true;
    }
  }
  return false;
}

void Scheduler::DestroyPendingCallback(const Event& event) {
  if ((event.h & 1u) == 0) return;
  CallbackCell& cell = CellAt(static_cast<uint32_t>(event.h >> 1));
  cell.op(cell.storage, /*invoke=*/false);
}

void Scheduler::GrowCellSlab() {
  uint32_t base = static_cast<uint32_t>(cell_chunks_.size() * kCellsPerChunk);
  cell_chunks_.push_back(std::make_unique<CallbackCell[]>(kCellsPerChunk));
  // Reserve for every cell ever handed out: all of them can be in flight
  // simultaneously, and their completions push back onto this free list.
  free_cells_.reserve(cell_chunks_.size() * kCellsPerChunk);
  // Hand out low indices first (cosmetic: keeps early cells hot in cache).
  for (uint32_t i = 0; i < kCellsPerChunk; ++i) {
    free_cells_.push_back(base + (kCellsPerChunk - 1 - i));
  }
}

void Scheduler::RunCallbackCell(uint32_t idx) {
  // Chunk storage is stable, so the reference survives callbacks that
  // schedule further callbacks (which may grow the slab).  The cell is
  // recycled only after the callable ran and destroyed itself; a nested
  // ScheduleCallback can therefore never clobber the executing cell.  The
  // guard recycles the cell even when the callback throws (push_back onto
  // reserved capacity cannot throw).
  CallbackCell& cell = CellAt(idx);
  struct Guard {
    Scheduler* sched;
    uint32_t idx;
    ~Guard() { sched->free_cells_.push_back(idx); }
  } guard{this, idx};
  cell.op(cell.storage, /*invoke=*/true);
}

void Scheduler::SiftUp(size_t i) {
  Event e = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) >> 1;
    if (!Precedes(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

Scheduler::Event Scheduler::HeapPop() {
  Event top = heap_[0];
  const size_t n = heap_.size() - 1;
  Event last = heap_[n];
  heap_.pop_back();
  if (n > 0) {
    // Bottom-up deletion: walk the hole from the root to a leaf, always
    // promoting the smaller child (branchless select), then bubble the
    // former last leaf up from there.  This removes the unpredictable
    // early-exit test against the relocated leaf at every level — the
    // classic __adjust_heap trick, applied to trivially-copyable 24-byte
    // events.  (4-ary layouts, with and without branchless tournaments,
    // measured slower on bench_simkern; see the simkern README.)
    size_t hole = 0;
    size_t child = 1;
    while (child < n) {
      // The walk is a serial chain of data-dependent loads; pulling the
      // grandchildren's cache lines in early hides most of that latency.
      size_t grandchild = 4 * child + 3;
      if (grandchild + 4 < n) {
        const Event* base = heap_.data();
        __builtin_prefetch(base + grandchild);
        __builtin_prefetch(base + grandchild + 4);
      }
      child += static_cast<size_t>(child + 1 < n &&
                                   Precedes(heap_[child + 1], heap_[child]));
      heap_[hole] = heap_[child];
      hole = child;
      child = 2 * hole + 1;
    }
    while (hole > 0) {
      size_t parent = (hole - 1) >> 1;
      if (!Precedes(last, heap_[parent])) break;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = last;
  }
  return top;
}

void Scheduler::RingPush(const Event& e) {
  if (ring_size_ == ring_.size()) RingGrow();
  ring_[(ring_head_ + ring_size_) & (ring_.size() - 1)] = e;
  ++ring_size_;
}

void Scheduler::RingGrow() {
  size_t cap = ring_.empty() ? 64 : ring_.size() * 2;
  std::vector<Event> grown(cap);
  for (size_t i = 0; i < ring_size_; ++i) {
    grown[i] = ring_[(ring_head_ + i) & (ring_.size() - 1)];
  }
  ring_ = std::move(grown);
  ring_head_ = 0;
}

void Scheduler::Reserve(size_t events, size_t callbacks) {
  heap_.reserve(events);
  while (ring_.size() < events) RingGrow();
  while (cell_chunks_.size() * kCellsPerChunk < callbacks) GrowCellSlab();
}

bool Scheduler::PopNextBefore(Event* out, SimTime bound) {
  // Strict twin of PopNext (at < bound instead of at <= until), used only
  // by the sharded window loops — the RunUntil hot path stays untouched.
  if (ring_size_ > 0) {
    const Event& front = ring_[ring_head_];
    if (heap_.empty() || !Precedes(heap_[0], front)) {
      if (!(front.at < bound)) return false;
      *out = RingPop();
      return true;
    }
  }
  if (heap_.empty() || !(heap_[0].at < bound)) return false;
  *out = HeapPop();
  return true;
}

bool Scheduler::PopNext(Event* out, SimTime until) {
  // The ring holds events at exactly Now(); heap entries at the same time
  // can only be older (smaller seq) arrivals, so one comparison restores
  // global FIFO order across the two structures.
  if (ring_size_ > 0) {
    const Event& front = ring_[ring_head_];
    if (heap_.empty() || !Precedes(heap_[0], front)) {
      if (front.at > until) return false;
      *out = RingPop();
      return true;
    }
  }
  if (heap_.empty() || heap_[0].at > until) return false;
  *out = HeapPop();
  return true;
}

void Scheduler::Dispatch(const Event& event) {
  // Cancelled (tombstoned) events are dropped: no resume, no count, and
  // Now() does not advance — as if the event had never been scheduled.
  if (event.h == kCancelledEvent) return;
  now_ = event.at;
  ++events_processed_;
  if ((event.h & 1u) == 0) {
    std::coroutine_handle<>::from_address(reinterpret_cast<void*>(event.h))
        .resume();
  } else {
    RunCallbackCell(static_cast<uint32_t>(event.h >> 1));
  }
}

#if PDBLB_TRACE
void Scheduler::RunTraced(SimTime until) {
  Event event;
  while (true) {
    if (!handoffs_.empty()) {
      std::coroutine_handle<> h = handoffs_.front();
      handoffs_.pop_front();
      if (!h) continue;  // cancelled hand-off entry
      ++inline_resumes_;
      // Lane resumes record statically as kChannel (see HandOff()).
      tracer_->Record(now_, TraceEventKind::kHandOff,
                      TraceTag(TraceSubsystem::kChannel).bits,
                      inline_resumes_);
      h.resume();
      continue;
    }
    if (!PopNext(&event, until)) break;
    if (event.h == kCancelledEvent) continue;  // no dispatch, no record
    now_ = event.at;
    ++events_processed_;
    // The record's seq is the event's schedule-time sequence number (the
    // high bits of the packed word); the tag and the ring/calendar source
    // bit ride in the low bits (see PushEvent).
    tracer_->Record(event.at,
                    (event.seq & kTraceRingBit) ? TraceEventKind::kZeroDelay
                                                : TraceEventKind::kCalendar,
                    static_cast<uint16_t>(event.seq),
                    event.seq >> kTraceTagShift);
    if ((event.h & 1u) == 0) {
      std::coroutine_handle<>::from_address(reinterpret_cast<void*>(event.h))
          .resume();
    } else {
      RunCallbackCell(static_cast<uint32_t>(event.h >> 1));
    }
  }
}
#endif

void Scheduler::Run() {
  constexpr SimTime kForever = std::numeric_limits<SimTime>::infinity();
#if PDBLB_TRACE
  if (tracer_ != nullptr) {
    RunTraced(kForever);
    return;
  }
#endif
  Event event;
  while (true) {
    // The hand-off lane drains before the calendar: its entries are ready
    // continuations at the current timestamp (see HandOff()).
    if (!handoffs_.empty()) {
      ResumeHandOff();
      continue;
    }
    if (!PopNext(&event, kForever)) break;
    Dispatch(event);
  }
}

void Scheduler::RunBefore(SimTime bound) {
#if PDBLB_TRACE
  if (tracer_ != nullptr) {
    RunTracedBefore(bound);
    return;
  }
#endif
  Event event;
  while (true) {
    if (!handoffs_.empty()) {
      ResumeHandOff();
      continue;
    }
    if (!PopNextBefore(&event, bound)) break;
    Dispatch(event);
  }
  // Now() deliberately stays at the last dispatched timestamp: an event (or
  // injected message) may still arrive anywhere in [Now(), bound).
}

#if PDBLB_TRACE
void Scheduler::RunTracedBefore(SimTime bound) {
  Event event;
  while (true) {
    if (!handoffs_.empty()) {
      std::coroutine_handle<> h = handoffs_.front();
      handoffs_.pop_front();
      if (!h) continue;  // cancelled hand-off entry
      ++inline_resumes_;
      tracer_->Record(now_, TraceEventKind::kHandOff,
                      TraceTag(TraceSubsystem::kChannel).bits,
                      inline_resumes_);
      h.resume();
      continue;
    }
    if (!PopNextBefore(&event, bound)) break;
    if (event.h == kCancelledEvent) continue;  // no dispatch, no record
    now_ = event.at;
    ++events_processed_;
    tracer_->Record(event.at,
                    (event.seq & kTraceRingBit) ? TraceEventKind::kZeroDelay
                                                : TraceEventKind::kCalendar,
                    static_cast<uint16_t>(event.seq),
                    event.seq >> kTraceTagShift);
    if ((event.h & 1u) == 0) {
      std::coroutine_handle<>::from_address(reinterpret_cast<void*>(event.h))
          .resume();
    } else {
      RunCallbackCell(static_cast<uint32_t>(event.h >> 1));
    }
  }
}
#endif

void Scheduler::RunUntil(SimTime until) {
#if PDBLB_TRACE
  if (tracer_ != nullptr) {
    RunTraced(until);
    if (now_ < until) now_ = until;
    return;
  }
#endif
  Event event;
  while (true) {
    if (!handoffs_.empty()) {
      ResumeHandOff();
      continue;
    }
    if (!PopNext(&event, until)) break;
    Dispatch(event);
  }
  if (now_ < until) now_ = until;
}

namespace {
Task<> RunAndCountDown(Task<> task, Latch* latch) {
  co_await std::move(task);
  latch->CountDown();
}
}  // namespace

Task<> WhenAll(Scheduler& sched, std::vector<Task<>> tasks) {
  Latch latch(sched, static_cast<int>(tasks.size()));
  std::vector<uint64_t> ids;
  ids.reserve(tasks.size());
  // If this frame is destroyed mid-wait (cancellation cascade), the spawned
  // members would outlive the latch they count down — cancel them first.
  // Disarmed on the normal path, where completion already retired the ids.
  struct MemberGuard {
    Scheduler* sched;
    std::vector<uint64_t>* ids;
    bool armed = true;
    ~MemberGuard() {
      if (!armed) return;
      for (uint64_t id : *ids) sched->Cancel(id);
    }
  };
  MemberGuard guard{&sched, &ids};
  for (auto& t : tasks) {
    ids.push_back(sched.SpawnWithId(RunAndCountDown(std::move(t), &latch)));
  }
  tasks.clear();
  co_await latch.Wait();
  guard.armed = false;
}

}  // namespace pdblb::sim
