// Copyright 2026 the pdblb authors. MIT license.

#include "simkern/scheduler.h"

#include "simkern/latch.h"

namespace pdblb::sim {

void Scheduler::ScheduleHandle(SimTime at, std::coroutine_handle<> handle) {
  assert(at >= now_);
  queue_.push(Event{at, next_seq_++, handle, nullptr});
}

void Scheduler::ScheduleCallback(SimTime at, std::function<void()> fn) {
  assert(at >= now_);
  queue_.push(Event{at, next_seq_++, nullptr, std::move(fn)});
}

void Scheduler::Spawn(Task<> task) {
  auto handle = task.Detach();
  ScheduleHandle(now_, handle);
}

void Scheduler::Dispatch(Event& event) {
  now_ = event.at;
  ++events_processed_;
  if (event.handle) {
    event.handle.resume();
  } else if (event.callback) {
    event.callback();
  }
}

void Scheduler::Run() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    Dispatch(event);
  }
}

void Scheduler::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    Event event = queue_.top();
    queue_.pop();
    Dispatch(event);
  }
  if (now_ < until) now_ = until;
}

namespace {
Task<> RunAndCountDown(Task<> task, Latch* latch) {
  co_await std::move(task);
  latch->CountDown();
}
}  // namespace

Task<> WhenAll(Scheduler& sched, std::vector<Task<>> tasks) {
  Latch latch(sched, static_cast<int>(tasks.size()));
  for (auto& t : tasks) {
    sched.Spawn(RunAndCountDown(std::move(t), &latch));
  }
  tasks.clear();
  co_await latch.Wait();
}

}  // namespace pdblb::sim
