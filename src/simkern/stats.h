// Copyright 2026 the pdblb authors. MIT license.
//
// Statistics accumulators used for all simulation outputs: event-based
// samples (response times), time-weighted values (queue lengths, memory
// occupancy) and simple counters.

#ifndef PDBLB_SIMKERN_STATS_H_
#define PDBLB_SIMKERN_STATS_H_

#include <cstdint>
#include <limits>

#include "common/units.h"

namespace pdblb::sim {

/// Streaming mean/variance/min/max over samples (Welford's algorithm).
class SampleStat {
 public:
  void Add(double x);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant value, e.g. the number of
/// occupied buffer frames.  Call Set() whenever the value changes.
class TimeWeightedStat {
 public:
  explicit TimeWeightedStat(double initial = 0.0) : value_(initial) {}

  /// Records a new value effective at time `now`.
  void Set(double value, SimTime now);

  /// Current (instantaneous) value.
  double value() const { return value_; }

  /// Time average over [window start, now].
  double TimeAverage(SimTime now) const;

  /// Restarts the averaging window at `now`, keeping the current value.
  void ResetWindow(SimTime now);

 private:
  double value_;
  double integral_ = 0.0;
  SimTime last_update_ = 0.0;
  SimTime window_start_ = 0.0;
};

/// Monotonic counter with window support (throughput measurements).
class WindowedCounter {
 public:
  void Add(int64_t delta = 1) { total_ += delta; }
  void ResetWindow() { window_base_ = total_; }

  int64_t total() const { return total_; }
  int64_t InWindow() const { return total_ - window_base_; }

 private:
  int64_t total_ = 0;
  int64_t window_base_ = 0;
};

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_STATS_H_
