// Copyright 2026 the pdblb authors. MIT license.
//
// The discrete-event scheduler: a calendar of timestamped events, each of
// which resumes a suspended coroutine or invokes a callback.  Events with
// equal timestamps are processed in FIFO insertion order (stable via a
// sequence number), which makes every simulation run fully deterministic.

#ifndef PDBLB_SIMKERN_SCHEDULER_H_
#define PDBLB_SIMKERN_SCHEDULER_H_

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"
#include "simkern/task.h"

namespace pdblb::sim {

/// Single-threaded discrete-event scheduler.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time in milliseconds.
  SimTime Now() const { return now_; }

  /// Schedules `handle` to be resumed at absolute time `at` (>= Now()).
  void ScheduleHandle(SimTime at, std::coroutine_handle<> handle);

  /// Schedules `fn` to run at absolute time `at` (>= Now()).
  void ScheduleCallback(SimTime at, std::function<void()> fn);

  /// Starts a detached simulation process at the current time.  The frame
  /// self-destroys on completion.
  void Spawn(Task<> task);

  /// Awaitable that suspends the current process for `delta` milliseconds.
  /// A zero delay still yields through the event queue (FIFO fairness).
  auto Delay(SimTime delta) {
    struct Awaiter {
      Scheduler* sched;
      SimTime at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sched->ScheduleHandle(at, h);
      }
      void await_resume() const noexcept {}
    };
    assert(delta >= 0.0);
    return Awaiter{this, now_ + delta};
  }

  /// Runs until the event calendar is empty.
  void Run();

  /// Runs all events with timestamp <= `until`, then advances Now() to
  /// `until`.  Later events remain queued.
  void RunUntil(SimTime until);

  /// Signals cooperative shutdown: long-running generator processes are
  /// expected to poll ShuttingDown() after each wait and terminate.
  void RequestShutdown() { shutting_down_ = true; }
  bool ShuttingDown() const { return shutting_down_; }

  /// Number of events processed since construction (diagnostics).
  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::coroutine_handle<> handle;     // either handle ...
    std::function<void()> callback;     // ... or callback is set
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;  // min-heap on time
      return a.seq > b.seq;                  // FIFO for equal times
    }
  };

  void Dispatch(Event& event);

  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  bool shutting_down_ = false;
};

/// Awaits all tasks in `tasks` concurrently; completes when the last one
/// finishes.  Tasks are started in order at the current simulation time.
Task<> WhenAll(Scheduler& sched, std::vector<Task<>> tasks);

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_SCHEDULER_H_
