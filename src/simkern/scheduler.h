// Copyright 2026 the pdblb authors. MIT license.
//
// The discrete-event scheduler: a calendar of timestamped events, each of
// which resumes a suspended coroutine or invokes a callback.  Events with
// equal timestamps are processed in FIFO insertion order (stable via a
// sequence number), which makes every simulation run fully deterministic.
//
// Hot-path design (see src/simkern/README.md for the full story):
//  * An event is a 24-byte POD {at, seq, handle_bits}.  Callbacks are not
//    stored in the calendar; they live in a side slab of fixed-size cells
//    and the event carries a tagged cell index (low bit 1).  Coroutine
//    handles are stored as their address (low bit 0 — frames are aligned).
//  * The calendar is a compact index-based binary min-heap over those PODs
//    with bottom-up deletion and branchless child selection: no per-node
//    allocation, trivially-copyable sifts, `Reserve()` for pre-sizing.
//    (A bucketed calendar queue was prototyped and benchmarked; it lost to
//    the compact heap on every scenario of bench_simkern — see the simkern
//    README for the numbers.)
//  * Events scheduled at exactly the current time (zero delays, latch and
//    channel wake-ups) bypass the heap through a FIFO ring buffer; the
//    dispatch loop merges ring and heap by sequence number, so same-time
//    FIFO semantics are preserved while the common wake-up costs O(1).
//  * Callback cells are recycled through a free list and store small
//    callables inline (small-buffer optimization), and coroutine frames
//    are recycled through a size-bucketed arena (task.h), so steady-state
//    dispatch performs no heap allocations per event.
//  * Optional event tracing (trace_ring.h / tracer.h): every schedule call
//    carries a 16-bit TraceTag packed into the low bits of the event's
//    sequence word (ordering is decided by the high 47 bits, so FIFO
//    semantics are untouched).  Run/RunUntil check for an attached Tracer
//    once per call and select either the untraced drain loop — identical
//    to the pre-tracing kernel — or a traced twin that writes one 16-byte
//    record per event into a pre-allocated ring; with PDBLB_TRACE=0 the
//    hooks do not exist at all.

#ifndef PDBLB_SIMKERN_SCHEDULER_H_
#define PDBLB_SIMKERN_SCHEDULER_H_

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.h"
#include "simkern/ring.h"
#include "simkern/task.h"
#include "simkern/trace_ring.h"
#include "simkern/tracer.h"

namespace pdblb::sim {

/// Single-threaded discrete-event scheduler.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  /// Current simulated time in milliseconds.
  SimTime Now() const { return now_; }

  /// Schedules `handle` to be resumed at absolute time `at` (>= Now()).
  /// `tag` attributes the eventual dispatch to a subsystem for tracing
  /// (default: kKernel); it never affects scheduling semantics.
  void ScheduleHandle(SimTime at, std::coroutine_handle<> handle,
                      TraceTag tag = {}) {
    assert(handle);
    PushEvent(at, reinterpret_cast<uint64_t>(handle.address()), tag);
  }

  /// Schedules `fn` to run at absolute time `at` (>= Now()).  Callables up
  /// to kInlineCallbackBytes are stored inline in a recycled cell (no heap
  /// allocation); larger ones fall back to the heap.
  template <typename F>
  void ScheduleCallback(SimTime at, F&& fn, TraceTag tag = {}) {
    uint32_t idx = StoreCallback(std::forward<F>(fn));
    PushEvent(at, (static_cast<uint64_t>(idx) << 1) | 1u, tag);
  }

  /// Starts a detached simulation process at the current time.  The frame
  /// self-destroys on completion; frames still suspended at ~Scheduler are
  /// destroyed through the detached-frame registry.
  void Spawn(Task<> task) { (void)SpawnWithId(std::move(task)); }

  /// Spawn variant returning a cancellation token.  Ids are never reused,
  /// so a stale id held after the process finished (or was cancelled) is
  /// harmless: Cancel()/Alive() simply no longer find it.
  uint64_t SpawnWithId(Task<> task) {
    Task<>::Handle h = task.Detach();
    const uint64_t id = next_spawn_id_++;
    detached_.Register(h, &h.promise(), id);
    ScheduleHandle(now_, h);
    return id;
  }

  /// Cancels a detached process mid-run: scrubs its pending calendar/ring/
  /// hand-off entry (no ghost dispatch) and destroys the frame, which
  /// cascades through owned children — cancellation-aware awaiters
  /// (Delay, Resource, Channel, Latch, TaskGroup, lockmgr/bufmgr waits)
  /// remove their own queue entries and release held resources from their
  /// destructors.  Must not be called on the currently-running process.
  /// Returns false (no-op) if `id` already completed or was cancelled.
  /// Allocation-free: the scrub overwrites entries in place.
  bool Cancel(uint64_t id) {
    std::coroutine_handle<> h = detached_.FindById(id);
    if (!h) return false;
    CancelHandle(h);  // the root may be parked in the calendar itself
    h.destroy();
    return true;
  }

  /// True while the detached process spawned as `id` is still in flight.
  bool Alive(uint64_t id) const { return static_cast<bool>(detached_.FindById(id)); }

  /// Removes the pending event that would resume `h`, if any: the matching
  /// calendar/ring entry is tombstoned in place (heap order is untouched —
  /// only the payload word changes) and hand-off lane entries are nulled;
  /// the drain loops skip tombstones without dispatching, counting or
  /// tracing them.  A suspended frame has at most one pending entry, so the
  /// scan stops at the first hit.  Called by cancellation-aware awaiter
  /// destructors; allocates nothing.
  bool CancelHandle(std::coroutine_handle<> h);

  /// True from the start of ~Scheduler: frames destroyed during teardown
  /// must not touch resources or queues (Cluster members that own them are
  /// already gone) — cancellation-aware destructors check this and no-op,
  /// preserving the pre-cancellation teardown contract (stale handles left
  /// in the calendar are never dispatched).
  bool tearing_down() const { return tearing_down_; }

  /// Inline-resume entry point for blocking-primitive hand-offs (a channel
  /// value handed to a blocked consumer).  The handle is placed on the
  /// hand-off lane: a FIFO of ready continuations that the dispatch loop
  /// resumes at the current timestamp *ahead of* calendar events, paying no
  /// calendar event, no sequence number and no heap/ring traffic.  Unlike
  /// resuming `h` synchronously inside the caller, the lane drains only
  /// after the current continuation suspends — so a producer emitting a
  /// burst of values keeps running and the woken consumer still drains the
  /// whole burst in one resumption.  Hand-offs are FIFO among themselves
  /// and the primitive's own waiter queue fixes who is woken, so same-time
  /// FIFO ordering among the waiters is preserved; primitives where
  /// *calendar* FIFO position is the contract (Delay(0) yields, latch
  /// fan-out broadcasts) must keep scheduling through the calendar.
  /// Dispatch stays fully deterministic: hand-offs occur at fixed points of
  /// the event sequence.
  /// The `tag` parameter is accepted for call-site symmetry but the lane
  /// records statically as kChannel: channels are the lane's only client
  /// (see the contract above), and a per-entry tag would either widen the
  /// 8-byte entry or cost a branch per Send — measurable on the 5 ns/op
  /// channel shapes.  A future non-channel client that needs attribution
  /// should reintroduce a parallel tag ring gated on the tracer.
  void HandOff(std::coroutine_handle<> h, TraceTag tag = {}) {
    assert(h);
    (void)tag;
    handoffs_.push_back(h);
  }

  /// Awaitable that suspends the current process for `delta` milliseconds.
  /// A zero delay still yields through the event queue (FIFO fairness).
  /// Attributed to kKernel; this overload carries no tag on the awaiter,
  /// so the default-tag constant folds through the inlined push and the
  /// hot zero-delay path pays nothing for tracing support.
  auto Delay(SimTime delta) {
    struct Awaiter {
      Scheduler* sched;
      SimTime at;
      // Set while suspended; lets the destructor scrub the pending calendar
      // entry when the frame is destroyed mid-wait (Scheduler::Cancel).
      std::coroutine_handle<> pending = nullptr;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        pending = h;
        sched->ScheduleHandle(at, h);
      }
      void await_resume() noexcept { pending = nullptr; }
      ~Awaiter() {
        if (pending && !sched->tearing_down()) sched->CancelHandle(pending);
      }
    };
    assert(delta >= 0.0);
    return Awaiter{this, now_ + delta};
  }

  /// Delay attributed to `tag` in event traces (disk transmission, network
  /// wire latency).  The tag rides on the awaiter frame until suspension.
  auto Delay(SimTime delta, TraceTag tag) {
    struct Awaiter {
      Scheduler* sched;
      SimTime at;
      TraceTag tag;
      std::coroutine_handle<> pending = nullptr;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        pending = h;
        sched->ScheduleHandle(at, h, tag);
      }
      void await_resume() noexcept { pending = nullptr; }
      ~Awaiter() {
        if (pending && !sched->tearing_down()) sched->CancelHandle(pending);
      }
    };
    assert(delta >= 0.0);
    return Awaiter{this, now_ + delta, tag};
  }

  // --- message-band events (sharded execution) ---------------------------
  // Cross-entity messages dispatch in a dedicated high band of the sequence
  // space: at equal timestamps every message-band event runs after all
  // local-band events (local seq counters never reach bit 63), and
  // message-band events order among themselves by (origin entity, per-origin
  // ordinal) — a total key that does not depend on how entities are
  // partitioned into shards or on which calendar the event sits in, which is
  // what makes sharded execution shard-count-invariant (see sharded.h).

  static constexpr uint64_t kMessageBand = uint64_t{1} << 63;
  static constexpr unsigned kMessageOriginBits = 12;  // matches TraceTag
  static constexpr unsigned kMessageOriginShift = 63 - kMessageOriginBits;
#if PDBLB_TRACE
  static constexpr unsigned kMessageOrdinalShift = kTraceTagShift;
#else
  static constexpr unsigned kMessageOrdinalShift = 0;
#endif
  static constexpr uint64_t kMaxMessageOrdinal =
      uint64_t{1} << (kMessageOriginShift - kMessageOrdinalShift);

  /// Packs a message-band sequence word.  `origin` is the sending entity id
  /// (< 2^12), `ordinal` the per-origin message counter; in tracing builds
  /// `tag` rides in the low bits exactly like local-band events.
  static constexpr uint64_t MessageSeq(uint16_t origin, uint64_t ordinal,
                                       TraceTag tag = {}) {
    uint64_t seq = kMessageBand |
                   (static_cast<uint64_t>(origin) << kMessageOriginShift) |
                   (ordinal << kMessageOrdinalShift);
#if PDBLB_TRACE
    seq |= tag.bits;
#else
    (void)tag;
#endif
    return seq;
  }

  /// Schedules a message arrival: `fn` runs at `at` (> Now() — message
  /// delivery needs positive lookahead) in the message band under the
  /// pre-packed `message_seq` ordering key.  Used both for same-shard
  /// message sends and for cross-shard mailbox injection at window
  /// barriers; the two paths produce identical dispatch orders because the
  /// key, not the push moment, decides placement.
  template <typename F>
  void ScheduleMessageCallback(SimTime at, uint64_t message_seq, F&& fn) {
    assert(at > now_ && "message arrivals need positive lookahead");
    assert((message_seq & kMessageBand) != 0);
    uint32_t idx = StoreCallback(std::forward<F>(fn));
    heap_.push_back(
        Event{at, message_seq, (static_cast<uint64_t>(idx) << 1) | 1u});
    SiftUp(heap_.size() - 1);
  }

  /// Earliest pending calendar timestamp, +infinity when the calendar is
  /// empty.  Only meaningful between Run* calls (the hand-off lane holds
  /// entries exclusively while a dispatch is running).
  SimTime NextEventTime() const {
    assert(handoffs_.empty());
    SimTime t = std::numeric_limits<SimTime>::infinity();
    if (ring_size_ > 0) t = ring_[ring_head_].at;
    if (!heap_.empty() && heap_[0].at < t) t = heap_[0].at;
    return t;
  }

  /// Runs until the event calendar is empty.
  void Run();

  /// Runs all events with timestamp <= `until`, then advances Now() to
  /// `until`.  Later events remain queued.
  void RunUntil(SimTime until);

  /// Runs all events with timestamp strictly less than `bound`; Now() stays
  /// at the last dispatched timestamp (it does NOT advance to `bound`).
  /// This is the conservative-window primitive of sharded execution: a
  /// shard may not consume events at the window horizon, because a message
  /// arriving exactly there could still be injected at the next barrier.
  void RunBefore(SimTime bound);

  /// Pre-sizes the calendar (and optionally the callback slab) so a run
  /// with at most `events` concurrently pending events allocates nothing.
  void Reserve(size_t events, size_t callbacks = 0);

  /// Signals cooperative shutdown: long-running generator processes are
  /// expected to poll ShuttingDown() after each wait and terminate.
  void RequestShutdown() { shutting_down_ = true; }
  bool ShuttingDown() const { return shutting_down_; }

  /// Attaches (or detaches, with nullptr) an event tracer: every dispatch
  /// and hand-off resume is recorded until detached.  Takes effect at the
  /// next Run/RunUntil call (the drain loop binds to the tracer once per
  /// call, keeping the untraced loop identical to the pre-tracing kernel);
  /// must not be called from inside a running simulation process.  The
  /// tracer must outlive its attachment.  No-op in PDBLB_TRACE=0 builds.
  void AttachTracer(Tracer* tracer) {
#if PDBLB_TRACE
    tracer_ = tracer;
#else
    (void)tracer;
#endif
  }
  Tracer* tracer() const {
#if PDBLB_TRACE
    return tracer_;
#else
    return nullptr;
#endif
  }

  /// Number of events processed since construction (diagnostics).
  uint64_t events_processed() const { return events_processed_; }
  /// Detached (Spawn'ed) processes still in flight.  Frames suspended here
  /// at ~Scheduler are destroyed, not leaked (see task.h DetachedRegistry).
  size_t detached_in_flight() const { return detached_.size(); }
  /// Number of calendar-bypassing hand-off resumes (diagnostics).  Counted
  /// separately from events_processed(): hand-offs are not calendar events.
  uint64_t inline_resumes() const { return inline_resumes_; }
  size_t pending_events() const {
    return heap_.size() + ring_size_ + handoffs_.size();
  }

 private:
  // One calendar entry.  `h` is a tagged word: coroutine handle address
  // (low bit 0) or (callback cell index << 1) | 1.  In tracing builds the
  // low kTraceTagShift bits of `seq` hold the packed TraceTag; the real
  // sequence number occupies the high bits, so Precedes() needs no mask
  // (distinct events always differ in the high bits).
  struct Event {
    SimTime at;
    uint64_t seq;
    uint64_t h;
  };

  // Tombstone payload for cancelled events.  0 can collide with neither a
  // coroutine handle (ScheduleHandle asserts non-null) nor a callback cell
  // (their words carry low bit 1), and its low bit 0 means the teardown
  // callback sweep skips it for free.  Cancelled entries keep their (at,
  // seq) key — overwriting only the payload preserves heap order — and are
  // dropped by the drain loops without dispatch, count or trace record.
  static constexpr uint64_t kCancelledEvent = 0;
  static_assert(sizeof(Event) == 24, "Event must stay a compact POD");
  static_assert(std::is_trivially_copyable_v<Event>);

  // Min on time, FIFO (seq) for equal times.  Written as bitwise logic so
  // the compiler emits setcc/cmov instead of branches: sift comparisons on
  // random timestamps are ~50/50 and would otherwise mispredict.
  static bool Precedes(const Event& a, const Event& b) {
    return (a.at < b.at) | ((a.at == b.at) & (a.seq < b.seq));
  }

  // --- callback cell slab -------------------------------------------------
  // Cells are allocated in fixed chunks (stable addresses, no relocation of
  // live callables) and recycled through a free list.  `op` both invokes
  // (invoke=true) and destroys, or just destroys (invoke=false, used when
  // the scheduler is torn down with events still pending).
  static constexpr size_t kInlineCallbackBytes = 48;
  static constexpr size_t kCellsPerChunk = 64;
  struct CallbackCell {
    void (*op)(void* storage, bool invoke);
    alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
  };

  // Moves `fn` into a recycled cell (inline when it fits, boxed otherwise)
  // and returns the cell index.  Shared by ScheduleCallback and
  // ScheduleMessageCallback.
  template <typename F>
  uint32_t StoreCallback(F&& fn) {
    using Fn = std::decay_t<F>;
    uint32_t idx = AllocCell();
    CallbackCell& cell = CellAt(idx);
    try {
      if constexpr (sizeof(Fn) <= kInlineCallbackBytes &&
                    alignof(Fn) <= alignof(std::max_align_t)) {
        ::new (static_cast<void*>(cell.storage)) Fn(std::forward<F>(fn));
        cell.op = [](void* storage, bool invoke) {
          Fn* f = std::launder(reinterpret_cast<Fn*>(storage));
          // Destroy even if the invocation throws.
          struct Guard {
            Fn* f;
            ~Guard() { f->~Fn(); }
          } guard{f};
          if (invoke) (*f)();
        };
      } else {
        Fn* boxed = new Fn(std::forward<F>(fn));
        std::memcpy(cell.storage, &boxed, sizeof(boxed));
        cell.op = [](void* storage, bool invoke) {
          Fn* f;
          std::memcpy(&f, storage, sizeof(f));
          struct Guard {
            Fn* f;
            ~Guard() { delete f; }
          } guard{f};
          if (invoke) (*f)();
        };
      }
    } catch (...) {
      free_cells_.push_back(idx);  // reserved capacity: cannot throw
      throw;
    }
    return idx;
  }

  CallbackCell& CellAt(uint32_t idx) {
    return cell_chunks_[idx / kCellsPerChunk][idx % kCellsPerChunk];
  }
  uint32_t AllocCell() {
    if (free_cells_.empty()) GrowCellSlab();
    uint32_t idx = free_cells_.back();
    free_cells_.pop_back();
    return idx;
  }
  void GrowCellSlab();

  // --- calendar -----------------------------------------------------------
#if PDBLB_TRACE
  // next_seq_ is kept pre-scaled (stepped by 1 << kTraceTagShift) so a push
  // pays one OR for the tag — no shift — versus the untraced kernel; with
  // the default tag the OR constant-folds away entirely.  The sequence
  // bump stays inside each branch (as in the pre-tracing kernel) so the
  // branch does not wait on the seq data flow.
  void PushEvent(SimTime at, uint64_t h, TraceTag tag) {
    assert(at >= now_);
    constexpr uint64_t kSeqStep = uint64_t{1} << kTraceTagShift;
    if (at == now_) {
      // The ring bit lets the traced dispatch loop label the record's
      // source structure without any side-channel from the pop path.
      uint64_t seq = next_seq_ | tag.bits | kTraceRingBit;
      next_seq_ += kSeqStep;
      RingPush(Event{at, seq, h});
    } else {
      uint64_t seq = next_seq_ | tag.bits;
      next_seq_ += kSeqStep;
      heap_.push_back(Event{at, seq, h});
      SiftUp(heap_.size() - 1);
    }
  }
#else
  void PushEvent(SimTime at, uint64_t h, TraceTag) {
    assert(at >= now_);
    if (at == now_) {
      RingPush(Event{at, next_seq_++, h});
    } else {
      heap_.push_back(Event{at, next_seq_++, h});
      SiftUp(heap_.size() - 1);
    }
  }
#endif

  void SiftUp(size_t i);
  Event HeapPop();

  // FIFO ring for events at exactly Now().  The ring drains (merged with
  // same-time heap entries by seq) before simulated time can advance, so
  // its entries are always at the current timestamp.
  void RingPush(const Event& e);
  void RingGrow();
  Event RingPop() {
    Event e = ring_[ring_head_];
    ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
    --ring_size_;
    return e;
  }

  // Pops the globally next event if its timestamp is <= `until`.
  bool PopNext(Event* out, SimTime until);
  // Strict variant for window execution: pops only events with at < bound.
  bool PopNextBefore(Event* out, SimTime bound);

  void Dispatch(const Event& event);
#if PDBLB_TRACE
  // Traced twin of the Run/RunUntil drain loop.  The tracer check happens
  // once per Run call, not once per event: with no tracer attached the
  // drain loop and Dispatch are instruction-identical to the pre-tracing
  // kernel.  (Consequence: AttachTracer takes effect at the next
  // Run/RunUntil call and must not be called from inside a running
  // simulation process.)
  void RunTraced(SimTime until);
  // Traced twin of RunBefore (strict bound, Now() not advanced).
  void RunTracedBefore(SimTime bound);
#endif
  void RunCallbackCell(uint32_t idx);
  void DestroyPendingCallback(const Event& event);

  // Resumes the oldest hand-off lane entry (see HandOff()).  Entries nulled
  // by CancelHandle are dropped without a resume.
  void ResumeHandOff() {
    std::coroutine_handle<> h = handoffs_.front();
    handoffs_.pop_front();
    if (!h) return;
    ++inline_resumes_;
    h.resume();
  }

  std::vector<Event> heap_;  // implicit binary min-heap
  std::vector<Event> ring_;  // power-of-two capacity FIFO ring
  size_t ring_head_ = 0;
  size_t ring_size_ = 0;
  RingBuffer<std::coroutine_handle<>, 4> handoffs_;  // inline-resume lane

  std::vector<std::unique_ptr<CallbackCell[]>> cell_chunks_;
  std::vector<uint32_t> free_cells_;

  internal::DetachedRegistry detached_;  // in-flight Spawn'ed frames

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_spawn_id_ = 1;
  uint64_t events_processed_ = 0;
  uint64_t inline_resumes_ = 0;
  bool shutting_down_ = false;
  bool tearing_down_ = false;
#if PDBLB_TRACE
  Tracer* tracer_ = nullptr;
#endif
};

/// Awaits all tasks in `tasks` concurrently; completes when the last one
/// finishes.  Tasks are started in order at the current simulation time.
Task<> WhenAll(Scheduler& sched, std::vector<Task<>> tasks);

}  // namespace pdblb::sim

#endif  // PDBLB_SIMKERN_SCHEDULER_H_
