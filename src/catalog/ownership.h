// Copyright 2026 the pdblb authors. MIT license.
//
// Versioned fragment-ownership map for elastic cluster resize.  The
// declustering itself (which PE is the *home* of fragment i, hence which
// global page range it covers) is immutable catalog geometry; what moves
// during a rebalance is the *owner* — the PE whose disks, buffer and lock
// manager currently serve the fragment.  Queries resolve home -> owner at
// execution time, so a fragment migrated mid-run is transparently served by
// its new PE while PageKeys, page counts and lock keys stay keyed by home.
//
// Resize-free determinism: when no migration has ever completed, Owner() is
// the identity and no map lookup happens, so runs without addpe/drainpe
// events execute the exact pre-elastic event sequence.

#ifndef PDBLB_CATALOG_OWNERSHIP_H_
#define PDBLB_CATALOG_OWNERSHIP_H_

#include <cstdint>
#include <map>
#include <utility>

#include "common/units.h"

namespace pdblb {

class OwnershipMap {
 public:
  /// Current owner of the fragment of `relation_id` homed at `home`.
  /// Identity until a migration of that fragment commits.
  PeId Owner(int32_t relation_id, PeId home) const {
    if (moves_.empty()) return home;  // fast path: nothing ever moved
    auto it = moves_.find({relation_id, home});
    return it == moves_.end() ? home : it->second;
  }

  /// Commits an ownership flip (the last migration batch of the fragment
  /// landed).  Bumps the map version; `owner == home` erases the entry so a
  /// fragment migrated back to its home costs nothing again.
  void SetOwner(int32_t relation_id, PeId home, PeId owner) {
    ++version_;
    if (owner == home) {
      moves_.erase({relation_id, home});
    } else {
      moves_[{relation_id, home}] = owner;
    }
  }

  /// True once any fragment has a non-home owner.
  bool Moved() const { return !moves_.empty(); }

  /// Monotone version counter, bumped on every committed flip.  Planners
  /// and tests use it to detect concurrent map changes.
  uint64_t version() const { return version_; }

  /// Number of fragments currently owned away from home.
  size_t MovedCount() const { return moves_.size(); }

  /// Deterministically ordered view of the moved fragments:
  /// (relation_id, home) -> owner, ascending by (relation_id, home).
  const std::map<std::pair<int32_t, PeId>, PeId>& moves() const {
    return moves_;
  }

 private:
  std::map<std::pair<int32_t, PeId>, PeId> moves_;
  uint64_t version_ = 0;
};

}  // namespace pdblb

#endif  // PDBLB_CATALOG_OWNERSHIP_H_
