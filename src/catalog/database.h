// Copyright 2026 the pdblb authors. MIT license.
//
// The Database assembles the paper's schema from a SystemConfig:
//  * relation A  — declustered over the first 20% of PEs ("A nodes"),
//  * relation B  — declustered over the remaining 80% ("B nodes"),
//  * one OLTP-private relation per OLTP node (debit-credit style accounts,
//    affinity-routed so OLTP processing is node-local, paper Section 5.3).

#ifndef PDBLB_CATALOG_DATABASE_H_
#define PDBLB_CATALOG_DATABASE_H_

#include <memory>
#include <vector>

#include "catalog/relation.h"
#include "common/config.h"

namespace pdblb {

/// Well-known relation ids.
inline constexpr int32_t kRelationA = 1;
inline constexpr int32_t kRelationB = 2;
inline constexpr int32_t kRelationC = 3;
/// OLTP relation for node `pe` has id kOltpRelationBase + pe.
inline constexpr int32_t kOltpRelationBase = 100;
/// Temporary partitions (hash-join overflow files) use negative ids.
inline constexpr int32_t kTempRelationBase = -1;

class Database {
 public:
  explicit Database(const SystemConfig& config);

  const Relation& a() const { return *a_; }
  const Relation& b() const { return *b_; }
  /// The multi-way join relation, declustered over all PEs.
  const Relation& c() const { return *c_; }

  /// PEs holding fragments of A (the first 20%) and of B (the rest).
  /// Elastic spares (addpe targets) are excluded from all three sets.
  const std::vector<PeId>& a_nodes() const { return a_nodes_; }
  const std::vector<PeId>& b_nodes() const { return b_nodes_; }
  const std::vector<PeId>& all_nodes() const { return all_nodes_; }

  /// Elastic spare PEs (addpe targets): initially non-members holding no
  /// fragment homes.  Empty without elastic events.
  const std::vector<PeId>& spare_nodes() const { return spare_nodes_; }

  /// Resolves a query class's target relation.
  const Relation& target(TargetRelation t) const;
  const std::vector<PeId>& target_nodes(TargetRelation t) const;

  /// PEs running the OLTP workload (empty when OLTP is disabled).
  const std::vector<PeId>& oltp_nodes() const { return oltp_nodes_; }

  /// The OLTP-private relation homed at `pe`; nullptr if `pe` is not an
  /// OLTP node.
  const Relation* oltp_relation(PeId pe) const;

  int num_pes() const { return num_pes_; }

 private:
  int num_pes_;
  std::unique_ptr<Relation> a_;
  std::unique_ptr<Relation> b_;
  std::unique_ptr<Relation> c_;
  std::vector<PeId> a_nodes_;
  std::vector<PeId> b_nodes_;
  std::vector<PeId> all_nodes_;
  std::vector<PeId> spare_nodes_;
  std::vector<PeId> oltp_nodes_;
  std::vector<std::unique_ptr<Relation>> oltp_relations_;  // index by PE
};

}  // namespace pdblb

#endif  // PDBLB_CATALOG_DATABASE_H_
