// Copyright 2026 the pdblb authors. MIT license.
//
// Database model: relations, horizontal declustering over PEs, page/tuple
// geometry and B+-tree index descriptors (paper Section 4, "Database and
// workload model").  The catalog is pure metadata — the simulator never
// materializes tuple payloads, only counts pages and tuples.

#ifndef PDBLB_CATALOG_RELATION_H_
#define PDBLB_CATALOG_RELATION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/units.h"

namespace pdblb {

/// Identifies a page of a relation (or temp partition) for buffering and
/// disk-cache purposes.
struct PageKey {
  int32_t relation_id = 0;
  int64_t page_no = 0;

  bool operator==(const PageKey&) const = default;
};

struct PageKeyHash {
  size_t operator()(const PageKey& k) const {
    uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(k.relation_id))
                  << 40) ^
                 static_cast<uint64_t>(k.page_no);
    // splitmix64 finalizer for good spread across disks.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

/// A horizontally declustered relation.
class Relation {
 public:
  Relation(int32_t id, RelationConfig config, std::vector<PeId> home_pes,
           int index_fanout = 200);

  int32_t id() const { return id_; }
  const std::string& name() const { return config_.name; }
  const RelationConfig& config() const { return config_; }
  const std::vector<PeId>& home_pes() const { return home_pes_; }

  int64_t num_tuples() const { return config_.num_tuples; }
  int blocking_factor() const { return config_.blocking_factor; }
  IndexType index_type() const { return config_.index; }

  /// Total data pages of the relation.
  int64_t TotalPages() const;

  /// Tuples stored at one home PE (uniform declustering; the last PE absorbs
  /// the remainder).
  int64_t TuplesAt(PeId pe) const;

  /// Data pages of the fragment at one home PE.
  int64_t PagesAt(PeId pe) const;

  /// True if `pe` holds a fragment of this relation.
  bool IsHome(PeId pe) const;

  /// Number of B+-tree levels above the data/leaf level that must be
  /// traversed for a key lookup.  For clustered indices the leaf level *is*
  /// the data page; for unclustered indices the leaf holds (key, RID) pairs.
  int IndexLevels(PeId pe) const;

  /// Leaf pages of an unclustered index fragment at `pe` (0 for clustered /
  /// no index).
  int64_t IndexLeafPages(PeId pe) const;

  /// PageKey of the i-th data page of the fragment at `pe` (pages are
  /// numbered globally; fragment f occupies a contiguous range).
  PageKey DataPage(PeId pe, int64_t i) const;

  /// PageKey of the i-th leaf page of the unclustered index fragment at `pe`.
  PageKey IndexLeafPage(PeId pe, int64_t i) const;

 private:
  int FragmentIndex(PeId pe) const;  // -1 if not home

  int32_t id_;
  RelationConfig config_;
  std::vector<PeId> home_pes_;
  int index_fanout_;
};

}  // namespace pdblb

#endif  // PDBLB_CATALOG_RELATION_H_
