// Copyright 2026 the pdblb authors. MIT license.

#include "catalog/database.h"

#include <cassert>
#include <set>

namespace pdblb {

Database::Database(const SystemConfig& config) : num_pes_(config.num_pes) {
  // Elastic spares — PEs named as addpe targets — are held out of the
  // initial declustering entirely: no relation homes there, no OLTP
  // placement.  They start as non-members and receive fragments only
  // through migration once their addpe event fires.  Without elastic
  // events the set is empty and the geometry is the historical one.
  std::set<PeId> spares;
  for (const FaultEvent& ev : config.faults.events) {
    if (ev.kind == FaultKind::kAddPe) spares.insert(ev.pe);
  }

  int num_a = config.NumANodes();
  for (PeId pe = 0; pe < num_a; ++pe) {
    if (spares.count(pe) == 0) a_nodes_.push_back(pe);
  }
  for (PeId pe = num_a; pe < config.num_pes; ++pe) {
    if (spares.count(pe) == 0) b_nodes_.push_back(pe);
  }
  for (PeId pe = 0; pe < config.num_pes; ++pe) {
    if (spares.count(pe) == 0) all_nodes_.push_back(pe);
  }
  spare_nodes_.assign(spares.begin(), spares.end());

  a_ = std::make_unique<Relation>(kRelationA, config.relation_a, a_nodes_);
  b_ = std::make_unique<Relation>(kRelationB, config.relation_b, b_nodes_);
  c_ = std::make_unique<Relation>(kRelationC, config.relation_c, all_nodes_);

  oltp_relations_.resize(config.num_pes);
  if (config.oltp.enabled) {
    switch (config.oltp.placement) {
      case OltpPlacement::kANodes:
        oltp_nodes_ = a_nodes_;
        break;
      case OltpPlacement::kBNodes:
        oltp_nodes_ = b_nodes_;
        break;
      case OltpPlacement::kAllNodes:
        oltp_nodes_ = all_nodes_;  // members only; spares never host OLTP
        break;
    }
    for (PeId pe : oltp_nodes_) {
      RelationConfig rel;
      rel.name = "OLTP" + std::to_string(pe);
      rel.num_tuples = config.oltp.tuples_per_node;
      rel.tuple_size_bytes = 100;
      rel.blocking_factor = config.oltp.blocking_factor;
      rel.index = IndexType::kUnclusteredBTree;
      oltp_relations_[pe] = std::make_unique<Relation>(
          kOltpRelationBase + pe, rel, std::vector<PeId>{pe});
    }
  }
}

const Relation* Database::oltp_relation(PeId pe) const {
  assert(pe >= 0 && pe < num_pes_);
  return oltp_relations_[pe].get();
}

const Relation& Database::target(TargetRelation t) const {
  switch (t) {
    case TargetRelation::kA:
      return *a_;
    case TargetRelation::kB:
      return *b_;
    case TargetRelation::kC:
      break;
  }
  return *c_;
}

const std::vector<PeId>& Database::target_nodes(TargetRelation t) const {
  switch (t) {
    case TargetRelation::kA:
      return a_nodes_;
    case TargetRelation::kB:
      return b_nodes_;
    case TargetRelation::kC:
      break;
  }
  return all_nodes_;
}

}  // namespace pdblb
