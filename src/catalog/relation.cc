// Copyright 2026 the pdblb authors. MIT license.

#include "catalog/relation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pdblb {

Relation::Relation(int32_t id, RelationConfig config,
                   std::vector<PeId> home_pes, int index_fanout)
    : id_(id), config_(std::move(config)), home_pes_(std::move(home_pes)),
      index_fanout_(index_fanout) {
  assert(!home_pes_.empty());
  assert(index_fanout_ >= 2);
}

int64_t Relation::TotalPages() const {
  return (config_.num_tuples + config_.blocking_factor - 1) /
         config_.blocking_factor;
}

int Relation::FragmentIndex(PeId pe) const {
  auto it = std::find(home_pes_.begin(), home_pes_.end(), pe);
  if (it == home_pes_.end()) return -1;
  return static_cast<int>(it - home_pes_.begin());
}

bool Relation::IsHome(PeId pe) const { return FragmentIndex(pe) >= 0; }

int64_t Relation::TuplesAt(PeId pe) const {
  int idx = FragmentIndex(pe);
  if (idx < 0) return 0;
  int64_t n = static_cast<int64_t>(home_pes_.size());
  int64_t base = config_.num_tuples / n;
  // The last fragment absorbs the remainder.
  if (idx == n - 1) return config_.num_tuples - base * (n - 1);
  return base;
}

int64_t Relation::PagesAt(PeId pe) const {
  int64_t tuples = TuplesAt(pe);
  return (tuples + config_.blocking_factor - 1) / config_.blocking_factor;
}

int Relation::IndexLevels(PeId pe) const {
  if (config_.index == IndexType::kNone) return 0;
  int64_t leaves = config_.index == IndexType::kClusteredBTree
                       ? PagesAt(pe)
                       : IndexLeafPages(pe);
  if (leaves <= 1) return 1;
  // Levels above the leaves: ceil(log_fanout(leaves)).
  int levels = 1;  // at least the root
  int64_t span = index_fanout_;
  while (span < leaves) {
    span *= index_fanout_;
    ++levels;
  }
  return levels;
}

int64_t Relation::IndexLeafPages(PeId pe) const {
  if (config_.index != IndexType::kUnclusteredBTree) return 0;
  int64_t tuples = TuplesAt(pe);
  return (tuples + index_fanout_ - 1) / index_fanout_;
}

PageKey Relation::DataPage(PeId pe, int64_t i) const {
  int idx = FragmentIndex(pe);
  assert(idx >= 0);
  assert(i >= 0 && i < PagesAt(pe));
  // Fragment f starts at f * ceil(total/[#fragments]) — contiguous global
  // numbering is only used as a cache/buffer identity, so a simple fragment
  // stride is sufficient.
  int64_t stride = TotalPages() / static_cast<int64_t>(home_pes_.size()) + 1;
  return PageKey{id_, static_cast<int64_t>(idx) * stride + i};
}

PageKey Relation::IndexLeafPage(PeId pe, int64_t i) const {
  int idx = FragmentIndex(pe);
  assert(idx >= 0);
  // Index leaves live in a shifted page-number space above the data pages.
  int64_t stride = TotalPages() / static_cast<int64_t>(home_pes_.size()) + 1;
  int64_t index_base = (static_cast<int64_t>(home_pes_.size()) + 1) * stride;
  return PageKey{id_, index_base + static_cast<int64_t>(idx) * stride + i};
}

}  // namespace pdblb
