// Copyright 2026 the pdblb authors. MIT license.
//
// Disk subsystem of one PE (paper Section 4): an array of FCFS disk servers
// behind a controller with an LRU disk cache and a prefetching mechanism for
// sequential access patterns, plus a dedicated log disk.
//
// Timing model (paper parameter table):
//  * physical access: 15 ms base + 1 ms per (pre)fetched page
//  * controller service: 1 ms per page
//  * transmission: 0.4 ms per page
//  * a sequential cache miss prefetches `prefetch_pages` pages into the
//    controller cache, so 4-page prefetch costs 19 ms of disk time and later
//    references to the prefetched pages cost only controller + transmission.
// The CPU overhead per I/O operation (3000 instructions) is charged on the
// owning PE's CPU.

#ifndef PDBLB_IOSIM_DISK_H_
#define PDBLB_IOSIM_DISK_H_

#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/relation.h"
#include "common/config.h"
#include "simkern/resource.h"
#include "simkern/rng.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"
#include "simkern/task_group.h"

namespace pdblb {

enum class AccessPattern {
  kRandom,      ///< Point access (OLTP index/data reads): no prefetch.
  kSequential,  ///< Scan / temp-file access: prefetching enabled.
};

/// The disk array of a single processing element — or, in Shared Disk mode,
/// one PE's *view* of the globally shared spindles (see the facade
/// constructor below).
class DiskArray {
 public:
  /// `tag` attributes this array's disk/controller/log wake-ups and page
  /// transmissions in event traces (typically TraceTag(kDisk, pe_id)).
  DiskArray(sim::Scheduler& sched, const DiskConfig& config,
            const CpuCosts& costs, double mips, sim::Resource& cpu,
            std::string name,
            sim::TraceTag tag = sim::TraceTag(sim::TraceSubsystem::kDisk));

  /// Shared Disk facade: this array serves I/O from the *same spindles* as
  /// `master` (the global pool of the storage subsystem), while the per-I/O
  /// CPU overhead, the controller with its disk cache, and the log disk
  /// stay local to this PE (its storage adapter).  All facades observe and
  /// generate contention on the shared spindles.
  DiskArray(sim::Scheduler& sched, const DiskConfig& config,
            const CpuCosts& costs, double mips, sim::Resource& cpu,
            std::string name, DiskArray& master,
            sim::TraceTag tag = sim::TraceTag(sim::TraceSubsystem::kDisk));

  /// Reads one page.  Sequential reads prefetch into the controller cache.
  sim::Task<> Read(PageKey page, AccessPattern pattern);

  /// Reads `count` consecutive pages of a declustered partition: prefetch
  /// batches are issued concurrently across the disk array (the paper's
  /// horizontal declustering over disks), so a long sequential scan is
  /// limited by the array, not a single spindle.  Cached pages are served
  /// from the controller cache.
  sim::Task<> ReadStriped(PageKey first, int64_t count);

  /// Writes `count` consecutive pages starting at `first` as one batch
  /// (sequential temp-file write).  Written pages enter the cache.
  sim::Task<> WriteBatch(PageKey first, int count);

  /// Writes one page at a random position (buffer-manager page cleaning).
  sim::Task<> WriteRandom(PageKey page);

  /// Appends one record batch to the local log (OLTP commit).
  sim::Task<> LogWrite();

  // --- fault injection (engine/faults.h) ----------------------------------
  /// Arms transient I/O errors: every physical access draws from `rng` (a
  /// dedicated per-PE fork of the root seed) and fails with probability
  /// `error_rate`; the driver retries a failed access with a fixed
  /// `retry_penalty_ms` service charge, at most `retry_limit` times per
  /// access (a chain that exhausts the budget surfaces the final error
  /// without another reissue, so io_errors() >= io_retries() always).
  /// Never armed on the fault-free path: zero draws, zero extra awaits.
  void ConfigureFaults(double error_rate, int retry_limit,
                       double retry_penalty_ms, sim::Rng rng);

  /// Slow-disk mode: multiplies every physical disk/log service time by
  /// `m` (>= 1); 1.0 restores normal speed.  In Shared Disk mode the
  /// multiplier is per-facade: it models this PE's degraded storage
  /// adapter path to the shared spindles.
  void SetServiceMultiplier(double m);
  double service_multiplier() const { return service_multiplier_; }

  int64_t io_errors() const { return io_errors_; }
  int64_t io_retries() const { return io_retries_; }
  /// Extra service time injected by the slow-disk multiplier.
  double slow_disk_extra_ms() const { return slow_disk_extra_ms_; }

  // --- introspection ------------------------------------------------------
  int num_disks() const { return static_cast<int>(disks_.size()); }
  /// Mean utilization of the data disks since the last ResetStats.
  double DataDiskUtilization() const;
  /// Busy-time integral summed over data disks (for windowed utilization).
  double DataDiskBusyIntegral() const;

  int64_t physical_reads() const { return physical_reads_; }
  int64_t physical_writes() const { return physical_writes_; }
  int64_t cache_hits() const { return cache_hits_; }
  int64_t logical_reads() const { return logical_reads_; }

  void ResetStats();

 private:
  sim::Resource& DiskFor(PageKey page);
  bool CacheContains(PageKey page) const;
  void CacheInsert(PageKey page);
  /// One prefetch batch: disk access plus controller service.
  sim::Task<> ReadBatchFromDisk(PageKey first, int pages);
  /// Applies the slow-disk multiplier to a physical service time and
  /// accounts the injected extra.  Exact identity when the mode is off.
  double Scaled(double service_ms);
  /// Transient-error draw/retry chain after one physical access; only ever
  /// awaited when ConfigureFaults armed the RNG.
  sim::Task<> InjectedRetries(sim::Resource& disk);

  sim::Scheduler& sched_;
  DiskConfig config_;
  CpuCosts costs_;
  double mips_;
  sim::Resource& cpu_;
  std::string name_;
  sim::TraceTag tag_;

  std::vector<std::shared_ptr<sim::Resource>> disks_;  // shared in SD mode
  std::unique_ptr<sim::Resource> controller_;
  std::unique_ptr<sim::Resource> log_disk_;

  // LRU disk cache: most recent at the front.
  std::list<PageKey> cache_lru_;
  std::unordered_map<PageKey, std::list<PageKey>::iterator, PageKeyHash>
      cache_map_;

  int64_t physical_reads_ = 0;
  int64_t physical_writes_ = 0;
  int64_t cache_hits_ = 0;
  int64_t logical_reads_ = 0;

  // Fault state: unset/1.0 on the fault-free path.
  std::optional<sim::Rng> fault_rng_;
  double io_error_rate_ = 0.0;
  int io_retry_limit_ = 0;
  double io_retry_penalty_ms_ = 0.0;
  double service_multiplier_ = 1.0;
  int64_t io_errors_ = 0;
  int64_t io_retries_ = 0;
  double slow_disk_extra_ms_ = 0.0;
};

}  // namespace pdblb

#endif  // PDBLB_IOSIM_DISK_H_
