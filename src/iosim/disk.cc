// Copyright 2026 the pdblb authors. MIT license.

#include "iosim/disk.h"

#include <algorithm>
#include <cassert>

namespace pdblb {
namespace {

// Use() is a frameless awaiter, not a Task; spawning it as a detached
// group member needs this thin coroutine wrapper.
sim::Task<> SpawnedUse(sim::Resource& res, SimTime duration) {
  co_await res.Use(duration);
}

}  // namespace

DiskArray::DiskArray(sim::Scheduler& sched, const DiskConfig& config,
                     const CpuCosts& costs, double mips, sim::Resource& cpu,
                     std::string name, sim::TraceTag tag)
    : sched_(sched), config_(config), costs_(costs), mips_(mips), cpu_(cpu),
      name_(std::move(name)), tag_(tag) {
  for (int i = 0; i < config_.disks_per_pe; ++i) {
    disks_.push_back(std::make_shared<sim::Resource>(
        sched_, 1, name_ + ".disk" + std::to_string(i), tag_));
  }
  controller_ =
      std::make_unique<sim::Resource>(sched_, 1, name_ + ".ctrl", tag_);
  log_disk_ = std::make_unique<sim::Resource>(sched_, 1, name_ + ".log", tag_);
}

DiskArray::DiskArray(sim::Scheduler& sched, const DiskConfig& config,
                     const CpuCosts& costs, double mips, sim::Resource& cpu,
                     std::string name, DiskArray& master, sim::TraceTag tag)
    : sched_(sched), config_(config), costs_(costs), mips_(mips), cpu_(cpu),
      name_(std::move(name)), tag_(tag), disks_(master.disks_) {
  controller_ =
      std::make_unique<sim::Resource>(sched_, 1, name_ + ".ctrl", tag_);
  log_disk_ = std::make_unique<sim::Resource>(sched_, 1, name_ + ".log", tag_);
}

sim::Resource& DiskArray::DiskFor(PageKey page) {
  size_t h = PageKeyHash{}(page);
  return *disks_[h % disks_.size()];
}

void DiskArray::ConfigureFaults(double error_rate, int retry_limit,
                                double retry_penalty_ms, sim::Rng rng) {
  assert(error_rate >= 0.0 && error_rate < 1.0);
  io_error_rate_ = error_rate;
  io_retry_limit_ = retry_limit;
  io_retry_penalty_ms_ = retry_penalty_ms;
  fault_rng_ = rng;
}

void DiskArray::SetServiceMultiplier(double m) {
  assert(m >= 1.0);
  service_multiplier_ = m;
}

double DiskArray::Scaled(double service_ms) {
  if (service_multiplier_ == 1.0) return service_ms;
  double scaled = service_ms * service_multiplier_;
  slow_disk_extra_ms_ += scaled - service_ms;
  return scaled;
}

sim::Task<> DiskArray::InjectedRetries(sim::Resource& disk) {
  // Each failed draw is one observed error; each reissue pays the retry
  // penalty on the same spindle.  The chain is bounded per access, and a
  // chain that runs out of budget surfaces its last error unretried.
  int chain = 0;
  while (fault_rng_->Uniform() < io_error_rate_) {
    ++io_errors_;
    if (chain >= io_retry_limit_) break;
    ++chain;
    ++io_retries_;
    co_await disk.Use(Scaled(io_retry_penalty_ms_));
  }
}

bool DiskArray::CacheContains(PageKey page) const {
  return cache_map_.find(page) != cache_map_.end();
}

void DiskArray::CacheInsert(PageKey page) {
  if (config_.disk_cache_pages <= 0) return;
  auto it = cache_map_.find(page);
  if (it != cache_map_.end()) {
    cache_lru_.erase(it->second);
    cache_map_.erase(it);
  }
  cache_lru_.push_front(page);
  cache_map_[page] = cache_lru_.begin();
  while (static_cast<int>(cache_lru_.size()) > config_.disk_cache_pages) {
    cache_map_.erase(cache_lru_.back());
    cache_lru_.pop_back();
  }
}

sim::Task<> DiskArray::Read(PageKey page, AccessPattern pattern) {
  ++logical_reads_;
  co_await cpu_.Use(InstructionsToMs(costs_.io_overhead, mips_));

  if (CacheContains(page)) {
    ++cache_hits_;
    CacheInsert(page);  // refresh LRU position
    co_await controller_->Use(config_.controller_time_per_page_ms);
    co_await sched_.Delay(config_.transmission_time_per_page_ms, tag_);
    co_return;
  }

  int fetch = pattern == AccessPattern::kSequential ? config_.prefetch_pages : 1;
  ++physical_reads_;
  co_await DiskFor(page).Use(Scaled(config_.avg_access_time_ms +
                                    config_.prefetch_delay_per_page_ms *
                                        fetch));
  if (fault_rng_) co_await InjectedRetries(DiskFor(page));
  co_await controller_->Use(config_.controller_time_per_page_ms * fetch);
  for (int i = 0; i < fetch; ++i) {
    CacheInsert(PageKey{page.relation_id, page.page_no + i});
  }
  co_await sched_.Delay(config_.transmission_time_per_page_ms, tag_);
}

sim::Task<> DiskArray::ReadStriped(PageKey first, int64_t count) {
  if (count <= 0) co_return;
  // One CPU I/O-overhead charge per prefetch batch, paid by the issuer.
  sim::TaskGroup batches(sched_);
  int64_t i = 0;
  while (i < count) {
    // Skip cached pages (controller service only).
    PageKey page{first.relation_id, first.page_no + i};
    if (CacheContains(page)) {
      ++cache_hits_;
      ++logical_reads_;
      CacheInsert(page);
      batches.Spawn(
          SpawnedUse(*controller_, config_.controller_time_per_page_ms));
      ++i;
      continue;
    }
    int fetch = static_cast<int>(
        std::min<int64_t>(config_.prefetch_pages, count - i));
    logical_reads_ += fetch;
    ++physical_reads_;
    batches.Spawn(ReadBatchFromDisk(page, fetch));
    for (int k = 0; k < fetch; ++k) {
      CacheInsert(PageKey{page.relation_id, page.page_no + k});
    }
    i += fetch;
  }
  co_await batches.Wait();
  co_await sched_.Delay(config_.transmission_time_per_page_ms, tag_);
}

sim::Task<> DiskArray::ReadBatchFromDisk(PageKey first, int pages) {
  co_await cpu_.Use(InstructionsToMs(costs_.io_overhead, mips_));
  co_await DiskFor(first).Use(Scaled(config_.avg_access_time_ms +
                                     config_.prefetch_delay_per_page_ms *
                                         pages));
  if (fault_rng_) co_await InjectedRetries(DiskFor(first));
  co_await controller_->Use(config_.controller_time_per_page_ms * pages);
}

sim::Task<> DiskArray::WriteBatch(PageKey first, int count) {
  assert(count >= 1);
  co_await cpu_.Use(InstructionsToMs(costs_.io_overhead, mips_));
  ++physical_writes_;
  co_await sched_.Delay(config_.transmission_time_per_page_ms * count, tag_);
  co_await controller_->Use(config_.controller_time_per_page_ms * count);
  co_await DiskFor(first).Use(Scaled(config_.avg_access_time_ms +
                                     config_.prefetch_delay_per_page_ms *
                                         count));
  if (fault_rng_) co_await InjectedRetries(DiskFor(first));
  for (int i = 0; i < count; ++i) {
    CacheInsert(PageKey{first.relation_id, first.page_no + i});
  }
}

sim::Task<> DiskArray::WriteRandom(PageKey page) {
  return WriteBatch(page, 1);
}

sim::Task<> DiskArray::LogWrite() {
  co_await cpu_.Use(InstructionsToMs(costs_.io_overhead, mips_));
  co_await log_disk_->Use(Scaled(config_.log_write_ms));
  if (fault_rng_) co_await InjectedRetries(*log_disk_);
}

double DiskArray::DataDiskUtilization() const {
  double sum = 0.0;
  for (const auto& d : disks_) sum += d->Utilization();
  return sum / static_cast<double>(disks_.size());
}

double DiskArray::DataDiskBusyIntegral() const {
  double sum = 0.0;
  for (const auto& d : disks_) sum += d->BusyIntegral();
  return sum;
}

void DiskArray::ResetStats() {
  for (auto& d : disks_) d->ResetStats();
  controller_->ResetStats();
  log_disk_->ResetStats();
  physical_reads_ = 0;
  physical_writes_ = 0;
  cache_hits_ = 0;
  logical_reads_ = 0;
  io_errors_ = 0;
  io_retries_ = 0;
  slow_disk_extra_ms_ = 0.0;
}

}  // namespace pdblb
