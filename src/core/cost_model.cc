// Copyright 2026 the pdblb authors. MIT license.

#include "core/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pdblb {

namespace {

/// Coordinator-serial overhead per join processor, in instructions: subquery
/// startup message plus its share of termination processing.  Calibrated so
/// that the integer argmin of R(p) reproduces the paper's published anchor
/// p_su-opt = 30 at 1% scan selectivity (and 10 at 0.1%, ~70 at 5%); see
/// DESIGN.md "p_su-opt calibration".
constexpr int64_t kCoordinatorPerPeInstr = 15500;

}  // namespace

CostModel::CostModel(const SystemConfig& config) : config_(config) {
  profile_.inner_tuples = config.InnerInputTuples();
  profile_.outer_tuples = config.OuterInputTuples();
  profile_.result_tuples = static_cast<int64_t>(std::llround(
      config.join_query.result_size_factor *
      static_cast<double>(profile_.inner_tuples)));
  profile_.inner_pages = config.InnerInputPages();
  profile_.outer_pages = config.OuterInputPages();
  profile_.tuple_size_bytes = config.relation_a.tuple_size_bytes;
  profile_.fudge_factor = config.join_query.fudge_factor;
  packet_bytes_ = config.network.packet_size_bytes;
  mips_ = config.mips_per_pe;
}

int64_t CostModel::HashTablePages() const {
  return static_cast<int64_t>(std::ceil(
      profile_.fudge_factor * static_cast<double>(profile_.inner_pages)));
}

int CostModel::PsuNoIO() const {
  // Formula (3.1): p_su-noIO = MIN(n, ceil((b_i * F) / m)).
  int64_t m = config_.buffer.buffer_pages;
  int64_t p = (HashTablePages() + m - 1) / m;
  return static_cast<int>(
      std::clamp<int64_t>(p, 1, config_.num_pes));
}

int CostModel::PmuCpu(double u) const {
  // Formula (3.2): p_mu-cpu = p_su-opt * (1 - u_cpu^3).
  u = std::clamp(u, 0.0, 1.0);
  int p = static_cast<int>(std::lround(PsuOpt() * (1.0 - u * u * u)));
  return std::clamp(p, 1, config_.num_pes);
}

int CostModel::MinWorkingSpacePages(int p) const {
  assert(p >= 1);
  double share_pages =
      std::ceil(static_cast<double>(profile_.inner_pages) / p);
  return std::max(
      1, static_cast<int>(std::ceil(
             std::sqrt(profile_.fudge_factor * share_pages))));
}

double CostModel::CoordinatorFixedMs() const {
  const CpuCosts& c = config_.costs;
  // BOT + EOT plus one startup message to every scan processor.
  int64_t instr = c.initiate_txn + c.terminate_txn +
                  static_cast<int64_t>(config_.num_pes) *
                      (c.send_message + c.copy_message);
  return InstructionsToMs(instr, mips_);
}

double CostModel::CoordinatorPerPeMs() const {
  return InstructionsToMs(kCoordinatorPerPeInstr, mips_);
}

double CostModel::ScanPhaseMs(bool inner) const {
  const CpuCosts& c = config_.costs;
  int nodes = inner ? config_.NumANodes() : config_.NumBNodes();
  int64_t pages = inner ? profile_.inner_pages : profile_.outer_pages;
  int64_t tuples = inner ? profile_.inner_tuples : profile_.outer_tuples;

  int64_t pages_node = (pages + nodes - 1) / nodes;
  int64_t tuples_node = (tuples + nodes - 1) / nodes;
  int64_t bytes_node = tuples_node * profile_.tuple_size_bytes;
  int64_t packets_node = (bytes_node + packet_bytes_ - 1) / packet_bytes_;

  // Effective sequential page read time with prefetching.
  const DiskConfig& d = config_.disk;
  double page_io_ms = (d.avg_access_time_ms +
                       d.prefetch_delay_per_page_ms * d.prefetch_pages) /
                          d.prefetch_pages +
                      d.controller_time_per_page_ms +
                      d.transmission_time_per_page_ms;
  double io_ms = static_cast<double>(pages_node) * page_io_ms;

  int64_t cpu_instr =
      tuples_node * (c.read_tuple + c.hash_tuple + c.write_output_tuple) +
      packets_node * (c.send_message + c.copy_message) +
      pages_node * c.io_overhead;
  double cpu_ms = InstructionsToMs(cpu_instr, mips_);

  // I/O and CPU overlap within a scan node.
  return std::max(io_ms, cpu_ms);
}

double CostModel::JoinWorkMs() const {
  const CpuCosts& c = config_.costs;
  auto packets = [&](int64_t tuples) {
    int64_t bytes = tuples * profile_.tuple_size_bytes;
    return (bytes + packet_bytes_ - 1) / packet_bytes_;
  };
  int64_t instr = 0;
  // Building phase: receive the inner input, hash and insert.
  instr += packets(profile_.inner_tuples) * (c.receive_message + c.copy_message);
  instr += profile_.inner_tuples * (c.hash_tuple + c.insert_hash_table);
  // Probing phase: receive the outer input, probe, emit results.
  instr += packets(profile_.outer_tuples) * (c.receive_message + c.copy_message);
  instr += profile_.outer_tuples * c.probe_hash_table;
  instr += profile_.result_tuples * c.write_output_tuple;
  instr += packets(profile_.result_tuples) * (c.send_message + c.copy_message);
  return InstructionsToMs(instr, mips_);
}

double CostModel::TempIoMs(int p) const {
  // Aggregate memory of p join processors vs. the hash-table requirement.
  double need = static_cast<double>(HashTablePages());
  double have = static_cast<double>(p) *
                static_cast<double>(config_.buffer.buffer_pages);
  if (have >= need) return 0.0;
  double spilled_fraction = 1.0 - have / need;
  // Spilled fractions of both inputs are written to and re-read from
  // temporary files, spread over p processors.
  double temp_pages = spilled_fraction *
                      static_cast<double>(profile_.inner_pages +
                                          profile_.outer_pages) *
                      2.0 / static_cast<double>(p);
  const DiskConfig& d = config_.disk;
  double page_io_ms = (d.avg_access_time_ms +
                       d.prefetch_delay_per_page_ms * d.prefetch_pages) /
                          d.prefetch_pages +
                      d.controller_time_per_page_ms +
                      d.transmission_time_per_page_ms;
  return temp_pages * page_io_ms;
}

double CostModel::ResponseTimeMs(int p) const {
  assert(p >= 1);
  return CoordinatorFixedMs() + CoordinatorPerPeMs() * p + ScanPhaseMs(true) +
         ScanPhaseMs(false) + JoinWorkMs() / p + TempIoMs(p);
}

double CostModel::ScanProductionRateTps() const {
  double total_tuples = static_cast<double>(profile_.inner_tuples +
                                            profile_.outer_tuples);
  double phase_ms = ScanPhaseMs(true) + ScanPhaseMs(false);
  if (phase_ms <= 0.0) return 0.0;
  return total_tuples / phase_ms * 1000.0;
}

double CostModel::JoinConsumptionRateTps() const {
  double total_tuples = static_cast<double>(profile_.inner_tuples +
                                            profile_.outer_tuples);
  double work_ms = JoinWorkMs();
  if (work_ms <= 0.0) return 0.0;
  return total_tuples / work_ms * 1000.0;
}

int CostModel::PsuOpt() const {
  int best = 1;
  double best_rt = ResponseTimeMs(1);
  for (int p = 2; p <= config_.num_pes; ++p) {
    double rt = ResponseTimeMs(p);
    if (rt < best_rt) {
      best_rt = rt;
      best = p;
    }
  }
  return best;
}

}  // namespace pdblb
