// Copyright 2026 the pdblb authors. MIT license.

#include "core/strategies.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pdblb {

namespace internal {

int64_t OverflowPages(const std::vector<PeLoadInfo>& avail, int64_t need,
                      int k) {
  assert(k >= 1 && k <= static_cast<int>(avail.size()));
  int64_t min_free = avail[k - 1].free_memory_pages;
  return std::max<int64_t>(0, need - min_free * static_cast<int64_t>(k));
}

int MinNoIoDegree(const std::vector<PeLoadInfo>& avail, int64_t need,
                  int limit) {
  limit = std::min(limit, static_cast<int>(avail.size()));
  for (int k = 1; k <= limit; ++k) {
    if (OverflowPages(avail, need, k) == 0) return k;
  }
  return 0;
}

std::vector<int> AllNoIoDegrees(const std::vector<PeLoadInfo>& avail,
                                int64_t need, int limit) {
  limit = std::min(limit, static_cast<int>(avail.size()));
  std::vector<int> out;
  for (int k = 1; k <= limit; ++k) {
    if (OverflowPages(avail, need, k) == 0) out.push_back(k);
  }
  return out;
}

int MinOverflowDegree(const std::vector<PeLoadInfo>& avail, int64_t need,
                      int limit, bool prefer_larger) {
  limit = std::min(limit, static_cast<int>(avail.size()));
  assert(limit >= 1);
  int best_k = 1;
  int64_t best_overflow = OverflowPages(avail, need, 1);
  for (int k = 2; k <= limit; ++k) {
    int64_t overflow = OverflowPages(avail, need, k);
    bool better = prefer_larger ? overflow <= best_overflow
                                : overflow < best_overflow;
    if (better) {
      best_overflow = overflow;
      best_k = k;
    }
  }
  return best_k;
}

int MinOverflowDegreeNear(const std::vector<PeLoadInfo>& avail, int64_t need,
                          int limit, int target) {
  limit = std::min(limit, static_cast<int>(avail.size()));
  assert(limit >= 1);
  int best_k = 1;
  int64_t best_overflow = OverflowPages(avail, need, 1);
  for (int k = 2; k <= limit; ++k) {
    int64_t overflow = OverflowPages(avail, need, k);
    bool better =
        overflow < best_overflow ||
        (overflow == best_overflow &&
         std::abs(k - target) < std::abs(best_k - target));
    if (better) {
      best_overflow = overflow;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace internal

namespace {

using internal::AllNoIoDegrees;
using internal::MinNoIoDegree;
using internal::MinOverflowDegree;
using internal::MinOverflowDegreeNear;

int PagesPerPe(int64_t need, int k) {
  return static_cast<int>((need + k - 1) / k);
}

std::vector<PeId> TopK(const std::vector<PeLoadInfo>& sorted, int k) {
  std::vector<PeId> pes;
  pes.reserve(k);
  for (int i = 0; i < k; ++i) pes.push_back(sorted[i].pe);
  return pes;
}

int DynamicCpuDegree(int psu_opt, double u, int num_pes) {
  u = std::clamp(u, 0.0, 1.0);
  int p = static_cast<int>(std::lround(psu_opt * (1.0 - u * u * u)));
  return std::clamp(p, 1, num_pes);
}

// Overload degree cap, applied by every strategy after it settled on a
// degree and before placement: a capped plan is marked degraded.  Identity
// while the control node is in the normal state (always, fault-free).
int ApplyOverloadCap(const ControlNode& control, int k, JoinPlan* plan) {
  int cap = control.DegreeCap(k);
  if (cap < k) {
    k = cap;
    plan->degraded = true;
  }
  return k;
}

}  // namespace

namespace internal {

int RateMatchDegree(const JoinPlanRequest& req, double u_cpu, double u_disk,
                    int num_pes) {
  if (req.join_rate_tps <= 0.0 || req.scan_rate_tps <= 0.0) return 1;
  // Floor the derating factors: a saturated system must not divide by zero.
  constexpr double kMinHeadroom = 0.05;
  double headroom = std::max(kMinHeadroom, (1.0 - std::clamp(u_cpu, 0.0, 1.0)) *
                                               (1.0 - std::clamp(u_disk, 0.0,
                                                                 1.0)));
  double effective_rate = req.join_rate_tps * headroom;
  int p = static_cast<int>(std::ceil(req.scan_rate_tps / effective_rate));
  return std::clamp(p, 1, num_pes);
}

}  // namespace internal

namespace {

/// Isolated strategies: degree policy x selection policy.
class IsolatedPolicy : public LoadBalancingPolicy {
 public:
  explicit IsolatedPolicy(const StrategyConfig& config) : config_(config) {}

  JoinPlan Plan(const JoinPlanRequest& req, ControlNode& control,
                sim::Rng& rng) override {
    int p = 1;
    if (config_.fixed_degree > 0) {
      p = config_.fixed_degree;  // R(p) tracing (Fig. 1)
    } else {
      switch (config_.degree) {
        case DegreePolicyKind::kStaticSuOpt:
          p = req.psu_opt;
          break;
        case DegreePolicyKind::kStaticSuNoIO:
          p = req.psu_noio;
          break;
        case DegreePolicyKind::kDynamicCpu:
          p = DynamicCpuDegree(req.psu_opt, control.AvgCpuUtilization(),
                               req.num_pes);
          break;
        case DegreePolicyKind::kRateMatch:
          p = internal::RateMatchDegree(req, control.AvgCpuUtilization(),
                                        control.AvgDiskUtilization(),
                                        req.num_pes);
          break;
      }
    }
    // A crashed PE must receive no work: cap the degree by the alive count
    // (equal to num_pes in fault-free runs) — LUC/LUM placement draws from
    // the control node's alive-only sorted views below.
    p = std::clamp(p, 1, std::min(req.num_pes, control.AliveCount()));

    JoinPlan plan;
    p = ApplyOverloadCap(control, p, &plan);
    plan.degree = p;
    switch (config_.selection) {
      case SelectionPolicyKind::kRandom:
        if (control.AnyDown()) {
          // Sample positions among alive PEs only.  The fault-free path
          // keeps the historical draw (same RNG stream, bit-identical).
          std::vector<PeId> alive;
          alive.reserve(static_cast<size_t>(control.AliveCount()));
          for (PeId pe = 0; pe < req.num_pes; ++pe) {
            if (control.IsAlive(pe)) alive.push_back(pe);
          }
          for (PeId i :
               rng.SampleWithoutReplacement(static_cast<int>(alive.size()),
                                            p)) {
            plan.pes.push_back(alive[static_cast<size_t>(i)]);
          }
        } else {
          plan.pes = rng.SampleWithoutReplacement(req.num_pes, p);
        }
        break;
      case SelectionPolicyKind::kLUC:
        plan.pes = TopK(control.CpuSorted(), p);
        break;
      case SelectionPolicyKind::kLUM:
        plan.pes = TopK(control.AvailMemorySorted(), p);
        break;
    }
    plan.pages_per_pe = PagesPerPe(req.hash_table_pages, p);
    control.NoteJoinScheduled(plan.pes, plan.pages_per_pe);
    return plan;
  }

  std::string Name() const override { return config_.Name(); }

 private:
  StrategyConfig config_;
};

/// MIN-IO (formula 3.3): minimal degree avoiding temporary file I/O, LUM
/// placement; ignores CPU utilization.
class MinIoPolicy : public LoadBalancingPolicy {
 public:
  JoinPlan Plan(const JoinPlanRequest& req, ControlNode& control,
                sim::Rng&) override {
    auto avail = control.AvailMemorySorted();
    int k = MinNoIoDegree(avail, req.hash_table_pages, req.num_pes);
    if (k == 0) {
      k = MinOverflowDegree(avail, req.hash_table_pages, req.num_pes,
                            /*prefer_larger=*/false);
    }
    JoinPlan plan;
    k = ApplyOverloadCap(control, k, &plan);
    plan.degree = k;
    plan.pes = TopK(avail, k);
    plan.pages_per_pe = PagesPerPe(req.hash_table_pages, k);
    control.NoteJoinScheduled(plan.pes, plan.pages_per_pe);
    return plan;
  }
  std::string Name() const override { return "MIN-IO"; }
};

/// MIN-IO-SUOPT: among all no-I/O degrees, the one closest to p_su-opt.
class MinIoSuOptPolicy : public LoadBalancingPolicy {
 public:
  JoinPlan Plan(const JoinPlanRequest& req, ControlNode& control,
                sim::Rng&) override {
    auto avail = control.AvailMemorySorted();
    auto candidates = AllNoIoDegrees(avail, req.hash_table_pages, req.num_pes);
    int k;
    if (!candidates.empty()) {
      k = candidates.front();
      int best_dist = std::abs(k - req.psu_opt);
      for (int c : candidates) {
        int dist = std::abs(c - req.psu_opt);
        // Ties favor the higher degree (more CPU parallelism).
        if (dist < best_dist || (dist == best_dist && c > k)) {
          best_dist = dist;
          k = c;
        }
      }
    } else {
      // No selection avoids temp I/O: minimize overflow; ties favor more
      // parallelism so that concurrent joins can share per-PE buffers.
      k = MinOverflowDegree(avail, req.hash_table_pages, req.num_pes,
                            /*prefer_larger=*/true);
    }
    JoinPlan plan;
    k = ApplyOverloadCap(control, k, &plan);
    plan.degree = k;
    plan.pes = TopK(avail, k);
    plan.pages_per_pe = PagesPerPe(req.hash_table_pages, k);
    control.NoteJoinScheduled(plan.pes, plan.pages_per_pe);
    return plan;
  }
  std::string Name() const override { return "MIN-IO-SUOPT"; }
};

/// OPT-IO-CPU: degree capped by p_mu-cpu; within the cap, the largest degree
/// avoiding temporary I/O (or minimizing it), LUM placement.
class OptIoCpuPolicy : public LoadBalancingPolicy {
 public:
  JoinPlan Plan(const JoinPlanRequest& req, ControlNode& control,
                sim::Rng&) override {
    int limit = DynamicCpuDegree(req.psu_opt, control.AvgCpuUtilization(),
                                 req.num_pes);
    auto avail = control.AvailMemorySorted();
    auto candidates = AllNoIoDegrees(avail, req.hash_table_pages, limit);
    int k = candidates.empty()
                ? MinOverflowDegree(avail, req.hash_table_pages, limit,
                                    /*prefer_larger=*/true)
                : candidates.back();
    JoinPlan plan;
    k = ApplyOverloadCap(control, k, &plan);
    plan.degree = k;
    plan.pes = TopK(avail, k);
    plan.pages_per_pe = PagesPerPe(req.hash_table_pages, k);
    control.NoteJoinScheduled(plan.pes, plan.pages_per_pe);
    return plan;
  }
  std::string Name() const override { return "OPT-IO-CPU"; }
};

}  // namespace

std::unique_ptr<LoadBalancingPolicy> LoadBalancingPolicy::Create(
    const StrategyConfig& config) {
  switch (config.integrated) {
    case IntegratedPolicyKind::kMinIO:
      return std::make_unique<MinIoPolicy>();
    case IntegratedPolicyKind::kMinIOSuOpt:
      return std::make_unique<MinIoSuOptPolicy>();
    case IntegratedPolicyKind::kOptIOCpu:
      return std::make_unique<OptIoCpuPolicy>();
    case IntegratedPolicyKind::kNone:
      return std::make_unique<IsolatedPolicy>(config);
  }
  return nullptr;
}

}  // namespace pdblb
