// Copyright 2026 the pdblb authors. MIT license.
//
// Analytic single-user response-time model for the parallel hash join
// (paper Section 2, following Wilschut et al. [34] and Marek [17]): an
// explicit R(p) whose integer argmin yields p_su-opt, plus the closed-form
// p_su-noIO (formula 3.1) and the CPU-adaptive p_mu-cpu (formula 3.2).
//
// The paper's own cost model [17] is not available; this reimplementation
// is calibrated so that the published anchors hold with the paper's
// parameter table:  p_su-opt = 10 / 30 / ~70 and p_su-noIO = 1 / 3 / 14 at
// scan selectivities 0.1% / 1% / 5% (see cost_model_test.cc).

#ifndef PDBLB_CORE_COST_MODEL_H_
#define PDBLB_CORE_COST_MODEL_H_

#include "common/config.h"

namespace pdblb {

/// Cost-model view of one join query class.
struct JoinQueryProfile {
  int64_t inner_tuples = 0;   ///< Scan output of A (the smaller input).
  int64_t outer_tuples = 0;   ///< Scan output of B.
  int64_t result_tuples = 0;
  int64_t inner_pages = 0;    ///< Pages of the inner scan output.
  int64_t outer_pages = 0;
  int tuple_size_bytes = 400;
  double fudge_factor = 1.05;
};

/// Analytic model over a SystemConfig.
class CostModel {
 public:
  explicit CostModel(const SystemConfig& config);

  /// Derives the join profile from the configured query class.
  JoinQueryProfile Profile() const { return profile_; }

  /// Single-user response time estimate [ms] with p join processors.
  double ResponseTimeMs(int p) const;

  /// p_su-opt: integer argmin of ResponseTimeMs over [1, n].
  int PsuOpt() const;

  /// p_su-noIO (formula 3.1): MIN(n, ceil(b_i * F / m)).
  int PsuNoIO() const;

  /// p_mu-cpu (formula 3.2): p_su-opt * (1 - u_cpu^3), at least 1.
  int PmuCpu(double cpu_utilization) const;

  /// Hash-table pages needed for the whole inner input: ceil(b_i * F).
  int64_t HashTablePages() const;

  /// The memory floor PPHJ needs at one of p join processors:
  /// ceil(sqrt(F * b_share)) partitions / pages.
  int MinWorkingSpacePages(int p) const;

  // --- RateMatch inputs (Mehta & DeWitt [20], paper Section 6) -------------

  /// Aggregate rate [tuples/s] at which the scan processors produce the join
  /// input in an unloaded system (both phases combined).
  double ScanProductionRateTps() const;

  /// Rate [tuples/s] at which one unloaded join processor consumes its input
  /// (receive + hash/insert/probe work, amortized over both phases).
  double JoinConsumptionRateTps() const;

 private:
  // Decomposed response-time terms [ms]; exposed to tests via ResponseTimeMs.
  double CoordinatorFixedMs() const;
  double CoordinatorPerPeMs() const;
  double ScanPhaseMs(bool inner) const;
  double JoinWorkMs() const;
  double TempIoMs(int p) const;

  SystemConfig config_;
  JoinQueryProfile profile_;
  int64_t packet_bytes_;
  double mips_;
};

}  // namespace pdblb

#endif  // PDBLB_CORE_COST_MODEL_H_
