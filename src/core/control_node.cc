// Copyright 2026 the pdblb authors. MIT license.

#include "core/control_node.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pdblb {

ControlNode::ControlNode(int num_pes, bool adaptive_feedback,
                         double cpu_bump_factor)
    : adaptive_feedback_(adaptive_feedback),
      cpu_bump_factor_(cpu_bump_factor) {
  info_.resize(num_pes);
  for (int i = 0; i < num_pes; ++i) info_[i].pe = i;
  alive_.assign(static_cast<size_t>(num_pes), true);
}

void ControlNode::MarkDown(PeId pe) {
  assert(pe >= 0 && pe < static_cast<int>(info_.size()));
  if (!alive_[static_cast<size_t>(pe)]) return;
  alive_[static_cast<size_t>(pe)] = false;
  ++down_count_;
}

void ControlNode::MarkUp(PeId pe) {
  assert(pe >= 0 && pe < static_cast<int>(info_.size()));
  if (alive_[static_cast<size_t>(pe)]) return;
  alive_[static_cast<size_t>(pe)] = true;
  --down_count_;
}

void ControlNode::Report(PeId pe, double cpu_util, int free_memory_pages,
                         double disk_util) {
  assert(pe >= 0 && pe < static_cast<int>(info_.size()));
  info_[pe].cpu_util = std::clamp(cpu_util, 0.0, 1.0);
  info_[pe].free_memory_pages = std::max(0, free_memory_pages);
  info_[pe].disk_util = std::clamp(disk_util, 0.0, 1.0);
}

void ControlNode::NoteLoadRound(double avg_admission_queue) {
  if (!overload_.enabled) return;
  const double cpu = AvgCpuUtilization();
  const double queue = avg_admission_queue;
  const bool hot = cpu >= overload_.degrade_cpu_threshold ||
                   queue >= overload_.degrade_queue_threshold;
  const bool shed_hot = queue >= overload_.shed_queue_threshold;
  const bool cool = cpu < overload_.exit_cpu_threshold &&
                    queue < overload_.exit_queue_threshold;
  // Escalation and de-escalation both require `enter_rounds` /
  // `exit_rounds` *consecutive* qualifying rounds; any non-qualifying round
  // resets the respective streak (hysteresis on top of the gap between
  // enter and exit thresholds).
  hot_rounds_ = hot ? hot_rounds_ + 1 : 0;
  shed_hot_rounds_ = shed_hot ? shed_hot_rounds_ + 1 : 0;
  switch (overload_state_) {
    case OverloadState::kNormal:
      cool_rounds_ = 0;
      if (hot_rounds_ >= overload_.enter_rounds) {
        overload_state_ = OverloadState::kDegraded;
        hot_rounds_ = 0;
      }
      break;
    case OverloadState::kDegraded:
      if (shed_hot_rounds_ >= overload_.enter_rounds) {
        overload_state_ = OverloadState::kShedding;
        shed_hot_rounds_ = 0;
        cool_rounds_ = 0;
        break;
      }
      cool_rounds_ = cool ? cool_rounds_ + 1 : 0;
      if (cool_rounds_ >= overload_.exit_rounds) {
        overload_state_ = OverloadState::kNormal;
        cool_rounds_ = 0;
      }
      break;
    case OverloadState::kShedding:
      // Leaving shedding only needs the *queue* to drain below the exit
      // threshold: shedding exists to work off the admission backlog, and
      // the CPU legitimately stays busy while it drains.
      cool_rounds_ =
          queue < overload_.exit_queue_threshold ? cool_rounds_ + 1 : 0;
      if (cool_rounds_ >= overload_.exit_rounds) {
        overload_state_ = OverloadState::kDegraded;
        cool_rounds_ = 0;
      }
      break;
  }
}

int ControlNode::DegreeCap(int wanted) const {
  if (overload_state_ == OverloadState::kNormal) return wanted;
  int cap = static_cast<int>(std::ceil(static_cast<double>(AliveCount()) *
                                       overload_.parallelism_factor));
  return std::clamp(cap, 1, wanted);
}

double ControlNode::AvgCpuUtilization() const {
  double sum = 0.0;
  int n = 0;
  for (const auto& i : info_) {
    if (!alive_[static_cast<size_t>(i.pe)]) continue;
    sum += i.cpu_util;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double ControlNode::AvgDiskUtilization() const {
  double sum = 0.0;
  int n = 0;
  for (const auto& i : info_) {
    if (!alive_[static_cast<size_t>(i.pe)]) continue;
    sum += i.disk_util;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::vector<PeLoadInfo> ControlNode::AliveInfos() const {
  if (down_count_ == 0) return info_;
  std::vector<PeLoadInfo> alive;
  alive.reserve(info_.size());
  for (const auto& i : info_) {
    if (alive_[static_cast<size_t>(i.pe)]) alive.push_back(i);
  }
  return alive;
}

std::vector<PeLoadInfo> ControlNode::AvailMemorySorted() const {
  std::vector<PeLoadInfo> sorted = AliveInfos();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const PeLoadInfo& a, const PeLoadInfo& b) {
                     if (a.free_memory_pages != b.free_memory_pages) {
                       return a.free_memory_pages > b.free_memory_pages;
                     }
                     return a.pe < b.pe;
                   });
  return sorted;
}

std::vector<PeLoadInfo> ControlNode::CpuSorted() const {
  std::vector<PeLoadInfo> sorted = AliveInfos();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const PeLoadInfo& a, const PeLoadInfo& b) {
                     if (a.cpu_util != b.cpu_util) {
                       return a.cpu_util < b.cpu_util;
                     }
                     return a.pe < b.pe;
                   });
  return sorted;
}

void ControlNode::NoteJoinScheduled(const std::vector<PeId>& pes,
                                    int pages_per_pe) {
  if (!adaptive_feedback_) return;
  for (PeId pe : pes) {
    PeLoadInfo& i = info_[pe];
    i.cpu_util += (1.0 - i.cpu_util) * cpu_bump_factor_;
    i.free_memory_pages = std::max(0, i.free_memory_pages - pages_per_pe);
  }
}

void ControlNode::NoteSubjoinSize(PeId pe, int delta_pages,
                                  double work_multiple) {
  if (!adaptive_feedback_) return;
  PeLoadInfo& i = info_[pe];
  i.free_memory_pages = std::max(0, i.free_memory_pages - delta_pages);
  if (work_multiple > 1.0) {
    double extra = std::min(1.0, cpu_bump_factor_ * (work_multiple - 1.0));
    i.cpu_util = std::min(1.0, i.cpu_util + (1.0 - i.cpu_util) * extra);
  }
}

}  // namespace pdblb
