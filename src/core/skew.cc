// Copyright 2026 the pdblb authors. MIT license.

#include "core/skew.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace pdblb {

std::vector<double> ZipfWeights(int parts, double theta) {
  assert(parts >= 1);
  std::vector<double> w(parts);
  double sum = 0.0;
  for (int j = 0; j < parts; ++j) {
    w[j] = 1.0 / std::pow(static_cast<double>(j + 1), theta);
    sum += w[j];
  }
  for (double& x : w) x /= sum;
  return w;
}

std::vector<int64_t> SplitWeighted(int64_t total,
                                   const std::vector<double>& weights) {
  assert(!weights.empty());
  const int parts = static_cast<int>(weights.size());
  std::vector<int64_t> shares(parts);
  std::vector<std::pair<double, int>> remainders(parts);
  int64_t assigned = 0;
  for (int j = 0; j < parts; ++j) {
    double exact = static_cast<double>(total) * weights[j];
    shares[j] = static_cast<int64_t>(exact);  // floor
    remainders[j] = {exact - static_cast<double>(shares[j]), j};
    assigned += shares[j];
  }
  // Largest-remainder apportionment: hand out the missing items to the
  // partitions that were rounded down the hardest (ties by index for
  // determinism).
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (int64_t i = 0; i < total - assigned; ++i) {
    ++shares[static_cast<size_t>(
        remainders[static_cast<size_t>(i) % remainders.size()].second)];
  }
  return shares;
}

std::vector<double> AssignWeights(std::vector<double> weights, bool skew_aware,
                                  sim::Rng& rng) {
  if (skew_aware) {
    std::sort(weights.begin(), weights.end(), std::greater<double>());
    return weights;
  }
  // Fisher-Yates permutation driven by the simulation RNG (deterministic per
  // seed).
  for (size_t i = weights.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(weights[i - 1], weights[j]);
  }
  return weights;
}

}  // namespace pdblb
