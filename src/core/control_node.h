// Copyright 2026 the pdblb authors. MIT license.
//
// The designated control node (paper Section 3): every PE periodically
// reports its CPU utilization and available memory; dynamic load-balancing
// strategies query this (slightly stale) global view when planning a join.
//
// The control node also implements the "adaptive variation" of LUC/LUM:
// when a join is scheduled on a set of PEs, their recorded CPU utilization
// is artificially bumped and their recorded free memory reduced, so that
// back-to-back joins do not herd onto the same processors while reports are
// stale.

#ifndef PDBLB_CORE_CONTROL_NODE_H_
#define PDBLB_CORE_CONTROL_NODE_H_

#include <cstddef>
#include <vector>

#include "common/config.h"
#include "common/units.h"

namespace pdblb {

/// Overload response level (see OverloadConfig in common/config.h for the
/// transition rules).  Ordered by severity.
enum class OverloadState {
  kNormal,    ///< Full plans, open admission.
  kDegraded,  ///< Join parallelism capped (plans marked degraded).
  kShedding,  ///< Additionally reject new complex queries at admission.
};

/// One PE's load as known to the control node.
struct PeLoadInfo {
  PeId pe = 0;
  double cpu_util = 0.0;        ///< [0, 1]
  int free_memory_pages = 0;    ///< AVAIL-MEMORY entry
  double disk_util = 0.0;       ///< [0, 1]
};

class ControlNode {
 public:
  /// `cpu_bump_factor`: fraction of remaining headroom added to a selected
  /// PE's recorded CPU utilization (0 disables the adaptive feedback).
  ControlNode(int num_pes, bool adaptive_feedback,
              double cpu_bump_factor = 0.25);

  /// Periodic report from a PE (overwrites any adaptive adjustments).
  void Report(PeId pe, double cpu_util, int free_memory_pages,
              double disk_util);

  // --- failure / recovery (engine/faults.h) -------------------------------
  //
  // A crashed PE stops reporting and must stop receiving work: the planning
  // views below (averages, sorted arrays) cover only alive PEs, so every
  // strategy avoids dead PEs without individual checks.  When no PE is down
  // the views are exactly the all-PE views — fault-free runs are untouched.

  /// Ingests a failure notification: the PE drops out of every planning view.
  void MarkDown(PeId pe);
  /// Ingests a recovery notification: the PE rejoins the planning views.
  /// The caller refreshes its load info with an initial optimistic report.
  void MarkUp(PeId pe);
  bool IsAlive(PeId pe) const { return alive_[static_cast<size_t>(pe)]; }
  bool AnyDown() const { return down_count_ > 0; }
  int AliveCount() const { return num_pes() - down_count_; }

  // --- overload-adaptive degradation (OverloadConfig) ---------------------
  //
  // Fed once per control-report round by the cluster; pure bookkeeping (no
  // events, no RNG draws), and with the default-disabled config every query
  // below returns its fault-free constant, so plans are untouched.

  /// Installs the thresholds (done once, at cluster construction).
  void ConfigureOverload(const OverloadConfig& config) { overload_ = config; }
  /// One report round: classifies the system from the current avg alive-PE
  /// CPU utilization and the round's avg admission queue depth, and steps
  /// the normal/degraded/shedding state machine (with hysteresis).
  void NoteLoadRound(double avg_admission_queue);
  OverloadState overload_state() const { return overload_state_; }
  /// True while new complex queries should be rejected at admission.
  bool ShouldShed() const {
    return overload_state_ == OverloadState::kShedding;
  }
  /// Join-degree cap under the current state: `wanted` when normal,
  /// otherwise ceil(alive * parallelism_factor) clamped to [1, wanted].
  int DegreeCap(int wanted) const;

  /// Average reported CPU utilization over all PEs (u_cpu in formula 3.2).
  double AvgCpuUtilization() const;

  /// Average reported disk utilization over all PEs (used by the RateMatch
  /// baseline, which works with averages only).
  double AvgDiskUtilization() const;

  const PeLoadInfo& info(PeId pe) const { return info_[pe]; }
  int num_pes() const { return static_cast<int>(info_.size()); }

  /// The AVAIL-MEMORY array: all PEs sorted by free memory, descending
  /// (AVAIL-MEMORY[0] = most free memory).
  std::vector<PeLoadInfo> AvailMemorySorted() const;

  /// All PEs sorted by CPU utilization, ascending (for LUC).
  std::vector<PeLoadInfo> CpuSorted() const;

  /// Adaptive feedback: a join with `pages_per_pe` working space was placed
  /// on `pes`.  No-op if adaptive feedback is disabled.
  void NoteJoinScheduled(const std::vector<PeId>& pes, int pages_per_pe);

  /// Skew correction on top of NoteJoinScheduled, applied by the executor
  /// once the actual per-PE subjoin sizes are known (redistribution skew):
  /// `delta_pages` is the working space beyond the uniform estimate already
  /// booked, `work_multiple` the PE's tuple share relative to an equal split
  /// (1.0 = equal).  Rotates hotspots between back-to-back joins.  No-op if
  /// adaptive feedback is disabled.
  void NoteSubjoinSize(PeId pe, int delta_pages, double work_multiple);

 private:
  /// The load infos of alive PEs (all of them when nothing is down).
  std::vector<PeLoadInfo> AliveInfos() const;

  std::vector<PeLoadInfo> info_;
  std::vector<bool> alive_;
  int down_count_ = 0;
  bool adaptive_feedback_;
  double cpu_bump_factor_;

  // Overload state machine (disabled unless overload_.enabled).
  OverloadConfig overload_;
  OverloadState overload_state_ = OverloadState::kNormal;
  int hot_rounds_ = 0;       ///< Consecutive rounds at/above enter pressure.
  int shed_hot_rounds_ = 0;  ///< Consecutive rounds at/above shed pressure.
  int cool_rounds_ = 0;      ///< Consecutive rounds below exit pressure.
};

}  // namespace pdblb

#endif  // PDBLB_CORE_CONTROL_NODE_H_
