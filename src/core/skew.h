// Copyright 2026 the pdblb authors. MIT license.
//
// Redistribution-skew modeling and skew-aware subjoin assignment (the
// extension the paper sketches in its conclusions: "the skew problem may be
// reduced by dynamic load balancing strategies that do not try to generate
// equally-sized subjoins but select the join processors dependent on the
// size of the subjoins (by assigning larger subjoins to less loaded
// nodes)").
//
// The partitioning function splits both join inputs into p partitions.  With
// a skewed join-attribute distribution the partition sizes follow a Zipf-like
// law; we model them as weights w_j ∝ 1/(j+1)^theta.  theta = 0 reproduces
// the paper's base no-skew assumption exactly.

#ifndef PDBLB_CORE_SKEW_H_
#define PDBLB_CORE_SKEW_H_

#include <cstdint>
#include <vector>

#include "simkern/rng.h"

namespace pdblb {

/// Normalized Zipf(theta) partition weights for `parts` partitions,
/// descending.  theta = 0 yields the uniform split.
std::vector<double> ZipfWeights(int parts, double theta);

/// Apportions `total` items into shares proportional to `weights` using the
/// largest-remainder method; the shares always sum to `total` exactly.
std::vector<int64_t> SplitWeighted(int64_t total,
                                   const std::vector<double>& weights);

/// Maps partition weights onto the planner's PE list.
///
/// The planner returns PEs in "goodness" order (LUM: most free memory first,
/// LUC: least utilized CPU first).  Skew-aware assignment exploits this by
/// pairing the heaviest partition with the best PE: the returned weights are
/// simply kept descending.  The skew-oblivious baseline models a hash
/// partitioner that does not know partition sizes: the weights are randomly
/// permuted, so the heaviest partition lands on an arbitrary selected PE.
std::vector<double> AssignWeights(std::vector<double> weights,
                                  bool skew_aware, sim::Rng& rng);

}  // namespace pdblb

#endif  // PDBLB_CORE_SKEW_H_
