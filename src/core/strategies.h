// Copyright 2026 the pdblb authors. MIT license.
//
// The load-balancing strategy family (paper Section 3):
//
//  Isolated strategies determine the degree of join parallelism first
//  (p_su-opt, p_su-noIO, or the CPU-adaptive p_mu-cpu) and then select that
//  many join processors with RANDOM, LUC (least utilized CPUs) or LUM
//  (least utilized memory = most free memory).
//
//  Integrated strategies (MIN-IO, MIN-IO-SUOPT, OPT-IO-CPU) determine the
//  degree *and* the placement in one step from the control node's
//  AVAIL-MEMORY array, trying to avoid (or minimize) temporary file I/O.

#ifndef PDBLB_CORE_STRATEGIES_H_
#define PDBLB_CORE_STRATEGIES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/control_node.h"
#include "core/cost_model.h"
#include "simkern/rng.h"

namespace pdblb {

/// Everything a policy may consult when planning one join.
struct JoinPlanRequest {
  /// Hash-table pages needed for the whole inner input: ceil(b_i * F).
  int64_t hash_table_pages = 0;
  int psu_opt = 1;   ///< Single-user optimum from the cost model.
  int psu_noio = 1;  ///< Formula (3.1).
  int num_pes = 1;
  /// Single-user production/consumption rates for the RateMatch baseline
  /// (CostModel::ScanProductionRateTps / JoinConsumptionRateTps).
  double scan_rate_tps = 0.0;
  double join_rate_tps = 0.0;
};

/// The outcome: degree of join parallelism and the selected processors.
struct JoinPlan {
  int degree = 1;
  std::vector<PeId> pes;
  /// Working-space pages each selected PE should reserve (the per-PE share
  /// of the hash table, capped by what the planner believed was free).
  int pages_per_pe = 0;
  /// True when the overload degree cap (ControlNode::DegreeCap) bound this
  /// plan below what the strategy wanted; such queries are counted as
  /// queries_degraded on completion.
  bool degraded = false;
};

/// Interface of all nine strategies.
class LoadBalancingPolicy {
 public:
  virtual ~LoadBalancingPolicy() = default;

  /// Plans one join against the control node's current view.  Implementations
  /// apply the LUC/LUM adaptive feedback to `control` themselves.
  virtual JoinPlan Plan(const JoinPlanRequest& request, ControlNode& control,
                        sim::Rng& rng) = 0;

  virtual std::string Name() const = 0;

  /// Factory covering every StrategyConfig combination.
  static std::unique_ptr<LoadBalancingPolicy> Create(
      const StrategyConfig& config);
};

namespace internal {

/// Smallest k such that the k most memory-endowed PEs can jointly hold
/// `need` pages with min-free * k >= need (the MIN-IO criterion, formula
/// 3.3).  Returns 0 if no k in [1, limit] avoids temporary I/O.
int MinNoIoDegree(const std::vector<PeLoadInfo>& avail, int64_t need,
                  int limit);

/// All k in [1, limit] whose top-k selection avoids temporary I/O.
std::vector<int> AllNoIoDegrees(const std::vector<PeLoadInfo>& avail,
                                int64_t need, int limit);

/// Overflow pages if the top-k selection is used: max(0, need - minfree*k).
int64_t OverflowPages(const std::vector<PeLoadInfo>& avail, int64_t need,
                      int k);

/// k in [1, limit] minimizing overflow; ties broken toward `prefer_larger` ?
/// the largest : the smallest such k.
int MinOverflowDegree(const std::vector<PeLoadInfo>& avail, int64_t need,
                      int limit, bool prefer_larger);

/// k in [1, limit] minimizing overflow; ties broken toward the k closest to
/// `target` (MIN-IO-SUOPT's fallback keeps leaning on p_su-opt).
int MinOverflowDegreeNear(const std::vector<PeLoadInfo>& avail, int64_t need,
                          int limit, int target);

/// RateMatch degree (Mehta & DeWitt [20]): smallest p whose aggregate
/// derated consumption rate matches the scan production rate.  Grows with
/// the average CPU/disk utilization; ignores memory.
int RateMatchDegree(const JoinPlanRequest& req, double u_cpu, double u_disk,
                    int num_pes);

}  // namespace internal
}  // namespace pdblb

#endif  // PDBLB_CORE_STRATEGIES_H_
