// Copyright 2026 the pdblb authors. MIT license.

#include "runner/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "simkern/tracer.h"

#include "engine/cluster.h"
#include "simkern/task.h"

namespace pdblb::runner {

uint64_t PointSeed(uint64_t root_seed, size_t grid_index) {
  // splitmix64 finalizer over the pair; the golden-ratio offset keeps
  // index 0 from collapsing onto the raw root seed.
  uint64_t x = root_seed + 0x9e3779b97f4a7c15ULL * (grid_index + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t Sweep::Filter(const std::string& substring) {
  if (substring.empty()) return points_.size();
  std::vector<SweepPoint> kept;
  kept.reserve(points_.size());
  for (SweepPoint& p : points_) {
    if (p.name.find(substring) != std::string::npos) {
      kept.push_back(std::move(p));
    }
  }
  points_ = std::move(kept);
  return points_.size();
}

std::vector<SweepResult> Sweep::Run(const SweepOptions& options) const {
  const size_t total = points_.size();
  std::vector<SweepResult> results(total);
  if (total == 0) return results;

  std::atomic<size_t> next_index{0};
  std::atomic<size_t> finished{0};
  std::mutex callback_mutex;
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&]() {
    for (;;) {
      size_t i = next_index.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      const SweepPoint& point = points_[i];
      try {
        SystemConfig cfg = point.config;
        if (options.derive_point_seeds) {
          cfg.seed = PointSeed(options.root_seed, point.declared_index);
        }
        if (options.shards > 0) {
          // Clamped per point, like jobs is clamped to the point count: a
          // 10-PE grid point under --shards=16 runs with 10, not with a
          // config its own Validate() rejects.
          cfg.shards = std::min(options.shards, cfg.num_pes);
        }
        if (!options.trace_path.empty()) {
          cfg.trace.enabled = true;
          cfg.trace.capacity = options.trace_capacity;
        }
        if (!options.fault_spec.empty()) {
          Status st = ParseFaultSpec(options.fault_spec, &cfg.faults);
          if (!st.ok()) throw std::runtime_error(st.ToString());
        }
        if (options.query_timeout_ms >= 0.0) {
          cfg.faults.query_timeout_ms = options.query_timeout_ms;
        }
        if (options.migration_bw_mbps > 0.0) {
          cfg.elastic.migration_bw_mbps = options.migration_bw_mbps;
        }
        if (!options.eviction.empty()) {
          Status st = ParseEvictionPolicy(options.eviction,
                                          &cfg.buffer.eviction);
          if (!st.ok()) throw std::runtime_error(st.ToString());
        }
        Cluster cluster(cfg);
        SweepResult& slot = results[i];
        slot.grid_index = i;
        slot.point = point;
        slot.point.config = cfg;  // record the effective (seeded) config
        slot.report = cluster.Run();
        if (!options.trace_path.empty()) {
          // Per-point trace dump, named by the declared grid index so a
          // filtered or multi-job run produces the same files.  Distinct
          // paths per point: safe to write from concurrent workers.
          std::string path = options.trace_path + "." +
                             std::to_string(point.declared_index) + ".csv";
          // PDBLB_TRACE=OFF builds have no tracer on the cluster; an empty
          // Tracer (compiled unconditionally) writes the identical
          // header-only file, keeping the --trace file set and format the
          // same across build modes.
          Status st = cluster.tracer() != nullptr
                          ? cluster.tracer()->WriteCsv(path)
                          : sim::Tracer(/*capacity=*/1).WriteCsv(path);
          if (!st.ok()) throw std::runtime_error(st.ToString());
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        next_index.store(total, std::memory_order_relaxed);  // drain queue
        sim::TrimFrameArenaThreadCache();  // don't strand frames on exit
        return;
      }
      // Heterogeneous grids allocate very different coroutine-frame sizes
      // per point; returning the thread's free lists here keeps a worker
      // from holding the peak of every point it ever ran.
      sim::TrimFrameArenaThreadCache();
      size_t done = finished.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options.on_point_done) {
        std::lock_guard<std::mutex> lock(callback_mutex);
        options.on_point_done(point, results[i].report, done, total);
      }
    }
  };

  size_t jobs = options.jobs < 1 ? 1 : static_cast<size_t>(options.jobs);
  if (jobs > total) jobs = total;
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::string ResultsCsv(const std::vector<SweepResult>& results) {
  std::string out =
      "name,x,series,join_rt_ms,avg_degree,cpu_util,disk_util,"
      "mem_util,temp_pages_per_join,join_qps,oltp_rt_ms,oltp_tps,"
      "scan_rt_ms,update_rt_ms,multiway_rt_ms,lock_waits,"
      "queries_timed_out,queries_retried,queries_failed,queries_degraded,"
      "pe_crashes,pe_recoveries,"
      "queries_shed,io_errors,io_retries,link_partitions,slow_disk_ms,"
      "pes_added,pes_drained,fragments_migrated,migration_pages_moved,"
      "migration_pages_discarded,migrations_replanned,"
      "buf_hit_ratio,buf_hits,buf_misses,buf_evictions,buf_writebacks,"
      "kernel_events,kernel_handoffs,seed\n";
  for (const SweepResult& res : results) {
    const MetricsReport& r = res.report;
    // Point/series names are caller-controlled and unbounded, so size the
    // row exactly instead of risking silent truncation of a fixed buffer.
    auto format_row = [&](char* buf, size_t cap) {
      return std::snprintf(
          buf, cap,
          "\"%s\",%s,\"%s\",%.3f,%.3f,%.4f,%.4f,%.4f,%.2f,%.3f,%.3f,%.3f,"
          "%.3f,%.3f,%.3f,%lld,%lld,%lld,%lld,%lld,%lld,%lld,"
          "%lld,%lld,%lld,%lld,%.3f,"
          "%lld,%lld,%lld,%lld,%lld,%lld,"
          "%.4f,%lld,%lld,%lld,%lld,%llu,%llu,"
          "%llu\n",
          res.point.name.c_str(), res.point.x_label.c_str(),
          res.point.series.c_str(), r.join_rt_ms, r.avg_degree,
          r.cpu_utilization, r.disk_utilization, r.memory_utilization,
          r.temp_pages_written_per_join, r.join_throughput_qps, r.oltp_rt_ms,
          r.oltp_throughput_tps, r.scan_rt_ms, r.update_rt_ms,
          r.multiway_rt_ms, static_cast<long long>(r.lock_waits),
          static_cast<long long>(r.queries_timed_out),
          static_cast<long long>(r.queries_retried),
          static_cast<long long>(r.queries_failed),
          static_cast<long long>(r.queries_degraded),
          static_cast<long long>(r.pe_crashes),
          static_cast<long long>(r.pe_recoveries),
          static_cast<long long>(r.queries_shed),
          static_cast<long long>(r.io_errors),
          static_cast<long long>(r.io_retries),
          static_cast<long long>(r.link_partitions), r.slow_disk_ms,
          static_cast<long long>(r.pes_added),
          static_cast<long long>(r.pes_drained),
          static_cast<long long>(r.fragments_migrated),
          static_cast<long long>(r.migration_pages_moved),
          static_cast<long long>(r.migration_pages_discarded),
          static_cast<long long>(r.migrations_replanned),
          r.buffer_hit_ratio, static_cast<long long>(r.buffer_hits),
          static_cast<long long>(r.buffer_misses),
          static_cast<long long>(r.buffer_evictions),
          static_cast<long long>(r.buffer_writebacks),
          static_cast<unsigned long long>(r.kernel_events),
          static_cast<unsigned long long>(r.kernel_handoffs),
          static_cast<unsigned long long>(res.point.config.seed));
    };
    int needed = format_row(nullptr, 0);
    std::string line(static_cast<size_t>(needed) + 1, '\0');
    format_row(line.data(), line.size());
    line.resize(static_cast<size_t>(needed));  // drop the NUL
    out += line;
  }
  return out;
}

Status WriteResultsCsv(const std::string& path,
                       const std::vector<SweepResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot write CSV to " + path);
  }
  std::string csv = ResultsCsv(results);
  size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  if (written != csv.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace pdblb::runner
