// Copyright 2026 the pdblb authors. MIT license.
//
// Experiment runner: executes a declared grid of simulation configurations
// ("sweep points") on a pool of worker threads and collects the results in
// deterministic grid order.  Every figure and ablation driver in bench/ is a
// thin declaration of such a grid; the runner is the shared machinery that
// turns it into numbers.
//
//   runner::Sweep sweep;
//   sweep.Add({"fig5/LUM/40", "LUM", 40, "40", cfg});
//   runner::SweepOptions opts;
//   opts.jobs = 8;
//   std::vector<runner::SweepResult> r = sweep.Run(opts);   // grid order
//   runner::WriteResultsCsv("fig5.csv", r);
//
// Determinism contract: the result vector and the CSV depend only on the
// grid declaration and the root seed — never on the number of workers or on
// thread scheduling.  Three mechanisms guarantee this:
//  * each point runs a private Cluster (own Scheduler, RNG streams, stats);
//    the simulation library keeps no cross-instance mutable state;
//  * the per-point seed derives from (root seed, grid index), not from
//    execution order: point i sees the same seed whether it runs first on
//    one thread or last of eight;
//  * results land in a pre-sized slot per grid index and the CSV contains
//    only simulation-deterministic fields (no wall-clock rates).

#ifndef PDBLB_RUNNER_SWEEP_H_
#define PDBLB_RUNNER_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "engine/metrics.h"

namespace pdblb::runner {

/// Per-point seed derivation: splitmix64 over (root_seed, grid_index).
/// Stable across runs, platforms and worker counts, and distinct points get
/// decorrelated streams even for adjacent grid indices.
uint64_t PointSeed(uint64_t root_seed, size_t grid_index);

/// One declared grid point of a figure/ablation sweep.
struct SweepPoint {
  std::string name;     ///< unique path-style id, e.g. "fig5/p_su-opt+LUM/40"
  std::string series;   ///< figure legend entry this point belongs to
  double x = 0.0;       ///< numeric x coordinate (for plotting/sorting)
  std::string x_label;  ///< printed x value, e.g. "40" or "1.0%"
  SystemConfig config;  ///< full simulation configuration for the point
  /// Position in the grid as declared (assigned by Sweep::Add, stable
  /// across Filter).  Seeds derive from this, so a filtered re-run
  /// reproduces exactly the points of the full sweep.
  size_t declared_index = 0;
};

/// One completed grid point, in declaration order.
struct SweepResult {
  size_t grid_index = 0;
  SweepPoint point;
  MetricsReport report;
};

struct SweepOptions {
  /// Worker threads; clamped to [1, #points].  Results are identical for
  /// every value — jobs only changes wall-clock time.
  int jobs = 1;

  /// Root seed of the experiment.  Each point runs with
  /// config.seed = PointSeed(root_seed, point.declared_index) unless
  /// derive_point_seeds is off (then the declared per-point config.seed is
  /// used verbatim).
  uint64_t root_seed = 42;
  bool derive_point_seeds = true;

  /// Invoked after each completed point (serialized under an internal
  /// mutex, so it may print).  `finished` counts completed points, in
  /// completion — not grid — order.
  std::function<void(const SweepPoint& point, const MetricsReport& report,
                     size_t finished, size_t total)>
      on_point_done;

  /// When positive, overrides every point's config.shards: the number of
  /// scheduler shards for intra-simulation execution (the drivers' --shards
  /// flag), clamped per point to its num_pes.  Like --jobs, results are
  /// bit-identical for every value — see SystemConfig::shards for the
  /// honest scope (the figure drivers run one logical shard group; the
  /// shard-confined engine lives in engine/confined.h, docs/sharding.md).
  int shards = 0;

  /// When non-empty, parsed as a fault spec (common/config.h
  /// ParseFaultSpec: "crash@8000:pe3;recover@12000:pe3", "rate=0.5;...")
  /// and applied on top of every point's config.faults — the drivers'
  /// --faults flag.  Fault timing draws come from a dedicated RNG stream,
  /// so the CSV stays bit-identical across --jobs/--shards with faults on.
  std::string fault_spec;
  /// When >= 0, overrides every point's config.faults.query_timeout_ms —
  /// the drivers' --query-timeout-ms flag (0 disables timeouts).
  double query_timeout_ms = -1.0;

  /// When > 0, overrides every point's config.elastic.migration_bw_mbps —
  /// the drivers' --migration-bw flag (MB/s granted to elastic fragment
  /// migration; engine/elastic.h).  Only observable when the fault spec
  /// schedules addpe/drainpe events.
  double migration_bw_mbps = -1.0;

  /// When non-empty, parsed as an eviction-policy name (common/config.h
  /// ParseEvictionPolicy: "lru", "lru-k", "lfu", "clock") and applied to
  /// every point's config.buffer.eviction — the drivers' --eviction flag.
  std::string eviction;

  /// When non-empty, event tracing is enabled for every point (overriding
  /// point.config.trace) and each point's retained trace is dumped to
  /// "<trace_path>.<declared_index>.csv" as it completes.  File names
  /// derive from the grid index, so — like the CSV — the set of trace
  /// files and their bytes are identical for every --jobs value.  In
  /// PDBLB_TRACE=OFF builds each file holds only the CSV header.
  std::string trace_path;
  /// Ring capacity per point when trace_path is set.
  int64_t trace_capacity = 1 << 20;
};

/// A declared grid of sweep points.
class Sweep {
 public:
  void Add(SweepPoint point) {
    point.declared_index = points_.size();
    points_.push_back(std::move(point));
  }

  /// Keeps only points whose name contains `substring`, preserving grid
  /// order and each survivor's declared_index (hence its derived seed —
  /// `--filter` is a true subset run of the full sweep).  Returns the
  /// number of survivors.
  size_t Filter(const std::string& substring);

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const std::vector<SweepPoint>& points() const { return points_; }

  /// Executes every point and returns the results in grid order.  Safe to
  /// call from one thread at a time; the Sweep itself is not mutated.
  /// Exceptions thrown by a point (e.g. Cluster misuse) abort the remaining
  /// queue and are rethrown on the calling thread.
  std::vector<SweepResult> Run(const SweepOptions& options = {}) const;

 private:
  std::vector<SweepPoint> points_;
};

/// CSV header + rows for the deterministic result columns, in grid order.
/// Wall-clock derived metrics (kernel_events_per_sec, wall_seconds) are
/// deliberately excluded so the bytes are identical for every --jobs value.
std::string ResultsCsv(const std::vector<SweepResult>& results);

/// Writes ResultsCsv(results) to `path`.
Status WriteResultsCsv(const std::string& path,
                       const std::vector<SweepResult>& results);

}  // namespace pdblb::runner

#endif  // PDBLB_RUNNER_SWEEP_H_
