// Copyright 2026 the pdblb authors. MIT license.
//
// PAROP: the parallelization meta-operator of the paper's query processing
// system (Section 4) — the machinery shared by every parallel executor:
// dynamic data redistribution between operator instances, subquery startup
// message delivery, and the distributed commit rounds.

#ifndef PDBLB_ENGINE_PAROP_H_
#define PDBLB_ENGINE_PAROP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/relation.h"
#include "engine/cluster.h"
#include "simkern/channel.h"
#include "simkern/task.h"
#include "simkern/task_group.h"

namespace pdblb::parop {

/// A redistribution batch: some tuples travelling to one operator instance.
struct Batch {
  int64_t tuples = 0;
};
using BatchChannel = sim::Channel<Batch>;

/// `total` split into `parts` near-equal shares (remainder spread left).
std::vector<int64_t> SplitEvenly(int64_t total, int parts);

/// Charges `instructions` on `pe`'s CPU server.  Returns the resource's
/// frameless Use awaiter directly — `co_await UseCpu(...)` suspends the
/// caller on the CPU's wait queue without an intermediate coroutine frame.
inline auto UseCpu(Cluster& c, PeId pe, int64_t instructions) {
  return c.pe(pe).cpu().Use(
      InstructionsToMs(instructions, c.config().mips_per_pe));
}

/// Ships one tuple batch over the network, then hands it to the consumer.
sim::Task<> SendBatch(Cluster& c, PeId src, PeId dst, int64_t tuples,
                      int tuple_size, BatchChannel* channel);

/// Wire + receiver-side cost of a control message whose send costs the
/// coordinator already serialized itself.
sim::Task<> DeliverControl(Cluster& c, PeId dest);

/// One participant's part of the read-only-optimized commit (single round):
/// receive the commit message, release resources, acknowledge.
sim::Task<> CommitRound(Cluster& c, PeId coord, PeId dest);

/// One participant's part of a full two-phase commit (update transactions):
/// prepare round with a forced log write, then the commit round.
sim::Task<> TwoPhaseCommitRounds(Cluster& c, PeId coord, PeId dest);

/// Acquires a long page-level read lock for a read-only (sub)query under
/// CcScheme::kTwoPhaseLocking.  A read-only deadlock victim releases its
/// PE-local read locks (breaking any cycle through this node), backs off
/// and re-acquires — the cursor-stability-style degradation a performance
/// simulator can afford for queries that a real system would run under
/// multiversion CC anyway (paper footnote 1).
sim::Task<> LockPageShared(Cluster& c, PeId node, TxnId txn, PageKey page);

/// Parallel scan of one fragment with dynamic redistribution: reads the
/// selected page range through the buffer, charges per-tuple CPU, and
/// streams page-sized packets to the destinations.  `dest_frac` holds the
/// partitioning function's per-destination tuple fractions.  When
/// `read_lock_txn` is non-zero (CcScheme::kTwoPhaseLocking), every scanned
/// page is read-locked for that transaction first (at the fragment owner's
/// lock manager).
///
/// `fragment_owner` names the PE whose fragment is scanned; -1 means `node`
/// scans its own fragment (Shared Nothing).  Under Shared Disk a scan
/// processor may scan any fragment — the pages come off the shared spindles
/// through `node`'s storage adapter, while the page keys (and locks) belong
/// to the owner.
sim::Task<> ScanRedistribute(
    Cluster& c, PeId node, const Relation& rel, int64_t sel_tuples,
    const std::vector<PeId>& dests, const std::vector<double>& dest_frac,
    const std::vector<std::unique_ptr<BatchChannel>>& channels,
    sim::TaskGroup& sends, TxnId read_lock_txn = 0, PeId fragment_owner = -1);

/// Redistributes `tuples` tuples already materialized at `src` (an
/// intermediate result) to the destinations: per-tuple output CPU plus
/// packetized network transfers.  Used between pipeline stages of multi-way
/// joins.
sim::Task<> Redistribute(
    Cluster& c, PeId src, int64_t tuples, int tuple_size,
    const std::vector<PeId>& dests, const std::vector<double>& dest_frac,
    const std::vector<std::unique_ptr<BatchChannel>>& channels,
    sim::TaskGroup& sends);

}  // namespace pdblb::parop

#endif  // PDBLB_ENGINE_PAROP_H_
