// Copyright 2026 the pdblb authors. MIT license.
//
// Elastic cluster resize: online PE add/drain with deterministic fragment
// migration.
//
// Membership events (addpe@ms:peN / drainpe@ms:peN in the fault grammar)
// flow from the FaultInjector into the ElasticityManager, which flips the
// PE's membership flag and the control node's planning view immediately and
// then rebalances fragment *ownership* in the background:
//
//  * RebalancePlanner — a pure, deterministic greedy planner (no RNG): a
//    draining PE's fragments are vacated largest-first to the least-loaded
//    members; a joining PE is filled from the most-loaded donors until one
//    more fragment would overshoot the per-PE page target.  Existing
//    members are never shuffled among themselves — a resize moves only the
//    fragments the resize requires.
//
//  * FragmentMigrator — one coroutine per fragment move: takes an exclusive
//    whole-fragment migration latch at the *home* PE's lock manager (key
//    {relation_id, -(home+1)}, a tuple-id no page lock can collide with),
//    then copies the fragment batch-by-batch: donor ReadStriped ->
//    Network::TransferBulk -> destination BufferManager::IngestBatch, each
//    batch throttled to ElasticConfig::migration_bw_mbps.  Only after the
//    last batch lands does the OwnershipMap flip, so queries route to
//    exactly one owner at every instant.
//
// Crash unwind: a crash of the donor, destination or home PE mid-migration
// cancels the in-flight move; the coroutine frame unwinds through its RAII
// guards (migration latch released, destination staging reservation
// returned, partial destination pages discarded and counted), ownership
// stays with the donor, and the manager re-plans around the dead PE.
//
// Determinism: the planner draws no random numbers and iterates
// deterministically ordered state; migrations are ordinary calendar
// coroutines.  Without addpe/drainpe events the manager spawns nothing and
// OwnershipMap::Owner is the identity, so resize-free runs are byte-
// identical to a pre-elastic build.

#ifndef PDBLB_ENGINE_ELASTIC_H_
#define PDBLB_ENGINE_ELASTIC_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/config.h"
#include "common/units.h"
#include "simkern/latch.h"
#include "simkern/task.h"

namespace pdblb {

class Cluster;

/// One planned fragment move: the fragment of `relation_id` homed at
/// `home`, currently owned by `from`, is to be migrated to `to`.
struct FragmentMove {
  int32_t relation_id = 0;
  PeId home = -1;
  PeId from = -1;
  PeId to = -1;
  int64_t pages = 0;
};

/// Declustering-aware rebalance planning, pure and deterministic (directly
/// unit-tested; the ElasticityManager feeds it live cluster state).
namespace planner {

/// One fragment as the planner sees it.
struct Fragment {
  int32_t relation_id = 0;
  PeId home = -1;
  PeId owner = -1;  ///< current owner (home until a migration committed)
  int64_t pages = 0;
};

/// One PE as the planner sees it.
struct PeState {
  bool receive = false;  ///< member, alive, not draining: may gain fragments
  bool alive = false;    ///< not failed: its fragments can be read (donor)
  bool vacate = false;   ///< draining: must lose every owned fragment
  bool fill = false;     ///< freshly added: fill up to the per-PE target
};

/// Plans the moves for the current state.  Two phases:
///  1. vacate: every fragment owned by an alive `vacate` PE goes to the
///     least-loaded `receive` PE (largest fragment first; ties by relation
///     id then home id; destination ties by lowest PE id);
///  2. fill: each `fill` PE (ascending id) takes the largest fragment from
///     the most-loaded non-fill `receive` PE as long as the move strictly
///     narrows the donor/newcomer gap (donor stays at least as loaded).
/// Fragments owned by failed PEs are skipped (re-planned after recovery).
/// Returns moves in execution order; empty when the state is settled.
std::vector<FragmentMove> Plan(const std::vector<Fragment>& fragments,
                               const std::vector<PeState>& pes);

}  // namespace planner

/// Owns the membership state machine and the migration queue.  Constructed
/// by the Cluster only when SystemConfig::faults.ElasticEnabled(); all
/// hooks are invoked by the FaultInjector.
class ElasticityManager {
 public:
  explicit ElasticityManager(Cluster& cluster);

  // --- membership events (FaultInjector::ApplyAt) --------------------------
  /// addpe: the spare joins the planning views immediately and is filled by
  /// a background rebalance.  No-op if already a member.
  void OnAddPe(PeId pe);
  /// drainpe: the PE leaves the planning views immediately (no new work is
  /// placed on it); its fragments keep routing to it until each one's
  /// migration commits.  No-op if not a member.
  void OnDrainPe(PeId pe);

  // --- crash/recovery hooks (FaultInjector::ApplyCrash/ApplyRecovery) -----
  /// Aborts the in-flight migration if the crashed PE is its donor,
  /// destination or home; the cancelled frame unwinds its latch and staging
  /// reservation and the manager re-plans.  Call before
  /// BufferManager::OnCrash so the staging reservation is gone by the time
  /// the buffer asserts a clean slate.
  void OnPeCrash(PeId pe);
  /// A recovered draining PE resumes vacating its remaining fragments.
  void OnPeRecovered(PeId pe);

  /// True while `pe` is draining (non-member still owning fragments).
  bool Draining(PeId pe) const { return draining_.count(pe) > 0; }
  /// True while a rebalance (planning or migrating) is in flight.
  bool RebalanceActive() const { return running_; }

 private:
  struct MigrationState {
    PeId home = -1;
    PeId from = -1;
    PeId to = -1;
    uint64_t work_id = 0;
    sim::Latch* done = nullptr;
    bool aborted = false;
    int64_t pages_done = 0;  ///< committed batches (discarded on abort)
  };

  /// Snapshots live cluster state into planner inputs and plans.
  std::vector<FragmentMove> PlanCurrent();
  /// Pages currently owned by `pe` across the declustered relations.
  int64_t OwnedPages(PeId pe);
  /// Records completed drains (a draining PE that owns nothing is done).
  void FinishDrains();
  /// Starts the rebalance coroutine if it is not already running.
  void KickRebalance();
  /// Sequential rebalance driver: plan, migrate each move, re-plan until
  /// the plan comes back empty (one migration in flight at a time).
  sim::Task<> RunRebalance();
  /// Runs one move start-to-commit; false when aborted (re-plan needed).
  sim::Task<bool> ExecuteMove(FragmentMove move);
  /// The migrator coroutine (spawned with an id so OnPeCrash can cancel).
  sim::Task<> MigrateFragment(FragmentMove move, MigrationState* st);

  Cluster& cluster_;
  std::set<PeId> draining_;
  std::set<PeId> added_;     ///< every PE ever added (refill after a crash)
  std::set<PeId> fill_;      ///< added PEs not yet filled to target
  MigrationState* active_ = nullptr;
  bool running_ = false;
  bool dirty_ = false;  ///< membership changed while a rebalance ran
};

}  // namespace pdblb

#endif  // PDBLB_ENGINE_ELASTIC_H_
