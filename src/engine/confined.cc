// Copyright 2026 the pdblb authors. MIT license.

#include "engine/confined.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <coroutine>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "catalog/relation.h"
#include "iosim/disk.h"
#include "netsim/shard_mailbox.h"
#include "simkern/resource.h"
#include "simkern/rng.h"
#include "simkern/scheduler.h"
#include "simkern/sharded.h"
#include "simkern/task.h"
#include "simkern/trace_ring.h"

namespace pdblb {
namespace {

using sim::Resource;
using sim::Rng;
using sim::Scheduler;
using sim::ShardedScheduler;
using sim::Task;
using sim::TraceSubsystem;
using sim::TraceTag;

// Control-plane message payloads (each fits one packet); tuples are the
// paper's 100-byte records, so result messages packetize.
constexpr int64_t kReportBytes = 64;
constexpr int64_t kPlanRequestBytes = 128;
constexpr int64_t kPlanReplyBytes = 128;
constexpr int64_t kScanRequestBytes = 256;
constexpr int64_t kReleaseBytes = 64;
constexpr int64_t kAckBytes = 64;
constexpr int64_t kTupleBytes = 100;

// Everything in this struct is touched only from the owning PE's shard.
struct ConfinedPe {
  std::unique_ptr<Resource> cpu;
  std::unique_ptr<DiskArray> disks;  // null with use_disks = false
  Rng rng{0};
  int64_t queries = 0;
  double sum_rt = 0.0;
  double max_rt = 0.0;
  double done_at = 0.0;
  int64_t reports_sent = 0;
  double last_busy = 0.0;  // BusyIntegral at the previous report
};

// Touched only from the control entity's shard.
struct ControlState {
  std::unique_ptr<Resource> cpu;
  std::vector<double> cpu_util;  // last reported utilization per PE
  int64_t reports = 0;
  int64_t plans = 0;
};

struct ConfinedSim {
  const ConfinedClusterOptions* opt = nullptr;
  ShardedScheduler* ss = nullptr;
  ShardWire* wire = nullptr;
  std::vector<ConfinedPe> pes;
  ControlState control;
  int control_entity = 0;
  double mips = 0.0;

  SimTime Ms(int64_t instructions) const {
    return InstructionsToMs(instructions, mips);
  }
  // Endpoint CPU legs of a wire message, Network::Transfer's cost model:
  // send/receive overhead plus one buffer copy per packet.
  SimTime SendCost(int64_t bytes) const {
    return Ms(opt->base.costs.send_message +
              opt->base.costs.copy_message * wire->PacketsFor(bytes));
  }
  SimTime RecvCost(int64_t bytes) const {
    return Ms(opt->base.costs.receive_message +
              opt->base.costs.copy_message * wire->PacketsFor(bytes));
  }
};

// Fan-in gate living in the coordinator coroutine's frame; every touch
// (Arrive from reply handlers, Wait from the coordinator) happens on the
// coordinator's shard, so no synchronization is needed.
struct WakeGate {
  explicit WakeGate(int n) : pending(n) {}
  int pending;
  std::coroutine_handle<> waiter;

  auto Wait() {
    struct Awaiter {
      WakeGate* g;
      bool await_ready() const noexcept { return g->pending == 0; }
      void await_suspend(std::coroutine_handle<> h) noexcept { g->waiter = h; }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }
  void Arrive() {
    assert(pending > 0);
    if (--pending == 0 && waiter) {
      std::coroutine_handle<> h = waiter;
      waiter = {};
      h.resume();
    }
  }
};

// One-shot reply slot for the plan round trip (same shard discipline).
struct PlanGate {
  bool ready = false;
  std::vector<int> plan;
  std::coroutine_handle<> waiter;

  auto Wait() {
    struct Awaiter {
      PlanGate* g;
      bool await_ready() const noexcept { return g->ready; }
      void await_suspend(std::coroutine_handle<> h) noexcept { g->waiter = h; }
      std::vector<int> await_resume() noexcept { return std::move(g->plan); }
    };
    return Awaiter{this};
  }
  void Fulfill(std::vector<int> p) {
    plan = std::move(p);
    ready = true;
    if (waiter) {
      std::coroutine_handle<> h = waiter;
      waiter = {};
      h.resume();
    }
  }
};

// The paper's LEAST_UTILIZED placement over the control node's (possibly
// stale — reports every control_report_interval_ms) view: the k least
// CPU-utilized PEs other than the coordinator, ties by PE id.  Pure
// function of control state, so deterministic and shard-count-invariant.
std::vector<int> ChooseProcessors(const ConfinedSim& s, int coord) {
  const int n = s.opt->num_pes;
  const int k = std::min(s.opt->scan_processors, n - 1);
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&s](int a, int b) {
    double ua = s.control.cpu_util[static_cast<size_t>(a)];
    double ub = s.control.cpu_util[static_cast<size_t>(b)];
    return ua != ub ? ua < ub : a < b;
  });
  std::vector<int> plan;
  plan.reserve(static_cast<size_t>(k));
  for (int pe : order) {
    if (pe == coord) continue;
    plan.push_back(pe);
    if (static_cast<int>(plan.size()) == k) break;
  }
  return plan;
}

// Control entity: serve one placement request and ship the reply back.
Task<> ServePlan(ConfinedSim& s, int coord, PlanGate* gate) {
  const CpuCosts& costs = s.opt->base.costs;
  ++s.control.plans;
  // Scan of the per-PE view to rank candidates.
  co_await s.control.cpu->Use(
      s.Ms(costs.probe_hash_table * static_cast<int64_t>(s.opt->num_pes)));
  std::vector<int> plan = ChooseProcessors(s, coord);
  co_await s.control.cpu->Use(s.SendCost(kPlanReplyBytes));
  s.wire->Deliver(s.control_entity, coord, kPlanReplyBytes,
                  *s.pes[static_cast<size_t>(coord)].cpu,
                  s.RecvCost(kPlanReplyBytes),
                  [gate, plan]() mutable { gate->Fulfill(std::move(plan)); });
}

// Participant: read the local fragment, produce tuples, ship them back.
// The coordinator's "remote disk read" is exactly this shape — a request
// message, a local-only I/O on the owning shard, and a result handback.
Task<> ScanFragment(ConfinedSim& s, int p, int coord, int64_t start_page,
                    WakeGate* gate) {
  const ConfinedClusterOptions& opt = *s.opt;
  const CpuCosts& costs = opt.base.costs;
  ConfinedPe& pe = s.pes[static_cast<size_t>(p)];
  if (pe.disks && opt.pages_per_fragment > 0) {
    co_await pe.disks->ReadStriped(PageKey{1, start_page},
                                   opt.pages_per_fragment);
  }
  co_await pe.cpu->Use(s.Ms(opt.result_tuples *
                            (costs.read_tuple + costs.write_output_tuple)));
  const int64_t bytes = opt.result_tuples * kTupleBytes;
  co_await pe.cpu->Use(s.SendCost(bytes));
  s.wire->Deliver(p, coord, bytes, *s.pes[static_cast<size_t>(coord)].cpu,
                  s.RecvCost(bytes), [gate] { gate->Arrive(); });
}

// Participant EOT leg: drop the fragment's share of the query (lock
// release in the paper's model) and ack the coordinator.
Task<> ReleaseFragment(ConfinedSim& s, int p, int coord, WakeGate* gate) {
  const CpuCosts& costs = s.opt->base.costs;
  ConfinedPe& pe = s.pes[static_cast<size_t>(p)];
  co_await pe.cpu->Use(s.Ms(costs.terminate_txn / 4));
  co_await pe.cpu->Use(s.SendCost(kAckBytes));
  s.wire->Deliver(p, coord, kAckBytes, *s.pes[static_cast<size_t>(coord)].cpu,
                  s.RecvCost(kAckBytes), [gate] { gate->Arrive(); });
}

// One closed-loop query slot on its coordinator PE.  The coroutine runs on
// the coordinator's shard for its whole life; everything remote is a
// message (plan round trip, scan fan-out/fan-in, release round) or a
// RemoteUse request/handback.
Task<> QuerySlot(ConfinedSim& s, int coord) {
  const ConfinedClusterOptions& opt = *s.opt;
  const CpuCosts& costs = opt.base.costs;
  ConfinedPe& pe = s.pes[static_cast<size_t>(coord)];
  Scheduler& sched = s.ss->home(coord);
  for (int q = 0; q < opt.queries_per_slot; ++q) {
    const SimTime start = sched.Now();
    co_await pe.cpu->Use(s.Ms(costs.initiate_txn));

    // Placement: request/reply round trip to the control entity.
    PlanGate plan_gate;
    co_await pe.cpu->Use(s.SendCost(kPlanRequestBytes));
    s.wire->Deliver(coord, s.control_entity, kPlanRequestBytes,
                    *s.control.cpu, s.RecvCost(kPlanRequestBytes),
                    [&s, coord, gate = &plan_gate] {
                      s.ss->home(s.control_entity)
                          .Spawn(ServePlan(s, coord, gate));
                    });
    std::vector<int> procs = co_await plan_gate.Wait();
    assert(!procs.empty());

    // Catalog probe on the first participant: a remote CPU touch that in
    // the unconfined engine would be a direct Use on that PE's resource —
    // here it is the RemoteUse request/handback pair.
    co_await sim::RemoteUse(*s.ss, coord, procs[0],
                            *s.pes[static_cast<size_t>(procs[0])].cpu,
                            s.Ms(costs.read_tuple * 4));

    // Fragment placement draw from the coordinator's own stream.
    const int64_t start_page = pe.rng.UniformInt(0, 1 << 20);

    // Scan fan-out, then fan-in of the shipped result tuples.
    WakeGate results(static_cast<int>(procs.size()));
    for (int p : procs) {
      co_await pe.cpu->Use(s.SendCost(kScanRequestBytes));
      s.wire->Deliver(coord, p, kScanRequestBytes,
                      *s.pes[static_cast<size_t>(p)].cpu,
                      s.RecvCost(kScanRequestBytes),
                      [&s, p, coord, start_page, gate = &results] {
                        s.ss->home(p).Spawn(
                            ScanFragment(s, p, coord, start_page, gate));
                      });
    }
    co_await results.Wait();

    // Merge/aggregate the shipped tuples locally.
    co_await pe.cpu->Use(
        s.Ms(static_cast<int64_t>(procs.size()) * opt.result_tuples *
             costs.probe_hash_table));

    // EOT: release round to every participant, then local termination.
    WakeGate acks(static_cast<int>(procs.size()));
    for (int p : procs) {
      co_await pe.cpu->Use(s.SendCost(kReleaseBytes));
      s.wire->Deliver(coord, p, kReleaseBytes,
                      *s.pes[static_cast<size_t>(p)].cpu,
                      s.RecvCost(kReleaseBytes),
                      [&s, p, coord, gate = &acks] {
                        s.ss->home(p).Spawn(
                            ReleaseFragment(s, p, coord, gate));
                      });
    }
    co_await acks.Wait();
    co_await pe.cpu->Use(s.Ms(costs.terminate_txn));

    const double rt = sched.Now() - start;
    ++pe.queries;
    pe.sum_rt += rt;
    if (rt > pe.max_rt) pe.max_rt = rt;
    pe.done_at = sched.Now();
  }
}

// Stage-2 load reporting: the only path by which control state learns
// about a PE.  The utilization is computed on the PE's own shard from its
// own busy integral; only the finished number crosses the wire.
Task<> ReportLoop(ConfinedSim& s, int pe_id) {
  const ConfinedClusterOptions& opt = *s.opt;
  ConfinedPe& pe = s.pes[static_cast<size_t>(pe_id)];
  Scheduler& sched = s.ss->home(pe_id);
  const SimTime interval = opt.base.control_report_interval_ms;
  for (int r = 0; r < opt.report_rounds; ++r) {
    co_await sched.Delay(interval,
                         TraceTag(TraceSubsystem::kKernel,
                                  static_cast<uint16_t>(pe_id)));
    const double busy = pe.cpu->BusyIntegral();
    const double util = (busy - pe.last_busy) / interval;
    pe.last_busy = busy;
    co_await pe.cpu->Use(s.SendCost(kReportBytes));
    ++pe.reports_sent;
    s.wire->Deliver(pe_id, s.control_entity, kReportBytes, *s.control.cpu,
                    s.RecvCost(kReportBytes), [&s, pe_id, util] {
                      s.control.cpu_util[static_cast<size_t>(pe_id)] = util;
                      ++s.control.reports;
                    });
  }
}

}  // namespace

ConfinedClusterReport RunConfinedCluster(
    const ConfinedClusterOptions& options) {
  assert(options.num_pes >= 2);
  assert(options.scan_processors >= 1);
  const int entities = options.num_pes + 1;  // + the control entity
  assert(options.shards >= 1 && options.shards <= entities);

  ShardedScheduler::Options so;
  so.num_shards = options.shards;
  so.num_entities = entities;
  so.lookahead_ms = ShardLookaheadMs(options.base.network);
  so.parallel = options.parallel;
  ShardedScheduler ss(so);
  ShardWire wire(ss, options.base.network);

  ConfinedSim s;
  s.opt = &options;
  s.ss = &ss;
  s.wire = &wire;
  s.control_entity = options.num_pes;
  s.mips = options.base.mips_per_pe;
  s.pes.resize(static_cast<size_t>(options.num_pes));
  for (int pe = 0; pe < options.num_pes; ++pe) {
    Scheduler& home = ss.home(pe);
    ConfinedPe& p = s.pes[static_cast<size_t>(pe)];
    p.cpu = std::make_unique<Resource>(
        home, 1, "cpu" + std::to_string(pe),
        TraceTag(TraceSubsystem::kCpu, static_cast<uint16_t>(pe)));
    if (options.use_disks) {
      p.disks = std::make_unique<DiskArray>(
          home, options.base.disk, options.base.costs, s.mips, *p.cpu,
          "disk" + std::to_string(pe),
          TraceTag(TraceSubsystem::kDisk, static_cast<uint16_t>(pe)));
    }
    p.rng = Rng(options.seed).Fork(1000 + static_cast<uint64_t>(pe));
  }
  s.control.cpu = std::make_unique<Resource>(
      ss.home(s.control_entity), 1, "control",
      TraceTag(TraceSubsystem::kCpu,
               static_cast<uint16_t>(s.control_entity)));
  s.control.cpu_util.assign(static_cast<size_t>(options.num_pes), 0.0);

  if (options.instrument) options.instrument(ss);

  // Spawn order is fixed (PE-ascending, slot-ascending) and runs on the
  // setup thread regardless of the shard count, so the time-0 resource
  // queue orders are partition-invariant.
  for (int pe = 0; pe < options.num_pes; ++pe) {
    for (int slot = 0; slot < options.mpl; ++slot) {
      ss.home(pe).Spawn(QuerySlot(s, pe));
    }
    if (options.report_rounds > 0) ss.home(pe).Spawn(ReportLoop(s, pe));
  }

  const auto wall_start = std::chrono::steady_clock::now();
  ss.Run();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  ConfinedClusterReport report;
  report.per_pe.resize(static_cast<size_t>(options.num_pes));
  for (int pe = 0; pe < options.num_pes; ++pe) {
    const ConfinedPe& p = s.pes[static_cast<size_t>(pe)];
    ConfinedPeResult& r = report.per_pe[static_cast<size_t>(pe)];
    r.queries = p.queries;
    r.sum_response_ms = p.sum_rt;
    r.max_response_ms = p.max_rt;
    r.done_at_ms = p.done_at;
    r.cpu_busy_ms = p.cpu->BusyIntegral();
    r.cpu_completions = p.cpu->completed();
    r.physical_reads = p.disks ? p.disks->physical_reads() : 0;
    r.messages_sent = wire.messages_sent_by(pe);
    r.reports_sent = p.reports_sent;
  }
  report.control_reports_received = s.control.reports;
  report.control_plans_served = s.control.plans;
  report.windows = ss.windows();
  report.cross_shard_messages = ss.cross_shard_messages();
  report.events = ss.events_processed();
  double sim_time = 0.0;
  for (int shard = 0; shard < ss.num_shards(); ++shard) {
    sim_time = std::max(sim_time, ss.shard(shard).Now());
  }
  report.sim_time_ms = sim_time;
  report.wall_seconds = wall.count();
  return report;
}

}  // namespace pdblb
