// Copyright 2026 the pdblb authors. MIT license.
//
// One processing element (PE) of the Shared Nothing system: CPU server(s),
// disk array, buffer manager, lock manager and the transaction manager's
// admission control (multiprogramming level with an input queue).

#ifndef PDBLB_ENGINE_PE_H_
#define PDBLB_ENGINE_PE_H_

#include <memory>
#include <string>

#include "bufmgr/buffer_manager.h"
#include "common/config.h"
#include "iosim/disk.h"
#include "lockmgr/lock_manager.h"
#include "simkern/resource.h"
#include "simkern/scheduler.h"

namespace pdblb {

class ProcessingElement {
 public:
  /// `shared_disks`: the global spindle pool in Shared Disk mode (this PE
  /// gets a local storage-adapter facade onto it); nullptr for Shared
  /// Nothing (this PE owns its disks).
  ProcessingElement(sim::Scheduler& sched, const SystemConfig& config,
                    PeId id, DiskArray* shared_disks = nullptr)
      : id_(id),
        cpu_(sched, config.cpus_per_pe, "pe" + std::to_string(id) + ".cpu",
             sim::TraceTag(sim::TraceSubsystem::kCpu,
                           static_cast<uint16_t>(id))),
        disks_(shared_disks == nullptr
                   ? std::make_unique<DiskArray>(
                         sched, config.disk, config.costs, config.mips_per_pe,
                         cpu_, "pe" + std::to_string(id),
                         sim::TraceTag(sim::TraceSubsystem::kDisk,
                                       static_cast<uint16_t>(id)))
                   : std::make_unique<DiskArray>(
                         sched, config.disk, config.costs, config.mips_per_pe,
                         cpu_, "pe" + std::to_string(id), *shared_disks,
                         sim::TraceTag(sim::TraceSubsystem::kDisk,
                                       static_cast<uint16_t>(id)))),
        buffer_(sched, config.buffer, *disks_,
                "pe" + std::to_string(id) + ".buf"),
        locks_(sched, sim::TraceTag(sim::TraceSubsystem::kLock,
                                    static_cast<uint16_t>(id))),
        admission_(sched, config.multiprogramming_level,
                   "pe" + std::to_string(id) + ".mpl",
                   sim::TraceTag(sim::TraceSubsystem::kAdmission,
                                 static_cast<uint16_t>(id))) {}

  PeId id() const { return id_; }

  // --- failure state (engine/faults.h) -----------------------------------
  // A failed PE rejects new work (executors fail fast with kUnavailable)
  // while its resident queries are cancelled by the fault injector.  The
  // flag is flipped by FaultInjector only; fault-free runs never see it.
  bool failed() const { return failed_; }
  void set_failed(bool failed) { failed_ = failed; }

  // --- membership state (engine/elastic.h) -------------------------------
  // Elastic spares start as non-members; a draining PE stops being a member
  // before its fragments finish migrating out (it keeps serving fragments
  // it still owns, but takes no new placements or coordinator roles).
  // Flipped by ElasticityManager only; runs without addpe/drainpe events
  // always see true.
  bool member() const { return member_; }
  void set_member(bool member) { member_ = member; }

  sim::Resource& cpu() { return cpu_; }
  DiskArray& disks() { return *disks_; }
  BufferManager& buffer() { return buffer_; }
  LockManager& locks() { return locks_; }
  /// Transaction-manager admission: one server per multiprogramming slot.
  sim::Resource& admission() { return admission_; }

  void ResetStats() {
    cpu_.ResetStats();
    disks_->ResetStats();
    buffer_.ResetStats();
    locks_.ResetStats();
  }

  // Report-window bookkeeping used by the cluster's control-report loop.
  double last_cpu_busy_integral = 0.0;
  double last_disk_busy_integral = 0.0;

 private:
  PeId id_;
  bool failed_ = false;
  bool member_ = true;
  sim::Resource cpu_;
  std::unique_ptr<DiskArray> disks_;
  BufferManager buffer_;
  LockManager locks_;
  sim::Resource admission_;
};

}  // namespace pdblb

#endif  // PDBLB_ENGINE_PE_H_
