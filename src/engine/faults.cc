// Copyright 2026 the pdblb authors. MIT license.

#include "engine/faults.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "engine/cluster.h"
#include "engine/elastic.h"

namespace pdblb {

// ---------------------------------------------------------------- attempts

bool QueryAttempt::AddParticipant(PeId pe) {
  if (injector != nullptr &&
      (injector->PeFailed(pe) ||
       injector->LinkBlocked(pe, participants))) {
    outcome = StatusCode::kUnavailable;
    return false;
  }
  if (!Touches(pe)) participants.push_back(pe);
  return true;
}

bool QueryAttempt::AddParticipants(const std::vector<PeId>& pes) {
  for (PeId pe : pes) {
    if (!AddParticipant(pe)) return false;
  }
  return true;
}

bool QueryAttempt::Touches(PeId pe) const {
  return std::find(participants.begin(), participants.end(), pe) !=
         participants.end();
}

// ------------------------------------------------------------------ guards

TxnLocksGuard::~TxnLocksGuard() {
  if (!armed_ || txn_ == 0) return;
  if (cluster_->sched().tearing_down()) return;
  for (PeId pe : pes_) cluster_->pe(pe).locks().ReleaseAll(txn_);
}

void TxnLocksGuard::AddPe(PeId pe) {
  if (std::find(pes_.begin(), pes_.end(), pe) == pes_.end()) {
    pes_.push_back(pe);
  }
}

// ---------------------------------------------------------------- injector

namespace {

// Registers the attempt with the injector for the lifetime of the attempt
// frame.  Holds the injector and scheduler directly — at scheduler teardown
// the QueryAttempt (a supervisor-frame local) may already be gone, and the
// registry with it.
struct AttemptRegistration {
  FaultInjector* injector;
  sim::Scheduler* sched;
  QueryAttempt* attempt;
  AttemptRegistration(FaultInjector* inj, QueryAttempt* qa)
      : injector(inj), sched(&inj->sched()), attempt(qa) {
    injector->Register(qa);
  }
  ~AttemptRegistration() {
    if (!sched->tearing_down()) injector->Unregister(attempt);
  }
  AttemptRegistration(const AttemptRegistration&) = delete;
  AttemptRegistration& operator=(const AttemptRegistration&) = delete;
};

// One supervised attempt: runs the executor coroutine to completion and
// releases the supervisor.  When the attempt is cancelled (crash, deadline)
// the registration unregisters as this frame unwinds and the *canceller*
// counts the latch down.
sim::Task<> RunAttempt(FaultInjector* injector, sim::Task<> work,
                       QueryAttempt* qa) {
  AttemptRegistration registration(injector, qa);
  co_await std::move(work);
  qa->done->CountDown();
}

// Deadline watchdog for one attempt, armed with the query's *remaining*
// budget.  Work finishing and the timer firing at the same timestamp
// resolve by calendar FIFO, deterministically (see simkern/deadline.h).
sim::Task<> AttemptTimer(sim::Scheduler& sched, SimTime delay_ms,
                         QueryAttempt* qa) {
  co_await sched.Delay(delay_ms);
  if (qa->done->Done()) co_return;
  qa->outcome = StatusCode::kDeadlineExceeded;
  sched.Cancel(qa->work_id);
  qa->done->CountDown();
}

}  // namespace

FaultInjector::FaultInjector(Cluster& cluster)
    : cluster_(cluster),
      // Same derivation as the Cluster's own streams (root = Rng(seed),
      // workload = Fork(1), arrivals = Fork(2)); stream 3 is reserved for
      // fault timing so enabling faults never perturbs the others.
      fault_rng_(sim::Rng(cluster.config().seed).Fork(3)) {}

bool FaultInjector::Enabled() const { return cluster_.config().faults.Enabled(); }

bool FaultInjector::PeFailed(PeId pe) const { return cluster_.pe(pe).failed(); }

bool FaultInjector::LinkBlocked(PeId pe,
                                const std::vector<PeId>& others) const {
  if (!cluster_.net().AnyPartitions()) return false;
  for (PeId other : others) {
    if (other != pe && cluster_.net().Partitioned(pe, other)) return true;
  }
  return false;
}

sim::Scheduler& FaultInjector::sched() { return cluster_.sched(); }

void FaultInjector::Unregister(QueryAttempt* attempt) {
  auto it = std::find(active_.begin(), active_.end(), attempt);
  if (it != active_.end()) {
    *it = active_.back();
    active_.pop_back();
  }
}

void FaultInjector::SpawnFaultProcesses() {
  const FaultConfig& faults = cluster_.config().faults;
  for (const FaultEvent& event : faults.events) {
    cluster_.sched().Spawn(ApplyAt(event));
  }
  if (faults.crash_rate_per_pe_per_min > 0.0) {
    for (PeId pe = 0; pe < cluster_.config().num_pes; ++pe) {
      cluster_.sched().Spawn(RandomFaultLoop(pe));
    }
  }
}

sim::Task<> FaultInjector::ApplyAt(FaultEvent event) {
  co_await cluster_.sched().Delay(event.at_ms);
  // Events scheduled for the same timestamp apply in spec order: they are
  // spawned in spec order and the calendar dispatches equal-time events
  // FIFO, so e.g. "crash@t:pe1;recover@t:pe1" crashes then recovers while
  // the reversed spec leaves the PE down (pinned in tests/fault_test.cc).
  switch (event.kind) {
    case FaultKind::kCrash:
      ApplyCrash(event.pe);
      break;
    case FaultKind::kRecover:
      ApplyRecovery(event.pe);
      break;
    case FaultKind::kSlowDisk:
      cluster_.pe(event.pe).disks().SetServiceMultiplier(event.factor);
      break;
    case FaultKind::kPartition:
      ApplyPartition(event.pe, event.pe2);
      break;
    case FaultKind::kHeal:
      ApplyHeal(event.pe, event.pe2);
      break;
    case FaultKind::kSlowLink:
      cluster_.net().SetLinkDelayMultiplier(event.pe, event.pe2,
                                            event.factor);
      break;
    case FaultKind::kAddPe:
      cluster_.elastic().OnAddPe(event.pe);
      break;
    case FaultKind::kDrainPe:
      cluster_.elastic().OnDrainPe(event.pe);
      break;
  }
}

sim::Task<> FaultInjector::RandomFaultLoop(PeId pe) {
  const FaultConfig& faults = cluster_.config().faults;
  // Each PE gets its own fault stream so the crash/repair history of one PE
  // is independent of how many faults the others drew.
  sim::Rng rng = fault_rng_.Fork(static_cast<uint64_t>(pe));
  const double mean_up_ms =
      60000.0 / faults.crash_rate_per_pe_per_min;  // rate is per minute
  while (true) {
    co_await cluster_.sched().Delay(rng.Exponential(mean_up_ms));
    if (cluster_.sched().ShuttingDown()) co_return;
    // Keep the cluster able to make progress: never take down the last PE.
    if (cluster_.control().AliveCount() <= 1) continue;
    ApplyCrash(pe);
    co_await cluster_.sched().Delay(rng.Exponential(faults.mttr_ms));
    if (cluster_.sched().ShuttingDown()) co_return;
    ApplyRecovery(pe);
  }
}

void FaultInjector::ApplyCrash(PeId pe) {
  ProcessingElement& elem = cluster_.pe(pe);
  if (elem.failed()) return;
  if (cluster_.control().AliveCount() <= 1) return;
  elem.set_failed(true);
  cluster_.control().MarkDown(pe);  // idempotent: non-members already down
  cluster_.metrics().RecordPeCrash();

  // Cancel every resident attempt.  Cancellation destroys the attempt frame
  // mid-suspension; its cancellation-aware awaiters and RAII guards release
  // buffer reservations, lock entries and admission slots at *all* PEs the
  // attempt touched (not just the crashed one), so the accounting below
  // starts from a clean slate.  Iterate over a copy: each cancellation
  // unregisters from active_ via AttemptRegistration.
  std::vector<QueryAttempt*> victims;
  for (QueryAttempt* qa : active_) {
    if (qa->Touches(pe)) victims.push_back(qa);
  }
  for (QueryAttempt* qa : victims) {
    qa->outcome = StatusCode::kUnavailable;
    cluster_.sched().Cancel(qa->work_id);
    if (!qa->done->Done()) qa->done->CountDown();
  }

  // Abort any fragment migration touching this PE first: the cancelled
  // migrator frame returns its destination staging reservation, which the
  // buffer wipe below asserts is gone.
  if (cluster_.elastic_enabled()) cluster_.elastic().OnPeCrash(pe);

  // Volatile state is lost; asserts that the unwind above accounted every
  // reservation and queued request before wiping the cache.
  elem.buffer().OnCrash();
}

void FaultInjector::ApplyPartition(PeId a, PeId b) {
  if (cluster_.net().Partitioned(a, b)) return;
  cluster_.net().SetPartitioned(a, b, true);
  cluster_.metrics().RecordLinkPartition();

  // Resident attempts already spanning the cut link lose their coordination
  // path mid-query: cancel them like a crash does (kUnavailable into the
  // retry path), unwinding their resources through the cancellation-aware
  // guards.  Attempts touching at most one endpoint keep running, and new
  // attempts fail fast at AddParticipant while the partition holds.
  std::vector<QueryAttempt*> victims;
  for (QueryAttempt* qa : active_) {
    if (qa->Touches(a) && qa->Touches(b)) victims.push_back(qa);
  }
  for (QueryAttempt* qa : victims) {
    qa->outcome = StatusCode::kUnavailable;
    cluster_.sched().Cancel(qa->work_id);
    if (!qa->done->Done()) qa->done->CountDown();
  }
}

void FaultInjector::ApplyHeal(PeId a, PeId b) {
  cluster_.net().SetPartitioned(a, b, false);
}

void FaultInjector::ApplyRecovery(PeId pe) {
  ProcessingElement& elem = cluster_.pe(pe);
  if (!elem.failed()) return;
  elem.set_failed(false);
  cluster_.metrics().RecordPeRecovery();
  if (elem.member()) {
    cluster_.control().MarkUp(pe);
    // A recovered PE reboots idle with a cold buffer: refresh the control
    // node's view immediately so strategies rebalance onto it without
    // waiting for the next report interval.  Non-members (spares, draining
    // PEs) stay out of the planning views.
    cluster_.control().Report(pe, 0.0, elem.buffer().AvailablePages(), 0.0);
  }
  // A recovered draining PE resumes vacating; a crashed-then-recovered
  // joiner gets refilled.
  if (cluster_.elastic_enabled()) cluster_.elastic().OnPeRecovered(pe);
}

sim::Task<> FaultInjector::Supervise(AttemptFactory make) {
  const FaultConfig& faults = cluster_.config().faults;
  const RetryPolicy& retry = faults.retry;
  sim::Scheduler& sched = cluster_.sched();

  // Deadline assignment happens once per query, in arrival order, from the
  // workload stream — deterministic and independent of fault timing.
  bool has_deadline = faults.TimeoutsEnabled() &&
                      (faults.timeout_fraction >= 1.0 ||
                       cluster_.workload_rng().Uniform() <
                           faults.timeout_fraction);
  const SimTime t0 = sched.Now();
  bool retried = false;
  bool plan_degraded = false;

  for (int attempt = 1;; ++attempt) {
    SimTime remaining_ms = 0.0;
    if (has_deadline) {
      remaining_ms = faults.query_timeout_ms - (sched.Now() - t0);
      if (remaining_ms <= 0.0) {
        // The backoff ate the whole budget; no point starting the attempt.
        cluster_.metrics().RecordQueryTimedOut(sched.Now());
        co_return;
      }
    }

    StatusCode outcome = StatusCode::kOk;
    {
      sim::Latch done(sched, 1);
      QueryAttempt qa;
      qa.injector = this;
      qa.done = &done;

      // Children are detached frames pointing into this frame; if this
      // frame is itself cancelled mid-wait they must go first.  Cancel of a
      // finished id no-ops, so the guards are unconditional (the pattern of
      // simkern/deadline.h).
      struct ChildGuard {
        sim::Scheduler* sched;
        uint64_t id = 0;
        ~ChildGuard() {
          if (id != 0) sched->Cancel(id);
        }
      };
      ChildGuard work_guard{&sched};
      ChildGuard timer_guard{&sched};
      qa.work_id = sched.SpawnWithId(RunAttempt(this, make(&qa), &qa));
      work_guard.id = qa.work_id;
      if (has_deadline) {
        timer_guard.id =
            sched.SpawnWithId(AttemptTimer(sched, remaining_ms, &qa));
      }
      co_await done.Wait();
      outcome = qa.outcome;
      // The final attempt's plan decides whether the query counts as
      // degraded (an earlier capped-but-cancelled attempt already counts
      // through `retried`).
      plan_degraded = qa.degraded_plan;
    }

    switch (outcome) {
      case StatusCode::kOk:
        if (retried || plan_degraded) {
          cluster_.metrics().RecordQueryDegraded(sched.Now());
        }
        co_return;
      case StatusCode::kDeadlineExceeded:
        cluster_.metrics().RecordQueryTimedOut(sched.Now());
        co_return;
      case StatusCode::kResourceExhausted:
        // Shed at admission by the overload controller; counted at the
        // shed site (queries_shed) and deliberately never retried — the
        // whole point is to take pressure off the admission queues.
        co_return;
      default: {  // kUnavailable: the attempt hit a failed PE.
        if (attempt >= retry.max_attempts) {
          cluster_.metrics().RecordQueryFailed(sched.Now());
          co_return;
        }
        cluster_.metrics().RecordQueryRetried(sched.Now());
        retried = true;
        double backoff =
            retry.initial_backoff_ms *
            std::pow(retry.backoff_multiplier, static_cast<double>(attempt - 1));
        backoff = std::min(backoff, retry.max_backoff_ms);
        // Seeded jitter from the workload stream keeps retry storms apart
        // without breaking determinism.
        backoff *= 1.0 + retry.jitter_frac *
                             (2.0 * cluster_.workload_rng().Uniform() - 1.0);
        co_await sched.Delay(backoff);
      }
    }
  }
}

}  // namespace pdblb
