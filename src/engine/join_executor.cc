// Copyright 2026 the pdblb authors. MIT license.

#include "engine/join_executor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "core/skew.h"
#include "engine/faults.h"
#include "engine/parop.h"
#include "join/local_join.h"
#include "simkern/task_group.h"

namespace pdblb {
namespace {

using parop::Batch;
using parop::BatchChannel;
using parop::CommitRound;
using parop::DeliverControl;
using parop::ScanRedistribute;
using parop::SplitEvenly;
using parop::UseCpu;

/// Join-processor side of the building phase.  Memory was already acquired
/// by the coordinator (in global PE order, which avoids hold-and-wait
/// deadlocks between concurrent joins on small buffers).
sim::Task<> BuildConsumer(Cluster& c, LocalJoin* join, BatchChannel* channel) {
  (void)c;
  while (auto batch = co_await channel->Receive()) {
    co_await join->InsertInnerBatch(batch->tuples);
  }
}

/// Join-processor side of the probing phase, including the deferred joins of
/// disk-resident partitions and the result transfer to the coordinator.
sim::Task<> ProbeConsumer(Cluster& c, LocalJoin* join, BatchChannel* channel,
                          PeId join_pe, PeId coord, int64_t result_tuples,
                          int tuple_size) {
  while (auto batch = co_await channel->Receive()) {
    co_await join->ProbeBatch(batch->tuples);
  }
  co_await join->CompleteProbe();
  co_await UseCpu(c, join_pe,
                  result_tuples * c.config().costs.write_output_tuple);
  co_await c.net().Transfer(join_pe, coord, result_tuples * tuple_size);
  join->Release();
}

}  // namespace

sim::Task<> ExecuteJoinQuery(Cluster& c, QueryAttempt* qa) {
  sim::Scheduler& sched = c.sched();
  const SystemConfig& cfg = c.config();
  const CpuCosts& costs = cfg.costs;
  const SimTime t0 = sched.Now();

  // Random coordinator placement (paper: queries are assigned to a
  // coordinating PE uniformly over all PEs).  Under elastic resize the draw
  // is remapped to the nearest member (the draw itself always happens, so
  // the RNG stream matches resize-free runs).
  const PeId coord = c.MemberPe(
      static_cast<PeId>(c.workload_rng().UniformInt(0, c.num_pes() - 1)));
  if (qa != nullptr && !qa->AddParticipant(coord)) co_return;
  if (c.control().ShouldShed()) {
    // Overload shedding: reject before queueing for an admission slot, so a
    // shed query holds nothing and costs nothing.  kResourceExhausted is
    // final — the supervisor does not retry it.
    c.metrics().RecordQueryShed(sched.Now());
    if (qa != nullptr) qa->outcome = StatusCode::kResourceExhausted;
    co_return;
  }
  co_await c.pe(coord).admission().Acquire();
  AdmissionGuard admission(sched, c.pe(coord).admission());
  co_await UseCpu(c, coord, costs.initiate_txn);

  // Under strict 2PL the read-only query locks every scanned page; under
  // the base assumption / multiversion CC it reads lock-free (footnote 1).
  const TxnId read_txn =
      cfg.cc_scheme == CcScheme::kTwoPhaseLocking ? c.NextTxnId() : 0;
  TxnLocksGuard read_locks(&c, read_txn);

  // Consult the control node for the current system state (request+reply).
  co_await c.net().ControlMessage(coord, 0);
  co_await c.net().ControlMessage(0, coord);
  JoinPlan plan =
      c.policy().Plan(c.plan_request(), c.control(), c.workload_rng());
  const int p = plan.degree;

  // All PEs that take part in this query: scan processors and join
  // processors.  Under Shared Nothing the data allocation prescribes the
  // scan placement; under Shared Disk ([27]) any PE can scan any fragment,
  // so the least CPU-utilized PEs are picked as scan processors.
  const std::vector<PeId>& a_nodes = c.db().a_nodes();
  const std::vector<PeId>& b_nodes = c.db().b_nodes();
  std::vector<PeId> a_exec(a_nodes);
  std::vector<PeId> b_exec(b_nodes);
  if (cfg.architecture == Architecture::kSharedDisk) {
    std::vector<PeLoadInfo> by_cpu = c.control().CpuSorted();
    for (size_t i = 0; i < a_exec.size(); ++i) {
      a_exec[i] = by_cpu[i % by_cpu.size()].pe;
    }
    for (size_t i = 0; i < b_exec.size(); ++i) {
      b_exec[i] = by_cpu[i % by_cpu.size()].pe;
    }
  } else if (c.elastic_enabled()) {
    // Shared Nothing with elastic resize: each fragment is scanned by its
    // current owner (== home until a migration moved it).
    for (size_t i = 0; i < a_exec.size(); ++i) {
      a_exec[i] = c.OwnerOf(c.db().a().id(), a_nodes[i]);
    }
    for (size_t i = 0; i < b_exec.size(); ++i) {
      b_exec[i] = c.OwnerOf(c.db().b().id(), b_nodes[i]);
    }
  }
  std::set<PeId> participants(a_exec.begin(), a_exec.end());
  participants.insert(b_exec.begin(), b_exec.end());
  if (!c.elastic_enabled()) {
    // The homes are the scan sites (Shared Nothing) or the lock sites whose
    // liveness the query needs (Shared Disk).  Under elastic resize a home
    // may be a drained (even dead) PE whose fragment now lives elsewhere —
    // only the owners above actually serve the query, so only those gate
    // its fate.
    participants.insert(a_nodes.begin(), a_nodes.end());
    participants.insert(b_nodes.begin(), b_nodes.end());
  }
  participants.insert(plan.pes.begin(), plan.pes.end());
  if (qa != nullptr &&
      !qa->AddParticipants({participants.begin(), participants.end()})) {
    co_return;
  }
  for (PeId pe : participants) read_locks.AddPe(pe);
  if (c.elastic_enabled()) {
    // Read locks are taken at the homes' lock managers regardless of who
    // executes the scan; the guard must cover them for crash unwind.
    for (PeId pe : a_nodes) read_locks.AddPe(pe);
    for (PeId pe : b_nodes) read_locks.AddPe(pe);
  }

  // Start the subqueries: the coordinator serializes its send costs, the
  // deliveries run in parallel.
  {
    sim::TaskGroup startup(sched);
    for (PeId dest : participants) {
      if (dest == coord) continue;
      co_await UseCpu(c, coord, costs.send_message + costs.copy_message);
      startup.Spawn(DeliverControl(c, dest));
    }
    co_await startup.Wait();
  }

  // One local join instance per join processor.  The partitioning function's
  // per-destination fractions are uniform in the paper's base setting; with
  // configured redistribution skew they follow a Zipf law, and the mapping
  // of partitions to the selected PEs is either size-aware (largest subjoin
  // to the best PE — the planner returns PEs in goodness order) or random
  // (a size-oblivious hash partitioner).
  const int tuple_size = cfg.relation_a.tuple_size_bytes;
  const int64_t inner_total = cfg.InnerInputTuples();
  const int64_t outer_total = cfg.OuterInputTuples();
  const int64_t result_total = static_cast<int64_t>(
      cfg.join_query.result_size_factor * static_cast<double>(inner_total));
  const double theta = cfg.join_query.redistribution_skew;
  // With no skew all weights are equal and the assignment is a no-op; skip
  // the permutation so the RNG stream (and thus the base experiments) is
  // untouched.
  std::vector<double> dest_frac =
      theta > 0.0 ? AssignWeights(ZipfWeights(p, theta),
                                  cfg.strategy.skew_aware_assignment,
                                  c.workload_rng())
                  : ZipfWeights(p, 0.0);
  std::vector<int64_t> inner_share = SplitWeighted(inner_total, dest_frac);
  std::vector<int64_t> outer_share = SplitWeighted(outer_total, dest_frac);
  std::vector<int64_t> result_share = SplitWeighted(result_total, dest_frac);

  std::vector<std::unique_ptr<LocalJoin>> joins;
  joins.reserve(p);
  for (int j = 0; j < p; ++j) {
    LocalJoinParams params;
    params.temp_relation_id = c.NextTempRelationId();
    params.expected_inner_tuples = inner_share[j];
    params.expected_outer_tuples = outer_share[j];
    params.blocking_factor = cfg.relation_a.blocking_factor;
    params.fudge_factor = cfg.join_query.fudge_factor;
    params.want_pages = plan.pages_per_pe;
    if (theta > 0.0) {
      // Skewed subjoins need working space proportional to their share; the
      // control node's uniform estimate is corrected so back-to-back joins
      // do not stack their dominant partitions on the same PE.
      const int bf = cfg.relation_a.blocking_factor;
      int64_t share_pages = (inner_share[j] + bf - 1) / bf;
      params.want_pages = static_cast<int>(std::llround(
          std::ceil(cfg.join_query.fudge_factor *
                    static_cast<double>(share_pages))));
      c.control().NoteSubjoinSize(plan.pes[j],
                                  params.want_pages - plan.pages_per_pe,
                                  dest_frac[j] * static_cast<double>(p));
    }
    params.write_batch_pages = cfg.disk.prefetch_pages;
    params.opportunistic_growth = cfg.pphj_opportunistic_growth;
    PeId jp = plan.pes[j];
    joins.push_back(CreateLocalJoin(cfg.local_join_method, sched,
                                    c.pe(jp).buffer(), c.pe(jp).disks(),
                                    c.pe(jp).cpu(), costs, cfg.mips_per_pe,
                                    params));
  }

  // Acquire working space at every join processor before the build starts.
  // Acquisition follows ascending PE id (a global resource order), so
  // concurrent joins cannot deadlock on each other's memory queues even
  // when one query's hash table spans a large share of the cluster memory.
  {
    std::vector<int> order(p);
    for (int j = 0; j < p; ++j) order[j] = j;
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return plan.pes[a] < plan.pes[b]; });
    SimTime queued_at = sched.Now();
    for (int j : order) {
      co_await joins[j]->AcquireMemory();
    }
    c.metrics().RecordMemoryQueueWait(sched.Now() - queued_at, sched.Now());
  }

  // --- building phase: scan A, redistribute, build hash tables -----------
  {
    std::vector<std::unique_ptr<BatchChannel>> channels;
    for (int j = 0; j < p; ++j) {
      channels.push_back(std::make_unique<BatchChannel>(sched));
    }
    sim::TaskGroup consumers(sched);
    for (int j = 0; j < p; ++j) {
      consumers.Spawn(BuildConsumer(c, joins[j].get(), channels[j].get()));
    }
    sim::TaskGroup scans(sched);
    sim::TaskGroup sends(sched);
    std::vector<int64_t> node_share =
        SplitEvenly(inner_total, static_cast<int>(a_nodes.size()));
    for (size_t i = 0; i < a_nodes.size(); ++i) {
      scans.Spawn(ScanRedistribute(c, a_exec[i], c.db().a(), node_share[i],
                                   plan.pes, dest_frac, channels, sends,
                                   read_txn, a_nodes[i]));
    }
    co_await scans.Wait();
    co_await sends.Wait();
    for (auto& ch : channels) ch->Close();
    co_await consumers.Wait();
  }

  // --- probing phase: scan B, redistribute, probe, merge results ---------
  {
    std::vector<std::unique_ptr<BatchChannel>> channels;
    for (int j = 0; j < p; ++j) {
      channels.push_back(std::make_unique<BatchChannel>(sched));
    }
    sim::TaskGroup consumers(sched);
    for (int j = 0; j < p; ++j) {
      consumers.Spawn(ProbeConsumer(c, joins[j].get(), channels[j].get(),
                                    plan.pes[j], coord, result_share[j],
                                    tuple_size));
    }
    sim::TaskGroup scans(sched);
    sim::TaskGroup sends(sched);
    std::vector<int64_t> node_share =
        SplitEvenly(outer_total, static_cast<int>(b_nodes.size()));
    for (size_t i = 0; i < b_nodes.size(); ++i) {
      scans.Spawn(ScanRedistribute(c, b_exec[i], c.db().b(), node_share[i],
                                   plan.pes, dest_frac, channels, sends,
                                   read_txn, b_nodes[i]));
    }
    co_await scans.Wait();
    co_await sends.Wait();
    for (auto& ch : channels) ch->Close();
    co_await consumers.Wait();
  }

  // --- distributed commit with the read-only optimization (one round) ----
  // The single commit round also releases the read locks at the scan
  // processors (the paper's read-only optimization).
  {
    sim::TaskGroup commits(sched);
    for (PeId dest : participants) {
      if (dest == coord) continue;
      co_await UseCpu(c, coord, costs.send_message + costs.copy_message);
      commits.Spawn(CommitRound(c, coord, dest));
    }
    co_await commits.Wait();
    if (read_txn != 0) {
      for (PeId dest : participants) c.pe(dest).locks().ReleaseAll(read_txn);
      if (c.elastic_enabled()) {
        // Locks live at the homes' lock managers, which under elastic
        // resize may not be participants (drained homes).
        for (PeId pe : a_nodes) c.pe(pe).locks().ReleaseAll(read_txn);
        for (PeId pe : b_nodes) c.pe(pe).locks().ReleaseAll(read_txn);
      }
    }
    read_locks.Disarm();
  }
  co_await UseCpu(c, coord, costs.terminate_txn);
  admission.ReleaseNow();

  int64_t temp_written = 0;
  int64_t temp_read = 0;
  for (const auto& j : joins) {
    temp_written += j->temp_pages_written();
    temp_read += j->temp_pages_read();
  }
  c.metrics().RecordJoin(sched.Now() - t0, p, temp_written, temp_read,
                         sched.Now());
  if (plan.degraded) {
    // Supervised queries defer the degraded count to the supervisor (which
    // also folds in retry-degradation); unsupervised ones count here.
    if (qa != nullptr) {
      qa->degraded_plan = true;
    } else {
      c.metrics().RecordQueryDegraded(sched.Now());
    }
  }
}

}  // namespace pdblb
