// Copyright 2026 the pdblb authors. MIT license.

#include "engine/cluster.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>

#include "common/logging.h"
#include "engine/elastic.h"
#include "engine/faults.h"
#include "engine/join_executor.h"
#include "engine/multiway_executor.h"
#include "engine/oltp_executor.h"
#include "engine/scan_executor.h"
#include "netsim/shard_mailbox.h"
#include "simkern/sharded.h"
#include "workload/arrivals.h"

namespace pdblb {

namespace {

// Why this Cluster cannot be shard-confined (never null today: the figure
// drivers' executors all share cross-PE state; listed for the day some of
// them are confined and the answer starts depending on the config).
const char* ShardConfinementBlocker(const SystemConfig& config) {
  (void)config;
  return "the figure-driver executors share cross-PE state (one workload "
         "RNG drawn in global arrival order, synchronous control-node "
         "reads at plan time, global metrics/deadlock accumulators)";
}

// Satellite of the --shards fix: a multi-shard request that cannot
// parallelize must say so instead of silently running the one-group
// windowed path.  Once per process — sweeps construct hundreds of
// Clusters and the message is about the flag, not the point.  Emitted to
// stderr directly (not PDBLB_LOG) so the default log level does not
// swallow it; result tables and CSVs go to stdout, so output stays clean.
void WarnShardFallbackOnce(const SystemConfig& config) {
  static std::once_flag flag;
  std::call_once(flag, [&config] {
    std::fprintf(
        stderr,
        "pdblb: note: --shards=%d runs this driver on one scheduler "
        "thread: %s.\n"
        "pdblb: results are bit-identical to --shards=1 (CI-enforced); "
        "the shard-confined engine (engine/confined.h, bench "
        "ConfinedClusterHeavy) and the simkern bench shapes are what "
        "parallelize today.  See docs/sharding.md.\n",
        config.shards, ShardConfinementBlocker(config));
  });
}

}  // namespace

Cluster::Cluster(const SystemConfig& config)
    : config_(config), root_rng_(config.seed),
      workload_rng_(root_rng_.Fork(1)), arrival_rng_(root_rng_.Fork(2)) {
  Status st = config_.Validate();
  assert(st.ok() && "invalid SystemConfig");
  (void)st;

  if (config_.trace.enabled && sim::kTraceCompiledIn) {
    tracer_ = std::make_unique<sim::Tracer>(
        static_cast<size_t>(config_.trace.capacity));
    sched_.AttachTracer(tracer_.get());
  }

  if (config_.architecture == Architecture::kSharedDisk) {
    // The global spindle pool of the storage subsystem: every PE's facade
    // shares these disks.  The pool's own CPU/controller are never used —
    // all I/O goes through the per-PE storage adapters.
    // Origin 0xFFF marks the shared storage subsystem (no owning PE).
    storage_cpu_ = std::make_unique<sim::Resource>(
        sched_, 1, "storage.cpu",
        sim::TraceTag(sim::TraceSubsystem::kCpu, 0xFFF));
    DiskConfig pool = config_.disk;
    pool.disks_per_pe = config_.disk.disks_per_pe * config_.num_pes;
    shared_disks_ = std::make_unique<DiskArray>(
        sched_, pool, config_.costs, config_.mips_per_pe, *storage_cpu_,
        "storage", sim::TraceTag(sim::TraceSubsystem::kDisk, 0xFFF));
  }

  pes_.reserve(config_.num_pes);
  for (PeId id = 0; id < config_.num_pes; ++id) {
    pes_.push_back(std::make_unique<ProcessingElement>(sched_, config_, id,
                                                       shared_disks_.get()));
  }
  db_ = std::make_unique<Database>(config_);
  std::vector<sim::Resource*> pe_cpus;
  pe_cpus.reserve(pes_.size());
  for (auto& pe : pes_) pe_cpus.push_back(&pe->cpu());
  net_ = std::make_unique<Network>(sched_, config_.network, config_.costs,
                                   config_.mips_per_pe, std::move(pe_cpus));
  control_ = std::make_unique<ControlNode>(config_.num_pes,
                                           config_.adaptive_selection_feedback);
  control_->ConfigureOverload(config_.overload);
  cost_model_ = std::make_unique<CostModel>(config_);
  policy_ = LoadBalancingPolicy::Create(config_.strategy);

  std::vector<LockManager*> lock_managers;
  for (auto& pe : pes_) lock_managers.push_back(&pe->locks());
  deadlock_detector_ =
      std::make_unique<DeadlockDetector>(sched_, std::move(lock_managers));
  faults_ = std::make_unique<FaultInjector>(*this);
  if (config_.faults.ElasticEnabled()) {
    elastic_ = std::make_unique<ElasticityManager>(*this);
    // Elastic spares (addpe targets) start outside the membership: no
    // fragment homes (catalog/database.cc), not in the planning views, no
    // load reports until their addpe event fires.
    for (PeId pe : db_->spare_nodes()) {
      pes_[pe]->set_member(false);
      control_->MarkDown(pe);
    }
  }

  // Transient disk errors: arm every PE's disk array with its own fork of
  // the dedicated disk-fault stream (root.Fork(4), then per PE).  Stream 3
  // is the PE crash timing; a new family keeps crash-only and disk-only
  // configurations from perturbing each other's draws.  Never armed
  // fault-free: the disk hot path then makes zero draws and extra awaits.
  if (config_.faults.DiskFaultsEnabled()) {
    sim::Rng disk_fault_root = sim::Rng(config_.seed).Fork(4);
    for (PeId id = 0; id < config_.num_pes; ++id) {
      pes_[id]->disks().ConfigureFaults(
          config_.faults.io_error_rate, config_.faults.io_retry_limit,
          config_.faults.io_retry_penalty_ms,
          disk_fault_root.Fork(static_cast<uint64_t>(id)));
    }
  }

  plan_request_.hash_table_pages = cost_model_->HashTablePages();
  plan_request_.psu_opt = cost_model_->PsuOpt();
  plan_request_.psu_noio = cost_model_->PsuNoIO();
  plan_request_.num_pes = config_.num_pes;
  plan_request_.scan_rate_tps = cost_model_->ScanProductionRateTps();
  plan_request_.join_rate_tps = cost_model_->JoinConsumptionRateTps();

  // Seed the control node with an optimistic initial view (idle CPUs, all
  // memory free) — exactly what a freshly booted system reports.  Spares
  // report nothing until their addpe event fires.
  for (PeId id = 0; id < config_.num_pes; ++id) {
    if (!pes_[id]->member()) continue;
    control_->Report(id, 0.0, pes_[id]->buffer().AvailablePages(), 0.0);
  }
}

Cluster::~Cluster() = default;

void Cluster::ReportAllPes(SimTime window_ms) {
  for (auto& pe : pes_) {
    double cpu_busy = pe->cpu().BusyIntegral();
    if (pe->failed() || !pe->member()) {
      // A down (or non-member: spare / draining) PE reports nothing (the
      // control node's alive view excludes it); keep the window bookkeeping
      // current so the first report after recovery or join covers only
      // activity since then.
      pe->last_cpu_busy_integral = cpu_busy;
      pe->last_disk_busy_integral = pe->disks().DataDiskBusyIntegral();
      continue;
    }
    double cpu_util =
        (cpu_busy - pe->last_cpu_busy_integral) /
        (window_ms * static_cast<double>(config_.cpus_per_pe));
    pe->last_cpu_busy_integral = cpu_busy;

    double disk_busy = pe->disks().DataDiskBusyIntegral();
    double disk_util =
        (disk_busy - pe->last_disk_busy_integral) /
        (window_ms * static_cast<double>(pe->disks().num_disks()));
    pe->last_disk_busy_integral = disk_busy;

    control_->Report(pe->id(), cpu_util, pe->buffer().AvailablePages(),
                     disk_util);
    metrics_.SampleUtilization(cpu_util, disk_util,
                               pe->buffer().MemoryUtilization(), sched_.Now());
    // The working-set estimate decays with time and does not generate
    // events; give queued joins a chance to proceed.
    pe->buffer().PumpMemoryQueue();
  }
  if (config_.overload.enabled) {
    // Feed the overload state machine once per round with the avg admission
    // queue depth over alive PEs (CPU pressure is read from the reports
    // above).  Pure bookkeeping: no events, no RNG draws.
    double queue = 0.0;
    int alive = 0;
    for (auto& pe : pes_) {
      if (pe->failed() || !pe->member()) continue;
      queue += static_cast<double>(pe->admission().queue_length());
      ++alive;
    }
    control_->NoteLoadRound(alive == 0 ? 0.0
                                       : queue / static_cast<double>(alive));
  }
}

sim::Task<> Cluster::ControlReportLoop() {
  const double interval = config_.control_report_interval_ms;
  while (!sched_.ShuttingDown()) {
    co_await sched_.Delay(interval);
    ReportAllPes(interval);
  }
}

void Cluster::SpawnBackground() {
  sched_.Spawn(ControlReportLoop());
  sched_.Spawn(deadlock_detector_->Run());
}

void Cluster::SpawnJoin() {
  if (config_.faults.Enabled()) {
    sched_.Spawn(faults_->Supervise(
        [this](QueryAttempt* qa) { return ExecuteJoinQuery(*this, qa); }));
  } else {
    sched_.Spawn(ExecuteJoinQuery(*this));
  }
}

void Cluster::SpawnScan() {
  if (config_.faults.Enabled()) {
    sched_.Spawn(faults_->Supervise(
        [this](QueryAttempt* qa) { return ExecuteScanQuery(*this, qa); }));
  } else {
    sched_.Spawn(ExecuteScanQuery(*this));
  }
}

void Cluster::SpawnUpdate() {
  if (config_.faults.Enabled()) {
    sched_.Spawn(faults_->Supervise(
        [this](QueryAttempt* qa) { return ExecuteUpdateQuery(*this, qa); }));
  } else {
    sched_.Spawn(ExecuteUpdateQuery(*this));
  }
}

void Cluster::SpawnMultiway() {
  if (config_.faults.Enabled()) {
    sched_.Spawn(faults_->Supervise([this](QueryAttempt* qa) {
      return ExecuteMultiwayJoinQuery(*this, qa);
    }));
  } else {
    sched_.Spawn(ExecuteMultiwayJoinQuery(*this));
  }
}

void Cluster::SpawnOltp(PeId node) {
  if (config_.faults.Enabled()) {
    sched_.Spawn(faults_->Supervise([this, node](QueryAttempt* qa) {
      return ExecuteOltpTransaction(*this, node, qa);
    }));
  } else {
    sched_.Spawn(ExecuteOltpTransaction(*this, node));
  }
}

void Cluster::SpawnOpenWorkload() {
  if (trace_.has_value()) {
    // Trace-driven mode: one dispatcher replaces all Poisson sources.
    sched_.Spawn(ReplayTrace(
        sched_, std::move(*trace_), [this](const TraceEvent& event) {
          switch (event.cls) {
            case TraceClass::kJoin:
              SpawnJoin();
              break;
            case TraceClass::kScan:
              SpawnScan();
              break;
            case TraceClass::kUpdate:
              SpawnUpdate();
              break;
            case TraceClass::kMultiwayJoin:
              SpawnMultiway();
              break;
            case TraceClass::kOltp: {
              PeId node = std::min<PeId>(event.oltp_node, config_.num_pes - 1);
              // OLTP events need the node's private relation; traces with
              // OLTP require oltp.enabled so the schema includes them.
              if (db_->oltp_relation(node) != nullptr) {
                SpawnOltp(node);
              }
              break;
            }
          }
        }));
    trace_.reset();
    return;
  }
  if (config_.join_query.arrival_rate_per_pe_qps > 0.0) {
    double rate = config_.join_query.arrival_rate_per_pe_qps *
                  static_cast<double>(config_.num_pes);
    sched_.Spawn(PoissonArrivals(sched_, arrival_rng_.Fork(10), rate,
                                 [this](int64_t) { SpawnJoin(); }));
  }
  if (config_.scan_query.enabled &&
      config_.scan_query.arrival_rate_per_pe_qps > 0.0) {
    double rate = config_.scan_query.arrival_rate_per_pe_qps *
                  static_cast<double>(config_.num_pes);
    sched_.Spawn(PoissonArrivals(sched_, arrival_rng_.Fork(20), rate,
                                 [this](int64_t) { SpawnScan(); }));
  }
  if (config_.update_query.enabled &&
      config_.update_query.arrival_rate_per_pe_qps > 0.0) {
    double rate = config_.update_query.arrival_rate_per_pe_qps *
                  static_cast<double>(config_.num_pes);
    sched_.Spawn(PoissonArrivals(sched_, arrival_rng_.Fork(30), rate,
                                 [this](int64_t) { SpawnUpdate(); }));
  }
  if (config_.multiway_join.enabled &&
      config_.multiway_join.arrival_rate_per_pe_qps > 0.0) {
    double rate = config_.multiway_join.arrival_rate_per_pe_qps *
                  static_cast<double>(config_.num_pes);
    sched_.Spawn(PoissonArrivals(sched_, arrival_rng_.Fork(40), rate,
                                 [this](int64_t) { SpawnMultiway(); }));
  }
  if (config_.oltp.enabled) {
    for (PeId node : db_->oltp_nodes()) {
      sched_.Spawn(PoissonArrivals(
          sched_, arrival_rng_.Fork(1000 + node), config_.oltp.tps_per_node,
          [this, node](int64_t) { SpawnOltp(node); }));
    }
  }
}

void Cluster::ResetStatistics() {
  for (auto& pe : pes_) pe->ResetStats();
  net_->ResetStats();
}

MetricsReport Cluster::Collect(SimTime measure_start,
                               SimTime measure_end) const {
  MetricsReport r;
  double seconds = MsToSeconds(measure_end - measure_start);
  r.measurement_seconds = seconds;

  r.join_rt_ms = metrics_.join_rt().mean();
  r.join_rt_max_ms = metrics_.join_rt().max();
  r.joins_completed = metrics_.join_rt().count();
  r.join_throughput_qps =
      seconds > 0 ? static_cast<double>(r.joins_completed) / seconds : 0.0;
  r.avg_degree = metrics_.degree().mean();
  if (r.joins_completed > 0) {
    r.temp_pages_written_per_join =
        static_cast<double>(metrics_.temp_pages_written()) /
        static_cast<double>(r.joins_completed);
    r.temp_pages_read_per_join =
        static_cast<double>(metrics_.temp_pages_read()) /
        static_cast<double>(r.joins_completed);
  }

  r.oltp_rt_ms = metrics_.oltp_rt().mean();
  r.oltp_completed = metrics_.oltp_rt().count();
  r.oltp_throughput_tps =
      seconds > 0 ? static_cast<double>(r.oltp_completed) / seconds : 0.0;
  r.oltp_aborts = metrics_.oltp_aborts();

  r.scan_rt_ms = metrics_.scan_rt().mean();
  r.scans_completed = metrics_.scan_rt().count();
  r.update_rt_ms = metrics_.update_rt().mean();
  r.updates_completed = metrics_.update_rt().count();
  r.update_aborts = metrics_.update_aborts();
  r.multiway_rt_ms = metrics_.multiway_rt().mean();
  r.multiway_completed = metrics_.multiway_rt().count();

  r.cpu_utilization = metrics_.cpu_util().mean();
  r.disk_utilization = metrics_.disk_util().mean();
  r.memory_utilization = metrics_.mem_util().mean();
  r.avg_memory_queue_wait_ms = metrics_.memory_queue_wait().mean();

  for (const auto& pe : pes_) {
    r.lock_waits += pe->locks().lock_waits();
    r.deadlock_aborts += pe->locks().deadlock_aborts();
    r.buffer_hits += pe->buffer().buffer_hits();
    r.buffer_misses += pe->buffer().buffer_misses();
    r.buffer_evictions += pe->buffer().evictions();
    r.buffer_writebacks += pe->buffer().dirty_writebacks();
  }
  if (r.buffer_hits + r.buffer_misses > 0) {
    r.buffer_hit_ratio =
        static_cast<double>(r.buffer_hits) /
        static_cast<double>(r.buffer_hits + r.buffer_misses);
  }

  r.queries_timed_out = metrics_.queries_timed_out();
  r.queries_retried = metrics_.queries_retried();
  r.queries_failed = metrics_.queries_failed();
  r.queries_degraded = metrics_.queries_degraded();
  r.pe_crashes = metrics_.pe_crashes();
  r.pe_recoveries = metrics_.pe_recoveries();
  r.queries_shed = metrics_.queries_shed();
  r.link_partitions = metrics_.link_partitions();
  r.pes_added = metrics_.pes_added();
  r.pes_drained = metrics_.pes_drained();
  r.fragments_migrated = metrics_.fragments_migrated();
  r.migration_pages_moved = metrics_.migration_pages_moved();
  r.migration_pages_discarded = metrics_.migration_pages_discarded();
  r.migrations_replanned = metrics_.migrations_replanned();
  for (const auto& pe : pes_) {
    r.io_errors += pe->disks().io_errors();
    r.io_retries += pe->disks().io_retries();
    r.slow_disk_ms += pe->disks().slow_disk_extra_ms();
  }
  return r;
}

MetricsReport Cluster::Run() {
  if (ran_) {
    throw std::logic_error(
        "Cluster::Run() called twice on the same instance; a Cluster is "
        "single-shot (scheduler time, statistics and RNG streams are "
        "consumed) — construct a fresh Cluster for every run");
  }
  ran_ = true;

  auto wall_start = std::chrono::steady_clock::now();
  SpawnBackground();
  if (config_.faults.FailuresEnabled()) faults_->SpawnFaultProcesses();
  SimTime measure_start = 0.0;
  SimTime measure_end = 0.0;

  // With config_.shards > 1 the run advances through the sharded kernel's
  // conservative-window pacing (the wire time is the lookahead), but the
  // whole cluster still forms ONE logical shard group: the figure drivers'
  // executors violate the confinement discipline that genuine S-thread
  // execution requires (docs/sharding.md) — one query coroutine draws from
  // the shared workload RNG in global arrival order, reads control-node
  // state synchronously at plan time, and folds into the global metrics
  // accumulators — so partitioning them would change results, and the CI
  // contract is that --shards never changes a CSV byte.  The confined
  // protocol (request/handback messages over the mailbox band, control
  // node as its own entity: engine/confined.h) is what actually runs S
  // calendars on S threads; configs that cannot be confined fall back to
  // this degenerate path and say so once, below.
  const SimTime lookahead = ShardLookaheadMs(config_.network);
  if (config_.shards > 1) WarnShardFallbackOnce(config_);
  auto advance = [&](SimTime until) {
    if (config_.shards > 1) {
      sim::RunUntilWindowed(sched_, until, lookahead);
    } else {
      sched_.RunUntil(until);
    }
  };

  if (config_.single_user_mode) {
    metrics_.SetWarmupEnd(0.0);
    bool done = false;
    sched_.Spawn(ClosedLoop(
        config_.single_user_queries,
        [this](int64_t) -> sim::Task<> {
          if (config_.faults.Enabled()) {
            return faults_->Supervise([this](QueryAttempt* qa) {
              return ExecuteJoinQuery(*this, qa);
            });
          }
          return ExecuteJoinQuery(*this);
        },
        &done));
    while (!done && sched_.pending_events() > 0) {
      advance(sched_.Now() + 60000.0);
    }
    measure_end = sched_.Now();
  } else {
    SpawnOpenWorkload();
    metrics_.SetWarmupEnd(config_.warmup_ms);
    advance(config_.warmup_ms);
    ResetStatistics();
    measure_start = config_.warmup_ms;
    measure_end = config_.warmup_ms + config_.measurement_ms;
    advance(measure_end);
  }

  MetricsReport report = Collect(measure_start, measure_end);
  sched_.RequestShutdown();
  sched_.Run();  // drain in-flight work; generators observe the shutdown

  report.kernel_events = sched_.events_processed();
  report.kernel_handoffs = sched_.inline_resumes();
  if (tracer_ != nullptr) {
    // Post-run attribution: fold the event trace into per-subsystem
    // simulated-time and event-count breakdowns (exact even when the ring
    // wrapped — the fold is accumulated as records are written).
    report.trace_enabled = true;
    const auto& breakdown = tracer_->breakdown();
    for (size_t s = 0; s < sim::kNumTraceSubsystems; ++s) {
      report.trace_subsystem_events[s] = breakdown[s].events;
      report.trace_subsystem_time_ms[s] = breakdown[s].sim_time_ms;
    }
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.kernel_events_per_sec =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.kernel_events) / report.wall_seconds
          : 0.0;
  return report;
}

}  // namespace pdblb
