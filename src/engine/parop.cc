// Copyright 2026 the pdblb authors. MIT license.

#include "engine/parop.h"

#include <algorithm>

#include "core/skew.h"

namespace pdblb::parop {

std::vector<int64_t> SplitEvenly(int64_t total, int parts) {
  std::vector<int64_t> out(parts, total / parts);
  int64_t rem = total % parts;
  for (int64_t i = 0; i < rem; ++i) ++out[static_cast<size_t>(i)];
  return out;
}

sim::Task<> SendBatch(Cluster& c, PeId src, PeId dst, int64_t tuples,
                      int tuple_size, BatchChannel* channel) {
  co_await c.net().Transfer(src, dst, tuples * tuple_size);
  channel->Send(Batch{tuples});
}

sim::Task<> DeliverControl(Cluster& c, PeId dest) {
  co_await c.sched().Delay(c.config().network.wire_time_per_packet_ms);
  const CpuCosts& costs = c.config().costs;
  co_await UseCpu(c, dest, costs.receive_message + costs.copy_message);
}

sim::Task<> CommitRound(Cluster& c, PeId coord, PeId dest) {
  const CpuCosts& costs = c.config().costs;
  double wire = c.config().network.wire_time_per_packet_ms;
  co_await c.sched().Delay(wire);
  co_await UseCpu(c, dest, costs.receive_message + costs.copy_message);
  co_await UseCpu(c, dest, costs.send_message + costs.copy_message);
  co_await c.sched().Delay(wire);
  co_await UseCpu(c, coord, costs.receive_message + costs.copy_message);
}

sim::Task<> TwoPhaseCommitRounds(Cluster& c, PeId coord, PeId dest) {
  const CpuCosts& costs = c.config().costs;
  double wire = c.config().network.wire_time_per_packet_ms;
  // Phase 1: prepare.  The participant forces its log before voting.
  co_await c.sched().Delay(wire);
  co_await UseCpu(c, dest, costs.receive_message + costs.copy_message);
  co_await c.pe(dest).disks().LogWrite();
  co_await UseCpu(c, dest, costs.send_message + costs.copy_message);
  co_await c.sched().Delay(wire);
  co_await UseCpu(c, coord, costs.receive_message + costs.copy_message);
  // Phase 2: commit.
  co_await UseCpu(c, coord, costs.send_message + costs.copy_message);
  co_await CommitRound(c, coord, dest);
}

sim::Task<> LockPageShared(Cluster& c, PeId node, TxnId txn, PageKey page) {
  LockManager& locks = c.pe(node).locks();
  while (!co_await locks.Lock(txn, LockKey{page.relation_id, page.page_no},
                              LockMode::kShared)) {
    locks.ReleaseAll(txn);
    co_await c.sched().Delay(10.0);
  }
}

sim::Task<> ScanRedistribute(
    Cluster& c, PeId node, const Relation& rel, int64_t sel_tuples,
    const std::vector<PeId>& dests, const std::vector<double>& dest_frac,
    const std::vector<std::unique_ptr<BatchChannel>>& channels,
    sim::TaskGroup& sends, TxnId read_lock_txn, PeId fragment_owner) {
  if (sel_tuples <= 0) co_return;
  const SystemConfig& cfg = c.config();
  const CpuCosts& costs = cfg.costs;
  ProcessingElement& pe = c.pe(node);
  const PeId owner = fragment_owner < 0 ? node : fragment_owner;

  const int bf = rel.blocking_factor();
  const int tuple_size = rel.config().tuple_size_bytes;
  const int64_t frag_pages = rel.PagesAt(owner);
  const int64_t pages =
      std::min<int64_t>(frag_pages, (sel_tuples + bf - 1) / bf);
  const int64_t start =
      c.workload_rng().UniformInt(0, std::max<int64_t>(0, frag_pages - 1));

  // Clustered B+-tree descent to the start of the selected range.
  co_await UseCpu(c, node, costs.read_tuple * rel.IndexLevels(owner));

  const int p = static_cast<int>(dests.size());
  const int64_t packet_tuples =
      std::max<int64_t>(1, cfg.network.packet_size_bytes / tuple_size);

  std::vector<int64_t> per_dest = SplitWeighted(sel_tuples, dest_frac);
  std::vector<double> accum(p, 0.0);
  std::vector<int64_t> sent(p, 0);

  // Pages are processed in striped groups: one group's I/O is spread across
  // the whole disk array (horizontal declustering over disks), then CPU is
  // charged per prefetch chunk while packets stream out.
  const int64_t group_pages =
      static_cast<int64_t>(cfg.disk.prefetch_pages) * cfg.disk.disks_per_pe;
  int64_t remaining = sel_tuples;
  int64_t processed = 0;
  while (processed < pages && remaining > 0) {
    int64_t pos = (start + processed) % frag_pages;
    int64_t len = std::min({group_pages, pages - processed, frag_pages - pos});
    if (read_lock_txn != 0) {
      for (int64_t i = 0; i < len; ++i) {
        co_await LockPageShared(c, owner, read_lock_txn,
                                rel.DataPage(owner, pos + i));
      }
    }
    co_await pe.buffer().FetchRange(rel.DataPage(owner, pos), len);
    processed += len;

    for (int64_t chunk = 0; chunk < len && remaining > 0;
         chunk += cfg.disk.prefetch_pages) {
      int64_t chunk_pages =
          std::min<int64_t>(cfg.disk.prefetch_pages, len - chunk);
      int64_t in_chunk = std::min<int64_t>(chunk_pages * bf, remaining);
      remaining -= in_chunk;
      co_await UseCpu(c, node,
                      in_chunk * (costs.read_tuple + costs.hash_tuple +
                                  costs.write_output_tuple));
      // Hash partitioning: every destination accumulates its partition
      // fraction; full packets are shipped as soon as they fill.
      for (int j = 0; j < p; ++j) {
        accum[j] += static_cast<double>(in_chunk) * dest_frac[j];
        while (accum[j] >= static_cast<double>(packet_tuples) &&
               sent[j] + packet_tuples <= per_dest[j]) {
          accum[j] -= static_cast<double>(packet_tuples);
          sent[j] += packet_tuples;
          sends.Spawn(SendBatch(c, node, dests[j], packet_tuples, tuple_size,
                                channels[j].get()));
        }
      }
    }
  }
  // Final partial packet per (scan node, destination) pair: this is the
  // redistribution overhead that grows with the number of nodes.
  for (int j = 0; j < p; ++j) {
    int64_t rest = per_dest[j] - sent[j];
    if (rest > 0) {
      sends.Spawn(
          SendBatch(c, node, dests[j], rest, tuple_size, channels[j].get()));
    }
  }
}

sim::Task<> Redistribute(
    Cluster& c, PeId src, int64_t tuples, int tuple_size,
    const std::vector<PeId>& dests, const std::vector<double>& dest_frac,
    const std::vector<std::unique_ptr<BatchChannel>>& channels,
    sim::TaskGroup& sends) {
  if (tuples <= 0) co_return;
  const SystemConfig& cfg = c.config();
  const CpuCosts& costs = cfg.costs;
  const int p = static_cast<int>(dests.size());
  const int64_t packet_tuples =
      std::max<int64_t>(1, cfg.network.packet_size_bytes / tuple_size);

  // Partitioning CPU: hash + output-buffer write per tuple.
  co_await UseCpu(
      c, src, tuples * (costs.hash_tuple + costs.write_output_tuple));

  std::vector<int64_t> per_dest = SplitWeighted(tuples, dest_frac);
  for (int j = 0; j < p; ++j) {
    int64_t left = per_dest[j];
    while (left > 0) {
      int64_t batch = std::min(packet_tuples, left);
      left -= batch;
      sends.Spawn(
          SendBatch(c, src, dests[j], batch, tuple_size, channels[j].get()));
    }
  }
}

}  // namespace pdblb::parop
