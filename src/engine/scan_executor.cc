// Copyright 2026 the pdblb authors. MIT license.

#include "engine/scan_executor.h"

#include <algorithm>
#include <set>
#include <vector>

#include "engine/faults.h"
#include "engine/parop.h"
#include "simkern/task_group.h"

namespace pdblb {
namespace {

using parop::CommitRound;
using parop::DeliverControl;
using parop::LockPageShared;
using parop::SplitEvenly;
using parop::TwoPhaseCommitRounds;
using parop::UseCpu;

/// One data processor's share of a scan query: locate + read + filter the
/// fragment, then ship the selected tuples to the coordinator.  Under
/// strict 2PL (`read_lock_txn` != 0) every touched page is read-locked.
/// `node` is the fragment's immutable home (geometry, page keys, lock
/// site); `exec` the current owner whose buffer/CPU/disks serve it (equal
/// until an elastic migration moves the fragment).
sim::Task<> ScanFragment(Cluster& c, PeId node, PeId exec,
                         const Relation& rel, ScanAccess access,
                         int64_t examined_share, int64_t selected_share,
                         PeId coord, TxnId read_lock_txn) {
  const SystemConfig& cfg = c.config();
  const CpuCosts& costs = cfg.costs;
  ProcessingElement& pe = c.pe(exec);
  const int bf = rel.blocking_factor();
  const int64_t frag_pages = rel.PagesAt(node);

  switch (access) {
    case ScanAccess::kRelationScan: {
      // Read every fragment page sequentially and examine every tuple.
      const int64_t group_pages =
          static_cast<int64_t>(cfg.disk.prefetch_pages) *
          cfg.disk.disks_per_pe;
      for (int64_t pos = 0; pos < frag_pages; pos += group_pages) {
        int64_t len = std::min(group_pages, frag_pages - pos);
        if (read_lock_txn != 0) {
          for (int64_t i = 0; i < len; ++i) {
            co_await LockPageShared(c, node, read_lock_txn,
                                    rel.DataPage(node, pos + i));
          }
        }
        co_await pe.buffer().FetchRange(rel.DataPage(node, pos), len);
        co_await UseCpu(c, exec, len * bf * costs.read_tuple);
      }
      break;
    }
    case ScanAccess::kClusteredIndex: {
      // Descend the index, then read just the selected range.
      co_await UseCpu(c, exec, costs.read_tuple * rel.IndexLevels(node));
      int64_t pages =
          std::min<int64_t>(frag_pages, (selected_share + bf - 1) / bf);
      int64_t start = c.workload_rng().UniformInt(
          0, std::max<int64_t>(0, frag_pages - 1));
      const int64_t group_pages =
          static_cast<int64_t>(cfg.disk.prefetch_pages) *
          cfg.disk.disks_per_pe;
      for (int64_t done = 0; done < pages;) {
        int64_t pos = (start + done) % frag_pages;
        int64_t len = std::min({group_pages, pages - done, frag_pages - pos});
        if (read_lock_txn != 0) {
          for (int64_t i = 0; i < len; ++i) {
            co_await LockPageShared(c, node, read_lock_txn,
                                    rel.DataPage(node, pos + i));
          }
        }
        co_await pe.buffer().FetchRange(rel.DataPage(node, pos), len);
        co_await UseCpu(c, exec, len * bf * costs.read_tuple);
        done += len;
      }
      break;
    }
    case ScanAccess::kUnclusteredIndex: {
      // Descend once, then one leaf page and one (random) data page per
      // qualifying tuple — the access path OLTP uses, scaled up.
      co_await UseCpu(c, exec, costs.read_tuple * rel.IndexLevels(node));
      int64_t leaf_pages = std::max<int64_t>(1, rel.IndexLeafPages(node));
      for (int64_t t = 0; t < selected_share; ++t) {
        int64_t leaf = c.workload_rng().UniformInt(0, leaf_pages - 1);
        co_await pe.buffer().Fetch(rel.IndexLeafPage(node, leaf),
                                   AccessPattern::kRandom);
        int64_t page = c.workload_rng().UniformInt(
            0, std::max<int64_t>(0, frag_pages - 1));
        if (read_lock_txn != 0) {
          co_await LockPageShared(c, node, read_lock_txn,
                                  rel.DataPage(node, page));
        }
        co_await pe.buffer().Fetch(rel.DataPage(node, page),
                                   AccessPattern::kRandom);
        co_await UseCpu(c, exec, costs.read_tuple);
      }
      break;
    }
  }
  (void)examined_share;

  // Materialize and ship the selected tuples to the coordinator.
  co_await UseCpu(c, exec, selected_share * costs.write_output_tuple);
  if (exec != coord && selected_share > 0) {
    co_await c.net().Transfer(exec, coord,
                              selected_share * rel.config().tuple_size_bytes);
  }
}

}  // namespace

sim::Task<> ExecuteScanQuery(Cluster& c, QueryAttempt* qa) {
  sim::Scheduler& sched = c.sched();
  const SystemConfig& cfg = c.config();
  const ScanQueryConfig& q = cfg.scan_query;
  const CpuCosts& costs = cfg.costs;
  const SimTime t0 = sched.Now();

  const Relation& rel = c.db().target(q.relation);
  const std::vector<PeId>& nodes = c.db().target_nodes(q.relation);
  // Execution sites: the fragments' current owners (== nodes until an
  // elastic migration moves one).  Data processing, messages and admission
  // happen at the owner; geometry and the read-lock site stay at the home.
  std::vector<PeId> execs(nodes);
  if (c.elastic_enabled()) {
    for (size_t i = 0; i < execs.size(); ++i) {
      execs[i] = c.OwnerOf(rel.id(), nodes[i]);
    }
  }

  const PeId coord = c.MemberPe(
      static_cast<PeId>(c.workload_rng().UniformInt(0, c.num_pes() - 1)));
  if (qa != nullptr &&
      (!qa->AddParticipant(coord) || !qa->AddParticipants(execs))) {
    co_return;
  }
  co_await c.pe(coord).admission().Acquire();
  AdmissionGuard admission(sched, c.pe(coord).admission());
  co_await UseCpu(c, coord, costs.initiate_txn);

  const TxnId read_txn =
      cfg.cc_scheme == CcScheme::kTwoPhaseLocking ? c.NextTxnId() : 0;
  TxnLocksGuard read_locks(&c, read_txn);
  for (PeId node : nodes) read_locks.AddPe(node);

  // Subquery startup (the scan placement is prescribed by the data
  // allocation, so no control-node round trip is needed).
  {
    sim::TaskGroup startup(sched);
    for (PeId dest : execs) {
      if (dest == coord) continue;
      co_await UseCpu(c, coord, costs.send_message + costs.copy_message);
      startup.Spawn(DeliverControl(c, dest));
    }
    co_await startup.Wait();
  }

  const int64_t selected_total = static_cast<int64_t>(
      q.selectivity * static_cast<double>(rel.num_tuples()));
  std::vector<int64_t> selected_share =
      SplitEvenly(selected_total, static_cast<int>(nodes.size()));
  std::vector<int64_t> examined_share =
      SplitEvenly(rel.num_tuples(), static_cast<int>(nodes.size()));

  {
    sim::TaskGroup scans(sched);
    for (size_t i = 0; i < nodes.size(); ++i) {
      scans.Spawn(ScanFragment(c, nodes[i], execs[i], rel, q.access,
                               examined_share[i], selected_share[i], coord,
                               read_txn));
    }
    co_await scans.Wait();
  }

  // Merge the sorted/streamed inputs at the coordinator.
  co_await UseCpu(c, coord, selected_total * costs.read_tuple);

  // Read-only optimized commit: one round to release the read locks at the
  // data processors.
  {
    sim::TaskGroup commits(sched);
    for (PeId dest : execs) {
      if (dest == coord) continue;
      co_await UseCpu(c, coord, costs.send_message + costs.copy_message);
      commits.Spawn(CommitRound(c, coord, dest));
    }
    co_await commits.Wait();
    if (read_txn != 0) {
      for (PeId node : nodes) c.pe(node).locks().ReleaseAll(read_txn);
    }
    read_locks.Disarm();
  }
  co_await UseCpu(c, coord, costs.terminate_txn);
  admission.ReleaseNow();
  c.metrics().RecordScan(sched.Now() - t0, sched.Now());
}

namespace {

/// One data processor's share of an update statement: locate the affected
/// tuples, lock their pages exclusively (ascending within the fragment, so
/// page locks conflict with the page-level read locks of queries under
/// CcScheme::kTwoPhaseLocking), apply the updates.  Under multiversion CC
/// the before-images are copied to a version pool (extra CPU per tuple and
/// one asynchronous version-page write per dirtied page).  Sets *victim if
/// this transaction was chosen as a deadlock victim.
sim::Task<> UpdateFragment(Cluster& c, PeId node, PeId exec,
                           const Relation& rel, bool index_supported,
                           int64_t update_share, TxnId txn,
                           int32_t version_relation_id, bool* victim) {
  const SystemConfig& cfg = c.config();
  const CpuCosts& costs = cfg.costs;
  // Home/owner split as in ScanFragment: pages and CPU are served by the
  // owner, while the X locks stay at the home's lock manager — the
  // fragment's lock site never moves, so updates and scans of a migrated
  // fragment still conflict at one place.
  ProcessingElement& pe = c.pe(exec);
  const int bf = rel.blocking_factor();
  const int64_t frag_pages = rel.PagesAt(node);
  if (update_share <= 0 || frag_pages <= 0) co_return;

  const int64_t pages =
      std::min<int64_t>(frag_pages, (update_share + bf - 1) / bf);
  const int64_t start =
      c.workload_rng().UniformInt(0, std::max<int64_t>(0, frag_pages - 1));

  if (index_supported) {
    // Clustered-index descent straight to the affected range.
    co_await UseCpu(c, exec, costs.read_tuple * rel.IndexLevels(node));
  } else {
    // No index support: full fragment scan to find the affected tuples.
    const int64_t group_pages = static_cast<int64_t>(cfg.disk.prefetch_pages) *
                                cfg.disk.disks_per_pe;
    for (int64_t pos = 0; pos < frag_pages; pos += group_pages) {
      int64_t len = std::min(group_pages, frag_pages - pos);
      co_await pe.buffer().FetchRange(rel.DataPage(node, pos), len);
      co_await UseCpu(c, exec, len * bf * costs.read_tuple);
    }
  }

  const bool mvcc = cfg.cc_scheme == CcScheme::kMultiversion;
  int64_t remaining = update_share;
  int64_t version_page = 0;
  for (int64_t i = 0; i < pages && remaining > 0; ++i) {
    int64_t page = (start + i) % frag_pages;
    PageKey key = rel.DataPage(node, page);
    bool granted = co_await c.pe(node).locks().Lock(
        txn, LockKey{key.relation_id, key.page_no}, LockMode::kExclusive);
    if (!granted) {
      *victim = true;
      co_return;
    }
    co_await pe.buffer().Fetch(key, AccessPattern::kSequential);
    int64_t in_page = std::min<int64_t>(bf, remaining);
    remaining -= in_page;
    co_await UseCpu(c, exec, in_page * (costs.read_tuple +
                                        costs.write_output_tuple));
    if (mvcc) {
      // Copy the before-images into the version pool: one extra tuple write
      // each plus an asynchronous version-page append.
      co_await UseCpu(c, exec, in_page * costs.write_output_tuple +
                                   costs.io_overhead);
      c.sched().Spawn(pe.disks().WriteBatch(
          PageKey{version_relation_id, version_page++}, 1));
    }
    pe.buffer().MarkDirty(key);
  }
}

}  // namespace

sim::Task<> ExecuteUpdateQuery(Cluster& c, QueryAttempt* qa) {
  sim::Scheduler& sched = c.sched();
  const SystemConfig& cfg = c.config();
  const UpdateQueryConfig& q = cfg.update_query;
  const CpuCosts& costs = cfg.costs;
  const SimTime t0 = sched.Now();

  const Relation& rel = c.db().target(q.relation);
  const std::vector<PeId>& nodes = c.db().target_nodes(q.relation);
  // Owner routing, exactly as in ExecuteScanQuery.
  std::vector<PeId> execs(nodes);
  if (c.elastic_enabled()) {
    for (size_t i = 0; i < execs.size(); ++i) {
      execs[i] = c.OwnerOf(rel.id(), nodes[i]);
    }
  }

  const PeId coord = c.MemberPe(
      static_cast<PeId>(c.workload_rng().UniformInt(0, c.num_pes() - 1)));
  if (qa != nullptr &&
      (!qa->AddParticipant(coord) || !qa->AddParticipants(execs))) {
    co_return;
  }
  co_await c.pe(coord).admission().Acquire();
  AdmissionGuard admission(sched, c.pe(coord).admission());

  const int64_t update_total = std::max<int64_t>(
      1, static_cast<int64_t>(q.selectivity *
                              static_cast<double>(rel.num_tuples())));
  std::vector<int64_t> update_share =
      SplitEvenly(update_total, static_cast<int>(nodes.size()));

  int aborts = 0;
  while (true) {
    TxnId txn = c.NextTxnId();
    TxnLocksGuard txn_locks(&c, txn);
    for (PeId node : nodes) txn_locks.AddPe(node);
    co_await UseCpu(c, coord, costs.initiate_txn);

    {
      sim::TaskGroup startup(sched);
      for (PeId dest : execs) {
        if (dest == coord) continue;
        co_await UseCpu(c, coord, costs.send_message + costs.copy_message);
        startup.Spawn(DeliverControl(c, dest));
      }
      co_await startup.Wait();
    }

    bool victim = false;
    {
      const int32_t version_rel = c.NextTempRelationId();
      sim::TaskGroup updates(sched);
      for (size_t i = 0; i < nodes.size(); ++i) {
        updates.Spawn(UpdateFragment(c, nodes[i], execs[i], rel,
                                     q.index_supported, update_share[i], txn,
                                     version_rel, &victim));
      }
      co_await updates.Wait();
    }

    if (!victim) {
      // Full two-phase commit: every participant forces its log in the
      // prepare phase; the coordinator serializes its message sends.
      sim::TaskGroup commits(sched);
      for (PeId dest : execs) {
        if (dest == coord) continue;
        co_await UseCpu(c, coord, costs.send_message + costs.copy_message);
        commits.Spawn(TwoPhaseCommitRounds(c, coord, dest));
      }
      co_await c.pe(coord).disks().LogWrite();
      co_await commits.Wait();
      for (PeId node : nodes) c.pe(node).locks().ReleaseAll(txn);
      txn_locks.Disarm();
      co_await UseCpu(c, coord, costs.terminate_txn);
      break;
    }

    // Deadlock victim: release everything, back off, restart.
    for (PeId node : nodes) c.pe(node).locks().ReleaseAll(txn);
    txn_locks.Disarm();
    ++aborts;
    co_await sched.Delay(10.0);
  }

  admission.ReleaseNow();
  c.metrics().RecordUpdate(sched.Now() - t0, aborts, sched.Now());
}

}  // namespace pdblb
