// Copyright 2026 the pdblb authors. MIT license.
//
// Standalone scan and update query classes (paper Section 4 lists relation
// scan, clustered index scan, non-clustered index scan and update statements
// among the supported query types).
//
// Scan queries read their target relation in parallel at the data
// processors (the processor allocation of scans is always prescribed by the
// data allocation — paper Section 4, "Workload allocation") and merge the
// selected tuples at the coordinator; they commit with the read-only
// optimization.
//
// Update statements locate the affected tuples (via the clustered index or
// a full scan when no index supports the predicate), acquire exclusive
// tuple locks under strict 2PL, and commit with a full two-phase commit
// including forced log writes.  Deadlock victims restart the statement.

#ifndef PDBLB_ENGINE_SCAN_EXECUTOR_H_
#define PDBLB_ENGINE_SCAN_EXECUTOR_H_

#include "engine/cluster.h"
#include "engine/faults.h"
#include "simkern/task.h"

namespace pdblb {

/// Executes one scan query (config: SystemConfig::scan_query).  `qa` links
/// the query to fault supervision (engine/faults.h); nullptr when faults
/// are disabled.
sim::Task<> ExecuteScanQuery(Cluster& cluster, QueryAttempt* qa = nullptr);

/// Executes one update statement (config: SystemConfig::update_query).
sim::Task<> ExecuteUpdateQuery(Cluster& cluster, QueryAttempt* qa = nullptr);

}  // namespace pdblb

#endif  // PDBLB_ENGINE_SCAN_EXECUTOR_H_
