// Copyright 2026 the pdblb authors. MIT license.

#include "engine/oltp_executor.h"

#include <algorithm>

#include "engine/faults.h"
#include "engine/parop.h"

namespace pdblb {
namespace {

using parop::UseCpu;

/// One execution attempt under strict 2PL; returns false if this txn was
/// chosen as a deadlock victim while waiting for a lock.
sim::Task<bool> OltpAttempt(Cluster& c, PeId home, TxnId txn) {
  const SystemConfig& cfg = c.config();
  const CpuCosts& costs = cfg.costs;
  ProcessingElement& pe = c.pe(home);
  const Relation* rel = c.db().oltp_relation(home);

  // The transaction request arrives as a message from the client terminal;
  // the reply is sent back at EOT (debit-credit interaction model).
  co_await UseCpu(c, home, costs.receive_message + costs.copy_message);
  co_await UseCpu(c, home, costs.initiate_txn);

  const int64_t frag_pages = rel->PagesAt(home);
  const int bf = rel->blocking_factor();
  const int64_t hot_pages = std::min<int64_t>(cfg.oltp.hot_pages, frag_pages);

  for (int k = 0; k < cfg.oltp.tuple_accesses; ++k) {
    // Debit-credit skew: hot branch/teller pages vs. cold account pages.
    int64_t page;
    if (c.workload_rng().Uniform() < cfg.oltp.hot_access_fraction) {
      page = c.workload_rng().UniformInt(0, hot_pages - 1);
    } else {
      page = c.workload_rng().UniformInt(0, frag_pages - 1);
    }
    int64_t tuple = page * bf + c.workload_rng().UniformInt(0, bf - 1);

    LockMode mode =
        cfg.oltp.updates ? LockMode::kExclusive : LockMode::kShared;
    bool granted =
        co_await pe.locks().Lock(txn, LockKey{rel->id(), tuple}, mode);
    if (!granted) co_return false;

    // Non-clustered index: inner levels are assumed cached (CPU only), the
    // leaf page and the data page go through the buffer.  OLTP accesses have
    // priority and may steal join working space.
    co_await UseCpu(c, home, costs.read_tuple * rel->IndexLevels(home));
    int64_t leaf = tuple / std::max<int64_t>(1, rel->TuplesAt(home) /
                                                    std::max<int64_t>(
                                                        1, rel->IndexLeafPages(
                                                               home)));
    leaf = std::min(leaf, rel->IndexLeafPages(home) - 1);
    co_await pe.buffer().Fetch(rel->IndexLeafPage(home, leaf),
                               AccessPattern::kRandom,
                               /*priority_oltp=*/true);
    co_await pe.buffer().Fetch(rel->DataPage(home, page),
                               AccessPattern::kRandom,
                               /*priority_oltp=*/true);
    co_await UseCpu(c, home, costs.read_tuple);
    if (cfg.oltp.updates) {
      co_await UseCpu(c, home, costs.write_output_tuple);
      if (cfg.cc_scheme == CcScheme::kMultiversion) {
        // Version maintenance: copy the before-image to the version pool.
        co_await UseCpu(c, home, costs.write_output_tuple);
      }
      pe.buffer().MarkDirty(rel->DataPage(home, page));
    }
  }
  if (cfg.oltp.updates && cfg.cc_scheme == CcScheme::kMultiversion) {
    // One batched version-page append per transaction.
    co_await UseCpu(c, home, costs.io_overhead);
    c.sched().Spawn(
        pe.disks().WriteBatch(PageKey{c.NextTempRelationId(), 0}, 1));
  }

  // Commit: force the log, then terminate (no-force for data pages).
  co_await pe.disks().LogWrite();
  co_await UseCpu(c, home, costs.terminate_txn);
  co_await UseCpu(c, home, costs.send_message + costs.copy_message);
  co_return true;
}

}  // namespace

sim::Task<> ExecuteOltpTransaction(Cluster& c, PeId home, QueryAttempt* qa) {
  const SimTime t0 = c.sched().Now();
  ProcessingElement& pe = c.pe(home);
  if (qa != nullptr && !qa->AddParticipant(home)) co_return;
  co_await pe.admission().Acquire();
  AdmissionGuard admission(c.sched(), pe.admission());

  int aborts = 0;
  while (true) {
    TxnId txn = c.NextTxnId();
    TxnLocksGuard txn_locks(&c, txn);
    txn_locks.AddPe(home);
    bool ok = co_await OltpAttempt(c, home, txn);
    pe.locks().ReleaseAll(txn);
    txn_locks.Disarm();
    if (ok) break;
    ++aborts;
    // Deadlock victim: back off and restart with a fresh txn id.
    co_await c.sched().Delay(10.0);
  }

  admission.ReleaseNow();
  c.metrics().RecordOltp(c.sched().Now() - t0, aborts, c.sched().Now());
}

}  // namespace pdblb
