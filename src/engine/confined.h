// Copyright 2026 the pdblb authors. MIT license.
//
// Shard-confined cluster execution: the parallel counterpart of the
// Cluster figure drivers, built so that an 80-PE run genuinely executes S
// scheduler calendars on S threads (ROADMAP confinement plan, stages 1+2).
//
// Confinement discipline (docs/sharding.md has the full protocol):
//
//  * Every query coroutine is pinned to its coordinator PE's shard and
//    touches only that PE's resources directly.  All cross-PE interaction
//    is message-shaped: wire crossings ride ShardWire over the sharded
//    kernel's mailbox band (request/handback pairs), remote CPU service is
//    a sim::RemoteUse await, and the receiving endpoint's CPU leg is
//    charged on the receiver's own shard (ShardWire::Deliver).
//
//  * The control node is its own entity (id = num_pes) on its own shard
//    slot, fed by Post-ed load reports every control_report_interval_ms —
//    four orders of magnitude above the 0.1 ms wire lookahead — and serves
//    placement plans through a request/reply round trip.  No PE ever reads
//    control state synchronously.
//
//  * Per-PE randomness comes from per-entity forks of the root seed and is
//    drawn only on the owning shard; per-entity statistic cells are merged
//    in entity-id order after Run().
//
// Under those rules the sharded kernel's message-band ordering makes every
// per-entity result bit-identical for any shard count, serial or parallel
// (tests/sharded_test.cc pins it across --shards=1/2/3/4/num_pes).  The
// full figure drivers (engine/cluster.cc) do NOT satisfy the discipline —
// they share RNG streams, metrics and control state across PEs — which is
// exactly why they fall back to the degenerate windowed path and why this
// subsystem exists as the confined execution target.

#ifndef PDBLB_ENGINE_CONFINED_H_
#define PDBLB_ENGINE_CONFINED_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/config.h"
#include "common/units.h"

namespace pdblb {

namespace sim {
class ShardedScheduler;
}  // namespace sim

/// Workload shape for RunConfinedCluster: a closed-loop multiprogramming
/// mix of scan/aggregate queries, each coordinated by its home PE with
/// `scan_processors` remote participants chosen by the control node.
struct ConfinedClusterOptions {
  int num_pes = 80;
  /// Scheduler shards (1..num_pes + 1; the +1 entity is the control node).
  int shards = 1;
  /// false: serial windowed execution (debug / determinism checks).
  bool parallel = true;
  /// Closed-loop query slots per PE (the paper's MPL knob).
  int mpl = 4;
  /// Queries each slot executes before retiring.
  int queries_per_slot = 4;
  /// Remote scan participants per query (control node picks the least
  /// CPU-utilized alive PEs).
  int scan_processors = 4;
  /// Pages each participant reads from its local declustered fragment
  /// (striped read; 0 with use_disks=false skips the I/O system).
  int64_t pages_per_fragment = 16;
  /// Tuples each participant ships back to the coordinator.
  int64_t result_tuples = 512;
  /// Load reports each PE sends to the control entity (one per
  /// control_report_interval_ms; reporting also bounds the sim horizon).
  int report_rounds = 8;
  /// Attach a full per-PE DiskArray (controller + cache + spindles).
  bool use_disks = true;
  uint64_t seed = 42;
  /// Costs, speeds, network and disk parameters, control report interval.
  SystemConfig base;
  /// Test hook, called after the sharded scheduler and entities are built
  /// and before any work is spawned (e.g. to attach per-shard tracers).
  std::function<void(sim::ShardedScheduler&)> instrument;
};

/// Per-PE outcome; every field is written only by the owning entity's
/// shard (or derived from such cells) and is bit-identical across shard
/// counts and serial/parallel execution.
struct ConfinedPeResult {
  int64_t queries = 0;
  double sum_response_ms = 0.0;
  double max_response_ms = 0.0;
  double done_at_ms = 0.0;        ///< Last query completion on this PE.
  double cpu_busy_ms = 0.0;       ///< CPU server busy integral.
  uint64_t cpu_completions = 0;   ///< CPU service intervals completed.
  int64_t physical_reads = 0;     ///< Data-disk page reads (0 w/o disks).
  int64_t messages_sent = 0;      ///< ShardWire messages originated here.
  int64_t reports_sent = 0;       ///< Load reports posted to control.

  bool operator==(const ConfinedPeResult&) const = default;
};

struct ConfinedClusterReport {
  std::vector<ConfinedPeResult> per_pe;  ///< Indexed by PE, entity order.
  int64_t control_reports_received = 0;  ///< Load reports the control saw.
  int64_t control_plans_served = 0;      ///< Placement round trips served.
  uint64_t windows = 0;                  ///< Conservative windows executed.
  uint64_t cross_shard_messages = 0;     ///< Mailbox-routed messages.
  uint64_t events = 0;                   ///< Total dispatched events.
  double sim_time_ms = 0.0;              ///< Max shard clock after Run().
  double wall_seconds = 0.0;             ///< Host wall clock for Run().

  /// The shard-count-invariant projection (everything except wall clock
  /// and window/cross-shard transport counters).
  bool SameSimulationAs(const ConfinedClusterReport& other) const {
    return per_pe == other.per_pe &&
           control_reports_received == other.control_reports_received &&
           control_plans_served == other.control_plans_served &&
           sim_time_ms == other.sim_time_ms;
  }
};

/// Builds the confined cluster (num_pes PE entities + 1 control entity on
/// a ShardedScheduler with `shards` calendars), runs the closed-loop
/// workload to completion, and returns the merged report.
ConfinedClusterReport RunConfinedCluster(const ConfinedClusterOptions& options);

}  // namespace pdblb

#endif  // PDBLB_ENGINE_CONFINED_H_
