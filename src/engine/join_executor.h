// Copyright 2026 the pdblb authors. MIT license.
//
// Parallel hash-join query execution (paper Sections 2 and 4): a coordinator
// admits the query, asks the load-balancing policy for the degree of join
// parallelism and the join processors, starts the subqueries, drives the
// building phase (parallel scan of A, dynamic redistribution, PPHJ build),
// the probing phase (parallel scan of B, redistribution, probe), merges the
// results and runs the read-only-optimized distributed commit.

#ifndef PDBLB_ENGINE_JOIN_EXECUTOR_H_
#define PDBLB_ENGINE_JOIN_EXECUTOR_H_

#include "engine/cluster.h"
#include "engine/faults.h"
#include "simkern/task.h"

namespace pdblb {

/// Executes one join query end to end; records metrics on completion.
/// Spawn via Scheduler::Spawn (open workload) or await (single-user mode).
/// `qa` links the query to the fault injector's supervision (fail fast on
/// dead PEs, cancellation on crash); nullptr in fault-free runs.
sim::Task<> ExecuteJoinQuery(Cluster& cluster, QueryAttempt* qa = nullptr);

}  // namespace pdblb

#endif  // PDBLB_ENGINE_JOIN_EXECUTOR_H_
