// Copyright 2026 the pdblb authors. MIT license.
//
// Cluster: the assembled Shared Nothing database system.  Owns the event
// scheduler, all PEs, the network, the control node, the deadlock detector,
// the load-balancing policy and the measurement protocol.  This is the main
// entry point of the public API:
//
//   SystemConfig cfg;                       // paper defaults
//   cfg.num_pes = 80;
//   cfg.strategy = strategies::OptIOCpu();
//   Cluster cluster(cfg);
//   MetricsReport r = cluster.Run();
//   std::cout << r.join_rt_ms << "\n";

#ifndef PDBLB_ENGINE_CLUSTER_H_
#define PDBLB_ENGINE_CLUSTER_H_

#include <memory>
#include <optional>
#include <vector>

#include "catalog/database.h"
#include "catalog/ownership.h"
#include "common/config.h"
#include "common/status.h"
#include "core/control_node.h"
#include "core/cost_model.h"
#include "core/strategies.h"
#include "engine/metrics.h"
#include "engine/pe.h"
#include "lockmgr/deadlock_detector.h"
#include "netsim/network.h"
#include "simkern/rng.h"
#include "simkern/scheduler.h"
#include "simkern/tracer.h"
#include "workload/trace.h"

namespace pdblb {

class ElasticityManager;
class FaultInjector;

class Cluster {
 public:
  /// The configuration must satisfy SystemConfig::Validate(); construction
  /// asserts on invalid configurations (use Validate() directly for
  /// user-facing checks).
  explicit Cluster(const SystemConfig& config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- component access ----------------------------------------------------
  const SystemConfig& config() const { return config_; }
  sim::Scheduler& sched() { return sched_; }
  Network& net() { return *net_; }
  ControlNode& control() { return *control_; }
  const Database& db() const { return *db_; }
  const CostModel& cost_model() const { return *cost_model_; }
  LoadBalancingPolicy& policy() { return *policy_; }
  MetricsCollector& metrics() { return metrics_; }
  ProcessingElement& pe(PeId id) { return *pes_[id]; }
  int num_pes() const { return config_.num_pes; }

  /// The event tracer, when config.trace.enabled and the build has tracing
  /// compiled in; nullptr otherwise.  Valid for the Cluster's lifetime —
  /// read the retained trace (or dump it via Tracer::WriteCsv) after Run().
  const sim::Tracer* tracer() const { return tracer_.get(); }

  /// Precomputed planning inputs for the configured join class.
  const JoinPlanRequest& plan_request() const { return plan_request_; }

  /// RNG stream used for workload decisions (placement, keys).
  sim::Rng& workload_rng() { return workload_rng_; }

  /// The fault-injection subsystem (engine/faults.h).  Always constructed;
  /// inert unless SystemConfig::faults enables failures or timeouts.
  FaultInjector& faults() { return *faults_; }

  // --- elastic membership (engine/elastic.h) ------------------------------

  /// True when the fault spec schedules addpe/drainpe events.  Constant for
  /// the run; executors consult it to skip ownership indirection entirely
  /// on resize-free configurations.
  bool elastic_enabled() const { return elastic_ != nullptr; }
  /// The membership/migration manager; only valid when elastic_enabled().
  ElasticityManager& elastic() { return *elastic_; }
  /// The fragment home -> owner map (identity until a migration commits).
  OwnershipMap& ownership() { return ownership_; }
  /// Current owner of the fragment of `relation_id` homed at `home`.
  PeId OwnerOf(int32_t relation_id, PeId home) const {
    return ownership_.Owner(relation_id, home);
  }
  /// Routes a drawn coordinator PE to the nearest member (linear probe
  /// upward, wrapping).  Identity when elastic resize is not configured —
  /// the draw itself is always made, so the workload RNG stream is
  /// unchanged between elastic and resize-free runs.
  PeId MemberPe(PeId drawn) const {
    if (elastic_ == nullptr) return drawn;
    for (int i = 0; i < config_.num_pes; ++i) {
      PeId pe = (drawn + i) % config_.num_pes;
      if (pes_[pe]->member()) return pe;
    }
    return drawn;  // no member at all: let the attempt fail fast
  }

  /// Fresh relation-id namespace for a join's temporary partitions.
  int32_t NextTempRelationId() { return next_temp_rel_id_--; }
  TxnId NextTxnId() { return next_txn_id_++; }

  // --- measurement protocol -------------------------------------------------

  /// Replaces the open Poisson sources with a fixed arrival trace (paper
  /// Section 4: trace-driven workloads [18]).  The trace is replayed from
  /// t = 0; per-class query parameters still come from the SystemConfig,
  /// while the `enabled`/arrival-rate fields are ignored.  Call before
  /// Run().
  void SetTrace(Trace trace) { trace_ = std::move(trace); }

  /// Runs the full experiment (warm-up, measurement, drain) and returns the
  /// collected metrics.  A Cluster is single-shot: the scheduler, statistics
  /// and RNG streams are consumed by the run, so calling Run() a second time
  /// on the same instance throws std::logic_error — construct a fresh
  /// Cluster per experiment (the sweep runner does this per grid point).
  MetricsReport Run();

 private:
  void SpawnBackground();
  void SpawnOpenWorkload();
  // Spawn one query of the given class, routed through the fault
  // supervisor when SystemConfig::faults is enabled (direct spawn
  // otherwise, preserving the fault-free event and RNG streams).
  void SpawnJoin();
  void SpawnScan();
  void SpawnUpdate();
  void SpawnMultiway();
  void SpawnOltp(PeId node);
  sim::Task<> ControlReportLoop();
  void ReportAllPes(SimTime window_ms);
  void ResetStatistics();
  MetricsReport Collect(SimTime measure_start, SimTime measure_end) const;

  SystemConfig config_;
  sim::Scheduler sched_;
  std::unique_ptr<sim::Tracer> tracer_;
  /// Shared Disk mode only: the global spindle pool and its (unused) CPU.
  std::unique_ptr<sim::Resource> storage_cpu_;
  std::unique_ptr<DiskArray> shared_disks_;
  std::vector<std::unique_ptr<ProcessingElement>> pes_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<ControlNode> control_;
  std::unique_ptr<CostModel> cost_model_;
  std::unique_ptr<LoadBalancingPolicy> policy_;
  std::unique_ptr<DeadlockDetector> deadlock_detector_;
  std::unique_ptr<FaultInjector> faults_;
  /// Constructed only when the fault spec schedules addpe/drainpe.
  std::unique_ptr<ElasticityManager> elastic_;
  OwnershipMap ownership_;
  MetricsCollector metrics_;
  JoinPlanRequest plan_request_;

  sim::Rng root_rng_;
  sim::Rng workload_rng_;
  sim::Rng arrival_rng_;

  int32_t next_temp_rel_id_ = kTempRelationBase;
  TxnId next_txn_id_ = 1;
  bool ran_ = false;
  std::optional<Trace> trace_;
};

}  // namespace pdblb

#endif  // PDBLB_ENGINE_CLUSTER_H_
