// Copyright 2026 the pdblb authors. MIT license.

#include "engine/elastic.h"

#include <algorithm>
#include <cassert>

#include "catalog/database.h"
#include "engine/cluster.h"
#include "engine/faults.h"
#include "lockmgr/lock_manager.h"

namespace pdblb {

namespace planner {

namespace {

// Deterministic fragment ordering for donor selection: largest first, ties
// by (relation id, home id) ascending.
bool FragmentBefore(const Fragment& a, const Fragment& b) {
  if (a.pages != b.pages) return a.pages > b.pages;
  if (a.relation_id != b.relation_id) return a.relation_id < b.relation_id;
  return a.home < b.home;
}

}  // namespace

std::vector<FragmentMove> Plan(const std::vector<Fragment>& fragments,
                               const std::vector<PeState>& pes) {
  std::vector<FragmentMove> moves;
  const int n = static_cast<int>(pes.size());

  // Simulated state: fragment owners and per-receiver page loads evolve as
  // moves are emitted, so the emitted sequence is exactly what execution
  // will produce (absent crashes).
  std::vector<Fragment> frags(fragments);
  std::stable_sort(frags.begin(), frags.end(), FragmentBefore);
  std::vector<int64_t> load(static_cast<size_t>(n), 0);
  int receivers = 0;
  for (int pe = 0; pe < n; ++pe) {
    if (pes[pe].receive) ++receivers;
  }
  if (receivers == 0) return moves;
  for (const Fragment& f : frags) {
    if (f.owner >= 0 && f.owner < n && pes[f.owner].receive) {
      load[f.owner] += f.pages;
    }
  }

  auto emit = [&](Fragment& f, PeId to) {
    moves.push_back({f.relation_id, f.home, f.owner, to, f.pages});
    if (pes[f.owner].receive) load[f.owner] -= f.pages;
    load[to] += f.pages;
    f.owner = to;
  };

  // Phase 1 — vacate draining PEs: largest fragment first, each to the
  // least-loaded receiver (ties by lowest PE id).
  for (Fragment& f : frags) {
    if (f.owner < 0 || f.owner >= n) continue;
    if (!pes[f.owner].vacate || !pes[f.owner].alive) continue;
    PeId dest = -1;
    for (int pe = 0; pe < n; ++pe) {
      if (!pes[pe].receive) continue;
      if (dest < 0 || load[pe] < load[dest]) dest = pe;
    }
    if (dest < 0) break;  // no receiver alive: stuck until one recovers
    emit(f, dest);
  }

  // Phase 2 — fill added PEs: each (ascending id) takes the largest
  // fragment from the most-loaded established receiver as long as the move
  // strictly narrows the donor/newcomer gap.  Established members are never
  // shuffled among themselves.
  for (int fill_pe = 0; fill_pe < n; ++fill_pe) {
    if (!pes[fill_pe].fill || !pes[fill_pe].receive) continue;
    for (size_t guard = frags.size(); guard > 0; --guard) {
      PeId donor = -1;
      for (int pe = 0; pe < n; ++pe) {
        if (!pes[pe].receive || pes[pe].fill || pe == fill_pe) continue;
        if (donor < 0 || load[pe] > load[donor]) donor = pe;
      }
      if (donor < 0) break;
      Fragment* pick = nullptr;
      const int64_t gap = load[donor] - load[fill_pe];
      for (Fragment& f : frags) {  // frags sorted: first hit is largest
        if (f.owner != donor) continue;
        if (f.pages > 0 && f.pages < gap) {
          pick = &f;
          break;
        }
      }
      if (pick == nullptr) break;
      emit(*pick, fill_pe);
    }
  }
  return moves;
}

}  // namespace planner

namespace {

const Relation& RelationById(const Database& db, int32_t id) {
  if (id == kRelationA) return db.a();
  if (id == kRelationB) return db.b();
  assert(id == kRelationC);
  return db.c();
}

}  // namespace

ElasticityManager::ElasticityManager(Cluster& cluster) : cluster_(cluster) {}

void ElasticityManager::OnAddPe(PeId pe) {
  ProcessingElement& elem = cluster_.pe(pe);
  if (elem.member()) return;
  elem.set_member(true);
  added_.insert(pe);
  fill_.insert(pe);
  cluster_.metrics().RecordPeAdded();
  if (!elem.failed()) {
    cluster_.control().MarkUp(pe);
    // A joining PE boots idle with a cold buffer; publish that immediately
    // so strategies can place work on it without waiting a report round.
    cluster_.control().Report(pe, 0.0, elem.buffer().AvailablePages(), 0.0);
  }
  KickRebalance();
}

void ElasticityManager::OnDrainPe(PeId pe) {
  ProcessingElement& elem = cluster_.pe(pe);
  if (!elem.member()) return;
  elem.set_member(false);
  // Out of the planning views immediately: no new work lands here.  The
  // fragments it owns keep routing to it until each migration commits.
  cluster_.control().MarkDown(pe);
  draining_.insert(pe);
  fill_.erase(pe);
  KickRebalance();
}

void ElasticityManager::OnPeCrash(PeId pe) {
  if (active_ == nullptr) return;
  if (pe != active_->from && pe != active_->to && pe != active_->home) {
    return;
  }
  // Abort the in-flight move: cancellation destroys the migrator frame at
  // its suspension point, releasing the migration latch and the destination
  // staging reservation through the RAII guards before ApplyCrash wipes the
  // crashed PE's buffer.
  active_->aborted = true;
  cluster_.sched().Cancel(active_->work_id);
  if (!active_->done->Done()) active_->done->CountDown();
}

void ElasticityManager::OnPeRecovered(PeId pe) {
  if (draining_.count(pe) > 0) {
    // A crashed draining PE held on to its un-migrated fragments (queries
    // against them failed fast); resume vacating now that it is readable.
    KickRebalance();
    return;
  }
  if (cluster_.pe(pe).member() && added_.count(pe) > 0 &&
      OwnedPages(pe) == 0) {
    // An added PE that crashed before (or while) being filled: refill.
    fill_.insert(pe);
    KickRebalance();
  }
}

int64_t ElasticityManager::OwnedPages(PeId pe) {
  const Database& db = cluster_.db();
  int64_t pages = 0;
  for (const Relation* rel : {&db.a(), &db.b(), &db.c()}) {
    for (PeId home : rel->home_pes()) {
      if (cluster_.ownership().Owner(rel->id(), home) == pe) {
        pages += rel->PagesAt(home);
      }
    }
  }
  return pages;
}

std::vector<FragmentMove> ElasticityManager::PlanCurrent() {
  const Database& db = cluster_.db();
  std::vector<planner::Fragment> fragments;
  for (const Relation* rel : {&db.a(), &db.b(), &db.c()}) {
    for (PeId home : rel->home_pes()) {
      fragments.push_back({rel->id(), home,
                           cluster_.ownership().Owner(rel->id(), home),
                           rel->PagesAt(home)});
    }
  }
  std::vector<planner::PeState> pes(
      static_cast<size_t>(cluster_.num_pes()));
  for (PeId pe = 0; pe < cluster_.num_pes(); ++pe) {
    ProcessingElement& elem = cluster_.pe(pe);
    const bool alive = !elem.failed();
    const bool draining = draining_.count(pe) > 0;
    pes[pe].alive = alive;
    pes[pe].vacate = draining;
    pes[pe].receive = elem.member() && alive && !draining;
    pes[pe].fill = fill_.count(pe) > 0;
  }
  return planner::Plan(fragments, pes);
}

void ElasticityManager::FinishDrains() {
  for (auto it = draining_.begin(); it != draining_.end();) {
    if (OwnedPages(*it) == 0) {
      cluster_.metrics().RecordPeDrained();
      it = draining_.erase(it);
    } else {
      ++it;
    }
  }
}

void ElasticityManager::KickRebalance() {
  dirty_ = true;
  if (running_) return;
  running_ = true;
  cluster_.sched().Spawn(RunRebalance());
}

sim::Task<> ElasticityManager::RunRebalance() {
  sim::Scheduler& sched = cluster_.sched();
  while (!sched.ShuttingDown()) {
    dirty_ = false;
    std::vector<FragmentMove> moves = PlanCurrent();
    if (moves.empty()) {
      FinishDrains();
      if (!dirty_) break;  // settled, and nothing arrived while planning
      continue;
    }
    for (const FragmentMove& mv : moves) {
      if (sched.ShuttingDown()) break;
      const bool committed = co_await ExecuteMove(mv);
      if (!committed) {
        // A crash invalidated the plan mid-flight: re-plan around the
        // current membership and liveness.
        cluster_.metrics().RecordMigrationReplanned();
        break;
      }
    }
    FinishDrains();
  }
  fill_.clear();
  running_ = false;
}

sim::Task<bool> ElasticityManager::ExecuteMove(FragmentMove move) {
  // The plan may be stale by the time this move runs (an earlier move
  // aborted, a PE crashed): verify endpoints and ownership first.
  if (cluster_.pe(move.from).failed() || cluster_.pe(move.to).failed() ||
      cluster_.ownership().Owner(move.relation_id, move.home) != move.from) {
    co_return false;
  }
  sim::Latch done(cluster_.sched(), 1);
  MigrationState st;
  st.home = move.home;
  st.from = move.from;
  st.to = move.to;
  st.done = &done;
  active_ = &st;
  st.work_id = cluster_.sched().SpawnWithId(MigrateFragment(move, &st));
  co_await done.Wait();
  active_ = nullptr;
  if (st.aborted) {
    if (st.pages_done > 0) {
      // Batches already landed at the destination are orphaned: ownership
      // never flipped, so the donor copy stays authoritative.
      cluster_.metrics().RecordMigrationPagesDiscarded(st.pages_done);
    }
    co_return false;
  }
  co_return true;
}

sim::Task<> ElasticityManager::MigrateFragment(FragmentMove move,
                                               MigrationState* st) {
  Cluster& c = cluster_;
  const SystemConfig& cfg = c.config();
  const Relation& rel = RelationById(c.db(), move.relation_id);

  // Exclusive whole-fragment migration latch at the home PE's lock
  // manager.  tuple_id -(home+1) is negative, so it can never collide with
  // a page lock (page_no >= 0); a second migration of the same fragment
  // would serialize here.  Released by the guard on every exit path.
  const TxnId txn = c.NextTxnId();
  TxnLocksGuard latch(&c, txn);
  latch.AddPe(move.home);
  const bool granted = co_await c.pe(move.home).locks().Lock(
      txn, LockKey{move.relation_id, -(static_cast<int64_t>(move.home) + 1)},
      LockMode::kExclusive);
  if (!granted) {
    // Deadlock victim: impossible for a single-lock transaction, but fail
    // safe — the manager just re-plans.
    st->aborted = true;
    st->done->CountDown();
    co_return;
  }

  const int64_t frag_pages = rel.PagesAt(move.home);
  const int64_t batch_pages =
      std::max<int64_t>(1, cfg.elastic.migration_batch_pages);
  const double page_bytes =
      static_cast<double>(cfg.buffer.page_size_bytes);
  // MB/s == bytes/ms * 1000: the cap in bytes of fragment per sim ms.
  const double bytes_per_ms = cfg.elastic.migration_bw_mbps * 1000.0;

  for (int64_t pos = 0; pos < frag_pages;) {
    if (c.pe(move.from).failed() || c.pe(move.to).failed()) {
      // Crash raced the batch boundary (OnPeCrash cancels mid-batch).
      st->aborted = true;
      break;
    }
    const int64_t len = std::min<int64_t>(batch_pages, frag_pages - pos);
    const SimTime batch_start = c.sched().Now();
    // Donor side: sequential striped read straight off the disks —
    // migration must not flush the donor's hot buffer either.
    co_await c.pe(move.from).disks().ReadStriped(rel.DataPage(move.home, pos),
                                                 len);
    co_await c.net().TransferBulk(
        move.from, move.to,
        len * static_cast<int64_t>(cfg.buffer.page_size_bytes));
    // Destination side: staged through a working-space reservation, written
    // to disk, never admitted to the page buffer (bufmgr/buffer_manager.h).
    co_await c.pe(move.to).buffer().IngestBatch(rel.DataPage(move.home, pos),
                                                static_cast<int>(len));
    // Migration bandwidth cap: the batch takes at least bytes / cap, so a
    // fast idle cluster still trickles the copy instead of bursting it.
    const double min_ms = static_cast<double>(len) * page_bytes / bytes_per_ms;
    const double elapsed = c.sched().Now() - batch_start;
    if (elapsed < min_ms) co_await c.sched().Delay(min_ms - elapsed);
    pos += len;
    st->pages_done = pos;  // committed batches only
  }

  if (!st->aborted) {
    // Commit: exactly one owner at every instant — queries planned before
    // this line route to the donor, queries planned after it to the new
    // owner; the donor copy is simply never read again.
    c.ownership().SetOwner(move.relation_id, move.home, move.to);
    c.metrics().RecordFragmentMigrated(frag_pages);
    c.pe(move.home).locks().ReleaseAll(txn);
    latch.Disarm();
  }
  st->done->CountDown();
}

}  // namespace pdblb
