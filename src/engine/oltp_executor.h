// Copyright 2026 the pdblb authors. MIT license.
//
// Debit-credit-style OLTP transaction execution (paper Section 5.1/5.3):
// four non-clustered index selects with updates on an OLTP-private relation,
// affinity-routed so that processing is local to the home node.  Uses strict
// 2PL tuple locks, no-force buffering with a commit log write, and restarts
// on deadlock aborts.

#ifndef PDBLB_ENGINE_OLTP_EXECUTOR_H_
#define PDBLB_ENGINE_OLTP_EXECUTOR_H_

#include "engine/cluster.h"
#include "engine/faults.h"
#include "simkern/task.h"

namespace pdblb {

/// Executes one OLTP transaction at its home node; records metrics.  `qa`
/// links the transaction to fault supervision (engine/faults.h); nullptr
/// when faults are disabled.
sim::Task<> ExecuteOltpTransaction(Cluster& cluster, PeId home,
                                   QueryAttempt* qa = nullptr);

}  // namespace pdblb

#endif  // PDBLB_ENGINE_OLTP_EXECUTOR_H_
