// Copyright 2026 the pdblb authors. MIT license.
//
// Fault injection, query deadlines and PE failure/recovery.
//
// A FaultInjector owns the cluster's failure schedule (scripted events
// and/or a seeded Poisson crash/repair process per PE), applies crashes and
// recoveries (cancelling resident query attempts, releasing their resources
// through cancellation-aware awaiters, flipping the control node's alive
// view so strategies re-plan around dead PEs), and supervises query
// execution: each query runs as a sequence of *attempts*, where an attempt
// that touches a failed PE is cancelled mid-flight (or fails fast at
// placement) and retried with capped exponential backoff, and an attempt
// chain that exceeds the query's deadline is cancelled with
// kDeadlineExceeded.
//
// Beyond whole-PE crashes, the injector drives the gray-failure domains:
// scripted slow-disk windows and transient I/O errors live in
// iosim/disk.{h,cc} (latency-only, absorbed by the driver), link delay
// multipliers live in netsim/network.{h,cc}, and scripted partitions are
// enforced here — applying a partition cancels resident attempts spanning
// the cut link and AddParticipant fails fast when a new PE is partitioned
// from any PE the attempt already uses, both feeding the kUnavailable
// retry path exactly like a crash.  All of it flows through the same
// calendar and RNG-fork discipline, so --jobs/--shards stay bit-identical.
//
// Determinism: all fault timing draws come from a dedicated RNG stream
// (root.Fork(3), further forked per PE), deadline assignment and backoff
// jitter come from the workload stream in arrival order, and crashes /
// cancellations are ordinary calendar events — so every outcome is a pure
// function of (seed, config), identical across --jobs/--shards and reruns.
// When SystemConfig::faults is disabled the supervisor is bypassed entirely
// and the event/RNG streams are byte-identical to a fault-free build.

#ifndef PDBLB_ENGINE_FAULTS_H_
#define PDBLB_ENGINE_FAULTS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "common/units.h"
#include "simkern/latch.h"
#include "simkern/resource.h"
#include "simkern/rng.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb {

class Cluster;
class FaultInjector;

/// Per-attempt bookkeeping shared between the supervisor and the executor.
/// Lives in the supervisor's frame, so it survives cancellation of the
/// attempt frame itself.  Executors register every PE a query touches
/// *before* doing work there; registration fails fast (returns false, sets
/// outcome = kUnavailable) when the PE is already down, and the recorded
/// set is what ApplyCrash consults to find the attempts a crash kills.
struct QueryAttempt {
  FaultInjector* injector = nullptr;
  sim::Latch* done = nullptr;
  uint64_t work_id = 0;
  StatusCode outcome = StatusCode::kOk;
  std::vector<PeId> participants;
  /// Set by the executor when the attempt ran on an overload-capped plan
  /// (JoinPlan::degraded); the supervisor counts it on completion.
  bool degraded_plan = false;

  /// Records that the attempt is about to use `pe`.  Returns false (and
  /// marks the attempt kUnavailable) if the PE is down, or if the network
  /// path between `pe` and any already-registered participant is
  /// partitioned — the executor must co_return immediately; its RAII
  /// guards release whatever it holds.
  bool AddParticipant(PeId pe);
  bool AddParticipants(const std::vector<PeId>& pes);
  bool Touches(PeId pe) const;
};

/// RAII release of one admission slot (ProcessingElement::admission()).
/// Executors acquire the slot explicitly, then arm the guard: the normal
/// path calls ReleaseNow() where the old explicit Release() sat, and the
/// cancellation path releases from the destructor as the frame unwinds.
class AdmissionGuard {
 public:
  AdmissionGuard(sim::Scheduler& sched, sim::Resource& admission)
      : sched_(sched), admission_(admission) {}
  ~AdmissionGuard() {
    if (armed_ && !sched_.tearing_down()) admission_.Release();
  }
  AdmissionGuard(const AdmissionGuard&) = delete;
  AdmissionGuard& operator=(const AdmissionGuard&) = delete;
  void ReleaseNow() {
    armed_ = false;
    admission_.Release();
  }

 private:
  sim::Scheduler& sched_;
  sim::Resource& admission_;
  bool armed_ = true;
};

/// RAII release of a transaction's locks at a set of PEs.  The normal path
/// keeps its explicit ReleaseAll loop and then disarms; cancellation mid-
/// transaction releases from the destructor so no lock entry leaks.
class TxnLocksGuard {
 public:
  TxnLocksGuard(Cluster* cluster, TxnId txn) : cluster_(cluster), txn_(txn) {}
  ~TxnLocksGuard();
  TxnLocksGuard(const TxnLocksGuard&) = delete;
  TxnLocksGuard& operator=(const TxnLocksGuard&) = delete;
  void AddPe(PeId pe);
  void Disarm() { armed_ = false; }

 private:
  Cluster* cluster_;
  TxnId txn_;
  std::vector<PeId> pes_;
  bool armed_ = true;
};

/// The cluster's fault plan: crash/recovery application, random fault
/// processes, and the per-query supervisor (retry + deadline).
class FaultInjector {
 public:
  using AttemptFactory = std::function<sim::Task<>(QueryAttempt*)>;

  explicit FaultInjector(Cluster& cluster);

  bool Enabled() const;

  /// Spawns the scripted fault events and (when crash_rate > 0) one random
  /// crash/repair loop per PE.  Call once, before the workload starts.
  void SpawnFaultProcesses();

  /// Runs one query as a supervised attempt chain: deadline assignment,
  /// fail-fast / cancellation on PE failure, capped exponential backoff
  /// between attempts, and metrics accounting (timed out / retried /
  /// failed / degraded).  `make` is invoked once per attempt.
  sim::Task<> Supervise(AttemptFactory make);

  /// True when `pe` is currently down (executors fail fast against it).
  bool PeFailed(PeId pe) const;

  /// True when the link between `pe` and any PE in `others` is partitioned
  /// (cheap constant-false while no partition was ever applied).
  bool LinkBlocked(PeId pe, const std::vector<PeId>& others) const;

  // Attempt registry (RunAttempt's registration RAII).
  void Register(QueryAttempt* attempt) { active_.push_back(attempt); }
  void Unregister(QueryAttempt* attempt);

  sim::Scheduler& sched();

 private:
  sim::Task<> ApplyAt(FaultEvent event);
  sim::Task<> RandomFaultLoop(PeId pe);
  void ApplyCrash(PeId pe);
  void ApplyRecovery(PeId pe);
  void ApplyPartition(PeId a, PeId b);
  void ApplyHeal(PeId a, PeId b);

  Cluster& cluster_;
  std::vector<QueryAttempt*> active_;
  sim::Rng fault_rng_;
};

}  // namespace pdblb

#endif  // PDBLB_ENGINE_FAULTS_H_
