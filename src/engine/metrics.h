// Copyright 2026 the pdblb authors. MIT license.
//
// Measurement infrastructure: everything the paper's figures plot.
// Response times and counters are recorded only after the warm-up phase.

#ifndef PDBLB_ENGINE_METRICS_H_
#define PDBLB_ENGINE_METRICS_H_

#include <array>
#include <cstdint>

#include "common/units.h"
#include "simkern/stats.h"
#include "simkern/trace_ring.h"

namespace pdblb {

/// Collected during a run.
class MetricsCollector {
 public:
  void SetWarmupEnd(SimTime t) { warmup_end_ = t; }
  SimTime warmup_end() const { return warmup_end_; }
  bool Measuring(SimTime now) const { return now >= warmup_end_; }

  void RecordJoin(SimTime response_ms, int degree, int64_t temp_written,
                  int64_t temp_read, SimTime now) {
    if (!Measuring(now)) return;
    join_rt_.Add(response_ms);
    degree_.Add(degree);
    temp_pages_written_ += temp_written;
    temp_pages_read_ += temp_read;
  }

  void RecordOltp(SimTime response_ms, int aborts, SimTime now) {
    if (!Measuring(now)) return;
    oltp_rt_.Add(response_ms);
    oltp_aborts_ += aborts;
  }

  void RecordScan(SimTime response_ms, SimTime now) {
    if (!Measuring(now)) return;
    scan_rt_.Add(response_ms);
  }

  void RecordUpdate(SimTime response_ms, int aborts, SimTime now) {
    if (!Measuring(now)) return;
    update_rt_.Add(response_ms);
    update_aborts_ += aborts;
  }

  void RecordMultiwayJoin(SimTime response_ms, int stages, SimTime now) {
    if (!Measuring(now)) return;
    multiway_rt_.Add(response_ms);
    multiway_stages_.Add(stages);
  }

  /// Periodic per-PE utilization samples (from the control-report loop).
  void SampleUtilization(double cpu, double disk, double memory, SimTime now) {
    if (!Measuring(now)) return;
    cpu_util_.Add(cpu);
    disk_util_.Add(disk);
    mem_util_.Add(memory);
  }

  void RecordMemoryQueueWait(SimTime wait_ms, SimTime now) {
    if (!Measuring(now)) return;
    memory_queue_wait_.Add(wait_ms);
  }

  // --- fault injection (engine/faults.h) ----------------------------------

  /// A query attempt exceeded its deadline (kDeadlineExceeded, no retry).
  void RecordQueryTimedOut(SimTime now) {
    if (!Measuring(now)) return;
    ++queries_timed_out_;
  }
  /// One retry of a query whose attempt hit a failed PE (kUnavailable).
  void RecordQueryRetried(SimTime now) {
    if (!Measuring(now)) return;
    ++queries_retried_;
  }
  /// A query exhausted its retry budget.
  void RecordQueryFailed(SimTime now) {
    if (!Measuring(now)) return;
    ++queries_failed_;
  }
  /// A query completed degraded: after at least one retry, or on a
  /// reduced-parallelism plan issued under overload.
  void RecordQueryDegraded(SimTime now) {
    if (!Measuring(now)) return;
    ++queries_degraded_;
  }
  /// A query was rejected at admission while the control node was shedding
  /// load (kResourceExhausted, never retried).
  void RecordQueryShed(SimTime now) {
    if (!Measuring(now)) return;
    ++queries_shed_;
  }
  /// PE crash / recovery events are counted over the whole run (they are
  /// scripted or rate-driven, not workload outcomes, so warm-up applies
  /// no differently).
  void RecordPeCrash() { ++pe_crashes_; }
  void RecordPeRecovery() { ++pe_recoveries_; }
  /// A scripted network partition was applied (whole run, like crashes).
  void RecordLinkPartition() { ++link_partitions_; }

  // --- elastic resize (engine/elastic.h) -----------------------------------
  // Whole-run counters like crashes: membership events are scripted, not
  // workload outcomes, so warm-up applies no differently.
  /// A spare PE joined the membership (addpe fired).
  void RecordPeAdded() { ++pes_added_; }
  /// A draining PE finished migrating its fragments out and left.
  void RecordPeDrained() { ++pes_drained_; }
  /// One fragment finished migrating (ownership flipped), moving `pages`.
  void RecordFragmentMigrated(int64_t pages) {
    ++fragments_migrated_;
    migration_pages_moved_ += pages;
  }
  /// Destination pages of an aborted in-flight migration were discarded
  /// (crash unwind); the fragment stays with its donor.
  void RecordMigrationPagesDiscarded(int64_t pages) {
    migration_pages_discarded_ += pages;
  }
  /// The rebalance plan was recomputed around a crashed/lost PE.
  void RecordMigrationReplanned() { ++migrations_replanned_; }

  const sim::SampleStat& join_rt() const { return join_rt_; }
  const sim::SampleStat& oltp_rt() const { return oltp_rt_; }
  const sim::SampleStat& scan_rt() const { return scan_rt_; }
  const sim::SampleStat& update_rt() const { return update_rt_; }
  const sim::SampleStat& multiway_rt() const { return multiway_rt_; }
  const sim::SampleStat& multiway_stages() const { return multiway_stages_; }
  int64_t update_aborts() const { return update_aborts_; }
  const sim::SampleStat& degree() const { return degree_; }
  const sim::SampleStat& cpu_util() const { return cpu_util_; }
  const sim::SampleStat& disk_util() const { return disk_util_; }
  const sim::SampleStat& mem_util() const { return mem_util_; }
  const sim::SampleStat& memory_queue_wait() const {
    return memory_queue_wait_;
  }
  int64_t temp_pages_written() const { return temp_pages_written_; }
  int64_t temp_pages_read() const { return temp_pages_read_; }
  int64_t oltp_aborts() const { return oltp_aborts_; }
  int64_t queries_timed_out() const { return queries_timed_out_; }
  int64_t queries_retried() const { return queries_retried_; }
  int64_t queries_failed() const { return queries_failed_; }
  int64_t queries_degraded() const { return queries_degraded_; }
  int64_t queries_shed() const { return queries_shed_; }
  int64_t pe_crashes() const { return pe_crashes_; }
  int64_t pe_recoveries() const { return pe_recoveries_; }
  int64_t link_partitions() const { return link_partitions_; }
  int64_t pes_added() const { return pes_added_; }
  int64_t pes_drained() const { return pes_drained_; }
  int64_t fragments_migrated() const { return fragments_migrated_; }
  int64_t migration_pages_moved() const { return migration_pages_moved_; }
  int64_t migration_pages_discarded() const {
    return migration_pages_discarded_;
  }
  int64_t migrations_replanned() const { return migrations_replanned_; }

 private:
  SimTime warmup_end_ = 0.0;
  sim::SampleStat join_rt_;
  sim::SampleStat oltp_rt_;
  sim::SampleStat scan_rt_;
  sim::SampleStat update_rt_;
  sim::SampleStat multiway_rt_;
  sim::SampleStat multiway_stages_;
  int64_t update_aborts_ = 0;
  sim::SampleStat degree_;
  sim::SampleStat cpu_util_;
  sim::SampleStat disk_util_;
  sim::SampleStat mem_util_;
  sim::SampleStat memory_queue_wait_;
  int64_t temp_pages_written_ = 0;
  int64_t temp_pages_read_ = 0;
  int64_t oltp_aborts_ = 0;
  int64_t queries_timed_out_ = 0;
  int64_t queries_retried_ = 0;
  int64_t queries_failed_ = 0;
  int64_t queries_degraded_ = 0;
  int64_t queries_shed_ = 0;
  int64_t pe_crashes_ = 0;
  int64_t pe_recoveries_ = 0;
  int64_t link_partitions_ = 0;
  int64_t pes_added_ = 0;
  int64_t pes_drained_ = 0;
  int64_t fragments_migrated_ = 0;
  int64_t migration_pages_moved_ = 0;
  int64_t migration_pages_discarded_ = 0;
  int64_t migrations_replanned_ = 0;
};

/// Flat result record of one simulation run (what benches print).
struct MetricsReport {
  // Join query class.
  double join_rt_ms = 0.0;
  double join_rt_max_ms = 0.0;
  int64_t joins_completed = 0;
  double join_throughput_qps = 0.0;
  double avg_degree = 0.0;
  double temp_pages_written_per_join = 0.0;
  double temp_pages_read_per_join = 0.0;

  // OLTP class.
  double oltp_rt_ms = 0.0;
  int64_t oltp_completed = 0;
  double oltp_throughput_tps = 0.0;
  int64_t oltp_aborts = 0;

  // Standalone scan query class.
  double scan_rt_ms = 0.0;
  int64_t scans_completed = 0;

  // Update statement class.
  double update_rt_ms = 0.0;
  int64_t updates_completed = 0;
  int64_t update_aborts = 0;

  // Multi-way join class.
  double multiway_rt_ms = 0.0;
  int64_t multiway_completed = 0;

  // Resources (averages of periodic per-PE samples during measurement).
  double cpu_utilization = 0.0;
  double disk_utilization = 0.0;
  double memory_utilization = 0.0;
  double avg_memory_queue_wait_ms = 0.0;

  // Concurrency control (aggregated over all PEs during measurement).
  int64_t lock_waits = 0;
  int64_t deadlock_aborts = 0;

  // Buffer manager (aggregated over all PEs during measurement; the warm-up
  // reset clears the per-PE counters, so these cover the window only).
  // Hit ratio is hits / (hits + misses), 0 when no page was fetched — the
  // eviction-policy ablation metric (bench/ablate_eviction.cc).
  int64_t buffer_hits = 0;
  int64_t buffer_misses = 0;
  int64_t buffer_evictions = 0;
  int64_t buffer_writebacks = 0;
  double buffer_hit_ratio = 0.0;

  // Fault injection / query deadlines (engine/faults.h); all zero in
  // fault-free runs.  Query counters cover the measurement window; crash /
  // recovery counters cover the whole run.
  int64_t queries_timed_out = 0;
  int64_t queries_retried = 0;
  int64_t queries_failed = 0;
  int64_t queries_degraded = 0;
  int64_t pe_crashes = 0;
  int64_t pe_recoveries = 0;

  // Gray-failure fault domains (disk / network / overload); all zero in
  // fault-free runs.  io_* and slow_disk_ms aggregate the per-PE disk
  // counters over the measurement window (the warm-up reset clears them);
  // queries_shed covers the measurement window; link_partitions counts
  // scripted partition events over the whole run.
  int64_t queries_shed = 0;
  int64_t io_errors = 0;
  int64_t io_retries = 0;
  int64_t link_partitions = 0;
  double slow_disk_ms = 0.0;

  // Elastic resize (engine/elastic.h); all zero without addpe/drainpe
  // events.  Whole-run counters, like crashes.
  int64_t pes_added = 0;
  int64_t pes_drained = 0;
  int64_t fragments_migrated = 0;
  int64_t migration_pages_moved = 0;
  int64_t migration_pages_discarded = 0;
  int64_t migrations_replanned = 0;

  double measurement_seconds = 0.0;

  // Simulation-kernel throughput for the whole run (diagnostics).
  // `kernel_events` counts calendar events and `kernel_handoffs` counts
  // calendar-bypassing hand-off resumes (channel value hand-offs); since
  // the frameless-awaiter kernel, a contended Resource::Use dispatches one
  // calendar event instead of two, so `kernel_events` is markedly lower
  // than under the PR 1 kernel for the same workload.  Both counters are
  // deterministic per seed; `kernel_events_per_sec` divides by wall-clock
  // time and therefore varies run to run — it must not take part in
  // determinism comparisons.
  uint64_t kernel_events = 0;
  uint64_t kernel_handoffs = 0;
  double wall_seconds = 0.0;
  double kernel_events_per_sec = 0.0;

  // Per-subsystem attribution of the event trace (whole run, including
  // warm-up and drain), filled when SystemConfig::trace.enabled and the
  // build has tracing compiled in (sim::kTraceCompiledIn); all zeros
  // otherwise.  Indexed by sim::TraceSubsystem.  trace_subsystem_time_ms[s]
  // is the simulated time advanced by dispatches attributed to s ("where
  // does simulated time go"); both arrays are seed-deterministic and safe
  // for determinism comparisons.
  bool trace_enabled = false;
  std::array<uint64_t, sim::kNumTraceSubsystems> trace_subsystem_events{};
  std::array<double, sim::kNumTraceSubsystems> trace_subsystem_time_ms{};
};

}  // namespace pdblb

#endif  // PDBLB_ENGINE_METRICS_H_
