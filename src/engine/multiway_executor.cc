// Copyright 2026 the pdblb authors. MIT license.

#include "engine/multiway_executor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "core/skew.h"
#include "engine/faults.h"
#include "engine/parop.h"
#include "join/local_join.h"
#include "simkern/task_group.h"

namespace pdblb {
namespace {

using parop::BatchChannel;
using parop::CommitRound;
using parop::DeliverControl;
using parop::Redistribute;
using parop::ScanRedistribute;
using parop::SplitEvenly;
using parop::UseCpu;

sim::Task<> BuildConsumer(LocalJoin* join, BatchChannel* channel) {
  while (auto batch = co_await channel->Receive()) {
    co_await join->InsertInnerBatch(batch->tuples);
  }
}

/// Probing consumer for one stage.  Intermediate stages keep their result at
/// the join processor (it becomes the next stage's inner source); the final
/// stage ships it to the coordinator.
sim::Task<> ProbeConsumer(Cluster& c, LocalJoin* join, BatchChannel* channel,
                          PeId join_pe, PeId coord, int64_t result_tuples,
                          int tuple_size, bool final_stage) {
  while (auto batch = co_await channel->Receive()) {
    co_await join->ProbeBatch(batch->tuples);
  }
  co_await join->CompleteProbe();
  co_await UseCpu(c, join_pe,
                  result_tuples * c.config().costs.write_output_tuple);
  if (final_stage && join_pe != coord && result_tuples > 0) {
    co_await c.net().Transfer(join_pe, coord, result_tuples * tuple_size);
  }
  join->Release();
}

}  // namespace

sim::Task<> ExecuteMultiwayJoinQuery(Cluster& c, QueryAttempt* qa) {
  sim::Scheduler& sched = c.sched();
  const SystemConfig& cfg = c.config();
  const CpuCosts& costs = cfg.costs;
  const SimTime t0 = sched.Now();
  const int stages = cfg.multiway_join.ways - 1;
  const int tuple_size = cfg.relation_a.tuple_size_bytes;

  // The draw is always made so the workload RNG stream is identical between
  // elastic and resize-free runs; MemberPe is the identity without elastic.
  const PeId coord = c.MemberPe(
      static_cast<PeId>(c.workload_rng().UniformInt(0, c.num_pes() - 1)));
  if (qa != nullptr && !qa->AddParticipant(coord)) co_return;
  if (c.control().ShouldShed()) {
    // Overload shedding: reject before queueing for an admission slot (see
    // join_executor.cc); kResourceExhausted is final, never retried.
    c.metrics().RecordQueryShed(sched.Now());
    if (qa != nullptr) qa->outcome = StatusCode::kResourceExhausted;
    co_return;
  }
  co_await c.pe(coord).admission().Acquire();
  AdmissionGuard admission(sched, c.pe(coord).admission());
  co_await UseCpu(c, coord, costs.initiate_txn);
  bool degraded = false;

  // Intermediate-result location: empty before stage 1 (inner comes from
  // the scan of A).
  std::vector<PeId> result_pes;
  std::vector<int64_t> result_at;
  int64_t inner_total = cfg.InnerInputTuples();
  std::set<PeId> all_participants;

  for (int stage = 1; stage <= stages; ++stage) {
    const bool first = stage == 1;
    const bool final_stage = stage == stages;

    // Outer input: relation B for stage 1, relation C afterwards.
    const Relation& outer_rel = first ? c.db().b() : c.db().c();
    const std::vector<PeId>& outer_nodes =
        first ? c.db().b_nodes() : c.db().all_nodes();
    const int64_t outer_total = static_cast<int64_t>(
        cfg.join_query.scan_selectivity *
        static_cast<double>(outer_rel.num_tuples()));
    const int64_t result_total = static_cast<int64_t>(
        cfg.join_query.result_size_factor * static_cast<double>(inner_total));

    // Consult the control node and plan this stage.
    co_await c.net().ControlMessage(coord, 0);
    co_await c.net().ControlMessage(0, coord);
    JoinPlanRequest req = c.plan_request();
    if (!first) {
      const int bf = cfg.relation_a.blocking_factor;
      int64_t inner_pages = (inner_total + bf - 1) / bf;
      req.hash_table_pages = static_cast<int64_t>(std::ceil(
          cfg.join_query.fudge_factor * static_cast<double>(inner_pages)));
      req.psu_noio = static_cast<int>(std::clamp<int64_t>(
          (req.hash_table_pages + cfg.buffer.buffer_pages - 1) /
              cfg.buffer.buffer_pages,
          1, cfg.num_pes));
    }
    JoinPlan plan = c.policy().Plan(req, c.control(), c.workload_rng());
    const int p = plan.degree;
    degraded = degraded || plan.degraded;

    // Base-relation fragments execute at their current owner; under elastic
    // resize that can differ from the declustering home (catalog/ownership.h).
    std::vector<PeId> outer_exec(outer_nodes);
    std::vector<PeId> a_exec;
    if (first) {
      a_exec.assign(c.db().a_nodes().begin(), c.db().a_nodes().end());
    }
    if (c.elastic_enabled()) {
      for (size_t i = 0; i < outer_exec.size(); ++i) {
        outer_exec[i] = c.OwnerOf(outer_rel.id(), outer_nodes[i]);
      }
      for (size_t i = 0; i < a_exec.size(); ++i) {
        a_exec[i] = c.OwnerOf(c.db().a().id(), a_exec[i]);
      }
    }

    // This stage's participants: inner sources, outer scan nodes, join PEs.
    // Owners (not homes) participate: a fragment migrated off a drained PE
    // must stay queryable after that PE dies.
    std::set<PeId> participants(outer_exec.begin(), outer_exec.end());
    if (first) {
      participants.insert(a_exec.begin(), a_exec.end());
    } else {
      participants.insert(result_pes.begin(), result_pes.end());
    }
    participants.insert(plan.pes.begin(), plan.pes.end());
    if (qa != nullptr &&
        !qa->AddParticipants({participants.begin(), participants.end()})) {
      co_return;
    }
    {
      sim::TaskGroup startup(sched);
      for (PeId dest : participants) {
        if (dest == coord) continue;
        co_await UseCpu(c, coord, costs.send_message + costs.copy_message);
        startup.Spawn(DeliverControl(c, dest));
      }
      co_await startup.Wait();
    }
    all_participants.insert(participants.begin(), participants.end());

    // Local joins for this stage (uniform partitioning).
    std::vector<double> dest_frac = ZipfWeights(p, 0.0);
    std::vector<int64_t> inner_share = SplitWeighted(inner_total, dest_frac);
    std::vector<int64_t> outer_share = SplitWeighted(outer_total, dest_frac);
    std::vector<int64_t> result_share = SplitWeighted(result_total, dest_frac);
    std::vector<std::unique_ptr<LocalJoin>> joins;
    joins.reserve(p);
    for (int j = 0; j < p; ++j) {
      LocalJoinParams params;
      params.temp_relation_id = c.NextTempRelationId();
      params.expected_inner_tuples = inner_share[j];
      params.expected_outer_tuples = outer_share[j];
      params.blocking_factor = cfg.relation_a.blocking_factor;
      params.fudge_factor = cfg.join_query.fudge_factor;
      params.want_pages = plan.pages_per_pe;
      params.write_batch_pages = cfg.disk.prefetch_pages;
      params.opportunistic_growth = cfg.pphj_opportunistic_growth;
      PeId jp = plan.pes[j];
      joins.push_back(CreateLocalJoin(cfg.local_join_method, sched,
                                      c.pe(jp).buffer(), c.pe(jp).disks(),
                                      c.pe(jp).cpu(), costs, cfg.mips_per_pe,
                                      params));
    }
    {
      std::vector<int> order(p);
      for (int j = 0; j < p; ++j) order[j] = j;
      std::sort(order.begin(), order.end(),
                [&](int a, int b) { return plan.pes[a] < plan.pes[b]; });
      SimTime queued_at = sched.Now();
      for (int j : order) co_await joins[j]->AcquireMemory();
      c.metrics().RecordMemoryQueueWait(sched.Now() - queued_at, sched.Now());
    }

    // Building phase: inner from the A scan (stage 1) or from the previous
    // stage's result processors.
    {
      std::vector<std::unique_ptr<BatchChannel>> channels;
      for (int j = 0; j < p; ++j) {
        channels.push_back(std::make_unique<BatchChannel>(sched));
      }
      sim::TaskGroup consumers(sched);
      for (int j = 0; j < p; ++j) {
        consumers.Spawn(BuildConsumer(joins[j].get(), channels[j].get()));
      }
      sim::TaskGroup sources(sched);
      sim::TaskGroup sends(sched);
      if (first) {
        const std::vector<PeId>& a_nodes = c.db().a_nodes();
        std::vector<int64_t> node_share =
            SplitEvenly(inner_total, static_cast<int>(a_nodes.size()));
        for (size_t i = 0; i < a_nodes.size(); ++i) {
          sources.Spawn(ScanRedistribute(c, a_exec[i], c.db().a(),
                                         node_share[i], plan.pes, dest_frac,
                                         channels, sends, /*read_lock_txn=*/0,
                                         /*fragment_owner=*/a_nodes[i]));
        }
      } else {
        for (size_t i = 0; i < result_pes.size(); ++i) {
          sources.Spawn(Redistribute(c, result_pes[i], result_at[i],
                                     tuple_size, plan.pes, dest_frac,
                                     channels, sends));
        }
      }
      co_await sources.Wait();
      co_await sends.Wait();
      for (auto& ch : channels) ch->Close();
      co_await consumers.Wait();
    }

    // Probing phase: outer scanned from B (stage 1) or C.
    {
      std::vector<std::unique_ptr<BatchChannel>> channels;
      for (int j = 0; j < p; ++j) {
        channels.push_back(std::make_unique<BatchChannel>(sched));
      }
      sim::TaskGroup consumers(sched);
      for (int j = 0; j < p; ++j) {
        consumers.Spawn(ProbeConsumer(c, joins[j].get(), channels[j].get(),
                                      plan.pes[j], coord, result_share[j],
                                      tuple_size, final_stage));
      }
      sim::TaskGroup scans(sched);
      sim::TaskGroup sends(sched);
      std::vector<int64_t> node_share =
          SplitEvenly(outer_total, static_cast<int>(outer_nodes.size()));
      for (size_t i = 0; i < outer_nodes.size(); ++i) {
        scans.Spawn(ScanRedistribute(c, outer_exec[i], outer_rel,
                                     node_share[i], plan.pes, dest_frac,
                                     channels, sends, /*read_lock_txn=*/0,
                                     /*fragment_owner=*/outer_nodes[i]));
      }
      co_await scans.Wait();
      co_await sends.Wait();
      for (auto& ch : channels) ch->Close();
      co_await consumers.Wait();
    }

    // The result becomes the next stage's inner.
    result_pes = plan.pes;
    result_at = result_share;
    inner_total = result_total;
  }

  // Read-only optimized commit across everything that participated.
  {
    sim::TaskGroup commits(sched);
    for (PeId dest : all_participants) {
      if (dest == coord) continue;
      co_await UseCpu(c, coord, costs.send_message + costs.copy_message);
      commits.Spawn(CommitRound(c, coord, dest));
    }
    co_await commits.Wait();
  }
  co_await UseCpu(c, coord, costs.terminate_txn);
  admission.ReleaseNow();
  c.metrics().RecordMultiwayJoin(sched.Now() - t0, stages, sched.Now());
  if (degraded) {
    // Any overload-capped stage marks the whole query degraded; supervised
    // queries defer the count to the supervisor.
    if (qa != nullptr) {
      qa->degraded_plan = true;
    } else {
      c.metrics().RecordQueryDegraded(sched.Now());
    }
  }
}

}  // namespace pdblb
