// Copyright 2026 the pdblb authors. MIT license.
//
// Multi-way join queries (paper Section 4 lists them among the supported
// query types): a left-deep pipeline of parallel hash joins
//
//   (A ⋈ B) ⋈ C [⋈ C ...]
//
// Stage 1 is the paper's two-way join (scan A, redistribute, build; scan B,
// redistribute, probe).  Each further stage redistributes the previous
// stage's result — materialized at its join processors — as the *inner* of
// the next join, while relation C is scanned and redistributed as the
// outer.  Every stage consults the load-balancing policy again, so the
// degree and the placement adapt per stage to the system state the previous
// stage created.

#ifndef PDBLB_ENGINE_MULTIWAY_EXECUTOR_H_
#define PDBLB_ENGINE_MULTIWAY_EXECUTOR_H_

#include "engine/cluster.h"
#include "engine/faults.h"
#include "simkern/task.h"

namespace pdblb {

/// Executes one multi-way join (config: SystemConfig::multiway_join).  `qa`
/// links the query to fault supervision (engine/faults.h); nullptr when
/// faults are disabled.
sim::Task<> ExecuteMultiwayJoinQuery(Cluster& cluster,
                                     QueryAttempt* qa = nullptr);

}  // namespace pdblb

#endif  // PDBLB_ENGINE_MULTIWAY_EXECUTOR_H_
