// Copyright 2026 the pdblb authors. MIT license.

#include "workload/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "simkern/rng.h"

namespace pdblb {
namespace {

std::string ClassToken(const TraceEvent& e) {
  switch (e.cls) {
    case TraceClass::kJoin:
      return "join";
    case TraceClass::kScan:
      return "scan";
    case TraceClass::kUpdate:
      return "update";
    case TraceClass::kMultiwayJoin:
      return "multiway";
    case TraceClass::kOltp:
      return "oltp:" + std::to_string(e.oltp_node);
  }
  return "?";
}

Status ParseClassToken(const std::string& token, TraceEvent* event) {
  if (token == "join") {
    event->cls = TraceClass::kJoin;
  } else if (token == "scan") {
    event->cls = TraceClass::kScan;
  } else if (token == "update") {
    event->cls = TraceClass::kUpdate;
  } else if (token == "multiway") {
    event->cls = TraceClass::kMultiwayJoin;
  } else if (token.rfind("oltp:", 0) == 0) {
    event->cls = TraceClass::kOltp;
    try {
      event->oltp_node = static_cast<PeId>(std::stoi(token.substr(5)));
    } catch (...) {
      return Status::InvalidArgument("bad oltp node in trace: " + token);
    }
    if (event->oltp_node < 0) {
      return Status::InvalidArgument("negative oltp node: " + token);
    }
  } else {
    return Status::InvalidArgument("unknown trace class: " + token);
  }
  return Status::OK();
}

}  // namespace

void Trace::SortByArrival() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.arrival_ms < b.arrival_ms;
                   });
}

std::string Trace::ToText() const {
  std::ostringstream out;
  out << "# pdblb workload trace: <arrival_ms> <class>\n";
  for (const TraceEvent& e : events_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", e.arrival_ms);
    out << buf << ' ' << ClassToken(e) << '\n';
  }
  return out.str();
}

Status Trace::FromText(const std::string& text, Trace* out) {
  Trace trace;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    TraceEvent event;
    std::string cls;
    if (!(fields >> event.arrival_ms >> cls)) {
      return Status::InvalidArgument("malformed trace line " +
                                     std::to_string(lineno) + ": " + line);
    }
    if (event.arrival_ms < 0) {
      return Status::InvalidArgument("negative arrival at line " +
                                     std::to_string(lineno));
    }
    if (Status st = ParseClassToken(cls, &event); !st.ok()) return st;
    trace.Add(event);
  }
  trace.SortByArrival();
  *out = std::move(trace);
  return Status::OK();
}

Status Trace::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << ToText();
  return out ? Status::OK() : Status::IoError("write failed: " + path);
}

Status Trace::ReadFile(const std::string& path, Trace* out) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromText(buf.str(), out);
}

Trace SynthesizeTrace(uint64_t seed, SimTime horizon_ms, double join_qps,
                      double scan_qps, double update_qps, double multiway_qps,
                      const std::vector<PeId>& oltp_nodes,
                      double oltp_tps_per_node) {
  Trace trace;
  sim::Rng root(seed);
  auto draw = [&](uint64_t stream, double rate_per_second, TraceClass cls,
                  PeId node) {
    if (rate_per_second <= 0.0) return;
    sim::Rng rng = root.Fork(stream);
    double mean_ms = 1000.0 / rate_per_second;
    for (SimTime t = rng.Exponential(mean_ms); t < horizon_ms;
         t += rng.Exponential(mean_ms)) {
      trace.Add(TraceEvent{t, cls, node});
    }
  };
  draw(1, join_qps, TraceClass::kJoin, 0);
  draw(2, scan_qps, TraceClass::kScan, 0);
  draw(3, update_qps, TraceClass::kUpdate, 0);
  draw(4, multiway_qps, TraceClass::kMultiwayJoin, 0);
  for (PeId node : oltp_nodes) {
    draw(1000 + static_cast<uint64_t>(node), oltp_tps_per_node,
         TraceClass::kOltp, node);
  }
  trace.SortByArrival();
  return trace;
}

}  // namespace pdblb
