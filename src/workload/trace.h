// Copyright 2026 the pdblb authors. MIT license.
//
// Workload traces (paper Section 4: the simulation system supports "the use
// of real-life database traces [18]").  A trace is a plain-text file of
// arrival events, one per line:
//
//   <arrival_ms> <class>
//
// where <class> is one of: join, scan, update, multiway, oltp:<node>.
// Lines starting with '#' are comments.  TraceRecorder captures the arrival
// stream of a simulation run into this format; TraceReplay feeds a recorded
// (or real) trace back into a cluster, replacing the Poisson sources — so
// two systems can be compared under an *identical* arrival sequence.

#ifndef PDBLB_WORKLOAD_TRACE_H_
#define PDBLB_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb {

/// Workload classes that can appear in a trace.
enum class TraceClass {
  kJoin,
  kScan,
  kUpdate,
  kMultiwayJoin,
  kOltp,
};

/// One arrival event.
struct TraceEvent {
  SimTime arrival_ms = 0.0;
  TraceClass cls = TraceClass::kJoin;
  PeId oltp_node = 0;  ///< Only meaningful for kOltp.

  bool operator==(const TraceEvent&) const = default;
};

/// An in-memory trace, ordered by arrival time.
class Trace {
 public:
  void Add(TraceEvent event) { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

  /// Sorts events by arrival time (stable: ties keep insertion order).
  void SortByArrival();

  /// Serializes to the plain-text trace format.
  std::string ToText() const;

  /// Parses the plain-text trace format.  Returns an error with the first
  /// offending line on malformed input.
  static Status FromText(const std::string& text, Trace* out);

  Status WriteFile(const std::string& path) const;
  static Status ReadFile(const std::string& path, Trace* out);

 private:
  std::vector<TraceEvent> events_;
};

/// Draws a synthetic trace from independent Poisson processes with the
/// given per-class rates (events per second; 0 disables a class) over
/// `horizon_ms`.  `oltp_nodes` receive independent streams of
/// `oltp_tps_per_node` each.  Deterministic per seed.
Trace SynthesizeTrace(uint64_t seed, SimTime horizon_ms,
                      double join_qps, double scan_qps, double update_qps,
                      double multiway_qps,
                      const std::vector<PeId>& oltp_nodes,
                      double oltp_tps_per_node);

/// Spawns `fire(event)` at every event's arrival time.  Terminates after
/// the last event (or at scheduler shutdown).  Template over the callback:
/// `fire` is moved into the coroutine frame, so each dispatched arrival is
/// a direct call (no std::function indirection on the per-event path).
template <typename FireFn>
sim::Task<> ReplayTrace(sim::Scheduler& sched, Trace trace, FireFn fire) {
  for (const TraceEvent& event : trace.events()) {
    if (sched.ShuttingDown()) co_return;
    SimTime wait = event.arrival_ms - sched.Now();
    if (wait > 0) co_await sched.Delay(wait);
    fire(event);
  }
}

}  // namespace pdblb

#endif  // PDBLB_WORKLOAD_TRACE_H_
