// Copyright 2026 the pdblb authors. MIT license.
//
// Workload generation (paper Section 4): the simulation system is an open
// queueing model with an individual arrival rate per transaction/query type.
// This module provides the Poisson arrival source used for all open classes
// and a closed sequential loop used for single-user experiments.

#ifndef PDBLB_WORKLOAD_ARRIVALS_H_
#define PDBLB_WORKLOAD_ARRIVALS_H_

#include <cstdint>
#include <functional>

#include "common/units.h"
#include "simkern/rng.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb {

/// Spawns `fire(seq)` according to a Poisson process with the given rate
/// (arrivals per second).  Terminates when the scheduler shuts down.
sim::Task<> PoissonArrivals(sim::Scheduler& sched, sim::Rng rng,
                            double rate_per_second,
                            std::function<void(int64_t)> fire);

/// Runs `body(seq)` `count` times back to back (single-user mode: the next
/// query enters only after the previous one finished).  Sets `*done` at the
/// end if non-null.
sim::Task<> ClosedLoop(int64_t count,
                       std::function<sim::Task<>(int64_t)> body, bool* done);

}  // namespace pdblb

#endif  // PDBLB_WORKLOAD_ARRIVALS_H_
