// Copyright 2026 the pdblb authors. MIT license.
//
// Workload generation (paper Section 4): the simulation system is an open
// queueing model with an individual arrival rate per transaction/query type.
// This module provides the Poisson arrival source used for all open classes
// and a closed sequential loop used for single-user experiments.
//
// Both generators are templates over their callback type: the callable is
// moved into the coroutine frame (one allocation per generator at startup)
// instead of being boxed in a std::function, so firing an arrival is a
// direct call with no type-erasure or heap traffic per event.  A non-owning
// function_ref would dangle here — the generator outlives the call site's
// temporaries — which is why the callable is taken by value.

#ifndef PDBLB_WORKLOAD_ARRIVALS_H_
#define PDBLB_WORKLOAD_ARRIVALS_H_

#include <cassert>
#include <cstdint>

#include "common/units.h"
#include "simkern/rng.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb {

/// Spawns `fire(seq)` according to a Poisson process with the given rate
/// (arrivals per second).  Terminates when the scheduler shuts down.
template <typename FireFn>
sim::Task<> PoissonArrivals(sim::Scheduler& sched, sim::Rng rng,
                            double rate_per_second, FireFn fire) {
  assert(rate_per_second > 0.0);
  double mean_interarrival_ms = 1000.0 / rate_per_second;
  int64_t seq = 0;
  while (!sched.ShuttingDown()) {
    co_await sched.Delay(rng.Exponential(mean_interarrival_ms));
    if (sched.ShuttingDown()) break;
    fire(seq++);
  }
}

/// Runs `body(seq)` `count` times back to back (single-user mode: the next
/// query enters only after the previous one finished).  Sets `*done` at the
/// end if non-null.
template <typename BodyFn>
sim::Task<> ClosedLoop(int64_t count, BodyFn body, bool* done) {
  for (int64_t i = 0; i < count; ++i) {
    co_await body(i);
  }
  if (done != nullptr) *done = true;
}

}  // namespace pdblb

#endif  // PDBLB_WORKLOAD_ARRIVALS_H_
