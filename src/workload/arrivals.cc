// Copyright 2026 the pdblb authors. MIT license.

#include "workload/arrivals.h"

#include <cassert>

namespace pdblb {

sim::Task<> PoissonArrivals(sim::Scheduler& sched, sim::Rng rng,
                            double rate_per_second,
                            std::function<void(int64_t)> fire) {
  assert(rate_per_second > 0.0);
  double mean_interarrival_ms = 1000.0 / rate_per_second;
  int64_t seq = 0;
  while (!sched.ShuttingDown()) {
    co_await sched.Delay(rng.Exponential(mean_interarrival_ms));
    if (sched.ShuttingDown()) break;
    fire(seq++);
  }
}

sim::Task<> ClosedLoop(int64_t count,
                       std::function<sim::Task<>(int64_t)> body, bool* done) {
  for (int64_t i = 0; i < count; ++i) {
    co_await body(i);
  }
  if (done != nullptr) *done = true;
}

}  // namespace pdblb
