// Copyright 2026 the pdblb authors. MIT license.
//
// Per-PE main-memory database buffer (paper Section 4):
//  * a global buffer shared by all transactions/queries, managed no-force
//    with asynchronous disk writes of dirty pages, and
//  * private working spaces for query processing (hash-join hash tables),
//    carved out of the same frame pool via reservations.
//
// The buffer manager is also where the paper's memory scheduling policies
// live:
//  * joins wait FCFS in a *memory queue* until their minimum working-space
//    requirement is available (PPHJ needs at least p pages),
//  * higher-priority OLTP transactions *steal* frames from running joins
//    when the unreserved pool runs dry (memory-adaptive PPHJ spills), and
//  * "available memory" reported to the control node is
//    capacity - reservations - OLTP working set, where the working set is a
//    sliding-window estimate of re-referenced resident pages.
//
// Residency lives in a fixed slot-indexed frame table: a flat array of
// BufferFrame slots allocated once at construction, a LIFO free list
// threaded through the slots, and an open-addressing page index (linear
// probing, backward-shift deletion) sized at construction.  Hits, misses,
// evictions and admissions therefore allocate nothing in steady state; the
// replacement order is delegated to a pluggable EvictionPolicy
// (LRU / LRU-K / LFU / CLOCK, selected by BufferConfig::eviction — see
// docs/bufmgr.md).

#ifndef PDBLB_BUFMGR_BUFFER_MANAGER_H_
#define PDBLB_BUFMGR_BUFFER_MANAGER_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bufmgr/eviction_policy.h"
#include "catalog/relation.h"
#include "common/config.h"
#include "iosim/disk.h"
#include "simkern/scheduler.h"
#include "simkern/task.h"

namespace pdblb {

/// Implemented by running joins so the buffer manager can reclaim working
/// space for higher-priority transactions (memory-adaptive PPHJ).
class MemoryVictim {
 public:
  virtual ~MemoryVictim() = default;
  /// Releases up to `wanted` pages of working space (spilling partitions as
  /// needed).  Returns the number of pages actually released.
  virtual int StealPages(int wanted) = 0;
  /// Pages currently held; used to pick the biggest victim first.
  virtual int ReservedPages() const = 0;
};

/// Per-PE buffer manager.
class BufferManager {
 public:
  BufferManager(sim::Scheduler& sched, const BufferConfig& config,
                DiskArray& disks, std::string name);
  ~BufferManager();

  // --- global page buffer --------------------------------------------------

  /// Brings `page` into the buffer (disk I/O on miss) for a read.
  /// Returns true on buffer hit.  `priority_oltp` marks accesses allowed to
  /// steal join working space when no unreserved frame exists.
  sim::Task<bool> Fetch(PageKey page, AccessPattern pattern,
                        bool priority_oltp = false);

  /// Fetches `count` consecutive pages for a sequential scan.  Missing runs
  /// are read with striped prefetching across the disk array; all pages are
  /// admitted to the buffer.  Returns the number of buffer hits.
  sim::Task<int64_t> FetchRange(PageKey first, int64_t count);

  /// Marks a resident page dirty (no-force: written back asynchronously on
  /// eviction).
  void MarkDirty(PageKey page);

  /// True if the page is currently buffered (for tests).
  bool IsResident(PageKey page) const;

  // --- working-space reservations ----------------------------------------

  /// FCFS memory queue: waits until at least `min_pages` unreserved frames
  /// exist, then reserves min(want_pages, unreserved) >= min_pages frames
  /// and returns the granted amount.
  sim::Task<int> ReserveWait(int min_pages, int want_pages);

  /// Immediately reserves up to `want_pages` (possibly 0) without waiting.
  int TryReserve(int want_pages);

  /// Returns reserved frames to the pool and serves the memory queue.
  void ReleaseReservation(int pages);

  /// Re-examines the memory queue.  Called periodically because the
  /// working-set estimate decays with time without generating events.
  void PumpMemoryQueue() { ServeMemoryQueue(); }

  /// Registers a running join as a steal target.
  void RegisterVictim(MemoryVictim* victim);
  void UnregisterVictim(MemoryVictim* victim);

  // --- migration ingest (engine/elastic.h) ---------------------------------

  /// Destination-side ingest of one fragment-migration batch: stages the
  /// incoming pages through a working-space reservation (so migration
  /// competes FCFS with joins for frames instead of bypassing memory
  /// pressure) and writes them to this PE's disks.  The pages are never
  /// admitted to the page buffer — bulk-loaded cold data must not displace
  /// the hot set or perturb eviction state.  The staging reservation is
  /// released on every exit path, including cancellation mid-write (crash
  /// unwind discards the partial batch at the caller).
  sim::Task<> IngestBatch(PageKey first, int count);

  // --- fault injection ------------------------------------------------------

  /// Models a PE crash: volatile state is lost — the resident set is wiped
  /// (no writebacks; the simulated disk is the durable copy) and access
  /// history cleared so the PE restarts cold.  Must be called after every
  /// resident query was cancelled: reservations, the memory queue and the
  /// victim list must already be empty (asserted).
  void OnCrash();

  // --- memory accounting ---------------------------------------------------

  int capacity() const { return config_.buffer_pages; }
  int reserved() const { return reserved_; }
  /// Frames not covered by reservations.
  int UnreservedFrames() const { return capacity() - reserved_; }

  /// Pages referenced at least once within the (short) touched window —
  /// the buffer manager's bookkeeping view of "in use" frames.
  int TouchedPages() const;
  /// Pages referenced at least twice within the working-set window — the
  /// protected hot set (OLTP branch/teller pages) that join reservations
  /// must not displace.
  int HotPages() const;

  /// What the PE reports to the control node as free memory (AVAIL-MEMORY):
  /// capacity - reservations - touched frames.  Conservative: a busy OLTP
  /// node reports only a handful of free pages.
  int AvailablePages() const;
  /// What a join reservation may actually claim: capacity - reservations -
  /// protected hot set (single-touch scan pages are evictable).
  int GrantablePages() const;
  /// reserved + hot set, as a fraction of capacity (the figure metric).
  double MemoryUtilization() const;

  size_t memory_queue_length() const { return mem_queue_.size(); }

  // --- statistics ----------------------------------------------------------
  int64_t buffer_hits() const { return hits_; }
  int64_t buffer_misses() const { return misses_; }
  int64_t pages_stolen() const { return pages_stolen_; }
  int64_t dirty_writebacks() const { return dirty_writebacks_; }
  int64_t evictions() const { return evictions_; }
  /// Migration pages durably ingested via IngestBatch (completed batches
  /// only; a cancelled batch never counts).
  int64_t pages_ingested() const { return pages_ingested_; }
  /// The page most recently evicted (valid once evictions() > 0); lets the
  /// model-based policy tests check victim identity, not just counts.
  PageKey last_evicted() const { return last_evicted_; }
  EvictionPolicyKind eviction_policy() const { return config_.eviction; }
  void ResetStats();

 private:
  // (offset, length) runs of missing pages in a FetchRange scan.  Leased
  // from run_scratch_ per call and recycled, so steady-state scans never
  // allocate.
  using RangeRuns = std::vector<std::pair<int64_t, int64_t>>;

  /// Slot holding `page`, or -1.
  int32_t Lookup(PageKey page) const;
  void IndexInsert(PageKey page, int32_t slot);
  void IndexErase(PageKey page);

  void Touch(int32_t slot);
  void Admit(PageKey page);
  /// Evicts the policy's victim; dirty pages are written back
  /// asynchronously (no-force).
  void EvictOne();
  /// Evicts until the resident set fits `limit`.
  void ShrinkResidentTo(int limit);
  /// Steals frames from the registered victims (largest reservation first)
  /// until `needed` frames are unreserved or no victim can yield more.
  void StealFromVictims(int needed);
  /// Serves the FCFS memory queue as far as possible.
  void ServeMemoryQueue();

  RangeRuns* AcquireRunScratch();
  void ReleaseRunScratch(RangeRuns* runs);

  sim::Scheduler& sched_;
  BufferConfig config_;
  DiskArray& disks_;
  std::string name_;

  // Frame table: fixed slots + LIFO free list (threaded through
  // BufferFrame::next) + open-addressing page index storing slot + 1
  // (0 = empty).
  std::vector<BufferFrame> frames_;
  std::unique_ptr<EvictionPolicy> policy_;
  std::vector<int32_t> index_;
  uint32_t index_mask_ = 0;
  int32_t free_head_ = -1;
  int resident_ = 0;
  int reserved_ = 0;

  struct MemWaiter {
    int min_pages;
    int want_pages;
    int granted = 0;
    std::coroutine_handle<> handle;
  };
  std::deque<MemWaiter*> mem_queue_;

  std::vector<MemoryVictim*> victims_;

  // Recycled FetchRange scratch vectors (owned raw pointers; leased out to
  // suspended scan frames, so ownership cannot live in the vector itself).
  std::vector<RangeRuns*> run_scratch_;

  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t pages_stolen_ = 0;
  int64_t dirty_writebacks_ = 0;
  int64_t evictions_ = 0;
  int64_t pages_ingested_ = 0;
  PageKey last_evicted_{0, 0};
};

}  // namespace pdblb

#endif  // PDBLB_BUFMGR_BUFFER_MANAGER_H_
