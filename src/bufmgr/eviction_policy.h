// Copyright 2026 the pdblb authors. MIT license.
//
// Pluggable page-replacement policies over the buffer manager's fixed frame
// table.  The table is a flat array of BufferFrame slots sized to the pool
// capacity at construction; policies keep their per-frame state (intrusive
// list links, reference counters, second-chance bits) *inside* the slots and
// never allocate, so every policy preserves the kernel's zero-allocation
// steady-state discipline (pinned by tests/simkern_alloc_test.cc).
//
// Division of labour: the BufferManager owns residency (free list, page
// index, access timestamps) and calls the policy at the four interesting
// moments — admit, access, victim selection, evict.  A policy only orders
// resident frames; it never touches the free list or the page index.

#ifndef PDBLB_BUFMGR_EVICTION_POLICY_H_
#define PDBLB_BUFMGR_EVICTION_POLICY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/relation.h"
#include "common/config.h"
#include "common/units.h"

namespace pdblb {

/// One slot of the buffer manager's frame table.  Fixed-size POD: the whole
/// table is a single vector allocated once at pool construction.
struct BufferFrame {
  /// "Never" must predate any window cutoff, including at time zero.
  static constexpr SimTime kNever = -1e18;

  PageKey page{0, 0};
  SimTime last_access = kNever;
  SimTime prev_access = kNever;  ///< second-to-last access (working-set test)

  /// Intrusive links, interpreted by the active policy: LRU list neighbours
  /// or CLOCK ring neighbours for resident frames.  For free frames `next`
  /// threads the manager's free list.
  int32_t prev = -1;
  int32_t next = -1;

  uint32_t freq = 0;        ///< LFU reference counter (aged by halving).
  bool referenced = false;  ///< CLOCK second-chance bit.
  bool dirty = false;
  bool resident = false;
};

/// Victim-selection strategy over a frame table.  All hooks are O(1) for
/// LRU/CLOCK and O(capacity) scans for the ranking policies (LRU-K, LFU) —
/// acceptable because eviction already implies a disk I/O and the paper's
/// pools are small.  No hook allocates.
class EvictionPolicy {
 public:
  static std::unique_ptr<EvictionPolicy> Create(
      EvictionPolicyKind kind, std::vector<BufferFrame>& frames);

  virtual ~EvictionPolicy() = default;
  EvictionPolicy(const EvictionPolicy&) = delete;
  EvictionPolicy& operator=(const EvictionPolicy&) = delete;

  /// `slot` just became resident (timestamps already stamped).
  virtual void OnAdmit(int32_t slot) = 0;
  /// `slot` was re-referenced (timestamps already updated).
  virtual void OnAccess(int32_t slot) = 0;
  /// Picks the resident frame to evict next.  Does not evict: the manager
  /// writes back / unindexes and then calls OnEvict.  Requires at least one
  /// resident frame.
  virtual int32_t PickVictim() = 0;
  /// `slot` is leaving the resident set.
  virtual void OnEvict(int32_t slot) = 0;
  /// Crash wipe: the manager has reset every frame; drop all policy state.
  virtual void Reset() = 0;

  /// Abstract; construction goes through Create().  Public so the derived
  /// policies can inherit it (inherited constructors keep base access).
  explicit EvictionPolicy(std::vector<BufferFrame>& frames)
      : frames_(frames) {}

 protected:
  std::vector<BufferFrame>& frames_;
};

}  // namespace pdblb

#endif  // PDBLB_BUFMGR_EVICTION_POLICY_H_
