// Copyright 2026 the pdblb authors. MIT license.
//
// The four replacement policies.  Semantics (documented in docs/bufmgr.md
// and mirrored by the reference models in tests/bufmgr_policy_test.cc):
//
//  * LRU     — intrusive doubly-linked recency list threaded through the
//              frame slots (head = MRU, tail = LRU).  Exactly reproduces the
//              victim sequence of the old std::list implementation, so
//              default-policy runs stay byte-identical to pre-refactor
//              builds.
//  * LRU-K   — K = 2: victim is the frame with the oldest second-to-last
//              access (backward-K-distance), reusing the prev_access
//              bookkeeping the working-set estimator already maintains.
//              Single-touch frames (prev_access = never) rank before any
//              twice-touched frame, which is the classic LRU-2 property that
//              protects the hot set from sequential floods.
//  * LFU     — least-frequently-used with aging: per-frame reference
//              counters, halved across the resident set every
//              max(64, 16 * capacity) policy events so a formerly-hot page
//              cannot pin its frame forever.
//  * CLOCK   — second-chance ring threaded through the frame slots; the
//              hand sweeps, clearing reference bits, and evicts the first
//              unreferenced frame.
//
// Ties are impossible for LRU/CLOCK (structural order) and broken by the
// lowest slot index for the scan-based policies — slot assignment itself is
// deterministic (LIFO free list), so every policy yields reproducible victim
// sequences across reruns, --jobs and --shards.

#include "bufmgr/eviction_policy.h"

#include <cassert>

namespace pdblb {
namespace {

class LruPolicy final : public EvictionPolicy {
 public:
  using EvictionPolicy::EvictionPolicy;

  void OnAdmit(int32_t slot) override { PushFront(slot); }

  void OnAccess(int32_t slot) override {
    if (head_ == slot) return;
    Unlink(slot);
    PushFront(slot);
  }

  int32_t PickVictim() override {
    assert(tail_ >= 0 && "PickVictim on an empty pool");
    return tail_;
  }

  void OnEvict(int32_t slot) override { Unlink(slot); }

  void Reset() override {
    head_ = -1;
    tail_ = -1;
  }

 private:
  void PushFront(int32_t slot) {
    BufferFrame& f = frames_[slot];
    f.prev = -1;
    f.next = head_;
    if (head_ >= 0) frames_[head_].prev = slot;
    head_ = slot;
    if (tail_ < 0) tail_ = slot;
  }

  void Unlink(int32_t slot) {
    BufferFrame& f = frames_[slot];
    if (f.prev >= 0) frames_[f.prev].next = f.next;
    if (f.next >= 0) frames_[f.next].prev = f.prev;
    if (head_ == slot) head_ = f.next;
    if (tail_ == slot) tail_ = f.prev;
    f.prev = -1;
    f.next = -1;
  }

  int32_t head_ = -1;  // most recently used
  int32_t tail_ = -1;  // least recently used
};

class LruKPolicy final : public EvictionPolicy {
 public:
  using EvictionPolicy::EvictionPolicy;

  // The manager's (prev_access, last_access) stamps carry all the state.
  void OnAdmit(int32_t) override {}
  void OnAccess(int32_t) override {}
  void OnEvict(int32_t) override {}
  void Reset() override {}

  int32_t PickVictim() override {
    int32_t best = -1;
    for (int32_t s = 0; s < static_cast<int32_t>(frames_.size()); ++s) {
      const BufferFrame& f = frames_[s];
      if (!f.resident) continue;
      if (best < 0 || RanksBefore(f, frames_[best])) best = s;
    }
    assert(best >= 0 && "PickVictim on an empty pool");
    return best;
  }

 private:
  // Oldest backward-2-distance first; plain recency as the tiebreak.  The
  // ascending scan keeps the lowest slot on full ties.
  static bool RanksBefore(const BufferFrame& a, const BufferFrame& b) {
    if (a.prev_access != b.prev_access) return a.prev_access < b.prev_access;
    return a.last_access < b.last_access;
  }
};

class LfuPolicy final : public EvictionPolicy {
 public:
  explicit LfuPolicy(std::vector<BufferFrame>& frames)
      : EvictionPolicy(frames),
        aging_interval_(
            16 * static_cast<int64_t>(frames.size()) > 64
                ? 16 * static_cast<int64_t>(frames.size())
                : 64) {}

  void OnAdmit(int32_t slot) override {
    frames_[slot].freq = 1;
    Tick();
  }

  void OnAccess(int32_t slot) override {
    BufferFrame& f = frames_[slot];
    if (f.freq < kFreqCap) ++f.freq;
    Tick();
  }

  int32_t PickVictim() override {
    int32_t best = -1;
    for (int32_t s = 0; s < static_cast<int32_t>(frames_.size()); ++s) {
      const BufferFrame& f = frames_[s];
      if (!f.resident) continue;
      if (best < 0 || RanksBefore(f, frames_[best])) best = s;
    }
    assert(best >= 0 && "PickVictim on an empty pool");
    return best;
  }

  void OnEvict(int32_t slot) override { frames_[slot].freq = 0; }

  void Reset() override { events_ = 0; }

 private:
  static constexpr uint32_t kFreqCap = 1u << 30;

  static bool RanksBefore(const BufferFrame& a, const BufferFrame& b) {
    if (a.freq != b.freq) return a.freq < b.freq;
    return a.last_access < b.last_access;
  }

  // Aging: halve every counter periodically so stale formerly-hot pages
  // decay back toward the eviction frontier.
  void Tick() {
    if (++events_ < aging_interval_) return;
    events_ = 0;
    for (BufferFrame& f : frames_) {
      if (f.resident && f.freq > 1) f.freq >>= 1;
    }
  }

  const int64_t aging_interval_;
  int64_t events_ = 0;
};

class ClockPolicy final : public EvictionPolicy {
 public:
  using EvictionPolicy::EvictionPolicy;

  void OnAdmit(int32_t slot) override {
    BufferFrame& f = frames_[slot];
    f.referenced = true;
    if (hand_ < 0) {
      f.prev = slot;
      f.next = slot;
      hand_ = slot;
      return;
    }
    // Insert just behind the hand: the newcomer is the last frame the sweep
    // reaches, giving it a full revolution of grace.
    int32_t h = hand_;
    int32_t p = frames_[h].prev;
    f.prev = p;
    f.next = h;
    frames_[p].next = slot;
    frames_[h].prev = slot;
  }

  void OnAccess(int32_t slot) override { frames_[slot].referenced = true; }

  int32_t PickVictim() override {
    assert(hand_ >= 0 && "PickVictim on an empty pool");
    // Terminates: each referenced frame passed loses its bit, so a full
    // revolution leaves at least one frame unreferenced.
    while (frames_[hand_].referenced) {
      frames_[hand_].referenced = false;
      hand_ = frames_[hand_].next;
    }
    return hand_;
  }

  void OnEvict(int32_t slot) override {
    BufferFrame& f = frames_[slot];
    if (f.next == slot) {  // last resident frame
      hand_ = -1;
      f.prev = -1;
      f.next = -1;
      return;
    }
    frames_[f.prev].next = f.next;
    frames_[f.next].prev = f.prev;
    if (hand_ == slot) hand_ = f.next;
    f.prev = -1;
    f.next = -1;
  }

  void Reset() override { hand_ = -1; }

 private:
  int32_t hand_ = -1;
};

}  // namespace

std::unique_ptr<EvictionPolicy> EvictionPolicy::Create(
    EvictionPolicyKind kind, std::vector<BufferFrame>& frames) {
  switch (kind) {
    case EvictionPolicyKind::kLru:
      return std::make_unique<LruPolicy>(frames);
    case EvictionPolicyKind::kLruK:
      return std::make_unique<LruKPolicy>(frames);
    case EvictionPolicyKind::kLfu:
      return std::make_unique<LfuPolicy>(frames);
    case EvictionPolicyKind::kClock:
      return std::make_unique<ClockPolicy>(frames);
  }
  assert(false && "unknown eviction policy");
  return std::make_unique<LruPolicy>(frames);
}

}  // namespace pdblb
